// Experiment T1: tracing overhead.
//
// The tracing contract (DESIGN.md §8) is "zero-cost when off, cheap when
// on": a null Tracer* costs one branch per call site, and an enabled tracer
// only appends to per-worker ring buffers. This harness measures both sides
// on a PageRank workload — the same shape bench_m1 uses for engine
// micro-costs — and reports the wall-time overhead of tracing on vs off
// (target: < 5%), plus the traced run's per-operator TraceSummary table.
//
// Metrics v2 gets the same treatment: a null MetricsSink* costs one branch
// per call site, and an installed sink only bumps worker-sharded slots, so
// the metrics-on/off pair is measured alongside the tracing pair against
// the same < 5% target.
//
// Overhead is reported, not asserted: wall time on shared CI machines is
// noisy, so the JSON report records the measured ratio and the reader (or a
// trend dashboard) judges it.

#include <algorithm>
#include <iostream>
#include <vector>

#include "algos/pagerank.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "runtime/metrics.h"
#include "runtime/tracing.h"

using namespace flinkless;

namespace {

enum class Mode { kOff, kTrace, kMetrics };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kOff: return "off";
    case Mode::kTrace: return "trace-on";
    case Mode::kMetrics: return "metrics-on";
  }
  return "?";
}

struct Measurement {
  double wall_ms = 0;        // best-of-repeats wall time
  double sim_ms = 0;         // simulated time (must match across modes)
  int iterations = 0;
  uint64_t trace_events = 0;
  uint64_t metric_records = 0;  // exec.records total from the sink
  std::vector<double> ranks;
};

Measurement RunOnce(const graph::Graph& g, Mode mode,
                    runtime::TraceSummary* summary_out) {
  bench::JobHarness harness(ModeName(mode));
  harness.SetFailures(runtime::FailureSchedule(
      std::vector<runtime::FailureEvent>{{5, {1}}}));
  if (mode == Mode::kTrace) harness.EnableTracing();
  runtime::MetricsSink sink;
  iteration::JobEnv env = harness.Env();
  if (mode == Mode::kMetrics) env.metrics_sink = &sink;

  algos::PageRankOptions options;
  options.num_partitions = 4;
  options.max_iterations = 30;
  algos::FixRanksCompensation compensation(g.num_vertices());
  core::OptimisticRecoveryPolicy policy(&compensation);

  runtime::WallTimer wall;
  auto result = algos::RunPageRank(g, options, env, &policy);
  Measurement m;
  m.wall_ms = wall.ElapsedMs();
  FLINKLESS_CHECK(result.ok(), result.status().ToString());
  m.sim_ms = harness.clock().TotalMs();
  m.iterations = result->iterations;
  m.ranks = std::move(result->ranks);
  if (mode == Mode::kTrace) {
    runtime::Tracer::Snapshot snapshot = harness.tracer()->Flush();
    m.trace_events = snapshot.events.size();
    if (summary_out != nullptr) {
      *summary_out = runtime::TraceSummary::FromSnapshot(snapshot);
    }
  }
  if (mode == Mode::kMetrics) {
    m.metric_records =
        static_cast<uint64_t>(sink.Collect().CounterTotal("exec.records"));
  }
  return m;
}

Measurement BestOf(int repeats, const graph::Graph& g, Mode mode,
                   runtime::TraceSummary* summary_out) {
  Measurement best;
  for (int r = 0; r < repeats; ++r) {
    Measurement m = RunOnce(g, mode, summary_out);
    if (r == 0 || m.wall_ms < best.wall_ms) best = std::move(m);
  }
  return best;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  bench::Banner("T1",
                "Tracing and metrics overhead: PageRank with a failure, "
                "instrumentation off vs on (wall time; outputs and "
                "simulated time must not move)");

  Rng rng(7);
  graph::Graph g = graph::Rmat(10, 8, &rng);
  constexpr int kRepeats = 5;

  runtime::TraceSummary summary;
  Measurement off = BestOf(kRepeats, g, Mode::kOff, nullptr);
  Measurement on = BestOf(kRepeats, g, Mode::kTrace, &summary);
  Measurement metered = BestOf(kRepeats, g, Mode::kMetrics, nullptr);

  FLINKLESS_CHECK(off.ranks == on.ranks,
                  "tracing changed the computed ranks");
  FLINKLESS_CHECK(off.sim_ms == on.sim_ms,
                  "tracing changed the simulated time");
  FLINKLESS_CHECK(off.ranks == metered.ranks,
                  "metrics changed the computed ranks");
  FLINKLESS_CHECK(off.sim_ms == metered.sim_ms,
                  "metrics changed the simulated time");

  const double overhead_pct =
      off.wall_ms > 0 ? (on.wall_ms / off.wall_ms - 1.0) * 100.0 : 0.0;
  const double metrics_overhead_pct =
      off.wall_ms > 0 ? (metered.wall_ms / off.wall_ms - 1.0) * 100.0 : 0.0;

  TablePrinter table({"mode", "wall_ms", "sim_ms", "iterations", "events"});
  table.Row()
      .Cell("off")
      .Cell(off.wall_ms)
      .Cell(off.sim_ms)
      .Cell(static_cast<int64_t>(off.iterations))
      .Cell(int64_t{0});
  table.Row()
      .Cell("trace-on")
      .Cell(on.wall_ms)
      .Cell(on.sim_ms)
      .Cell(static_cast<int64_t>(on.iterations))
      .Cell(static_cast<int64_t>(on.trace_events));
  table.Row()
      .Cell("metrics-on")
      .Cell(metered.wall_ms)
      .Cell(metered.sim_ms)
      .Cell(static_cast<int64_t>(metered.iterations))
      .Cell(static_cast<int64_t>(metered.metric_records));
  bench::Emit(table);
  std::cout << "tracing overhead: " << overhead_pct << "% (target < 5%)\n";
  std::cout << "metrics overhead: " << metrics_overhead_pct
            << "% (target < 5%)\n";

  std::cout << "per-operator trace summary (traced run):\n";
  bench::Emit(bench::TraceSummaryTable(summary));

  bench::JsonReport report("T1-trace-overhead");
  report.AddEntry()
      .Set("kind", "timing")
      .Set("mode", "off")
      .Set("wall_ms", off.wall_ms)
      .Set("sim_ms", off.sim_ms)
      .Set("iterations", off.iterations);
  report.AddEntry()
      .Set("kind", "timing")
      .Set("mode", "on")
      .Set("wall_ms", on.wall_ms)
      .Set("sim_ms", on.sim_ms)
      .Set("iterations", on.iterations)
      .Set("trace_events", on.trace_events);
  report.AddEntry()
      .Set("kind", "timing")
      .Set("mode", "metrics")
      .Set("wall_ms", metered.wall_ms)
      .Set("sim_ms", metered.sim_ms)
      .Set("iterations", metered.iterations)
      .Set("metric_records", metered.metric_records);
  report.AddEntry()
      .Set("kind", "overhead")
      .Set("instrumentation", "tracing")
      .Set("overhead_pct", overhead_pct)
      .Set("target_pct", 5.0)
      .Set("outputs_identical", off.ranks == on.ranks)
      .Set("sim_time_identical", off.sim_ms == on.sim_ms);
  report.AddEntry()
      .Set("kind", "overhead")
      .Set("instrumentation", "metrics")
      .Set("overhead_pct", metrics_overhead_pct)
      .Set("target_pct", 5.0)
      .Set("outputs_identical", off.ranks == metered.ranks)
      .Set("sim_time_identical", off.sim_ms == metered.sim_ms);
  bench::AddTraceSummary(&report, summary);
  const std::string json_path = "BENCH_trace_overhead.json";
  FLINKLESS_CHECK(report.WriteFile(json_path), "cannot write " + json_path);
  std::cout << "json: wrote " << json_path << "\n";
  return 0;
}
