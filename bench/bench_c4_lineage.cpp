// Experiment C4: the paper's §2.2 argument against lineage-based recovery
// for iterative jobs, made quantitative.
//
// Lineage recovery recomputes only lost partitions — cheap through narrow
// dependencies, but "a partition of the current iteration may depend on all
// partitions of the previous iteration (e.g. when a reducer is executed
// during an iteration). In such cases after a failure the iteration has to
// be restarted from scratch."
//
// We classify the actual plans' dependencies and report the number of
// operator tasks lineage must re-execute to rebuild ONE lost partition:
//   (a) a 6-stage map/filter pipeline (all-narrow: constant),
//   (b) the same pipeline ending in a reduce (one wide hop: ~P),
//   (c) the CC and PageRank supersteps (wide feedback: the whole superstep
//       history — linear in the iteration number, i.e. restart).

#include <iostream>

#include "algos/connected_components.h"
#include "algos/pagerank.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/table.h"
#include "core/lineage.h"

using namespace flinkless;
using dataflow::MakeRecord;
using dataflow::Plan;
using dataflow::Record;

namespace {

Record Identity(const Record& r) { return r; }

Plan MapPipeline(int stages) {
  Plan plan;
  auto node = plan.Source("in");
  for (int i = 0; i < stages; ++i) {
    node = plan.Map(node, Identity, "map" + std::to_string(i));
  }
  plan.Output(node, "out");
  return plan;
}

Plan MapPipelineWithReduce(int stages) {
  Plan plan;
  auto node = plan.Source("in");
  for (int i = 0; i < stages; ++i) {
    node = plan.Map(node, Identity, "map" + std::to_string(i));
  }
  node = plan.ReduceByKey(
      node, {0}, [](const Record& a, const Record&) { return a; },
      "aggregate");
  plan.Output(node, "out");
  return plan;
}

int64_t TasksPerSuperstep(const Plan& plan, int parts) {
  int64_t operators = 0;
  for (const auto& node : plan.nodes()) {
    if (node.kind != dataflow::OpKind::kSource) ++operators;
  }
  return operators * parts;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  bench::Banner("C4",
                "Lineage recovery footprint: tasks re-executed to rebuild "
                "ONE lost partition (paper §2.2's argument, quantified)");

  const std::vector<int> parallelisms{4, 8, 16, 64};

  Plan pipeline = MapPipeline(6);
  Plan pipeline_reduce = MapPipelineWithReduce(6);
  Plan cc = algos::BuildConnectedComponentsPlan();
  Plan pagerank = algos::BuildPageRankPlan(1000, 0.85);

  core::LineageAnalysis pipeline_lineage(&pipeline);
  core::LineageAnalysis pipeline_reduce_lineage(&pipeline_reduce);
  core::LineageAnalysis cc_lineage(&cc);
  core::LineageAnalysis pr_lineage(&pagerank);

  std::cout << "dependency classification of the CC superstep (Fig. 1a):\n"
            << cc_lineage.ToString() << "\n";

  TablePrinter table({"job", "partitions", "tasks_to_rebuild_1_partition",
                      "all_narrow"});
  for (int parts : parallelisms) {
    table.Row()
        .Cell("map-pipeline(6 stages)")
        .Cell(static_cast<int64_t>(parts))
        .Cell(pipeline_lineage.TasksToRebuild(
            pipeline.outputs().front().second, 0, parts))
        .Cell("yes");
    table.Row()
        .Cell("pipeline + reduce")
        .Cell(static_cast<int64_t>(parts))
        .Cell(pipeline_reduce_lineage.TasksToRebuild(
            pipeline_reduce.outputs().front().second, 0, parts))
        .Cell("no");
    table.Row()
        .Cell("cc superstep")
        .Cell(static_cast<int64_t>(parts))
        .Cell(cc_lineage.TasksToRebuild(cc.outputs().front().second, 0,
                                        parts))
        .Cell("no");
    table.Row()
        .Cell("pagerank superstep")
        .Cell(static_cast<int64_t>(parts))
        .Cell(pr_lineage.TasksToRebuild(pagerank.outputs().front().second, 0,
                                        parts))
        .Cell("no");
  }
  bench::Emit(table);

  // The iterative case: with wide feedback, losing a partition after k
  // supersteps forces replaying all of them (== restart). Optimistic
  // recovery replaces this with one compensation call + reconvergence.
  TablePrinter iterative({"iterations_completed",
                          "lineage_tasks_replayed(cc, P=8)",
                          "optimistic_tasks(compensate + continue)"});
  int64_t per_superstep = TasksPerSuperstep(cc, 8);
  for (int k : {1, 5, 10, 25, 50}) {
    iterative.Row()
        .Cell(static_cast<int64_t>(k))
        .Cell(core::LineageAnalysis::IterativeRebuildTasks(per_superstep, k))
        .Cell(int64_t{1});
  }
  std::cout << "cc superstep = " << per_superstep
            << " tasks at parallelism 8:\n";
  bench::Emit(iterative);
  return 0;
}
