// Experiment M1: engine microbenchmarks (google-benchmark) — throughput of
// the operators the iterative dataflows are built from, plus one full
// superstep of each algorithm. These pin the constant factors behind the
// C1/C2 simulated-time numbers.

#include <benchmark/benchmark.h>

#include <unordered_map>

#include "algos/connected_components.h"
#include "algos/datasets.h"
#include "algos/pagerank.h"
#include "common/logging.h"
#include "common/rng.h"
#include "dataflow/columnar.h"
#include "dataflow/exec_cache.h"
#include "dataflow/executor.h"
#include "dataflow/simd.h"
#include "graph/generators.h"

namespace {

using namespace flinkless;
using dataflow::MakeRecord;
using dataflow::PartitionedDataset;
using dataflow::Plan;
using dataflow::Record;

PartitionedDataset RandomPairs(int64_t n, int64_t key_space, int parts,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> records;
  records.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    records.push_back(MakeRecord(
        static_cast<int64_t>(rng.NextBounded(key_space)), i));
  }
  return PartitionedDataset::RoundRobin(std::move(records), parts);
}

void BM_Shuffle(benchmark::State& state) {
  const int parts = 4;
  auto input = RandomPairs(state.range(0), state.range(0), parts, 1);
  dataflow::Executor executor({parts, nullptr, nullptr});
  for (auto _ : state) {
    auto out = executor.Shuffle(input, {0}, nullptr);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Shuffle)->Arg(1 << 10)->Arg(1 << 14);

void BM_Map(benchmark::State& state) {
  const int parts = 4;
  auto input = RandomPairs(state.range(0), state.range(0), parts, 2);
  Plan plan;
  auto src = plan.Source("in");
  auto mapped = plan.Map(
      src,
      [](const Record& r) {
        return MakeRecord(r[0].AsInt64(), r[1].AsInt64() + 1);
      },
      "inc");
  plan.Output(mapped, "out");
  dataflow::Executor executor({parts, nullptr, nullptr});
  for (auto _ : state) {
    auto out = executor.Execute(plan, {{"in", &input}}, nullptr);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Map)->Arg(1 << 10)->Arg(1 << 14);

void BM_ReduceByKey(benchmark::State& state) {
  const int parts = 4;
  auto input = RandomPairs(state.range(0), state.range(0) / 8, parts, 3);
  Plan plan;
  auto src = plan.Source("in");
  auto reduced = plan.ReduceByKey(
      src, {0},
      [](const Record& a, const Record& b) {
        return MakeRecord(a[0].AsInt64(), a[1].AsInt64() + b[1].AsInt64());
      },
      "sum");
  plan.Output(reduced, "out");
  dataflow::Executor executor({parts, nullptr, nullptr});
  for (auto _ : state) {
    auto out = executor.Execute(plan, {{"in", &input}}, nullptr);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReduceByKey)->Arg(1 << 10)->Arg(1 << 14);

void BM_HashJoin(benchmark::State& state) {
  const int parts = 4;
  auto left = RandomPairs(state.range(0), state.range(0) / 2, parts, 4);
  auto right = RandomPairs(state.range(0), state.range(0) / 2, parts, 5);
  Plan plan;
  auto l = plan.Source("l");
  auto r = plan.Source("r");
  auto joined = plan.Join(
      l, r, {0}, {0},
      [](const Record& a, const Record& b) {
        return MakeRecord(a[0].AsInt64(), a[1].AsInt64(), b[1].AsInt64());
      },
      "join");
  plan.Output(joined, "out");
  dataflow::Executor executor({parts, nullptr, nullptr});
  for (auto _ : state) {
    auto out = executor.Execute(plan, {{"l", &left}, {"r", &right}}, nullptr);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_HashJoin)->Arg(1 << 10)->Arg(1 << 13);

void BM_JoinStaticBuildSide(benchmark::State& state) {
  // The loop-invariant cache path (DESIGN.md §10): a static build side
  // joined against a fresh probe side every "superstep". range(1) toggles
  // the ExecCache — with it, the static side is shuffled and indexed once
  // (the first iteration) and every later iteration probes the cached
  // index; without it, every iteration rebuilds from scratch.
  const int parts = 4;
  const bool cached = state.range(1) != 0;
  auto build = RandomPairs(state.range(0), state.range(0) / 2, parts, 8);
  auto probe = RandomPairs(state.range(0), state.range(0) / 2, parts, 9);
  Plan plan;
  auto l = plan.Source("build");
  auto r = plan.Source("probe");
  auto joined = plan.Join(
      l, r, {0}, {0},
      [](const Record& a, const Record& b) {
        return MakeRecord(a[0].AsInt64(), a[1].AsInt64(), b[1].AsInt64());
      },
      "static-join");
  plan.Output(joined, "out");

  dataflow::ExecCache cache({"probe"});
  dataflow::ExecOptions options;
  options.num_partitions = parts;
  if (cached) options.cache = &cache;
  dataflow::Executor executor(options);
  dataflow::ExecStats stats;
  for (auto _ : state) {
    auto out = executor.Execute(
        plan, {{"build", &build}, {"probe", &probe}}, &stats);
    benchmark::DoNotOptimize(out);
  }
  if (cached) {
    // Every superstep after the first must serve the build side from the
    // cache — shuffled and indexed once per job, as the issue demands.
    FLINKLESS_CHECK(
        stats.cache_hits >= static_cast<uint64_t>(state.iterations() - 1),
        "static build side was rebuilt mid-job");
  } else {
    FLINKLESS_CHECK(stats.cache_hits == 0, "uncached run reported hits");
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
  state.SetLabel(cached ? "cached" : "uncached");
}
BENCHMARK(BM_JoinStaticBuildSide)
    ->Args({1 << 10, 0})
    ->Args({1 << 10, 1})
    ->Args({1 << 13, 0})
    ->Args({1 << 13, 1});

void BM_ShuffleSerdeRecord(benchmark::State& state) {
  // Record-path spill serde twin of BM_ShuffleSerdeColumnar: the per-record
  // tagged framing a v1 dataset blob holds, over the same data.
  auto ds = RandomPairs(state.range(0), state.range(0), 4, 10);
  for (auto _ : state) {
    for (int p = 0; p < ds.num_partitions(); ++p) {
      auto bytes = dataflow::SerializeRecords(ds.partition(p));
      auto back = dataflow::DeserializeRecords(bytes);
      benchmark::DoNotOptimize(back);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ShuffleSerdeRecord)->Arg(1 << 10)->Arg(1 << 14);

void BM_ShuffleSerdeColumnar(benchmark::State& state) {
  // Columnar spill serde (v2 blobs): whole-column writes per partition
  // block instead of one tag+payload per value.
  auto ds = RandomPairs(state.range(0), state.range(0), 4, 10);
  for (auto _ : state) {
    auto blob = dataflow::SerializePartitionedDataset(ds);
    auto back = dataflow::DeserializePartitionedDataset(blob);
    FLINKLESS_CHECK(back.ok(), "columnar round-trip failed");
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ShuffleSerdeColumnar)->Arg(1 << 10)->Arg(1 << 14);

void BM_JoinProbeRecord(benchmark::State& state) {
  // Record-path join core: map of materialized keys to record-pointer
  // chains, probed with a freshly extracted key per record.
  auto build = RandomPairs(state.range(0), state.range(0) / 2, 1, 11);
  auto probe = RandomPairs(state.range(0), state.range(0) / 2, 1, 12);
  const std::vector<Record>& rows = build.partition(0);
  for (auto _ : state) {
    std::unordered_map<Record, std::vector<const Record*>,
                       dataflow::RecordHash>
        index;
    index.reserve(rows.size());
    for (const Record& r : rows) {
      index[dataflow::ExtractKey(r, {0})].push_back(&r);
    }
    uint64_t matches = 0;
    for (const Record& r : probe.partition(0)) {
      auto it = index.find(dataflow::ExtractKey(r, {0}));
      if (it == index.end()) continue;
      matches += it->second.size();
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_JoinProbeRecord)->Arg(1 << 10)->Arg(1 << 14);

void BM_JoinProbeColumnar(benchmark::State& state) {
  // Columnar join core: flat open-addressing index keyed directly off the
  // key column — no per-record key materialization or map nodes.
  auto build = RandomPairs(state.range(0), state.range(0) / 2, 1, 11);
  auto probe = RandomPairs(state.range(0), state.range(0) / 2, 1, 12);
  const std::vector<Record>& rows = build.partition(0);
  for (auto _ : state) {
    dataflow::FlatKeyIndex index;
    index.Build(rows, {0});
    uint64_t matches = 0;
    for (const Record& r : probe.partition(0)) {
      int32_t row = index.FindFirst(r, {0}, dataflow::HashKey(r, {0}));
      for (; row >= 0; row = index.Next(row)) ++matches;
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_JoinProbeColumnar)->Arg(1 << 10)->Arg(1 << 14);

// --- SIMD kernel micros (DESIGN.md §15): scalar tier vs the best level
// --- the CPU dispatches to, over the same inputs. range(1): 0 = scalar,
// --- 1 = dispatched. Labels carry the level that actually ran (an active
// --- FLINKLESS_SIMD override caps requests, so both rows may read
// --- "scalar" in a forced-off CI job).

namespace simd = dataflow::simd;

void BM_SimdHash(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const simd::Level level =
      state.range(1) != 0 ? simd::Detect() : simd::Level::kScalar;
  const simd::Kernels& kernels = simd::KernelsFor(level);
  Rng rng(13);
  std::vector<int64_t> keys(n);
  for (int64_t& k : keys) k = static_cast<int64_t>(rng.Next());
  std::vector<uint64_t> hashes(n);
  for (auto _ : state) {
    kernels.hash_key64(keys.data(), n, hashes.data());
    benchmark::DoNotOptimize(hashes.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(kernels.name);
}
BENCHMARK(BM_SimdHash)
    ->Args({1 << 10, 0})
    ->Args({1 << 10, 1})
    ->Args({1 << 16, 0})
    ->Args({1 << 16, 1});

void BM_SimdProbe(benchmark::State& state) {
  // Batched open-addressing probe (FindFirstStripe): the stripe loop scans
  // probe_width buckets per step and early-exits on the empty-slot mask.
  auto build = RandomPairs(state.range(0), state.range(0) / 2, 1, 11);
  auto probe = RandomPairs(state.range(0), state.range(0) / 2, 1, 12);
  const simd::Level prev = simd::ActiveLevel();
  simd::SetLevel(state.range(1) != 0 ? simd::Detect()
                                     : simd::Level::kScalar);
  dataflow::FlatKeyIndex index;
  index.Build(build.partition(0), {0});
  std::vector<int64_t> keys;
  FLINKLESS_CHECK(dataflow::ExtractKey64(probe.partition(0), {0}, &keys),
                  "probe keys are not flat int64");
  std::vector<uint64_t> hashes(keys.size());
  simd::ActiveKernels().hash_key64(keys.data(), keys.size(), hashes.data());
  std::vector<int32_t> first(keys.size());
  for (auto _ : state) {
    index.FindFirstStripe(keys.data(), hashes.data(), keys.size(),
                          first.data());
    benchmark::DoNotOptimize(first.data());
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
  state.SetLabel(simd::LevelName(simd::ActiveLevel()));
  simd::SetLevel(prev);
}
BENCHMARK(BM_SimdProbe)
    ->Args({1 << 10, 0})
    ->Args({1 << 10, 1})
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1});

void BM_SerdeCopy(benchmark::State& state) {
  // v2 dataset serde with a string column, so the vectorized length
  // delta / sum / prefix-sum kernels are on the measured path (fixed-width
  // columns are bulk memcpy at every tier).
  const int64_t n = state.range(0);
  std::vector<Record> records;
  records.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    records.push_back(
        MakeRecord(i, static_cast<double>(i) * 0.5,
                   "value-" + std::to_string(i % 97)));
  }
  auto ds = PartitionedDataset::RoundRobin(std::move(records), 4);
  const simd::Level prev = simd::ActiveLevel();
  simd::SetLevel(state.range(1) != 0 ? simd::Detect()
                                     : simd::Level::kScalar);
  for (auto _ : state) {
    auto blob = dataflow::SerializePartitionedDataset(ds);
    auto back = dataflow::DeserializePartitionedDataset(blob);
    FLINKLESS_CHECK(back.ok(), "serde copy round-trip failed");
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(simd::LevelName(simd::ActiveLevel()));
  simd::SetLevel(prev);
}
BENCHMARK(BM_SerdeCopy)
    ->Args({1 << 10, 0})
    ->Args({1 << 10, 1})
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1});

void BM_RecordSerialization(benchmark::State& state) {
  std::vector<Record> records;
  for (int64_t i = 0; i < state.range(0); ++i) {
    records.push_back(MakeRecord(i, static_cast<double>(i) * 0.5));
  }
  for (auto _ : state) {
    auto bytes = dataflow::SerializeRecords(records);
    auto back = dataflow::DeserializeRecords(bytes);
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RecordSerialization)->Arg(1 << 10)->Arg(1 << 14);

void BM_PageRankSuperstep(benchmark::State& state) {
  Rng rng(6);
  graph::Graph g = graph::Rmat(static_cast<int>(state.range(0)), 8, &rng);
  const int parts = 4;
  Plan plan = algos::BuildPageRankPlan(g.num_vertices(), 0.85);
  auto links = algos::Links(g, parts);
  auto dangling = algos::DanglingVertices(g, parts);
  auto zero_mass = PartitionedDataset::HashPartitioned(
      {MakeRecord(int64_t{0}, 0.0)}, {0}, parts);
  auto ranks = algos::InitialRanks(g, parts);
  dataflow::Bindings bindings{{"state", &ranks},
                              {"links", &links},
                              {"dangling", &dangling},
                              {"zero_mass", &zero_mass}};
  dataflow::Executor executor({parts, nullptr, nullptr});
  for (auto _ : state) {
    auto out = executor.Execute(plan, bindings, nullptr);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_PageRankSuperstep)->Arg(8)->Arg(11);

void BM_CcSuperstep(benchmark::State& state) {
  Rng rng(7);
  graph::Graph g =
      graph::PreferentialAttachment(state.range(0), 2, &rng);
  const int parts = 4;
  Plan plan = algos::BuildConnectedComponentsPlan();
  auto edges = algos::EdgePairs(g, parts);
  auto labels = algos::InitialLabels(g);
  auto workset = PartitionedDataset::HashPartitioned(labels, {0}, parts);
  auto solution = PartitionedDataset::HashPartitioned(labels, {0}, parts);
  dataflow::Bindings bindings{
      {"workset", &workset}, {"solution", &solution}, {"edges", &edges}};
  dataflow::Executor executor({parts, nullptr, nullptr});
  for (auto _ : state) {
    auto out = executor.Execute(plan, bindings, nullptr);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_CcSuperstep)->Arg(256)->Arg(2048);

void BM_SolutionSetLookup(benchmark::State& state) {
  const int parts = 4;
  iteration::SolutionSet set(parts, {0});
  for (int64_t i = 0; i < state.range(0); ++i) {
    set.Upsert(MakeRecord(i, static_cast<double>(i)));
  }
  int64_t i = 0;
  for (auto _ : state) {
    const Record* hit = set.Lookup(MakeRecord(i++ % state.range(0), 0.0));
    benchmark::DoNotOptimize(hit);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SolutionSetLookup)->Arg(1 << 10)->Arg(1 << 14);

void BM_SolutionSetApplyDelta(benchmark::State& state) {
  const int parts = 8;
  const int64_t n = 1 << 14;
  const int threads = static_cast<int>(state.range(0));
  iteration::SolutionSet set(parts, {0});
  for (int64_t i = 0; i < n; ++i) {
    set.Upsert(MakeRecord(i, 0.0));
  }
  std::vector<Record> updates;
  updates.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    updates.push_back(MakeRecord(i, static_cast<double>(i)));
  }
  auto delta = PartitionedDataset::HashPartitioned(updates, {0}, parts);
  runtime::ThreadPool pool(threads);
  for (auto _ : state) {
    // ApplyDelta consumes its argument; exclude the copy from the timing.
    state.PauseTiming();
    PartitionedDataset d = delta;
    state.ResumeTiming();
    uint64_t applied =
        set.ApplyDelta(std::move(d), threads > 1 ? &pool : nullptr, nullptr);
    benchmark::DoNotOptimize(applied);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SolutionSetApplyDelta)->Arg(1)->Arg(2)->Arg(8);

void BM_CheckpointPartition(benchmark::State& state) {
  std::vector<Record> records;
  for (int64_t i = 0; i < state.range(0); ++i) {
    records.push_back(MakeRecord(i, static_cast<double>(i)));
  }
  iteration::BulkState bulk(
      PartitionedDataset::HashPartitioned(records, {0}, 1));
  runtime::StableStorage storage(nullptr, nullptr);
  int64_t i = 0;
  for (auto _ : state) {
    auto blob = bulk.SerializePartition(0);
    Status s = storage.Write("bench/" + std::to_string(i++ % 4), std::move(blob));
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CheckpointPartition)->Arg(1 << 12);

}  // namespace

int main(int argc, char** argv) {
  flinkless::SetLogLevel(flinkless::LogLevel::kWarning);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
