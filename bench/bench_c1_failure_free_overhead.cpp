// Experiment C1: failure-free overhead of the recovery strategies (the
// paper's §1/§2.2 claim that optimistic recovery achieves *optimal*
// failure-free performance because it neither checkpoints state nor tracks
// lineage, while rollback recovery "always incurs overhead to the
// execution, even in failure-free cases").
//
// Identical failure-free runs of PageRank and Connected Components under
// no-FT, optimistic, and rollback with checkpoint interval k in {1, 2, 5}.
// Reported: simulated time (total and checkpoint-I/O share), checkpointed
// bytes, wall time. The shape to observe: optimistic == no-FT exactly;
// rollback overhead grows as k shrinks.

#include <functional>
#include <iostream>
#include <memory>

#include "algos/connected_components.h"
#include "algos/pagerank.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/policies.h"
#include "graph/generators.h"

using namespace flinkless;

namespace {

struct RunOutcome {
  double sim_total_ms = 0;
  double sim_checkpoint_ms = 0;
  uint64_t checkpoint_bytes = 0;
  double wall_ms = 0;
  int iterations = 0;
};

RunOutcome Measure(
    const std::string& job_id, iteration::FaultTolerancePolicy* policy,
    const std::function<Status(iteration::JobEnv,
                               iteration::FaultTolerancePolicy*, int*)>& run) {
  bench::JobHarness harness(job_id);
  runtime::WallTimer wall;
  RunOutcome outcome;
  Status status = run(harness.Env(), policy, &outcome.iterations);
  FLINKLESS_CHECK(status.ok(), status.ToString());
  outcome.wall_ms = wall.ElapsedMs();
  outcome.sim_total_ms = harness.clock().TotalMs();
  outcome.sim_checkpoint_ms =
      static_cast<double>(
          harness.clock().Of(runtime::Charge::kCheckpointIo)) /
      1e6;
  outcome.checkpoint_bytes = harness.storage().bytes_written();
  return outcome;
}

void Scenario(const std::string& name,
              const std::function<Status(iteration::JobEnv,
                                         iteration::FaultTolerancePolicy*,
                                         int*)>& run,
              core::CompensationFunction* compensation) {
  TablePrinter table({"strategy", "iterations", "sim_total_ms",
                      "sim_checkpoint_ms", "checkpoint_bytes", "wall_ms",
                      "overhead_vs_noft_pct"});

  core::NoFaultTolerancePolicy noft;
  RunOutcome base = Measure(name + "-noft", &noft, run);
  auto add_row = [&](const std::string& strategy, const RunOutcome& o) {
    double overhead =
        base.sim_total_ms > 0
            ? 100.0 * (o.sim_total_ms - base.sim_total_ms) / base.sim_total_ms
            : 0.0;
    table.Row()
        .Cell(strategy)
        .Cell(static_cast<int64_t>(o.iterations))
        .Cell(o.sim_total_ms)
        .Cell(o.sim_checkpoint_ms)
        .Cell(o.checkpoint_bytes)
        .Cell(o.wall_ms)
        .Cell(overhead);
  };
  add_row("none", base);

  core::OptimisticRecoveryPolicy optimistic(compensation);
  add_row("optimistic", Measure(name + "-opt", &optimistic, run));

  for (int k : {5, 2, 1}) {
    core::CheckpointRollbackPolicy rollback(k);
    add_row("rollback(k=" + std::to_string(k) + ")",
            Measure(name + "-rb" + std::to_string(k), &rollback, run));
  }

  std::cout << "workload: " << name << "\n";
  bench::Emit(table);
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  bench::Banner("C1",
                "Failure-free overhead: optimistic recovery matches no-FT "
                "exactly; rollback pays checkpoint I/O that grows as the "
                "interval shrinks");

  Rng rng(1);
  graph::Graph pr_graph = graph::Rmat(11, 8, &rng);
  algos::FixRanksCompensation fix_ranks(pr_graph.num_vertices());
  Scenario(
      "pagerank-rmat-2048v",
      [&pr_graph](iteration::JobEnv env,
                  iteration::FaultTolerancePolicy* policy, int* iterations) {
        algos::PageRankOptions options;
        options.num_partitions = 4;
        options.max_iterations = 30;
        auto result = algos::RunPageRank(pr_graph, options, env, policy);
        FLINKLESS_RETURN_NOT_OK(result.status());
        *iterations = result->iterations;
        return Status::OK();
      },
      &fix_ranks);

  Rng cc_rng(2);
  graph::Graph cc_graph = graph::PreferentialAttachment(3000, 3, &cc_rng);
  algos::FixComponentsCompensation fix_components(&cc_graph);
  Scenario(
      "connected-components-pa-3000v",
      [&cc_graph](iteration::JobEnv env,
                  iteration::FaultTolerancePolicy* policy, int* iterations) {
        algos::ConnectedComponentsOptions options;
        options.num_partitions = 4;
        auto result =
            algos::RunConnectedComponents(cc_graph, options, env, policy);
        FLINKLESS_RETURN_NOT_OK(result.status());
        *iterations = result->iterations;
        return Status::OK();
      },
      &fix_components);
  return 0;
}
