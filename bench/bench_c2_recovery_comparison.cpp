// Experiment C2: recovery cost under failures (paper §2.2).
//
// With failures injected, compares optimistic recovery (compensation),
// rollback recovery (checkpoint intervals 1/2/5), confined rollback
// (restore only the lost partitions, keep the survivors' progress — a
// CoRAL-style extension), confined-log recovery (replay the failed
// superstep's logged outbound messages into the lost partitions —
// DESIGN.md §14) and restart-from-scratch (what lineage-based recovery
// degenerates to for iterative jobs with wide dependencies). Reported per
// strategy: supersteps actually executed, simulated time and its
// checkpoint/recovery share, and correctness of the final result against
// ground truth.
//
// The four-way subset (optimistic / rollback(k=2) / confined(k=2) /
// confined-log(k=2)) additionally lands in BENCH_confined.json with
// per-failure recovery health: confined-log should recompute the fewest
// messages — the logged ones are replayed, not re-shuffled.
//
// Shape to observe: every strategy converges to the correct result;
// optimistic executes the fewest extra supersteps and pays no checkpoint
// I/O; rollback re-executes up to k iterations and pays I/O both ways;
// restart re-executes everything before the failure.

#include <functional>
#include <iostream>
#include <memory>

#include "algos/connected_components.h"
#include "algos/pagerank.h"
#include "algos/refreshers.h"
#include "algos/sssp.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "runtime/profiler.h"

using namespace flinkless;

namespace {

struct RunReport {
  int iterations = 0;
  int supersteps = 0;
  int failures_recovered = 0;
  bool correct = false;
  double sim_total_ms = 0;
  double sim_ft_ms = 0;  // checkpoint I/O + recovery
  uint64_t messages = 0;
};

// `message_log` asks the workload to run with the outbound message log on
// (required by the confined-log strategy; off for every other run so they
// pay no logging overhead).
using Runner = std::function<Status(iteration::JobEnv,
                                    iteration::FaultTolerancePolicy*,
                                    bool message_log, RunReport*)>;

void Scenario(const std::string& name, const Runner& run,
              core::CompensationFunction* compensation,
              const std::vector<runtime::FailureEvent>& failure_events,
              bench::JsonReport* json, bench::JsonReport* confined_json,
              core::WorksetRefresher refresher = {}) {
  TablePrinter table({"strategy", "iterations", "supersteps_executed",
                      "failures_recovered", "sim_total_ms", "sim_ft_ms",
                      "messages", "correct"});

  // Failure-free baseline of the same workload: recovery health below is
  // reported net of it (time/messages *lost* to the failure, not the
  // window's gross cost). The policy never fires without failures, so any
  // strategy yields the same baseline.
  bench::JobHarness baseline(name + "-baseline");
  {
    core::OptimisticRecoveryPolicy policy(compensation);
    RunReport ignored;
    Status status = run(baseline.Env(), &policy, /*message_log=*/false,
                        &ignored);
    FLINKLESS_CHECK(status.ok(), "baseline: " + status.ToString());
  }
  const uint64_t baseline_messages = baseline.metrics().TotalMessages();

  auto run_with = [&](const std::string& label,
                      iteration::FaultTolerancePolicy* policy,
                      bool message_log = false) {
    bench::JobHarness harness(name + "-" + label);
    harness.SetFailures(runtime::FailureSchedule(failure_events));
    RunReport report;
    Status status = run(harness.Env(), policy, message_log, &report);
    FLINKLESS_CHECK(status.ok(), label + ": " + status.ToString());
    report.sim_total_ms = harness.clock().TotalMs();
    report.sim_ft_ms =
        static_cast<double>(
            harness.clock().Of(runtime::Charge::kCheckpointIo) +
            harness.clock().Of(runtime::Charge::kRecovery)) /
        1e6;
    report.messages = harness.metrics().TotalMessages();
    table.Row()
        .Cell(label)
        .Cell(static_cast<int64_t>(report.iterations))
        .Cell(static_cast<int64_t>(report.supersteps))
        .Cell(static_cast<int64_t>(report.failures_recovered))
        .Cell(report.sim_total_ms)
        .Cell(report.sim_ft_ms)
        .Cell(report.messages)
        .Cell(report.correct ? "yes" : "NO");

    std::vector<runtime::RecoveryHealth> health =
        runtime::ComputeRecoveryHealth(harness.metrics(),
                                       &baseline.metrics());
    // The four-way comparison (one representative per strategy family)
    // also lands in BENCH_confined.json.
    const bool four_way = label == "optimistic" || label == "rollback(k=2)" ||
                          label == "confined(k=2)" ||
                          label == "confined-log(k=2)";
    if (four_way) {
      // Run-level recomputation traffic: total messages shuffled over the
      // whole failed run minus the failure-free baseline. This is the
      // headline number for confined-log — replayed messages are read from
      // the log, not re-shuffled, so its extra traffic stays near zero
      // while rollback re-shuffles every re-executed superstep.
      confined_json->AddEntry()
          .Set("kind", "run_summary")
          .Set("workload", name)
          .Set("strategy", label)
          .Set("supersteps_executed", report.supersteps)
          .Set("failures_recovered", report.failures_recovered)
          .Set("messages_total", static_cast<int64_t>(report.messages))
          .Set("messages_baseline", static_cast<int64_t>(baseline_messages))
          .Set("messages_recomputed",
               static_cast<int64_t>(report.messages) -
                   static_cast<int64_t>(baseline_messages))
          .Set("sim_total_ms", report.sim_total_ms)
          .Set("sim_ft_ms", report.sim_ft_ms)
          .Set("correct", report.correct);
    }
    for (const auto& h : health) {
      if (four_way) {
        confined_json->AddEntry()
            .Set("kind", "recovery_health")
            .Set("workload", name)
            .Set("strategy", label)
            .Set("failure_iteration", h.failure_iteration)
            .Set("supersteps_to_reconverge", h.supersteps_to_reconverge)
            .Set("reconverged", h.reconverged)
            .Set("sim_lost_ms", static_cast<double>(h.sim_lost_ns) / 1e6)
            .Set("messages_recomputed", h.messages_recomputed)
            .Set("convergence_gap", h.convergence_gap)
            .Set("baseline_adjusted", h.baseline_adjusted);
      }
      json->AddEntry()
          .Set("kind", "recovery_health")
          .Set("workload", name)
          .Set("strategy", label)
          .Set("failure_iteration", h.failure_iteration)
          .Set("supersteps_to_reconverge", h.supersteps_to_reconverge)
          .Set("reconverged", h.reconverged)
          .Set("sim_lost_ms", static_cast<double>(h.sim_lost_ns) / 1e6)
          .Set("sim_lost_checkpoint_io_ms",
               static_cast<double>(h.sim_lost_by_charge[static_cast<int>(
                   runtime::Charge::kCheckpointIo)]) /
                   1e6)
          .Set("sim_lost_recovery_ms",
               static_cast<double>(h.sim_lost_by_charge[static_cast<int>(
                   runtime::Charge::kRecovery)]) /
                   1e6)
          .Set("messages_recomputed", h.messages_recomputed)
          .Set("convergence_gap", h.convergence_gap)
          .Set("baseline_adjusted", h.baseline_adjusted);
    }
    if (label == "optimistic") {
      std::cout << "recovery health (" << name << ", optimistic):\n"
                << runtime::RenderRecoveryHealth(health);
    }
  };

  core::OptimisticRecoveryPolicy optimistic(compensation);
  run_with("optimistic", &optimistic);
  for (int k : {1, 2, 5}) {
    core::CheckpointRollbackPolicy rollback(k);
    run_with("rollback(k=" + std::to_string(k) + ")", &rollback);
  }
  core::ConfinedRollbackPolicy confined(2, refresher);
  run_with("confined(k=2)", &confined);
  core::ConfinedLogReplayPolicy confined_log(2, refresher);
  run_with("confined-log(k=2)", &confined_log, /*message_log=*/true);
  core::RestartPolicy restart;
  run_with("restart", &restart);

  std::cout << "workload: " << name << "\nfailures:";
  for (const auto& event : failure_events) {
    std::cout << " [" << runtime::FailureEvent(event).ToString() << "]";
  }
  std::cout << "\n";
  bench::Emit(table);
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  bench::Banner("C2",
                "Recovery under failures: all strategies converge to the "
                "correct result; optimistic needs the fewest re-executed "
                "supersteps and no checkpoint I/O");

  // Per-failure recovery health (net of a failure-free baseline) for every
  // strategy and workload, for trend dashboards.
  bench::JsonReport json("C2-observability");
  // Four-way recovery health (optimistic / rollback / confined /
  // confined-log), one file per the confined-recovery experiment.
  bench::JsonReport confined_json("C2-confined");

  // PageRank with one mid-run failure and one late failure.
  Rng rng(3);
  graph::Graph pr_graph = graph::Rmat(10, 8, &rng);
  auto pr_truth = graph::ReferencePageRank(pr_graph, 0.85, 1000, 1e-14);
  algos::FixRanksCompensation fix_ranks(pr_graph.num_vertices());
  Scenario(
      "pagerank-rmat-1024v",
      [&](iteration::JobEnv env, iteration::FaultTolerancePolicy* policy,
          bool message_log, RunReport* report) {
        algos::PageRankOptions options;
        options.num_partitions = 4;
        options.max_iterations = 60;
        options.message_log = message_log;
        auto result = algos::RunPageRank(pr_graph, options, env, policy);
        FLINKLESS_RETURN_NOT_OK(result.status());
        report->iterations = result->iterations;
        report->supersteps = result->supersteps_executed;
        report->failures_recovered = result->failures_recovered;
        double err = 0;
        for (size_t v = 0; v < pr_truth.size(); ++v) {
          err = std::max(err, std::abs(result->ranks[v] - pr_truth[v]));
        }
        report->correct = err < 1e-6;
        return Status::OK();
      },
      &fix_ranks, {{8, {1}}, {15, {0, 2}}}, &json, &confined_json);

  // Connected Components with an early failure (costly for restart-style
  // strategies on a long diffusion).
  Rng cc_rng(4);
  graph::Graph cc_graph = graph::PreferentialAttachment(2000, 2, &cc_rng);
  auto cc_truth = graph::ReferenceConnectedComponents(cc_graph);
  algos::FixComponentsCompensation fix_components(&cc_graph);
  Scenario(
      "connected-components-pa-2000v",
      [&](iteration::JobEnv env, iteration::FaultTolerancePolicy* policy,
          bool message_log, RunReport* report) {
        algos::ConnectedComponentsOptions options;
        options.num_partitions = 4;
        options.message_log = message_log;
        auto result =
            algos::RunConnectedComponents(cc_graph, options, env, policy);
        FLINKLESS_RETURN_NOT_OK(result.status());
        report->iterations = result->iterations;
        report->supersteps = result->supersteps_executed;
        report->failures_recovered = result->failures_recovered;
        report->correct = result->labels == cc_truth;
        return Status::OK();
      },
      &fix_components, {{3, {2}}}, &json, &confined_json,
      algos::MakeNeighborhoodRefresher(&cc_graph));

  // SSSP with two failures.
  graph::Graph sssp_graph = graph::GridGraph(40, 40);
  auto sssp_truth = graph::ReferenceSssp(sssp_graph, 0);
  algos::FixDistancesCompensation fix_distances(&sssp_graph, 0);
  Scenario(
      "sssp-grid-1600v",
      [&](iteration::JobEnv env, iteration::FaultTolerancePolicy* policy,
          bool message_log, RunReport* report) {
        algos::SsspOptions options;
        options.num_partitions = 4;
        options.message_log = message_log;
        auto result = algos::RunSssp(sssp_graph, options, env, policy);
        FLINKLESS_RETURN_NOT_OK(result.status());
        report->iterations = result->iterations;
        report->supersteps = result->supersteps_executed;
        report->failures_recovered = result->failures_recovered;
        report->correct = result->distances == sssp_truth;
        return Status::OK();
      },
      &fix_distances, {{10, {1}}, {25, {3}}}, &json, &confined_json,
      algos::MakeNeighborhoodRefresher(
          &sssp_graph, [](const dataflow::Record& r) {
            return r[1].AsInt64() < algos::kSsspInfinity;
          }));

  // Recovery timeline trace: re-run the Connected Components failure
  // scenario under the optimistic policy with tracing on and export the
  // Chrome trace, so the failure → compensation → convergence sequence can
  // be inspected visually (Perfetto / chrome://tracing).
  {
    bench::JobHarness harness("cc-recovery-trace");
    harness.SetFailures(runtime::FailureSchedule(
        std::vector<runtime::FailureEvent>{{3, {2}}}));
    runtime::Tracer* tracer = harness.EnableTracing();
    algos::ConnectedComponentsOptions options;
    options.num_partitions = 4;
    core::OptimisticRecoveryPolicy optimistic(&fix_components);
    auto traced =
        algos::RunConnectedComponents(cc_graph, options, harness.Env(),
                                      &optimistic);
    FLINKLESS_CHECK(traced.ok(), "traced run: " + traced.status().ToString());
    FLINKLESS_CHECK(traced->labels == cc_truth,
                    "traced run diverged from ground truth");
    const std::string trace_path = "TRACE_c2_recovery.json";
    Status written = runtime::WriteTraceFile(*tracer, trace_path);
    FLINKLESS_CHECK(written.ok(), written.ToString());
    runtime::Tracer::Snapshot snapshot = tracer->Flush();
    runtime::TraceSummary summary =
        runtime::TraceSummary::FromSnapshot(snapshot);
    std::cout << "recovery timeline: wrote " << trace_path << " ("
              << summary.total_events << " events, "
              << summary.InstantCount("failure.injected")
              << " failure(s), load in Perfetto)\n";
    bench::Emit(bench::TraceSummaryTable(summary));

    // Critical-path profile of the traced recovery run: the compensation
    // span must show up on the failure superstep's critical path.
    runtime::ProfileReport profile =
        runtime::ProfileReport::FromSnapshot(snapshot);
    std::cout << profile.RenderText();
    json.AddEntry()
        .Set("kind", "profile")
        .Set("workload", "connected-components-pa-2000v")
        .Set("strategy", "optimistic")
        .Set("supersteps_profiled",
             static_cast<int64_t>(profile.supersteps.size()))
        .Set("compensation_on_critical_path",
             profile.CriticalPathHasCategory("compensation"));
  }

  const std::string json_path = "BENCH_observability.json";
  FLINKLESS_CHECK(json.WriteFile(json_path), "cannot write " + json_path);
  std::cout << "json: wrote " << json_path << "\n";
  const std::string confined_path = "BENCH_confined.json";
  FLINKLESS_CHECK(confined_json.WriteFile(confined_path),
                  "cannot write " + confined_path);
  std::cout << "json: wrote " << confined_path << "\n";
  return 0;
}
