// Shared plumbing for the experiment harnesses: a bundled job environment
// (clock + storage + metrics + failure schedule) and series printing.
//
// Every bench binary regenerates one table/figure of DESIGN.md's
// per-experiment index and prints (a) an aligned ASCII table of the series
// the paper plots and (b) the same data as CSV prefixed with "csv:", so the
// output is both readable and machine-parsable.

#ifndef FLINKLESS_BENCH_BENCH_UTIL_H_
#define FLINKLESS_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "iteration/context.h"
#include "runtime/cluster.h"
#include "runtime/cost_model.h"
#include "runtime/failure.h"
#include "runtime/metrics.h"
#include "runtime/sim_clock.h"
#include "runtime/stable_storage.h"
#include "runtime/thread_pool.h"
#include "runtime/tracing.h"

namespace flinkless::bench {

/// Owns one job run's runtime services and hands out a JobEnv view.
class JobHarness {
 public:
  explicit JobHarness(std::string job_id)
      : storage_(&clock_, &costs_), job_id_(std::move(job_id)) {}

  /// Installs a failure schedule (copied).
  void SetFailures(runtime::FailureSchedule failures) {
    failures_ = std::move(failures);
  }

  iteration::JobEnv Env() {
    iteration::JobEnv env;
    env.clock = &clock_;
    env.costs = &costs_;
    env.storage = &storage_;
    env.metrics = &metrics_;
    env.failures = &failures_;
    env.tracer = tracer_.get();
    env.job_id = job_id_;
    return env;
  }

  /// Turns tracing on for every job run through this harness (idempotent).
  /// The tracer reads the harness clock; Flush() it for a TraceSummary or
  /// pass it to runtime::WriteTraceFile.
  runtime::Tracer* EnableTracing() {
    if (tracer_ == nullptr) {
      runtime::Tracer::Options options;
      options.clock = &clock_;
      tracer_ = std::make_unique<runtime::Tracer>(options);
    }
    return tracer_.get();
  }

  runtime::SimClock& clock() { return clock_; }
  runtime::CostModel& costs() { return costs_; }
  runtime::StableStorage& storage() { return storage_; }
  runtime::MetricsRegistry& metrics() { return metrics_; }
  runtime::FailureSchedule& failures() { return failures_; }
  runtime::Tracer* tracer() { return tracer_.get(); }

 private:
  runtime::SimClock clock_;
  runtime::CostModel costs_;
  runtime::StableStorage storage_;
  runtime::MetricsRegistry metrics_;
  runtime::FailureSchedule failures_;
  std::unique_ptr<runtime::Tracer> tracer_;
  std::string job_id_;
};

/// Prints the experiment banner.
inline void Banner(const std::string& experiment_id,
                   const std::string& description) {
  std::cout << "==================================================\n"
            << experiment_id << ": " << description << "\n"
            << "==================================================\n";
}

/// Machine-readable experiment output: a flat list of measurement entries
/// serialized as a JSON document. Field order is preserved, so diffs of two
/// report files line up. Strings are escaped; numbers are emitted with
/// enough precision to round-trip.
class JsonReport {
 public:
  class Entry {
   public:
    Entry& Set(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, Quote(value));
      return *this;
    }
    Entry& Set(const std::string& key, const char* value) {
      return Set(key, std::string(value));
    }
    Entry& Set(const std::string& key, double value) {
      std::ostringstream out;
      out << std::setprecision(17) << value;
      fields_.emplace_back(key, out.str());
      return *this;
    }
    Entry& Set(const std::string& key, int64_t value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }
    Entry& Set(const std::string& key, uint64_t value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }
    Entry& Set(const std::string& key, int value) {
      return Set(key, static_cast<int64_t>(value));
    }
    Entry& Set(const std::string& key, bool value) {
      fields_.emplace_back(key, value ? "true" : "false");
      return *this;
    }

   private:
    friend class JsonReport;

    static std::string Quote(const std::string& raw) {
      std::string out = "\"";
      for (char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
      }
      out += '"';
      return out;
    }

    std::vector<std::pair<std::string, std::string>> fields_;
  };

  /// `workload` names the input/driver the experiment ran against (graph
  /// family, query mix, ...). Always serialized — as "" when unset — so
  /// every BENCH_*.json carries the same header schema.
  explicit JsonReport(std::string experiment_id, std::string workload = "")
      : experiment_id_(std::move(experiment_id)),
        workload_(std::move(workload)) {}

  void set_workload(std::string workload) { workload_ = std::move(workload); }

// Build provenance, injected per-target by bench/CMakeLists.txt; the
// fallbacks keep the header usable from translation units without them.
#ifndef FLINKLESS_GIT_SHA
#define FLINKLESS_GIT_SHA "unknown"
#endif
#ifndef FLINKLESS_BUILD_TYPE
#define FLINKLESS_BUILD_TYPE "unknown"
#endif
#ifndef FLINKLESS_COMPILER
#define FLINKLESS_COMPILER "unknown"
#endif

  /// Appends a new entry; populate it with chained Set calls. The returned
  /// reference is invalidated by the next AddEntry.
  Entry& AddEntry() {
    entries_.emplace_back();
    return entries_.back();
  }

  void Serialize(std::ostream& out) const {
    out << "{\n  \"experiment\": " << Entry::Quote(experiment_id_)
        << ",\n  \"workload\": " << Entry::Quote(workload_)
        << ",\n  \"build\": {"
        << "\"git_sha\": " << Entry::Quote(FLINKLESS_GIT_SHA) << ", "
        << "\"build_type\": " << Entry::Quote(FLINKLESS_BUILD_TYPE) << ", "
        << "\"compiler\": " << Entry::Quote(FLINKLESS_COMPILER) << ", "
        << "\"hardware_concurrency\": "
        << runtime::ThreadPool::HardwareConcurrency() << "},\n  \"entries\": [\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      out << "    {";
      const auto& fields = entries_[i].fields_;
      for (size_t f = 0; f < fields.size(); ++f) {
        if (f > 0) out << ", ";
        out << Entry::Quote(fields[f].first) << ": " << fields[f].second;
      }
      out << (i + 1 < entries_.size() ? "},\n" : "}\n");
    }
    out << "  ]\n}\n";
  }

  /// Writes the report to `path`. Returns false when the file cannot be
  /// opened or written.
  bool WriteFile(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    Serialize(out);
    return static_cast<bool>(out);
  }

 private:
  std::string experiment_id_;
  std::string workload_;
  std::vector<Entry> entries_;
};

/// Appends a TraceSummary to a report: one "trace_operator" entry per
/// operator (wall/self/sim time, record and message counts, partition skew)
/// plus one "trace_totals" entry with event and instant counts.
inline void AddTraceSummary(JsonReport* report,
                            const runtime::TraceSummary& summary) {
  for (const auto& op : summary.operators) {
    report->AddEntry()
        .Set("kind", "trace_operator")
        .Set("operator", op.name)
        .Set("spans", op.spans)
        .Set("wall_total_ms", static_cast<double>(op.wall_total_ns) / 1e6)
        .Set("wall_self_ms", static_cast<double>(op.wall_self_ns) / 1e6)
        .Set("sim_total_ms", static_cast<double>(op.sim_total_ns) / 1e6)
        .Set("records_in", op.records_in)
        .Set("records_out", op.records_out)
        .Set("messages", op.messages)
        .Set("partition_skew", op.SkewRatio());
  }
  report->AddEntry()
      .Set("kind", "trace_totals")
      .Set("total_events", summary.total_events)
      .Set("span_events", summary.span_events)
      .Set("instant_events", summary.instant_events)
      .Set("iteration_spans", summary.iteration_spans)
      .Set("dropped_events", summary.dropped_events)
      .Set("failures_injected", summary.InstantCount("failure.injected"))
      .Set("partitions_lost", summary.InstantCount("partition.lost"));
}

/// The per-operator TraceSummary table benches print next to their series.
inline TablePrinter TraceSummaryTable(const runtime::TraceSummary& summary) {
  TablePrinter table({"operator", "spans", "wall_ms", "self_ms", "sim_ms",
                      "records_in", "records_out", "messages", "skew"});
  for (const auto& op : summary.operators) {
    table.Row()
        .Cell(op.name)
        .Cell(static_cast<int64_t>(op.spans))
        .Cell(static_cast<double>(op.wall_total_ns) / 1e6)
        .Cell(static_cast<double>(op.wall_self_ns) / 1e6)
        .Cell(static_cast<double>(op.sim_total_ns) / 1e6)
        .Cell(static_cast<int64_t>(op.records_in))
        .Cell(static_cast<int64_t>(op.records_out))
        .Cell(static_cast<int64_t>(op.messages))
        .Cell(op.SkewRatio());
  }
  return table;
}

/// Prints a table twice: human-readable and as CSV lines prefixed "csv:".
inline void Emit(const TablePrinter& table) {
  table.PrintAscii(std::cout);
  std::ostringstream csv;
  table.PrintCsv(csv);
  std::string line;
  std::istringstream lines(csv.str());
  while (std::getline(lines, line)) {
    std::cout << "csv: " << line << "\n";
  }
  std::cout << "\n";
}

}  // namespace flinkless::bench

#endif  // FLINKLESS_BENCH_BENCH_UTIL_H_
