// Shared plumbing for the experiment harnesses: a bundled job environment
// (clock + storage + metrics + failure schedule) and series printing.
//
// Every bench binary regenerates one table/figure of DESIGN.md's
// per-experiment index and prints (a) an aligned ASCII table of the series
// the paper plots and (b) the same data as CSV prefixed with "csv:", so the
// output is both readable and machine-parsable.

#ifndef FLINKLESS_BENCH_BENCH_UTIL_H_
#define FLINKLESS_BENCH_BENCH_UTIL_H_

#include <iostream>
#include <sstream>
#include <string>

#include "common/table.h"
#include "iteration/context.h"
#include "runtime/cluster.h"
#include "runtime/cost_model.h"
#include "runtime/failure.h"
#include "runtime/metrics.h"
#include "runtime/sim_clock.h"
#include "runtime/stable_storage.h"

namespace flinkless::bench {

/// Owns one job run's runtime services and hands out a JobEnv view.
class JobHarness {
 public:
  explicit JobHarness(std::string job_id)
      : storage_(&clock_, &costs_), job_id_(std::move(job_id)) {}

  /// Installs a failure schedule (copied).
  void SetFailures(runtime::FailureSchedule failures) {
    failures_ = std::move(failures);
  }

  iteration::JobEnv Env() {
    iteration::JobEnv env;
    env.clock = &clock_;
    env.costs = &costs_;
    env.storage = &storage_;
    env.metrics = &metrics_;
    env.failures = &failures_;
    env.job_id = job_id_;
    return env;
  }

  runtime::SimClock& clock() { return clock_; }
  runtime::CostModel& costs() { return costs_; }
  runtime::StableStorage& storage() { return storage_; }
  runtime::MetricsRegistry& metrics() { return metrics_; }
  runtime::FailureSchedule& failures() { return failures_; }

 private:
  runtime::SimClock clock_;
  runtime::CostModel costs_;
  runtime::StableStorage storage_;
  runtime::MetricsRegistry metrics_;
  runtime::FailureSchedule failures_;
  std::string job_id_;
};

/// Prints the experiment banner.
inline void Banner(const std::string& experiment_id,
                   const std::string& description) {
  std::cout << "==================================================\n"
            << experiment_id << ": " << description << "\n"
            << "==================================================\n";
}

/// Prints a table twice: human-readable and as CSV lines prefixed "csv:".
inline void Emit(const TablePrinter& table) {
  table.PrintAscii(std::cout);
  std::ostringstream csv;
  table.PrintCsv(csv);
  std::string line;
  std::istringstream lines(csv.str());
  while (std::getline(lines, line)) {
    std::cout << "csv: " << line << "\n";
  }
  std::cout << "\n";
}

}  // namespace flinkless::bench

#endif  // FLINKLESS_BENCH_BENCH_UTIL_H_
