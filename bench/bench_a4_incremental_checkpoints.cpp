// Ablation A4: how far classic engineering can shrink the checkpoint
// overhead that optimistic recovery eliminates entirely.
//
// Compared on delta-iterative Connected Components, per-iteration
// checkpoint bytes and totals:
//   full             — every partition, every checkpoint;
//   part-incremental — skip partitions whose serialized bytes did not
//                      change; under HASH partitioning this saves nearly
//                      nothing, because every partition holds vertices of
//                      still-converging regions;
//   entry-level      — write only the solution entries modified since the
//                      last checkpoint (DeltaCheckpointPolicy's chain of
//                      deltas); shrinks with the update rate;
//   optimistic       — the paper's answer: zero bytes, always.
// Correctness is identical everywhere.

#include <iostream>

#include "algos/connected_components.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/reference.h"

using namespace flinkless;

int main() {
  SetLogLevel(LogLevel::kWarning);
  bench::Banner("A4",
                "Full vs incremental checkpoints vs optimistic for delta-"
                "iterative Connected Components");

  Rng rng(12);
  graph::Graph g = graph::PreferentialAttachment(3000, 2, &rng);
  auto truth = graph::ReferenceConnectedComponents(g);
  algos::ConnectedComponentsOptions options;
  options.num_partitions = 4;

  struct RunData {
    std::vector<double> bytes_per_iteration;
    uint64_t total_bytes = 0;
    double sim_total_ms = 0;
    bool correct = false;
  };

  auto run_with = [&](const std::string& label,
                      iteration::FaultTolerancePolicy* policy) {
    bench::JobHarness harness("a4-" + label);
    harness.SetFailures(runtime::FailureSchedule(
        std::vector<runtime::FailureEvent>{{4, {1}}}));
    auto result =
        algos::RunConnectedComponents(g, options, harness.Env(), policy);
    FLINKLESS_CHECK(result.ok(), label + ": " + result.status().ToString());
    RunData data;
    for (const auto& it : harness.metrics().iterations()) {
      data.bytes_per_iteration.push_back(
          static_cast<double>(it.bytes_checkpointed));
    }
    data.total_bytes = harness.storage().bytes_written();
    data.sim_total_ms = harness.clock().TotalMs();
    data.correct = result->labels == truth;
    return data;
  };

  core::CheckpointRollbackPolicy full(1, true, /*incremental=*/false);
  RunData full_data = run_with("full", &full);
  core::CheckpointRollbackPolicy incremental(1, true, /*incremental=*/true);
  RunData inc_data = run_with("incremental", &incremental);
  core::DeltaCheckpointPolicy entry_level(1);
  RunData entry_data = run_with("entry-level", &entry_level);
  algos::FixComponentsCompensation compensation(&g);
  core::OptimisticRecoveryPolicy optimistic(&compensation);
  RunData opt_data = run_with("optimistic", &optimistic);

  std::cout << "workload: " << g.ToString()
            << ", checkpoint every iteration, failure at iteration 4\n\n";

  TablePrinter per_iter({"iteration", "ckpt_bytes(full)",
                         "ckpt_bytes(part-incremental)",
                         "ckpt_bytes(entry-level)",
                         "ckpt_bytes(optimistic)"});
  size_t rows = std::max({full_data.bytes_per_iteration.size(),
                          inc_data.bytes_per_iteration.size(),
                          entry_data.bytes_per_iteration.size(),
                          opt_data.bytes_per_iteration.size()});
  for (size_t i = 0; i < rows; ++i) {
    auto cell = [&](const RunData& d) {
      return i < d.bytes_per_iteration.size()
                 ? static_cast<int64_t>(d.bytes_per_iteration[i])
                 : int64_t{0};
    };
    per_iter.Row()
        .Cell(static_cast<int64_t>(i + 1))
        .Cell(cell(full_data))
        .Cell(cell(inc_data))
        .Cell(cell(entry_data))
        .Cell(cell(opt_data));
  }
  bench::Emit(per_iter);

  TablePrinter totals({"strategy", "total_ckpt_bytes", "sim_total_ms",
                       "correct"});
  totals.Row()
      .Cell("rollback(k=1) full")
      .Cell(full_data.total_bytes)
      .Cell(full_data.sim_total_ms)
      .Cell(full_data.correct ? "yes" : "NO");
  totals.Row()
      .Cell("rollback(k=1,inc)")
      .Cell(inc_data.total_bytes)
      .Cell(inc_data.sim_total_ms)
      .Cell(inc_data.correct ? "yes" : "NO");
  totals.Row()
      .Cell("delta-ckpt(k=1)")
      .Cell(entry_data.total_bytes)
      .Cell(entry_data.sim_total_ms)
      .Cell(entry_data.correct ? "yes" : "NO");
  totals.Row()
      .Cell("optimistic")
      .Cell(opt_data.total_bytes)
      .Cell(opt_data.sim_total_ms)
      .Cell(opt_data.correct ? "yes" : "NO");
  bench::Emit(totals);
  return 0;
}
