// Experiment F1a/F1b: the dataflow plans of Figure 1.
//
// The paper's Figure 1 shows the Connected Components and PageRank dataflows
// with their compensation functions. This binary dumps the plans our engine
// actually executes so their structure can be compared operator by operator.

#include <iostream>

#include "algos/connected_components.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "bench_util.h"

int main() {
  using namespace flinkless;

  bench::Banner("F1a", "Connected Components delta-iteration dataflow");
  std::cout
      << "Paper operators: candidate-label Reduce, label-update Join,\n"
         "label-to-neighbors Join; compensation fix-components (invoked\n"
         "only after failures, outside the plan).\n\n"
      << algos::BuildConnectedComponentsPlan().Explain() << "\n";

  bench::Banner("F1b", "PageRank bulk-iteration dataflow");
  std::cout
      << "Paper operators: find-neighbors Join, recompute-ranks Reduce,\n"
         "compare-to-old-rank Join (realized as the driver's convergence\n"
         "hook over consecutive rank vectors); compensation fix-ranks.\n"
         "The dangling-mass aggregate is broadcast with a Cross, one of\n"
         "Flink's higher-order primitives (paper Section 2.1).\n\n"
      << algos::BuildPageRankPlan(/*num_vertices=*/10, /*damping=*/0.85)
             .Explain()
      << "\n";

  bench::Banner("F1-ext", "SSSP delta-iteration dataflow (CIKM'13 class)");
  std::cout << algos::BuildSsspPlan().Explain() << "\n";
  return 0;
}
