// Ablation A2: how much the *quality* of the compensation function matters
// (paper §2.2.2 motivates uniform redistribution of the lost probability
// mass — "as long as all ranks sum up to one, the algorithm will converge
// to the correct solution").
//
// PageRank with a failure at iteration 5; compensation variants:
//   redistribute-lost-mass  — the paper's FixRanks (mass-conserving),
//   uniform-reinit          — lost vertices get 1/n (mass broken),
//   full-reinit             — everything reset to 1/n (progress discarded).
// Reported: iterations to converge, extra iterations vs failure-free, final
// error vs true ranks, post-failure L1 spike height. Shape: all converge to
// the truth; better compensations lose less progress.

#include <cmath>
#include <iostream>

#include "algos/pagerank.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/reference.h"

using namespace flinkless;

int main() {
  SetLogLevel(LogLevel::kWarning);
  bench::Banner("A2",
                "Compensation quality for PageRank: every variant converges "
                "to the true ranks; mass-conserving redistribution loses "
                "the least progress");

  Rng rng(5);
  graph::Graph g = graph::Rmat(11, 8, &rng);
  algos::PageRankOptions options;
  options.num_partitions = 4;
  options.max_iterations = 200;
  auto truth = graph::ReferencePageRank(g, options.damping, 1000, 1e-14);
  const int fail_iter = 5;

  // Failure-free baseline iteration count.
  bench::JobHarness baseline("a2-baseline");
  core::NoFaultTolerancePolicy noft;
  auto base = algos::RunPageRank(g, options, baseline.Env(), &noft);
  FLINKLESS_CHECK(base.ok(), base.status().ToString());

  TablePrinter table({"compensation", "iterations", "extra_vs_failure_free",
                      "post_failure_l1_spike", "max_error_vs_truth",
                      "converged"});
  table.Row()
      .Cell("(failure-free)")
      .Cell(static_cast<int64_t>(base->iterations))
      .Cell(int64_t{0})
      .Cell("")
      .Cell("")
      .Cell(base->converged ? "yes" : "NO");

  for (auto variant :
       {algos::RankCompensationVariant::kRedistributeLostMass,
        algos::RankCompensationVariant::kUniformReinit,
        algos::RankCompensationVariant::kFullReinit}) {
    bench::JobHarness harness(
        "a2-" + algos::RankCompensationVariantName(variant));
    harness.SetFailures(runtime::FailureSchedule(
        std::vector<runtime::FailureEvent>{{fail_iter, {0}}}));
    algos::FixRanksCompensation compensation(g.num_vertices(), variant);
    core::OptimisticRecoveryPolicy policy(&compensation);
    auto result = algos::RunPageRank(g, options, harness.Env(), &policy);
    FLINKLESS_CHECK(result.ok(), result.status().ToString());

    double max_err = 0;
    for (size_t v = 0; v < truth.size(); ++v) {
      max_err = std::max(max_err, std::abs(result->ranks[v] - truth[v]));
    }
    auto l1 = harness.metrics().GaugeSeries("convergence_metric");
    double spike = static_cast<size_t>(fail_iter) < l1.size()
                       ? l1[fail_iter]
                       : 0.0;

    table.Row()
        .Cell(algos::RankCompensationVariantName(variant))
        .Cell(static_cast<int64_t>(result->iterations))
        .Cell(static_cast<int64_t>(result->iterations - base->iterations))
        .Cell(spike)
        .Cell(max_err)
        .Cell(result->converged ? "yes" : "NO");
  }
  bench::Emit(table);
  return 0;
}
