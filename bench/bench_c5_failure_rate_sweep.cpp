// Experiment C5: expected cost as a function of the failure rate — the
// paper's motivating observation made quantitative (§1: "real-world use
// cases indicate that many computations do not run for such a long time or
// on so many nodes that failures become commonplace", citing Chen et al.;
// hence checkpoints are often paid for nothing).
//
// Monte-Carlo sweep: each of N seeded trials draws a random failure
// schedule where every partition fails independently with probability p in
// each iteration; every strategy runs against the same schedules. Reported:
// mean simulated time per trial and worst-case correctness.
//
// Shape to observe: at p = 0 optimistic equals no-FT and every rollback
// variant pays pure overhead; as p grows, all strategies get slower, but
// optimistic's zero failure-free cost keeps it ahead until failures are far
// more frequent than any real cluster exhibits. Confined-log sits between:
// zero checkpoint I/O on this bulk workload (only the per-superstep message
// log) and exact, replay-based recovery whose cost scales with the lost
// partitions instead of the cluster.

#include <iostream>

#include "algos/pagerank.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/reference.h"

using namespace flinkless;

int main() {
  SetLogLevel(LogLevel::kWarning);
  bench::Banner("C5",
                "Expected cost vs failure rate (Monte-Carlo): how rare must "
                "failures be for checkpoints to be wasted work?");

  Rng graph_rng(1);
  graph::Graph g = graph::Rmat(9, 8, &graph_rng);  // 512 vertices
  auto truth = graph::ReferencePageRank(g, 0.85, 1000, 1e-14);
  algos::PageRankOptions options;
  options.num_partitions = 4;
  options.max_iterations = 80;
  options.l1_tolerance = 1e-8;

  const int kTrials = 5;
  const std::vector<double> kRates{0.0, 0.01, 0.03, 0.10};

  TablePrinter table({"failure_prob/iter", "strategy", "mean_sim_ms",
                      "mean_supersteps", "trials_correct"});

  for (double rate : kRates) {
    // One schedule set per rate, shared across strategies for fairness.
    std::vector<runtime::FailureSchedule> schedules;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(1000 + static_cast<uint64_t>(rate * 1e4) + trial);
      schedules.push_back(
          runtime::RandomFailures(40, options.num_partitions, rate, &rng));
    }

    auto sweep = [&](const std::string& label, auto make_policy,
                     bool message_log = false) {
      double total_ms = 0;
      int64_t total_supersteps = 0;
      int correct = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        bench::JobHarness harness("c5-" + label + "-" +
                                  std::to_string(trial));
        harness.SetFailures(schedules[trial]);
        algos::FixRanksCompensation compensation(g.num_vertices());
        auto policy = make_policy(&compensation);
        // Only confined-log pays for the outbound message log; every other
        // strategy runs unlogged.
        algos::PageRankOptions trial_options = options;
        trial_options.message_log = message_log;
        auto result =
            algos::RunPageRank(g, trial_options, harness.Env(), policy.get());
        FLINKLESS_CHECK(result.ok(), label + ": " + result.status().ToString());
        total_ms += harness.clock().TotalMs();
        total_supersteps += result->supersteps_executed;
        double err = 0;
        for (size_t v = 0; v < truth.size(); ++v) {
          err = std::max(err, std::abs(result->ranks[v] - truth[v]));
        }
        if (err < 1e-5) ++correct;
      }
      table.Row()
          .Cell(rate)
          .Cell(label)
          .Cell(total_ms / kTrials)
          .Cell(static_cast<double>(total_supersteps) / kTrials)
          .Cell(std::to_string(correct) + "/" + std::to_string(kTrials));
    };

    sweep("optimistic", [](core::CompensationFunction* c) {
      return std::make_unique<core::OptimisticRecoveryPolicy>(c);
    });
    sweep("rollback(k=2)", [](core::CompensationFunction*) {
      return std::make_unique<core::CheckpointRollbackPolicy>(2);
    });
    sweep("rollback(k=5)", [](core::CompensationFunction*) {
      return std::make_unique<core::CheckpointRollbackPolicy>(5);
    });
    sweep("confined(k=2)", [](core::CompensationFunction*) {
      return std::make_unique<core::ConfinedRollbackPolicy>(2);
    });
    sweep(
        "confined-log(k=2)",
        [](core::CompensationFunction*) {
          return std::make_unique<core::ConfinedLogReplayPolicy>(2);
        },
        /*message_log=*/true);
    sweep("restart", [](core::CompensationFunction*) {
      return std::make_unique<core::RestartPolicy>();
    });
  }

  std::cout << "workload: PageRank on " << g.ToString() << ", " << kTrials
            << " Monte-Carlo trials per cell, shared schedules per rate\n";
  bench::Emit(table);
  return 0;
}
