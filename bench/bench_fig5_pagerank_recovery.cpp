// Experiment F4/F5: the PageRank demo plots (paper §3.3, Figures 4 and 5).
//
// Regenerates the two per-iteration series the GUI shows:
//   (i)  number of vertices converged to their true PageRank, with the
//        plummet in the iteration after a failure at iteration 5, and
//   (ii) the L1 norm of the difference between consecutive rank estimates:
//        a downward trend with a spike at the post-failure iteration.

#include <iostream>

#include "algos/pagerank.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/reference.h"

using namespace flinkless;

namespace {

void RunScenario(const std::string& name, const graph::Graph& g,
                 const runtime::FailureSchedule& failures, int parts,
                 int max_iterations, double converged_tolerance) {
  algos::PageRankOptions options;
  options.num_partitions = parts;
  options.max_iterations = max_iterations;
  options.converged_tolerance = converged_tolerance;
  auto truth = graph::ReferencePageRank(g, options.damping, 1000, 1e-14);

  bench::JobHarness baseline("f5-" + name + "-baseline");
  core::NoFaultTolerancePolicy noft;
  auto base = algos::RunPageRank(g, options, baseline.Env(), &noft, &truth);
  FLINKLESS_CHECK(base.ok(), base.status().ToString());

  bench::JobHarness harness("f5-" + name);
  harness.SetFailures(failures);
  algos::FixRanksCompensation compensation(g.num_vertices());
  core::OptimisticRecoveryPolicy optimistic(&compensation);
  auto rec =
      algos::RunPageRank(g, options, harness.Env(), &optimistic, &truth);
  FLINKLESS_CHECK(rec.ok(), rec.status().ToString());

  double max_err = 0;
  for (size_t v = 0; v < truth.size(); ++v) {
    max_err = std::max(max_err, std::abs(rec->ranks[v] - truth[v]));
  }

  std::cout << "scenario: " << name << " — " << g.ToString() << ", "
            << parts << " partitions\nfailures: ";
  for (const auto& event : failures.events()) {
    std::cout << "[" << event.ToString() << "] ";
  }
  std::cout << "\nrecovered run converged after " << rec->iterations
            << " iterations (failure-free: " << base->iterations
            << "); max |rank - true| = " << max_err << "\n\n";

  TablePrinter table({"iteration", "converged_vertices(failure)",
                      "converged_vertices(failure-free)", "l1_diff(failure)",
                      "l1_diff(failure-free)", "total_mass(failure)",
                      "failure_injected"});
  const auto& with_failure = harness.metrics().iterations();
  const auto& failure_free = baseline.metrics().iterations();
  size_t rows = std::max(with_failure.size(), failure_free.size());
  for (size_t i = 0; i < rows; ++i) {
    auto row = table.Row();
    row.Cell(static_cast<int64_t>(i + 1));
    if (i < with_failure.size()) {
      row.Cell(with_failure[i].Gauge("converged_vertices"));
    } else {
      row.Cell("");
    }
    if (i < failure_free.size()) {
      row.Cell(failure_free[i].Gauge("converged_vertices"));
    } else {
      row.Cell("");
    }
    if (i < with_failure.size()) {
      row.Cell(with_failure[i].Gauge("convergence_metric"));
    } else {
      row.Cell("");
    }
    if (i < failure_free.size()) {
      row.Cell(failure_free[i].Gauge("convergence_metric"));
    } else {
      row.Cell("");
    }
    if (i < with_failure.size()) {
      row.Cell(with_failure[i].Gauge("total_mass"));
    } else {
      row.Cell("");
    }
    row.Cell((i < with_failure.size() && with_failure[i].failure_injected)
                 ? "yes"
                 : "");
  }
  bench::Emit(table);

  std::cout << AsciiPlot(
                   harness.metrics().GaugeSeries("converged_vertices"), 8,
                   "vertices converged to true rank (failure run — plummet "
                   "after the failure iteration):")
            << "\n";
  std::cout << AsciiPlot(harness.metrics().GaugeSeries("convergence_metric"),
                         8,
                         "L1 diff of consecutive estimates (failure run — "
                         "downward trend with a spike):")
            << "\n";
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  bench::Banner("F4/F5",
                "PageRank optimistic recovery (paper §3.3): plummet of "
                "converged vertices and L1 spike after the failure at "
                "iteration 5, uniform redistribution of the lost mass");

  // Small hand-crafted directed graph, failure at iteration 5 of
  // partition 1 — the GUI walkthrough numbers.
  RunScenario("demo-graph", graph::DemoDirectedGraph(),
              runtime::FailureSchedule(
                  std::vector<runtime::FailureEvent>{{5, {1}}}),
              /*parts=*/4, /*max_iterations=*/40,
              /*converged_tolerance=*/1e-6);

  // Larger Twitter-like graph (RMAT; see DESIGN.md §2).
  Rng rng(7);
  RunScenario("twitter-like", graph::Rmat(11, 8, &rng),
              runtime::FailureSchedule(
                  std::vector<runtime::FailureEvent>{{5, {0}}}),
              /*parts=*/4, /*max_iterations=*/30,
              /*converged_tolerance=*/1e-6);
  return 0;
}
