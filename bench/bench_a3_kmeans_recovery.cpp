// Ablation A3: optimistic recovery beyond graph algorithms — K-Means, a
// representative of the ML fixpoint algorithms the optimistic-recovery line
// of work targets (CIKM'13; the demo paper motivates with "complex machine
// learning algorithms", §1).
//
// A failure destroys centroid partitions mid-run. Compared: optimistic
// recovery (deterministic centroid re-seeding), rollback(k=1/2), restart.
// Reported: iterations, supersteps, clustering cost vs the failure-free
// baseline. Shape: all strategies deliver a good clustering; optimistic
// pays no checkpoint I/O; a compensated run may land in a different local
// optimum of equal quality.

#include <iostream>

#include "algos/kmeans.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/policies.h"

using namespace flinkless;

int main() {
  SetLogLevel(LogLevel::kWarning);
  bench::Banner("A3",
                "K-Means under failures: centroid re-seeding compensation "
                "vs rollback vs restart");

  Rng rng(31);
  auto points = algos::GenerateBlobs(/*k=*/6, /*points_per_blob=*/300,
                                     /*center_radius=*/20.0, /*stddev=*/1.5,
                                     &rng);
  algos::KMeansOptions options;
  options.k = 6;
  options.num_partitions = 4;
  options.max_iterations = 60;

  // Failure-free baseline.
  bench::JobHarness baseline("a3-baseline");
  core::NoFaultTolerancePolicy noft;
  auto base = algos::RunKMeans(points, options, baseline.Env(), &noft);
  FLINKLESS_CHECK(base.ok(), base.status().ToString());

  TablePrinter table({"strategy", "iterations", "supersteps", "cost",
                      "cost_vs_baseline", "sim_total_ms", "sim_ft_ms",
                      "converged"});
  table.Row()
      .Cell("(failure-free)")
      .Cell(static_cast<int64_t>(base->iterations))
      .Cell(static_cast<int64_t>(base->supersteps_executed))
      .Cell(base->cost)
      .Cell(1.0)
      .Cell(baseline.clock().TotalMs())
      .Cell(0.0)
      .Cell(base->converged ? "yes" : "NO");

  std::vector<runtime::FailureEvent> failure_events{{3, {0, 2}}};
  auto run_with = [&](const std::string& label,
                      iteration::FaultTolerancePolicy* policy) {
    bench::JobHarness harness("a3-" + label);
    harness.SetFailures(runtime::FailureSchedule(failure_events));
    auto result = algos::RunKMeans(points, options, harness.Env(), policy);
    FLINKLESS_CHECK(result.ok(), label + ": " + result.status().ToString());
    double ft_ms =
        static_cast<double>(
            harness.clock().Of(runtime::Charge::kCheckpointIo) +
            harness.clock().Of(runtime::Charge::kRecovery)) /
        1e6;
    table.Row()
        .Cell(label)
        .Cell(static_cast<int64_t>(result->iterations))
        .Cell(static_cast<int64_t>(result->supersteps_executed))
        .Cell(result->cost)
        .Cell(result->cost / base->cost)
        .Cell(harness.clock().TotalMs())
        .Cell(ft_ms)
        .Cell(result->converged ? "yes" : "NO");
  };

  algos::ReseedCentroidsCompensation compensation(&points, options.k);
  core::OptimisticRecoveryPolicy optimistic(&compensation);
  run_with("optimistic", &optimistic);
  for (int k : {1, 2}) {
    core::CheckpointRollbackPolicy rollback(k);
    run_with("rollback(k=" + std::to_string(k) + ")", &rollback);
  }
  core::RestartPolicy restart;
  run_with("restart", &restart);

  std::cout << "workload: 6 Gaussian blobs x 300 points, failure at "
               "iteration 3 losing partitions {0,2}\n";
  bench::Emit(table);
  return 0;
}
