// Experiment C3: the "larger graph derived from real-world data" scenario
// (paper §3.1). The original demo uses a Twitter follower snapshot (Cha et
// al., ICWSM'10) and tracks progress "only via plots of statistics of the
// algorithms' execution". The snapshot is not redistributable, so we use a
// Twitter-like synthetic graph — RMAT with Graph500 skew — and emit the
// same statistics series (see DESIGN.md §2 for why the substitution
// preserves the plotted behaviour).

#include <algorithm>
#include <iostream>
#include <limits>

#include "algos/connected_components.h"
#include "algos/datasets.h"
#include "algos/pagerank.h"
#include "bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/policies.h"
#include "dataflow/columnar.h"
#include "dataflow/dataset.h"
#include "dataflow/simd.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "runtime/thread_pool.h"

using namespace flinkless;
namespace simd = flinkless::dataflow::simd;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  FlagParser flags;
  int64_t* scale = flags.Int64(
      "scale", 14, "RMAT scale: 2^scale vertices, 8x that many edges");
  bool* sweep_only = flags.Bool(
      "sweep-only", false,
      "run only the thread-count sweep (the CI perf-smoke subset)");
  bool* batch = flags.Bool(
      "batch", true,
      "columnar batch execution in the thread sweep (false = record path)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n" << flags.Usage();
    return 1;
  }
  bench::Banner("C3",
                "Large Twitter-like graph scenario: statistics-only "
                "tracking of PageRank and Connected Components with "
                "mid-run failures and optimistic recovery");

  const int parts = 8;
  Rng rng(2026);
  // Default: 16384 vertices, 131072 edges.
  graph::Graph g = graph::Rmat(static_cast<int>(*scale), 8, &rng);
  std::cout << "graph: " << g.ToString() << " (RMAT scale " << *scale
            << ", Graph500 skew; Twitter-snapshot substitute)\n\n";

  // ------------------------------------------------------------ PageRank --
  if (!*sweep_only) {
    algos::PageRankOptions options;
    options.num_partitions = parts;
    options.max_iterations = 25;
    options.converged_tolerance = 1e-7;
    auto truth = graph::ReferencePageRank(g, options.damping, 500, 1e-13);

    bench::JobHarness harness("c3-pagerank");
    harness.SetFailures(runtime::FailureSchedule(
        std::vector<runtime::FailureEvent>{{8, {3}}, {16, {5}}}));
    algos::FixRanksCompensation fix_ranks(g.num_vertices());
    core::OptimisticRecoveryPolicy policy(&fix_ranks);
    runtime::WallTimer wall;
    auto result =
        algos::RunPageRank(g, options, harness.Env(), &policy, &truth);
    FLINKLESS_CHECK(result.ok(), result.status().ToString());

    std::cout << "PageRank: " << result->iterations << " iterations, "
              << result->failures_recovered << " failures recovered, wall "
              << wall.ElapsedMs() << " ms, "
              << harness.clock().Summary() << "\n";
    TablePrinter table({"iteration", "converged_vertices", "l1_diff",
                        "messages", "total_mass", "failure"});
    for (const auto& it : harness.metrics().iterations()) {
      table.Row()
          .Cell(static_cast<int64_t>(it.iteration))
          .Cell(it.Gauge("converged_vertices"))
          .Cell(it.Gauge("convergence_metric"))
          .Cell(it.messages_shuffled)
          .Cell(it.Gauge("total_mass"))
          .Cell(it.failure_injected ? "yes" : "");
    }
    bench::Emit(table);
  }

  // CC needs an undirected view; reuse the RMAT edge set symmetrically.
  graph::Graph cc_graph(g.num_vertices(), /*directed=*/false);
  for (const graph::Edge& e : g.edges()) {
    Status s = cc_graph.AddEdge(e.src, e.dst);
    FLINKLESS_CHECK(s.ok(), s.ToString());
  }

  // ------------------------------------------------- Connected Components --
  if (!*sweep_only) {
    auto truth = graph::ReferenceConnectedComponents(cc_graph);

    algos::ConnectedComponentsOptions options;
    options.num_partitions = parts;

    bench::JobHarness harness("c3-cc");
    harness.SetFailures(runtime::FailureSchedule(
        std::vector<runtime::FailureEvent>{{3, {1}}}));
    algos::FixComponentsCompensation fix_components(&cc_graph);
    core::OptimisticRecoveryPolicy policy(&fix_components);
    runtime::WallTimer wall;
    auto result = algos::RunConnectedComponents(cc_graph, options,
                                                harness.Env(), &policy,
                                                &truth);
    FLINKLESS_CHECK(result.ok(), result.status().ToString());
    FLINKLESS_CHECK(result->labels == truth, "CC result incorrect");

    std::cout << "Connected Components: " << result->iterations
              << " iterations, " << result->failures_recovered
              << " failures recovered, result correct, wall "
              << wall.ElapsedMs() << " ms, " << harness.clock().Summary()
              << "\n";
    TablePrinter table({"iteration", "converged_vertices", "workset_size",
                        "messages", "solution_updates", "failure"});
    for (const auto& it : harness.metrics().iterations()) {
      table.Row()
          .Cell(static_cast<int64_t>(it.iteration))
          .Cell(it.Gauge("converged_vertices"))
          .Cell(it.Gauge("workset_size"))
          .Cell(it.messages_shuffled)
          .Cell(it.Gauge("solution_updates"))
          .Cell(it.failure_injected ? "yes" : "");
    }
    bench::Emit(table);
  }

  // ------------------------------------------------- Thread-count sweep --
  // Wall-clock scaling of the same two failure/recovery jobs over executor
  // thread counts. The determinism contract is enforced, not assumed: every
  // point must reproduce the single-threaded result bit-for-bit (for
  // PageRank that means identical doubles). Simulated time is charged
  // identically at every point; only wall time may move.
  {
    std::cout << "Thread-count sweep (hardware_concurrency="
              << runtime::ThreadPool::HardwareConcurrency() << ")\n";
    bench::JsonReport report("C3-threads");
    TablePrinter table({"algo", "threads", "wall_ms", "sim_ms", "iterations",
                        "messages", "identical"});
    std::vector<double> pr_baseline;
    std::vector<int64_t> cc_baseline;
    for (int threads : {1, 2, 4, 8}) {
      {
        algos::PageRankOptions options;
        options.num_partitions = parts;
        options.max_iterations = 25;
        options.num_threads = threads;
        options.columnar_batch = *batch;
        bench::JobHarness harness("c3-pr-t" + std::to_string(threads));
        harness.SetFailures(runtime::FailureSchedule(
            std::vector<runtime::FailureEvent>{{8, {3}}, {16, {5}}}));
        algos::FixRanksCompensation fix_ranks(g.num_vertices());
        core::OptimisticRecoveryPolicy policy(&fix_ranks);
        runtime::WallTimer wall;
        auto result =
            algos::RunPageRank(g, options, harness.Env(), &policy, nullptr);
        FLINKLESS_CHECK(result.ok(), result.status().ToString());
        double wall_ms = wall.ElapsedMs();
        if (threads == 1) pr_baseline = result->ranks;
        bool identical = result->ranks == pr_baseline;
        FLINKLESS_CHECK(identical, "PageRank output depends on thread count");
        uint64_t messages = harness.metrics().TotalMessages();
        table.Row()
            .Cell("pagerank")
            .Cell(static_cast<int64_t>(threads))
            .Cell(wall_ms)
            .Cell(harness.clock().TotalMs())
            .Cell(static_cast<int64_t>(result->iterations))
            .Cell(messages)
            .Cell(identical ? "yes" : "NO");
        report.AddEntry()
            .Set("algo", "pagerank")
            .Set("num_threads", threads)
            .Set("columnar_batch", *batch)
            .Set("wall_ms", wall_ms)
            .Set("sim_ms", harness.clock().TotalMs())
            .Set("iterations", result->iterations)
            .Set("messages_shuffled", messages)
            .Set("failures_recovered", result->failures_recovered)
            .Set("identical_to_serial", identical);
      }
      {
        algos::ConnectedComponentsOptions options;
        options.num_partitions = parts;
        options.num_threads = threads;
        options.columnar_batch = *batch;
        bench::JobHarness harness("c3-cc-t" + std::to_string(threads));
        harness.SetFailures(runtime::FailureSchedule(
            std::vector<runtime::FailureEvent>{{3, {1}}}));
        algos::FixComponentsCompensation fix_components(&cc_graph);
        core::OptimisticRecoveryPolicy policy(&fix_components);
        runtime::WallTimer wall;
        auto result = algos::RunConnectedComponents(cc_graph, options,
                                                    harness.Env(), &policy);
        FLINKLESS_CHECK(result.ok(), result.status().ToString());
        double wall_ms = wall.ElapsedMs();
        if (threads == 1) cc_baseline = result->labels;
        bool identical = result->labels == cc_baseline;
        FLINKLESS_CHECK(identical, "CC output depends on thread count");
        uint64_t messages = harness.metrics().TotalMessages();
        table.Row()
            .Cell("connected-components")
            .Cell(static_cast<int64_t>(threads))
            .Cell(wall_ms)
            .Cell(harness.clock().TotalMs())
            .Cell(static_cast<int64_t>(result->iterations))
            .Cell(messages)
            .Cell(identical ? "yes" : "NO");
        report.AddEntry()
            .Set("algo", "connected-components")
            .Set("num_threads", threads)
            .Set("columnar_batch", *batch)
            .Set("wall_ms", wall_ms)
            .Set("sim_ms", harness.clock().TotalMs())
            .Set("iterations", result->iterations)
            .Set("messages_shuffled", messages)
            .Set("failures_recovered", result->failures_recovered)
            .Set("identical_to_serial", identical);
      }
    }
    bench::Emit(table);

    // Delta-upsert phase in isolation: SolutionSet::ApplyDelta over a full
    // graph-sized delta, the exact code path the delta driver runs each
    // superstep. Wall time should drop with threads; the resulting solution
    // bytes and version clocks must not move at all.
    {
      const int rounds = 50;
      std::vector<dataflow::Record> labels = algos::InitialLabels(cc_graph);
      auto delta = dataflow::PartitionedDataset::HashPartitioned(
          labels, {0}, parts);
      TablePrinter upsert_table(
          {"phase", "threads", "wall_ms", "records_per_round", "identical"});
      std::vector<uint64_t> baseline_versions;
      for (int threads : {1, 2, 4, 8}) {
        iteration::SolutionSet solution(parts, {0});
        for (const dataflow::Record& r : labels) solution.Upsert(r);
        runtime::ThreadPool pool(threads);
        runtime::ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
        // ApplyDelta consumes its argument; copy the rounds up front so the
        // timed region holds only the scatter/apply phases.
        std::vector<dataflow::PartitionedDataset> round_deltas(rounds, delta);
        runtime::WallTimer wall;
        for (dataflow::PartitionedDataset& d : round_deltas) {
          solution.ApplyDelta(std::move(d), pool_ptr, nullptr);
        }
        double wall_ms = wall.ElapsedMs();
        if (threads == 1) baseline_versions = solution.VersionVector();
        bool identical = solution.VersionVector() == baseline_versions;
        FLINKLESS_CHECK(identical,
                        "solution versions depend on thread count");
        upsert_table.Row()
            .Cell("delta-upsert")
            .Cell(static_cast<int64_t>(threads))
            .Cell(wall_ms)
            .Cell(static_cast<int64_t>(labels.size()))
            .Cell(identical ? "yes" : "NO");
        report.AddEntry()
            .Set("algo", "delta-upsert-phase")
            .Set("num_threads", threads)
            .Set("wall_ms", wall_ms)
            .Set("records_per_round", static_cast<int64_t>(labels.size()))
            .Set("rounds", rounds)
            .Set("identical_to_serial", identical);
      }
      bench::Emit(upsert_table);
    }

    const std::string json_path = "BENCH_threads.json";
    FLINKLESS_CHECK(report.WriteFile(json_path),
                    "cannot write " + json_path);
    std::cout << "json: wrote " << json_path << "\n";
  }

  // ------------------------------------------- loop-invariant cache sweep --
  // The same two failure/recovery jobs with the superstep-persistent
  // ExecCache on and off (DESIGN.md §10). Correctness is enforced: cached
  // runs must reproduce the uncached results bit-for-bit. The win shows up
  // in simulated time per superstep — the static side (links, dangling,
  // edges) is shuffled and index-built once per job instead of once per
  // superstep.
  if (!*sweep_only) {
    std::cout << "Loop-invariant cache sweep (cache off vs on)\n";
    bench::JsonReport report("C3-cache");
    TablePrinter table({"algo", "cache", "wall_ms", "sim_ms",
                        "sim_ms_per_superstep", "iterations", "identical"});
    std::vector<double> pr_baseline;
    std::vector<int64_t> cc_baseline;
    double pr_plain_step_ms = 0, cc_plain_step_ms = 0;
    for (bool cached : {false, true}) {
      {
        algos::PageRankOptions options;
        options.num_partitions = parts;
        options.max_iterations = 25;
        options.cache_loop_invariant = cached;
        bench::JobHarness harness(std::string("c3-pr-cache") +
                                  (cached ? "1" : "0"));
        harness.SetFailures(runtime::FailureSchedule(
            std::vector<runtime::FailureEvent>{{8, {3}}, {16, {5}}}));
        algos::FixRanksCompensation fix_ranks(g.num_vertices());
        core::OptimisticRecoveryPolicy policy(&fix_ranks);
        runtime::WallTimer wall;
        auto result =
            algos::RunPageRank(g, options, harness.Env(), &policy, nullptr);
        FLINKLESS_CHECK(result.ok(), result.status().ToString());
        double wall_ms = wall.ElapsedMs();
        if (!cached) pr_baseline = result->ranks;
        bool identical = result->ranks == pr_baseline;
        FLINKLESS_CHECK(identical, "caching changed the PageRank result");
        double step_ms =
            harness.clock().TotalMs() / std::max(1, result->iterations);
        if (!cached) pr_plain_step_ms = step_ms;
        table.Row()
            .Cell("pagerank")
            .Cell(cached ? "on" : "off")
            .Cell(wall_ms)
            .Cell(harness.clock().TotalMs())
            .Cell(step_ms)
            .Cell(static_cast<int64_t>(result->iterations))
            .Cell(identical ? "yes" : "NO");
        report.AddEntry()
            .Set("algo", "pagerank")
            .Set("cache_loop_invariant", cached)
            .Set("wall_ms", wall_ms)
            .Set("sim_ms", harness.clock().TotalMs())
            .Set("sim_ms_per_superstep", step_ms)
            .Set("superstep_speedup",
                 cached && step_ms > 0 ? pr_plain_step_ms / step_ms : 1.0)
            .Set("iterations", result->iterations)
            .Set("failures_recovered", result->failures_recovered)
            .Set("identical_to_uncached", identical);
      }
      {
        algos::ConnectedComponentsOptions options;
        options.num_partitions = parts;
        options.cache_loop_invariant = cached;
        bench::JobHarness harness(std::string("c3-cc-cache") +
                                  (cached ? "1" : "0"));
        harness.SetFailures(runtime::FailureSchedule(
            std::vector<runtime::FailureEvent>{{3, {1}}}));
        algos::FixComponentsCompensation fix_components(&cc_graph);
        core::OptimisticRecoveryPolicy policy(&fix_components);
        runtime::WallTimer wall;
        auto result = algos::RunConnectedComponents(cc_graph, options,
                                                    harness.Env(), &policy);
        FLINKLESS_CHECK(result.ok(), result.status().ToString());
        double wall_ms = wall.ElapsedMs();
        if (!cached) cc_baseline = result->labels;
        bool identical = result->labels == cc_baseline;
        FLINKLESS_CHECK(identical, "caching changed the CC result");
        double step_ms =
            harness.clock().TotalMs() / std::max(1, result->iterations);
        if (!cached) cc_plain_step_ms = step_ms;
        table.Row()
            .Cell("connected-components")
            .Cell(cached ? "on" : "off")
            .Cell(wall_ms)
            .Cell(harness.clock().TotalMs())
            .Cell(step_ms)
            .Cell(static_cast<int64_t>(result->iterations))
            .Cell(identical ? "yes" : "NO");
        report.AddEntry()
            .Set("algo", "connected-components")
            .Set("cache_loop_invariant", cached)
            .Set("wall_ms", wall_ms)
            .Set("sim_ms", harness.clock().TotalMs())
            .Set("sim_ms_per_superstep", step_ms)
            .Set("superstep_speedup",
                 cached && step_ms > 0 ? cc_plain_step_ms / step_ms : 1.0)
            .Set("iterations", result->iterations)
            .Set("failures_recovered", result->failures_recovered)
            .Set("identical_to_uncached", identical);
      }
    }
    bench::Emit(table);
    const std::string json_path = "BENCH_cache.json";
    FLINKLESS_CHECK(report.WriteFile(json_path),
                    "cannot write " + json_path);
    std::cout << "json: wrote " << json_path << "\n";
  }

  // ------------------------------------------------------------ SIMD sweep --
  // The vectorized columnar kernels (DESIGN.md §15): the same two
  // failure/recovery jobs with the kernels forced scalar vs dispatched to
  // the best tier the CPU supports, at 1 and 8 worker threads. Bit-identity
  // is enforced across every (simd, threads) point — the tiers only trade
  // wall-clock. The kernel micro walls at the end are what the CI
  // perf-smoke gates on (aggregate over hash + probe + serde; full-job wall
  // is too noisy for a gate). An active FLINKLESS_SIMD override caps the
  // "max" points to the forced level, collapsing the sweep — the report
  // records the level that actually ran.
  {
    std::cout << "SIMD sweep (scalar vs dispatched; detected tier: "
              << simd::LevelName(simd::Detect()) << ")\n";
    bench::JsonReport report("C3-simd");
    TablePrinter table(
        {"algo", "simd", "threads", "wall_ms", "sim_ms", "identical"});
    const simd::Level prev_level = simd::ActiveLevel();
    std::vector<double> pr_baseline;
    std::vector<int64_t> cc_baseline;
    bool have_baseline = false;
    for (simd::SimdLevel mode : {simd::SimdLevel::kOff,
                                 simd::SimdLevel::kMax}) {
      // Apply the request up front so the label reflects the level that
      // actually runs (an env override caps "max" to the forced tier).
      const char* mode_name = simd::LevelName(simd::ApplySimdLevel(mode));
      for (int threads : {1, 8}) {
        {
          algos::PageRankOptions options;
          options.num_partitions = parts;
          options.max_iterations = 25;
          options.num_threads = threads;
          options.simd = mode;
          bench::JobHarness harness("c3-pr-simd-" + std::string(mode_name) +
                                    "-t" + std::to_string(threads));
          harness.SetFailures(runtime::FailureSchedule(
              std::vector<runtime::FailureEvent>{{8, {3}}, {16, {5}}}));
          algos::FixRanksCompensation fix_ranks(g.num_vertices());
          core::OptimisticRecoveryPolicy policy(&fix_ranks);
          runtime::WallTimer wall;
          auto result =
              algos::RunPageRank(g, options, harness.Env(), &policy, nullptr);
          FLINKLESS_CHECK(result.ok(), result.status().ToString());
          double wall_ms = wall.ElapsedMs();
          if (!have_baseline) pr_baseline = result->ranks;
          bool identical = result->ranks == pr_baseline;
          FLINKLESS_CHECK(identical, "PageRank output depends on SIMD level");
          table.Row()
              .Cell("pagerank")
              .Cell(mode_name)
              .Cell(static_cast<int64_t>(threads))
              .Cell(wall_ms)
              .Cell(harness.clock().TotalMs())
              .Cell(identical ? "yes" : "NO");
          report.AddEntry()
              .Set("algo", "pagerank")
              .Set("simd", mode_name)
              .Set("num_threads", threads)
              .Set("wall_ms", wall_ms)
              .Set("sim_ms", harness.clock().TotalMs())
              .Set("iterations", result->iterations)
              .Set("failures_recovered", result->failures_recovered)
              .Set("identical_to_scalar", identical);
        }
        {
          algos::ConnectedComponentsOptions options;
          options.num_partitions = parts;
          options.num_threads = threads;
          options.simd = mode;
          bench::JobHarness harness("c3-cc-simd-" + std::string(mode_name) +
                                    "-t" + std::to_string(threads));
          harness.SetFailures(runtime::FailureSchedule(
              std::vector<runtime::FailureEvent>{{3, {1}}}));
          algos::FixComponentsCompensation fix_components(&cc_graph);
          core::OptimisticRecoveryPolicy policy(&fix_components);
          runtime::WallTimer wall;
          auto result = algos::RunConnectedComponents(cc_graph, options,
                                                      harness.Env(), &policy);
          FLINKLESS_CHECK(result.ok(), result.status().ToString());
          double wall_ms = wall.ElapsedMs();
          if (!have_baseline) {
            cc_baseline = result->labels;
            have_baseline = true;
          }
          bool identical = result->labels == cc_baseline;
          FLINKLESS_CHECK(identical, "CC output depends on SIMD level");
          table.Row()
              .Cell("connected-components")
              .Cell(mode_name)
              .Cell(static_cast<int64_t>(threads))
              .Cell(wall_ms)
              .Cell(harness.clock().TotalMs())
              .Cell(identical ? "yes" : "NO");
          report.AddEntry()
              .Set("algo", "connected-components")
              .Set("simd", mode_name)
              .Set("num_threads", threads)
              .Set("wall_ms", wall_ms)
              .Set("sim_ms", harness.clock().TotalMs())
              .Set("iterations", result->iterations)
              .Set("failures_recovered", result->failures_recovered)
              .Set("identical_to_scalar", identical);
        }
      }
    }

    // Kernel micro walls: hash a large key stripe, probe a flat index with
    // it, run the int64/uint32 fold kernels over flat columns, and
    // round-trip a string-bearing dataset through the v2 serde — the
    // vectorized paths, timed in isolation. Every wall is the minimum over
    // several batches: min-of-N filters scheduler/steal noise on shared
    // runners, which otherwise dwarfs the kernel deltas. The CI gate
    // requires the folds to beat scalar and the rest to stay within a
    // regression bound — the folds are pure data-parallel arithmetic and
    // win on every vector part, while the hash's emulated 64-bit multiply
    // (three 32x32 multiplies per lane product) only pays off on cores
    // with two vector-multiply ports.
    {
      const size_t kn = size_t{1} << 20;
      Rng krng(99);
      std::vector<dataflow::Record> rows;
      rows.reserve(kn / 16);
      for (size_t i = 0; i < kn / 16; ++i) {
        rows.push_back(dataflow::MakeRecord(
            static_cast<int64_t>(krng.NextBounded(kn / 32)),
            static_cast<int64_t>(i),
            "value-" + std::to_string(i % 97)));
      }
      auto serde_ds = dataflow::PartitionedDataset::RoundRobin(rows, parts);
      std::vector<int64_t> keys(kn);
      for (int64_t& k : keys) k = static_cast<int64_t>(krng.Next());
      std::vector<uint64_t> hashes(kn);
      std::vector<uint32_t> fold_u32(kn);
      for (uint32_t& v : fold_u32) v = static_cast<uint32_t>(krng.Next());
      std::vector<uint32_t> fold_out(kn);
      dataflow::FlatKeyIndex index;
      index.Build(rows, {0});
      std::vector<int64_t> probe_keys;
      FLINKLESS_CHECK(dataflow::ExtractKey64(rows, {0}, &probe_keys),
                      "probe keys are not flat int64");
      std::vector<uint64_t> probe_hashes(probe_keys.size());
      std::vector<int32_t> probe_first(probe_keys.size());

      auto min_wall = [](int batches, int reps, auto&& body) {
        double best = std::numeric_limits<double>::infinity();
        for (int b = 0; b < batches; ++b) {
          runtime::WallTimer timer;
          for (int r = 0; r < reps; ++r) body();
          best = std::min(best, timer.ElapsedMs());
        }
        return best;
      };
      const int kBatches = 6;
      for (simd::SimdLevel mode : {simd::SimdLevel::kOff,
                                   simd::SimdLevel::kMax}) {
        const simd::Level level = simd::ApplySimdLevel(mode);
        const simd::Kernels& k = simd::KernelsFor(level);
        double hash_ms = min_wall(kBatches, 4, [&] {
          k.hash_key64(keys.data(), kn, hashes.data());
        });
        k.hash_key64(probe_keys.data(), probe_keys.size(),
                     probe_hashes.data());
        double probe_ms = min_wall(kBatches, 4, [&] {
          index.FindFirstStripe(probe_keys.data(), probe_hashes.data(),
                                probe_keys.size(), probe_first.data());
        });
        double fold_ms = min_wall(kBatches, 4, [&] {
          volatile int64_t sum = k.sum_i64(keys.data(), kn);
          volatile int64_t lo = k.min_i64(keys.data(), kn);
          volatile int64_t hi = k.max_i64(keys.data(), kn);
          (void)sum, (void)lo, (void)hi;
          k.delta_u32(fold_u32.data(), kn - 1, fold_out.data());
          k.prefix_sum_u32(fold_u32.data(), kn, fold_out.data());
          volatile uint64_t total = k.sum_u32(fold_u32.data(), kn);
          (void)total;
        });
        double serde_ms = min_wall(kBatches, 2, [&] {
          auto blob = dataflow::SerializePartitionedDataset(serde_ds);
          auto back = dataflow::DeserializePartitionedDataset(blob);
          FLINKLESS_CHECK(back.ok(), "serde round-trip failed");
        });
        double total_ms = hash_ms + probe_ms + fold_ms + serde_ms;
        table.Row()
            .Cell("kernels")
            .Cell(k.name)
            .Cell(int64_t{1})
            .Cell(total_ms)
            .Cell(0.0)
            .Cell("n/a");
        report.AddEntry()
            .Set("algo", "kernels")
            .Set("simd", k.name)
            .Set("hash_wall_ms", hash_ms)
            .Set("probe_wall_ms", probe_ms)
            .Set("fold_wall_ms", fold_ms)
            .Set("serde_wall_ms", serde_ms)
            .Set("kernel_wall_ms", total_ms);
      }
      simd::SetLevel(prev_level);
    }

    bench::Emit(table);
    const std::string json_path = "BENCH_simd.json";
    FLINKLESS_CHECK(report.WriteFile(json_path),
                    "cannot write " + json_path);
    std::cout << "json: wrote " << json_path << "\n";
  }

  // --------------------------------------------- memory-budget spill sweep --
  // The budgeted MemoryManager (DESIGN.md §11) under pressure: the same two
  // failure/recovery jobs at an unlimited budget, then at 50% and 10% of
  // the peak residency the unlimited run measured. Correctness is enforced
  // bit-for-bit at every budget; the cost of the thrash shows up in
  // simulated checkpoint I/O per superstep, reported per iteration in
  // BENCH_spill.json together with the spilled bytes.
  if (!*sweep_only) {
    std::cout << "Memory-budget spill sweep (unlimited vs 50% vs 10% of "
                 "peak residency)\n";
    bench::JsonReport report("C3-spill");
    TablePrinter table({"algo", "budget", "sim_ms", "spills", "unspills",
                        "spilled_bytes", "peak_resident_bytes", "identical"});

    struct SpillPoint {
      const char* label;
      uint64_t budget;
    };
    auto budgets_of = [](uint64_t peak) {
      return std::vector<SpillPoint>{{"unlimited", 0},
                                     {"50%-of-peak", std::max<uint64_t>(
                                                         1, peak / 2)},
                                     {"10%-of-peak", std::max<uint64_t>(
                                                         1, peak / 10)}};
    };

    // ---- PageRank ----
    {
      std::vector<double> pr_baseline;
      uint64_t pr_peak = 0;
      std::vector<SpillPoint> points{{"unlimited", 0}};
      for (size_t i = 0; i < points.size(); ++i) {
        const SpillPoint point = points[i];
        algos::PageRankOptions options;
        options.num_partitions = parts;
        options.max_iterations = 25;
        options.memory_budget_bytes = point.budget;
        bench::JobHarness harness(std::string("c3-pr-spill-") + point.label);
        harness.SetFailures(runtime::FailureSchedule(
            std::vector<runtime::FailureEvent>{{8, {3}}, {16, {5}}}));
        algos::FixRanksCompensation fix_ranks(g.num_vertices());
        core::OptimisticRecoveryPolicy policy(&fix_ranks);
        auto result =
            algos::RunPageRank(g, options, harness.Env(), &policy, nullptr);
        FLINKLESS_CHECK(result.ok(), result.status().ToString());
        if (point.budget == 0) pr_baseline = result->ranks;
        bool identical = result->ranks == pr_baseline;
        FLINKLESS_CHECK(identical, "budget changed the PageRank result");

        uint64_t spills = 0, unspills = 0, spilled = 0, peak = 0;
        for (const auto& it : harness.metrics().iterations()) {
          spills += it.spills;
          unspills += it.unspills;
          spilled += it.spilled_bytes;
          peak = std::max(peak, it.peak_resident_bytes);
          report.AddEntry()
              .Set("algo", "pagerank")
              .Set("budget", point.label)
              .Set("budget_bytes", static_cast<int64_t>(point.budget))
              .Set("iteration", static_cast<int64_t>(it.iteration))
              .Set("sim_ms", static_cast<double>(it.sim_time_ns) / 1e6)
              .Set("spilled_bytes", static_cast<int64_t>(it.spilled_bytes))
              .Set("spills", static_cast<int64_t>(it.spills))
              .Set("unspills", static_cast<int64_t>(it.unspills));
        }
        if (point.budget == 0) {
          pr_peak = peak;
          auto sized = budgets_of(pr_peak);
          points.assign(sized.begin(), sized.end());
          FLINKLESS_CHECK(spills == 0,
                          "unlimited budget must not spill");
        } else {
          FLINKLESS_CHECK(spills > 0, "budget below peak must spill");
        }
        table.Row()
            .Cell("pagerank")
            .Cell(point.label)
            .Cell(harness.clock().TotalMs())
            .Cell(spills)
            .Cell(unspills)
            .Cell(spilled)
            .Cell(peak)
            .Cell(identical ? "yes" : "NO");
      }
    }

    // ---- Connected Components ----
    {
      std::vector<int64_t> cc_baseline;
      uint64_t cc_peak = 0;
      std::vector<SpillPoint> points{{"unlimited", 0}};
      for (size_t i = 0; i < points.size(); ++i) {
        const SpillPoint point = points[i];
        algos::ConnectedComponentsOptions options;
        options.num_partitions = parts;
        options.memory_budget_bytes = point.budget;
        bench::JobHarness harness(std::string("c3-cc-spill-") + point.label);
        harness.SetFailures(runtime::FailureSchedule(
            std::vector<runtime::FailureEvent>{{3, {1}}}));
        algos::FixComponentsCompensation fix_components(&cc_graph);
        core::OptimisticRecoveryPolicy policy(&fix_components);
        auto result = algos::RunConnectedComponents(cc_graph, options,
                                                    harness.Env(), &policy);
        FLINKLESS_CHECK(result.ok(), result.status().ToString());
        if (point.budget == 0) cc_baseline = result->labels;
        bool identical = result->labels == cc_baseline;
        FLINKLESS_CHECK(identical, "budget changed the CC result");

        uint64_t spills = 0, unspills = 0, spilled = 0, peak = 0;
        for (const auto& it : harness.metrics().iterations()) {
          spills += it.spills;
          unspills += it.unspills;
          spilled += it.spilled_bytes;
          peak = std::max(peak, it.peak_resident_bytes);
          report.AddEntry()
              .Set("algo", "connected-components")
              .Set("budget", point.label)
              .Set("budget_bytes", static_cast<int64_t>(point.budget))
              .Set("iteration", static_cast<int64_t>(it.iteration))
              .Set("sim_ms", static_cast<double>(it.sim_time_ns) / 1e6)
              .Set("spilled_bytes", static_cast<int64_t>(it.spilled_bytes))
              .Set("spills", static_cast<int64_t>(it.spills))
              .Set("unspills", static_cast<int64_t>(it.unspills));
        }
        if (point.budget == 0) {
          cc_peak = peak;
          auto sized = budgets_of(cc_peak);
          points.assign(sized.begin(), sized.end());
          FLINKLESS_CHECK(spills == 0,
                          "unlimited budget must not spill");
        } else {
          FLINKLESS_CHECK(spills > 0, "budget below peak must spill");
        }
        table.Row()
            .Cell("connected-components")
            .Cell(point.label)
            .Cell(harness.clock().TotalMs())
            .Cell(spills)
            .Cell(unspills)
            .Cell(spilled)
            .Cell(peak)
            .Cell(identical ? "yes" : "NO");
      }
    }

    bench::Emit(table);
    const std::string json_path = "BENCH_spill.json";
    FLINKLESS_CHECK(report.WriteFile(json_path),
                    "cannot write " + json_path);
    std::cout << "json: wrote " << json_path << "\n";
  }
  return 0;
}
