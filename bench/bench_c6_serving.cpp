// Experiment C6: serving point reads from an in-flight iteration
// (DESIGN.md §16). A Connected Components job runs on the JobServer while
// a lookup storm probes its evolving solution set between supersteps; the
// same workload is measured failure-free and with an injected failure, per
// recovery strategy (optimistic compensation, checkpoint rollback k=2,
// confined-log replay k=2).
//
// Shape to observe: queries keep being answered in *every* superstep —
// including the recovery supersteps, served from the epoch the view pinned
// when the failure was detected — so the qps floor never touches zero.
// The failure run's overall qps trails the failure-free run (recovery
// burns simulated time the reads must ride out); the gap per strategy is
// the availability cost of that strategy. Answer streams are byte-identical
// at any executor thread count.

#include <algorithm>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algos/connected_components.h"
#include "algos/datasets.h"
#include "algos/refreshers.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "server/job_server.h"

using namespace flinkless;

namespace {

using dataflow::MakeRecord;

constexpr int kParts = 4;
constexpr int64_t kProbeKeys = 12;
constexpr const char* kWorkload = "connected-components-rmat-512v";

struct PumpSample {
  int pump = 0;
  int epoch = -1;
  uint64_t answers = 0;
  uint64_t recovery_answers = 0;
  int64_t window_ns = 0;
  double qps = 0;
};

struct ServingResult {
  std::vector<PumpSample> pumps;
  uint64_t lookups_answered = 0;
  uint64_t recovery_answers = 0;
  double qps = 0;
  double mean_latency_ms = 0;
  double max_latency_ms = 0;
  double sim_total_ms = 0;
  int supersteps = 0;
  int failures_recovered = 0;
  bool correct = false;
  /// Order-sensitive digest of the full answer stream (FNV-1a), for the
  /// cross-thread-count identity check.
  uint64_t answer_digest = 1469598103934665603ull;
};

void DigestMix(uint64_t* digest, const std::string& bytes) {
  for (unsigned char c : bytes) {
    *digest ^= c;
    *digest *= 1099511628211ull;
  }
}

/// One serving run: a CC job under `policy`, probed with kProbeKeys point
/// reads before every pump.
ServingResult RunServing(const graph::Graph& graph,
                         const std::vector<int64_t>& truth,
                         iteration::FaultTolerancePolicy* policy,
                         const std::string& failures, bool message_log,
                         int num_threads) {
  dataflow::Plan plan = algos::BuildConnectedComponentsPlan();
  dataflow::PartitionedDataset edges = algos::EdgePairs(graph, kParts);
  std::vector<dataflow::Record> labels = algos::InitialLabels(graph);

  runtime::SimClock clock;
  runtime::CostModel costs;
  runtime::StableStorage storage(&clock, &costs);
  server::JobServer jobs(&clock, &costs, &storage, server::ServerOptions{});

  server::JobSpec spec;
  spec.job_id = "cc-serving";
  spec.plan = &plan;
  spec.bindings["edges"] = &edges;
  spec.exec.num_partitions = kParts;
  spec.exec.num_threads = num_threads;
  spec.policy = policy;
  if (!failures.empty()) {
    auto parsed = runtime::FailureSchedule::Parse(failures);
    FLINKLESS_CHECK(parsed.ok(), parsed.status().ToString());
    spec.failures = *parsed;
  }
  spec.delta.max_iterations = 60;
  spec.delta.message_log = message_log;
  spec.initial_solution = labels;
  spec.initial_workset =
      dataflow::PartitionedDataset::HashPartitioned(labels, {0}, kParts);
  FLINKLESS_CHECK(jobs.Submit(std::move(spec)).ok(), "submit failed");

  ServingResult out;
  double latency_sum_ms = 0;
  int pump = 0;
  bool more = true;
  while (more) {
    for (int64_t k = 0; k < kProbeKeys; ++k) {
      // Rotate the probes through the key space so cold partitions get
      // touched (and materialized) as the run progresses.
      int64_t v = (k * 17 + pump * 3) % graph.num_vertices();
      FLINKLESS_CHECK(jobs.EnqueueLookup("cc-serving", MakeRecord(v)).ok(),
                      "enqueue failed");
    }
    const int64_t before_ns = clock.TotalNs();
    more = jobs.Pump();
    ++pump;
    FLINKLESS_CHECK(pump < 1000, "serving run did not drain");

    PumpSample sample;
    sample.pump = pump;
    sample.window_ns = clock.TotalNs() - before_ns;
    for (const server::LookupAnswer& a : jobs.TakeAnswers()) {
      ++sample.answers;
      if (a.during_recovery) ++sample.recovery_answers;
      sample.epoch = std::max(sample.epoch, a.epoch);
      const double latency_ms =
          static_cast<double>(a.answer_sim_ns - a.submit_sim_ns) / 1e6;
      latency_sum_ms += latency_ms;
      out.max_latency_ms = std::max(out.max_latency_ms, latency_ms);
      std::ostringstream fp;
      fp << a.ticket << '|' << a.key[0].AsInt64() << '|' << a.found << '|'
         << (a.found ? a.record[1].AsInt64() : -1) << '|' << a.partition
         << '|' << a.epoch << '|' << a.during_recovery << '|'
         << a.submit_sim_ns << '|' << a.answer_sim_ns;
      DigestMix(&out.answer_digest, fp.str());
    }
    if (sample.window_ns > 0 && sample.answers > 0) {
      sample.qps = static_cast<double>(sample.answers) /
                   (static_cast<double>(sample.window_ns) / 1e9);
    }
    out.pumps.push_back(sample);
  }

  out.lookups_answered = jobs.lookups_answered();
  out.recovery_answers = jobs.answered_during_recovery();
  out.sim_total_ms = clock.TotalMs();
  out.qps = static_cast<double>(out.lookups_answered) /
            (static_cast<double>(clock.TotalNs()) / 1e9);
  out.mean_latency_ms =
      out.lookups_answered > 0
          ? latency_sum_ms / static_cast<double>(out.lookups_answered)
          : 0;

  auto report = jobs.Report("cc-serving");
  FLINKLESS_CHECK(report.ok(), report.status().ToString());
  FLINKLESS_CHECK(report->status.ok(), report->status.ToString());
  out.supersteps = report->supersteps_executed;
  out.failures_recovered = report->failures_recovered;

  auto solution = jobs.FinalSolution("cc-serving");
  FLINKLESS_CHECK(solution.ok(), solution.status().ToString());
  out.correct = true;
  for (int64_t v = 0; v < graph.num_vertices(); ++v) {
    const dataflow::Record* entry = (*solution)->Lookup(MakeRecord(v));
    if (entry == nullptr || (*entry)[1].AsInt64() != truth[v]) {
      out.correct = false;
      break;
    }
  }
  return out;
}

struct Strategy {
  std::string name;
  bool message_log = false;
  std::function<std::unique_ptr<iteration::FaultTolerancePolicy>()> make;
};

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  bench::Banner("C6",
                "Serving reads during in-flight iterations: qps stays above "
                "zero through failure + recovery, per recovery strategy");

  Rng rng(2025);
  graph::Graph directed = graph::Rmat(9, 6, &rng);  // 512 vertices
  graph::Graph graph(directed.num_vertices(), /*directed=*/false);
  for (const graph::Edge& e : directed.edges()) {
    FLINKLESS_CHECK(graph.AddEdge(e.src, e.dst).ok(), "bad edge");
  }
  auto truth = graph::ReferenceConnectedComponents(graph);
  algos::FixComponentsCompensation fix(&graph);

  const std::string failure_schedule = "3:1";
  std::vector<Strategy> strategies;
  strategies.push_back(
      {"optimistic", false, [&] {
         return std::unique_ptr<iteration::FaultTolerancePolicy>(
             std::make_unique<core::OptimisticRecoveryPolicy>(&fix));
       }});
  strategies.push_back(
      {"rollback(k=2)", false, [&] {
         return std::unique_ptr<iteration::FaultTolerancePolicy>(
             std::make_unique<core::CheckpointRollbackPolicy>(2));
       }});
  strategies.push_back(
      {"confined-log(k=2)", true, [&] {
         return std::unique_ptr<iteration::FaultTolerancePolicy>(
             std::make_unique<core::ConfinedLogReplayPolicy>(
                 2, algos::MakeNeighborhoodRefresher(&graph)));
       }});

  bench::JsonReport json("C6-serving", kWorkload);
  TablePrinter table({"strategy", "failure", "supersteps", "lookups", "qps",
                      "mean_lat_ms", "max_lat_ms", "recovery_answers",
                      "qps_gap", "correct"});

  for (const Strategy& strategy : strategies) {
    auto clean_policy = strategy.make();
    ServingResult clean = RunServing(graph, truth, clean_policy.get(), "",
                                     strategy.message_log, /*num_threads=*/1);
    auto failed_policy = strategy.make();
    ServingResult failed =
        RunServing(graph, truth, failed_policy.get(), failure_schedule,
                   strategy.message_log, /*num_threads=*/1);

    FLINKLESS_CHECK(clean.correct && failed.correct,
                    strategy.name + ": wrong labels");
    FLINKLESS_CHECK(failed.failures_recovered > 0,
                    strategy.name + ": failure did not fire");
    FLINKLESS_CHECK(failed.recovery_answers > 0,
                    strategy.name + ": no reads answered during recovery");
    // The acceptance gate: once the view has warmed (the first pump is the
    // bootstrap turn — lookups only *mark* partitions wanted there, and the
    // epoch-0 publish precedes the marks), queries are answered in every
    // superstep the job executed, recovery supersteps included.
    bool warmed = false;
    for (const PumpSample& sample : failed.pumps) {
      warmed = warmed || sample.answers > 0;
      if (!warmed || sample.window_ns == 0) continue;
      FLINKLESS_CHECK(sample.qps > 0, strategy.name + ": qps hit zero in pump " +
                                          std::to_string(sample.pump));
    }
    FLINKLESS_CHECK(warmed, strategy.name + ": no pump answered anything");

    for (const bool with_failure : {false, true}) {
      const ServingResult& run = with_failure ? failed : clean;
      for (const PumpSample& sample : run.pumps) {
        json.AddEntry()
            .Set("kind", "per_superstep")
            .Set("strategy", strategy.name)
            .Set("with_failure", with_failure)
            .Set("pump", sample.pump)
            .Set("epoch", sample.epoch)
            .Set("answers", sample.answers)
            .Set("recovery_answers", sample.recovery_answers)
            .Set("window_ms", static_cast<double>(sample.window_ns) / 1e6)
            .Set("qps", sample.qps);
      }
      json.AddEntry()
          .Set("kind", "run_summary")
          .Set("strategy", strategy.name)
          .Set("with_failure", with_failure)
          .Set("supersteps", run.supersteps)
          .Set("failures_recovered", run.failures_recovered)
          .Set("lookups_answered", run.lookups_answered)
          .Set("recovery_answers", run.recovery_answers)
          .Set("qps", run.qps)
          .Set("qps_gap_vs_failure_free", clean.qps - run.qps)
          .Set("mean_latency_ms", run.mean_latency_ms)
          .Set("max_latency_ms", run.max_latency_ms)
          .Set("sim_total_ms", run.sim_total_ms)
          .Set("correct", run.correct);
      table.Row()
          .Cell(strategy.name)
          .Cell(with_failure ? "yes" : "no")
          .Cell(static_cast<int64_t>(run.supersteps))
          .Cell(static_cast<int64_t>(run.lookups_answered))
          .Cell(run.qps)
          .Cell(run.mean_latency_ms)
          .Cell(run.max_latency_ms)
          .Cell(static_cast<int64_t>(run.recovery_answers))
          .Cell(clean.qps - run.qps)
          .Cell(run.correct ? "yes" : "NO");
    }
  }
  bench::Emit(table);

  // Determinism: the failure run's full answer stream — tickets, records,
  // epochs, simulated timestamps — is byte-identical at any thread count.
  {
    std::vector<uint64_t> digests;
    for (int threads : {1, 2, 8}) {
      auto policy = strategies[0].make();
      ServingResult run = RunServing(graph, truth, policy.get(),
                                     failure_schedule, false, threads);
      digests.push_back(run.answer_digest);
      json.AddEntry()
          .Set("kind", "determinism")
          .Set("strategy", strategies[0].name)
          .Set("num_threads", threads)
          .Set("answer_digest", run.answer_digest)
          .Set("lookups_answered", run.lookups_answered);
    }
    FLINKLESS_CHECK(digests[0] == digests[1] && digests[0] == digests[2],
                    "answer stream depends on the thread count");
    std::cout << "determinism: answer digests identical at threads {1,2,8}\n";
  }

  const std::string json_path = "BENCH_serving.json";
  FLINKLESS_CHECK(json.WriteFile(json_path), "cannot write " + json_path);
  std::cout << "json: wrote " << json_path << "\n";
  return 0;
}
