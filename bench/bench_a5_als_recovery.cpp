// Ablation A5: optimistic recovery for ALS matrix factorization — the
// collaborative-filtering member of the fixpoint family (§1's "complex
// machine learning algorithms").
//
// A failure at superstep 4 destroys half the factor partitions; the
// compensation re-seeds the lost rows with the deterministic initializer.
// Because each ALS half-step re-solves every row exactly from its
// counterparts, the damage is repaired essentially within one superstep:
// the per-iteration RMSE shows a single bump, then rejoins the failure-free
// curve. Compared against rollback and restart as usual.

#include <cmath>
#include <iostream>

#include "algos/als.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/policies.h"

using namespace flinkless;

namespace {

/// Per-iteration RMSE series recorded through a convergence-metric wrapper:
/// we re-run the job collecting RMSE from the state snapshots.
std::vector<double> RmseSeries(const std::vector<algos::Rating>& ratings,
                               const runtime::MetricsRegistry& metrics) {
  (void)ratings;
  return metrics.GaugeSeries("convergence_metric");
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  bench::Banner("A5",
                "ALS matrix factorization under failures: factor re-seeding "
                "compensation repairs the loss in about one superstep");

  Rng rng(41);
  const int64_t num_users = 120;
  const int64_t num_items = 80;
  auto ratings = algos::GenerateRatings(num_users, num_items, /*rank=*/4,
                                        /*density=*/0.15, /*noise=*/0.02,
                                        &rng);
  algos::AlsOptions options;
  options.rank = 4;
  options.num_partitions = 4;
  options.max_iterations = 15;
  options.tolerance = 1e-9;

  std::cout << "workload: " << ratings.size() << " ratings over "
            << num_users << " users x " << num_items
            << " items, rank 4, failure at superstep 4 losing partitions "
               "{0,2}\n\n";

  struct RunData {
    algos::AlsResult result;
    std::vector<double> move_series;
    double sim_total_ms = 0;
    double sim_ft_ms = 0;
  };
  std::vector<runtime::FailureEvent> failure_events{{4, {0, 2}}};

  auto run_with = [&](const std::string& label,
                      iteration::FaultTolerancePolicy* policy,
                      bool with_failures) {
    bench::JobHarness harness("a5-" + label);
    if (with_failures) {
      harness.SetFailures(runtime::FailureSchedule(failure_events));
    }
    auto result = algos::RunAls(ratings, num_users, num_items, options,
                                harness.Env(), policy);
    FLINKLESS_CHECK(result.ok(), label + ": " + result.status().ToString());
    RunData data;
    data.result = std::move(result).ValueOrDie();
    data.move_series = RmseSeries(ratings, harness.metrics());
    data.sim_total_ms = harness.clock().TotalMs();
    data.sim_ft_ms =
        static_cast<double>(
            harness.clock().Of(runtime::Charge::kCheckpointIo) +
            harness.clock().Of(runtime::Charge::kRecovery)) /
        1e6;
    return data;
  };

  core::NoFaultTolerancePolicy noft;
  RunData baseline = run_with("baseline", &noft, /*with_failures=*/false);

  algos::ReseedFactorsCompensation compensation(num_users, num_items,
                                                options.rank);
  core::OptimisticRecoveryPolicy optimistic(&compensation);
  RunData opt = run_with("optimistic", &optimistic, true);
  core::CheckpointRollbackPolicy rollback(2);
  RunData rb = run_with("rollback", &rollback, true);
  core::RestartPolicy restart;
  RunData rst = run_with("restart", &restart, true);

  TablePrinter totals({"strategy", "supersteps", "final_rmse",
                       "sim_total_ms", "sim_ft_ms"});
  auto add = [&](const std::string& label, const RunData& d) {
    totals.Row()
        .Cell(label)
        .Cell(static_cast<int64_t>(d.result.supersteps_executed))
        .Cell(d.result.rmse)
        .Cell(d.sim_total_ms)
        .Cell(d.sim_ft_ms);
  };
  add("(failure-free)", baseline);
  add("optimistic", opt);
  add("rollback(k=2)", rb);
  add("restart", rst);
  bench::Emit(totals);

  // The self-repair shape: max factor movement per superstep spikes at the
  // compensated superstep (reseeded rows move a lot once), then returns to
  // the baseline decay within ~1 superstep.
  TablePrinter series({"superstep", "max_factor_move(optimistic)",
                       "max_factor_move(failure-free)"});
  size_t rows = std::max(opt.move_series.size(),
                         baseline.move_series.size());
  for (size_t i = 0; i < rows; ++i) {
    auto row = series.Row();
    row.Cell(static_cast<int64_t>(i + 1));
    if (i < opt.move_series.size()) {
      row.Cell(opt.move_series[i]);
    } else {
      row.Cell("");
    }
    if (i < baseline.move_series.size()) {
      row.Cell(baseline.move_series[i]);
    } else {
      row.Cell("");
    }
  }
  bench::Emit(series);
  return 0;
}
