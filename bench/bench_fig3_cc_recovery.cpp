// Experiment F2/F3: the Connected Components demo plots (paper §3.2,
// Figures 2 and 3).
//
// Regenerates, for the hand-crafted demo graph and a Twitter-like synthetic
// graph, the two per-iteration series the GUI shows:
//   (i)  number of vertices converged to their final component, with the
//        plummet at the failure iteration, and
//   (ii) messages (candidate labels sent to neighbors) per iteration, with
//        the increase in the iterations after the failure.
// A failure-free run is printed alongside for contrast.

#include <iostream>

#include "algos/connected_components.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/reference.h"

using namespace flinkless;

namespace {

void RunScenario(const std::string& name, const graph::Graph& g,
                 const runtime::FailureSchedule& failures, int parts) {
  auto truth = graph::ReferenceConnectedComponents(g);
  algos::ConnectedComponentsOptions options;
  options.num_partitions = parts;

  // Failure-free baseline.
  bench::JobHarness baseline("f3-" + name + "-baseline");
  core::NoFaultTolerancePolicy noft;
  auto base =
      algos::RunConnectedComponents(g, options, baseline.Env(), &noft, &truth);
  FLINKLESS_CHECK(base.ok(), base.status().ToString());

  // Failure + optimistic recovery via fix-components.
  bench::JobHarness harness("f3-" + name);
  harness.SetFailures(failures);
  algos::FixComponentsCompensation compensation(&g);
  core::OptimisticRecoveryPolicy optimistic(&compensation);
  auto rec = algos::RunConnectedComponents(g, options, harness.Env(),
                                           &optimistic, &truth);
  FLINKLESS_CHECK(rec.ok(), rec.status().ToString());
  FLINKLESS_CHECK(rec->labels == truth,
                  "recovered labels diverge from ground truth");

  std::cout << "scenario: " << name << " — " << g.ToString() << ", "
            << parts << " partitions\n"
            << "failures: ";
  for (const auto& event : failures.events()) {
    std::cout << "[" << event.ToString() << "] ";
  }
  std::cout << "\nrecovered run converged after " << rec->iterations
            << " iterations (failure-free: " << base->iterations
            << "), result correct: yes\n\n";

  TablePrinter table({"iteration", "converged_vertices(failure)",
                      "converged_vertices(failure-free)", "messages(failure)",
                      "messages(failure-free)", "failure_injected"});
  const auto& with_failure = harness.metrics().iterations();
  const auto& failure_free = baseline.metrics().iterations();
  size_t rows = std::max(with_failure.size(), failure_free.size());
  for (size_t i = 0; i < rows; ++i) {
    auto row = table.Row();
    row.Cell(static_cast<int64_t>(i + 1));
    if (i < with_failure.size()) {
      row.Cell(with_failure[i].Gauge("converged_vertices"));
    } else {
      row.Cell("");
    }
    if (i < failure_free.size()) {
      row.Cell(failure_free[i].Gauge("converged_vertices"));
    } else {
      row.Cell("");
    }
    if (i < with_failure.size()) {
      row.Cell(with_failure[i].messages_shuffled);
    } else {
      row.Cell("");
    }
    if (i < failure_free.size()) {
      row.Cell(failure_free[i].messages_shuffled);
    } else {
      row.Cell("");
    }
    row.Cell((i < with_failure.size() && with_failure[i].failure_injected)
                 ? "yes"
                 : "");
  }
  bench::Emit(table);

  std::cout << AsciiPlot(harness.metrics().GaugeSeries("converged_vertices"),
                         8,
                         "converged vertices per iteration (failure run — "
                         "note the plummet):")
            << "\n";
  std::vector<double> messages;
  for (const auto& it : with_failure) {
    messages.push_back(static_cast<double>(it.messages_shuffled));
  }
  std::cout << AsciiPlot(messages, 8,
                         "messages per iteration (failure run — note the "
                         "post-failure bump):")
            << "\n";
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  bench::Banner("F2/F3",
                "Connected Components optimistic recovery (paper §3.2): "
                "converged vertices plummet at the failure, messages "
                "increase afterwards");

  // Small hand-crafted graph, failure at iteration 2 of partition 0 — the
  // GUI walkthrough.
  RunScenario("demo-graph", graph::DemoGraph(),
              runtime::FailureSchedule(
                  std::vector<runtime::FailureEvent>{{2, {0}}}),
              /*parts=*/4);

  // Larger Twitter-like graph (preferential attachment; see DESIGN.md §2 on
  // the substitution), failures at iterations 3 and 5 as in the paper's
  // plots ("plummets each time a failure causes a loss of a partition",
  // "increased amount of messages at iterations 2 and 4" relative to the
  // failures before them).
  Rng rng(42);
  RunScenario("twitter-like",
              graph::PreferentialAttachment(2000, 3, &rng),
              runtime::FailureSchedule(std::vector<runtime::FailureEvent>{
                  {3, {0}}, {5, {2}}}),
              /*parts=*/4);
  return 0;
}
