// Ablation A1: delta vs bulk iterations for Connected Components (paper
// §2.1 — "the system would waste resources by always recomputing the whole
// intermediate state, including the parts that do not change anymore").
//
// Same graph, same result; reported per mode: iterations, records
// processed, messages shuffled, simulated time. The shape: delta processes
// a shrinking workset and wins by a growing factor as the graph gets
// larger / more skewed.

#include <iostream>

#include "algos/connected_components.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/reference.h"

using namespace flinkless;

int main() {
  SetLogLevel(LogLevel::kWarning);
  bench::Banner("A1",
                "Delta vs bulk iterations for Connected Components: "
                "identical results, shrinking-workset savings for delta");

  TablePrinter table({"graph", "mode", "iterations", "records_processed",
                      "messages", "sim_total_ms", "records_ratio(bulk/delta)",
                      "correct"});

  struct Workload {
    std::string name;
    graph::Graph graph;
  };
  Rng rng1(10), rng2(11);
  std::vector<Workload> workloads;
  workloads.push_back({"chain-500v", graph::ChainGraph(500)});
  workloads.push_back(
      {"pa-2000v", graph::PreferentialAttachment(2000, 2, &rng1)});
  workloads.push_back({"er-1500v", graph::ErdosRenyi(1500, 0.002, &rng2)});
  workloads.push_back({"grid-32x32", graph::GridGraph(32, 32)});

  for (auto& workload : workloads) {
    auto truth = graph::ReferenceConnectedComponents(workload.graph);
    algos::ConnectedComponentsOptions options;
    options.num_partitions = 4;
    options.max_iterations = 1000;

    core::NoFaultTolerancePolicy policy;

    bench::JobHarness bulk_harness("a1-bulk-" + workload.name);
    auto bulk = algos::RunConnectedComponentsBulk(
        workload.graph, options, bulk_harness.Env(), &policy);
    FLINKLESS_CHECK(bulk.ok(), bulk.status().ToString());

    bench::JobHarness delta_harness("a1-delta-" + workload.name);
    auto delta = algos::RunConnectedComponents(
        workload.graph, options, delta_harness.Env(), &policy);
    FLINKLESS_CHECK(delta.ok(), delta.status().ToString());

    uint64_t bulk_records = bulk_harness.metrics().TotalRecords();
    uint64_t delta_records = delta_harness.metrics().TotalRecords();
    double ratio = delta_records > 0 ? static_cast<double>(bulk_records) /
                                           static_cast<double>(delta_records)
                                     : 0.0;

    table.Row()
        .Cell(workload.name)
        .Cell("bulk")
        .Cell(static_cast<int64_t>(bulk->iterations))
        .Cell(bulk_records)
        .Cell(bulk_harness.metrics().TotalMessages())
        .Cell(bulk_harness.clock().TotalMs())
        .Cell("")
        .Cell(bulk->labels == truth ? "yes" : "NO");
    table.Row()
        .Cell(workload.name)
        .Cell("delta")
        .Cell(static_cast<int64_t>(delta->iterations))
        .Cell(delta_records)
        .Cell(delta_harness.metrics().TotalMessages())
        .Cell(delta_harness.clock().TotalMs())
        .Cell(ratio)
        .Cell(delta->labels == truth ? "yes" : "NO");
  }
  bench::Emit(table);
  return 0;
}
