// Tests for the terminal demo layer: the playback transport controls
// (§3.1's play/pause/backward buttons) and the frame renderers.

#include <gtest/gtest.h>

#include "algos/datasets.h"
#include "viz/playback.h"
#include "viz/render.h"

namespace flinkless::viz {
namespace {

// -------------------------------------------------------------- Playback --

TEST(PlaybackTest, StartsPausedAtFirstFrame) {
  Playback<int> playback({10, 20, 30});
  EXPECT_EQ(playback.size(), 3u);
  EXPECT_EQ(playback.position(), 0u);
  EXPECT_EQ(playback.Current(), 10);
  EXPECT_EQ(playback.state(), PlayState::kPaused);
}

TEST(PlaybackTest, StepForwardWalksToEnd) {
  Playback<int> playback({1, 2, 3});
  EXPECT_TRUE(playback.StepForward());
  EXPECT_EQ(playback.Current(), 2);
  EXPECT_TRUE(playback.StepForward());
  EXPECT_EQ(playback.Current(), 3);
  EXPECT_FALSE(playback.StepForward());  // end reached
  EXPECT_EQ(playback.state(), PlayState::kFinished);
  EXPECT_EQ(playback.Current(), 3);      // cursor stays at last frame
}

TEST(PlaybackTest, BackwardButtonStepsAndPauses) {
  Playback<int> playback({1, 2, 3});
  playback.Play();
  playback.StepForward();
  playback.StepForward();
  EXPECT_TRUE(playback.StepBackward());
  EXPECT_EQ(playback.Current(), 2);
  EXPECT_EQ(playback.state(), PlayState::kPaused);
  EXPECT_TRUE(playback.StepBackward());
  EXPECT_FALSE(playback.StepBackward());  // at frame 0
  EXPECT_EQ(playback.Current(), 1);
}

TEST(PlaybackTest, BackwardAfterFinishReopensPlayback) {
  Playback<int> playback({1, 2});
  playback.StepForward();
  playback.StepForward();  // finished
  EXPECT_EQ(playback.state(), PlayState::kFinished);
  EXPECT_TRUE(playback.StepBackward());
  EXPECT_EQ(playback.state(), PlayState::kPaused);
  EXPECT_EQ(playback.Current(), 1);
  EXPECT_TRUE(playback.StepForward());  // can move forward again
}

TEST(PlaybackTest, PlayPauseToggles) {
  Playback<int> playback({1, 2});
  playback.Play();
  EXPECT_EQ(playback.state(), PlayState::kPlaying);
  playback.Pause();
  EXPECT_EQ(playback.state(), PlayState::kPaused);
}

TEST(PlaybackTest, SeekClampsAndPauses) {
  Playback<int> playback({1, 2, 3});
  playback.Seek(99);
  EXPECT_EQ(playback.Current(), 3);
  playback.Seek(1);
  EXPECT_EQ(playback.Current(), 2);
  EXPECT_EQ(playback.state(), PlayState::kPaused);
}

TEST(PlaybackTest, RewindReturnsToStart) {
  Playback<int> playback({1, 2, 3});
  playback.StepForward();
  playback.StepForward();
  playback.StepForward();
  playback.Rewind();
  EXPECT_EQ(playback.position(), 0u);
  EXPECT_EQ(playback.state(), PlayState::kPaused);
}

TEST(PlaybackTest, RecordAppendsFrames) {
  Playback<int> playback;
  EXPECT_TRUE(playback.empty());
  playback.Record(5);
  playback.Record(6);
  EXPECT_EQ(playback.size(), 2u);
  EXPECT_EQ(playback.Current(), 5);
}

TEST(PlaybackTest, EmptyPlaybackIsSafe) {
  Playback<int> playback;
  EXPECT_FALSE(playback.StepForward());
  EXPECT_EQ(playback.state(), PlayState::kFinished);
  playback.Seek(3);  // no crash
  playback.Rewind();
  EXPECT_EQ(playback.state(), PlayState::kFinished);
}

// --------------------------------------------------------- ColorAssigner --

TEST(ColorAssignerTest, StableAssignment) {
  ColorAssigner colors(true);
  int c1 = colors.ColorOf(100);
  int c2 = colors.ColorOf(200);
  EXPECT_NE(c1, c2);
  EXPECT_EQ(colors.ColorOf(100), c1);  // stable on repeat
  EXPECT_EQ(colors.distinct_labels(), 2u);
}

TEST(ColorAssignerTest, WrapEmitsAnsiOnlyWhenEnabled) {
  ColorAssigner ansi(true);
  std::string wrapped = ansi.Wrap(1, "x");
  EXPECT_NE(wrapped.find("\x1b["), std::string::npos);
  EXPECT_NE(wrapped.find('x'), std::string::npos);

  ColorAssigner plain(false);
  EXPECT_EQ(plain.Wrap(1, "x"), "x");
}

// ---------------------------------------------------------------- Render --

TEST(RenderComponentsTest, GroupsByLabelAndMarksLost) {
  ComponentsFrame frame;
  frame.iteration = 3;
  frame.labels = {0, 0, 2, 2, 2};
  frame.lost_vertices = {2};
  frame.failure = true;
  frame.messages = 17;
  frame.converged_vertices = 4;
  ColorAssigner colors(false);
  std::string out = RenderComponents(frame, &colors);
  EXPECT_NE(out.find("iteration 3"), std::string::npos);
  EXPECT_NE(out.find("FAILURE"), std::string::npos);
  EXPECT_NE(out.find("components: 2"), std::string::npos);
  EXPECT_NE(out.find("2! "), std::string::npos);  // lost vertex marked
  EXPECT_NE(out.find("converged to final component: 4/5"),
            std::string::npos);
  EXPECT_NE(out.find("messages this iteration: 17"), std::string::npos);
}

TEST(RenderComponentsTest, NoGroundTruthOmitsConvergedLine) {
  ComponentsFrame frame;
  frame.labels = {0, 1};
  ColorAssigner colors(false);
  std::string out = RenderComponents(frame, &colors);
  EXPECT_EQ(out.find("converged to final"), std::string::npos);
}

TEST(RenderRanksTest, BarsProportionalToRank) {
  RanksFrame frame;
  frame.iteration = 5;
  frame.ranks = {0.5, 0.25, 0.25};
  frame.l1_diff = 0.125;
  std::string out = RenderRanks(frame, /*bar_width=*/20);
  // The max-rank vertex gets the full bar, half-rank gets half.
  EXPECT_NE(out.find(std::string(20, '#')), std::string::npos);
  EXPECT_NE(out.find(std::string(10, '#') + "\n"), std::string::npos);
  EXPECT_NE(out.find("0.125"), std::string::npos);
}

TEST(RenderRanksTest, LostVerticesFlagged) {
  RanksFrame frame;
  frame.ranks = {0.9, 0.1};
  frame.lost_vertices = {1};
  frame.failure = true;
  std::string out = RenderRanks(frame, 10);
  EXPECT_NE(out.find(" !"), std::string::npos);
  EXPECT_NE(out.find("FAILURE"), std::string::npos);
}

TEST(RenderRanksTest, ZeroRanksDoNotDivideByZero) {
  RanksFrame frame;
  frame.ranks = {0.0, 0.0};
  std::string out = RenderRanks(frame, 10);
  EXPECT_NE(out.find("v0"), std::string::npos);
}

// ---------------------------------------------------- partition utilities --

TEST(PartitionUtilTest, VerticesOfPartitionsMatchesHash) {
  const int parts = 4;
  auto lost = VerticesOfPartitions(32, parts, {1, 3});
  for (int64_t v = 0; v < 32; ++v) {
    int p = algos::PartitionOfVertex(v, parts);
    EXPECT_EQ(lost.count(v) > 0, p == 1 || p == 3) << "vertex " << v;
  }
}

TEST(PartitionUtilTest, DescribePartitionsCoversAllVertices) {
  std::string text = DescribePartitions(10, 3);
  for (int64_t v = 0; v < 10; ++v) {
    EXPECT_NE(text.find(" " + std::to_string(v)), std::string::npos);
  }
  EXPECT_NE(text.find("partition 2"), std::string::npos);
}

}  // namespace
}  // namespace flinkless::viz
