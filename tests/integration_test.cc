// Cross-module property tests — the paper's central claim, stated as an
// invariant and swept over random graphs, random failure schedules, and all
// recovery strategies:
//
//   For the fixpoint algorithms with a correct compensation function, the
//   job converges to exactly the same result under ANY failure pattern and
//   ANY recovery strategy as it does failure-free.
//
// Plus whole-system accounting checks that the benchmark harnesses rely on.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "algos/als.h"
#include "algos/connected_components.h"
#include "algos/kmeans.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "common/rng.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "runtime/stable_storage.h"

namespace flinkless {
namespace {

using algos::ConnectedComponentsOptions;
using algos::PageRankOptions;
using algos::SsspOptions;

enum class Strategy { kOptimistic, kRollback1, kRollback3, kRestart };

std::string StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kOptimistic:
      return "optimistic";
    case Strategy::kRollback1:
      return "rollback1";
    case Strategy::kRollback3:
      return "rollback3";
    case Strategy::kRestart:
      return "restart";
  }
  return "?";
}

struct StrategyBundle {
  std::unique_ptr<core::CompensationFunction> compensation;
  std::unique_ptr<iteration::FaultTolerancePolicy> policy;
};

StrategyBundle MakeCcStrategy(Strategy s, const graph::Graph* g) {
  StrategyBundle bundle;
  switch (s) {
    case Strategy::kOptimistic:
      bundle.compensation =
          std::make_unique<algos::FixComponentsCompensation>(g);
      bundle.policy = std::make_unique<core::OptimisticRecoveryPolicy>(
          bundle.compensation.get());
      break;
    case Strategy::kRollback1:
      bundle.policy = std::make_unique<core::CheckpointRollbackPolicy>(1);
      break;
    case Strategy::kRollback3:
      bundle.policy = std::make_unique<core::CheckpointRollbackPolicy>(3);
      break;
    case Strategy::kRestart:
      bundle.policy = std::make_unique<core::RestartPolicy>();
      break;
  }
  return bundle;
}

// --------------------------------------------------------------- CC sweep --

class CcInvarianceTest
    : public ::testing::TestWithParam<std::tuple<Strategy, int>> {};

TEST_P(CcInvarianceTest, AnyFailureAnyStrategySameResult) {
  auto [strategy, seed] = GetParam();
  Rng graph_rng(seed);
  graph::Graph g = graph_rng.NextBernoulli(0.5)
                       ? graph::ErdosRenyi(60, 0.04, &graph_rng)
                       : graph::PreferentialAttachment(60, 2, &graph_rng);
  auto truth = graph::ReferenceConnectedComponents(g);

  Rng failure_rng(seed * 31 + 7);
  runtime::FailureSchedule failures =
      runtime::RandomFailures(8, 4, 0.15, &failure_rng);

  runtime::StableStorage storage(nullptr, nullptr);
  iteration::JobEnv env;
  env.failures = &failures;
  env.storage = &storage;
  env.job_id = "cc-invariance-" + StrategyName(strategy);

  StrategyBundle bundle = MakeCcStrategy(strategy, &g);
  ConnectedComponentsOptions options;
  options.num_partitions = 4;
  auto result =
      algos::RunConnectedComponents(g, options, env, bundle.policy.get());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->labels, truth)
      << StrategyName(strategy) << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CcInvarianceTest,
    ::testing::Combine(::testing::Values(Strategy::kOptimistic,
                                         Strategy::kRollback1,
                                         Strategy::kRollback3,
                                         Strategy::kRestart),
                       ::testing::Range(1, 7)));

// --------------------------------------------------------------- PR sweep --

class PrInvarianceTest
    : public ::testing::TestWithParam<std::tuple<Strategy, int>> {};

TEST_P(PrInvarianceTest, AnyFailureAnyStrategySameRanks) {
  auto [strategy, seed] = GetParam();
  Rng graph_rng(seed + 1000);
  graph::Graph g = graph::Rmat(6, 4, &graph_rng);
  auto truth = graph::ReferencePageRank(g, 0.85, 400, 1e-14);

  Rng failure_rng(seed * 17 + 3);
  runtime::FailureSchedule failures =
      runtime::RandomFailures(12, 4, 0.1, &failure_rng);

  runtime::StableStorage storage(nullptr, nullptr);
  iteration::JobEnv env;
  env.failures = &failures;
  env.storage = &storage;
  env.job_id = "pr-invariance-" + StrategyName(strategy);

  StrategyBundle bundle;
  switch (strategy) {
    case Strategy::kOptimistic:
      bundle.compensation = std::make_unique<algos::FixRanksCompensation>(
          g.num_vertices());
      bundle.policy = std::make_unique<core::OptimisticRecoveryPolicy>(
          bundle.compensation.get());
      break;
    case Strategy::kRollback1:
      bundle.policy = std::make_unique<core::CheckpointRollbackPolicy>(1);
      break;
    case Strategy::kRollback3:
      bundle.policy = std::make_unique<core::CheckpointRollbackPolicy>(3);
      break;
    case Strategy::kRestart:
      bundle.policy = std::make_unique<core::RestartPolicy>();
      break;
  }

  PageRankOptions options;
  options.num_partitions = 4;
  options.max_iterations = 300;
  auto result = algos::RunPageRank(g, options, env, bundle.policy.get());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  double max_err = 0;
  for (size_t v = 0; v < truth.size(); ++v) {
    max_err = std::max(max_err, std::abs(result->ranks[v] - truth[v]));
  }
  EXPECT_LT(max_err, 1e-6) << StrategyName(strategy) << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrInvarianceTest,
    ::testing::Combine(::testing::Values(Strategy::kOptimistic,
                                         Strategy::kRollback1,
                                         Strategy::kRestart),
                       ::testing::Range(1, 5)));

// ------------------------------------------------------------- SSSP sweep --

class SsspInvarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(SsspInvarianceTest, RandomFailuresMatchBfs) {
  int seed = GetParam();
  Rng graph_rng(seed + 500);
  graph::Graph g = graph::ErdosRenyi(70, 0.05, &graph_rng);
  auto truth = graph::ReferenceSssp(g, 0);

  Rng failure_rng(seed * 13 + 1);
  runtime::FailureSchedule failures =
      runtime::RandomFailures(6, 4, 0.2, &failure_rng);
  iteration::JobEnv env;
  env.failures = &failures;

  algos::FixDistancesCompensation compensation(&g, 0);
  core::OptimisticRecoveryPolicy policy(&compensation);
  SsspOptions options;
  options.num_partitions = 4;
  auto result = algos::RunSssp(g, options, env, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distances, truth) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SsspInvarianceTest, ::testing::Range(1, 9));

// -------------------------------------------------------------- ML sweep --

class MlInvarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(MlInvarianceTest, KMeansAndAlsSurviveRandomFailures) {
  int seed = GetParam();
  // K-Means: quality within a factor of the failure-free local optimum.
  {
    Rng rng(seed + 2000);
    auto points = algos::GenerateBlobs(3, 60, 15.0, 1.0, &rng);
    algos::KMeansOptions options;
    options.k = 3;
    options.num_partitions = 4;
    core::NoFaultTolerancePolicy noft;
    auto baseline = algos::RunKMeans(points, options, {}, &noft);
    ASSERT_TRUE(baseline.ok());

    Rng failure_rng(seed * 3 + 11);
    runtime::FailureSchedule failures =
        runtime::RandomFailures(10, 4, 0.15, &failure_rng);
    iteration::JobEnv env;
    env.failures = &failures;
    algos::ReseedCentroidsCompensation compensation(&points, options.k);
    core::OptimisticRecoveryPolicy policy(&compensation);
    auto result = algos::RunKMeans(points, options, env, &policy);
    ASSERT_TRUE(result.ok()) << "seed " << seed;
    EXPECT_TRUE(result->converged) << "seed " << seed;
    // K-Means is non-convex: a reseed under heavy failure can land in a
    // worse local optimum, but the result must still be a real clustering —
    // strictly better than the trivial single-cluster solution.
    auto one_cluster = algos::ReferenceKMeans(
        points, algos::InitialCentroids(points, 1), 50, 1e-9);
    EXPECT_LT(result->cost, algos::ClusteringCost(points, one_cluster))
        << "seed " << seed;
  }
  // ALS: the fit after random failures matches the failure-free RMSE.
  {
    Rng rng(seed + 3000);
    auto ratings = algos::GenerateRatings(30, 20, 3, 0.3, 0.02, &rng);
    algos::AlsOptions options;
    options.rank = 3;
    options.num_partitions = 4;
    options.max_iterations = 20;
    core::NoFaultTolerancePolicy noft;
    auto baseline = algos::RunAls(ratings, 30, 20, options, {}, &noft);
    ASSERT_TRUE(baseline.ok());

    Rng failure_rng(seed * 7 + 5);
    runtime::FailureSchedule failures =
        runtime::RandomFailures(15, 4, 0.1, &failure_rng);
    iteration::JobEnv env;
    env.failures = &failures;
    algos::ReseedFactorsCompensation compensation(30, 20, options.rank);
    core::OptimisticRecoveryPolicy policy(&compensation);
    auto result = algos::RunAls(ratings, 30, 20, options, env, &policy);
    ASSERT_TRUE(result.ok()) << "seed " << seed;
    EXPECT_NEAR(result->rmse, baseline->rmse, 0.05) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MlInvarianceTest, ::testing::Range(1, 5));

// ----------------------------------------------------- system accounting --

TEST(AccountingTest, FailureFreeOptimisticEqualsNoFtExactly) {
  // Optimistic recovery promises *optimal* failure-free performance: without
  // failures it must do exactly the work a no-fault-tolerance run does.
  graph::Graph g = graph::DemoGraph();

  auto run = [&](iteration::FaultTolerancePolicy* policy,
                 runtime::SimClock* clock,
                 runtime::MetricsRegistry* metrics) {
    runtime::CostModel costs;
    iteration::JobEnv env;
    env.clock = clock;
    env.costs = &costs;
    env.metrics = metrics;
    ConnectedComponentsOptions options;
    options.num_partitions = 4;
    auto result = algos::RunConnectedComponents(g, options, env, policy);
    ASSERT_TRUE(result.ok());
  };

  algos::FixComponentsCompensation compensation(&g);
  core::OptimisticRecoveryPolicy optimistic(&compensation);
  runtime::SimClock optimistic_clock;
  runtime::MetricsRegistry optimistic_metrics;
  run(&optimistic, &optimistic_clock, &optimistic_metrics);

  core::NoFaultTolerancePolicy noft;
  runtime::SimClock noft_clock;
  runtime::MetricsRegistry noft_metrics;
  run(&noft, &noft_clock, &noft_metrics);

  EXPECT_EQ(optimistic_clock.TotalNs(), noft_clock.TotalNs());
  EXPECT_EQ(optimistic_metrics.TotalMessages(), noft_metrics.TotalMessages());
  EXPECT_EQ(optimistic_metrics.TotalRecords(), noft_metrics.TotalRecords());
  EXPECT_EQ(optimistic_metrics.TotalCheckpointBytes(), 0u);
}

TEST(AccountingTest, RollbackChargesCheckpointBytesPerInterval) {
  graph::Graph g = graph::DemoGraph();
  runtime::SimClock clock;
  runtime::CostModel costs;
  runtime::StableStorage storage(&clock, &costs);
  runtime::MetricsRegistry metrics;
  iteration::JobEnv env;
  env.clock = &clock;
  env.costs = &costs;
  env.storage = &storage;
  env.metrics = &metrics;

  core::CheckpointRollbackPolicy policy(2);
  ConnectedComponentsOptions options;
  options.num_partitions = 4;
  ASSERT_TRUE(
      algos::RunConnectedComponents(g, options, env, &policy).ok());

  // Checkpoints at iterations 2 and 4 (plus iteration 0 at job start,
  // which is not part of the per-iteration series).
  int checkpointing_iterations = 0;
  for (const auto& it : metrics.iterations()) {
    if (it.bytes_checkpointed > 0) ++checkpointing_iterations;
    if (it.iteration % 2 != 0) {
      EXPECT_EQ(it.bytes_checkpointed, 0u);
    }
  }
  EXPECT_GT(checkpointing_iterations, 0);
  EXPECT_GT(clock.Of(runtime::Charge::kCheckpointIo), 0);
  EXPECT_EQ(metrics.TotalCheckpointBytes() > 0, true);
}

TEST(AccountingTest, RecoveryChargesNodeAcquisition) {
  graph::Graph g = graph::DemoGraph();
  runtime::SimClock clock;
  runtime::CostModel costs;
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{2, {0}}});
  runtime::Cluster cluster(4, &clock, &costs);
  iteration::JobEnv env;
  env.clock = &clock;
  env.costs = &costs;
  env.failures = &failures;
  env.cluster = &cluster;

  algos::FixComponentsCompensation compensation(&g);
  core::OptimisticRecoveryPolicy policy(&compensation);
  ConnectedComponentsOptions options;
  options.num_partitions = 4;
  ASSERT_TRUE(algos::RunConnectedComponents(g, options, env, &policy).ok());
  EXPECT_EQ(clock.Of(runtime::Charge::kRecovery), costs.node_acquisition_ns);
  EXPECT_EQ(cluster.epoch(), 1);
  EXPECT_EQ(cluster.total_workers_created(), 5);
}

TEST(AccountingTest, DeterministicAcrossRepeatedRuns) {
  // Same seed, same schedule, same graph -> bit-identical metric series.
  Rng rng1(77), rng2(77);
  graph::Graph g1 = graph::PreferentialAttachment(50, 2, &rng1);
  graph::Graph g2 = graph::PreferentialAttachment(50, 2, &rng2);

  auto run = [](const graph::Graph& g) {
    runtime::FailureSchedule failures(
        std::vector<runtime::FailureEvent>{{2, {1}}});
    runtime::MetricsRegistry metrics;
    iteration::JobEnv env;
    env.failures = &failures;
    env.metrics = &metrics;
    algos::FixComponentsCompensation compensation(&g);
    core::OptimisticRecoveryPolicy policy(&compensation);
    ConnectedComponentsOptions options;
    options.num_partitions = 4;
    auto result = algos::RunConnectedComponents(g, options, env, &policy);
    EXPECT_TRUE(result.ok());
    std::vector<std::pair<uint64_t, uint64_t>> series;
    for (const auto& it : metrics.iterations()) {
      series.emplace_back(it.records_processed, it.messages_shuffled);
    }
    return std::make_pair(result->labels, series);
  };

  auto [labels1, series1] = run(g1);
  auto [labels2, series2] = run(g2);
  EXPECT_EQ(labels1, labels2);
  EXPECT_EQ(series1, series2);
}

}  // namespace
}  // namespace flinkless
