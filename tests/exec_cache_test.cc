// The loop-invariant cache contract (DESIGN.md §10): static-ness analysis
// on the plan, cache hit/miss/invalidation behaviour across repeated
// executions, byte-identity of cached results vs a cache-less executor,
// rebinding volatile sources forcing recomputation, the simulated-time
// savings of skipped shuffles, and the streaming gather's bounded outbox
// peak.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/columnar.h"
#include "dataflow/exec_cache.h"
#include "dataflow/executor.h"
#include "dataflow/plan.h"
#include "runtime/cost_model.h"
#include "runtime/memory_manager.h"
#include "runtime/sim_clock.h"
#include "runtime/stable_storage.h"
#include "runtime/tracing.h"

namespace flinkless {
namespace {

using dataflow::Bindings;
using dataflow::ExecCache;
using dataflow::ExecOptions;
using dataflow::ExecStats;
using dataflow::Executor;
using dataflow::MakeRecord;
using dataflow::PartitionedDataset;
using dataflow::Plan;
using dataflow::Record;

constexpr int kParts = 4;

void ExpectIdenticalDatasets(const PartitionedDataset& a,
                             const PartitionedDataset& b) {
  ASSERT_EQ(a.num_partitions(), b.num_partitions());
  for (int p = 0; p < a.num_partitions(); ++p) {
    EXPECT_EQ(a.partition(p), b.partition(p)) << "partition " << p;
  }
}

/// (key, value) pairs with keys drawn from [0, key_range).
PartitionedDataset Pairs(int64_t n, int64_t key_range, int64_t salt) {
  std::vector<Record> records;
  records.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    records.push_back(MakeRecord((i * 7 + salt) % key_range, i + salt));
  }
  return PartitionedDataset::RoundRobin(std::move(records), kParts);
}

// ------------------------------------------------- static-ness analysis --

TEST(InvariantNodesTest, SourcesClassifiedByVolatileBindings) {
  Plan plan;
  auto stat = plan.Source("edges");
  auto vol = plan.Source("workset");
  plan.Output(stat, "a");
  plan.Output(vol, "b");
  auto inv = plan.InvariantNodes({"workset"});
  EXPECT_TRUE(inv[stat]);
  EXPECT_FALSE(inv[vol]);
}

TEST(InvariantNodesTest, InvarianceStopsAtTheFirstVolatileInput) {
  Plan plan;
  auto stat = plan.Source("edges");
  auto vol = plan.Source("workset");
  auto stat_map = plan.Map(
      stat, [](const Record& r) { return r; }, "static-map");
  auto stat_reduce = plan.ReduceByKey(
      stat_map, {0},
      [](const Record& a, const Record&) { return a; }, "static-reduce");
  auto joined = plan.Join(
      stat_reduce, vol, {0}, {0},
      [](const Record& l, const Record&) { return l; }, "mixed-join");
  auto tail = plan.Map(
      joined, [](const Record& r) { return r; }, "tail");
  plan.Output(tail, "out");

  auto inv = plan.InvariantNodes({"workset"});
  EXPECT_TRUE(inv[stat]);
  EXPECT_TRUE(inv[stat_map]);
  EXPECT_TRUE(inv[stat_reduce]);
  EXPECT_FALSE(inv[vol]);
  EXPECT_FALSE(inv[joined]);  // one volatile input poisons the node
  EXPECT_FALSE(inv[tail]);
}

TEST(InvariantNodesTest, NoVolatileBindingsMakesEverythingInvariant) {
  Plan plan;
  auto a = plan.Source("a");
  auto b = plan.Source("b");
  auto u = plan.Union(a, b, "u");
  plan.Output(u, "out");
  auto inv = plan.InvariantNodes({});
  EXPECT_TRUE(inv[a]);
  EXPECT_TRUE(inv[b]);
  EXPECT_TRUE(inv[u]);
}

// ------------------------------------------- cached supersteps fixture --

/// A miniature "superstep": join a static table against a volatile workset,
/// then aggregate — the shape of PageRank's find-neighbors/recompute-ranks
/// and CC's label-to-neighbors/candidate-label.
Plan BuildStepPlan() {
  Plan plan;
  auto stat = plan.Source("static");
  auto vol = plan.Source("volatile");
  auto shaped = plan.Map(
      stat,
      [](const Record& r) {
        return MakeRecord(r[0].AsInt64(), r[1].AsInt64() * 2);
      },
      "shape-static");
  auto joined = plan.Join(
      shaped, vol, {0}, {0},
      [](const Record& l, const Record& r) {
        return MakeRecord(l[0].AsInt64(), l[1].AsInt64() + r[1].AsInt64());
      },
      "step-join");
  auto reduced = plan.ReduceByKey(
      joined, {0},
      [](const Record& a, const Record& b) {
        return MakeRecord(a[0].AsInt64(), a[1].AsInt64() + b[1].AsInt64());
      },
      "step-sum");
  plan.Output(reduced, "out");
  return plan;
}

/// Runs `plan` for `supersteps` executions, rebinding "volatile" each step,
/// with an optional cache; returns the per-step outputs and accumulates
/// per-step stats into `stats_out`.
std::vector<PartitionedDataset> RunSupersteps(
    const Plan& plan, const PartitionedDataset& statics,
    const std::vector<PartitionedDataset>& worksets, ExecCache* cache,
    std::vector<ExecStats>* stats_out, runtime::SimClock* clock = nullptr,
    const runtime::CostModel* costs = nullptr) {
  ExecOptions options;
  options.num_partitions = kParts;
  options.cache = cache;
  options.clock = clock;
  options.costs = costs;
  Executor executor(options);
  std::vector<PartitionedDataset> outs;
  for (const PartitionedDataset& workset : worksets) {
    ExecStats stats;
    auto result = executor.Execute(
        plan, {{"static", &statics}, {"volatile", &workset}}, &stats);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    outs.push_back(std::move(result->at("out")));
    if (stats_out != nullptr) stats_out->push_back(stats);
  }
  return outs;
}

std::vector<PartitionedDataset> MakeWorksets(int supersteps) {
  std::vector<PartitionedDataset> worksets;
  for (int s = 0; s < supersteps; ++s) {
    worksets.push_back(Pairs(600, 64, /*salt=*/100 * s + 1));
  }
  return worksets;
}

// ---------------------------------------------------- hit/miss behaviour --

TEST(ExecCacheTest, SecondSuperstepHitsTheCache) {
  Plan plan = BuildStepPlan();
  PartitionedDataset statics = Pairs(2000, 64, /*salt=*/0);
  auto worksets = MakeWorksets(3);

  ExecCache cache({"volatile"});
  std::vector<ExecStats> stats;
  RunSupersteps(plan, statics, worksets, &cache, &stats);

  // Superstep 1 builds: no hits, entries materialized.
  EXPECT_EQ(stats[0].cache_hits, 0u);
  EXPECT_EQ(stats[0].records_not_reshuffled, 0u);
  EXPECT_GT(cache.builds(), 0u);
  EXPECT_GT(cache.size(), 0u);

  // Supersteps 2..n serve the shaped static table and the join build index
  // from the cache; the skipped shuffle is visible in the stats.
  for (size_t s = 1; s < stats.size(); ++s) {
    EXPECT_GT(stats[s].cache_hits, 0u) << "superstep " << s;
    EXPECT_GT(stats[s].records_not_reshuffled, 0u) << "superstep " << s;
    EXPECT_LT(stats[s].messages_shuffled, stats[0].messages_shuffled)
        << "superstep " << s;
  }
  EXPECT_EQ(cache.hits(), stats[1].cache_hits + stats[2].cache_hits);
}

TEST(ExecCacheTest, CachedOutputsAreByteIdenticalToUncached) {
  Plan plan = BuildStepPlan();
  PartitionedDataset statics = Pairs(2000, 64, /*salt=*/0);
  auto worksets = MakeWorksets(4);

  ExecCache cache({"volatile"});
  auto cached = RunSupersteps(plan, statics, worksets, &cache, nullptr);
  auto plain = RunSupersteps(plan, statics, worksets, nullptr, nullptr);

  ASSERT_EQ(cached.size(), plain.size());
  for (size_t s = 0; s < cached.size(); ++s) {
    SCOPED_TRACE("superstep " + std::to_string(s));
    ExpectIdenticalDatasets(cached[s], plain[s]);
  }
}

TEST(ExecCacheTest, VolatileRebindChangesCachedResults) {
  // The cached static artifacts must not freeze the volatile side: two
  // supersteps with different worksets produce different outputs, each
  // matching what a fresh cache-less run over that workset produces.
  Plan plan = BuildStepPlan();
  PartitionedDataset statics = Pairs(2000, 64, /*salt=*/0);
  auto worksets = MakeWorksets(2);

  ExecCache cache({"volatile"});
  auto cached = RunSupersteps(plan, statics, worksets, &cache, nullptr);

  bool differ = false;
  for (int p = 0; p < kParts && !differ; ++p) {
    differ = cached[0].partition(p) != cached[1].partition(p);
  }
  EXPECT_TRUE(differ) << "rebinding the volatile source must change output";

  auto fresh = RunSupersteps(plan, statics, {worksets[1]}, nullptr, nullptr);
  ExpectIdenticalDatasets(cached[1], fresh[0]);
}

TEST(ExecCacheTest, InvalidateForcesRebuildWithIdenticalResults) {
  Plan plan = BuildStepPlan();
  PartitionedDataset statics = Pairs(2000, 64, /*salt=*/0);
  auto worksets = MakeWorksets(3);

  ExecOptions options;
  options.num_partitions = kParts;
  ExecCache cache({"volatile"});
  options.cache = &cache;
  Executor executor(options);

  auto run = [&](const PartitionedDataset& workset, ExecStats* stats) {
    auto result = executor.Execute(
        plan, {{"static", &statics}, {"volatile", &workset}}, stats);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result->at("out"));
  };

  ExecStats s0, s1, s2;
  run(worksets[0], &s0);
  run(worksets[1], &s1);
  EXPECT_GT(s1.cache_hits, 0u);

  // A lost partition drops every entry (hash-partitioned artifacts need a
  // full re-scatter); the next superstep rebuilds and charges like the
  // first one did.
  cache.Invalidate({2});
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.invalidations(), 1u);

  PartitionedDataset rebuilt = run(worksets[2], &s2);
  EXPECT_EQ(s2.cache_hits, 0u);
  EXPECT_EQ(s2.records_not_reshuffled, 0u);
  EXPECT_GT(cache.size(), 0u);

  auto fresh = RunSupersteps(plan, statics, {worksets[2]}, nullptr, nullptr);
  ExpectIdenticalDatasets(rebuilt, fresh[0]);
}

TEST(ExecCacheTest, EmptyInvalidationKeepsEntries) {
  ExecCache cache({"volatile"});
  cache.EnsurePartitionCount(kParts);
  cache.Emplace(3, ExecCache::Role::kOutput);
  cache.Invalidate({});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.invalidations(), 0u);
}

TEST(ExecCacheTest, PartitionCountChangeDropsEntries) {
  ExecCache cache({"volatile"});
  cache.EnsurePartitionCount(4);
  cache.Emplace(0, ExecCache::Role::kOutput);
  cache.Emplace(2, ExecCache::Role::kBuild);
  EXPECT_EQ(cache.size(), 2u);
  cache.EnsurePartitionCount(4);  // same count: entries survive
  EXPECT_EQ(cache.size(), 2u);
  cache.EnsurePartitionCount(8);  // repartition: everything is stale
  EXPECT_EQ(cache.size(), 0u);
}

// -------------------------------------------------- simulated-time wins --

TEST(ExecCacheTest, CacheHitsSkipStaticSideCharges) {
  Plan plan = BuildStepPlan();
  PartitionedDataset statics = Pairs(4000, 64, /*salt=*/0);
  auto worksets = MakeWorksets(4);
  runtime::CostModel costs;

  runtime::SimClock cached_clock;
  ExecCache cache({"volatile"});
  RunSupersteps(plan, statics, worksets, &cache, nullptr, &cached_clock,
                &costs);

  runtime::SimClock plain_clock;
  RunSupersteps(plan, statics, worksets, nullptr, nullptr, &plain_clock,
                &costs);

  // The static side is shuffled and charged exactly once instead of once
  // per superstep: strictly less network and compute time overall.
  EXPECT_LT(cached_clock.Of(runtime::Charge::kNetwork),
            plain_clock.Of(runtime::Charge::kNetwork));
  EXPECT_LT(cached_clock.Of(runtime::Charge::kCompute),
            plain_clock.Of(runtime::Charge::kCompute));
}

// ------------------------------------------------------ cogroup caching --

TEST(ExecCacheTest, CoGroupStaticSideIsCachedAndByteIdentical) {
  Plan plan;
  auto stat = plan.Source("static");
  auto vol = plan.Source("volatile");
  auto cg = plan.CoGroup(
      stat, vol, {0}, {0},
      [](const Record& key, const std::vector<Record>& l,
         const std::vector<Record>& r, std::vector<Record>* out) {
        out->push_back(MakeRecord(key[0].AsInt64(),
                                  static_cast<int64_t>(l.size()),
                                  static_cast<int64_t>(r.size())));
      },
      "count-sides");
  plan.Output(cg, "out");

  PartitionedDataset statics = Pairs(1500, 48, /*salt=*/0);
  auto worksets = MakeWorksets(3);

  ExecCache cache({"volatile"});
  std::vector<ExecStats> stats;
  auto cached = RunSupersteps(plan, statics, worksets, &cache, &stats);
  auto plain = RunSupersteps(plan, statics, worksets, nullptr, nullptr);

  EXPECT_EQ(stats[0].cache_hits, 0u);
  EXPECT_GT(stats[1].cache_hits, 0u);
  EXPECT_GT(stats[2].cache_hits, 0u);
  for (size_t s = 0; s < cached.size(); ++s) {
    SCOPED_TRACE("superstep " + std::to_string(s));
    ExpectIdenticalDatasets(cached[s], plain[s]);
  }
}

// ----------------------------------------- volatile-build-side join path --

TEST(ExecCacheTest, ProbeSideCacheServesStaticRightInput) {
  // Static data on the RIGHT of the join exercises the kProbe role: the
  // shuffled right side is cached while the volatile left side is hashed
  // fresh every superstep.
  Plan plan;
  auto vol = plan.Source("volatile");
  auto stat = plan.Source("static");
  auto joined = plan.Join(
      vol, stat, {0}, {0},
      [](const Record& l, const Record& r) {
        return MakeRecord(l[0].AsInt64(), l[1].AsInt64() + r[1].AsInt64());
      },
      "probe-join");
  plan.Output(joined, "out");

  PartitionedDataset statics = Pairs(2000, 64, /*salt=*/0);
  auto worksets = MakeWorksets(3);

  ExecCache cache({"volatile"});
  std::vector<ExecStats> stats;
  auto cached = RunSupersteps(plan, statics, worksets, &cache, &stats);
  auto plain = RunSupersteps(plan, statics, worksets, nullptr, nullptr);

  EXPECT_GT(stats[1].cache_hits, 0u);
  EXPECT_GT(stats[1].records_not_reshuffled, 0u);
  for (size_t s = 0; s < cached.size(); ++s) {
    SCOPED_TRACE("superstep " + std::to_string(s));
    ExpectIdenticalDatasets(cached[s], plain[s]);
  }
}

// -------------------------------------------------- observability hooks --

TEST(ExecCacheTest, TraceMarksBuildsAndHits) {
  Plan plan = BuildStepPlan();
  PartitionedDataset statics = Pairs(1000, 32, /*salt=*/0);
  auto worksets = MakeWorksets(2);

  runtime::Tracer tracer;
  ExecOptions options;
  options.num_partitions = kParts;
  ExecCache cache({"volatile"});
  options.cache = &cache;
  options.tracer = &tracer;
  Executor executor(options);
  for (const PartitionedDataset& workset : worksets) {
    ExecStats stats;
    auto result = executor.Execute(
        plan, {{"static", &statics}, {"volatile", &workset}}, &stats);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }

  int64_t builds = 0, hits = 0;
  for (const auto& e : tracer.Flush().events) {
    builds += e.Arg("cache_build");
    hits += e.Arg("cache_hit");
  }
  EXPECT_GT(builds, 0);
  EXPECT_GT(hits, 0);
}

TEST(ExecCacheTest, StreamingGatherBoundsOutboxPeak) {
  // The blocked shuffle drains outboxes midway: the recorded peak must be
  // deterministic and strictly below the total record count (all sources
  // materialized at once), yet at least one block's worth.
  const int parts = 8;
  std::vector<Record> records;
  for (int64_t i = 0; i < 4000; ++i) {
    records.push_back(MakeRecord(i % 97, i));
  }
  auto in = PartitionedDataset::RoundRobin(std::move(records), parts);

  auto peak_of = [&](int num_threads) {
    runtime::Tracer tracer;
    ExecOptions options;
    options.num_partitions = parts;
    options.num_threads = num_threads;
    options.tracer = &tracer;
    Executor executor(options);
    ExecStats stats;
    executor.Shuffle(in, {0}, &stats);
    int64_t peak = -1;
    for (const auto& e : tracer.Flush().events) {
      if (e.category == "shuffle.gather" && e.parent_seq != 0 &&
          e.Arg("outbox_peak_records", -1) >= 0 && e.partition == -1) {
        peak = e.Arg("outbox_peak_records");
      }
    }
    return peak;
  };

  int64_t serial_peak = peak_of(1);
  ASSERT_GT(serial_peak, 0);
  EXPECT_LT(serial_peak, 4000);          // never all sources at once
  EXPECT_EQ(serial_peak, peak_of(4));    // deterministic across threads
}

// ------------------------------------------- spill / memory budget (§11) --

// Builds the per-partition hash index the executor builds for a cached
// join build side, referencing the dataset's records in place.
std::vector<dataflow::JoinIndex> BuildIndex(const PartitionedDataset& ds,
                                            const dataflow::KeyColumns& key) {
  std::vector<dataflow::JoinIndex> index(ds.num_partitions());
  for (int p = 0; p < ds.num_partitions(); ++p) {
    for (const Record& r : ds.partition(p)) {
      index[p][dataflow::ExtractKey(r, key)].push_back(&r);
    }
  }
  return index;
}

TEST(ExecCacheSpillTest, SpillRoundTripIsByteIdenticalAndRebuildsIndex) {
  runtime::SimClock clock;
  runtime::CostModel costs;
  runtime::StableStorage storage(&clock, &costs);
  runtime::MemoryManager manager(/*budget_bytes=*/1);
  ExecCache cache({"volatile"});
  cache.AttachMemoryManager(&manager, &storage, "test-job");
  cache.EnsurePartitionCount(kParts);

  auto ds = std::make_shared<PartitionedDataset>(Pairs(500, 32, /*salt=*/3));
  ExecCache::Entry& entry = cache.Emplace(7, ExecCache::Role::kBuild);
  entry.data = ds;
  entry.index_key = {0};
  entry.join_index = BuildIndex(*ds, {0});
  ASSERT_TRUE(
      cache.OnEntryFilled(7, ExecCache::Role::kBuild, nullptr).ok());

  // The just-filled entry has the one-segment slack: resident over budget.
  ASSERT_NE(cache.Find(7, ExecCache::Role::kBuild)->data, nullptr);
  EXPECT_GT(manager.resident_bytes(), manager.budget_bytes());

  // An unexempted pass pushes it out: resident state gone, blob written.
  ASSERT_TRUE(manager.EnforceBudget(nullptr, nullptr).ok());
  EXPECT_EQ(cache.Find(7, ExecCache::Role::kBuild)->data, nullptr);
  EXPECT_TRUE(cache.Find(7, ExecCache::Role::kBuild)->join_index.empty());
  EXPECT_GT(storage.live_bytes(), 0u);
  EXPECT_EQ(manager.stats().spills, 1u);
  const uint64_t io_after_spill = clock.Of(runtime::Charge::kCheckpointIo);
  EXPECT_GT(io_after_spill, 0u);  // the spill write is charged

  // Reload: byte-identical records, the index rebuilt over them.
  bool reloaded = false;
  auto e_or =
      cache.FindResident(7, ExecCache::Role::kBuild, nullptr, &reloaded);
  ASSERT_TRUE(e_or.ok()) << e_or.status().ToString();
  ExecCache::Entry* e = *e_or;
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(reloaded);
  ASSERT_NE(e->data, nullptr);
  ExpectIdenticalDatasets(*e->data, *ds);
  EXPECT_GT(clock.Of(runtime::Charge::kCheckpointIo), io_after_spill);

  // The rebuilt index answers every probe like one built over the original.
  auto fresh = BuildIndex(*ds, {0});
  ASSERT_EQ(e->join_index.size(), fresh.size());
  for (size_t p = 0; p < fresh.size(); ++p) {
    SCOPED_TRACE("partition " + std::to_string(p));
    ASSERT_EQ(e->join_index[p].size(), fresh[p].size());
    for (const auto& [key, group] : fresh[p]) {
      auto it = e->join_index[p].find(key);
      ASSERT_NE(it, e->join_index[p].end());
      ASSERT_EQ(it->second.size(), group.size());
      for (size_t i = 0; i < group.size(); ++i) {
        EXPECT_EQ(*it->second[i], *group[i]);  // same records, same order
      }
    }
  }

  // The blob only exists while the entry is spilled.
  EXPECT_EQ(storage.live_bytes(), 0u);
  EXPECT_EQ(manager.stats().unspills, 1u);
}

TEST(ExecCacheSpillTest, FlatIndexUnspillReusesRetainedHashes) {
  runtime::StableStorage storage(nullptr, nullptr);
  runtime::MemoryManager manager(/*budget_bytes=*/1);
  ExecCache cache({"volatile"});
  cache.AttachMemoryManager(&manager, &storage, "test-job");
  cache.EnsurePartitionCount(kParts);

  auto ds = std::make_shared<PartitionedDataset>(Pairs(500, 32, /*salt=*/3));
  ExecCache::Entry& entry = cache.Emplace(5, ExecCache::Role::kBuild);
  entry.data = ds;
  entry.index_key = {0};
  entry.flat_index.resize(kParts);
  std::vector<std::vector<uint64_t>> hashes(kParts);
  for (int p = 0; p < kParts; ++p) {
    entry.flat_index[p].Build(ds->partition(p), {0});
    hashes[p] = entry.flat_index[p].row_hashes();
  }
  ASSERT_TRUE(
      cache.OnEntryFilled(5, ExecCache::Role::kBuild, nullptr).ok());
  ASSERT_TRUE(manager.EnforceBudget(nullptr, nullptr).ok());
  EXPECT_TRUE(cache.Find(5, ExecCache::Role::kBuild)->flat_index.empty());
  EXPECT_EQ(cache.hash_reuses(), 0u);
  // The retained hashes live beside the entry, never in storage: the blob
  // is the serialized dataset alone, so I/O accounting is unchanged.
  const uint64_t spilled_bytes = storage.live_bytes();
  EXPECT_EQ(spilled_bytes, SerializedDatasetBytes(*ds));

  bool reloaded = false;
  auto e_or =
      cache.FindResident(5, ExecCache::Role::kBuild, nullptr, &reloaded);
  ASSERT_TRUE(e_or.ok()) << e_or.status().ToString();
  ExecCache::Entry* e = *e_or;
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(reloaded);
  ASSERT_EQ(e->flat_index.size(), static_cast<size_t>(kParts));
  // Every partition's rebuild adopted its retained hashes...
  EXPECT_EQ(cache.hash_reuses(), static_cast<uint64_t>(kParts));
  for (int p = 0; p < kParts; ++p) {
    SCOPED_TRACE("partition " + std::to_string(p));
    EXPECT_EQ(e->flat_index[p].row_hashes(), hashes[p]);
    // ...and the adopted index matches a from-scratch build exactly.
    dataflow::FlatKeyIndex fresh;
    fresh.Build(e->data->partition(p), {0});
    ASSERT_EQ(e->flat_index[p].heads(), fresh.heads());
    for (int32_t head : fresh.heads()) {
      for (int32_t r = head; r >= 0; r = fresh.Next(r)) {
        EXPECT_EQ(e->flat_index[p].Next(r), fresh.Next(r));
      }
    }
  }
}

TEST(ExecCacheSpillTest, CachedGroupsSurviveTheRoundTrip) {
  runtime::StableStorage storage(nullptr, nullptr);
  runtime::MemoryManager manager(1);
  ExecCache cache({"volatile"});
  cache.AttachMemoryManager(&manager, &storage, "test-job");
  cache.EnsurePartitionCount(kParts);

  auto ds = std::make_shared<PartitionedDataset>(Pairs(300, 16, /*salt=*/9));
  ExecCache::Entry& entry = cache.Emplace(2, ExecCache::Role::kProbe);
  entry.data = ds;
  entry.index_key = {0};
  entry.groups.resize(kParts);
  for (int p = 0; p < kParts; ++p) {
    for (const Record& r : ds->partition(p)) {
      entry.groups[p][dataflow::ExtractKey(r, {0})].push_back(r);
    }
  }
  auto expected = entry.groups;
  ASSERT_TRUE(
      cache.OnEntryFilled(2, ExecCache::Role::kProbe, nullptr).ok());
  ASSERT_TRUE(manager.EnforceBudget(nullptr, nullptr).ok());
  ASSERT_TRUE(cache.Find(2, ExecCache::Role::kProbe)->groups.empty());

  bool reloaded = false;
  auto e_or =
      cache.FindResident(2, ExecCache::Role::kProbe, nullptr, &reloaded);
  ASSERT_TRUE(e_or.ok()) << e_or.status().ToString();
  EXPECT_TRUE(reloaded);
  EXPECT_EQ((*e_or)->groups, expected);
}

TEST(ExecCacheSpillTest, BudgetedSuperstepsAreByteIdenticalAndSpill) {
  Plan plan = BuildStepPlan();
  PartitionedDataset statics = Pairs(2000, 64, /*salt=*/0);
  auto worksets = MakeWorksets(4);

  auto run = [&](uint64_t budget, runtime::MemoryManager::Stats* stats_out) {
    runtime::StableStorage storage(nullptr, nullptr);
    runtime::MemoryManager manager(budget);
    ExecCache cache({"volatile"});
    cache.AttachMemoryManager(&manager, &storage, "sweep");
    auto outs = RunSupersteps(plan, statics, worksets, &cache, nullptr);
    if (stats_out != nullptr) *stats_out = manager.stats();
    if (budget == 0) {
      EXPECT_EQ(storage.live_bytes(), 0u);  // nothing spilled
    }
    return outs;
  };

  runtime::MemoryManager::Stats unlimited_stats, tiny_stats;
  auto unlimited = run(0, &unlimited_stats);
  auto tiny = run(1, &tiny_stats);

  EXPECT_EQ(unlimited_stats.spills, 0u);
  EXPECT_GT(unlimited_stats.peak_resident_bytes, 0u);
  // Budget 1 with >= 2 cached artifacts: filling one evicts the other,
  // and the next superstep's access reloads it — steady thrash.
  EXPECT_GT(tiny_stats.spills, 0u);
  EXPECT_GT(tiny_stats.unspills, 0u);
  EXPECT_EQ(tiny_stats.peak_resident_bytes,
            unlimited_stats.peak_resident_bytes);

  ASSERT_EQ(unlimited.size(), tiny.size());
  for (size_t s = 0; s < unlimited.size(); ++s) {
    SCOPED_TRACE("superstep " + std::to_string(s));
    ExpectIdenticalDatasets(unlimited[s], tiny[s]);
  }
}

TEST(ExecCacheSpillTest, InvalidateDeletesSpillBlobs) {
  runtime::StableStorage storage(nullptr, nullptr);
  runtime::MemoryManager manager(1);
  ExecCache cache({"volatile"});
  cache.AttachMemoryManager(&manager, &storage, "test-job");
  cache.EnsurePartitionCount(kParts);

  auto ds = std::make_shared<PartitionedDataset>(Pairs(200, 16, /*salt=*/1));
  cache.Emplace(0, ExecCache::Role::kOutput).data = ds;
  ASSERT_TRUE(
      cache.OnEntryFilled(0, ExecCache::Role::kOutput, nullptr).ok());
  ASSERT_TRUE(manager.EnforceBudget(nullptr, nullptr).ok());
  ASSERT_GT(storage.live_bytes(), 0u);

  // A failure drops spilled entries *and* their blobs — recovery must
  // rebuild from the sources, not reload stale state.
  uint64_t released = cache.Invalidate({1});
  EXPECT_GT(released, 0u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(manager.num_segments(), 0u);
  EXPECT_EQ(storage.live_bytes(), 0u);
}

TEST(ExecCacheSpillTest, SpillSpansAppearInTrace) {
  runtime::Tracer tracer;
  runtime::StableStorage storage(nullptr, nullptr);
  runtime::MemoryManager manager(1);
  ExecCache cache({"volatile"});
  cache.AttachMemoryManager(&manager, &storage, "traced");
  cache.EnsurePartitionCount(kParts);

  auto ds = std::make_shared<PartitionedDataset>(Pairs(200, 16, /*salt=*/5));
  cache.Emplace(4, ExecCache::Role::kOutput).data = ds;
  ASSERT_TRUE(
      cache.OnEntryFilled(4, ExecCache::Role::kOutput, &tracer).ok());
  ASSERT_TRUE(manager.EnforceBudget(nullptr, &tracer).ok());
  bool reloaded = false;
  ASSERT_TRUE(
      cache.FindResident(4, ExecCache::Role::kOutput, &tracer, &reloaded)
          .ok());
  ASSERT_TRUE(reloaded);

  int spill_spans = 0, unspill_spans = 0;
  auto snapshot = tracer.Flush();
  for (const auto& e : snapshot.events) {
    if (e.category == "cache.spill") {
      ++spill_spans;
      EXPECT_GT(e.Arg("bytes"), 0);
      EXPECT_EQ(e.Arg("partitions"), kParts);
    } else if (e.category == "cache.unspill") {
      ++unspill_spans;
      EXPECT_GT(e.Arg("bytes"), 0);
    }
  }
  EXPECT_EQ(spill_spans, 1);
  EXPECT_EQ(unspill_spans, 1);

  // The summary aggregates them.
  auto summary = runtime::TraceSummary::FromSnapshot(snapshot);
  EXPECT_EQ(summary.spills, 1u);
  EXPECT_EQ(summary.unspills, 1u);
  EXPECT_GT(summary.spilled_bytes, 0u);
  EXPECT_GT(summary.peak_resident_bytes, 0u);
}

}  // namespace
}  // namespace flinkless
