// Unit tests for the FlagParser used by the demo drivers.

#include <gtest/gtest.h>

#include "common/flags.h"

namespace flinkless {
namespace {

std::vector<const char*> Argv(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args);
  return argv;
}

TEST(FlagsTest, DefaultsSurviveEmptyParse) {
  FlagParser flags;
  int64_t* n = flags.Int64("n", 7, "");
  double* d = flags.Double("d", 0.5, "");
  std::string* s = flags.String("s", "x", "");
  bool* b = flags.Bool("b", false, "");
  auto argv = Argv({});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(*n, 7);
  EXPECT_DOUBLE_EQ(*d, 0.5);
  EXPECT_EQ(*s, "x");
  EXPECT_FALSE(*b);
}

TEST(FlagsTest, ParsesEveryKind) {
  FlagParser flags;
  int64_t* n = flags.Int64("n", 0, "");
  double* d = flags.Double("d", 0, "");
  std::string* s = flags.String("s", "", "");
  bool* b = flags.Bool("b", false, "");
  auto argv = Argv({"--n=-42", "--d=2.5", "--s=hello world", "--b"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(*n, -42);
  EXPECT_DOUBLE_EQ(*d, 2.5);
  EXPECT_EQ(*s, "hello world");
  EXPECT_TRUE(*b);
}

TEST(FlagsTest, BoolExplicitValues) {
  FlagParser flags;
  bool* a = flags.Bool("a", false, "");
  bool* b = flags.Bool("b", true, "");
  auto argv = Argv({"--a=true", "--b=false"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(*a);
  EXPECT_FALSE(*b);
  auto argv2 = Argv({"--a=1", "--b=0"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv2.size()), argv2.data()).ok());
  EXPECT_TRUE(*a);
  EXPECT_FALSE(*b);
}

TEST(FlagsTest, RejectsUnknownFlag) {
  FlagParser flags;
  flags.Int64("n", 0, "");
  auto argv = Argv({"--mystery=1"});
  Status s = flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("mystery"), std::string::npos);
  EXPECT_NE(s.message().find("--n"), std::string::npos);  // usage included
}

TEST(FlagsTest, RejectsBadValues) {
  FlagParser flags;
  flags.Int64("n", 0, "");
  flags.Double("d", 0, "");
  flags.Bool("b", false, "");
  flags.String("s", "", "");
  auto bad_int = Argv({"--n=abc"});
  EXPECT_FALSE(
      flags.Parse(static_cast<int>(bad_int.size()), bad_int.data()).ok());
  auto bad_double = Argv({"--d=x"});
  EXPECT_FALSE(
      flags.Parse(static_cast<int>(bad_double.size()), bad_double.data())
          .ok());
  auto bad_bool = Argv({"--b=maybe"});
  EXPECT_FALSE(
      flags.Parse(static_cast<int>(bad_bool.size()), bad_bool.data()).ok());
  auto bare_string = Argv({"--s"});
  EXPECT_FALSE(
      flags.Parse(static_cast<int>(bare_string.size()), bare_string.data())
          .ok());
  auto bare_int = Argv({"--n"});
  EXPECT_FALSE(
      flags.Parse(static_cast<int>(bare_int.size()), bare_int.data()).ok());
}

TEST(FlagsTest, RejectsPositionalArguments) {
  FlagParser flags;
  auto argv = Argv({"positional"});
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagsTest, EmptyStringValueAllowed) {
  FlagParser flags;
  std::string* s = flags.String("s", "default", "");
  auto argv = Argv({"--s="});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(*s, "");
}

TEST(FlagsTest, UsageListsFlagsInRegistrationOrder) {
  FlagParser flags;
  flags.Int64("zeta", 1, "last letter");
  flags.Bool("alpha", true, "first letter");
  std::string usage = flags.Usage();
  auto zeta_pos = usage.find("--zeta");
  auto alpha_pos = usage.find("--alpha");
  ASSERT_NE(zeta_pos, std::string::npos);
  ASSERT_NE(alpha_pos, std::string::npos);
  EXPECT_LT(zeta_pos, alpha_pos);
  EXPECT_NE(usage.find("(default: 1)"), std::string::npos);
  EXPECT_NE(usage.find("last letter"), std::string::npos);
}

}  // namespace
}  // namespace flinkless
