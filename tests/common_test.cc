// Unit tests for src/common: Status/Result, Rng, hashing, strings, tables.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "common/hash.h"
#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/table.h"

namespace flinkless {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad key");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad key");
}

TEST(StatusTest, AllCodesHaveDistinctNames) {
  std::set<std::string_view> names;
  for (int c = 0; c <= 10; ++c) {
    names.insert(StatusCodeToString(static_cast<StatusCode>(c)));
  }
  EXPECT_EQ(names.size(), 11u);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, ReturnNotOkPropagates) {
  auto fails = []() -> Status { return Status::Aborted("inner"); };
  auto outer = [&]() -> Status {
    FLINKLESS_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsAborted());
}

TEST(StatusTest, StreamInsertionPrintsToString) {
  std::ostringstream os;
  os << Status::DataLoss("gone");
  EXPECT_EQ(os.str(), "DataLoss: gone");
}

// ---------------------------------------------------------------- Result --

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(42), 42);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto inner = []() -> Result<int> { return Status::OutOfRange("n"); };
  auto outer = [&]() -> Result<int> {
    FLINKLESS_ASSIGN_OR_RETURN(int v, inner());
    return v + 1;
  };
  EXPECT_EQ(outer().status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, AssignOrReturnPassesValue) {
  auto inner = []() -> Result<int> { return 41; };
  auto outer = [&]() -> Result<int> {
    FLINKLESS_ASSIGN_OR_RETURN(int v, inner());
    return v + 1;
  };
  EXPECT_EQ(*outer(), 42);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(31);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(37);
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = rng.SampleWithoutReplacement(20, 7);
    std::set<size_t> distinct(sample.begin(), sample.end());
    EXPECT_EQ(distinct.size(), 7u);
    for (size_t s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(RngTest, SampleFullPopulation) {
  Rng rng(41);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 5u);
}

// ------------------------------------------------------------------ Hash --

TEST(HashTest, Mix64ChangesInput) {
  EXPECT_NE(Mix64(1), 1u);
  EXPECT_NE(Mix64(1), Mix64(2));
}

TEST(HashTest, HashBytesDependsOnContent) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString("abc"), HashString("ab"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(HashTest, HashDoubleCollapsesZeroSigns) {
  EXPECT_EQ(HashDouble(0.0), HashDouble(-0.0));
}

TEST(HashTest, HashDoubleNanStable) {
  EXPECT_EQ(HashDouble(std::nan("1")), HashDouble(std::nan("2")));
}

TEST(HashTest, HashCombineOrderDependent) {
  uint64_t ab = HashCombine(HashCombine(0, 1), 2);
  uint64_t ba = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(HashTest, PartitioningIsRoughlyBalanced) {
  // The property the message-count experiments rely on.
  const int parts = 8;
  std::vector<int> counts(parts, 0);
  for (int64_t v = 0; v < 8000; ++v) {
    counts[Mix64(static_cast<uint64_t>(v)) % parts]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

// --------------------------------------------------------------- Strings --

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, SplitWhitespaceDropsRuns) {
  auto parts = SplitWhitespace("  a \t b\n\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitWhitespaceEmpty) {
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(StringsTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  abc \t"), "abc");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a"), "a");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StringsTest, ParseInt64Valid) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64(" -7 ", &v));
  EXPECT_EQ(v, -7);
}

TEST(StringsTest, ParseInt64Rejects) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
}

TEST(StringsTest, ParseDoubleValid) {
  double d = 0;
  EXPECT_TRUE(ParseDouble("0.25", &d));
  EXPECT_DOUBLE_EQ(d, 0.25);
  EXPECT_TRUE(ParseDouble("-1e3", &d));
  EXPECT_DOUBLE_EQ(d, -1000.0);
}

TEST(StringsTest, ParseDoubleRejects) {
  double d = 0;
  EXPECT_FALSE(ParseDouble("", &d));
  EXPECT_FALSE(ParseDouble("1.2.3", &d));
  EXPECT_FALSE(ParseDouble("x", &d));
}

TEST(StringsTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(0.25), "0.25");
}

TEST(StringsTest, FormatBytesUnits) {
  EXPECT_EQ(FormatBytes(0), "0 B");
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0 MiB");
}

// ----------------------------------------------------------------- Table --

TEST(TableTest, AsciiAlignsColumns) {
  TablePrinter t({"name", "value"});
  t.Row().Cell("pi").Cell(3.14);
  t.Row().Cell("answer").Cell(int64_t{42});
  std::ostringstream os;
  t.PrintAscii(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| answer | 42    |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, CsvEscapesSpecials) {
  TablePrinter t({"a", "b"});
  t.Row().Cell("x,y").Cell("quote\"inside");
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"quote\"\"inside\"\n");
}

TEST(TableTest, MissingCellsRenderEmpty) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,,\n");
}

TEST(TableTest, AsciiPlotShapes) {
  std::string plot = AsciiPlot({1.0, 2.0, 3.0}, 3, "t");
  EXPECT_NE(plot.find("t\n"), std::string::npos);
  EXPECT_NE(plot.find("min=1 max=3 n=3"), std::string::npos);
  EXPECT_EQ(AsciiPlot({}, 3, "e"), "e\n(no data)\n");
}

// --------------------------------------------------------------- Logging --

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, FailedCheckAbortsWithMessage) {
  EXPECT_DEATH({ FLINKLESS_CHECK(1 + 1 == 3, "math broke"); },
               "CHECK failed: 1 \\+ 1 == 3: math broke");
}

TEST(CheckDeathTest, FailedCheckAbortsEvenWhenLevelFiltered) {
  // A CHECK must kill the process even if fatal log emission were ever
  // filtered out: the abort comes from FatalAbort(), not from the log line.
  EXPECT_DEATH(
      {
        SetLogLevel(LogLevel::kFatal);  // child process; parent unaffected
        FLINKLESS_CHECK(false, "filtered but still fatal");
      },
      "filtered but still fatal");
}

TEST(CheckDeathTest, FatalLineCarriesSourceLocation) {
  EXPECT_DEATH({ FLINKLESS_CHECK(false, "where"); }, "common_test\\.cc");
}

TEST(CheckDeathTest, PassingCheckIsSilent) {
  FLINKLESS_CHECK(2 + 2 == 4, "never shown");  // must not abort or print
  SUCCEED();
}

}  // namespace
}  // namespace flinkless
