// JobServer tests: concurrent jobs multiplexed onto shared runtime
// services, epoch-consistent point reads (including mid-recovery), cache
// reuse across resubmissions, the spill-namespace registry, per-owner
// memory accounting, and the base-data-change re-run path. The determinism
// contract extends to serving: the full answer stream — tickets, records,
// epochs, simulated timestamps — is byte-identical at any thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algos/connected_components.h"
#include "algos/datasets.h"
#include "algos/refreshers.h"
#include "common/rng.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "server/job_server.h"

namespace flinkless::server {
namespace {

using dataflow::MakeRecord;
using dataflow::PartitionedDataset;
using dataflow::Plan;
using dataflow::Record;

constexpr int kParts = 4;

graph::Graph TestGraph() {
  Rng rng(2025);
  graph::Graph directed = graph::Rmat(8, 6, &rng);  // 256 vertices
  graph::Graph undirected(directed.num_vertices(), /*directed=*/false);
  for (const graph::Edge& e : directed.edges()) {
    Status s = undirected.AddEdge(e.src, e.dst);
    EXPECT_TRUE(s.ok());
  }
  return undirected;
}

/// Shared fixtures one serving scenario needs; plans/datasets/policies are
/// borrowed by the server and must outlive it.
struct CcJobFixture {
  explicit CcJobFixture(const graph::Graph& graph)
      : plan(algos::BuildConnectedComponentsPlan()),
        edges(algos::EdgePairs(graph, kParts)),
        labels(algos::InitialLabels(graph)),
        workset(PartitionedDataset::HashPartitioned(labels, {0}, kParts)),
        fix(&graph) {}

  JobSpec Spec(const std::string& job_id, const std::string& dataflow_id,
               const std::string& failures, int num_threads,
               iteration::FaultTolerancePolicy* policy) {
    JobSpec spec;
    spec.job_id = job_id;
    spec.dataflow_id = dataflow_id;
    spec.plan = &plan;
    spec.bindings["edges"] = &edges;
    spec.exec.num_partitions = kParts;
    spec.exec.num_threads = num_threads;
    spec.policy = policy;
    if (!failures.empty()) {
      auto parsed = runtime::FailureSchedule::Parse(failures);
      EXPECT_TRUE(parsed.ok());
      spec.failures = *parsed;
    }
    spec.delta.max_iterations = 40;
    spec.initial_solution = labels;
    spec.initial_workset = workset;
    return spec;
  }

  Plan plan;
  PartitionedDataset edges;
  std::vector<Record> labels;
  PartitionedDataset workset;
  algos::FixComponentsCompensation fix;
};

std::vector<int64_t> LabelsFromServer(const JobServer& server,
                                      const std::string& job_id,
                                      int64_t num_vertices) {
  auto solution = server.FinalSolution(job_id);
  EXPECT_TRUE(solution.ok()) << solution.status().ToString();
  std::vector<int64_t> out(num_vertices, -1);
  if (!solution.ok()) return out;
  for (int64_t v = 0; v < num_vertices; ++v) {
    const Record* entry = (*solution)->Lookup(MakeRecord(v));
    if (entry != nullptr) out[v] = (*entry)[1].AsInt64();
  }
  return out;
}

std::string Fingerprint(const LookupAnswer& a) {
  std::ostringstream out;
  out << a.ticket << '|' << a.job_id << '|' << a.key[0].AsInt64() << '|'
      << a.found << '|' << (a.found ? a.record[1].AsInt64() : -1) << '|'
      << a.partition << '|' << a.epoch << '|' << a.during_recovery << '|'
      << a.submit_sim_ns << '|' << a.answer_sim_ns;
  return out.str();
}

/// Everything one serving run exposes, for cross-thread-count comparison.
struct ServingRun {
  std::vector<std::string> answers;
  std::vector<int64_t> labels_a;
  std::vector<int64_t> labels_b;
  int64_t sim_total_ns = 0;
  uint64_t lookups_answered = 0;
  uint64_t answered_during_recovery = 0;
  int pumps = 0;
};

/// Two concurrent CC jobs — one with an injected failure repaired by
/// compensation — probed with a fixed key set between every pump.
ServingRun RunServingScenario(int num_threads, bool with_failures) {
  graph::Graph graph = TestGraph();
  CcJobFixture fixture(graph);
  runtime::SimClock clock;
  runtime::CostModel costs;
  runtime::StableStorage storage(&clock, &costs);

  core::OptimisticRecoveryPolicy policy_a(&fixture.fix);
  core::OptimisticRecoveryPolicy policy_b(&fixture.fix);

  ServerOptions options;
  options.max_concurrent_jobs = 2;
  JobServer server(&clock, &costs, &storage, options);
  EXPECT_TRUE(server
                  .Submit(fixture.Spec("cc-a", "cc-df-a",
                                       with_failures ? "2:3" : "",
                                       num_threads, &policy_a))
                  .ok());
  EXPECT_TRUE(server
                  .Submit(fixture.Spec("cc-b", "cc-df-b",
                                       with_failures ? "3:1" : "",
                                       num_threads, &policy_b))
                  .ok());

  ServingRun run;
  do {
    for (int64_t v = 0; v < 16; ++v) {
      EXPECT_TRUE(server.EnqueueLookup("cc-a", MakeRecord(v)).ok());
      EXPECT_TRUE(server.EnqueueLookup("cc-b", MakeRecord(v)).ok());
    }
    if (++run.pumps > 500) {
      ADD_FAILURE() << "server did not drain";
      break;
    }
  } while (server.Pump());

  for (const LookupAnswer& a : server.TakeAnswers()) {
    run.answers.push_back(Fingerprint(a));
  }
  run.labels_a = LabelsFromServer(server, "cc-a", graph.num_vertices());
  run.labels_b = LabelsFromServer(server, "cc-b", graph.num_vertices());
  run.sim_total_ns = clock.TotalNs();
  run.lookups_answered = server.lookups_answered();
  run.answered_during_recovery = server.answered_during_recovery();
  return run;
}

class ServerDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(ServerDeterminismTest, AnswerStreamIsByteIdenticalAcrossThreads) {
  ServingRun serial = RunServingScenario(1, /*with_failures=*/false);
  ServingRun parallel =
      RunServingScenario(GetParam(), /*with_failures=*/false);
  EXPECT_EQ(serial.answers, parallel.answers);
  EXPECT_EQ(serial.labels_a, parallel.labels_a);
  EXPECT_EQ(serial.labels_b, parallel.labels_b);
  EXPECT_EQ(serial.sim_total_ns, parallel.sim_total_ns);
  EXPECT_EQ(serial.lookups_answered, parallel.lookups_answered);
  EXPECT_GT(serial.lookups_answered, 0u);
}

TEST_P(ServerDeterminismTest, RecoveryAnswerStreamIsByteIdentical) {
  ServingRun serial = RunServingScenario(1, /*with_failures=*/true);
  ServingRun parallel = RunServingScenario(GetParam(), /*with_failures=*/true);
  EXPECT_EQ(serial.answers, parallel.answers);
  EXPECT_EQ(serial.labels_a, parallel.labels_a);
  EXPECT_EQ(serial.labels_b, parallel.labels_b);
  EXPECT_EQ(serial.sim_total_ns, parallel.sim_total_ns);
  EXPECT_EQ(serial.answered_during_recovery,
            parallel.answered_during_recovery);
  // The availability claim: reads were answered while a failure was being
  // compensated, from the pinned pre-failure epoch.
  EXPECT_GT(serial.answered_during_recovery, 0u);
}

TEST_P(ServerDeterminismTest, RecoveredJobsConvergeToReferenceLabels) {
  graph::Graph graph = TestGraph();
  auto truth = graph::ReferenceConnectedComponents(graph);
  ServingRun run = RunServingScenario(GetParam(), /*with_failures=*/true);
  EXPECT_EQ(run.labels_a, truth);
  EXPECT_EQ(run.labels_b, truth);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ServerDeterminismTest,
                         ::testing::Values(1, 2, 8));

TEST(ServerReadConsistencyTest, AnswerEpochsNeverRegressAndPinDuringRecovery) {
  graph::Graph graph = TestGraph();
  CcJobFixture fixture(graph);
  runtime::SimClock clock;
  runtime::CostModel costs;
  runtime::StableStorage storage(&clock, &costs);
  core::OptimisticRecoveryPolicy policy(&fixture.fix);

  JobServer server(&clock, &costs, &storage, ServerOptions{});
  ASSERT_TRUE(
      server.Submit(fixture.Spec("cc", "cc-df", "3:1,2", 2, &policy)).ok());

  int pumps = 0;
  do {
    for (int64_t v = 0; v < 32; ++v) {
      ASSERT_TRUE(server.EnqueueLookup("cc", MakeRecord(v)).ok());
    }
    ASSERT_LT(++pumps, 500);
  } while (server.Pump());

  // A read must observe a prefix-consistent epoch, never a half-applied
  // delta: within the served stream, epochs are monotonically
  // non-decreasing (a recovery rewinds the job, never the view), and the
  // answers flagged during_recovery carry the epoch the view pinned when
  // the failure was detected — the last successfully published one.
  int last_epoch = -1;
  int pinned_epoch = -1;
  uint64_t recovery_answers = 0;
  for (const LookupAnswer& a : server.TakeAnswers()) {
    EXPECT_GE(a.epoch, last_epoch) << "epoch regressed at ticket " << a.ticket;
    if (a.during_recovery) {
      if (pinned_epoch < 0) pinned_epoch = a.epoch;
      EXPECT_EQ(a.epoch, pinned_epoch)
          << "mixed-epoch state served mid-recovery at ticket " << a.ticket;
      EXPECT_EQ(a.epoch, last_epoch);
      ++recovery_answers;
    }
    last_epoch = a.epoch;
  }
  EXPECT_GT(recovery_answers, 0u);
  EXPECT_EQ(server.answered_during_recovery(), recovery_answers);
}

TEST(ServerReadConsistencyTest, MultiLookupObservesOneEpoch) {
  graph::Graph graph = TestGraph();
  CcJobFixture fixture(graph);
  runtime::SimClock clock;
  runtime::CostModel costs;
  runtime::StableStorage storage(&clock, &costs);
  core::OptimisticRecoveryPolicy policy(&fixture.fix);

  JobServer server(&clock, &costs, &storage, ServerOptions{});
  ASSERT_TRUE(
      server.Submit(fixture.Spec("cc", "cc-df", "2:0", 1, &policy)).ok());

  std::vector<Record> keys;
  for (int64_t v = 0; v < 24; ++v) keys.push_back(MakeRecord(v));

  bool checked_mid_run = false;
  int pumps = 0;
  do {
    auto batch = server.MultiLookup("cc", keys);
    if (batch.ok()) {
      // All answers from one consistent epoch, whatever it currently is.
      ASSERT_FALSE(batch->empty());
      const int epoch = batch->front().epoch;
      for (const LookupAnswer& a : *batch) {
        EXPECT_EQ(a.epoch, epoch);
        EXPECT_TRUE(a.found);
      }
      checked_mid_run = true;
    }
    ASSERT_LT(++pumps, 500);
  } while (server.Pump());
  EXPECT_TRUE(checked_mid_run);

  // Against the finished job the batch always succeeds (cold partitions
  // materialize on demand) and matches the final solution.
  auto final_batch = server.MultiLookup("cc", keys);
  ASSERT_TRUE(final_batch.ok()) << final_batch.status().ToString();
  auto truth = graph::ReferenceConnectedComponents(graph);
  for (size_t i = 0; i < final_batch->size(); ++i) {
    ASSERT_TRUE((*final_batch)[i].found);
    EXPECT_EQ((*final_batch)[i].record[1].AsInt64(),
              truth[static_cast<int64_t>(i)]);
  }
}

TEST(ServerCacheTest, ResubmitSameDataflowRebuildsNothing) {
  graph::Graph graph = TestGraph();
  CcJobFixture fixture(graph);
  runtime::SimClock clock;
  runtime::CostModel costs;
  runtime::StableStorage storage(&clock, &costs);
  core::OptimisticRecoveryPolicy policy_a(&fixture.fix);
  core::OptimisticRecoveryPolicy policy_b(&fixture.fix);

  JobServer server(&clock, &costs, &storage, ServerOptions{});
  ASSERT_TRUE(
      server.Submit(fixture.Spec("run-1", "cc-df", "", 1, &policy_a)).ok());
  ASSERT_TRUE(server.RunToCompletion().ok());

  auto first = server.Report("run-1");
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->converged);
  EXPECT_FALSE(first->cache_slot_reused);
  EXPECT_GT(first->cache_builds, 0u) << "cold run must build the artifacts";

  // Same dataflow id + the same Plan object => same node ids => every
  // loop-invariant artifact is found warm: zero rebuilds.
  ASSERT_TRUE(
      server.Submit(fixture.Spec("run-2", "cc-df", "", 1, &policy_b)).ok());
  ASSERT_TRUE(server.RunToCompletion().ok());
  auto second = server.Report("run-2");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->converged);
  EXPECT_TRUE(second->cache_slot_reused);
  EXPECT_EQ(second->cache_builds, 0u);

  EXPECT_EQ(LabelsFromServer(server, "run-1", graph.num_vertices()),
            LabelsFromServer(server, "run-2", graph.num_vertices()));
}

TEST(ServerCacheTest, BaseDataChangeInvalidatesAndReRunsIncrementally) {
  graph::Graph graph = TestGraph();
  CcJobFixture fixture(graph);
  runtime::SimClock clock;
  runtime::CostModel costs;
  runtime::StableStorage storage(&clock, &costs);
  core::OptimisticRecoveryPolicy policy(&fixture.fix);

  JobServer server(&clock, &costs, &storage, ServerOptions{});
  ASSERT_TRUE(
      server.Submit(fixture.Spec("base", "cc-df", "", 1, &policy)).ok());
  ASSERT_TRUE(server.RunToCompletion().ok());

  // Base-data change: connect the two vertices with the largest labels so
  // at least two components merge.
  auto before = LabelsFromServer(server, "base", graph.num_vertices());
  int64_t u = std::max_element(before.begin(), before.end()) - before.begin();
  int64_t v = 0;
  while (v < graph.num_vertices() && before[v] == before[u]) ++v;
  ASSERT_LT(v, graph.num_vertices()) << "graph is already fully connected";
  ASSERT_TRUE(graph.AddEdge(u, v).ok());

  // Drop the stale loop-invariant artifacts, rebind the new edges, and
  // resubmit seeded from the changed region only.
  ASSERT_TRUE(server.InvalidateDataflow("cc-df").ok());
  PartitionedDataset new_edges = algos::EdgePairs(graph, kParts);
  std::vector<Record> prior_solution;
  {
    auto solution = server.FinalSolution("base");
    ASSERT_TRUE(solution.ok());
    for (int p = 0; p < kParts; ++p) {
      for (Record& r : (*solution)->PartitionRecords(p)) {
        prior_solution.push_back(std::move(r));
      }
    }
  }
  algos::FixComponentsCompensation fix2(&graph);
  core::OptimisticRecoveryPolicy policy2(&fix2);
  JobSpec rerun = fixture.Spec("rerun", "cc-df", "", 1, &policy2);
  rerun.bindings["edges"] = &new_edges;
  rerun.initial_solution = prior_solution;
  rerun.initial_workset =
      algos::MakeChangeSeedWorkset(&graph, prior_solution, {u, v}, kParts);
  EXPECT_GT(rerun.initial_workset.NumRecords(), 0u);
  ASSERT_TRUE(server.Submit(std::move(rerun)).ok());
  ASSERT_TRUE(server.RunToCompletion().ok());

  auto report = server.Report("rerun");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged);
  EXPECT_GT(report->cache_builds, 0u) << "invalidation must force a rebuild";
  EXPECT_EQ(LabelsFromServer(server, "rerun", graph.num_vertices()),
            graph::ReferenceConnectedComponents(graph));
}

TEST(ServerAdmissionTest, DuplicateJobIdRejected) {
  graph::Graph graph = TestGraph();
  CcJobFixture fixture(graph);
  runtime::SimClock clock;
  runtime::CostModel costs;
  runtime::StableStorage storage(&clock, &costs);
  core::OptimisticRecoveryPolicy policy(&fixture.fix);

  JobServer server(&clock, &costs, &storage, ServerOptions{});
  ASSERT_TRUE(server.Submit(fixture.Spec("dup", "a", "", 1, &policy)).ok());
  EXPECT_EQ(server.Submit(fixture.Spec("dup", "b", "", 1, &policy)).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(server.RunToCompletion().ok());
  // Ids stay taken after the job finishes: spill blobs and views would
  // collide otherwise.
  EXPECT_EQ(server.Submit(fixture.Spec("dup", "c", "", 1, &policy)).code(),
            StatusCode::kAlreadyExists);
}

TEST(ServerAdmissionTest, QueueDrainsUnderMemoryGateAndConcurrencyCap) {
  graph::Graph graph = TestGraph();
  CcJobFixture fixture(graph);
  runtime::SimClock clock;
  runtime::CostModel costs;
  runtime::StableStorage storage(&clock, &costs);
  std::vector<std::unique_ptr<core::OptimisticRecoveryPolicy>> policies;

  ServerOptions options;
  options.max_concurrent_jobs = 2;
  options.memory_budget_bytes = 1;  // gate bites after the first admission
  JobServer server(&clock, &costs, &storage, options);
  for (int i = 0; i < 4; ++i) {
    policies.push_back(
        std::make_unique<core::OptimisticRecoveryPolicy>(&fixture.fix));
    ASSERT_TRUE(server
                    .Submit(fixture.Spec("job-" + std::to_string(i),
                                         "df-" + std::to_string(i), "", 1,
                                         policies.back().get()))
                    .ok());
  }
  EXPECT_EQ(server.num_queued(), 4);
  server.Pump();
  // The concurrency cap holds; once the first supersteps push residency
  // over the 1-byte budget, later admissions wait for an idle server (the
  // head-of-line rescue keeps the queue from deadlocking on warm slots).
  EXPECT_LE(server.num_running(), 2);
  EXPECT_GT(server.num_running(), 0);
  ASSERT_TRUE(server.RunToCompletion().ok());
  auto truth = graph::ReferenceConnectedComponents(graph);
  for (int i = 0; i < 4; ++i) {
    const std::string id = "job-" + std::to_string(i);
    auto report = server.Report(id);
    ASSERT_TRUE(report.ok()) << id;
    EXPECT_TRUE(report->converged) << id;
    EXPECT_EQ(LabelsFromServer(server, id, graph.num_vertices()), truth);
  }
}

TEST(ServerMemoryTest, PerOwnerBreakdownAttributesResidency) {
  graph::Graph graph = TestGraph();
  CcJobFixture fixture(graph);
  runtime::SimClock clock;
  runtime::CostModel costs;
  runtime::StableStorage storage(&clock, &costs);
  core::OptimisticRecoveryPolicy policy_a(&fixture.fix);
  core::OptimisticRecoveryPolicy policy_b(&fixture.fix);

  JobServer server(&clock, &costs, &storage, ServerOptions{});
  ASSERT_TRUE(
      server.Submit(fixture.Spec("own-a", "df-a", "", 1, &policy_a)).ok());
  ASSERT_TRUE(
      server.Submit(fixture.Spec("own-b", "df-b", "", 1, &policy_b)).ok());
  ASSERT_TRUE(server.RunToCompletion().ok());

  // Both warm cache slots still hold their artifacts, attributed to their
  // dataflow ids; the totals reconcile with the per-owner rows.
  auto breakdown = server.memory().OwnerBreakdown();
  ASSERT_TRUE(breakdown.count("df-a")) << "missing owner df-a";
  ASSERT_TRUE(breakdown.count("df-b")) << "missing owner df-b";
  EXPECT_GT(breakdown["df-a"].segments, 0u);
  EXPECT_GT(breakdown["df-a"].resident_bytes, 0u);
  EXPECT_EQ(breakdown["df-a"].resident_bytes, breakdown["df-b"].resident_bytes)
      << "identical dataflows must occupy identical residency";
  uint64_t total = 0;
  for (const auto& [owner, stats] : breakdown) total += stats.resident_bytes;
  EXPECT_EQ(total, server.memory().resident_bytes());
}

TEST(ServerDeathTest, DuplicateSpillNamespaceDies) {
  runtime::SimClock clock;
  runtime::CostModel costs;
  runtime::StableStorage storage(&clock, &costs);
  runtime::MemoryManager memory(0);
  dataflow::ExecCache first({"workset", "solution"});
  first.AttachMemoryManager(&memory, &storage, "job-x");
  // A second live cache claiming the same spill namespace would let two
  // owners mix blobs; the registry refuses.
  dataflow::ExecCache second({"workset", "solution"});
  EXPECT_DEATH(second.AttachMemoryManager(&memory, &storage, "job-x"),
               "already owned");
  EXPECT_TRUE(storage.PrefixAcquired("spill/job-x/"));
}

TEST(ServerStorageTest, PrefixRegistryReleasesWithOwner) {
  runtime::SimClock clock;
  runtime::CostModel costs;
  runtime::StableStorage storage(&clock, &costs);
  runtime::MemoryManager memory(0);
  {
    dataflow::ExecCache cache({"workset", "solution"});
    cache.AttachMemoryManager(&memory, &storage, "job-y");
    EXPECT_TRUE(storage.PrefixAcquired("spill/job-y/"));
  }
  // Destruction releases the namespace for the next incarnation.
  EXPECT_FALSE(storage.PrefixAcquired("spill/job-y/"));
  dataflow::ExecCache next({"workset", "solution"});
  next.AttachMemoryManager(&memory, &storage, "job-y");
  EXPECT_TRUE(storage.PrefixAcquired("spill/job-y/"));
}

}  // namespace
}  // namespace flinkless::server
