// Unit tests for Plan construction, validation and explanation.

#include <gtest/gtest.h>

#include <set>

#include "dataflow/plan.h"

namespace flinkless::dataflow {
namespace {

Record Identity(const Record& r) { return r; }

TEST(PlanTest, BuildLinearPipeline) {
  Plan plan;
  auto src = plan.Source("in");
  auto mapped = plan.Map(src, Identity, "m");
  auto filtered = plan.Filter(
      mapped, [](const Record&) { return true; }, "f");
  plan.Output(filtered, "out");

  EXPECT_EQ(plan.num_nodes(), 3u);
  EXPECT_TRUE(plan.Validate().ok());
  EXPECT_EQ(plan.node(src).kind, OpKind::kSource);
  EXPECT_EQ(plan.node(mapped).inputs, std::vector<NodeId>{src});
  EXPECT_EQ(plan.SourceNames(), std::vector<std::string>{"in"});
}

TEST(PlanTest, ValidateRequiresOutput) {
  Plan plan;
  plan.Source("in");
  Status s = plan.Validate();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(PlanTest, ValidateRejectsDuplicateOutputNames) {
  Plan plan;
  auto src = plan.Source("in");
  plan.Output(src, "x");
  plan.Output(src, "x");
  EXPECT_EQ(plan.Validate().code(), StatusCode::kAlreadyExists);
}

TEST(PlanTest, SameNodeUnderTwoOutputNamesIsFine) {
  Plan plan;
  auto src = plan.Source("in");
  plan.Output(src, "a");
  plan.Output(src, "b");
  EXPECT_TRUE(plan.Validate().ok());
  EXPECT_EQ(plan.outputs().size(), 2u);
}

TEST(PlanTest, ValidateRejectsMissingUdf) {
  Plan plan;
  auto src = plan.Source("in");
  auto mapped = plan.Map(src, MapFn(), "broken");
  plan.Output(mapped, "out");
  Status s = plan.Validate();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("broken"), std::string::npos);
}

TEST(PlanTest, ValidateRejectsReduceWithoutKey) {
  Plan plan;
  auto src = plan.Source("in");
  auto reduced = plan.ReduceByKey(
      src, {}, [](const Record& a, const Record&) { return a; }, "r");
  plan.Output(reduced, "out");
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(PlanTest, ValidateRejectsJoinKeyArityMismatch) {
  Plan plan;
  auto a = plan.Source("a");
  auto b = plan.Source("b");
  auto j = plan.Join(
      a, b, {0, 1}, {0},
      [](const Record& l, const Record&) { return l; }, "j");
  plan.Output(j, "out");
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(PlanTest, ValidateRejectsCrossWithoutUdf) {
  Plan plan;
  auto a = plan.Source("a");
  auto b = plan.Source("b");
  auto c = plan.Cross(a, b, JoinFn(), "c");
  plan.Output(c, "out");
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(PlanTest, ValidateRejectsDistinctWithoutKey) {
  Plan plan;
  auto src = plan.Source("in");
  auto d = plan.Distinct(src, {}, "d");
  plan.Output(d, "out");
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(PlanTest, ExplainListsOperatorsAndOutputs) {
  Plan plan;
  auto w = plan.Source("workset");
  auto e = plan.Source("edges");
  auto j = plan.Join(
      w, e, {0}, {0},
      [](const Record& l, const Record&) { return l; }, "label-to-neighbors");
  auto r = plan.ReduceByKey(
      j, {0}, [](const Record& a, const Record&) { return a; },
      "candidate-label");
  plan.Output(r, "delta");

  std::string text = plan.Explain();
  EXPECT_NE(text.find("Join 'label-to-neighbors'"), std::string::npos);
  EXPECT_NE(text.find("ReduceByKey 'candidate-label'"), std::string::npos);
  EXPECT_NE(text.find("output 'delta'"), std::string::npos);
  EXPECT_NE(text.find("Source 'workset'"), std::string::npos);
}

TEST(PlanTest, OpKindNamesAreDistinct) {
  std::set<std::string> names;
  for (OpKind k :
       {OpKind::kSource, OpKind::kMap, OpKind::kFlatMap, OpKind::kFilter,
        OpKind::kProject, OpKind::kReduceByKey, OpKind::kGroupReduceByKey,
        OpKind::kJoin, OpKind::kCoGroup, OpKind::kCross, OpKind::kUnion,
        OpKind::kDistinct}) {
    names.insert(OpKindName(k));
  }
  EXPECT_EQ(names.size(), 12u);
}

TEST(PlanTest, SourceNamesInOrder) {
  Plan plan;
  plan.Source("b");
  plan.Source("a");
  auto last = plan.Source("c");
  plan.Output(last, "out");
  EXPECT_EQ(plan.SourceNames(), (std::vector<std::string>{"b", "a", "c"}));
}

}  // namespace
}  // namespace flinkless::dataflow
