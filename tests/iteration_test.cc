// Tests for the iteration layer: state containers (serialize/clear/restore),
// the solution set, and the bulk/delta drivers including failure plumbing
// with scripted policies.

#include <gtest/gtest.h>

#include <memory>

#include "dataflow/executor.h"
#include "iteration/bulk_iteration.h"
#include "iteration/delta_iteration.h"
#include "iteration/policy.h"
#include "iteration/state.h"

namespace flinkless::iteration {
namespace {

using dataflow::MakeRecord;
using dataflow::PartitionedDataset;
using dataflow::Plan;
using dataflow::Record;

// ------------------------------------------------------------- BulkState --

TEST(BulkStateTest, SerializeRestoreRoundTrip) {
  std::vector<Record> records;
  for (int64_t i = 0; i < 20; ++i) records.push_back(MakeRecord(i, i * 2));
  BulkState state(PartitionedDataset::HashPartitioned(records, {0}, 4));

  auto blob = state.SerializePartition(1);
  EXPECT_EQ(blob.size(), state.PartitionByteSize(1));
  auto expected = state.data().partition(1);
  state.ClearPartition(1);
  EXPECT_TRUE(state.data().partition(1).empty());
  ASSERT_TRUE(state.RestorePartition(1, blob).ok());
  EXPECT_EQ(state.data().partition(1), expected);
  EXPECT_EQ(state.kind(), StateKind::kBulk);
}

TEST(BulkStateTest, RestoreRejectsCorruptBlob) {
  BulkState state(PartitionedDataset(2));
  EXPECT_FALSE(state.RestorePartition(0, {1, 2, 3}).ok());
}

// ----------------------------------------------------------- SolutionSet --

TEST(SolutionSetTest, UpsertAndLookup) {
  SolutionSet set(4, {0});
  EXPECT_FALSE(set.Upsert(MakeRecord(int64_t{1}, int64_t{10})));
  EXPECT_FALSE(set.Upsert(MakeRecord(int64_t{2}, int64_t{20})));
  EXPECT_TRUE(set.Upsert(MakeRecord(int64_t{1}, int64_t{11})));  // replaced
  EXPECT_EQ(set.NumEntries(), 2u);

  const Record* entry = set.Lookup(MakeRecord(int64_t{1}));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ((*entry)[1].AsInt64(), 11);
  EXPECT_EQ(set.Lookup(MakeRecord(int64_t{99})), nullptr);
}

TEST(SolutionSetTest, ToDatasetIsCoPartitioned) {
  SolutionSet set(4, {0});
  for (int64_t v = 0; v < 40; ++v) set.Upsert(MakeRecord(v, v));
  PartitionedDataset ds = set.ToDataset();
  EXPECT_EQ(ds.NumRecords(), 40u);
  EXPECT_TRUE(ds.IsPartitionedBy({0}));
}

TEST(SolutionSetTest, FromRecordsBuildsIndex) {
  std::vector<Record> records{MakeRecord(int64_t{5}, int64_t{50}),
                              MakeRecord(int64_t{6}, int64_t{60})};
  SolutionSet set = SolutionSet::FromRecords(records, {0}, 3);
  EXPECT_EQ(set.NumEntries(), 2u);
  EXPECT_EQ((*set.Lookup(MakeRecord(int64_t{6})))[1].AsInt64(), 60);
}

TEST(SolutionSetTest, ReplacePartitionValidatesRouting) {
  SolutionSet set(4, {0});
  // Find a vertex that maps to partition 2.
  int64_t v = 0;
  while (PartitionedDataset::PartitionOf(MakeRecord(v), {0}, 4) != 2) ++v;
  EXPECT_TRUE(set.ReplacePartition(2, {MakeRecord(v, v)}).ok());
  EXPECT_EQ(set.NumEntries(), 1u);
  // Same record into the wrong partition is rejected.
  int wrong = (PartitionedDataset::PartitionOf(MakeRecord(v), {0}, 4) + 1) % 4;
  EXPECT_FALSE(set.ReplacePartition(wrong, {MakeRecord(v, v)}).ok());
  EXPECT_FALSE(set.ReplacePartition(-1, {}).ok());
}

TEST(SolutionSetTest, PartitionRecordsSortedByKey) {
  SolutionSet set(1, {0});
  set.Upsert(MakeRecord(int64_t{3}, int64_t{0}));
  set.Upsert(MakeRecord(int64_t{1}, int64_t{0}));
  set.Upsert(MakeRecord(int64_t{2}, int64_t{0}));
  auto records = set.PartitionRecords(0);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0][0].AsInt64(), 1);
  EXPECT_EQ(records[2][0].AsInt64(), 3);
}

TEST(SolutionSetTest, PerPartitionVersionClocks) {
  SolutionSet set(4, {0});
  // Route three distinct keys into known partitions.
  int64_t a = 0;
  while (PartitionedDataset::PartitionOf(MakeRecord(a), {0}, 4) != 1) ++a;
  int64_t b = a + 1;
  while (PartitionedDataset::PartitionOf(MakeRecord(b), {0}, 4) != 1) ++b;
  int64_t c = 0;
  while (PartitionedDataset::PartitionOf(MakeRecord(c), {0}, 4) != 2) ++c;

  set.Upsert(MakeRecord(a, int64_t{10}));
  set.Upsert(MakeRecord(b, int64_t{20}));
  set.Upsert(MakeRecord(c, int64_t{30}));
  // Only the owning partition's clock advances.
  EXPECT_EQ(set.version(0), 0u);
  EXPECT_EQ(set.version(1), 2u);
  EXPECT_EQ(set.version(2), 1u);
  EXPECT_EQ(set.VersionVector(), (std::vector<uint64_t>{0, 2, 1, 0}));

  // EntriesSince compares against the partition's own clock.
  EXPECT_EQ(set.EntriesSince(1, 0).size(), 2u);
  EXPECT_EQ(set.EntriesSince(1, 1).size(), 1u);
  EXPECT_EQ(set.EntriesSince(1, 2).size(), 0u);
  EXPECT_EQ(set.EntriesSince(2, 0).size(), 1u);

  // Overwriting a key bumps only its partition again.
  set.Upsert(MakeRecord(a, int64_t{11}));
  EXPECT_EQ(set.version(1), 3u);
  EXPECT_EQ(set.version(2), 1u);
  EXPECT_EQ(set.EntriesSince(1, 2).size(), 1u);
}

TEST(SolutionSetTest, ReplacePartitionDoesNotMarkEntriesFresh) {
  SolutionSet set(2, {0});
  for (int64_t v = 0; v < 12; ++v) set.Upsert(MakeRecord(v, v));

  // Snapshot partition 0 and "restore" it, as a checkpoint recovery does.
  std::vector<Record> snapshot = set.PartitionRecords(0);
  const size_t entries = snapshot.size();
  set.ClearPartition(0);
  EXPECT_EQ(set.version(0), 0u);
  ASSERT_TRUE(set.ReplacePartition(0, snapshot).ok());

  // The clock restarted at the entry count, and a watermark resynced to it
  // sees nothing fresh: the restore shipped no "changes".
  EXPECT_EQ(set.version(0), static_cast<uint64_t>(entries));
  EXPECT_TRUE(set.EntriesSince(0, set.version(0)).empty());
  // EntriesSince(p, 0) still returns the whole partition (full snapshots).
  EXPECT_EQ(set.EntriesSince(0, 0).size(), entries);
  // A subsequent upsert is strictly newer than every restored entry.
  uint64_t watermark = set.version(0);
  set.Upsert(snapshot[0]);
  EXPECT_EQ(set.EntriesSince(0, watermark).size(), 1u);
  // The sibling partition's clock never moved.
  EXPECT_EQ(set.EntriesSince(1, set.version(1)).size(), 0u);
}

TEST(SolutionSetTest, ApplyDeltaMatchesSerialUpserts) {
  const int kParts = 4;
  auto make_base = [&]() {
    SolutionSet set(kParts, {0});
    for (int64_t v = 0; v < 40; ++v) set.Upsert(MakeRecord(v, v));
    return set;
  };
  std::vector<Record> delta_records;
  for (int64_t v = 5; v < 35; v += 3) {
    delta_records.push_back(MakeRecord(v, v * 100));
  }
  auto delta = PartitionedDataset::HashPartitioned(delta_records, {0}, kParts);

  SolutionSet serial = make_base();
  for (int p = 0; p < kParts; ++p) {
    for (const Record& r : delta.partition(p)) serial.Upsert(r);
  }

  for (int threads : {0, 2, 8}) {
    SolutionSet pooled = make_base();
    std::unique_ptr<runtime::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<runtime::ThreadPool>(threads);
    EXPECT_EQ(pooled.ApplyDelta(delta, pool.get()), delta.NumRecords());
    EXPECT_EQ(pooled.VersionVector(), serial.VersionVector());
    for (int p = 0; p < kParts; ++p) {
      EXPECT_EQ(pooled.PartitionRecords(p), serial.PartitionRecords(p));
      for (uint64_t since : {uint64_t{0}, serial.version(p) / 2,
                             serial.version(p)}) {
        EXPECT_EQ(pooled.EntriesSince(p, since), serial.EntriesSince(p, since))
            << "threads=" << threads << " p=" << p << " since=" << since;
      }
    }
  }
}

TEST(SolutionSetTest, FastForwardClockAdvancesWithoutTouchingEntries) {
  SolutionSet set(2, {0});
  set.Upsert(MakeRecord(int64_t{0}, int64_t{1}));
  int p = PartitionedDataset::PartitionOf(MakeRecord(int64_t{0}), {0}, 2);
  uint64_t clock = set.version(p);
  set.FastForwardClock(p, clock + 5);
  EXPECT_EQ(set.version(p), clock + 5);
  EXPECT_EQ(set.EntriesSince(p, 0).size(), 1u);
  EXPECT_TRUE(set.EntriesSince(p, clock).empty());
}

TEST(SolutionSetDeathTest, OutOfRangePartitionDies) {
  SolutionSet set(2, {0});
  set.Upsert(MakeRecord(int64_t{0}, int64_t{1}));
  EXPECT_DEATH(set.PartitionRecords(2), "out of range");
  EXPECT_DEATH(set.ClearPartition(-1), "out of range");
  EXPECT_DEATH(set.EntriesSince(7, 0), "out of range");
  EXPECT_DEATH(set.version(-3), "out of range");
  EXPECT_DEATH(set.UpsertIntoPartition(5, MakeRecord(int64_t{0}, int64_t{1})),
               "out of range");
  // Misrouted records are a programming error too.
  int home = PartitionedDataset::PartitionOf(MakeRecord(int64_t{0}), {0}, 2);
  EXPECT_DEATH(
      set.UpsertIntoPartition((home + 1) % 2,
                              MakeRecord(int64_t{0}, int64_t{1})),
      "does not hash to partition");
  // home's clock is 1 after the Upsert; 0 would move it backwards.
  EXPECT_DEATH(set.FastForwardClock(home, 0), "cannot move backwards");
}

TEST(BulkStateDeathTest, OutOfRangePartitionDies) {
  BulkState state(PartitionedDataset(2));
  EXPECT_DEATH(state.ClearPartition(2), "out of range");
  EXPECT_DEATH(state.SerializePartition(-1), "out of range");
  EXPECT_DEATH(state.PartitionByteSize(9), "out of range");
}

TEST(BulkStateTest, RestoreRejectsOutOfRangePartition) {
  BulkState state(PartitionedDataset(2));
  EXPECT_TRUE(state.RestorePartition(-1, {}).IsOutOfRange());
  EXPECT_TRUE(state.RestorePartition(2, {}).IsOutOfRange());
}

TEST(DeltaStateTest, RestoreRejectsOutOfRangePartition) {
  DeltaState state(SolutionSet(2, {0}), PartitionedDataset(2));
  EXPECT_TRUE(state.RestorePartition(-1, {}).IsOutOfRange());
  EXPECT_TRUE(state.RestorePartition(2, {}).IsOutOfRange());
}

// ------------------------------------------------------------ DeltaState --

TEST(DeltaStateTest, SerializeRestoreRoundTrip) {
  SolutionSet solution(3, {0});
  for (int64_t v = 0; v < 15; ++v) solution.Upsert(MakeRecord(v, v * 3));
  std::vector<Record> ws;
  for (int64_t v = 0; v < 6; ++v) ws.push_back(MakeRecord(v, v));
  DeltaState state(std::move(solution),
                   PartitionedDataset::HashPartitioned(ws, {0}, 3));

  for (int p = 0; p < 3; ++p) {
    auto blob = state.SerializePartition(p);
    EXPECT_EQ(blob.size(), state.PartitionByteSize(p));
    auto solution_before = state.solution().PartitionRecords(p);
    auto workset_before = state.workset().partition(p);
    state.ClearPartition(p);
    EXPECT_TRUE(state.solution().PartitionRecords(p).empty());
    EXPECT_TRUE(state.workset().partition(p).empty());
    ASSERT_TRUE(state.RestorePartition(p, blob).ok());
    EXPECT_EQ(state.solution().PartitionRecords(p), solution_before);
    EXPECT_EQ(state.workset().partition(p), workset_before);
  }
  EXPECT_EQ(state.kind(), StateKind::kDelta);
}

TEST(DeltaStateTest, RestoreRejectsTruncatedBlob) {
  DeltaState state(SolutionSet(2, {0}), PartitionedDataset(2));
  EXPECT_FALSE(state.RestorePartition(0, {0, 0, 0}).ok());
}

// --------------------------------------------------- scripted test policy --

/// Counts hook invocations and performs a fixed action on failure.
class ScriptedPolicy : public FaultTolerancePolicy {
 public:
  explicit ScriptedPolicy(RecoveryAction action) : action_(action) {}

  std::string name() const override { return "scripted"; }

  Status OnJobStart(const IterationContext&, IterationState*) override {
    ++job_starts;
    return Status::OK();
  }
  Status AfterIteration(const IterationContext& ctx,
                        IterationState*) override {
    after_iterations.push_back(ctx.iteration);
    return Status::OK();
  }
  Result<RecoveryOutcome> OnFailure(const IterationContext& ctx,
                                    IterationState* state,
                                    const std::vector<int>& lost) override {
    failures.push_back(ctx.iteration);
    lost_counts.push_back(lost.size());
    if (action_ == RecoveryAction::kContinue) {
      if (state->kind() == StateKind::kBulk) {
        // Rebuild the lost partitions so the job can proceed.
        auto* bulk = static_cast<BulkState*>(state);
        for (int p : lost) {
          (void)bulk;
          (void)p;
        }
      }
      return RecoveryOutcome::Continue();
    }
    if (action_ == RecoveryAction::kRestart) return RecoveryOutcome::Restart();
    if (action_ == RecoveryAction::kAbort) return RecoveryOutcome::Abort();
    return RecoveryOutcome::Rewind(0);
  }

  int job_starts = 0;
  std::vector<int> after_iterations;
  std::vector<int> failures;
  std::vector<size_t> lost_counts;

 private:
  RecoveryAction action_;
};

/// A bulk step plan that doubles the value column.
Plan DoublingPlan() {
  Plan plan;
  auto state = plan.Source("state");
  auto next = plan.Map(
      state,
      [](const Record& r) {
        return MakeRecord(r[0].AsInt64(), r[1].AsInt64() * 2);
      },
      "double");
  plan.Output(next, "next_state");
  return plan;
}

PartitionedDataset OnesState(int64_t n, int parts) {
  std::vector<Record> records;
  for (int64_t v = 0; v < n; ++v) records.push_back(MakeRecord(v, int64_t{1}));
  return PartitionedDataset::HashPartitioned(records, {0}, parts);
}

// ----------------------------------------------------------- Bulk driver --

TEST(BulkDriverTest, RunsFixedIterations) {
  Plan plan = DoublingPlan();
  BulkIterationConfig config;
  config.max_iterations = 5;
  dataflow::ExecOptions exec;
  exec.num_partitions = 4;
  runtime::MetricsRegistry metrics;
  JobEnv env;
  env.metrics = &metrics;

  BulkIterationDriver driver(&plan, {}, config, exec, env);
  ScriptedPolicy policy(RecoveryAction::kContinue);
  auto result = driver.Run(OnesState(16, 4), &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->iterations, 5);
  EXPECT_EQ(result->supersteps_executed, 5);
  EXPECT_FALSE(result->converged);  // no criterion configured
  EXPECT_EQ(policy.job_starts, 1);
  EXPECT_EQ(policy.after_iterations, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(metrics.iterations().size(), 5u);
  // Every value should be 2^5.
  for (const Record& r : result->final_state.CollectSorted()) {
    EXPECT_EQ(r[1].AsInt64(), 32);
  }
}

TEST(BulkDriverTest, ConvergenceStopsEarly) {
  Plan plan = DoublingPlan();
  BulkIterationConfig config;
  config.max_iterations = 50;
  int calls = 0;
  config.convergence = [&calls](const PartitionedDataset&,
                                const PartitionedDataset&, double* metric) {
    ++calls;
    *metric = static_cast<double>(calls);
    return calls >= 3;
  };
  dataflow::ExecOptions exec;
  exec.num_partitions = 2;
  BulkIterationDriver driver(&plan, {}, config, exec, JobEnv{});
  ScriptedPolicy policy(RecoveryAction::kContinue);
  auto result = driver.Run(OnesState(8, 2), &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->iterations, 3);
}

TEST(BulkDriverTest, FailureClearsPartitionAndCallsPolicy) {
  Plan plan = DoublingPlan();
  BulkIterationConfig config;
  config.max_iterations = 3;
  dataflow::ExecOptions exec;
  exec.num_partitions = 4;
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{2, {0, 1}}});
  runtime::MetricsRegistry metrics;
  JobEnv env;
  env.failures = &failures;
  env.metrics = &metrics;

  BulkIterationDriver driver(&plan, {}, config, exec, env);
  ScriptedPolicy policy(RecoveryAction::kContinue);
  auto result = driver.Run(OnesState(16, 4), &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(policy.failures, std::vector<int>{2});
  EXPECT_EQ(policy.lost_counts, std::vector<size_t>{2});
  EXPECT_EQ(result->failures_recovered, 1);
  EXPECT_TRUE(metrics.iterations()[1].failure_injected);
  EXPECT_FALSE(metrics.iterations()[0].failure_injected);
  // Without compensation, the cleared partitions stay empty.
  EXPECT_LT(result->final_state.NumRecords(), 16u);
}

TEST(BulkDriverTest, SimTimeByChargeDecomposesIterationTime) {
  Plan plan = DoublingPlan();
  BulkIterationConfig config;
  config.max_iterations = 4;
  runtime::SimClock clock;
  runtime::CostModel costs;
  dataflow::ExecOptions exec;
  exec.num_partitions = 4;
  exec.clock = &clock;
  exec.costs = &costs;
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{2, {1}}});
  runtime::MetricsRegistry metrics;
  JobEnv env;
  env.clock = &clock;
  env.costs = &costs;
  env.failures = &failures;
  env.metrics = &metrics;

  BulkIterationDriver driver(&plan, {}, config, exec, env);
  ScriptedPolicy policy(RecoveryAction::kContinue);
  ASSERT_TRUE(driver.Run(OnesState(16, 4), &policy).ok());

  ASSERT_EQ(metrics.iterations().size(), 4u);
  for (const auto& it : metrics.iterations()) {
    int64_t sum = 0;
    for (int c = 0; c < runtime::kNumCharges; ++c) {
      EXPECT_GE(it.sim_time_by_charge[c], 0) << "iteration " << it.iteration;
      sum += it.sim_time_by_charge[c];
    }
    // The decomposition must account for the iteration's time exactly.
    EXPECT_EQ(sum, it.sim_time_ns) << "iteration " << it.iteration;
    EXPECT_GT(it.SimTimeOf(runtime::Charge::kCompute), 0)
        << "iteration " << it.iteration;
    // Fresh-worker acquisition charges recovery time only on the failure
    // iteration.
    EXPECT_EQ(it.SimTimeOf(runtime::Charge::kRecovery) > 0,
              it.failure_injected)
        << "iteration " << it.iteration;
  }
  EXPECT_EQ(metrics.ChargeSeries(runtime::Charge::kCompute).size(), 4u);
  EXPECT_GT(metrics.TotalSimTimeOf(runtime::Charge::kCompute), 0);
}

TEST(BulkDriverTest, TracerRecordsSuperstepAndRecoveryTimeline) {
  Plan plan = DoublingPlan();
  BulkIterationConfig config;
  config.max_iterations = 3;
  runtime::Tracer tracer;
  dataflow::ExecOptions exec;
  exec.num_partitions = 4;
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{2, {0, 1}}});
  JobEnv env;
  env.failures = &failures;
  env.tracer = &tracer;

  BulkIterationDriver driver(&plan, {}, config, exec, env);
  ScriptedPolicy policy(RecoveryAction::kContinue);
  ASSERT_TRUE(driver.Run(OnesState(16, 4), &policy).ok());

  runtime::TraceSummary summary =
      runtime::TraceSummary::FromSnapshot(tracer.Flush());
  EXPECT_EQ(summary.iteration_spans, 3u);
  EXPECT_EQ(summary.InstantCount("failure.injected"), 1u);
  EXPECT_EQ(summary.InstantCount("partition.lost"), 2u);
  // ScriptedPolicy writes no checkpoints: every checkpoint span cancels,
  // but the OnFailure call still records one compensation span.
  uint64_t compensation_spans = 0;
  uint64_t checkpoint_spans = 0;
  for (const auto& e : tracer.Flush().events) {
    if (e.category == "compensation") ++compensation_spans;
    if (e.category == "checkpoint") ++checkpoint_spans;
  }
  EXPECT_EQ(compensation_spans, 1u);
  EXPECT_EQ(checkpoint_spans, 0u);
  const runtime::TraceOperatorSummary* map_op = summary.Find("double");
  ASSERT_NE(map_op, nullptr);
  EXPECT_EQ(map_op->spans, 3u);
}

TEST(BulkDriverTest, AbortPolicySurfacesDataLoss) {
  Plan plan = DoublingPlan();
  BulkIterationConfig config;
  config.max_iterations = 5;
  dataflow::ExecOptions exec;
  exec.num_partitions = 2;
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{1, {0}}});
  JobEnv env;
  env.failures = &failures;

  BulkIterationDriver driver(&plan, {}, config, exec, env);
  ScriptedPolicy policy(RecoveryAction::kAbort);
  auto result = driver.Run(OnesState(8, 2), &policy);
  EXPECT_TRUE(result.status().IsDataLoss());
}

TEST(BulkDriverTest, RestartResetsToInitialState) {
  Plan plan = DoublingPlan();
  BulkIterationConfig config;
  config.max_iterations = 4;
  dataflow::ExecOptions exec;
  exec.num_partitions = 2;
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{2, {0}}});
  JobEnv env;
  env.failures = &failures;

  BulkIterationDriver driver(&plan, {}, config, exec, env);
  ScriptedPolicy policy(RecoveryAction::kRestart);
  auto result = driver.Run(OnesState(8, 2), &policy);
  ASSERT_TRUE(result.ok());
  // Iterations 1,2 run, failure restarts, iterations 1..4 run again:
  // final value = 2^4, total supersteps = 6.
  EXPECT_EQ(result->supersteps_executed, 6);
  for (const Record& r : result->final_state.CollectSorted()) {
    EXPECT_EQ(r[1].AsInt64(), 16);
  }
}

TEST(BulkDriverTest, MismatchedInitialPartitionsRejected) {
  Plan plan = DoublingPlan();
  BulkIterationConfig config;
  dataflow::ExecOptions exec;
  exec.num_partitions = 4;
  BulkIterationDriver driver(&plan, {}, config, exec, JobEnv{});
  ScriptedPolicy policy(RecoveryAction::kContinue);
  auto result = driver.Run(OnesState(8, 3), &policy);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(BulkDriverTest, MissingOutputNameRejected) {
  Plan plan;
  auto state = plan.Source("state");
  plan.Output(state, "some_other_name");
  BulkIterationConfig config;
  dataflow::ExecOptions exec;
  exec.num_partitions = 2;
  BulkIterationDriver driver(&plan, {}, config, exec, JobEnv{});
  ScriptedPolicy policy(RecoveryAction::kContinue);
  EXPECT_TRUE(driver.Run(OnesState(4, 2), &policy).status().IsNotFound());
}

// ---------------------------------------------------------- Delta driver --

/// A delta step that decrements each workset value until zero; the delta
/// updates the solution to the latest value.
Plan CountdownPlan() {
  Plan plan;
  auto workset = plan.Source("workset");
  plan.Source("solution");  // present in the figure; unused by this step
  auto decremented = plan.Map(
      workset,
      [](const Record& r) {
        return MakeRecord(r[0].AsInt64(), r[1].AsInt64() - 1);
      },
      "decrement");
  auto still_positive = plan.Filter(
      decremented, [](const Record& r) { return r[1].AsInt64() > 0; },
      "positive");
  plan.Output(still_positive, "delta");
  plan.Output(still_positive, "next_workset");
  return plan;
}

TEST(DeltaDriverTest, TerminatesWhenWorksetDrains) {
  Plan plan = CountdownPlan();
  DeltaIterationConfig config;
  config.max_iterations = 50;
  dataflow::ExecOptions exec;
  exec.num_partitions = 2;
  runtime::MetricsRegistry metrics;
  JobEnv env;
  env.metrics = &metrics;

  std::vector<Record> solution{MakeRecord(int64_t{0}, int64_t{5}),
                               MakeRecord(int64_t{1}, int64_t{3})};
  auto workset = PartitionedDataset::HashPartitioned(solution, {0}, 2);

  DeltaIterationDriver driver(&plan, {}, config, exec, env);
  ScriptedPolicy policy(RecoveryAction::kContinue);
  auto result = driver.Run(solution, workset, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  // Vertex 0 counts 5->4->3->2->1->(dropped at 0): the workset drains after
  // superstep 5.
  EXPECT_EQ(result->iterations, 5);
  // Solution holds the last positive value per key.
  EXPECT_EQ((*result->final_solution.Lookup(MakeRecord(int64_t{0})))[1]
                .AsInt64(),
            1);
  EXPECT_EQ((*result->final_solution.Lookup(MakeRecord(int64_t{1})))[1]
                .AsInt64(),
            1);
  // workset_size gauge decreases monotonically here.
  auto sizes = metrics.GaugeSeries("workset_size");
  for (size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_LE(sizes[i], sizes[i - 1]);
  }
}

TEST(DeltaDriverTest, EmptyInitialWorksetConvergesImmediately) {
  Plan plan = CountdownPlan();
  DeltaIterationConfig config;
  dataflow::ExecOptions exec;
  exec.num_partitions = 2;
  DeltaIterationDriver driver(&plan, {}, config, exec, JobEnv{});
  ScriptedPolicy policy(RecoveryAction::kContinue);
  auto result = driver.Run({MakeRecord(int64_t{0}, int64_t{9})},
                           PartitionedDataset(2), &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->supersteps_executed, 0);
  EXPECT_EQ(result->iterations, 0);
}

TEST(DeltaDriverTest, FailureLosesSolutionAndWorksetPartitions) {
  Plan plan = CountdownPlan();
  DeltaIterationConfig config;
  config.max_iterations = 50;
  dataflow::ExecOptions exec;
  exec.num_partitions = 2;
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{1, {0}}});
  JobEnv env;
  env.failures = &failures;

  // Policy that verifies the lost partition is empty when OnFailure runs.
  class InspectingPolicy : public FaultTolerancePolicy {
   public:
    std::string name() const override { return "inspect"; }
    Result<RecoveryOutcome> OnFailure(const IterationContext&,
                                      IterationState* state,
                                      const std::vector<int>& lost) override {
      auto* delta = static_cast<DeltaState*>(state);
      for (int p : lost) {
        EXPECT_TRUE(delta->solution().PartitionRecords(p).empty());
        EXPECT_TRUE(delta->workset().partition(p).empty());
      }
      saw_failure = true;
      return RecoveryOutcome::Continue();
    }
    bool saw_failure = false;
  };

  std::vector<Record> solution;
  for (int64_t v = 0; v < 10; ++v) {
    solution.push_back(MakeRecord(v, int64_t{4}));
  }
  auto workset = PartitionedDataset::HashPartitioned(solution, {0}, 2);

  DeltaIterationDriver driver(&plan, {}, config, exec, env);
  InspectingPolicy policy;
  auto result = driver.Run(solution, workset, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(policy.saw_failure);
  EXPECT_EQ(result->failures_recovered, 1);
}

TEST(DeltaDriverTest, StatsRecordUpdatesAndOperatorCounts) {
  Plan plan = CountdownPlan();
  DeltaIterationConfig config;
  config.max_iterations = 50;
  dataflow::ExecOptions exec;
  exec.num_partitions = 2;
  runtime::MetricsRegistry metrics;
  JobEnv env;
  env.metrics = &metrics;

  std::vector<Record> solution{MakeRecord(int64_t{0}, int64_t{3})};
  auto workset = PartitionedDataset::HashPartitioned(solution, {0}, 2);
  DeltaIterationDriver driver(&plan, {}, config, exec, env);
  ScriptedPolicy policy(RecoveryAction::kContinue);
  ASSERT_TRUE(driver.Run(solution, workset, &policy).ok());
  ASSERT_FALSE(metrics.iterations().empty());
  const auto& first = metrics.iterations().front();
  EXPECT_EQ(first.Gauge("solution_updates"), 1.0);
  EXPECT_GT(first.Gauge("out:decrement"), 0.0);
  EXPECT_GT(first.records_processed, 0u);
}

TEST(DeltaDriverTest, OverlappingFailureEventsCountEachPartitionOnce) {
  // Two schedule events both target iteration 3 and overlap on partition 0
  // ("3:0;3:0,1"): the driver must lose partitions {0, 1} exactly once
  // each — one partition.lost instant per partition, one loss per
  // OnFailure call.
  Plan plan = CountdownPlan();
  DeltaIterationConfig config;
  config.max_iterations = 50;
  dataflow::ExecOptions exec;
  exec.num_partitions = 2;
  auto failures = runtime::FailureSchedule::Parse("3:0;3:0,1");
  ASSERT_TRUE(failures.ok());
  runtime::Tracer tracer;
  JobEnv env;
  env.failures = &*failures;
  env.tracer = &tracer;

  std::vector<Record> solution;
  for (int64_t v = 0; v < 10; ++v) {
    solution.push_back(MakeRecord(v, int64_t{6}));
  }
  auto workset = PartitionedDataset::HashPartitioned(solution, {0}, 2);
  DeltaIterationDriver driver(&plan, {}, config, exec, env);
  ScriptedPolicy policy(RecoveryAction::kContinue);
  ASSERT_TRUE(driver.Run(solution, workset, &policy).ok());

  ASSERT_EQ(policy.lost_counts.size(), 1u);
  EXPECT_EQ(policy.lost_counts[0], 2u);  // {0, 1}, partition 0 not doubled
  runtime::TraceSummary summary =
      runtime::TraceSummary::FromSnapshot(tracer.Flush());
  EXPECT_EQ(summary.InstantCount("failure.injected"), 1u);
  EXPECT_EQ(summary.InstantCount("partition.lost"), 2u);
}

TEST(DeltaDriverTest, TracerRecordsSolutionUpdatePhase) {
  // The partition-parallel upsert phase shows up as one solution.update
  // span per superstep, with per-partition child spans underneath.
  Plan plan = CountdownPlan();
  DeltaIterationConfig config;
  config.max_iterations = 50;
  dataflow::ExecOptions exec;
  exec.num_partitions = 2;
  runtime::Tracer tracer;
  JobEnv env;
  env.tracer = &tracer;

  std::vector<Record> solution{MakeRecord(int64_t{0}, int64_t{4}),
                               MakeRecord(int64_t{1}, int64_t{4})};
  auto workset = PartitionedDataset::HashPartitioned(solution, {0}, 2);
  DeltaIterationDriver driver(&plan, {}, config, exec, env);
  ScriptedPolicy policy(RecoveryAction::kContinue);
  auto result = driver.Run(solution, workset, &policy);
  ASSERT_TRUE(result.ok());

  auto snapshot = tracer.Flush();
  uint64_t parents = 0;
  uint64_t children = 0;
  for (const auto& e : snapshot.events) {
    if (e.category != "solution.update") continue;
    if (e.partition < 0) {
      ++parents;
      EXPECT_GE(e.Arg("records", -1), 0);
    } else {
      ++children;
    }
  }
  // Supersteps 1..3 apply non-empty deltas; superstep 4 drains the workset.
  EXPECT_EQ(parents, static_cast<uint64_t>(result->supersteps_executed));
  EXPECT_EQ(children, parents * 2);  // one child per partition
}

TEST(BulkDriverTest, RunawayRecoveryLoopAborts) {
  // A policy that restarts on every failure, plus a schedule that re-fires
  // after every restart, would loop forever; the supersteps guard stops it.
  Plan plan = DoublingPlan();
  BulkIterationConfig config;
  config.max_iterations = 3;
  config.max_total_supersteps_factor = 2;  // guard at 6 supersteps
  dataflow::ExecOptions exec;
  exec.num_partitions = 2;

  // Rewinding schedule: a policy that rewinds the failure events too.
  class LoopingPolicy : public FaultTolerancePolicy {
   public:
    explicit LoopingPolicy(runtime::FailureSchedule* schedule)
        : schedule_(schedule) {}
    std::string name() const override { return "looping"; }
    Result<RecoveryOutcome> OnFailure(const IterationContext&,
                                      IterationState*,
                                      const std::vector<int>&) override {
      schedule_->Rewind();  // the same failure will fire again
      return RecoveryOutcome::Restart();
    }
   private:
    runtime::FailureSchedule* schedule_;
  };

  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{1, {0}}});
  JobEnv env;
  env.failures = &failures;
  BulkIterationDriver driver(&plan, {}, config, exec, env);
  LoopingPolicy policy(&failures);
  auto result = driver.Run(OnesState(4, 2), &policy);
  EXPECT_TRUE(result.status().IsAborted());
}

TEST(DeltaDriverTest, MismatchedWorksetPartitionsRejected) {
  Plan plan = CountdownPlan();
  DeltaIterationConfig config;
  dataflow::ExecOptions exec;
  exec.num_partitions = 2;
  DeltaIterationDriver driver(&plan, {}, config, exec, JobEnv{});
  ScriptedPolicy policy(RecoveryAction::kContinue);
  auto result = driver.Run({}, PartitionedDataset(3), &policy);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace flinkless::iteration
