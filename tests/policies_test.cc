// Tests for the recovery strategies in src/core: no-FT, restart,
// checkpoint/rollback, optimistic (compensation). These pin down the
// observable contract the benchmarks rely on: what each strategy costs in
// failure-free runs and what it does on failure.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/policies.h"
#include "dataflow/executor.h"
#include "iteration/bulk_iteration.h"
#include "iteration/state.h"
#include "runtime/stable_storage.h"

namespace flinkless::core {
namespace {

using dataflow::MakeRecord;
using dataflow::PartitionedDataset;
using dataflow::Plan;
using dataflow::Record;
using iteration::BulkState;
using iteration::IterationContext;
using iteration::RecoveryAction;

IterationContext MakeContext(int iteration, int partitions,
                             runtime::StableStorage* storage,
                             const std::string& job_id = "test-job") {
  IterationContext ctx;
  ctx.iteration = iteration;
  ctx.num_partitions = partitions;
  ctx.storage = storage;
  ctx.job_id = job_id;
  return ctx;
}

BulkState MakeState(int64_t n, int parts, int64_t value) {
  std::vector<Record> records;
  for (int64_t v = 0; v < n; ++v) records.push_back(MakeRecord(v, value));
  return BulkState(PartitionedDataset::HashPartitioned(records, {0}, parts));
}

// ------------------------------------------------------------------ NoFT --

TEST(NoFaultToleranceTest, FailureAborts) {
  NoFaultTolerancePolicy policy;
  BulkState state = MakeState(8, 2, 1);
  auto outcome = policy.OnFailure(MakeContext(3, 2, nullptr), &state, {0});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->action, RecoveryAction::kAbort);
  EXPECT_EQ(policy.name(), "none");
}

TEST(NoFaultToleranceTest, NoFailureFreeSideEffects) {
  NoFaultTolerancePolicy policy;
  runtime::StableStorage storage(nullptr, nullptr);
  BulkState state = MakeState(8, 2, 1);
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 2, &storage), &state).ok());
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(1, 2, &storage), &state).ok());
  EXPECT_EQ(storage.bytes_written(), 0u);
}

// --------------------------------------------------------------- Restart --

TEST(RestartPolicyTest, FailureRequestsRestart) {
  RestartPolicy policy;
  BulkState state = MakeState(8, 2, 1);
  auto outcome = policy.OnFailure(MakeContext(5, 2, nullptr), &state, {1});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->action, RecoveryAction::kRestart);
}

// -------------------------------------------------------------- Rollback --

TEST(RollbackTest, CheckpointsInitialStateOnJobStart) {
  runtime::StableStorage storage(nullptr, nullptr);
  CheckpointRollbackPolicy policy(/*interval=*/2);
  BulkState state = MakeState(16, 4, 7);
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 4, &storage), &state).ok());
  EXPECT_EQ(policy.last_checkpoint_iteration(), 0);
  EXPECT_EQ(storage.ListWithPrefix("test-job/ckpt/").size(), 4u);
}

TEST(RollbackTest, ChecksIntervalBeforeCheckpointing) {
  runtime::StableStorage storage(nullptr, nullptr);
  CheckpointRollbackPolicy policy(/*interval=*/3);
  BulkState state = MakeState(8, 2, 1);
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 2, &storage), &state).ok());
  uint64_t after_start = storage.num_writes();
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(1, 2, &storage), &state).ok());
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(2, 2, &storage), &state).ok());
  EXPECT_EQ(storage.num_writes(), after_start);  // not yet
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(3, 2, &storage), &state).ok());
  EXPECT_EQ(storage.num_writes(), after_start + 2);  // iteration 3 hits k=3
  EXPECT_EQ(policy.last_checkpoint_iteration(), 3);
}

TEST(RollbackTest, GarbageCollectsOlderCheckpoints) {
  runtime::StableStorage storage(nullptr, nullptr);
  CheckpointRollbackPolicy policy(/*interval=*/1, /*keep_only_latest=*/true);
  BulkState state = MakeState(8, 2, 1);
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 2, &storage), &state).ok());
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(1, 2, &storage), &state).ok());
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(2, 2, &storage), &state).ok());
  // Only the latest snapshot (iteration 2) remains live.
  EXPECT_EQ(storage.ListWithPrefix("test-job/ckpt/").size(), 2u);
  for (const auto& key : storage.ListWithPrefix("test-job/ckpt/")) {
    EXPECT_NE(key.find("00000002"), std::string::npos);
  }
}

TEST(RollbackTest, KeepAllCheckpointsWhenConfigured) {
  runtime::StableStorage storage(nullptr, nullptr);
  CheckpointRollbackPolicy policy(/*interval=*/1, /*keep_only_latest=*/false);
  BulkState state = MakeState(8, 2, 1);
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 2, &storage), &state).ok());
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(1, 2, &storage), &state).ok());
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(2, 2, &storage), &state).ok());
  EXPECT_EQ(storage.ListWithPrefix("test-job/ckpt/").size(), 6u);
}

TEST(RollbackTest, RestoresAllPartitionsAndRewinds) {
  runtime::StableStorage storage(nullptr, nullptr);
  CheckpointRollbackPolicy policy(/*interval=*/2);
  BulkState state = MakeState(16, 4, 7);
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 4, &storage), &state).ok());

  // Progress to value 9 and checkpoint at iteration 2.
  for (auto& record : state.data().partition(0)) record[1] = int64_t{9};
  for (auto& record : state.data().partition(1)) record[1] = int64_t{9};
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(2, 4, &storage), &state).ok());

  // More progress (value 11), then a failure at iteration 3.
  for (int p = 0; p < 4; ++p) {
    for (auto& record : state.data().partition(p)) record[1] = int64_t{11};
  }
  state.ClearPartition(2);
  auto outcome = policy.OnFailure(MakeContext(3, 4, &storage), &state, {2});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->action, RecoveryAction::kRewind);
  EXPECT_EQ(outcome->rewind_to_iteration, 2);

  // Every partition is back at the checkpointed state — including the
  // surviving ones that had progressed past it.
  for (const Record& r : state.data().CollectSorted()) {
    int64_t expected =
        (PartitionedDataset::PartitionOf(r, {0}, 4) <= 1) ? 9 : 7;
    EXPECT_EQ(r[1].AsInt64(), expected) << RecordToString(r);
  }
  EXPECT_EQ(state.data().NumRecords(), 16u);
}

TEST(RollbackTest, RequiresStableStorage) {
  CheckpointRollbackPolicy policy(1);
  BulkState state = MakeState(4, 2, 1);
  EXPECT_FALSE(policy.OnJobStart(MakeContext(0, 2, nullptr), &state).ok());
  EXPECT_FALSE(
      policy.OnFailure(MakeContext(1, 2, nullptr), &state, {0}).ok());
}

TEST(RollbackTest, JobStartClearsStaleCheckpoints) {
  runtime::StableStorage storage(nullptr, nullptr);
  ASSERT_TRUE(storage.Write("test-job/ckpt/99999999/000000", {1}).ok());
  CheckpointRollbackPolicy policy(1);
  BulkState state = MakeState(4, 2, 1);
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 2, &storage), &state).ok());
  EXPECT_TRUE(storage.ListWithPrefix("test-job/ckpt/99999999").empty());
}

TEST(RollbackTest, NameIncludesInterval) {
  EXPECT_EQ(CheckpointRollbackPolicy(5).name(), "rollback(k=5)");
}

// -------------------------------------------------- incremental rollback --

TEST(IncrementalRollbackTest, SkipsUnchangedPartitions) {
  runtime::StableStorage storage(nullptr, nullptr);
  CheckpointRollbackPolicy policy(/*interval=*/1, /*keep_only_latest=*/false,
                                  /*incremental=*/true);
  BulkState state = MakeState(16, 4, 7);
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 4, &storage), &state).ok());
  uint64_t writes_after_start = storage.num_writes();
  EXPECT_EQ(writes_after_start, 4u);

  // Change only partition 2; the next checkpoint writes only that one.
  for (auto& record : state.data().partition(2)) record[1] = int64_t{99};
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(1, 4, &storage), &state).ok());
  EXPECT_EQ(storage.num_writes(), writes_after_start + 1);

  // Nothing changed: the next checkpoint writes nothing at all.
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(2, 4, &storage), &state).ok());
  EXPECT_EQ(storage.num_writes(), writes_after_start + 1);
  EXPECT_EQ(policy.last_checkpoint_iteration(), 2);
}

TEST(IncrementalRollbackTest, RestoreMixesBlobGenerations) {
  runtime::StableStorage storage(nullptr, nullptr);
  CheckpointRollbackPolicy policy(/*interval=*/1, /*keep_only_latest=*/true,
                                  /*incremental=*/true);
  BulkState state = MakeState(16, 4, 7);
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 4, &storage), &state).ok());

  // Iteration 1: only partition 0 progresses, checkpointed.
  for (auto& record : state.data().partition(0)) record[1] = int64_t{8};
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(1, 4, &storage), &state).ok());

  // Iteration 2: all partitions progress (not checkpointed yet), then a
  // failure destroys partition 3.
  for (int p = 0; p < 4; ++p) {
    for (auto& record : state.data().partition(p)) record[1] = int64_t{50};
  }
  state.ClearPartition(3);
  auto outcome = policy.OnFailure(MakeContext(2, 4, &storage), &state, {3});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->action, RecoveryAction::kRewind);
  EXPECT_EQ(outcome->rewind_to_iteration, 1);

  // Restored state: partition 0 from the iteration-1 blob (value 8), the
  // others from the iteration-0 blobs (value 7) — a consistent snapshot of
  // checkpoint 1 assembled from two blob generations.
  EXPECT_EQ(state.data().NumRecords(), 16u);
  for (const Record& r : state.data().CollectSorted()) {
    int64_t expected =
        PartitionedDataset::PartitionOf(r, {0}, 4) == 0 ? 8 : 7;
    EXPECT_EQ(r[1].AsInt64(), expected) << RecordToString(r);
  }
}

TEST(IncrementalRollbackTest, GcKeepsReferencedOldBlobs) {
  runtime::StableStorage storage(nullptr, nullptr);
  CheckpointRollbackPolicy policy(/*interval=*/1, /*keep_only_latest=*/true,
                                  /*incremental=*/true);
  BulkState state = MakeState(16, 4, 7);
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 4, &storage), &state).ok());
  // Two more checkpoints with only partition 1 changing.
  for (int iter = 1; iter <= 2; ++iter) {
    for (auto& record : state.data().partition(1)) {
      record[1] = int64_t{100 + iter};
    }
    ASSERT_TRUE(
        policy.AfterIteration(MakeContext(iter, 4, &storage), &state).ok());
  }
  // Live blobs: the three unchanged partitions' iteration-0 blobs plus
  // partition 1's iteration-2 blob.
  EXPECT_EQ(storage.ListWithPrefix("test-job/ckpt/").size(), 4u);
  // And a failure can still restore everything.
  state.ClearPartition(0);
  auto outcome = policy.OnFailure(MakeContext(3, 4, &storage), &state, {0});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(state.data().NumRecords(), 16u);
}

TEST(IncrementalRollbackTest, WritesLessThanFullForConvergingState) {
  // Simulated converging job: fewer and fewer partitions change.
  auto run = [](bool incremental) {
    runtime::StableStorage storage(nullptr, nullptr);
    CheckpointRollbackPolicy policy(1, true, incremental);
    BulkState state = MakeState(32, 4, 0);
    EXPECT_TRUE(policy.OnJobStart(MakeContext(0, 4, &storage), &state).ok());
    for (int iter = 1; iter <= 4; ++iter) {
      // Partition p stops changing after iteration p.
      for (int p = iter; p < 4; ++p) {
        for (auto& record : state.data().partition(p)) {
          record[1] = int64_t{iter};
        }
      }
      EXPECT_TRUE(
          policy.AfterIteration(MakeContext(iter, 4, &storage), &state)
              .ok());
    }
    return storage.bytes_written();
  };
  EXPECT_LT(run(true), run(false));
}

// ---------------------------------------------------- confined rollback --

TEST(ConfinedRollbackTest, RestoresOnlyLostPartitions) {
  runtime::StableStorage storage(nullptr, nullptr);
  core::ConfinedRollbackPolicy policy(/*interval=*/1);
  BulkState state = MakeState(16, 4, 7);
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 4, &storage), &state).ok());

  // Progress everywhere, checkpoint, progress further, then lose part 2.
  for (int p = 0; p < 4; ++p) {
    for (auto& record : state.data().partition(p)) record[1] = int64_t{9};
  }
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(1, 4, &storage), &state).ok());
  for (int p = 0; p < 4; ++p) {
    for (auto& record : state.data().partition(p)) record[1] = int64_t{11};
  }
  state.ClearPartition(2);
  auto outcome = policy.OnFailure(MakeContext(2, 4, &storage), &state, {2});
  ASSERT_TRUE(outcome.ok());
  // No rewind: the job continues from the current iteration.
  EXPECT_EQ(outcome->action, RecoveryAction::kContinue);
  // Lost partition is back at the checkpointed value; survivors keep their
  // newer progress — the "mixed" state confined recovery relies on.
  for (const Record& r : state.data().CollectSorted()) {
    int64_t expected =
        PartitionedDataset::PartitionOf(r, {0}, 4) == 2 ? 9 : 11;
    EXPECT_EQ(r[1].AsInt64(), expected) << RecordToString(r);
  }
  EXPECT_EQ(state.data().NumRecords(), 16u);
}

TEST(ConfinedRollbackTest, DeltaStateNeedsRefresher) {
  runtime::StableStorage storage(nullptr, nullptr);
  core::ConfinedRollbackPolicy policy(1);  // no refresher
  iteration::DeltaState state(
      iteration::SolutionSet::FromRecords({MakeRecord(int64_t{0}, int64_t{0})},
                                          {0}, 2),
      PartitionedDataset(2));
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 2, &storage), &state).ok());
  state.ClearPartition(0);
  auto outcome = policy.OnFailure(MakeContext(1, 2, &storage), &state, {0});
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ConfinedRollbackTest, RequiresStorage) {
  core::ConfinedRollbackPolicy policy(1);
  BulkState state = MakeState(4, 2, 1);
  EXPECT_FALSE(policy.OnJobStart(MakeContext(0, 2, nullptr), &state).ok());
}

TEST(ConfinedRollbackTest, RepeatedFailuresOfSamePartitionRestoreEachTime) {
  runtime::StableStorage storage(nullptr, nullptr);
  core::ConfinedRollbackPolicy policy(/*interval=*/1);
  BulkState state = MakeState(16, 4, 7);
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 4, &storage), &state).ok());
  for (int p = 0; p < 4; ++p) {
    for (auto& record : state.data().partition(p)) record[1] = int64_t{9};
  }
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(1, 4, &storage), &state).ok());

  // Partition 2 dies, recovers, and dies again before any new checkpoint:
  // the second recovery must serve the same snapshot, not leftovers of the
  // first restore pass.
  for (int p = 0; p < 4; ++p) {
    for (auto& record : state.data().partition(p)) record[1] = int64_t{11};
  }
  state.ClearPartition(2);
  auto first = policy.OnFailure(MakeContext(2, 4, &storage), &state, {2});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->action, RecoveryAction::kContinue);

  state.ClearPartition(2);
  auto second = policy.OnFailure(MakeContext(3, 4, &storage), &state, {2});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->action, RecoveryAction::kContinue);
  for (const Record& r : state.data().CollectSorted()) {
    int64_t expected =
        PartitionedDataset::PartitionOf(r, {0}, 4) == 2 ? 9 : 11;
    EXPECT_EQ(r[1].AsInt64(), expected) << RecordToString(r);
  }
  EXPECT_EQ(state.data().NumRecords(), 16u);
}

TEST(ConfinedRollbackTest, FailureOnCheckpointIntervalIteration) {
  // A failure landing on an iteration that is itself a checkpoint multiple
  // restores from the PREVIOUS snapshot (AfterIteration for this iteration
  // has not run yet); the checkpoint written right after then captures the
  // recovered mixed state, so later failures restore post-recovery values.
  runtime::StableStorage storage(nullptr, nullptr);
  core::ConfinedRollbackPolicy policy(/*interval=*/2);
  BulkState state = MakeState(16, 4, 7);
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 4, &storage), &state).ok());
  for (int p = 0; p < 4; ++p) {
    for (auto& record : state.data().partition(p)) record[1] = int64_t{9};
  }
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(2, 4, &storage), &state).ok());

  for (int p = 0; p < 4; ++p) {
    for (auto& record : state.data().partition(p)) record[1] = int64_t{11};
  }
  state.ClearPartition(1);
  auto outcome = policy.OnFailure(MakeContext(4, 4, &storage), &state, {1});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->action, RecoveryAction::kContinue);
  for (const Record& r : state.data().CollectSorted()) {
    int64_t expected =
        PartitionedDataset::PartitionOf(r, {0}, 4) == 1 ? 9 : 11;
    EXPECT_EQ(r[1].AsInt64(), expected) << RecordToString(r);
  }

  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(4, 4, &storage), &state).ok());
  state.ClearPartition(3);
  auto later = policy.OnFailure(MakeContext(5, 4, &storage), &state, {3});
  ASSERT_TRUE(later.ok());
  for (const Record& r : state.data().CollectSorted()) {
    // Partition 3's loss lands on the post-recovery snapshot: value 11.
    int64_t expected =
        PartitionedDataset::PartitionOf(r, {0}, 4) == 1 ? 9 : 11;
    EXPECT_EQ(r[1].AsInt64(), expected) << RecordToString(r);
  }
  EXPECT_EQ(state.data().NumRecords(), 16u);
}

// ------------------------------------------------ entry-level delta ckpt --

iteration::DeltaState MakeDeltaState(int64_t n, int parts) {
  std::vector<Record> records;
  for (int64_t v = 0; v < n; ++v) records.push_back(MakeRecord(v, v));
  return iteration::DeltaState(
      iteration::SolutionSet::FromRecords(records, {0}, parts),
      PartitionedDataset::HashPartitioned(records, {0}, parts));
}

TEST(DeltaCheckpointTest, RejectsBulkState) {
  runtime::StableStorage storage(nullptr, nullptr);
  DeltaCheckpointPolicy policy(1);
  BulkState bulk = MakeState(4, 2, 1);
  EXPECT_FALSE(policy.OnJobStart(MakeContext(0, 2, &storage), &bulk).ok());
}

TEST(DeltaCheckpointTest, DeltasShrinkWithFewerUpdates) {
  runtime::StableStorage storage(nullptr, nullptr);
  DeltaCheckpointPolicy policy(1);
  iteration::DeltaState state = MakeDeltaState(64, 4);
  state.workset() = PartitionedDataset(4);  // empty workset for clarity
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 4, &storage), &state).ok());
  uint64_t base_bytes = storage.bytes_written();
  EXPECT_GT(base_bytes, 0u);

  // Iteration 1 touches 4 entries, iteration 2 touches 1.
  for (int64_t v = 0; v < 4; ++v) {
    state.solution().Upsert(MakeRecord(v, v + 100));
  }
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(1, 4, &storage), &state).ok());
  uint64_t delta1_bytes = storage.bytes_written() - base_bytes;
  state.solution().Upsert(MakeRecord(int64_t{9}, int64_t{900}));
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(2, 4, &storage), &state).ok());
  uint64_t delta2_bytes = storage.bytes_written() - base_bytes - delta1_bytes;

  EXPECT_LT(delta1_bytes, base_bytes);
  EXPECT_LT(delta2_bytes, delta1_bytes);
  EXPECT_EQ(policy.chain_length(), 3u);
}

TEST(DeltaCheckpointTest, RestoreReplaysChainExactly) {
  runtime::StableStorage storage(nullptr, nullptr);
  DeltaCheckpointPolicy policy(1);
  iteration::DeltaState state = MakeDeltaState(32, 4);
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 4, &storage), &state).ok());

  // Two checkpointed iterations of updates.
  for (int64_t v = 0; v < 8; ++v) {
    state.solution().Upsert(MakeRecord(v, v + 1000));
  }
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(1, 4, &storage), &state).ok());
  for (int64_t v = 4; v < 6; ++v) {
    state.solution().Upsert(MakeRecord(v, v + 2000));
  }
  state.workset() = PartitionedDataset::HashPartitioned(
      {MakeRecord(int64_t{5}, int64_t{2005})}, {0}, 4);
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(2, 4, &storage), &state).ok());

  // Progress past the checkpoint, then fail two partitions.
  for (int64_t v = 0; v < 32; ++v) {
    state.solution().Upsert(MakeRecord(v, int64_t{-1}));
  }
  state.ClearPartition(0);
  state.ClearPartition(2);
  auto outcome = policy.OnFailure(MakeContext(3, 4, &storage), &state,
                                  {0, 2});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->action, RecoveryAction::kRewind);
  EXPECT_EQ(outcome->rewind_to_iteration, 2);

  // The solution is exactly the checkpoint-2 state: v<4 -> +1000,
  // 4..5 -> +2000, 6..7 -> +1000, rest original.
  EXPECT_EQ(state.solution().NumEntries(), 32u);
  for (int64_t v = 0; v < 32; ++v) {
    const Record* entry = state.solution().Lookup(MakeRecord(v));
    ASSERT_NE(entry, nullptr);
    int64_t expected = v < 4 ? v + 1000 : v < 6 ? v + 2000 : v < 8 ? v + 1000
                                                                   : v;
    EXPECT_EQ((*entry)[1].AsInt64(), expected) << "vertex " << v;
  }
  // Workset restored from the newest checkpoint.
  EXPECT_EQ(state.workset().NumRecords(), 1u);
}

TEST(DeltaCheckpointTest, CompactionBoundsChainAndDropsOldBlobs) {
  runtime::StableStorage storage(nullptr, nullptr);
  DeltaCheckpointPolicy policy(1, /*compact_every=*/3);
  iteration::DeltaState state = MakeDeltaState(16, 2);
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 2, &storage), &state).ok());
  for (int iter = 1; iter <= 6; ++iter) {
    state.solution().Upsert(MakeRecord(int64_t{iter % 16}, int64_t{iter}));
    ASSERT_TRUE(
        policy.AfterIteration(MakeContext(iter, 2, &storage), &state).ok());
  }
  EXPECT_LE(policy.chain_length(), 4u);
  // Superseded chains are garbage-collected: live blobs = chain links x
  // partitions.
  EXPECT_EQ(storage.ListWithPrefix("test-job/dckpt/").size(),
            policy.chain_length() * 2);
  // And recovery still works after compaction.
  state.ClearPartition(1);
  auto outcome = policy.OnFailure(MakeContext(7, 2, &storage), &state, {1});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(state.solution().NumEntries(), 16u);
}

TEST(DeltaCheckpointTest, PostRecoveryDeltaNoLargerThanFailureFree) {
  // Regression for the restore-marks-dirty bug: the incremental checkpoint
  // taken right after a recovery must not be inflated by the entries the
  // recovery itself restored — it must match the failure-free run's
  // checkpoint byte for byte.
  auto apply_updates = [](iteration::DeltaState* state, int round) {
    const int64_t base = round * 100;
    for (int64_t v = 0; v < 4; ++v) {
      state->solution().Upsert(MakeRecord(v, base + v));
    }
  };

  // Failure-free run.
  runtime::StableStorage storage_a(nullptr, nullptr);
  DeltaCheckpointPolicy policy_a(1);
  iteration::DeltaState state_a = MakeDeltaState(64, 4);
  state_a.workset() = PartitionedDataset(4);
  ASSERT_TRUE(policy_a.OnJobStart(MakeContext(0, 4, &storage_a), &state_a)
                  .ok());
  apply_updates(&state_a, 1);
  ASSERT_TRUE(
      policy_a.AfterIteration(MakeContext(1, 4, &storage_a), &state_a).ok());
  uint64_t before_a = storage_a.bytes_written();
  apply_updates(&state_a, 2);
  ASSERT_TRUE(
      policy_a.AfterIteration(MakeContext(2, 4, &storage_a), &state_a).ok());
  uint64_t delta2_failure_free = storage_a.bytes_written() - before_a;

  // Same run, but every partition fails right after checkpoint 1; recovery
  // replays the chain and rewinds, then iteration 2 re-executes.
  runtime::StableStorage storage_b(nullptr, nullptr);
  DeltaCheckpointPolicy policy_b(1);
  iteration::DeltaState state_b = MakeDeltaState(64, 4);
  state_b.workset() = PartitionedDataset(4);
  ASSERT_TRUE(policy_b.OnJobStart(MakeContext(0, 4, &storage_b), &state_b)
                  .ok());
  apply_updates(&state_b, 1);
  ASSERT_TRUE(
      policy_b.AfterIteration(MakeContext(1, 4, &storage_b), &state_b).ok());
  for (int p = 0; p < 4; ++p) state_b.ClearPartition(p);
  auto outcome = policy_b.OnFailure(MakeContext(2, 4, &storage_b), &state_b,
                                    {0, 1, 2, 3});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->rewind_to_iteration, 1);
  uint64_t before_b = storage_b.bytes_written();
  apply_updates(&state_b, 2);
  ASSERT_TRUE(
      policy_b.AfterIteration(MakeContext(2, 4, &storage_b), &state_b).ok());
  uint64_t delta2_post_recovery = storage_b.bytes_written() - before_b;

  EXPECT_EQ(delta2_post_recovery, delta2_failure_free);
}

TEST(DeltaCheckpointTest, SecondFailureAfterRecoveryReplaysConsistently) {
  // After a recovery, later deltas must chain contiguously onto the
  // pre-failure links (the replay realigns the partition clocks), so a
  // second failure replays the whole mixed chain without tripping the
  // contiguity validation.
  runtime::StableStorage storage(nullptr, nullptr);
  DeltaCheckpointPolicy policy(1);
  iteration::DeltaState state = MakeDeltaState(32, 4);
  state.workset() = PartitionedDataset(4);
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 4, &storage), &state).ok());
  for (int64_t v = 0; v < 8; ++v) {
    state.solution().Upsert(MakeRecord(v, v + 1000));
  }
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(1, 4, &storage), &state).ok());

  // First failure + recovery.
  for (int p = 0; p < 4; ++p) state.ClearPartition(p);
  ASSERT_TRUE(
      policy.OnFailure(MakeContext(2, 4, &storage), &state, {0, 1, 2, 3})
          .ok());

  // Progress + another incremental checkpoint on top of the replayed state.
  for (int64_t v = 8; v < 12; ++v) {
    state.solution().Upsert(MakeRecord(v, v + 2000));
  }
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(2, 4, &storage), &state).ok());

  // Second failure: the chain now mixes pre- and post-recovery links.
  for (int p = 0; p < 4; ++p) state.ClearPartition(p);
  auto outcome =
      policy.OnFailure(MakeContext(3, 4, &storage), &state, {0, 1, 2, 3});
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(state.solution().NumEntries(), 32u);
  for (int64_t v = 0; v < 32; ++v) {
    const Record* entry = state.solution().Lookup(MakeRecord(v));
    ASSERT_NE(entry, nullptr);
    int64_t expected = v < 8 ? v + 1000 : v < 12 ? v + 2000 : v;
    EXPECT_EQ((*entry)[1].AsInt64(), expected) << "vertex " << v;
  }
}

TEST(DeltaCheckpointTest, RestoreRejectsNonContiguousChain) {
  runtime::StableStorage storage(nullptr, nullptr);
  DeltaCheckpointPolicy policy(1);
  iteration::DeltaState state = MakeDeltaState(16, 2);
  state.workset() = PartitionedDataset(2);
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 2, &storage), &state).ok());
  for (int64_t v = 0; v < 4; ++v) {
    state.solution().Upsert(MakeRecord(v, v + 100));
  }
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(1, 2, &storage), &state).ok());

  // Corrupt the chain: overwrite the delta link of partition 0 with a copy
  // of the base link, whose `since` window (0) does not abut the base's
  // end-of-window clock. The framed versions make this detectable.
  auto base_blob = storage.Read("test-job/dckpt/00000000/000000");
  ASSERT_TRUE(base_blob.ok());
  ASSERT_TRUE(
      storage.Write("test-job/dckpt/00000001/000000", *base_blob).ok());

  state.ClearPartition(0);
  auto outcome = policy.OnFailure(MakeContext(2, 2, &storage), &state, {0});
  ASSERT_TRUE(outcome.status().IsDataLoss()) << outcome.status();
  EXPECT_NE(outcome.status().message().find("not contiguous"),
            std::string::npos)
      << outcome.status();
}

TEST(DeltaCheckpointTest, RestoresLegacyV1BlobsWithoutVersionFraming) {
  // Blobs written before the v2 format carried no version metadata: the
  // first u64 is the solution length directly. Restores must still work
  // (without contiguity validation).
  auto frame_v1 = [](const std::vector<Record>& solution_entries,
                     const std::vector<Record>& workset_records) {
    std::vector<uint8_t> solution_blob =
        dataflow::SerializeRecords(solution_entries);
    std::vector<uint8_t> workset_blob =
        dataflow::SerializeRecords(workset_records);
    std::vector<uint8_t> out;
    uint64_t len = solution_blob.size();
    for (int i = 0; i < 8; ++i) out.push_back((len >> (8 * i)) & 0xff);
    out.insert(out.end(), solution_blob.begin(), solution_blob.end());
    out.insert(out.end(), workset_blob.begin(), workset_blob.end());
    return out;
  };

  runtime::StableStorage storage(nullptr, nullptr);
  DeltaCheckpointPolicy policy(1);
  iteration::DeltaState state = MakeDeltaState(8, 2);
  state.workset() = PartitionedDataset(2);
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 2, &storage), &state).ok());

  // Replace the freshly written base blobs with v1-framed equivalents.
  for (int p = 0; p < 2; ++p) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "test-job/dckpt/%08d/%06d", 0, p);
    ASSERT_TRUE(storage
                    .Write(buf, frame_v1(state.solution().PartitionRecords(p),
                                         {}))
                    .ok());
  }

  for (int p = 0; p < 2; ++p) state.ClearPartition(p);
  auto outcome = policy.OnFailure(MakeContext(1, 2, &storage), &state, {0, 1});
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(state.solution().NumEntries(), 8u);
  for (int64_t v = 0; v < 8; ++v) {
    const Record* entry = state.solution().Lookup(MakeRecord(v));
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ((*entry)[1].AsInt64(), v);
  }
}

// ------------------------------------------------------------ Optimistic --

/// Compensation that fills lost partitions with a marker value.
class MarkerCompensation : public CompensationFunction {
 public:
  std::string name() const override { return "marker"; }
  Status Compensate(const IterationContext& ctx,
                    iteration::IterationState* state,
                    const std::vector<int>& lost) override {
    last_iteration = ctx.iteration;
    auto* bulk = static_cast<BulkState*>(state);
    for (int p : lost) {
      bulk->data().partition(p).push_back(
          MakeRecord(int64_t{-1}, int64_t{4242}));
    }
    ++invocations;
    return Status::OK();
  }
  int invocations = 0;
  int last_iteration = -1;
};

TEST(OptimisticTest, InvokesCompensationAndContinues) {
  MarkerCompensation compensation;
  OptimisticRecoveryPolicy policy(&compensation);
  BulkState state = MakeState(8, 2, 1);
  state.ClearPartition(0);
  auto outcome = policy.OnFailure(MakeContext(4, 2, nullptr), &state, {0});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->action, RecoveryAction::kContinue);
  EXPECT_EQ(compensation.invocations, 1);
  EXPECT_EQ(compensation.last_iteration, 4);
  // The compensated marker is in place.
  bool found = false;
  for (const Record& r : state.data().partition(0)) {
    found |= r[1].AsInt64() == 4242;
  }
  EXPECT_TRUE(found);
}

TEST(OptimisticTest, ZeroFailureFreeOverhead) {
  // The headline property: optimistic recovery writes nothing to stable
  // storage during failure-free execution.
  MarkerCompensation compensation;
  OptimisticRecoveryPolicy policy(&compensation);
  runtime::StableStorage storage(nullptr, nullptr);
  BulkState state = MakeState(8, 2, 1);
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 2, &storage), &state).ok());
  for (int it = 1; it <= 10; ++it) {
    ASSERT_TRUE(
        policy.AfterIteration(MakeContext(it, 2, &storage), &state).ok());
  }
  EXPECT_EQ(storage.bytes_written(), 0u);
  EXPECT_EQ(compensation.invocations, 0);
}

TEST(OptimisticTest, PropagatesCompensationFailure) {
  class FailingCompensation : public CompensationFunction {
   public:
    std::string name() const override { return "failing"; }
    Status Compensate(const IterationContext&, iteration::IterationState*,
                      const std::vector<int>&) override {
      return Status::Internal("cannot compensate");
    }
  };
  FailingCompensation compensation;
  OptimisticRecoveryPolicy policy(&compensation);
  BulkState state = MakeState(4, 2, 1);
  auto outcome = policy.OnFailure(MakeContext(1, 2, nullptr), &state, {0});
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInternal);
}

TEST(OptimisticTest, NameMentionsCompensation) {
  MarkerCompensation compensation;
  OptimisticRecoveryPolicy policy(&compensation);
  EXPECT_EQ(policy.name(), "optimistic(marker)");
}

// -------------------------------------------- end-to-end policy contrast --

TEST(PolicyContrastTest, RollbackPaysCheckpointIoOptimisticDoesNot) {
  // Identical failure-free bulk jobs; only the policy differs. Rollback
  // accumulates checkpoint I/O simulated time; optimistic accumulates none.
  Plan plan;
  auto src = plan.Source("state");
  auto next = plan.Map(
      src,
      [](const Record& r) {
        return MakeRecord(r[0].AsInt64(), r[1].AsInt64() + 1);
      },
      "inc");
  plan.Output(next, "next_state");

  auto run = [&](iteration::FaultTolerancePolicy* policy,
                 runtime::SimClock* clock,
                 runtime::StableStorage* storage) {
    runtime::CostModel costs;
    iteration::JobEnv env;
    env.clock = clock;
    env.costs = &costs;
    env.storage = storage;
    iteration::BulkIterationConfig config;
    config.max_iterations = 10;
    dataflow::ExecOptions exec;
    exec.num_partitions = 4;
    exec.clock = clock;
    exec.costs = &costs;
    iteration::BulkIterationDriver driver(&plan, {}, config, exec, env);
    std::vector<Record> records;
    for (int64_t v = 0; v < 64; ++v) records.push_back(MakeRecord(v, v));
    auto result = driver.Run(
        PartitionedDataset::HashPartitioned(records, {0}, 4), policy);
    ASSERT_TRUE(result.ok());
  };

  runtime::SimClock rollback_clock;
  runtime::CostModel costs;
  runtime::StableStorage rollback_storage(&rollback_clock, &costs);
  CheckpointRollbackPolicy rollback(2);
  run(&rollback, &rollback_clock, &rollback_storage);

  runtime::SimClock optimistic_clock;
  runtime::StableStorage optimistic_storage(&optimistic_clock, &costs);
  MarkerCompensation compensation;
  OptimisticRecoveryPolicy optimistic(&compensation);
  run(&optimistic, &optimistic_clock, &optimistic_storage);

  EXPECT_GT(rollback_clock.Of(runtime::Charge::kCheckpointIo), 0);
  EXPECT_EQ(optimistic_clock.Of(runtime::Charge::kCheckpointIo), 0);
  EXPECT_GT(rollback_clock.TotalNs(), optimistic_clock.TotalNs());
  // Identical compute/network paths.
  EXPECT_EQ(rollback_clock.Of(runtime::Charge::kCompute),
            optimistic_clock.Of(runtime::Charge::kCompute));
}


// ---------------------------------------------------------- confined-log --

TEST(ConfinedLogReplayTest, FailureWithoutDriverLogIsRejected) {
  core::ConfinedLogReplayPolicy policy(2);
  BulkState state = MakeState(8, 2, 1);
  // No ctx.replay_messages hook: the driver ran without message_log.
  auto outcome = policy.OnFailure(MakeContext(3, 2, nullptr), &state, {0});
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(policy.name(), "confined-log(k=2)");
}

TEST(ConfinedLogReplayTest, BulkReplaysWithoutCheckpoints) {
  runtime::StableStorage storage(nullptr, nullptr);
  core::ConfinedLogReplayPolicy policy(2);
  BulkState state = MakeState(8, 2, 1);
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 2, &storage), &state).ok());
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(2, 2, &storage), &state).ok());
  EXPECT_EQ(storage.bytes_written(), 0u);  // bulk: zero checkpoint I/O

  std::vector<int> replayed;
  IterationContext ctx = MakeContext(3, 2, &storage);
  ctx.replay_messages = [&](const std::vector<int>& lost) {
    replayed = lost;
    return Status::OK();
  };
  auto outcome = policy.OnFailure(ctx, &state, {1});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->action, RecoveryAction::kContinue);
  EXPECT_EQ(replayed, (std::vector<int>{1}));
}

TEST(ConfinedLogReplayTest, DeltaSnapshotsAndRestoresBeforeReplaying) {
  runtime::StableStorage storage(nullptr, nullptr);
  int refreshes = 0;
  bool restored_before_replay = false;
  iteration::DeltaState state = MakeDeltaState(16, 4);
  core::ConfinedLogReplayPolicy policy(
      /*interval=*/1,
      [&](const iteration::IterationContext&, iteration::DeltaState*,
          const std::vector<int>&) {
        ++refreshes;
        return Status::OK();
      });
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 4, &storage), &state).ok());
  EXPECT_EQ(storage.ListWithPrefix("test-job/clog/").size(), 4u);

  for (int64_t v = 0; v < 16; ++v) {
    state.solution().Upsert(MakeRecord(v, v + 100));
  }
  ASSERT_TRUE(
      policy.AfterIteration(MakeContext(1, 4, &storage), &state).ok());

  // Newer, uncheckpointed progress on every entry; then partition 0 dies.
  for (int64_t v = 0; v < 16; ++v) {
    state.solution().Upsert(MakeRecord(v, v + 200));
  }
  state.ClearPartition(0);
  IterationContext ctx = MakeContext(2, 4, &storage);
  ctx.replay_messages = [&](const std::vector<int>& lost) {
    // The snapshot restore must have happened already: replay upserts the
    // failed superstep's delta ON TOP of the restored entries.
    restored_before_replay = !state.solution().PartitionRecords(0).empty();
    EXPECT_EQ(lost, (std::vector<int>{0}));
    return Status::OK();
  };
  auto outcome = policy.OnFailure(ctx, &state, {0});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->action, RecoveryAction::kContinue);
  EXPECT_TRUE(restored_before_replay);
  EXPECT_EQ(refreshes, 1);
  // Lost partition is back at the iteration-1 snapshot (value v+100);
  // survivors keep the newer v+200 entries.
  for (int p = 0; p < 4; ++p) {
    for (const Record& r : state.solution().PartitionRecords(p)) {
      int64_t expected = r[0].AsInt64() + (p == 0 ? 100 : 200);
      EXPECT_EQ(r[1].AsInt64(), expected) << RecordToString(r);
    }
  }
}

TEST(ConfinedLogReplayTest, DeltaWithoutRefresherIsRejected) {
  runtime::StableStorage storage(nullptr, nullptr);
  core::ConfinedLogReplayPolicy policy(1);  // no refresher
  iteration::DeltaState state = MakeDeltaState(8, 2);
  ASSERT_TRUE(policy.OnJobStart(MakeContext(0, 2, &storage), &state).ok());
  state.ClearPartition(0);
  IterationContext ctx = MakeContext(1, 2, &storage);
  ctx.replay_messages = [](const std::vector<int>&) { return Status::OK(); };
  auto outcome = policy.OnFailure(ctx, &state, {0});
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace flinkless::core
