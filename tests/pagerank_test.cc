// PageRank on the dataflow engine: plan structure (Figure 1b), agreement
// with the reference power iteration, mass conservation, and the FixRanks
// compensation including the §3.3 plot behaviours (plummet + L1 spike) and
// the ablation variants.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "algos/datasets.h"
#include "algos/pagerank.h"
#include "common/rng.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "runtime/stable_storage.h"

namespace flinkless::algos {
namespace {

using dataflow::MakeRecord;
using dataflow::Record;

PageRankOptions Options(int parts, int max_iterations = 100) {
  PageRankOptions options;
  options.num_partitions = parts;
  options.max_iterations = max_iterations;
  return options;
}

double MaxAbsError(const std::vector<double>& a,
                   const std::vector<double>& b) {
  double err = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    err = std::max(err, std::abs(a[i] - b[i]));
  }
  return err;
}

TEST(PrPlanTest, MirrorsFigure1bOperators) {
  dataflow::Plan plan = BuildPageRankPlan(10, 0.85);
  EXPECT_TRUE(plan.Validate().ok());
  std::string text = plan.Explain();
  EXPECT_NE(text.find("Join 'find-neighbors'"), std::string::npos);
  EXPECT_NE(text.find("ReduceByKey 'recompute-ranks'"), std::string::npos);
  EXPECT_NE(text.find("Cross 'apply-teleport'"), std::string::npos);
  EXPECT_NE(text.find("output 'next_state'"), std::string::npos);
}

TEST(PrTest, RejectsUndirectedOrEmptyGraph) {
  core::NoFaultTolerancePolicy policy;
  graph::Graph undirected(4, false);
  EXPECT_EQ(RunPageRank(undirected, Options(2), {}, &policy).status().code(),
            StatusCode::kInvalidArgument);
  graph::Graph empty(0, true);
  EXPECT_EQ(RunPageRank(empty, Options(2), {}, &policy).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PrTest, UniformRanksOnCycle) {
  graph::Graph g(5, true);
  for (int64_t v = 0; v < 5; ++v) ASSERT_TRUE(g.AddEdge(v, (v + 1) % 5).ok());
  core::NoFaultTolerancePolicy policy;
  auto result = RunPageRank(g, Options(2), {}, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  for (double r : result->ranks) EXPECT_NEAR(r, 0.2, 1e-8);
}

TEST(PrTest, MatchesReferenceOnDemoGraph) {
  graph::Graph g = graph::DemoDirectedGraph();
  auto truth = graph::ReferencePageRank(g, 0.85, 300, 1e-13);
  core::NoFaultTolerancePolicy policy;
  auto result = RunPageRank(g, Options(4), {}, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_LT(MaxAbsError(result->ranks, truth), 1e-7);
}

TEST(PrTest, HandlesDanglingVerticesAndSumsToOne) {
  graph::Graph g(4, true);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  // 2 and 3 are dangling.
  core::NoFaultTolerancePolicy policy;
  auto result = RunPageRank(g, Options(2), {}, &policy);
  ASSERT_TRUE(result.ok());
  double sum = std::accumulate(result->ranks.begin(), result->ranks.end(),
                               0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  auto truth = graph::ReferencePageRank(g, 0.85, 300, 1e-13);
  EXPECT_LT(MaxAbsError(result->ranks, truth), 1e-7);
}

class PrParallelismTest : public ::testing::TestWithParam<int> {};

TEST_P(PrParallelismTest, ParallelismDoesNotChangeRanks) {
  Rng rng(3);
  graph::Graph g = graph::Rmat(6, 4, &rng);
  auto truth = graph::ReferencePageRank(g, 0.85, 300, 1e-13);
  core::NoFaultTolerancePolicy policy;
  auto result = RunPageRank(g, Options(GetParam()), {}, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(MaxAbsError(result->ranks, truth), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Parallelism, PrParallelismTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(PrTest, L1SeriesDecreasesFailureFree) {
  graph::Graph g = graph::DemoDirectedGraph();
  runtime::MetricsRegistry metrics;
  iteration::JobEnv env;
  env.metrics = &metrics;
  core::NoFaultTolerancePolicy policy;
  ASSERT_TRUE(RunPageRank(g, Options(4), env, &policy).ok());
  auto l1 = metrics.GaugeSeries("convergence_metric");
  ASSERT_GT(l1.size(), 3u);
  for (size_t i = 1; i < l1.size(); ++i) {
    EXPECT_LT(l1[i], l1[i - 1]) << "iteration " << i + 1;
  }
}

// ------------------------------------------------- compensation function --

TEST(FixRanksTest, RedistributesExactlyTheLostMass) {
  const int64_t n = 32;
  const int parts = 4;
  std::vector<Record> records;
  for (int64_t v = 0; v < n; ++v) {
    records.push_back(MakeRecord(v, 1.0 / static_cast<double>(n)));
  }
  iteration::BulkState state(
      dataflow::PartitionedDataset::HashPartitioned(records, {0}, parts));

  // Count mass in partition 2, then lose it.
  double lost_mass = 0;
  size_t lost_count = state.data().partition(2).size();
  for (const Record& r : state.data().partition(2)) {
    lost_mass += r[1].AsDouble();
  }
  ASSERT_GT(lost_count, 0u);
  state.ClearPartition(2);

  FixRanksCompensation compensation(n);
  iteration::IterationContext ctx;
  ctx.num_partitions = parts;
  ASSERT_TRUE(compensation.Compensate(ctx, &state, {2}).ok());

  // Mass restored: total is 1 again, and the lost vertices share the lost
  // mass uniformly.
  double total = 0;
  for (const Record& r : state.data().Collect()) total += r[1].AsDouble();
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(state.data().partition(2).size(), lost_count);
  for (const Record& r : state.data().partition(2)) {
    EXPECT_NEAR(r[1].AsDouble(), lost_mass / lost_count, 1e-12);
  }
}

TEST(FixRanksTest, UniformReinitDoesNotConserveMass) {
  const int64_t n = 32;
  const int parts = 4;
  std::vector<Record> records;
  // Skewed ranks: vertex 0 holds most of the mass.
  for (int64_t v = 0; v < n; ++v) {
    records.push_back(MakeRecord(v, v == 0 ? 0.7 : 0.3 / (n - 1)));
  }
  iteration::BulkState state(
      dataflow::PartitionedDataset::HashPartitioned(records, {0}, parts));
  int lost = PartitionOfVertex(0, parts);  // lose the heavy vertex
  state.ClearPartition(lost);

  FixRanksCompensation compensation(n, RankCompensationVariant::kUniformReinit);
  iteration::IterationContext ctx;
  ctx.num_partitions = parts;
  ASSERT_TRUE(compensation.Compensate(ctx, &state, {lost}).ok());
  double total = 0;
  for (const Record& r : state.data().Collect()) total += r[1].AsDouble();
  EXPECT_GT(std::abs(total - 1.0), 0.01);  // invariant broken, by design
}

TEST(FixRanksTest, FullReinitResetsEverything) {
  const int64_t n = 16;
  const int parts = 2;
  std::vector<Record> records;
  for (int64_t v = 0; v < n; ++v) {
    records.push_back(MakeRecord(v, v == 0 ? 0.9 : 0.1 / (n - 1)));
  }
  iteration::BulkState state(
      dataflow::PartitionedDataset::HashPartitioned(records, {0}, parts));
  state.ClearPartition(0);

  FixRanksCompensation compensation(n, RankCompensationVariant::kFullReinit);
  iteration::IterationContext ctx;
  ctx.num_partitions = parts;
  ASSERT_TRUE(compensation.Compensate(ctx, &state, {0}).ok());
  EXPECT_EQ(state.data().NumRecords(), static_cast<uint64_t>(n));
  for (const Record& r : state.data().Collect()) {
    EXPECT_NEAR(r[1].AsDouble(), 1.0 / n, 1e-12);
  }
}

TEST(FixRanksTest, RejectsDeltaState) {
  iteration::DeltaState state(iteration::SolutionSet(2, {0}),
                              dataflow::PartitionedDataset(2));
  FixRanksCompensation compensation(8);
  iteration::IterationContext ctx;
  EXPECT_FALSE(compensation.Compensate(ctx, &state, {0}).ok());
}

// --------------------------------------------------- recovery end-to-end --

class PrRecoveryTest : public ::testing::TestWithParam<RankCompensationVariant> {
};

TEST_P(PrRecoveryTest, ConvergesToTrueRanksAfterFailure) {
  // The core claim of §2.2.2: with any mass-consistent compensation, the
  // algorithm converges to the correct result as if no failure occurred.
  graph::Graph g = graph::DemoDirectedGraph();
  auto truth = graph::ReferencePageRank(g, 0.85, 400, 1e-14);

  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{5, {1}}});
  iteration::JobEnv env;
  env.failures = &failures;

  FixRanksCompensation compensation(g.num_vertices(), GetParam());
  core::OptimisticRecoveryPolicy policy(&compensation);
  auto result = RunPageRank(g, Options(4, 200), env, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->failures_recovered, 1);
  EXPECT_LT(MaxAbsError(result->ranks, truth), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, PrRecoveryTest,
    ::testing::Values(RankCompensationVariant::kRedistributeLostMass,
                      RankCompensationVariant::kUniformReinit,
                      RankCompensationVariant::kFullReinit));

TEST(PrRecoveryTest2, MassStaysOneThroughFailure) {
  Rng rng(5);
  graph::Graph g = graph::Rmat(6, 4, &rng);
  auto truth = graph::ReferencePageRank(g, 0.85, 300, 1e-13);
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{4, {0, 2}}});
  runtime::MetricsRegistry metrics;
  iteration::JobEnv env;
  env.failures = &failures;
  env.metrics = &metrics;

  FixRanksCompensation compensation(g.num_vertices());
  core::OptimisticRecoveryPolicy policy(&compensation);
  auto result = RunPageRank(g, Options(4, 200), env, &policy, &truth);
  ASSERT_TRUE(result.ok());
  // The paper's consistency condition: the stats hook records total mass
  // after every iteration (including the compensated one) — always 1.
  for (const auto& it : metrics.iterations()) {
    EXPECT_NEAR(it.Gauge("total_mass"), 1.0, 1e-9)
        << "iteration " << it.iteration;
  }
}

TEST(PrRecoveryTest2, L1SpikesAtFailureThenRecovers) {
  // The §3.3 bottom-right plot: downward trend, spike at the iteration
  // after the failure, then downward again.
  graph::Graph g = graph::DemoDirectedGraph();
  const int fail_iter = 5;
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{fail_iter, {1}}});
  runtime::MetricsRegistry metrics;
  iteration::JobEnv env;
  env.failures = &failures;
  env.metrics = &metrics;

  FixRanksCompensation compensation(g.num_vertices());
  core::OptimisticRecoveryPolicy policy(&compensation);
  ASSERT_TRUE(RunPageRank(g, Options(4, 100), env, &policy).ok());
  auto l1 = metrics.GaugeSeries("convergence_metric");
  ASSERT_GT(l1.size(), static_cast<size_t>(fail_iter + 2));
  // Spike: the iteration right after the failure sees a larger difference
  // than the one before it.
  EXPECT_GT(l1[fail_iter], l1[fail_iter - 1]);
  // And it decays again afterwards.
  EXPECT_LT(l1[fail_iter + 1], l1[fail_iter]);
}

TEST(PrRecoveryTest2, ConvergedVerticesPlummetAfterFailure) {
  Rng rng(7);
  graph::Graph g = graph::Rmat(7, 4, &rng);
  auto truth = graph::ReferencePageRank(g, 0.85, 500, 1e-14);
  const int fail_iter = 8;
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{fail_iter, {0}}});
  runtime::MetricsRegistry metrics;
  iteration::JobEnv env;
  env.failures = &failures;
  env.metrics = &metrics;

  PageRankOptions options = Options(4, 200);
  options.converged_tolerance = 1e-4;
  FixRanksCompensation compensation(g.num_vertices());
  core::OptimisticRecoveryPolicy policy(&compensation);
  ASSERT_TRUE(RunPageRank(g, options, env, &policy, &truth).ok());
  auto converged = metrics.GaugeSeries("converged_vertices");
  ASSERT_GT(converged.size(), static_cast<size_t>(fail_iter));
  // The compensated iteration has fewer converged vertices than before it.
  EXPECT_LT(converged[fail_iter - 1], converged[fail_iter - 2]);
  // But the end of the run beats everything before the failure.
  EXPECT_GE(converged.back(), converged[fail_iter - 2]);
}

TEST(PrRecoveryTest2, RollbackMatchesTruthToo) {
  graph::Graph g = graph::DemoDirectedGraph();
  auto truth = graph::ReferencePageRank(g, 0.85, 400, 1e-14);
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{5, {1}}});
  runtime::StableStorage storage(nullptr, nullptr);
  iteration::JobEnv env;
  env.failures = &failures;
  env.storage = &storage;
  core::CheckpointRollbackPolicy policy(2);
  auto result = RunPageRank(g, Options(4, 200), env, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(MaxAbsError(result->ranks, truth), 1e-6);
  EXPECT_GT(storage.bytes_read(), 0u);
}

TEST(PrSnapshotTest, FramesTrackRanksAndFailures) {
  graph::Graph g = graph::DemoDirectedGraph();
  auto truth = graph::ReferencePageRank(g, 0.85, 400, 1e-14);
  const int fail_iter = 4;
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{fail_iter, {1}}});
  iteration::JobEnv env;
  env.failures = &failures;
  FixRanksCompensation compensation(g.num_vertices());
  core::OptimisticRecoveryPolicy policy(&compensation);

  int frames = 0;
  bool saw_failure_frame = false;
  auto result = RunPageRankWithSnapshots(
      g, Options(4, 60), env, &policy, &truth,
      [&](int iteration, const std::vector<double>& ranks,
          const std::vector<int>& lost, bool failure, double l1_diff,
          int64_t converged) {
        ++frames;
        EXPECT_EQ(ranks.size(), static_cast<size_t>(g.num_vertices()));
        double mass = 0;
        for (double r : ranks) mass += r;
        EXPECT_NEAR(mass, 1.0, 1e-9) << "iteration " << iteration;
        EXPECT_GE(l1_diff, 0.0);
        EXPECT_GE(converged, 0);
        if (iteration == fail_iter) {
          saw_failure_frame = true;
          EXPECT_TRUE(failure);
          EXPECT_EQ(lost, std::vector<int>{1});
        } else {
          EXPECT_FALSE(failure);
        }
      });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(saw_failure_frame);
  EXPECT_EQ(frames, result->iterations);
}

TEST(PrRecoveryTest2, ConfinedRollbackConvergesForBulkIterations) {
  // Bulk iterations need no workset refresher; the mixed state (stale lost
  // partitions + fresh survivors) self-corrects because the damped power
  // iteration converges from any starting vector.
  graph::Graph g = graph::DemoDirectedGraph();
  auto truth = graph::ReferencePageRank(g, 0.85, 400, 1e-14);
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{6, {1}}});
  runtime::StableStorage storage(nullptr, nullptr);
  iteration::JobEnv env;
  env.failures = &failures;
  env.storage = &storage;
  core::ConfinedRollbackPolicy policy(2);
  auto result = RunPageRank(g, Options(4, 200), env, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_LT(MaxAbsError(result->ranks, truth), 1e-6);
}

TEST(PrRecoveryTest2, OptimisticNeedsFewerSuperstepsThanRestart) {
  // With a failure deep into the run, compensating beats recomputing from
  // scratch.
  Rng rng(9);
  graph::Graph g = graph::Rmat(7, 4, &rng);
  runtime::FailureSchedule f1(
      std::vector<runtime::FailureEvent>{{10, {1}}});
  iteration::JobEnv env1;
  env1.failures = &f1;
  FixRanksCompensation compensation(g.num_vertices());
  core::OptimisticRecoveryPolicy optimistic(&compensation);
  auto opt = RunPageRank(g, Options(4, 300), env1, &optimistic);
  ASSERT_TRUE(opt.ok());

  runtime::FailureSchedule f2(
      std::vector<runtime::FailureEvent>{{10, {1}}});
  iteration::JobEnv env2;
  env2.failures = &f2;
  core::RestartPolicy restart;
  auto rst = RunPageRank(g, Options(4, 300), env2, &restart);
  ASSERT_TRUE(rst.ok());

  EXPECT_LT(opt->supersteps_executed, rst->supersteps_executed);
  EXPECT_LT(MaxAbsError(opt->ranks, rst->ranks), 1e-6);  // same fixpoint
}

}  // namespace
}  // namespace flinkless::algos
