// Tests for the graph substrate: structure, generators, I/O, reference
// solvers.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/reference.h"

namespace flinkless::graph {
namespace {

// ----------------------------------------------------------------- Graph --

TEST(GraphTest, EmptyGraph) {
  Graph g(5, false);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.Neighbors(0).empty());
  EXPECT_EQ(g.CountDangling(), 5);
}

TEST(GraphTest, UndirectedNeighborsBothWays) {
  Graph g(3, false);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_EQ(g.Neighbors(0), std::vector<int64_t>{1});
  EXPECT_EQ(g.Neighbors(1), std::vector<int64_t>{0});
  EXPECT_EQ(g.OutDegree(2), 0);
}

TEST(GraphTest, DirectedNeighborsOneWay) {
  Graph g(3, true);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_EQ(g.Neighbors(0), std::vector<int64_t>{1});
  EXPECT_TRUE(g.Neighbors(1).empty());
  EXPECT_EQ(g.CountDangling(), 2);  // 1 and 2 have no out-edges
}

TEST(GraphTest, AddEdgeValidatesRange) {
  Graph g(2, false);
  EXPECT_FALSE(g.AddEdge(0, 2).ok());
  EXPECT_FALSE(g.AddEdge(-1, 0).ok());
  EXPECT_TRUE(g.AddEdge(1, 1).ok());  // self-loop allowed
}

TEST(GraphTest, SelfLoopAppearsOnceInUndirectedAdjacency) {
  Graph g(2, false);
  ASSERT_TRUE(g.AddEdge(0, 0).ok());
  EXPECT_EQ(g.Neighbors(0), std::vector<int64_t>{0});
}

TEST(GraphTest, AdjacencyRebuiltAfterMutation) {
  Graph g(3, false);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_EQ(g.OutDegree(0), 1);  // builds the cache
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  EXPECT_EQ(g.OutDegree(0), 2);  // cache invalidated and rebuilt
}

TEST(GraphTest, FromEdgesValidates) {
  EXPECT_TRUE(Graph::FromEdges(3, false, {{0, 1}, {1, 2}}).ok());
  EXPECT_FALSE(Graph::FromEdges(2, false, {{0, 5}}).ok());
}

TEST(GraphTest, ToStringMentionsShape) {
  Graph g(4, true);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_EQ(g.ToString(), "Graph(directed, 4 vertices, 1 edges)");
}

// ------------------------------------------------------------ Generators --

TEST(GeneratorsTest, DemoGraphHasThreeComponents) {
  Graph g = DemoGraph();
  EXPECT_EQ(g.num_vertices(), 16);
  auto labels = ReferenceConnectedComponents(g);
  EXPECT_EQ(CountComponents(labels), 3);
  // Component minima are 0, 6, 11 per construction.
  EXPECT_EQ(labels[5], 0);
  EXPECT_EQ(labels[10], 6);
  EXPECT_EQ(labels[15], 11);
}

TEST(GeneratorsTest, DemoDirectedGraphHasDanglingVertex) {
  Graph g = DemoDirectedGraph();
  EXPECT_TRUE(g.directed());
  EXPECT_EQ(g.CountDangling(), 1);
  EXPECT_TRUE(g.Neighbors(9).empty());
}

TEST(GeneratorsTest, ErdosRenyiExtremes) {
  Rng rng(1);
  Graph none = ErdosRenyi(10, 0.0, &rng);
  EXPECT_EQ(none.num_edges(), 0);
  Graph complete = ErdosRenyi(10, 1.0, &rng);
  EXPECT_EQ(complete.num_edges(), 45);  // C(10,2)
}

TEST(GeneratorsTest, ErdosRenyiDensityRoughlyMatches) {
  Rng rng(2);
  Graph g = ErdosRenyi(100, 0.1, &rng);
  // Expected 495 edges; allow generous slack.
  EXPECT_GT(g.num_edges(), 350);
  EXPECT_LT(g.num_edges(), 650);
}

TEST(GeneratorsTest, PreferentialAttachmentIsConnectedAndSkewed) {
  Rng rng(3);
  Graph g = PreferentialAttachment(300, 2, &rng);
  EXPECT_EQ(g.num_vertices(), 300);
  auto labels = ReferenceConnectedComponents(g);
  EXPECT_EQ(CountComponents(labels), 1);  // attaches to existing graph
  // Degree skew: max degree far above the mean.
  int64_t max_degree = 0;
  for (int64_t v = 0; v < g.num_vertices(); ++v) {
    max_degree = std::max(max_degree, g.OutDegree(v));
  }
  double mean_degree =
      2.0 * static_cast<double>(g.num_edges()) / g.num_vertices();
  EXPECT_GT(static_cast<double>(max_degree), 4 * mean_degree);
}

TEST(GeneratorsTest, RmatShapeAndDeterminism) {
  Rng rng1(4), rng2(4);
  Graph a = Rmat(8, 4, &rng1);
  Graph b = Rmat(8, 4, &rng2);
  EXPECT_EQ(a.num_vertices(), 256);
  EXPECT_EQ(a.num_edges(), 1024);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (int64_t i = 0; i < a.num_edges(); ++i) {
    EXPECT_TRUE(a.edges()[i] == b.edges()[i]);
  }
}

TEST(GeneratorsTest, RmatIsSkewed) {
  Rng rng(5);
  Graph g = Rmat(10, 8, &rng);
  // The canonical parameters concentrate edges on low ids.
  int64_t low_half = 0;
  for (const Edge& e : g.edges()) {
    if (e.src < g.num_vertices() / 2) ++low_half;
  }
  EXPECT_GT(low_half, g.num_edges() * 6 / 10);
}

TEST(GeneratorsTest, GridChainStarShapes) {
  Graph grid = GridGraph(3, 4);
  EXPECT_EQ(grid.num_vertices(), 12);
  EXPECT_EQ(grid.num_edges(), 3 * 3 + 2 * 4);  // horizontal + vertical
  EXPECT_EQ(CountComponents(ReferenceConnectedComponents(grid)), 1);

  Graph chain = ChainGraph(5);
  EXPECT_EQ(chain.num_edges(), 4);
  EXPECT_EQ(chain.OutDegree(0), 1);
  EXPECT_EQ(chain.OutDegree(2), 2);

  Graph star = StarGraph(6);
  EXPECT_EQ(star.num_edges(), 5);
  EXPECT_EQ(star.OutDegree(0), 5);
  EXPECT_EQ(star.OutDegree(3), 1);
}

TEST(GeneratorsTest, DisjointChainsComponentCount) {
  Graph g = DisjointChains(4, 5);
  EXPECT_EQ(g.num_vertices(), 20);
  EXPECT_EQ(CountComponents(ReferenceConnectedComponents(g)), 4);
}

// -------------------------------------------------------------------- IO --

TEST(IoTest, ParseEdgeListBasic) {
  auto g = ParseEdgeList("# comment\n0 1\n1 2\n\n2 0\n", false);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 3);
  EXPECT_EQ(g->num_edges(), 3);
}

TEST(IoTest, ParseRespectsExplicitVertexCount) {
  auto g = ParseEdgeList("0 1\n", false, 10);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 10);
}

TEST(IoTest, ParseRejectsBadLines) {
  EXPECT_FALSE(ParseEdgeList("0\n", false).ok());
  EXPECT_FALSE(ParseEdgeList("0 1 2\n", false).ok());
  EXPECT_FALSE(ParseEdgeList("a b\n", false).ok());
  EXPECT_FALSE(ParseEdgeList("-1 0\n", false).ok());
  EXPECT_FALSE(ParseEdgeList("0 9\n", false, 5).ok());  // out of range
}

TEST(IoTest, RoundTripThroughText) {
  Graph g = DemoGraph();
  auto back = ParseEdgeList(ToEdgeListText(g), false, g.num_vertices());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_edges(), g.num_edges());
  for (int64_t i = 0; i < g.num_edges(); ++i) {
    EXPECT_TRUE(back->edges()[i] == g.edges()[i]);
  }
}

TEST(IoTest, SaveAndLoadFile) {
  Graph g = ChainGraph(4);
  std::string path = ::testing::TempDir() + "/flinkless_graph_test.txt";
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  auto back = LoadEdgeList(path, false, 4);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_edges(), 3);
}

TEST(IoTest, LoadMissingFileIsIOError) {
  auto g = LoadEdgeList("/nonexistent/path/graph.txt", false);
  EXPECT_EQ(g.status().code(), StatusCode::kIOError);
}

// ------------------------------------------------------------- Reference --

TEST(ReferenceCcTest, SingletonVerticesAreOwnComponents) {
  Graph g(3, false);
  auto labels = ReferenceConnectedComponents(g);
  EXPECT_EQ(labels, (std::vector<int64_t>{0, 1, 2}));
  EXPECT_EQ(CountComponents(labels), 3);
}

TEST(ReferenceCcTest, LabelsAreComponentMinima) {
  Graph g(6, false);
  ASSERT_TRUE(g.AddEdge(5, 3).ok());
  ASSERT_TRUE(g.AddEdge(3, 4).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  auto labels = ReferenceConnectedComponents(g);
  EXPECT_EQ(labels, (std::vector<int64_t>{0, 1, 1, 3, 3, 3}));
}

TEST(ReferencePageRankTest, UniformOnSymmetricCycle) {
  Graph g(4, true);
  for (int64_t v = 0; v < 4; ++v) {
    ASSERT_TRUE(g.AddEdge(v, (v + 1) % 4).ok());
  }
  auto ranks = ReferencePageRank(g, 0.85, 100, 1e-12);
  for (double r : ranks) EXPECT_NEAR(r, 0.25, 1e-9);
}

TEST(ReferencePageRankTest, SumsToOneWithDangling) {
  Graph g = DemoDirectedGraph();
  auto ranks = ReferencePageRank(g, 0.85, 200, 1e-12);
  double sum = std::accumulate(ranks.begin(), ranks.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ReferencePageRankTest, AuthorityOutranksPeriphery) {
  Graph g = DemoDirectedGraph();
  auto ranks = ReferencePageRank(g, 0.85, 200, 1e-12);
  // Vertex 0 receives links from 1..5; it must beat the chain tail.
  EXPECT_GT(ranks[0], ranks[8]);
  EXPECT_GT(ranks[0], ranks[9]);
}

TEST(ReferenceSsspTest, ChainDistances) {
  Graph g = ChainGraph(5);
  auto dist = ReferenceSssp(g, 0);
  EXPECT_EQ(dist, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(ReferenceSsspTest, UnreachableIsMinusOne) {
  Graph g = DisjointChains(2, 3);  // vertices 0-2 and 3-5
  auto dist = ReferenceSssp(g, 0);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], -1);
  EXPECT_EQ(dist[5], -1);
}

TEST(ReferenceSsspTest, StarFromCenterAndLeaf) {
  Graph g = StarGraph(5);
  auto from_center = ReferenceSssp(g, 0);
  for (int64_t v = 1; v < 5; ++v) EXPECT_EQ(from_center[v], 1);
  auto from_leaf = ReferenceSssp(g, 2);
  EXPECT_EQ(from_leaf[0], 1);
  EXPECT_EQ(from_leaf[4], 2);
}

}  // namespace
}  // namespace flinkless::graph
