// SSSP on the dataflow engine: agreement with BFS, unreachable handling,
// and optimistic recovery via FixDistances.

#include <gtest/gtest.h>

#include "algos/datasets.h"
#include "algos/refreshers.h"
#include "algos/sssp.h"
#include "common/rng.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "runtime/stable_storage.h"

namespace flinkless::algos {
namespace {

SsspOptions Options(int64_t source, int parts) {
  SsspOptions options;
  options.source = source;
  options.num_partitions = parts;
  return options;
}

TEST(SsspPlanTest, HasMinDistanceOperators) {
  dataflow::Plan plan = BuildSsspPlan();
  EXPECT_TRUE(plan.Validate().ok());
  std::string text = plan.Explain();
  EXPECT_NE(text.find("Join 'relax-neighbors'"), std::string::npos);
  EXPECT_NE(text.find("ReduceByKey 'min-distance'"), std::string::npos);
}

TEST(SsspTest, ChainDistances) {
  graph::Graph g = graph::ChainGraph(8);
  core::NoFaultTolerancePolicy policy;
  auto result = RunSssp(g, Options(0, 2), {}, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->distances, graph::ReferenceSssp(g, 0));
}

TEST(SsspTest, UnreachableVerticesStayMinusOne) {
  graph::Graph g = graph::DisjointChains(2, 4);
  core::NoFaultTolerancePolicy policy;
  auto result = RunSssp(g, Options(0, 4), {}, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distances, graph::ReferenceSssp(g, 0));
  EXPECT_EQ(result->distances[7], -1);
}

TEST(SsspTest, SourceOutOfRangeRejected) {
  graph::Graph g = graph::ChainGraph(3);
  core::NoFaultTolerancePolicy policy;
  EXPECT_FALSE(RunSssp(g, Options(99, 2), {}, &policy).ok());
}

TEST(SsspTest, NonZeroSource) {
  graph::Graph g = graph::DemoGraph();
  core::NoFaultTolerancePolicy policy;
  auto result = RunSssp(g, Options(9, 4), {}, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distances, graph::ReferenceSssp(g, 9));
}

class SsspSweepTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SsspSweepTest, MatchesBfsOnRandomGraphs) {
  auto [parts, seed] = GetParam();
  Rng rng(seed);
  graph::Graph g = graph::ErdosRenyi(50, 0.06, &rng);
  core::NoFaultTolerancePolicy policy;
  auto result = RunSssp(g, Options(0, parts), {}, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distances, graph::ReferenceSssp(g, 0));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SsspSweepTest,
                         ::testing::Combine(::testing::Values(1, 3, 4),
                                            ::testing::Values(2, 4, 8)));

TEST(SsspRecoveryTest, OptimisticRecoveryMatchesBfs) {
  Rng rng(23);
  graph::Graph g = graph::PreferentialAttachment(90, 2, &rng);
  auto truth = graph::ReferenceSssp(g, 0);

  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{2, {0, 2}}});
  iteration::JobEnv env;
  env.failures = &failures;

  FixDistancesCompensation compensation(&g, 0);
  core::OptimisticRecoveryPolicy policy(&compensation);
  auto result = RunSssp(g, Options(0, 4), env, &policy, &truth);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->failures_recovered, 1);
  EXPECT_EQ(result->distances, truth);
}

TEST(SsspRecoveryTest, LosingTheSourcePartitionStillConverges) {
  graph::Graph g = graph::ChainGraph(12);
  auto truth = graph::ReferenceSssp(g, 0);
  // Find and fail the partition holding the source vertex 0.
  int source_partition = PartitionOfVertex(0, 4);
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{3, {source_partition}}});
  iteration::JobEnv env;
  env.failures = &failures;

  FixDistancesCompensation compensation(&g, 0);
  core::OptimisticRecoveryPolicy policy(&compensation);
  auto result = RunSssp(g, Options(0, 4), env, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distances, truth);
}

TEST(SsspRecoveryTest, RollbackMatchesBfsToo) {
  graph::Graph g = graph::GridGraph(5, 5);
  auto truth = graph::ReferenceSssp(g, 0);
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{3, {1}}});
  runtime::StableStorage storage(nullptr, nullptr);
  iteration::JobEnv env;
  env.failures = &failures;
  env.storage = &storage;
  core::CheckpointRollbackPolicy policy(1);
  auto result = RunSssp(g, Options(0, 4), env, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distances, truth);
}

TEST(SsspRecoveryTest, RepeatedFailuresConverge) {
  graph::Graph g = graph::GridGraph(6, 6);
  auto truth = graph::ReferenceSssp(g, 0);
  runtime::FailureSchedule failures(std::vector<runtime::FailureEvent>{
      {1, {0}}, {2, {1}}, {3, {2}}, {4, {3}}});
  iteration::JobEnv env;
  env.failures = &failures;
  FixDistancesCompensation compensation(&g, 0);
  core::OptimisticRecoveryPolicy policy(&compensation);
  auto result = RunSssp(g, Options(0, 4), env, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->failures_recovered, 4);
  EXPECT_EQ(result->distances, truth);
}

TEST(SsspRecoveryTest, ConfinedRollbackMatchesBfs) {
  Rng rng(29);
  graph::Graph g = graph::ErdosRenyi(60, 0.06, &rng);
  auto truth = graph::ReferenceSssp(g, 0);
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{2, {0}}, {4, {2}}});
  runtime::StableStorage storage(nullptr, nullptr);
  iteration::JobEnv env;
  env.failures = &failures;
  env.storage = &storage;
  // SSSP entries at infinity have nothing useful to propagate.
  core::ConfinedRollbackPolicy policy(
      1, MakeNeighborhoodRefresher(&g, [](const dataflow::Record& r) {
        return r[1].AsInt64() < kSsspInfinity;
      }));
  auto result = RunSssp(g, Options(0, 4), env, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distances, truth);
}

TEST(SsspRecoveryTest, DeltaCheckpointPolicyMatchesBfs) {
  graph::Graph g = graph::GridGraph(8, 8);
  auto truth = graph::ReferenceSssp(g, 0);
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{4, {0}}, {9, {1, 2}}});
  runtime::StableStorage storage(nullptr, nullptr);
  iteration::JobEnv env;
  env.failures = &failures;
  env.storage = &storage;
  core::DeltaCheckpointPolicy policy(/*interval=*/2, /*compact_every=*/3);
  auto result = RunSssp(g, Options(0, 4), env, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distances, truth);
  EXPECT_GT(storage.bytes_written(), 0u);
}

TEST(FixDistancesTest, RejectsBulkState) {
  graph::Graph g = graph::ChainGraph(4);
  FixDistancesCompensation compensation(&g, 0);
  iteration::BulkState state(dataflow::PartitionedDataset(2));
  iteration::IterationContext ctx;
  EXPECT_FALSE(compensation.Compensate(ctx, &state, {0}).ok());
}

}  // namespace
}  // namespace flinkless::algos
