// ALS matrix factorization on the dataflow engine: agreement with the
// sequential reference, reconstruction quality on synthetic low-rank data,
// and optimistic recovery via factor re-seeding.

#include <gtest/gtest.h>

#include <cmath>

#include "algos/als.h"
#include "common/rng.h"
#include "core/policies.h"
#include "runtime/failure.h"
#include "runtime/stable_storage.h"

namespace flinkless::algos {
namespace {

struct TestData {
  std::vector<Rating> ratings;
  int64_t num_users;
  int64_t num_items;
};

TestData SmallDataset(uint64_t seed = 5) {
  Rng rng(seed);
  TestData data;
  data.num_users = 24;
  data.num_items = 16;
  data.ratings = GenerateRatings(data.num_users, data.num_items, /*rank=*/3,
                                 /*density=*/0.4, /*noise=*/0.01, &rng);
  return data;
}

AlsOptions Options(int parts) {
  AlsOptions options;
  options.rank = 3;
  options.num_partitions = parts;
  options.max_iterations = 25;
  return options;
}

double MaxFactorDiff(const std::vector<std::vector<double>>& a,
                     const std::vector<std::vector<double>>& b) {
  double max_diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t f = 0; f < a[i].size(); ++f) {
      max_diff = std::max(max_diff, std::abs(a[i][f] - b[i][f]));
    }
  }
  return max_diff;
}

TEST(AlsGeneratorTest, CoversEveryUserAndItem) {
  TestData data = SmallDataset();
  std::vector<bool> user_seen(data.num_users, false);
  std::vector<bool> item_seen(data.num_items, false);
  for (const Rating& r : data.ratings) {
    user_seen[r.user] = true;
    item_seen[r.item] = true;
  }
  for (bool seen : user_seen) EXPECT_TRUE(seen);
  for (bool seen : item_seen) EXPECT_TRUE(seen);
}

TEST(AlsGeneratorTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  auto r1 = GenerateRatings(10, 8, 2, 0.3, 0.0, &a);
  auto r2 = GenerateRatings(10, 8, 2, 0.3, 0.0, &b);
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].user, r2[i].user);
    EXPECT_EQ(r1[i].item, r2[i].item);
    EXPECT_DOUBLE_EQ(r1[i].value, r2[i].value);
  }
}

TEST(AlsReferenceTest, FitsNoiselessLowRankDataWell) {
  Rng rng(11);
  auto ratings = GenerateRatings(20, 15, 3, 0.5, /*noise=*/0.0, &rng);
  AlsOptions options = Options(1);
  options.regularization = 1e-4;
  options.max_iterations = 80;
  AlsResult reference = ReferenceAls(ratings, 20, 15, options);
  // Rank-3 data, rank-3 model, no noise: ALS is non-convex so it need not
  // reach zero, but the fit must be tight relative to the ~0.75 mean value.
  EXPECT_LT(reference.rmse, 0.05);
}

TEST(AlsReferenceTest, RmseDecreasesWithIterations) {
  TestData data = SmallDataset();
  AlsOptions one = Options(1);
  one.max_iterations = 1;
  AlsOptions ten = Options(1);
  ten.max_iterations = 10;
  AlsResult after_one =
      ReferenceAls(data.ratings, data.num_users, data.num_items, one);
  AlsResult after_ten =
      ReferenceAls(data.ratings, data.num_users, data.num_items, ten);
  EXPECT_LT(after_ten.rmse, after_one.rmse);
}

TEST(AlsTest, MatchesReferenceFailureFree) {
  TestData data = SmallDataset();
  AlsOptions options = Options(4);
  core::NoFaultTolerancePolicy policy;
  auto result =
      RunAls(data.ratings, data.num_users, data.num_items, options, {},
             &policy);
  ASSERT_TRUE(result.ok());
  AlsResult reference =
      ReferenceAls(data.ratings, data.num_users, data.num_items, options);
  EXPECT_NEAR(result->rmse, reference.rmse, 1e-8);
  EXPECT_LT(MaxFactorDiff(result->user_factors, reference.user_factors),
            1e-6);
  EXPECT_LT(MaxFactorDiff(result->item_factors, reference.item_factors),
            1e-6);
}

TEST(AlsTest, RejectsBadInput) {
  core::NoFaultTolerancePolicy policy;
  EXPECT_FALSE(RunAls({}, 2, 2, Options(2), {}, &policy).ok());
  EXPECT_FALSE(
      RunAls({{5, 0, 1.0}}, 2, 2, Options(2), {}, &policy).ok());  // bad user
  EXPECT_FALSE(
      RunAls({{0, 9, 1.0}}, 2, 2, Options(2), {}, &policy).ok());  // bad item
}

class AlsParallelismTest : public ::testing::TestWithParam<int> {};

TEST_P(AlsParallelismTest, ParallelismDoesNotChangeFactors) {
  TestData data = SmallDataset(13);
  AlsOptions options = Options(GetParam());
  core::NoFaultTolerancePolicy policy;
  auto result = RunAls(data.ratings, data.num_users, data.num_items, options,
                       {}, &policy);
  ASSERT_TRUE(result.ok());
  AlsResult reference =
      ReferenceAls(data.ratings, data.num_users, data.num_items, options);
  EXPECT_LT(MaxFactorDiff(result->user_factors, reference.user_factors),
            1e-6);
}

INSTANTIATE_TEST_SUITE_P(Parallelism, AlsParallelismTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(AlsRecoveryTest, OptimisticReseedingRecoversQuality) {
  TestData data = SmallDataset(17);
  AlsOptions options = Options(4);

  core::NoFaultTolerancePolicy noft;
  auto baseline = RunAls(data.ratings, data.num_users, data.num_items,
                         options, {}, &noft);
  ASSERT_TRUE(baseline.ok());

  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{3, {0, 2}}});
  iteration::JobEnv env;
  env.failures = &failures;
  ReseedFactorsCompensation compensation(data.num_users, data.num_items,
                                         options.rank);
  core::OptimisticRecoveryPolicy policy(&compensation);
  auto result = RunAls(data.ratings, data.num_users, data.num_items, options,
                       env, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->failures_recovered, 1);
  // ALS re-solves the reseeded rows against their surviving counterparts in
  // the very next superstep, so the final fit matches the failure-free one.
  EXPECT_NEAR(result->rmse, baseline->rmse, 1e-4);
}

TEST(AlsRecoveryTest, RollbackReproducesBaselineExactly) {
  TestData data = SmallDataset(19);
  AlsOptions options = Options(4);
  core::NoFaultTolerancePolicy noft;
  auto baseline = RunAls(data.ratings, data.num_users, data.num_items,
                         options, {}, &noft);
  ASSERT_TRUE(baseline.ok());

  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{4, {1}}});
  runtime::StableStorage storage(nullptr, nullptr);
  iteration::JobEnv env;
  env.failures = &failures;
  env.storage = &storage;
  core::CheckpointRollbackPolicy rollback(1);
  auto result = RunAls(data.ratings, data.num_users, data.num_items, options,
                       env, &rollback);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(MaxFactorDiff(result->user_factors, baseline->user_factors),
            1e-12);
}

TEST(ReseedFactorsTest, OnlyTouchesLostPartitions) {
  const int parts = 4;
  const int rank = 2;
  std::vector<dataflow::Record> rows;
  for (int64_t kind = 0; kind < 2; ++kind) {
    for (int64_t id = 0; id < 10; ++id) {
      rows.push_back(dataflow::MakeRecord(kind, id, 42.0, 42.0));
    }
  }
  iteration::BulkState state(
      dataflow::PartitionedDataset::HashPartitioned(rows, {0, 1}, parts));
  auto untouched = state.data().partition(3);
  state.ClearPartition(0);

  ReseedFactorsCompensation compensation(10, 10, rank);
  iteration::IterationContext ctx;
  ctx.num_partitions = parts;
  ASSERT_TRUE(compensation.Compensate(ctx, &state, {0}).ok());
  EXPECT_EQ(state.data().partition(3), untouched);
  EXPECT_EQ(state.data().NumRecords(), 20u);
  // Reseeded rows carry the deterministic seeding, not the old 42s.
  for (const dataflow::Record& r : state.data().partition(0)) {
    EXPECT_LT(r[2].AsDouble(), 2.0);
  }
}

TEST(ReseedFactorsTest, RejectsDeltaState) {
  ReseedFactorsCompensation compensation(4, 4, 2);
  iteration::DeltaState state(iteration::SolutionSet(2, {0}),
                              dataflow::PartitionedDataset(2));
  iteration::IterationContext ctx;
  EXPECT_FALSE(compensation.Compensate(ctx, &state, {0}).ok());
}

TEST(InitialFactorRowTest, DeterministicAndPositive) {
  auto a = InitialFactorRow(7, 4, false);
  auto b = InitialFactorRow(7, 4, false);
  EXPECT_EQ(a, b);
  auto c = InitialFactorRow(7, 4, true);
  EXPECT_NE(a, c);  // users and items seed differently
  for (double f : a) {
    EXPECT_GT(f, 0.0);
    EXPECT_LT(f, 1.2);
  }
}

}  // namespace
}  // namespace flinkless::algos
