// Unit tests for the record model: Value, Record helpers, serialization,
// Schema.

#include <gtest/gtest.h>

#include "dataflow/record.h"
#include "dataflow/schema.h"
#include "dataflow/value.h"

namespace flinkless::dataflow {
namespace {

// ----------------------------------------------------------------- Value --

TEST(ValueTest, DefaultIsInt64Zero) {
  Value v;
  EXPECT_TRUE(v.is_int64());
  EXPECT_EQ(v.AsInt64(), 0);
}

TEST(ValueTest, TypesAndAccessors) {
  Value i(int64_t{7});
  Value d(0.5);
  Value s("hello");
  EXPECT_EQ(i.type(), ValueType::kInt64);
  EXPECT_EQ(d.type(), ValueType::kDouble);
  EXPECT_EQ(s.type(), ValueType::kString);
  EXPECT_EQ(i.AsInt64(), 7);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 0.5);
  EXPECT_EQ(s.AsString(), "hello");
}

TEST(ValueTest, IntPromotesToInt64) {
  Value v(3);
  EXPECT_TRUE(v.is_int64());
  EXPECT_EQ(v.AsInt64(), 3);
}

TEST(ValueTest, AsNumericWidens) {
  EXPECT_DOUBLE_EQ(Value(int64_t{4}).AsNumeric(), 4.0);
  EXPECT_DOUBLE_EQ(Value(2.5).AsNumeric(), 2.5);
}

TEST(ValueTest, EqualityIsTypeAware) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(1.0));  // int64 1 != double 1.0
  EXPECT_NE(Value("1"), Value(int64_t{1}));
  EXPECT_EQ(Value("a"), Value("a"));
}

TEST(ValueTest, OrderingWithinAndAcrossTypes) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value(1.0), Value(2.0));
  EXPECT_LT(Value("a"), Value("b"));
  // Cross-type: int64 < double < string by type tag.
  EXPECT_LT(Value(int64_t{9}), Value(0.0));
  EXPECT_LT(Value(9.0), Value(""));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{5}).Hash(), Value(int64_t{5}).Hash());
  EXPECT_EQ(Value("xy").Hash(), Value("xy").Hash());
  EXPECT_NE(Value(int64_t{5}).Hash(), Value(int64_t{6}).Hash());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("x").ToString(), "\"x\"");
  EXPECT_EQ(Value(0.25).ToString(), "0.25");
}

TEST(ValueTypeTest, Names) {
  EXPECT_EQ(ValueTypeName(ValueType::kInt64), "int64");
  EXPECT_EQ(ValueTypeName(ValueType::kDouble), "double");
  EXPECT_EQ(ValueTypeName(ValueType::kString), "string");
}

// ---------------------------------------------------------------- Record --

TEST(RecordTest, MakeRecordMixedTypes) {
  Record r = MakeRecord(int64_t{1}, 2.5, "three");
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].AsInt64(), 1);
  EXPECT_DOUBLE_EQ(r[1].AsDouble(), 2.5);
  EXPECT_EQ(r[2].AsString(), "three");
}

TEST(RecordTest, ToStringFormat) {
  EXPECT_EQ(RecordToString(MakeRecord(int64_t{1}, "a")), "(1, \"a\")");
  EXPECT_EQ(RecordToString({}), "()");
}

TEST(RecordTest, HashKeyDependsOnlyOnKeyColumns) {
  Record a = MakeRecord(int64_t{1}, int64_t{100});
  Record b = MakeRecord(int64_t{1}, int64_t{999});
  EXPECT_EQ(HashKey(a, {0}), HashKey(b, {0}));
  EXPECT_NE(HashKey(a, {0, 1}), HashKey(b, {0, 1}));
}

TEST(RecordTest, HashKeyColumnOrderMatters) {
  Record r = MakeRecord(int64_t{1}, int64_t{2});
  EXPECT_NE(HashKey(r, {0, 1}), HashKey(r, {1, 0}));
}

TEST(RecordTest, KeysEqualAcrossDifferentColumns) {
  Record left = MakeRecord(int64_t{7}, "payload");
  Record right = MakeRecord("other", int64_t{7});
  EXPECT_TRUE(KeysEqual(left, {0}, right, {1}));
  EXPECT_FALSE(KeysEqual(left, {0}, right, {0}));
  EXPECT_FALSE(KeysEqual(left, {0}, right, {0, 1}));  // arity mismatch
}

TEST(RecordTest, ExtractKeyProjects) {
  Record r = MakeRecord(int64_t{1}, 2.0, "c");
  Record k = ExtractKey(r, {2, 0});
  ASSERT_EQ(k.size(), 2u);
  EXPECT_EQ(k[0].AsString(), "c");
  EXPECT_EQ(k[1].AsInt64(), 1);
}

TEST(RecordTest, RecordLessLexicographic) {
  EXPECT_TRUE(RecordLess(MakeRecord(int64_t{1}), MakeRecord(int64_t{2})));
  EXPECT_TRUE(RecordLess(MakeRecord(int64_t{1}),
                         MakeRecord(int64_t{1}, int64_t{0})));  // prefix
  EXPECT_FALSE(RecordLess(MakeRecord(int64_t{1}), MakeRecord(int64_t{1})));
}

// --------------------------------------------------------- Serialization --

TEST(SerializationTest, RoundTripSingleRecord) {
  Record r = MakeRecord(int64_t{-5}, 3.25, "text with spaces");
  std::vector<uint8_t> bytes;
  SerializeRecord(r, &bytes);
  size_t offset = 0;
  auto back = DeserializeRecord(bytes, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, r);
  EXPECT_EQ(offset, bytes.size());
}

TEST(SerializationTest, RoundTripEmptyRecord) {
  std::vector<uint8_t> bytes;
  SerializeRecord({}, &bytes);
  size_t offset = 0;
  auto back = DeserializeRecord(bytes, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(SerializationTest, RoundTripManyRecords) {
  std::vector<Record> records;
  for (int64_t i = 0; i < 100; ++i) {
    records.push_back(MakeRecord(i, static_cast<double>(i) * 0.5,
                                 "r" + std::to_string(i)));
  }
  auto bytes = SerializeRecords(records);
  auto back = DeserializeRecords(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, records);
}

TEST(SerializationTest, RoundTripEmptyVector) {
  auto bytes = SerializeRecords({});
  auto back = DeserializeRecords(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(SerializationTest, SerializedSizeMatchesActual) {
  std::vector<Record> records{MakeRecord(int64_t{1}, 2.0, "abc"),
                              MakeRecord(int64_t{4})};
  EXPECT_EQ(SerializedSize(records), SerializeRecords(records).size());
}

TEST(SerializationTest, TruncatedInputFailsCleanly) {
  auto bytes = SerializeRecords({MakeRecord(int64_t{1}, "abcdef")});
  for (size_t cut : {0UL, 4UL, 9UL, bytes.size() - 1}) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(DeserializeRecords(truncated).ok()) << "cut=" << cut;
  }
}

TEST(SerializationTest, TrailingGarbageRejected) {
  auto bytes = SerializeRecords({MakeRecord(int64_t{1})});
  bytes.push_back(0xAB);
  auto back = DeserializeRecords(bytes);
  EXPECT_FALSE(back.ok());
  EXPECT_TRUE(back.status().IsDataLoss());
}

TEST(SerializationTest, UnknownTagRejected) {
  std::vector<uint8_t> bytes;
  // count = 1 record
  for (int i = 0; i < 8; ++i) bytes.push_back(i == 0 ? 1 : 0);
  // field count = 1
  bytes.push_back(1);
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.push_back(0xFF);  // bogus tag
  EXPECT_FALSE(DeserializeRecords(bytes).ok());
}

TEST(SerializationTest, NegativeAndExtremeInts) {
  std::vector<Record> records{
      MakeRecord(std::numeric_limits<int64_t>::min()),
      MakeRecord(std::numeric_limits<int64_t>::max()), MakeRecord(int64_t{0})};
  auto back = DeserializeRecords(SerializeRecords(records));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, records);
}

// ---------------------------------------------------------------- Schema --

TEST(SchemaTest, ValidateAcceptsMatchingRecord) {
  Schema s = Schema::Of({{"v", ValueType::kInt64}, {"r", ValueType::kDouble}});
  EXPECT_TRUE(s.Validate(MakeRecord(int64_t{1}, 0.5)).ok());
}

TEST(SchemaTest, ValidateRejectsArityMismatch) {
  Schema s = Schema::Of({{"v", ValueType::kInt64}});
  EXPECT_FALSE(s.Validate(MakeRecord(int64_t{1}, int64_t{2})).ok());
}

TEST(SchemaTest, ValidateRejectsTypeMismatch) {
  Schema s = Schema::Of({{"v", ValueType::kInt64}});
  Status st = s.Validate(MakeRecord(0.5));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("'v'"), std::string::npos);
}

TEST(SchemaTest, IndexOf) {
  Schema s = Schema::Of({{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  EXPECT_EQ(s.IndexOf("b"), 1);
  EXPECT_EQ(s.IndexOf("zz"), -1);
}

TEST(SchemaTest, ToStringAndEquality) {
  Schema s = Schema::Of({{"v", ValueType::kInt64}, {"r", ValueType::kDouble}});
  EXPECT_EQ(s.ToString(), "(v: int64, r: double)");
  EXPECT_TRUE(s == Schema::Of(
                       {{"v", ValueType::kInt64}, {"r", ValueType::kDouble}}));
  EXPECT_FALSE(s == Schema::Of({{"v", ValueType::kInt64}}));
}

}  // namespace
}  // namespace flinkless::dataflow
