// K-Means on the dataflow engine: agreement with sequential Lloyd's
// algorithm, clustering quality, and optimistic recovery via centroid
// re-seeding.

#include <gtest/gtest.h>

#include <cmath>

#include "algos/kmeans.h"
#include "common/rng.h"
#include "core/policies.h"
#include "runtime/failure.h"
#include "runtime/stable_storage.h"

namespace flinkless::algos {
namespace {

std::vector<Point> TestBlobs(int k, uint64_t seed = 9) {
  Rng rng(seed);
  return GenerateBlobs(k, 40, /*center_radius=*/10.0, /*stddev=*/0.8, &rng);
}

double MaxCentroidDistance(const std::vector<Point>& a,
                           const std::vector<Point>& b) {
  double max_dist = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    double dx = a[i].x - b[i].x, dy = a[i].y - b[i].y;
    max_dist = std::max(max_dist, std::sqrt(dx * dx + dy * dy));
  }
  return max_dist;
}

TEST(KMeansReferenceTest, RecoversWellSeparatedBlobs) {
  auto points = TestBlobs(3);
  auto centroids = ReferenceKMeans(points, InitialCentroids(points, 3), 100,
                                   1e-9);
  // Each blob has 40 points with stddev 0.8 around radius-10 centers; the
  // per-cluster cost is about 2 * stddev^2 * 40.
  double cost = ClusteringCost(points, centroids);
  EXPECT_LT(cost, 3 * 40 * 2 * 0.8 * 0.8 * 2.5);
}

TEST(KMeansReferenceTest, InitialCentroidsAreDistinct) {
  std::vector<Point> points{{1, 1}, {1, 1}, {2, 2}, {3, 3}};
  auto centroids = InitialCentroids(points, 3);
  ASSERT_EQ(centroids.size(), 3u);
  EXPECT_EQ(centroids[0].x, 1);
  EXPECT_EQ(centroids[1].x, 2);
  EXPECT_EQ(centroids[2].x, 3);
}

TEST(KMeansPlanTest, HasLloydOperators) {
  dataflow::Plan plan = BuildKMeansPlan();
  EXPECT_TRUE(plan.Validate().ok());
  std::string text = plan.Explain();
  EXPECT_NE(text.find("Cross 'distance-to-centroids'"), std::string::npos);
  EXPECT_NE(text.find("ReduceByKey 'assign-points'"), std::string::npos);
  EXPECT_NE(text.find("ReduceByKey 'recompute-centroids'"),
            std::string::npos);
  EXPECT_NE(text.find("CoGroup 'keep-or-update'"), std::string::npos);
}

TEST(KMeansTest, MatchesReferenceFailureFree) {
  auto points = TestBlobs(4);
  KMeansOptions options;
  options.k = 4;
  options.num_partitions = 4;
  core::NoFaultTolerancePolicy policy;
  auto result = RunKMeans(points, options, {}, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);

  auto reference = ReferenceKMeans(points, InitialCentroids(points, 4), 200,
                                   options.tolerance);
  EXPECT_LT(MaxCentroidDistance(result->centroids, reference), 1e-6);
  EXPECT_NEAR(result->cost, ClusteringCost(points, reference), 1e-6);
}

TEST(KMeansTest, RejectsBadK) {
  std::vector<Point> points{{0, 0}, {1, 1}};
  KMeansOptions options;
  options.k = 5;  // more clusters than points
  core::NoFaultTolerancePolicy policy;
  EXPECT_FALSE(RunKMeans(points, options, {}, &policy).ok());
  options.k = 0;
  EXPECT_FALSE(RunKMeans(points, options, {}, &policy).ok());
}

TEST(KMeansTest, SingleClusterIsCentroidOfMass) {
  std::vector<Point> points{{0, 0}, {2, 0}, {0, 2}, {2, 2}};
  KMeansOptions options;
  options.k = 1;
  options.num_partitions = 2;
  core::NoFaultTolerancePolicy policy;
  auto result = RunKMeans(points, options, {}, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->centroids[0].x, 1.0, 1e-9);
  EXPECT_NEAR(result->centroids[0].y, 1.0, 1e-9);
}

class KMeansParallelismTest : public ::testing::TestWithParam<int> {};

TEST_P(KMeansParallelismTest, ParallelismDoesNotChangeResult) {
  auto points = TestBlobs(3, 11);
  KMeansOptions options;
  options.k = 3;
  options.num_partitions = GetParam();
  core::NoFaultTolerancePolicy policy;
  auto result = RunKMeans(points, options, {}, &policy);
  ASSERT_TRUE(result.ok());
  auto reference = ReferenceKMeans(points, InitialCentroids(points, 3), 200,
                                   options.tolerance);
  EXPECT_LT(MaxCentroidDistance(result->centroids, reference), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Parallelism, KMeansParallelismTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(KMeansRecoveryTest, OptimisticReseedingStillClustersWell) {
  auto points = TestBlobs(4, 13);
  KMeansOptions options;
  options.k = 4;
  options.num_partitions = 4;

  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{2, {0, 1}}});
  iteration::JobEnv env;
  env.failures = &failures;

  ReseedCentroidsCompensation compensation(&points, options.k);
  core::OptimisticRecoveryPolicy policy(&compensation);
  auto result = RunKMeans(points, options, env, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->failures_recovered, 1);
  // May converge to a different local optimum, but on well-separated blobs
  // the cost must stay in the same ballpark as the failure-free solution.
  core::NoFaultTolerancePolicy noft;
  auto baseline = RunKMeans(points, options, {}, &noft);
  ASSERT_TRUE(baseline.ok());
  EXPECT_LT(result->cost, baseline->cost * 10 + 1e-9);
}

TEST(KMeansRecoveryTest, RollbackReproducesFailureFreeResultExactly) {
  auto points = TestBlobs(3, 17);
  KMeansOptions options;
  options.k = 3;
  options.num_partitions = 4;

  core::NoFaultTolerancePolicy noft;
  auto baseline = RunKMeans(points, options, {}, &noft);
  ASSERT_TRUE(baseline.ok());

  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{3, {1}}});
  runtime::StableStorage storage(nullptr, nullptr);
  iteration::JobEnv env;
  env.failures = &failures;
  env.storage = &storage;
  core::CheckpointRollbackPolicy rollback(1);
  auto result = RunKMeans(points, options, env, &rollback);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(MaxCentroidDistance(result->centroids, baseline->centroids),
            1e-12);
}

TEST(ReseedCentroidsTest, OnlyRebuildsLostPartitions) {
  auto points = TestBlobs(2, 19);
  const int parts = 4;
  const int k = 8;
  std::vector<dataflow::Record> centroid_records;
  for (int c = 0; c < k; ++c) {
    centroid_records.push_back(
        dataflow::MakeRecord(static_cast<int64_t>(c), 100.0 + c, 200.0 + c));
  }
  iteration::BulkState state(dataflow::PartitionedDataset::HashPartitioned(
      centroid_records, {0}, parts));
  auto surviving = state.data().partition(1);
  state.ClearPartition(0);

  ReseedCentroidsCompensation compensation(&points, k);
  iteration::IterationContext ctx;
  ctx.num_partitions = parts;
  ASSERT_TRUE(compensation.Compensate(ctx, &state, {0}).ok());
  // Partition 1 untouched.
  EXPECT_EQ(state.data().partition(1), surviving);
  // Every centroid id is present again.
  EXPECT_EQ(state.data().NumRecords(), static_cast<uint64_t>(k));
  // Re-seeded centroids are actual input points, not the stale values.
  for (const dataflow::Record& r : state.data().partition(0)) {
    EXPECT_LT(r[1].AsDouble(), 100.0);
  }
}

TEST(ReseedCentroidsTest, RejectsDeltaState) {
  auto points = TestBlobs(2, 23);
  ReseedCentroidsCompensation compensation(&points, 2);
  iteration::DeltaState state(iteration::SolutionSet(2, {0}),
                              dataflow::PartitionedDataset(2));
  iteration::IterationContext ctx;
  EXPECT_FALSE(compensation.Compensate(ctx, &state, {0}).ok());
}

TEST(GenerateBlobsTest, ShapeAndDeterminism) {
  Rng rng1(3), rng2(3);
  auto a = GenerateBlobs(3, 10, 5.0, 0.5, &rng1);
  auto b = GenerateBlobs(3, 10, 5.0, 0.5, &rng2);
  ASSERT_EQ(a.size(), 30u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
    EXPECT_DOUBLE_EQ(a[i].y, b[i].y);
  }
}

}  // namespace
}  // namespace flinkless::algos
