// Tracing subsystem: span nesting, ring-buffer overflow accounting,
// deterministic per-worker merge across thread counts, exporter goldens
// (Chrome trace_event + NDJSON), TraceSummary aggregation, and the
// no-behaviour-change contract (tracing must not alter outputs, ExecStats,
// or SimClock — DESIGN.md §8).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <tuple>

#include "algos/pagerank.h"
#include "core/policies.h"
#include "dataflow/executor.h"
#include "graph/generators.h"
#include "runtime/thread_pool.h"
#include "runtime/tracing.h"

namespace flinkless::runtime {
namespace {

using dataflow::ExecOptions;
using dataflow::ExecStats;
using dataflow::Executor;
using dataflow::MakeRecord;
using dataflow::PartitionedDataset;
using dataflow::Plan;
using dataflow::Record;

// ----------------------------------------------------------------- spans --

TEST(TracerTest, SpanNestingRecordsParentSeq) {
  Tracer tracer;
  {
    TraceSpan outer(&tracer, SpanKind::kIteration, "superstep");
    ASSERT_TRUE(outer.active());
    {
      TraceSpan inner(&tracer, SpanKind::kOperator, "map");
      EXPECT_EQ(inner.seq(), outer.seq() + 1);
      tracer.Instant(InstantKind::kFailureInjected, -1, {{"iteration", 7}});
    }
  }
  Tracer::Snapshot snap = tracer.Flush();
  ASSERT_EQ(snap.events.size(), 3u);
  EXPECT_EQ(snap.dropped, 0u);
  // Merge order is seq order: outer (1), inner (2), instant (3) — even
  // though the inner span *closed* (= was recorded) before the outer one.
  EXPECT_EQ(snap.events[0].name, "superstep");
  EXPECT_EQ(snap.events[0].parent_seq, 0u);
  EXPECT_EQ(snap.events[1].name, "map");
  EXPECT_EQ(snap.events[1].parent_seq, snap.events[0].seq);
  EXPECT_EQ(snap.events[2].category, "failure.injected");
  // The instant fired while "map" was still open.
  EXPECT_EQ(snap.events[2].parent_seq, snap.events[1].seq);
  EXPECT_EQ(snap.events[2].Arg("iteration"), 7);
}

TEST(TracerTest, NullTracerSpanIsInert) {
  TraceSpan span(nullptr, SpanKind::kOperator, "nothing");
  EXPECT_FALSE(span.active());
  span.AddArg("ignored", 1);
  span.Close();  // must not crash
  int ran = 0;
  TracedParallelFor(nullptr, span, 3, [&](int) { ++ran; });
  EXPECT_EQ(ran, 3);  // degrades to a plain loop
}

TEST(TracerTest, CancelledSpanIsNotRecordedAndUnwindsStack) {
  Tracer tracer;
  {
    TraceSpan cancelled(&tracer, SpanKind::kCheckpoint, "empty-checkpoint");
    cancelled.Cancel();
    // The cancelled span must no longer be anyone's parent.
    TraceSpan next(&tracer, SpanKind::kOperator, "map");
    EXPECT_EQ(next.iteration(), 0);
  }
  Tracer::Snapshot snap = tracer.Flush();
  ASSERT_EQ(snap.events.size(), 1u);
  EXPECT_EQ(snap.events[0].name, "map");
  EXPECT_EQ(snap.events[0].parent_seq, 0u);
}

TEST(TracerTest, IterationTagIsAppliedToSpansAndInstants) {
  Tracer tracer;
  tracer.set_iteration(4);
  { TraceSpan span(&tracer, SpanKind::kIteration, "superstep"); }
  tracer.Instant(InstantKind::kConvergenceReached);
  Tracer::Snapshot snap = tracer.Flush();
  ASSERT_EQ(snap.events.size(), 2u);
  EXPECT_EQ(snap.events[0].iteration, 4);
  EXPECT_EQ(snap.events[1].iteration, 4);
}

// ------------------------------------------------------------- ring buffer --

TEST(TracerTest, RingOverflowKeepsNewestAndCountsDrops) {
  Tracer::Options options;
  options.per_worker_capacity = 4;
  Tracer tracer(options);
  for (int i = 0; i < 10; ++i) {
    tracer.Instant(InstantKind::kPartitionLost, i);
  }
  Tracer::Snapshot snap = tracer.Flush();
  ASSERT_EQ(snap.events.size(), 4u);
  EXPECT_EQ(snap.dropped, 6u);
  EXPECT_EQ(tracer.dropped_events(), 6u);
  // The survivors are the newest four, still in deterministic order.
  for (size_t i = 0; i < snap.events.size(); ++i) {
    EXPECT_EQ(snap.events[i].seq, 7u + i);
    EXPECT_EQ(snap.events[i].partition, 6 + static_cast<int>(i));
  }
}

// -------------------------------------------------- traced parallel loops --

TEST(TracerTest, TracedParallelForEmitsOnePartitionSpanEach) {
  Tracer tracer;
  ThreadPool pool(2);
  {
    TraceSpan parent(&tracer, SpanKind::kOperator, "map");
    TracedParallelFor(
        &pool, parent, 4, [](int) {},
        [](int p) { return int64_t{10} * p; });
  }
  Tracer::Snapshot snap = tracer.Flush();
  ASSERT_EQ(snap.events.size(), 5u);  // parent + 4 children
  const TraceEvent& parent_event = snap.events[0];
  EXPECT_EQ(parent_event.partition, -1);
  for (int p = 0; p < 4; ++p) {
    const TraceEvent& child = snap.events[1 + p];
    EXPECT_EQ(child.partition, p);  // partition order, not finish order
    EXPECT_EQ(child.name, "map");
    EXPECT_EQ(child.category, "operator");
    EXPECT_EQ(child.parent_seq, parent_event.seq);
    EXPECT_EQ(child.seq, snap.events[1].seq);  // children share the loop seq
    EXPECT_EQ(child.Arg("records"), 10 * p);
    EXPECT_GE(child.worker, 0);
    EXPECT_LE(child.worker, 2);
  }
}

// ---------------------------------------------------------------- executor --

Plan WordCountishPlan() {
  Plan plan;
  auto src = plan.Source("in");
  auto doubled = plan.Map(
      src,
      [](const Record& r) {
        return MakeRecord(r[0].AsInt64(), r[1].AsInt64() * 2);
      },
      "double");
  auto summed = plan.ReduceByKey(
      doubled, {0},
      [](const Record& a, const Record& b) {
        return MakeRecord(a[0].AsInt64(), a[1].AsInt64() + b[1].AsInt64());
      },
      "sum");
  plan.Output(summed, "out");
  return plan;
}

PartitionedDataset SomeKeyValues(int n, int parts) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) {
    records.push_back(MakeRecord(int64_t{i % 5}, int64_t{i}));
  }
  return PartitionedDataset::HashPartitioned(std::move(records), {0}, parts);
}

TEST(ExecutorTracingTest, RecordsOperatorAndShufflePhaseSpans) {
  Tracer tracer;
  ExecOptions options;
  options.num_partitions = 4;
  options.tracer = &tracer;
  Executor executor(options);

  Plan plan = WordCountishPlan();
  auto in = SomeKeyValues(40, 4);
  ExecStats stats;
  ASSERT_TRUE(executor.Execute(plan, {{"in", &in}}, &stats).ok());

  TraceSummary summary = TraceSummary::FromSnapshot(tracer.Flush());
  const TraceOperatorSummary* map_op = summary.Find("double");
  ASSERT_NE(map_op, nullptr);
  EXPECT_EQ(map_op->spans, 1u);
  EXPECT_EQ(map_op->records_in, 40u);
  EXPECT_EQ(map_op->records_out, 40u);
  EXPECT_EQ(map_op->partition_records.size(), 4u);
  uint64_t partition_sum = 0;
  for (uint64_t r : map_op->partition_records) partition_sum += r;
  EXPECT_EQ(partition_sum, 40u);
  EXPECT_GE(map_op->SkewRatio(), 1.0);

  const TraceOperatorSummary* reduce_op = summary.Find("sum");
  ASSERT_NE(reduce_op, nullptr);
  EXPECT_EQ(reduce_op->records_out, 5u);
  // The reduce's shuffle messages are attributed to the reduce operator and
  // agree with the executor's own accounting.
  EXPECT_EQ(reduce_op->messages, stats.messages_shuffled);
  EXPECT_GT(reduce_op->wall_total_ns, 0);
  EXPECT_LE(reduce_op->wall_self_ns, reduce_op->wall_total_ns);
}

TEST(ExecutorTracingTest, TracingDoesNotChangeOutputsStatsOrClock) {
  Plan plan = WordCountishPlan();
  auto in = SomeKeyValues(60, 4);
  CostModel costs;

  auto run = [&](Tracer* tracer, SimClock* clock) {
    ExecOptions options;
    options.num_partitions = 4;
    options.clock = clock;
    options.costs = &costs;
    options.tracer = tracer;
    Executor executor(options);
    ExecStats stats;
    auto outs = executor.Execute(plan, {{"in", &in}}, &stats);
    EXPECT_TRUE(outs.ok());
    return std::make_tuple(outs->at("out").CollectSorted(),
                           stats.records_processed, stats.messages_shuffled,
                           clock->TotalNs());
  };

  SimClock clock_off, clock_on;
  SimClock trace_clock;  // the tracer reads a *different* clock than it logs
  Tracer tracer(Tracer::Options{1 << 10, &clock_on});
  auto off = run(nullptr, &clock_off);
  auto on = run(&tracer, &clock_on);
  EXPECT_EQ(off, on);
  EXPECT_GT(std::get<3>(on), 0);
}

// ------------------------------------------------------------ determinism --

/// The deterministic projection of an event: everything except wall times
/// and worker ids, which legitimately vary across thread counts.
using EventKey =
    std::tuple<int, std::string, std::string, int, int, uint64_t, uint64_t,
               std::vector<std::pair<std::string, int64_t>>>;

std::vector<EventKey> DeterministicView(const Tracer::Snapshot& snap) {
  std::vector<EventKey> keys;
  keys.reserve(snap.events.size());
  for (const TraceEvent& e : snap.events) {
    keys.emplace_back(static_cast<int>(e.kind), e.category, e.name,
                      e.partition, e.iteration, e.seq, e.parent_seq, e.args);
  }
  return keys;
}

TEST(TracingDeterminismTest, TraceIsIdenticalAcrossThreadCounts) {
  graph::Graph g = graph::DemoDirectedGraph();

  auto traced_run = [&](int threads) {
    runtime::FailureSchedule failures(
        std::vector<runtime::FailureEvent>{{3, {1}}});
    SimClock clock;
    CostModel costs;
    Tracer tracer(Tracer::Options{1 << 15, &clock});
    iteration::JobEnv env;
    env.clock = &clock;
    env.costs = &costs;
    env.failures = &failures;
    env.tracer = &tracer;

    algos::PageRankOptions options;
    options.num_partitions = 4;
    options.num_threads = threads;
    options.max_iterations = 30;
    algos::FixRanksCompensation compensation(g.num_vertices());
    core::OptimisticRecoveryPolicy policy(&compensation);
    auto result = algos::RunPageRank(g, options, env, &policy);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result->failures_recovered, 1);
    return std::make_tuple(DeterministicView(tracer.Flush()), result->ranks,
                           clock.TotalNs());
  };

  auto serial = traced_run(1);
  ASSERT_FALSE(std::get<0>(serial).empty());
  for (int threads : {2, 8}) {
    auto parallel = traced_run(threads);
    EXPECT_EQ(std::get<0>(serial), std::get<0>(parallel))
        << "trace diverged at num_threads=" << threads;
    EXPECT_EQ(std::get<1>(serial), std::get<1>(parallel));
    EXPECT_EQ(std::get<2>(serial), std::get<2>(parallel));
  }

  // The recovery timeline is present: failure, lost partition,
  // compensation span, superstep spans.
  TraceSummary summary;
  {
    runtime::FailureSchedule failures(
        std::vector<runtime::FailureEvent>{{3, {1}}});
    SimClock clock;
    CostModel costs;
    Tracer tracer(Tracer::Options{1 << 15, &clock});
    iteration::JobEnv env;
    env.clock = &clock;
    env.costs = &costs;
    env.failures = &failures;
    env.tracer = &tracer;
    algos::PageRankOptions options;
    options.num_partitions = 4;
    options.max_iterations = 200;  // enough to converge after the failure
    algos::FixRanksCompensation compensation(g.num_vertices());
    core::OptimisticRecoveryPolicy policy(&compensation);
    auto result = algos::RunPageRank(g, options, env, &policy);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->converged);
    summary = TraceSummary::FromSnapshot(tracer.Flush());
  }
  EXPECT_EQ(summary.InstantCount("failure.injected"), 1u);
  EXPECT_EQ(summary.InstantCount("partition.lost"), 1u);
  EXPECT_EQ(summary.InstantCount("convergence.reached"), 1u);
  EXPECT_GT(summary.iteration_spans, 3u);
  EXPECT_EQ(summary.dropped_events, 0u);
}

// --------------------------------------------------------------- exporters --

Tracer::Snapshot GoldenSnapshot() {
  Tracer::Snapshot snap;
  TraceEvent span;
  span.kind = TraceEvent::Kind::kSpan;
  span.category = "operator";
  span.name = "double";
  span.wall_ts_ns = 1500;
  span.wall_dur_ns = 2500;
  span.sim_ts_ns = 100;
  span.sim_dur_ns = 50;
  span.partition = -1;
  span.worker = 0;
  span.iteration = 1;
  span.seq = 1;
  span.parent_seq = 0;
  span.args = {{"records_in", 3}};
  snap.events.push_back(span);

  TraceEvent instant;
  instant.kind = TraceEvent::Kind::kInstant;
  instant.category = "failure.injected";
  instant.name = "failure.injected";
  instant.wall_ts_ns = 3000;
  instant.partition = 2;
  instant.worker = 1;
  instant.iteration = 2;
  instant.seq = 2;
  instant.parent_seq = 0;
  snap.events.push_back(instant);
  return snap;
}

TEST(ExportTest, ChromeTraceGolden) {
  std::ostringstream out;
  ExportChromeTrace(GoldenSnapshot(), out);
  EXPECT_EQ(
      out.str(),
      "{\"traceEvents\": [\n"
      "{\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": \"thread_name\", "
      "\"args\": {\"name\": \"driver\"}},\n"
      "{\"ph\": \"M\", \"pid\": 0, \"tid\": 1, \"name\": \"thread_name\", "
      "\"args\": {\"name\": \"worker-1\"}},\n"
      "{\"name\": \"double\", \"cat\": \"operator\", \"ph\": \"X\", "
      "\"ts\": 1.500, \"dur\": 2.500, \"pid\": 0, \"tid\": 0, \"args\": "
      "{\"partition\": -1, \"iteration\": 1, \"sim_ts_ns\": 100, "
      "\"sim_dur_ns\": 50, \"records_in\": 3}},\n"
      "{\"name\": \"failure.injected\", \"cat\": \"failure.injected\", "
      "\"ph\": \"i\", \"ts\": 3.000, \"s\": \"g\", \"pid\": 0, \"tid\": 1, "
      "\"args\": {\"partition\": 2, \"iteration\": 2, \"sim_ts_ns\": 0, "
      "\"sim_dur_ns\": 0}}\n"
      "], \"displayTimeUnit\": \"ms\", \"otherData\": "
      "{\"dropped_events\": \"0\"}}\n");
}

TEST(ExportTest, NdjsonGolden) {
  Tracer::Snapshot snap = GoldenSnapshot();
  snap.dropped = 5;
  std::ostringstream out;
  ExportNdjson(snap, out);
  EXPECT_EQ(
      out.str(),
      "{\"kind\": \"span\", \"cat\": \"operator\", \"name\": \"double\", "
      "\"seq\": 1, \"parent_seq\": 0, \"partition\": -1, \"worker\": 0, "
      "\"iteration\": 1, \"wall_ts_ns\": 1500, \"wall_dur_ns\": 2500, "
      "\"sim_ts_ns\": 100, \"sim_dur_ns\": 50, \"args\": "
      "{\"records_in\": 3}}\n"
      "{\"kind\": \"instant\", \"cat\": \"failure.injected\", \"name\": "
      "\"failure.injected\", \"seq\": 2, \"parent_seq\": 0, \"partition\": "
      "2, \"worker\": 1, \"iteration\": 2, \"wall_ts_ns\": 3000, "
      "\"wall_dur_ns\": 0, \"sim_ts_ns\": 0, \"sim_dur_ns\": 0, "
      "\"args\": {}}\n"
      "{\"kind\": \"meta\", \"total_events\": 2, \"dropped_events\": 5}\n");
}

TEST(ExportTest, WriteTraceFileDispatchesOnExtension) {
  Tracer tracer;
  tracer.Instant(InstantKind::kConvergenceReached);

  std::string chrome_path = ::testing::TempDir() + "/flinkless_trace.json";
  std::string ndjson_path = ::testing::TempDir() + "/flinkless_trace.ndjson";
  ASSERT_TRUE(WriteTraceFile(tracer, chrome_path).ok());
  ASSERT_TRUE(WriteTraceFile(tracer, ndjson_path).ok());

  std::ifstream chrome(chrome_path);
  std::string chrome_first;
  std::getline(chrome, chrome_first);
  EXPECT_EQ(chrome_first, "{\"traceEvents\": [");

  std::ifstream ndjson(ndjson_path);
  std::string ndjson_first;
  std::getline(ndjson, ndjson_first);
  EXPECT_EQ(ndjson_first.rfind("{\"kind\": \"instant\"", 0), 0u);

  EXPECT_EQ(WriteTraceFile(tracer, "/nonexistent-dir/x.json").code(),
            StatusCode::kIOError);

  std::remove(chrome_path.c_str());
  std::remove(ndjson_path.c_str());
}

TEST(ScopedTraceFileTest, InstallsTracerAndWritesOnDestruction) {
  std::string path = ::testing::TempDir() + "/flinkless_scoped.json";
  Tracer* slot = nullptr;
  {
    ScopedTraceFile scoped(path, nullptr, &slot);
    ASSERT_NE(slot, nullptr);
    EXPECT_EQ(scoped.tracer(), slot);
    slot->Instant(InstantKind::kConvergenceReached);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("convergence.reached"), std::string::npos);
  std::remove(path.c_str());

  // Empty path or a pre-installed tracer → no-op.
  Tracer preinstalled;
  Tracer* busy_slot = &preinstalled;
  ScopedTraceFile noop1("", nullptr, &slot);
  ScopedTraceFile noop2(path, nullptr, &busy_slot);
  EXPECT_EQ(noop1.tracer(), nullptr);
  EXPECT_EQ(noop2.tracer(), nullptr);
  EXPECT_EQ(busy_slot, &preinstalled);
}

}  // namespace
}  // namespace flinkless::runtime
