// Tests for the graph <-> dataset conversions in src/algos/datasets.

#include <gtest/gtest.h>

#include "algos/datasets.h"
#include "graph/generators.h"

namespace flinkless::algos {
namespace {

using dataflow::MakeRecord;
using dataflow::Record;

TEST(DatasetsTest, InitialLabelsAreIdentity) {
  graph::Graph g = graph::ChainGraph(5);
  auto labels = InitialLabels(g);
  ASSERT_EQ(labels.size(), 5u);
  for (int64_t v = 0; v < 5; ++v) {
    EXPECT_EQ(labels[v][0].AsInt64(), v);
    EXPECT_EQ(labels[v][1].AsInt64(), v);
  }
}

TEST(DatasetsTest, EdgePairsUndirectedEmitsBothDirections) {
  graph::Graph g(3, false);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  auto ds = EdgePairs(g, 2);
  EXPECT_EQ(ds.NumRecords(), 4u);
  EXPECT_TRUE(ds.IsPartitionedBy({0}));
}

TEST(DatasetsTest, EdgePairsDirectedEmitsOneDirection) {
  graph::Graph g(3, true);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  auto ds = EdgePairs(g, 2);
  EXPECT_EQ(ds.NumRecords(), 1u);
}

TEST(DatasetsTest, EdgePairsSelfLoopEmittedOnce) {
  graph::Graph g(2, false);
  ASSERT_TRUE(g.AddEdge(1, 1).ok());
  auto ds = EdgePairs(g, 2);
  EXPECT_EQ(ds.NumRecords(), 1u);
}

TEST(DatasetsTest, LinksCarryTransitionProbabilities) {
  graph::Graph g(3, true);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  auto ds = Links(g, 2);
  EXPECT_EQ(ds.NumRecords(), 3u);
  double sum_from_0 = 0;
  for (const Record& r : ds.Collect()) {
    if (r[0].AsInt64() == 0) sum_from_0 += r[2].AsDouble();
    if (r[0].AsInt64() == 1) {
      EXPECT_DOUBLE_EQ(r[2].AsDouble(), 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(sum_from_0, 1.0);  // probabilities sum to 1 per source
}

TEST(DatasetsTest, DanglingVerticesOnlyListsSinks) {
  graph::Graph g(4, true);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  auto ds = DanglingVertices(g, 2);
  auto records = ds.CollectSorted();
  ASSERT_EQ(records.size(), 2u);  // 2 and 3 have no out-edges
  EXPECT_EQ(records[0][0].AsInt64(), 2);
  EXPECT_EQ(records[1][0].AsInt64(), 3);
}

TEST(DatasetsTest, InitialRanksUniformAndComplete) {
  graph::Graph g = graph::DemoDirectedGraph();
  auto ds = InitialRanks(g, 4);
  EXPECT_EQ(ds.NumRecords(), static_cast<uint64_t>(g.num_vertices()));
  for (const Record& r : ds.Collect()) {
    EXPECT_DOUBLE_EQ(r[1].AsDouble(), 0.1);
  }
}

TEST(DatasetsTest, PartitionOfVertexMatchesDatasetPlacement) {
  const int parts = 4;
  graph::Graph g = graph::ChainGraph(32);
  auto ds = InitialRanks(g, parts);
  for (int p = 0; p < parts; ++p) {
    for (const Record& r : ds.partition(p)) {
      EXPECT_EQ(PartitionOfVertex(r[0].AsInt64(), parts), p);
    }
  }
}

TEST(DatasetsTest, ToInt64VectorFillsAndValidates) {
  std::vector<Record> records{MakeRecord(int64_t{0}, int64_t{5}),
                              MakeRecord(int64_t{2}, int64_t{7})};
  auto v = ToInt64Vector(records, 4, -1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, (std::vector<int64_t>{5, -1, 7, -1}));
}

TEST(DatasetsTest, ToInt64VectorRejectsOutOfRange) {
  std::vector<Record> records{MakeRecord(int64_t{9}, int64_t{1})};
  EXPECT_FALSE(ToInt64Vector(records, 4, 0).ok());
}

TEST(DatasetsTest, ToInt64VectorRejectsNarrowRecords) {
  std::vector<Record> records{MakeRecord(int64_t{0})};
  EXPECT_FALSE(ToInt64Vector(records, 4, 0).ok());
}

TEST(DatasetsTest, ToDoubleVectorWidensInts) {
  std::vector<Record> records{MakeRecord(int64_t{0}, int64_t{3}),
                              MakeRecord(int64_t{1}, 0.5)};
  auto v = ToDoubleVector(records, 2, 0.0);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ((*v)[0], 3.0);
  EXPECT_DOUBLE_EQ((*v)[1], 0.5);
}

}  // namespace
}  // namespace flinkless::algos
