// Metrics v2: histogram bucketing, sink merge semantics, exporter goldens
// (NDJSON + Prometheus text), ScopedMetricsFile, and the determinism
// contract — a metrics export of a PageRank or Connected Components run is
// byte-identical at any thread count, with and without injected failures
// (DESIGN.md §13).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "algos/connected_components.h"
#include "algos/pagerank.h"
#include "common/rng.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "runtime/metrics.h"
#include "runtime/stable_storage.h"
#include "runtime/thread_pool.h"

namespace flinkless::runtime {
namespace {

// --------------------------------------------------------------- histogram --

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds <= 0; bucket b holds [2^(b-1), 2^b - 1]; the last bucket
  // is the overflow.
  EXPECT_EQ(Histogram::BucketOf(-5), 0);
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketOf(7), 3);
  EXPECT_EQ(Histogram::BucketOf(1024), 11);
  EXPECT_EQ(Histogram::BucketOf(INT64_MAX), Histogram::kNumBuckets - 1);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3);
  EXPECT_EQ(Histogram::BucketUpperBound(11), 2047);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1),
            INT64_MAX);
}

TEST(HistogramTest, ObserveTracksCountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  h.Observe(5);
  h.Observe(1);
  h.Observe(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 106);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.Mean(), 106.0 / 3.0);
}

TEST(HistogramTest, MergeMatchesSequentialObserve) {
  // The fixed bounds make the merge a plain bucket-wise sum: merging two
  // shards must equal observing the union sequentially.
  std::vector<int64_t> a = {0, 1, 3, 900};
  std::vector<int64_t> b = {2, 2, 64, 1 << 20};
  Histogram shard_a, shard_b, sequential;
  for (int64_t v : a) {
    shard_a.Observe(v);
    sequential.Observe(v);
  }
  for (int64_t v : b) {
    shard_b.Observe(v);
    sequential.Observe(v);
  }
  Histogram merged = shard_a;
  merged.MergeFrom(shard_b);
  EXPECT_EQ(merged, sequential);
}

// -------------------------------------------------------------------- sink --

TEST(MetricsSinkTest, CountersMergeAcrossPartitions) {
  MetricsSink sink;
  sink.Count(metric::kExecRecords, 0, 10);
  sink.Count(metric::kExecRecords, 1, 20);
  sink.Count(metric::kExecRecords, 0, 5);
  sink.Count(metric::kCacheHits, -1);

  MetricsSnapshot snap = sink.Collect();
  EXPECT_EQ(snap.Counter(metric::kExecRecords, 0), 15u);
  EXPECT_EQ(snap.Counter(metric::kExecRecords, 1), 20u);
  EXPECT_EQ(snap.CounterTotal(metric::kExecRecords), 35u);
  EXPECT_EQ(snap.CounterTotal(metric::kCacheHits), 1u);
  EXPECT_EQ(snap.CounterTotal("never.recorded"), 0u);
}

TEST(MetricsSinkTest, MergeFoldsLocalHistogram) {
  MetricsSink sink;
  sink.Observe(metric::kHistProbeChain, 1);
  Histogram local;
  local.Observe(2);
  local.Observe(3);
  sink.Merge(metric::kHistProbeChain, local);

  MetricsSnapshot snap = sink.Collect();
  const Histogram* merged = snap.FindHistogram(metric::kHistProbeChain);
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->count(), 3u);
  EXPECT_EQ(merged->sum(), 6);
  EXPECT_EQ(snap.FindHistogram("never.recorded"), nullptr);
}

TEST(MetricsSinkTest, GaugesLastWriteWins) {
  MetricsSink sink;
  sink.SetGauge(metric::kGaugeStateRecords, 0, 1.0);
  sink.SetGauge(metric::kGaugeStateRecords, 0, 7.0);
  sink.SetGauge(metric::kGaugeStateRecords, 1, 2.0);
  MetricsSnapshot snap = sink.Collect();
  EXPECT_DOUBLE_EQ(snap.gauges.at(metric::kGaugeStateRecords).at(0), 7.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at(metric::kGaugeStateRecords).at(1), 2.0);
}

TEST(MetricsSinkTest, ConcurrentCountsMergeDeterministically) {
  // Worker-sharded recording: the merged totals must not depend on which
  // worker recorded what, so a parallel fan-out equals the serial sum.
  MetricsSink sink;
  ThreadPool pool(4);
  ParallelFor(&pool, 64, [&](int i) {
    sink.Count(metric::kShuffleFanout, i % 4, static_cast<uint64_t>(i));
    sink.Observe(metric::kHistShuffleFanout, i);
  });
  MetricsSnapshot snap = sink.Collect();
  uint64_t expected_total = 0;
  for (int i = 0; i < 64; ++i) expected_total += static_cast<uint64_t>(i);
  EXPECT_EQ(snap.CounterTotal(metric::kShuffleFanout), expected_total);
  const Histogram* h = snap.FindHistogram(metric::kHistShuffleFanout);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 64u);
}

// --------------------------------------------------------- exporter goldens --

/// One iteration + one two-partition counter + one gauge + one histogram:
/// small enough to pin the exact export bytes.
void FillGoldenData(MetricsRegistry* registry, MetricsSink* sink) {
  IterationStats it;
  it.iteration = 1;
  it.records_processed = 10;
  it.messages_shuffled = 4;
  it.sim_time_ns = 30;
  it.sim_time_by_charge[static_cast<int>(Charge::kCompute)] = 20;
  it.sim_time_by_charge[static_cast<int>(Charge::kNetwork)] = 10;
  it.gauges["convergence_metric"] = 0.5;
  registry->RecordIteration(it);
  registry->IncrCounter("legacy_counter", 3);

  sink->Count(metric::kExecRecords, 0, 6);
  sink->Count(metric::kExecRecords, 1, 4);
  sink->SetGauge(metric::kGaugeStateRecords, 0, 6.0);
  sink->Observe(metric::kHistBatchRows, 1);
  sink->Observe(metric::kHistBatchRows, 6);
}

TEST(MetricsExportTest, NdjsonGolden) {
  MetricsRegistry registry;
  MetricsSink sink;
  FillGoldenData(&registry, &sink);
  std::ostringstream out;
  ExportMetricsNdjson(registry, sink.Collect(), out);
  const std::string expected =
      "{\"kind\": \"iteration\", \"iteration\": 1, \"records_processed\": 10"
      ", \"messages_shuffled\": 4, \"bytes_checkpointed\": 0"
      ", \"failure_injected\": false, \"sim_time_ns\": 30"
      ", \"sim_time_by_charge\": {\"compute\": 20, \"network\": 10, "
      "\"checkpoint_io\": 0, \"recovery\": 0}, \"spills\": 0, "
      "\"unspills\": 0, \"spilled_bytes\": 0, \"peak_resident_bytes\": 0"
      ", \"gauges\": {\"convergence_metric\": 0.5}}\n"
      "{\"kind\": \"counter\", \"name\": \"exec.records\", \"partition\": 0, "
      "\"value\": 6}\n"
      "{\"kind\": \"counter\", \"name\": \"exec.records\", \"partition\": 1, "
      "\"value\": 4}\n"
      "{\"kind\": \"counter_total\", \"name\": \"exec.records\", \"value\": "
      "10}\n"
      "{\"kind\": \"counter\", \"name\": \"legacy_counter\", \"partition\": "
      "-1, \"value\": 3}\n"
      "{\"kind\": \"counter_total\", \"name\": \"legacy_counter\", "
      "\"value\": 3}\n"
      "{\"kind\": \"gauge\", \"name\": \"state.records\", \"partition\": 0, "
      "\"value\": 6}\n"
      "{\"kind\": \"histogram\", \"name\": \"exec.batch_rows\", \"count\": "
      "2, \"sum\": 7, \"min\": 1, \"max\": 6, \"buckets\": [{\"le\": 1, "
      "\"count\": 1}, {\"le\": 7, \"count\": 1}]}\n"
      "{\"kind\": \"meta\", \"iterations\": 1, \"counter_families\": 2, "
      "\"gauge_families\": 1, \"histogram_families\": 1}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(MetricsExportTest, PrometheusGolden) {
  MetricsRegistry registry;
  MetricsSink sink;
  FillGoldenData(&registry, &sink);
  std::ostringstream out;
  ExportMetricsPrometheus(registry, sink.Collect(), out);
  const std::string expected =
      "# TYPE flinkless_exec_records counter\n"
      "flinkless_exec_records{partition=\"0\"} 6\n"
      "flinkless_exec_records{partition=\"1\"} 4\n"
      "flinkless_exec_records 10\n"
      "# TYPE flinkless_legacy_counter counter\n"
      "flinkless_legacy_counter 3\n"
      "# TYPE flinkless_state_records gauge\n"
      "flinkless_state_records{partition=\"0\"} 6\n"
      "# TYPE flinkless_exec_batch_rows histogram\n"
      "flinkless_exec_batch_rows_bucket{le=\"1\"} 1\n"
      "flinkless_exec_batch_rows_bucket{le=\"7\"} 2\n"
      "flinkless_exec_batch_rows_bucket{le=\"+Inf\"} 2\n"
      "flinkless_exec_batch_rows_sum 7\n"
      "flinkless_exec_batch_rows_count 2\n"
      "# TYPE flinkless_sim_time_ns counter\n"
      "flinkless_sim_time_ns{charge=\"compute\"} 20\n"
      "flinkless_sim_time_ns{charge=\"network\"} 10\n"
      "flinkless_sim_time_ns{charge=\"checkpoint_io\"} 0\n"
      "flinkless_sim_time_ns{charge=\"recovery\"} 0\n"
      "flinkless_sim_time_ns 30\n"
      "# TYPE flinkless_iterations_total counter\n"
      "flinkless_iterations_total 1\n"
      "# TYPE flinkless_messages_total counter\n"
      "flinkless_messages_total 4\n"
      "# TYPE flinkless_records_total counter\n"
      "flinkless_records_total 10\n"
      "# TYPE flinkless_checkpoint_bytes_total counter\n"
      "flinkless_checkpoint_bytes_total 0\n";
  EXPECT_EQ(out.str(), expected);
}

// ------------------------------------------------------- end-to-end + files --

struct AlgoExports {
  std::string pr_ndjson;
  std::string pr_prom;
  std::string cc_ndjson;
  std::string cc_prom;
};

/// Runs PageRank and Connected Components with a metrics sink installed and
/// returns both exports for both jobs. The inputs are fixed; only
/// `num_threads` and `with_failures` vary.
AlgoExports RunBothAlgosWithMetrics(int num_threads, bool with_failures) {
  AlgoExports out;
  Rng rng(77);
  graph::Graph directed = graph::Rmat(8, 6, &rng);  // 256 vertices

  {
    runtime::SimClock clock;
    runtime::CostModel costs;
    MetricsRegistry registry;
    MetricsSink sink;
    runtime::StableStorage storage(&clock, &costs);
    runtime::FailureSchedule failures(
        with_failures ? std::vector<runtime::FailureEvent>{{3, {1}}}
                      : std::vector<runtime::FailureEvent>{});
    iteration::JobEnv env;
    env.clock = &clock;
    env.costs = &costs;
    env.metrics = &registry;
    env.metrics_sink = &sink;
    env.failures = &failures;
    env.storage = &storage;
    env.job_id = "metrics-pr";

    algos::PageRankOptions options;
    options.num_partitions = 4;
    options.num_threads = num_threads;
    options.max_iterations = 8;
    algos::FixRanksCompensation fix(directed.num_vertices());
    core::OptimisticRecoveryPolicy policy(&fix);
    auto result = algos::RunPageRank(directed, options, env, &policy);
    EXPECT_TRUE(result.ok()) << result.status().ToString();

    MetricsSnapshot snap = sink.Collect();
    std::ostringstream ndjson, prom;
    ExportMetricsNdjson(registry, snap, ndjson);
    ExportMetricsPrometheus(registry, snap, prom);
    out.pr_ndjson = ndjson.str();
    out.pr_prom = prom.str();
  }

  {
    graph::Graph undirected(directed.num_vertices(), /*directed=*/false);
    for (const graph::Edge& e : directed.edges()) {
      Status s = undirected.AddEdge(e.src, e.dst);
      EXPECT_TRUE(s.ok());
    }
    runtime::SimClock clock;
    runtime::CostModel costs;
    MetricsRegistry registry;
    MetricsSink sink;
    runtime::StableStorage storage(&clock, &costs);
    runtime::FailureSchedule failures(
        with_failures ? std::vector<runtime::FailureEvent>{{2, {0}}}
                      : std::vector<runtime::FailureEvent>{});
    iteration::JobEnv env;
    env.clock = &clock;
    env.costs = &costs;
    env.metrics = &registry;
    env.metrics_sink = &sink;
    env.failures = &failures;
    env.storage = &storage;
    env.job_id = "metrics-cc";

    algos::ConnectedComponentsOptions options;
    options.num_partitions = 4;
    options.num_threads = num_threads;
    algos::FixComponentsCompensation fix(&undirected);
    core::OptimisticRecoveryPolicy policy(&fix);
    auto result =
        algos::RunConnectedComponents(undirected, options, env, &policy);
    EXPECT_TRUE(result.ok()) << result.status().ToString();

    MetricsSnapshot snap = sink.Collect();
    std::ostringstream ndjson, prom;
    ExportMetricsNdjson(registry, snap, ndjson);
    ExportMetricsPrometheus(registry, snap, prom);
    out.cc_ndjson = ndjson.str();
    out.cc_prom = prom.str();
  }
  return out;
}

class MetricsDeterminismTest : public ::testing::TestWithParam<bool> {};

TEST_P(MetricsDeterminismTest, ExportsByteIdenticalAcrossThreadCounts) {
  const bool with_failures = GetParam();
  AlgoExports serial = RunBothAlgosWithMetrics(1, with_failures);

  // The serial run must actually have recorded the hot-path families.
  EXPECT_NE(serial.pr_ndjson.find("\"exec.records\""), std::string::npos);
  EXPECT_NE(serial.pr_ndjson.find("\"shuffle.fanout\""), std::string::npos);
  if (with_failures) {
    EXPECT_NE(serial.pr_ndjson.find("\"compensation.records\""),
              std::string::npos);
    EXPECT_NE(serial.cc_ndjson.find("\"recovery.partitions_lost\""),
              std::string::npos);
  }

  for (int threads : {2, 8}) {
    AlgoExports parallel = RunBothAlgosWithMetrics(threads, with_failures);
    EXPECT_EQ(parallel.pr_ndjson, serial.pr_ndjson) << "threads=" << threads;
    EXPECT_EQ(parallel.pr_prom, serial.pr_prom) << "threads=" << threads;
    EXPECT_EQ(parallel.cc_ndjson, serial.cc_ndjson) << "threads=" << threads;
    EXPECT_EQ(parallel.cc_prom, serial.cc_prom) << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(FailuresOnOff, MetricsDeterminismTest,
                         ::testing::Values(false, true));

TEST(MetricsFileTest, MetricsPathOptionWritesExport) {
  // The algo-level metrics_path option (ScopedMetricsFile): the file must
  // exist after the run and carry the counter families; a .prom path
  // selects the Prometheus exposition.
  Rng rng(5);
  graph::Graph g = graph::Rmat(7, 5, &rng);
  for (const char* name : {"metrics_test_out.ndjson", "metrics_test_out.prom"}) {
    runtime::SimClock clock;
    runtime::CostModel costs;
    MetricsRegistry registry;
    runtime::StableStorage storage(&clock, &costs);
    runtime::FailureSchedule failures(std::vector<runtime::FailureEvent>{});
    iteration::JobEnv env;
    env.clock = &clock;
    env.costs = &costs;
    env.metrics = &registry;
    env.failures = &failures;
    env.storage = &storage;

    algos::PageRankOptions options;
    options.num_partitions = 2;
    options.max_iterations = 3;
    options.metrics_path = name;
    core::NoFaultTolerancePolicy policy;
    auto result = algos::RunPageRank(g, options, env, &policy);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    std::ifstream in(name);
    ASSERT_TRUE(in.good()) << name;
    std::stringstream content;
    content << in.rdbuf();
    const bool prom = std::string(name).ends_with(".prom");
    if (prom) {
      EXPECT_NE(content.str().find("flinkless_exec_records"),
                std::string::npos);
    } else {
      EXPECT_NE(content.str().find("\"counter_total\""), std::string::npos);
    }
    std::remove(name);
  }
}

}  // namespace
}  // namespace flinkless::runtime
