// Connected Components on the dataflow engine: plan structure (Figure 1a),
// correctness against union-find ground truth across graphs and degrees of
// parallelism, the FixComponents compensation in isolation, and the full
// failure/recovery behaviours the demo shows (§3.2).

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "algos/connected_components.h"
#include "algos/datasets.h"
#include "algos/refreshers.h"
#include "common/rng.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "runtime/stable_storage.h"

namespace flinkless::algos {
namespace {

using dataflow::MakeRecord;
using dataflow::Record;

ConnectedComponentsOptions Options(int parts) {
  ConnectedComponentsOptions options;
  options.num_partitions = parts;
  return options;
}

TEST(CcPlanTest, MirrorsFigure1aOperators) {
  dataflow::Plan plan = BuildConnectedComponentsPlan();
  EXPECT_TRUE(plan.Validate().ok());
  std::string text = plan.Explain();
  EXPECT_NE(text.find("Join 'label-to-neighbors'"), std::string::npos);
  EXPECT_NE(text.find("ReduceByKey 'candidate-label'"), std::string::npos);
  EXPECT_NE(text.find("Join 'label-update'"), std::string::npos);
  EXPECT_NE(text.find("output 'delta'"), std::string::npos);
  EXPECT_NE(text.find("output 'next_workset'"), std::string::npos);
  auto sources = plan.SourceNames();
  EXPECT_EQ(sources,
            (std::vector<std::string>{"workset", "edges", "solution"}));
}

TEST(CcTest, FailureFreeMatchesGroundTruthOnDemoGraph) {
  graph::Graph g = graph::DemoGraph();
  core::NoFaultTolerancePolicy policy;
  auto result = RunConnectedComponents(g, Options(4), {}, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->labels, graph::ReferenceConnectedComponents(g));
  EXPECT_EQ(result->failures_recovered, 0);
}

TEST(CcTest, IsolatedVerticesKeepOwnLabels) {
  graph::Graph g(5, false);
  ASSERT_TRUE(g.AddEdge(1, 3).ok());
  core::NoFaultTolerancePolicy policy;
  auto result = RunConnectedComponents(g, Options(2), {}, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->labels, (std::vector<int64_t>{0, 1, 2, 1, 4}));
}

TEST(CcTest, SingleVertexGraph) {
  graph::Graph g(1, false);
  core::NoFaultTolerancePolicy policy;
  auto result = RunConnectedComponents(g, Options(2), {}, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->labels, std::vector<int64_t>{0});
}

TEST(CcTest, ChainTakesLinearIterations) {
  // Worst case for diffusion: the min label crawls one hop per iteration.
  graph::Graph g = graph::ChainGraph(12);
  core::NoFaultTolerancePolicy policy;
  auto result = RunConnectedComponents(g, Options(3), {}, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->labels, std::vector<int64_t>(12, 0));
  EXPECT_GE(result->iterations, 11);
}

// Correctness must hold for every parallelism and graph shape.
class CcParallelismTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CcParallelismTest, MatchesUnionFindOnRandomGraph) {
  auto [parts, seed] = GetParam();
  Rng rng(seed);
  graph::Graph g = graph::ErdosRenyi(60, 0.03, &rng);
  core::NoFaultTolerancePolicy policy;
  auto result = RunConnectedComponents(g, Options(parts), {}, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->labels, graph::ReferenceConnectedComponents(g));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CcParallelismTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(7, 21, 42)));

// ------------------------------------------------- compensation function --

TEST(FixComponentsTest, RebuildsLostPartitionWithInitialLabels) {
  graph::Graph g = graph::DemoGraph();
  const int parts = 4;
  // Build a converged solution (all labels correct).
  auto truth = graph::ReferenceConnectedComponents(g);
  std::vector<Record> converged;
  for (int64_t v = 0; v < g.num_vertices(); ++v) {
    converged.push_back(MakeRecord(v, truth[v]));
  }
  iteration::DeltaState state(
      iteration::SolutionSet::FromRecords(converged, {0}, parts),
      dataflow::PartitionedDataset(parts));

  FixComponentsCompensation compensation(&g);
  iteration::IterationContext ctx;
  ctx.num_partitions = parts;
  ASSERT_TRUE(compensation.Compensate(ctx, &state, {1}).ok());

  // Lost partition entries are back at (v, v); survivors untouched.
  for (int64_t v = 0; v < g.num_vertices(); ++v) {
    const Record* entry = state.solution().Lookup(MakeRecord(v));
    ASSERT_NE(entry, nullptr) << "vertex " << v;
    if (PartitionOfVertex(v, parts) == 1) {
      EXPECT_EQ((*entry)[1].AsInt64(), v);
    } else {
      EXPECT_EQ((*entry)[1].AsInt64(), truth[v]);
    }
  }
  // The recovery workset contains every restored vertex and its neighbors.
  std::set<int64_t> queued;
  for (int p = 0; p < parts; ++p) {
    for (const Record& r : state.workset().partition(p)) {
      queued.insert(r[0].AsInt64());
    }
  }
  for (int64_t v = 0; v < g.num_vertices(); ++v) {
    if (PartitionOfVertex(v, parts) == 1) {
      EXPECT_TRUE(queued.count(v)) << "restored vertex " << v;
      for (int64_t u : g.Neighbors(v)) {
        EXPECT_TRUE(queued.count(u)) << "neighbor " << u;
      }
    }
  }
}

TEST(FixComponentsTest, WorksetDeduplicatesAgainstSurvivors) {
  graph::Graph g = graph::ChainGraph(8);
  const int parts = 2;
  std::vector<Record> labels = InitialLabels(g);
  iteration::DeltaState state(
      iteration::SolutionSet::FromRecords(labels, {0}, parts),
      dataflow::PartitionedDataset::HashPartitioned(labels, {0}, parts));
  uint64_t workset_before = state.workset().NumRecords();

  FixComponentsCompensation compensation(&g);
  iteration::IterationContext ctx;
  ctx.num_partitions = parts;
  state.ClearPartition(0);
  ASSERT_TRUE(compensation.Compensate(ctx, &state, {0}).ok());

  // No vertex may appear twice in the workset.
  std::set<int64_t> seen;
  for (int p = 0; p < parts; ++p) {
    for (const Record& r : state.workset().partition(p)) {
      EXPECT_TRUE(seen.insert(r[0].AsInt64()).second)
          << "duplicate workset entry for " << r[0].AsInt64();
    }
  }
  EXPECT_LE(state.workset().NumRecords(), workset_before);
}

// --------------------------------------------------- recovery end-to-end --

class CcRecoveryTest : public ::testing::TestWithParam<int> {};

TEST_P(CcRecoveryTest, OptimisticRecoveryConvergesToTruth) {
  const int failing_partition = GetParam();
  Rng rng(failing_partition + 100);
  graph::Graph g = graph::PreferentialAttachment(80, 2, &rng);
  auto truth = graph::ReferenceConnectedComponents(g);

  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{2, {failing_partition}}});
  iteration::JobEnv env;
  env.failures = &failures;
  env.job_id = "cc-recovery";

  FixComponentsCompensation compensation(&g);
  core::OptimisticRecoveryPolicy policy(&compensation);
  auto result = RunConnectedComponents(g, Options(4), env, &policy, &truth);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->failures_recovered, 1);
  EXPECT_EQ(result->labels, truth);
}

INSTANTIATE_TEST_SUITE_P(Partitions, CcRecoveryTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(CcRecoveryTest2, MultipleFailuresStillConverge) {
  Rng rng(11);
  graph::Graph g = graph::ErdosRenyi(70, 0.05, &rng);
  auto truth = graph::ReferenceConnectedComponents(g);

  runtime::FailureSchedule failures(std::vector<runtime::FailureEvent>{
      {1, {0}}, {2, {1, 2}}, {4, {0, 3}}});
  iteration::JobEnv env;
  env.failures = &failures;

  FixComponentsCompensation compensation(&g);
  core::OptimisticRecoveryPolicy policy(&compensation);
  auto result = RunConnectedComponents(g, Options(4), env, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->failures_recovered, 3);
  EXPECT_EQ(result->labels, truth);
}

TEST(CcRecoveryTest2, RollbackAlsoConvergesToTruth) {
  graph::Graph g = graph::DemoGraph();
  auto truth = graph::ReferenceConnectedComponents(g);
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{2, {0}}});
  runtime::StableStorage storage(nullptr, nullptr);
  iteration::JobEnv env;
  env.failures = &failures;
  env.storage = &storage;

  core::CheckpointRollbackPolicy policy(1);
  auto result = RunConnectedComponents(g, Options(4), env, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->labels, truth);
  EXPECT_GT(storage.bytes_written(), 0u);
}

TEST(CcRecoveryTest2, DeltaCheckpointPolicyConvergesToTruth) {
  Rng rng(53);
  graph::Graph g = graph::PreferentialAttachment(100, 2, &rng);
  auto truth = graph::ReferenceConnectedComponents(g);
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{3, {0, 1}}});
  runtime::StableStorage storage(nullptr, nullptr);
  iteration::JobEnv env;
  env.failures = &failures;
  env.storage = &storage;

  core::DeltaCheckpointPolicy policy(1);
  auto result = RunConnectedComponents(g, Options(4), env, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->labels, truth);
  EXPECT_GT(storage.bytes_written(), 0u);
}

TEST(CcRecoveryTest2, ConfinedRollbackConvergesToTruth) {
  Rng rng(59);
  graph::Graph g = graph::PreferentialAttachment(120, 2, &rng);
  auto truth = graph::ReferenceConnectedComponents(g);
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{2, {1}}, {4, {0, 3}}});
  runtime::StableStorage storage(nullptr, nullptr);
  iteration::JobEnv env;
  env.failures = &failures;
  env.storage = &storage;

  core::ConfinedRollbackPolicy policy(
      2, MakeNeighborhoodRefresher(&g));
  auto result = RunConnectedComponents(g, Options(4), env, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->labels, truth);
  EXPECT_EQ(result->failures_recovered, 2);
}

TEST(CcRecoveryTest2, RestartAlsoConvergesToTruth) {
  graph::Graph g = graph::DemoGraph();
  auto truth = graph::ReferenceConnectedComponents(g);
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{2, {1}}});
  iteration::JobEnv env;
  env.failures = &failures;

  core::RestartPolicy policy;
  auto result = RunConnectedComponents(g, Options(4), env, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->labels, truth);
}

TEST(CcRecoveryTest2, NoFtAborts) {
  graph::Graph g = graph::DemoGraph();
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{1, {0}}});
  iteration::JobEnv env;
  env.failures = &failures;
  core::NoFaultTolerancePolicy policy;
  auto result = RunConnectedComponents(g, Options(4), env, &policy);
  EXPECT_TRUE(result.status().IsDataLoss());
}

TEST(CcRecoveryTest2, FailureCausesConvergedVerticesPlummet) {
  // The §3.2 plot: converged-vertex count drops at the failure iteration
  // and messages increase afterwards.
  Rng rng(13);
  graph::Graph g = graph::PreferentialAttachment(120, 2, &rng);
  auto truth = graph::ReferenceConnectedComponents(g);

  // Failure-free baseline series.
  runtime::MetricsRegistry baseline_metrics;
  iteration::JobEnv baseline_env;
  baseline_env.metrics = &baseline_metrics;
  core::NoFaultTolerancePolicy noft;
  ASSERT_TRUE(
      RunConnectedComponents(g, Options(4), baseline_env, &noft, &truth)
          .ok());

  const int fail_iter = 3;
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{fail_iter, {0}}});
  runtime::MetricsRegistry metrics;
  iteration::JobEnv env;
  env.failures = &failures;
  env.metrics = &metrics;
  FixComponentsCompensation compensation(&g);
  core::OptimisticRecoveryPolicy policy(&compensation);
  auto result = RunConnectedComponents(g, Options(4), env, &policy, &truth);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->labels, truth);

  auto converged = metrics.GaugeSeries("converged_vertices");
  auto baseline = baseline_metrics.GaugeSeries("converged_vertices");
  ASSERT_GT(converged.size(), static_cast<size_t>(fail_iter));
  // Plummet: the failure iteration has strictly fewer converged vertices
  // than the same iteration of the failure-free run.
  EXPECT_LT(converged[fail_iter - 1], baseline[fail_iter - 1]);
  // Extra effort: recovery costs extra messages overall.
  EXPECT_GT(metrics.TotalMessages(), baseline_metrics.TotalMessages());
  // And the job runs longer than the failure-free one.
  EXPECT_GE(converged.size(), baseline.size());
}

// -------------------------------------------------------- snapshot hooks --

TEST(CcSnapshotTest, FramesAreCompleteAndMarkFailures) {
  graph::Graph g = graph::DemoGraph();
  auto truth = graph::ReferenceConnectedComponents(g);
  const int fail_iter = 2;
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{fail_iter, {0}}});
  iteration::JobEnv env;
  env.failures = &failures;
  FixComponentsCompensation compensation(&g);
  core::OptimisticRecoveryPolicy policy(&compensation);

  struct Frame {
    int iteration;
    std::vector<int64_t> labels;
    std::vector<int> lost;
    bool failure;
    int64_t converged;
  };
  std::vector<Frame> frames;
  auto result = RunConnectedComponentsWithSnapshots(
      g, Options(4), env, &policy, &truth,
      [&](int iteration, const std::vector<int64_t>& labels,
          const std::vector<int>& lost, bool failure, int64_t /*messages*/,
          int64_t converged) {
        frames.push_back({iteration, labels, lost, failure, converged});
      });
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(static_cast<int>(frames.size()), result->iterations);

  for (const Frame& frame : frames) {
    // Every vertex present in every frame (compensation keeps the solution
    // set complete).
    ASSERT_EQ(frame.labels.size(), static_cast<size_t>(g.num_vertices()));
    for (int64_t label : frame.labels) EXPECT_GE(label, 0);
    if (frame.iteration == fail_iter) {
      EXPECT_TRUE(frame.failure);
      EXPECT_EQ(frame.lost, std::vector<int>{0});
    } else {
      EXPECT_FALSE(frame.failure);
      EXPECT_TRUE(frame.lost.empty());
    }
    // The converged gauge agrees with a recount from the snapshot itself.
    int64_t recount = 0;
    for (int64_t v = 0; v < g.num_vertices(); ++v) {
      if (frame.labels[v] == truth[v]) ++recount;
    }
    EXPECT_EQ(frame.converged, recount) << "iteration " << frame.iteration;
  }
  // The last frame is the final answer.
  EXPECT_EQ(frames.back().labels, result->labels);
}

// ---------------------------------------------------------- bulk variant --

TEST(CcBulkTest, AgreesWithDeltaVariant) {
  Rng rng(17);
  graph::Graph g = graph::ErdosRenyi(50, 0.05, &rng);
  core::NoFaultTolerancePolicy policy;
  auto bulk = RunConnectedComponentsBulk(g, Options(4), {}, &policy);
  auto delta = RunConnectedComponents(g, Options(4), {}, &policy);
  ASSERT_TRUE(bulk.ok());
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(bulk->labels, delta->labels);
  EXPECT_TRUE(bulk->converged);
}

TEST(CcBulkTest, DeltaProcessesFewerRecords) {
  // The reason Flink has delta iterations (§2.1): converged parts stop
  // being recomputed.
  Rng rng(19);
  graph::Graph g = graph::PreferentialAttachment(150, 2, &rng);

  runtime::MetricsRegistry bulk_metrics, delta_metrics;
  iteration::JobEnv bulk_env, delta_env;
  bulk_env.metrics = &bulk_metrics;
  delta_env.metrics = &delta_metrics;
  core::NoFaultTolerancePolicy policy;
  ASSERT_TRUE(RunConnectedComponentsBulk(g, Options(4), bulk_env, &policy)
                  .ok());
  ASSERT_TRUE(
      RunConnectedComponents(g, Options(4), delta_env, &policy).ok());
  EXPECT_LT(delta_metrics.TotalRecords(), bulk_metrics.TotalRecords());
}

TEST(CcBulkTest, OptimisticRecoveryOnBulkVariant) {
  graph::Graph g = graph::DemoGraph();
  auto truth = graph::ReferenceConnectedComponents(g);
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{2, {0}}});
  iteration::JobEnv env;
  env.failures = &failures;
  FixComponentsCompensation compensation(&g);
  core::OptimisticRecoveryPolicy policy(&compensation);
  auto result = RunConnectedComponentsBulk(g, Options(4), env, &policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->labels, truth);
}

}  // namespace
}  // namespace flinkless::algos
