// Executor semantics: every operator against hand-computed expectations,
// message accounting, cost charging, and the partition-independence
// property (the same plan gives the same logical result under any degree of
// parallelism — the invariant that makes failure experiments comparable).

#include <gtest/gtest.h>

#include <algorithm>

#include "dataflow/executor.h"

namespace flinkless::dataflow {
namespace {

PartitionedDataset KeyValues(std::vector<std::pair<int64_t, int64_t>> pairs,
                             int parts) {
  std::vector<Record> records;
  for (auto [k, v] : pairs) records.push_back(MakeRecord(k, v));
  return PartitionedDataset::HashPartitioned(std::move(records), {0}, parts);
}

std::vector<Record> SortedOut(
    const std::map<std::string, PartitionedDataset>& outs,
    const std::string& name) {
  auto it = outs.find(name);
  EXPECT_NE(it, outs.end());
  return it->second.CollectSorted();
}

class ExecutorTest : public ::testing::Test {
 protected:
  static constexpr int kParts = 4;
  Executor executor_{ExecOptions{kParts, nullptr, nullptr}};
};

TEST_F(ExecutorTest, SourcePassesBindingThrough) {
  Plan plan;
  auto src = plan.Source("in");
  plan.Output(src, "out");
  auto in = KeyValues({{1, 10}, {2, 20}}, kParts);
  auto outs = executor_.Execute(plan, {{"in", &in}}, nullptr);
  ASSERT_TRUE(outs.ok());
  EXPECT_EQ(SortedOut(*outs, "out"),
            (std::vector<Record>{MakeRecord(int64_t{1}, int64_t{10}),
                                 MakeRecord(int64_t{2}, int64_t{20})}));
}

TEST_F(ExecutorTest, MissingBindingIsNotFound) {
  Plan plan;
  plan.Output(plan.Source("in"), "out");
  auto outs = executor_.Execute(plan, {}, nullptr);
  EXPECT_TRUE(outs.status().IsNotFound());
}

TEST_F(ExecutorTest, PartitionCountMismatchRejected) {
  Plan plan;
  plan.Output(plan.Source("in"), "out");
  auto in = KeyValues({{1, 1}}, kParts + 1);
  auto outs = executor_.Execute(plan, {{"in", &in}}, nullptr);
  EXPECT_EQ(outs.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExecutorTest, MapTransformsEveryRecord) {
  Plan plan;
  auto src = plan.Source("in");
  auto doubled = plan.Map(
      src,
      [](const Record& r) {
        return MakeRecord(r[0].AsInt64(), r[1].AsInt64() * 2);
      },
      "double");
  plan.Output(doubled, "out");
  auto in = KeyValues({{1, 10}, {2, 20}, {3, 30}}, kParts);
  ExecStats stats;
  auto outs = executor_.Execute(plan, {{"in", &in}}, &stats);
  ASSERT_TRUE(outs.ok());
  auto sorted = SortedOut(*outs, "out");
  EXPECT_EQ(sorted[0][1].AsInt64(), 20);
  EXPECT_EQ(stats.records_processed, 3u);
  EXPECT_EQ(stats.messages_shuffled, 0u);  // map is partition-local
  EXPECT_EQ(stats.node_output_counts.at("double"), 3u);
}

TEST_F(ExecutorTest, FlatMapCanExplodeAndDrop) {
  Plan plan;
  auto src = plan.Source("in");
  auto exploded = plan.FlatMap(
      src,
      [](const Record& r, std::vector<Record>* out) {
        for (int64_t i = 0; i < r[1].AsInt64(); ++i) {
          out->push_back(MakeRecord(r[0].AsInt64(), i));
        }
      },
      "explode");
  plan.Output(exploded, "out");
  auto in = KeyValues({{1, 3}, {2, 0}}, kParts);  // key 2 yields nothing
  auto outs = executor_.Execute(plan, {{"in", &in}}, nullptr);
  ASSERT_TRUE(outs.ok());
  EXPECT_EQ(SortedOut(*outs, "out").size(), 3u);
}

TEST_F(ExecutorTest, FilterKeepsMatching) {
  Plan plan;
  auto src = plan.Source("in");
  auto kept = plan.Filter(
      src, [](const Record& r) { return r[1].AsInt64() >= 20; }, "f");
  plan.Output(kept, "out");
  auto in = KeyValues({{1, 10}, {2, 20}, {3, 30}}, kParts);
  auto outs = executor_.Execute(plan, {{"in", &in}}, nullptr);
  ASSERT_TRUE(outs.ok());
  EXPECT_EQ(SortedOut(*outs, "out").size(), 2u);
}

TEST_F(ExecutorTest, ProjectReordersColumns) {
  Plan plan;
  auto src = plan.Source("in");
  auto projected = plan.Project(src, {1, 0}, "p");
  plan.Output(projected, "out");
  auto in = KeyValues({{1, 10}}, kParts);
  auto outs = executor_.Execute(plan, {{"in", &in}}, nullptr);
  ASSERT_TRUE(outs.ok());
  EXPECT_EQ(SortedOut(*outs, "out")[0],
            MakeRecord(int64_t{10}, int64_t{1}));
}

TEST_F(ExecutorTest, ProjectOutOfRangeColumnFails) {
  Plan plan;
  auto src = plan.Source("in");
  plan.Output(plan.Project(src, {5}, "p"), "out");
  auto in = KeyValues({{1, 10}}, kParts);
  EXPECT_EQ(executor_.Execute(plan, {{"in", &in}}, nullptr).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(ExecutorTest, ReduceByKeySums) {
  Plan plan;
  auto src = plan.Source("in");
  auto summed = plan.ReduceByKey(
      src, {0},
      [](const Record& a, const Record& b) {
        return MakeRecord(a[0].AsInt64(), a[1].AsInt64() + b[1].AsInt64());
      },
      "sum");
  plan.Output(summed, "out");
  auto in = KeyValues({{1, 1}, {1, 2}, {1, 3}, {2, 10}, {2, 20}, {3, 5}},
                      kParts);
  auto outs = executor_.Execute(plan, {{"in", &in}}, nullptr);
  ASSERT_TRUE(outs.ok());
  EXPECT_EQ(SortedOut(*outs, "out"),
            (std::vector<Record>{MakeRecord(int64_t{1}, int64_t{6}),
                                 MakeRecord(int64_t{2}, int64_t{30}),
                                 MakeRecord(int64_t{3}, int64_t{5})}));
}

TEST_F(ExecutorTest, ReduceOutputIsPartitionedByKey) {
  Plan plan;
  auto src = plan.Source("in");
  auto reduced = plan.ReduceByKey(
      src, {0}, [](const Record& a, const Record&) { return a; }, "first");
  plan.Output(reduced, "out");
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int64_t i = 0; i < 100; ++i) pairs.push_back({i % 10, i});
  auto in = PartitionedDataset::RoundRobin(
      [&] {
        std::vector<Record> records;
        for (auto [k, v] : pairs) records.push_back(MakeRecord(k, v));
        return records;
      }(),
      kParts);
  auto outs = executor_.Execute(plan, {{"in", &in}}, nullptr);
  ASSERT_TRUE(outs.ok());
  EXPECT_TRUE(outs->at("out").IsPartitionedBy({0}));
}

TEST_F(ExecutorTest, CombinerChangingKeyIsInternalError) {
  Plan plan;
  auto src = plan.Source("in");
  auto bad = plan.ReduceByKey(
      src, {0},
      [](const Record& a, const Record& b) {
        return MakeRecord(a[0].AsInt64() + 1000,
                          a[1].AsInt64() + b[1].AsInt64());
      },
      "bad", /*pre_combine=*/false);
  plan.Output(bad, "out");
  // Two records with the same key forced into the same group.
  auto in = KeyValues({{1, 1}, {1, 2}}, kParts);
  auto outs = executor_.Execute(plan, {{"in", &in}}, nullptr);
  EXPECT_EQ(outs.status().code(), StatusCode::kInternal);
}

TEST_F(ExecutorTest, PreCombineReducesMessages) {
  // 100 records, only 2 keys: with a combiner each source partition sends at
  // most 2 records; without, everything shuffles raw.
  std::vector<Record> records;
  for (int64_t i = 0; i < 100; ++i) records.push_back(MakeRecord(i % 2, i));
  auto in = PartitionedDataset::RoundRobin(records, kParts);

  auto run = [&](bool pre_combine) {
    Plan plan;
    auto src = plan.Source("in");
    auto reduced = plan.ReduceByKey(
        src, {0},
        [](const Record& a, const Record& b) {
          return MakeRecord(a[0].AsInt64(), a[1].AsInt64() + b[1].AsInt64());
        },
        "sum", pre_combine);
    plan.Output(reduced, "out");
    ExecStats stats;
    auto outs = executor_.Execute(plan, {{"in", &in}}, &stats);
    EXPECT_TRUE(outs.ok());
    return std::make_pair(stats.messages_shuffled,
                          outs->at("out").CollectSorted());
  };

  auto [with_combiner, result_a] = run(true);
  auto [without_combiner, result_b] = run(false);
  EXPECT_EQ(result_a, result_b);  // same answer
  EXPECT_LT(with_combiner, without_combiner);
  EXPECT_LE(with_combiner, 2u * kParts);
}

TEST_F(ExecutorTest, GroupReduceSeesWholeGroup) {
  Plan plan;
  auto src = plan.Source("in");
  auto counted = plan.GroupReduceByKey(
      src, {0},
      [](const Record& key, const std::vector<Record>& group) {
        return MakeRecord(key[0].AsInt64(),
                          static_cast<int64_t>(group.size()));
      },
      "count");
  plan.Output(counted, "out");
  auto in = KeyValues({{1, 0}, {1, 0}, {1, 0}, {2, 0}}, kParts);
  auto outs = executor_.Execute(plan, {{"in", &in}}, nullptr);
  ASSERT_TRUE(outs.ok());
  EXPECT_EQ(SortedOut(*outs, "out"),
            (std::vector<Record>{MakeRecord(int64_t{1}, int64_t{3}),
                                 MakeRecord(int64_t{2}, int64_t{1})}));
}

TEST_F(ExecutorTest, JoinMatchesEqualKeysOnly) {
  Plan plan;
  auto left = plan.Source("l");
  auto right = plan.Source("r");
  auto joined = plan.Join(
      left, right, {0}, {0},
      [](const Record& l, const Record& r) {
        return MakeRecord(l[0].AsInt64(), l[1].AsInt64(), r[1].AsInt64());
      },
      "j");
  plan.Output(joined, "out");
  auto l = KeyValues({{1, 10}, {2, 20}, {4, 40}}, kParts);
  auto r = KeyValues({{1, 100}, {2, 200}, {3, 300}}, kParts);
  auto outs = executor_.Execute(plan, {{"l", &l}, {"r", &r}}, nullptr);
  ASSERT_TRUE(outs.ok());
  EXPECT_EQ(SortedOut(*outs, "out"),
            (std::vector<Record>{
                MakeRecord(int64_t{1}, int64_t{10}, int64_t{100}),
                MakeRecord(int64_t{2}, int64_t{20}, int64_t{200})}));
}

TEST_F(ExecutorTest, JoinProducesCrossProductPerKey) {
  Plan plan;
  auto left = plan.Source("l");
  auto right = plan.Source("r");
  auto joined = plan.Join(
      left, right, {0}, {0},
      [](const Record& l, const Record& r) {
        return MakeRecord(l[1].AsInt64(), r[1].AsInt64());
      },
      "j");
  plan.Output(joined, "out");
  auto l = KeyValues({{1, 10}, {1, 11}}, kParts);
  auto r = KeyValues({{1, 100}, {1, 101}, {1, 102}}, kParts);
  auto outs = executor_.Execute(plan, {{"l", &l}, {"r", &r}}, nullptr);
  ASSERT_TRUE(outs.ok());
  EXPECT_EQ(SortedOut(*outs, "out").size(), 6u);
}

TEST_F(ExecutorTest, JoinOnDifferentKeyColumns) {
  Plan plan;
  auto left = plan.Source("l");   // (key, payload)
  auto right = plan.Source("r");  // (payload, key)
  auto joined = plan.Join(
      left, right, {0}, {1},
      [](const Record& l, const Record& r) {
        return MakeRecord(l[0].AsInt64(), r[0].AsInt64());
      },
      "j");
  plan.Output(joined, "out");
  auto l = KeyValues({{7, 1}}, kParts);
  std::vector<Record> right_records{MakeRecord(int64_t{99}, int64_t{7})};
  auto r = PartitionedDataset::HashPartitioned(right_records, {1}, kParts);
  auto outs = executor_.Execute(plan, {{"l", &l}, {"r", &r}}, nullptr);
  ASSERT_TRUE(outs.ok());
  EXPECT_EQ(SortedOut(*outs, "out"),
            (std::vector<Record>{MakeRecord(int64_t{7}, int64_t{99})}));
}

TEST_F(ExecutorTest, CoGroupSeesBothSidesIncludingEmpties) {
  Plan plan;
  auto left = plan.Source("l");
  auto right = plan.Source("r");
  auto cogrouped = plan.CoGroup(
      left, right, {0}, {0},
      [](const Record& key, const std::vector<Record>& lg,
         const std::vector<Record>& rg, std::vector<Record>* out) {
        out->push_back(MakeRecord(key[0].AsInt64(),
                                  static_cast<int64_t>(lg.size()),
                                  static_cast<int64_t>(rg.size())));
      },
      "cg");
  plan.Output(cogrouped, "out");
  auto l = KeyValues({{1, 0}, {1, 0}, {2, 0}}, kParts);
  auto r = KeyValues({{2, 0}, {3, 0}}, kParts);
  auto outs = executor_.Execute(plan, {{"l", &l}, {"r", &r}}, nullptr);
  ASSERT_TRUE(outs.ok());
  EXPECT_EQ(SortedOut(*outs, "out"),
            (std::vector<Record>{
                MakeRecord(int64_t{1}, int64_t{2}, int64_t{0}),
                MakeRecord(int64_t{2}, int64_t{1}, int64_t{1}),
                MakeRecord(int64_t{3}, int64_t{0}, int64_t{1})}));
}

TEST_F(ExecutorTest, CrossBroadcastsRightSide) {
  Plan plan;
  auto left = plan.Source("l");
  auto right = plan.Source("r");
  auto crossed = plan.Cross(
      left, right,
      [](const Record& l, const Record& r) {
        return MakeRecord(l[0].AsInt64(), l[1].AsInt64() + r[1].AsInt64());
      },
      "x");
  plan.Output(crossed, "out");
  auto l = KeyValues({{1, 10}, {2, 20}, {3, 30}}, kParts);
  auto r = KeyValues({{0, 1000}}, kParts);  // single scalar record
  ExecStats stats;
  auto outs = executor_.Execute(plan, {{"l", &l}, {"r", &r}}, &stats);
  ASSERT_TRUE(outs.ok());
  auto sorted = SortedOut(*outs, "out");
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0][1].AsInt64(), 1010);
  // One scalar broadcast to the other kParts-1 partitions.
  EXPECT_EQ(stats.messages_shuffled, static_cast<uint64_t>(kParts - 1));
}

TEST_F(ExecutorTest, CrossWithEmptyRightYieldsNothing) {
  Plan plan;
  auto left = plan.Source("l");
  auto right = plan.Source("r");
  auto crossed = plan.Cross(
      left, right, [](const Record& l, const Record&) { return l; }, "x");
  plan.Output(crossed, "out");
  auto l = KeyValues({{1, 10}}, kParts);
  PartitionedDataset r(kParts);
  auto outs = executor_.Execute(plan, {{"l", &l}, {"r", &r}}, nullptr);
  ASSERT_TRUE(outs.ok());
  EXPECT_TRUE(SortedOut(*outs, "out").empty());
}

TEST_F(ExecutorTest, UnionConcatenates) {
  Plan plan;
  auto a = plan.Source("a");
  auto b = plan.Source("b");
  plan.Output(plan.Union(a, b, "u"), "out");
  auto da = KeyValues({{1, 1}}, kParts);
  auto db = KeyValues({{1, 1}, {2, 2}}, kParts);
  auto outs = executor_.Execute(plan, {{"a", &da}, {"b", &db}}, nullptr);
  ASSERT_TRUE(outs.ok());
  EXPECT_EQ(SortedOut(*outs, "out").size(), 3u);  // bag semantics, no dedup
}

TEST_F(ExecutorTest, DistinctRemovesDuplicates) {
  Plan plan;
  auto src = plan.Source("in");
  plan.Output(plan.Distinct(src, {0}, "d"), "out");
  auto in = KeyValues({{1, 1}, {1, 1}, {1, 2}, {2, 1}}, kParts);
  auto outs = executor_.Execute(plan, {{"in", &in}}, nullptr);
  ASSERT_TRUE(outs.ok());
  // (1,1) deduped; (1,2) kept (full-record distinct).
  EXPECT_EQ(SortedOut(*outs, "out").size(), 3u);
}

TEST_F(ExecutorTest, StringKeysShuffleAndReduce) {
  Plan plan;
  auto src = plan.Source("in");
  auto counted = plan.ReduceByKey(
      src, {0},
      [](const Record& a, const Record& b) {
        return MakeRecord(a[0].AsString(), a[1].AsInt64() + b[1].AsInt64());
      },
      "count");
  plan.Output(counted, "out");
  std::vector<Record> words{MakeRecord("be", 1), MakeRecord("or", 1),
                            MakeRecord("not", 1), MakeRecord("to", 1),
                            MakeRecord("be", 1), MakeRecord("to", 1)};
  auto in = PartitionedDataset::RoundRobin(words, kParts);
  auto outs = executor_.Execute(plan, {{"in", &in}}, nullptr);
  ASSERT_TRUE(outs.ok());
  auto sorted = SortedOut(*outs, "out");
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0], MakeRecord("be", int64_t{2}));
  EXPECT_EQ(sorted[3], MakeRecord("to", int64_t{2}));
  EXPECT_TRUE(outs->at("out").IsPartitionedBy({0}));
}

TEST_F(ExecutorTest, ChargesComputeAndNetworkCosts) {
  runtime::SimClock clock;
  runtime::CostModel costs;
  costs.cpu_per_record_ns = 1;
  costs.network_per_record_ns = 100;
  Executor executor(ExecOptions{kParts, &clock, &costs});

  Plan plan;
  auto src = plan.Source("in");
  auto reduced = plan.ReduceByKey(
      src, {0}, [](const Record& a, const Record&) { return a; }, "r",
      /*pre_combine=*/false);
  plan.Output(reduced, "out");

  // Round-robin input guarantees records must move to their key partition.
  std::vector<Record> records;
  for (int64_t i = 0; i < 40; ++i) records.push_back(MakeRecord(i, i));
  auto in = PartitionedDataset::RoundRobin(records, kParts);
  ExecStats stats;
  ASSERT_TRUE(executor.Execute(plan, {{"in", &in}}, &stats).ok());
  EXPECT_GT(stats.messages_shuffled, 0u);
  EXPECT_EQ(clock.Of(runtime::Charge::kNetwork),
            static_cast<int64_t>(stats.messages_shuffled) * 100);
  EXPECT_GT(clock.Of(runtime::Charge::kCompute), 0);
}

// Partition-independence: the same dataflow yields the same sorted output
// under every degree of parallelism.
class ParallelismInvarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelismInvarianceTest, WordcountStyleAggregationIsStable) {
  const int parts = GetParam();
  Plan plan;
  auto src = plan.Source("in");
  auto counted = plan.ReduceByKey(
      src, {0},
      [](const Record& a, const Record& b) {
        return MakeRecord(a[0].AsInt64(), a[1].AsInt64() + b[1].AsInt64());
      },
      "count");
  plan.Output(counted, "out");

  std::vector<Record> records;
  for (int64_t i = 0; i < 500; ++i) records.push_back(MakeRecord(i % 37, 1));
  auto in = PartitionedDataset::RoundRobin(records, parts);

  Executor executor(ExecOptions{parts, nullptr, nullptr});
  auto outs = executor.Execute(plan, {{"in", &in}}, nullptr);
  ASSERT_TRUE(outs.ok());
  auto sorted = outs->at("out").CollectSorted();
  ASSERT_EQ(sorted.size(), 37u);
  for (const Record& r : sorted) {
    int64_t key = r[0].AsInt64();
    int64_t expected = 500 / 37 + (key < 500 % 37 ? 1 : 0);
    EXPECT_EQ(r[1].AsInt64(), expected) << "key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Parallelism, ParallelismInvarianceTest,
                         ::testing::Values(1, 2, 3, 4, 7, 16));

}  // namespace
}  // namespace flinkless::dataflow
