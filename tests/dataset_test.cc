// Unit tests for PartitionedDataset.

#include <gtest/gtest.h>

#include "dataflow/dataset.h"

namespace flinkless::dataflow {
namespace {

std::vector<Record> VertexRecords(int64_t n) {
  std::vector<Record> out;
  for (int64_t v = 0; v < n; ++v) out.push_back(MakeRecord(v, v * 10));
  return out;
}

TEST(DatasetTest, EmptyDataset) {
  PartitionedDataset ds(3);
  EXPECT_EQ(ds.num_partitions(), 3);
  EXPECT_EQ(ds.NumRecords(), 0u);
  EXPECT_TRUE(ds.Collect().empty());
}

TEST(DatasetTest, HashPartitionedPlacesByKeyHash) {
  auto ds = PartitionedDataset::HashPartitioned(VertexRecords(64), {0}, 4);
  EXPECT_EQ(ds.NumRecords(), 64u);
  for (int p = 0; p < 4; ++p) {
    for (const Record& r : ds.partition(p)) {
      EXPECT_EQ(PartitionedDataset::PartitionOf(r, {0}, 4), p);
    }
  }
  EXPECT_TRUE(ds.IsPartitionedBy({0}));
}

TEST(DatasetTest, PartitioningIsDeterministic) {
  auto a = PartitionedDataset::HashPartitioned(VertexRecords(50), {0}, 4);
  auto b = PartitionedDataset::HashPartitioned(VertexRecords(50), {0}, 4);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(a.partition(p), b.partition(p));
  }
}

TEST(DatasetTest, SinglePartitionHoldsEverything) {
  auto ds = PartitionedDataset::HashPartitioned(VertexRecords(10), {0}, 1);
  EXPECT_EQ(ds.partition(0).size(), 10u);
}

TEST(DatasetTest, RoundRobinBalancesExactly) {
  auto ds = PartitionedDataset::RoundRobin(VertexRecords(12), 4);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(ds.partition(p).size(), 3u);
  }
}

TEST(DatasetTest, CollectSortedIsSortedAndComplete) {
  auto ds = PartitionedDataset::HashPartitioned(VertexRecords(32), {0}, 4);
  auto sorted = ds.CollectSorted();
  ASSERT_EQ(sorted.size(), 32u);
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_TRUE(RecordLess(sorted[i - 1], sorted[i]));
  }
  EXPECT_EQ(sorted.front()[0].AsInt64(), 0);
  EXPECT_EQ(sorted.back()[0].AsInt64(), 31);
}

TEST(DatasetTest, ClearPartitionDropsOnlyThatPartition) {
  auto ds = PartitionedDataset::HashPartitioned(VertexRecords(64), {0}, 4);
  uint64_t before = ds.NumRecords();
  uint64_t in_p0 = ds.partition(0).size();
  ASSERT_GT(in_p0, 0u);
  ds.ClearPartition(0);
  EXPECT_EQ(ds.NumRecords(), before - in_p0);
  EXPECT_TRUE(ds.partition(0).empty());
  EXPECT_FALSE(ds.partition(1).empty());
}

TEST(DatasetTest, IsPartitionedByDetectsMisplacement) {
  PartitionedDataset ds(2);
  Record r = MakeRecord(int64_t{5});
  int correct = PartitionedDataset::PartitionOf(r, {0}, 2);
  ds.partition(1 - correct).push_back(r);
  EXPECT_FALSE(ds.IsPartitionedBy({0}));
}

TEST(DatasetTest, SerializedSizeSumsPartitions) {
  auto ds = PartitionedDataset::HashPartitioned(VertexRecords(16), {0}, 4);
  uint64_t total = 0;
  for (int p = 0; p < 4; ++p) total += SerializedSize(ds.partition(p));
  EXPECT_EQ(ds.SerializedSizeBytes(), total);
  EXPECT_GT(total, 0u);
}

TEST(DatasetSerdeTest, RoundTripPreservesEveryPartition) {
  auto ds = PartitionedDataset::HashPartitioned(VertexRecords(200), {0}, 4);
  std::vector<uint8_t> blob = SerializePartitionedDataset(ds);
  EXPECT_EQ(blob.size(), SerializedDatasetBytes(ds));

  auto back = DeserializePartitionedDataset(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_partitions(), ds.num_partitions());
  for (int p = 0; p < ds.num_partitions(); ++p) {
    EXPECT_EQ(back->partition(p), ds.partition(p)) << "partition " << p;
  }
}

TEST(DatasetSerdeTest, RoundTripKeepsEmptyPartitions) {
  PartitionedDataset ds(3);
  ds.partition(1).push_back(MakeRecord(int64_t{7}, 3.5));
  auto back = DeserializePartitionedDataset(SerializePartitionedDataset(ds));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_partitions(), 3);
  EXPECT_TRUE(back->partition(0).empty());
  EXPECT_EQ(back->partition(1), ds.partition(1));
  EXPECT_TRUE(back->partition(2).empty());
}

TEST(DatasetSerdeTest, RejectsCorruptBlobs) {
  auto ds = PartitionedDataset::HashPartitioned(VertexRecords(20), {0}, 2);
  std::vector<uint8_t> blob = SerializePartitionedDataset(ds);

  // Bad magic.
  std::vector<uint8_t> bad_magic = blob;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(DeserializePartitionedDataset(bad_magic).ok());

  // Truncated.
  std::vector<uint8_t> truncated(blob.begin(), blob.end() - 3);
  EXPECT_FALSE(DeserializePartitionedDataset(truncated).ok());

  // Trailing garbage.
  std::vector<uint8_t> trailing = blob;
  trailing.push_back(0);
  EXPECT_FALSE(DeserializePartitionedDataset(trailing).ok());

  // Too short for even the header.
  EXPECT_FALSE(DeserializePartitionedDataset({1, 2, 3}).ok());
}

TEST(DatasetTest, HashSpreadAcrossPartitions) {
  // With 1000 keys and 8 partitions, every partition should see records.
  auto ds = PartitionedDataset::HashPartitioned(VertexRecords(1000), {0}, 8);
  for (int p = 0; p < 8; ++p) {
    EXPECT_GT(ds.partition(p).size(), 60u);
    EXPECT_LT(ds.partition(p).size(), 190u);
  }
}

}  // namespace
}  // namespace flinkless::dataflow
