// Trace-driven profiler: critical-path extraction on a hand-built span
// tree, self-time attribution, partition-skew stats, hotspot ranking,
// recovery health computed from the per-iteration series (with and without
// a failure-free baseline), and the end-to-end acceptance check — on a
// traced recovery run the compensation span lands on a superstep's
// critical path (DESIGN.md §13).

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "algos/pagerank.h"
#include "common/rng.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "runtime/profiler.h"
#include "runtime/stable_storage.h"
#include "runtime/tracing.h"

namespace flinkless::runtime {
namespace {

TraceEvent Span(const char* category, const char* name, uint64_t seq,
                uint64_t parent_seq, int iteration, int partition,
                int64_t sim_dur_ns, int64_t wall_dur_ns) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kSpan;
  e.category = category;
  e.name = name;
  e.seq = seq;
  e.parent_seq = parent_seq;
  e.iteration = iteration;
  e.partition = partition;
  e.sim_dur_ns = sim_dur_ns;
  e.wall_dur_ns = wall_dur_ns;
  return e;
}

/// One superstep: an iteration span (sim 100) containing an operator span
/// (sim 30) with a two-partition parallel section (walls 10 and 25), and a
/// compensation span (sim 40). Events are in snapshot order (seq, then
/// partition).
Tracer::Snapshot HandBuiltSnapshot() {
  Tracer::Snapshot snap;
  snap.events.push_back(
      Span("iteration", "superstep", 1, 0, 1, -1, 100, 200));
  snap.events.push_back(Span("operator", "join probe", 2, 1, 1, -1, 30, 60));
  snap.events.push_back(Span("operator", "join probe", 3, 2, 1, 0, 0, 10));
  snap.events.push_back(Span("operator", "join probe", 3, 2, 1, 1, 0, 25));
  snap.events.push_back(
      Span("compensation", "fix-ranks", 4, 1, 1, -1, 40, 50));
  return snap;
}

TEST(ProfilerTest, CriticalPathPicksLongestPartition) {
  ProfileReport report = ProfileReport::FromSnapshot(HandBuiltSnapshot());
  ASSERT_EQ(report.supersteps.size(), 1u);
  const SuperstepProfile& s = report.supersteps[0];
  EXPECT_EQ(s.iteration, 1);
  EXPECT_EQ(s.sim_ns, 100);

  // Pre-order walk: operator, its critical partition, then compensation.
  ASSERT_EQ(s.critical_path.size(), 3u);
  EXPECT_EQ(s.critical_path[0].category, "operator");
  EXPECT_EQ(s.critical_path[0].partition, -1);
  EXPECT_EQ(s.critical_path[0].depth, 0);
  EXPECT_EQ(s.critical_path[0].sim_self_ns, 30);
  EXPECT_EQ(s.critical_path[1].partition, 1);  // wall 25 beats wall 10
  EXPECT_EQ(s.critical_path[1].depth, 1);
  EXPECT_EQ(s.critical_path[1].wall_self_ns, 25);
  EXPECT_EQ(s.critical_path[2].category, "compensation");
  EXPECT_EQ(s.critical_path[2].sim_self_ns, 40);

  EXPECT_TRUE(s.HasCategory("compensation"));
  EXPECT_FALSE(s.HasCategory("checkpoint"));
  EXPECT_TRUE(report.CriticalPathHasCategory("compensation"));

  // Self time by category: iteration self = 100 - 30 - 40 = 30.
  EXPECT_EQ(s.sim_self_by_category.at("iteration"), 30);
  EXPECT_EQ(s.sim_self_by_category.at("operator"), 30);
  EXPECT_EQ(s.sim_self_by_category.at("compensation"), 40);
}

TEST(ProfilerTest, OperatorAggregatesAndSkew) {
  ProfileReport report = ProfileReport::FromSnapshot(HandBuiltSnapshot());
  const OperatorProfile* op = report.Find("operator", "join probe");
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->spans, 1u);
  EXPECT_EQ(op->sim_total_ns, 30);
  EXPECT_EQ(op->sim_self_ns, 30);  // partition children charge no sim time
  EXPECT_EQ(op->wall_total_ns, 60);
  // Partition children overlap the parent's wall time and are not
  // subtracted from it; only job-level children are.
  EXPECT_EQ(op->wall_self_ns, 60);
  EXPECT_EQ(op->partitions_observed, 2);
  EXPECT_EQ(op->wall_partition_max_ns, 25);
  EXPECT_EQ(op->wall_partition_median_ns, 25);  // median of {10, 25}
  EXPECT_DOUBLE_EQ(op->WallSkew(), 1.0);

  const OperatorProfile* iteration = report.Find("iteration", "superstep");
  ASSERT_NE(iteration, nullptr);
  EXPECT_EQ(iteration->sim_self_ns, 30);  // 100 - 30 - 40
  EXPECT_DOUBLE_EQ(iteration->WallSkew(), 1.0);  // no parallel sections

  // Hotspot ranking by sim self time: compensation (40) first, then the
  // two 30s tied, broken by (category, name).
  std::vector<const OperatorProfile*> hot = report.Hotspots(10);
  ASSERT_EQ(hot.size(), 3u);
  EXPECT_EQ(hot[0]->category, "compensation");
  EXPECT_EQ(hot[1]->category, "iteration");
  EXPECT_EQ(hot[2]->category, "operator");

  std::string text = report.RenderText();
  EXPECT_NE(text.find("top hotspots"), std::string::npos);
  EXPECT_NE(text.find("fix-ranks"), std::string::npos);
  EXPECT_NE(text.find("(recovery)"), std::string::npos);
}

TEST(ProfilerTest, EmptySnapshotProfilesToNothing) {
  ProfileReport report = ProfileReport::FromSnapshot(Tracer::Snapshot{});
  EXPECT_TRUE(report.supersteps.empty());
  EXPECT_TRUE(report.operators.empty());
  EXPECT_FALSE(report.CriticalPathHasCategory("compensation"));
  EXPECT_FALSE(report.RenderText().empty());
}

// --------------------------------------------------------- recovery health --

IterationStats Iter(int iteration, double convergence_metric,
                    bool failure = false, int64_t compute_ns = 100,
                    uint64_t messages = 10) {
  IterationStats it;
  it.iteration = iteration;
  it.failure_injected = failure;
  it.messages_shuffled = messages;
  it.sim_time_by_charge[static_cast<int>(Charge::kCompute)] = compute_ns;
  it.sim_time_ns = compute_ns;
  it.gauges["convergence_metric"] = convergence_metric;
  return it;
}

TEST(RecoveryHealthTest, WindowEndsAtReconvergence) {
  MetricsRegistry registry;
  registry.RecordIteration(Iter(1, 8.0));
  registry.RecordIteration(Iter(2, 4.0));
  // Failure: the metric spikes, then decays back under the pre-failure 4.0.
  registry.RecordIteration(Iter(3, 9.0, /*failure=*/true, 150, 30));
  registry.RecordIteration(Iter(4, 5.0, false, 120, 20));
  registry.RecordIteration(Iter(5, 3.0, false, 110, 15));
  registry.RecordIteration(Iter(6, 1.0));

  std::vector<RecoveryHealth> reports = ComputeRecoveryHealth(registry);
  ASSERT_EQ(reports.size(), 1u);
  const RecoveryHealth& r = reports[0];
  EXPECT_EQ(r.failure_iteration, 3);
  EXPECT_TRUE(r.reconverged);
  EXPECT_EQ(r.window_end_iteration, 5);  // first metric <= 4.0
  EXPECT_EQ(r.supersteps_to_reconverge, 3);
  EXPECT_FALSE(r.baseline_adjusted);
  EXPECT_EQ(r.sim_lost_ns, 150 + 120 + 110);
  EXPECT_EQ(r.messages_recomputed, 30 + 20 + 15);
  EXPECT_DOUBLE_EQ(r.pre_failure_metric, 4.0);
  EXPECT_DOUBLE_EQ(r.convergence_gap, 9.0 - 4.0);

  std::string text = RenderRecoveryHealth(reports);
  EXPECT_NE(text.find("failure @ superstep 3"), std::string::npos);
  EXPECT_NE(text.find("reconverged in 3 supersteps"), std::string::npos);
}

TEST(RecoveryHealthTest, BaselineTurnsGrossCostIntoNetCost) {
  MetricsRegistry registry;
  registry.RecordIteration(Iter(1, 8.0));
  registry.RecordIteration(Iter(2, 9.0, /*failure=*/true, 150, 30));
  registry.RecordIteration(Iter(3, 6.0, false, 120, 20));

  MetricsRegistry baseline;
  baseline.RecordIteration(Iter(1, 8.0));
  baseline.RecordIteration(Iter(2, 6.0, false, 100, 10));
  baseline.RecordIteration(Iter(3, 4.0, false, 100, 10));

  std::vector<RecoveryHealth> reports =
      ComputeRecoveryHealth(registry, &baseline);
  ASSERT_EQ(reports.size(), 1u);
  const RecoveryHealth& r = reports[0];
  EXPECT_TRUE(r.baseline_adjusted);
  // Gross window cost (150 + 120) minus the baseline's same iterations.
  EXPECT_EQ(r.sim_lost_ns, (150 - 100) + (120 - 100));
  EXPECT_EQ(r.messages_recomputed, (30 - 10) + (20 - 10));
  // Damage vs the failure-free trajectory at iteration 2: 9.0 - 6.0.
  EXPECT_DOUBLE_EQ(r.convergence_gap, 3.0);
  EXPECT_NE(RenderRecoveryHealth(reports).find("net of failure-free"),
            std::string::npos);
}

TEST(RecoveryHealthTest, UnreconvergedWindowRunsToEndOfRun) {
  MetricsRegistry registry;
  registry.RecordIteration(Iter(1, 4.0));
  registry.RecordIteration(Iter(2, 9.0, /*failure=*/true));
  registry.RecordIteration(Iter(3, 8.0));

  std::vector<RecoveryHealth> reports = ComputeRecoveryHealth(registry);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].reconverged);
  EXPECT_EQ(reports[0].window_end_iteration, 3);
  EXPECT_EQ(reports[0].supersteps_to_reconverge, 2);
  EXPECT_NE(RenderRecoveryHealth(reports).find("did not reconverge"),
            std::string::npos);

  EXPECT_TRUE(ComputeRecoveryHealth(MetricsRegistry()).empty());
  EXPECT_EQ(RenderRecoveryHealth({}), "no failures injected\n");
}

// ------------------------------------------------------------- end-to-end --

TEST(ProfilerIntegrationTest, CompensationLandsOnCriticalPathOfTracedRun) {
  // The acceptance check: trace a PageRank run with an injected failure and
  // optimistic recovery; the profiler must place the compensation span on
  // the failure superstep's critical path and aggregate it as a family.
  Rng rng(11);
  graph::Graph g = graph::Rmat(7, 5, &rng);  // 128 vertices

  SimClock clock;
  CostModel costs;
  MetricsRegistry registry;
  StableStorage storage(&clock, &costs);
  FailureSchedule failures(std::vector<FailureEvent>{{3, {1}}});
  Tracer::Options topts;
  topts.clock = &clock;
  Tracer tracer(topts);

  iteration::JobEnv env;
  env.clock = &clock;
  env.costs = &costs;
  env.metrics = &registry;
  env.failures = &failures;
  env.storage = &storage;
  env.tracer = &tracer;
  env.job_id = "profiled-pr";

  algos::PageRankOptions options;
  options.num_partitions = 4;
  options.num_threads = 2;
  options.max_iterations = 8;
  algos::FixRanksCompensation fix(g.num_vertices());
  core::OptimisticRecoveryPolicy policy(&fix);
  auto result = algos::RunPageRank(g, options, env, &policy);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->failures_recovered, 1);

  ProfileReport report = ProfileReport::FromSnapshot(tracer.Flush());
  EXPECT_FALSE(report.supersteps.empty());
  EXPECT_TRUE(report.CriticalPathHasCategory("compensation"));
  const bool found_failure_superstep = [&] {
    for (const SuperstepProfile& s : report.supersteps) {
      if (s.iteration == 3 && s.HasCategory("compensation")) return true;
    }
    return false;
  }();
  EXPECT_TRUE(found_failure_superstep);

  // The compensation family (named after the policy) was aggregated and
  // charged sim time.
  const OperatorProfile* comp = nullptr;
  for (const OperatorProfile& op : report.operators) {
    if (op.category == "compensation") comp = &op;
  }
  ASSERT_NE(comp, nullptr);
  EXPECT_GE(comp->spans, 1u);
  std::string text = report.RenderText();
  EXPECT_NE(text.find("(recovery)"), std::string::npos);
  EXPECT_NE(text.find("compensation"), std::string::npos);

  // Recovery health from the same run's series agrees there was a failure.
  std::vector<RecoveryHealth> health = ComputeRecoveryHealth(registry);
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].failure_iteration, 3);
}

}  // namespace
}  // namespace flinkless::runtime
