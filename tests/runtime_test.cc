// Unit tests for src/runtime: SimClock, StableStorage, metrics, failure
// schedules, cluster bookkeeping.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "runtime/cluster.h"
#include "runtime/cost_model.h"
#include "runtime/failure.h"
#include "runtime/memory_manager.h"
#include "runtime/metrics.h"
#include "runtime/sim_clock.h"
#include "runtime/stable_storage.h"

namespace flinkless::runtime {
namespace {

// -------------------------------------------------------------- SimClock --

TEST(SimClockTest, AccumulatesByCategory) {
  SimClock clock;
  clock.Add(Charge::kCompute, 100);
  clock.Add(Charge::kCompute, 50);
  clock.Add(Charge::kNetwork, 30);
  EXPECT_EQ(clock.Of(Charge::kCompute), 150);
  EXPECT_EQ(clock.Of(Charge::kNetwork), 30);
  EXPECT_EQ(clock.Of(Charge::kCheckpointIo), 0);
  EXPECT_EQ(clock.TotalNs(), 180);
}

TEST(SimClockTest, ResetClearsEverything) {
  SimClock clock;
  clock.Add(Charge::kRecovery, 99);
  clock.Reset();
  EXPECT_EQ(clock.TotalNs(), 0);
}

TEST(SimClockTest, SummaryMentionsEveryCategory) {
  SimClock clock;
  clock.Add(Charge::kCheckpointIo, 2'000'000);
  std::string s = clock.Summary();
  EXPECT_NE(s.find("checkpoint_io=2ms"), std::string::npos);
  EXPECT_NE(s.find("compute=0ms"), std::string::npos);
}

TEST(WallTimerTest, MonotonicNonNegative) {
  WallTimer t;
  EXPECT_GE(t.ElapsedNs(), 0);
  int64_t first = t.ElapsedNs();
  EXPECT_GE(t.ElapsedNs(), first);
  t.Restart();
  EXPECT_GE(t.ElapsedNs(), 0);
}

// --------------------------------------------------------- StableStorage --

TEST(StableStorageTest, WriteReadRoundTrip) {
  StableStorage storage(nullptr, nullptr);
  ASSERT_TRUE(storage.Write("k", {1, 2, 3}).ok());
  auto blob = storage.Read("k");
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(*blob, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(StableStorageTest, ReadMissingIsNotFound) {
  StableStorage storage(nullptr, nullptr);
  EXPECT_TRUE(storage.Read("absent").status().IsNotFound());
}

TEST(StableStorageTest, OverwriteReplacesBlob) {
  StableStorage storage(nullptr, nullptr);
  ASSERT_TRUE(storage.Write("k", {1}).ok());
  ASSERT_TRUE(storage.Write("k", {2, 3}).ok());
  EXPECT_EQ(storage.Read("k")->size(), 2u);
  EXPECT_EQ(storage.live_bytes(), 2u);
  EXPECT_EQ(storage.bytes_written(), 3u);  // cumulative
}

TEST(StableStorageTest, DeleteAndExists) {
  StableStorage storage(nullptr, nullptr);
  ASSERT_TRUE(storage.Write("k", {1}).ok());
  EXPECT_TRUE(storage.Exists("k"));
  storage.Delete("k");
  EXPECT_FALSE(storage.Exists("k"));
  storage.Delete("k");  // idempotent
}

TEST(StableStorageTest, PrefixOperations) {
  StableStorage storage(nullptr, nullptr);
  ASSERT_TRUE(storage.Write("job/ckpt/1/0", {1}).ok());
  ASSERT_TRUE(storage.Write("job/ckpt/1/1", {2}).ok());
  ASSERT_TRUE(storage.Write("job/ckpt/2/0", {3}).ok());
  ASSERT_TRUE(storage.Write("other", {4}).ok());
  auto keys = storage.ListWithPrefix("job/ckpt/1/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "job/ckpt/1/0");
  EXPECT_EQ(storage.DeleteWithPrefix("job/ckpt/"), 3u);
  EXPECT_TRUE(storage.Exists("other"));
  EXPECT_TRUE(storage.ListWithPrefix("job/").empty());
}

TEST(StableStorageTest, ChargesWriteAndReadCosts) {
  SimClock clock;
  CostModel costs;
  costs.checkpoint_write_per_byte_ns = 10;
  costs.checkpoint_read_per_byte_ns = 3;
  costs.checkpoint_sync_ns = 1000;
  StableStorage storage(&clock, &costs);
  ASSERT_TRUE(storage.Write("k", std::vector<uint8_t>(100, 0)).ok());
  EXPECT_EQ(clock.Of(Charge::kCheckpointIo), 100 * 10 + 1000);
  ASSERT_TRUE(storage.Read("k").ok());
  EXPECT_EQ(clock.Of(Charge::kCheckpointIo), 100 * 10 + 1000 + 100 * 3);
  EXPECT_EQ(storage.num_writes(), 1u);
  EXPECT_EQ(storage.bytes_read(), 100u);
}

TEST(StableStorageTest, FreeWithoutClock) {
  StableStorage storage(nullptr, nullptr);
  ASSERT_TRUE(storage.Write("k", std::vector<uint8_t>(10, 0)).ok());
  ASSERT_TRUE(storage.Read("k").ok());  // must not crash
}

// ----------------------------------------------------------------- Metrics --

TEST(MetricsTest, RecordsIterationSeries) {
  MetricsRegistry metrics;
  IterationStats s1;
  s1.iteration = 1;
  s1.messages_shuffled = 10;
  s1.gauges["g"] = 1.5;
  metrics.RecordIteration(s1);
  IterationStats s2;
  s2.iteration = 2;
  s2.messages_shuffled = 20;
  metrics.RecordIteration(s2);

  EXPECT_EQ(metrics.iterations().size(), 2u);
  EXPECT_EQ(metrics.TotalMessages(), 30u);
  auto series = metrics.GaugeSeries("g", -1.0);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], 1.5);
  EXPECT_DOUBLE_EQ(series[1], -1.0);  // fallback for unset gauge
}

TEST(MetricsTest, CountersDefaultZero) {
  MetricsRegistry metrics;
  EXPECT_EQ(metrics.Counter("x"), 0u);
  metrics.IncrCounter("x");
  metrics.IncrCounter("x", 4);
  EXPECT_EQ(metrics.Counter("x"), 5u);
}

TEST(MetricsTest, ResetClears) {
  MetricsRegistry metrics;
  metrics.IncrCounter("x");
  metrics.RecordIteration({});
  metrics.Reset();
  EXPECT_EQ(metrics.Counter("x"), 0u);
  EXPECT_TRUE(metrics.iterations().empty());
}

TEST(MetricsTest, GaugeFallback) {
  IterationStats s;
  s.gauges["present"] = 2.0;
  EXPECT_DOUBLE_EQ(s.Gauge("present"), 2.0);
  EXPECT_DOUBLE_EQ(s.Gauge("absent", 7.0), 7.0);
}

TEST(MetricsTest, SimTimeByChargeDefaultsZeroAndIndexesByCharge) {
  IterationStats s;
  for (int c = 0; c < kNumCharges; ++c) {
    EXPECT_EQ(s.sim_time_by_charge[c], 0);
  }
  s.sim_time_by_charge[static_cast<int>(Charge::kNetwork)] = 40;
  s.sim_time_by_charge[static_cast<int>(Charge::kRecovery)] = 7;
  EXPECT_EQ(s.SimTimeOf(Charge::kNetwork), 40);
  EXPECT_EQ(s.SimTimeOf(Charge::kRecovery), 7);
  EXPECT_EQ(s.SimTimeOf(Charge::kCompute), 0);
}

TEST(MetricsTest, ChargeSeriesAndTotals) {
  MetricsRegistry metrics;
  IterationStats s1;
  s1.iteration = 1;
  s1.sim_time_by_charge[static_cast<int>(Charge::kCompute)] = 100;
  s1.sim_time_by_charge[static_cast<int>(Charge::kCheckpointIo)] = 30;
  metrics.RecordIteration(s1);
  IterationStats s2;
  s2.iteration = 2;
  s2.sim_time_by_charge[static_cast<int>(Charge::kCompute)] = 60;
  metrics.RecordIteration(s2);

  EXPECT_EQ(metrics.ChargeSeries(Charge::kCompute),
            (std::vector<int64_t>{100, 60}));
  EXPECT_EQ(metrics.ChargeSeries(Charge::kCheckpointIo),
            (std::vector<int64_t>{30, 0}));
  EXPECT_EQ(metrics.TotalSimTimeOf(Charge::kCompute), 160);
  EXPECT_EQ(metrics.TotalSimTimeOf(Charge::kNetwork), 0);
}

// --------------------------------------------------------------- Failure --

TEST(FailureScheduleTest, FiresOncePerEvent) {
  FailureSchedule schedule(std::vector<FailureEvent>{{3, {0, 1}}});
  EXPECT_TRUE(schedule.Fire(1).empty());
  EXPECT_TRUE(schedule.Fire(2).empty());
  EXPECT_EQ(schedule.Fire(3), (std::vector<int>{0, 1}));
  EXPECT_TRUE(schedule.Fire(3).empty());  // already fired
  EXPECT_EQ(schedule.remaining(), 0u);
}

TEST(FailureScheduleTest, MergesEventsAtSameIteration) {
  FailureSchedule schedule;
  schedule.Add({2, {1}});
  schedule.Add({2, {0, 1}});
  EXPECT_EQ(schedule.Fire(2), (std::vector<int>{0, 1}));  // deduped, sorted
}

TEST(FailureScheduleTest, ParsedOverlappingEventsFireDeduplicated) {
  // Two events target iteration 3 and both list partition 0; firing must
  // report each lost partition once, or downstream accounting (partition.lost
  // instants, lost-partition metrics) double-counts the loss.
  auto schedule = FailureSchedule::Parse("3:0;3:0,1");
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->events().size(), 2u);
  EXPECT_EQ(schedule->Peek(3), (std::vector<int>{0, 1}));
  EXPECT_EQ(schedule->Fire(3), (std::vector<int>{0, 1}));
  EXPECT_TRUE(schedule->Fire(3).empty());
  EXPECT_EQ(schedule->remaining(), 0u);
}

TEST(FailureScheduleTest, PeekDoesNotConsume) {
  FailureSchedule schedule(std::vector<FailureEvent>{{5, {2}}});
  EXPECT_EQ(schedule.Peek(5), std::vector<int>{2});
  EXPECT_EQ(schedule.Fire(5), std::vector<int>{2});
  EXPECT_TRUE(schedule.Peek(5).empty());
}

TEST(FailureScheduleTest, RewindReenablesEvents) {
  FailureSchedule schedule(std::vector<FailureEvent>{{1, {0}}});
  EXPECT_FALSE(schedule.Fire(1).empty());
  schedule.Rewind();
  EXPECT_FALSE(schedule.Fire(1).empty());
}

TEST(FailureScheduleTest, ParseValidSpec) {
  auto schedule = FailureSchedule::Parse("3:0;5:1,2");
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->events().size(), 2u);
  EXPECT_EQ(schedule->Peek(3), std::vector<int>{0});
  EXPECT_EQ(schedule->Peek(5), (std::vector<int>{1, 2}));
}

TEST(FailureScheduleTest, ParseEmptyIsEmptySchedule) {
  auto schedule = FailureSchedule::Parse("  ");
  ASSERT_TRUE(schedule.ok());
  EXPECT_TRUE(schedule->empty());
}

TEST(FailureScheduleTest, ParseRejectsGarbage) {
  EXPECT_FALSE(FailureSchedule::Parse("nope").ok());
  EXPECT_FALSE(FailureSchedule::Parse("0:1").ok());    // iteration < 1
  EXPECT_FALSE(FailureSchedule::Parse("3:").ok());     // no partitions
  EXPECT_FALSE(FailureSchedule::Parse("3:-1").ok());   // negative partition
  EXPECT_FALSE(FailureSchedule::Parse("x:1").ok());    // bad iteration
}

TEST(FailureScheduleTest, EventToString) {
  FailureEvent e{4, {1, 3}};
  EXPECT_EQ(e.ToString(), "iter 4: partitions [1,3]");
}

TEST(RandomFailuresTest, RespectsProbabilityExtremes) {
  Rng rng(5);
  EXPECT_TRUE(RandomFailures(10, 4, 0.0, &rng).empty());
  FailureSchedule all = RandomFailures(10, 4, 1.0, &rng);
  EXPECT_EQ(all.events().size(), 10u);
  for (int it = 1; it <= 10; ++it) {
    EXPECT_EQ(all.Peek(it).size(), 4u);
  }
}

TEST(RandomFailuresTest, DeterministicGivenSeed) {
  Rng a(99), b(99);
  auto s1 = RandomFailures(20, 4, 0.2, &a);
  auto s2 = RandomFailures(20, 4, 0.2, &b);
  ASSERT_EQ(s1.events().size(), s2.events().size());
  for (size_t i = 0; i < s1.events().size(); ++i) {
    EXPECT_EQ(s1.events()[i].iteration, s2.events()[i].iteration);
    EXPECT_EQ(s1.events()[i].partitions, s2.events()[i].partitions);
  }
}

// ---------------------------------------------------------------- Cluster --

TEST(ClusterTest, InitialAssignmentOneWorkerPerPartition) {
  Cluster cluster(4, nullptr, nullptr);
  EXPECT_EQ(cluster.num_partitions(), 4);
  EXPECT_EQ(cluster.total_workers_created(), 4);
  for (int p = 0; p < 4; ++p) {
    EXPECT_TRUE(cluster.PartitionHealthy(p));
  }
  EXPECT_EQ(*cluster.WorkerOf(0), 0);
  EXPECT_EQ(*cluster.WorkerOf(3), 3);
}

TEST(ClusterTest, WorkerOfOutOfRange) {
  Cluster cluster(2, nullptr, nullptr);
  EXPECT_FALSE(cluster.WorkerOf(-1).ok());
  EXPECT_FALSE(cluster.WorkerOf(2).ok());
  EXPECT_FALSE(cluster.PartitionHealthy(5));
}

TEST(ClusterTest, KillAndReassign) {
  Cluster cluster(3, nullptr, nullptr);
  EXPECT_EQ(cluster.KillPartitions({1, 2}), 2);
  EXPECT_FALSE(cluster.PartitionHealthy(1));
  EXPECT_TRUE(cluster.PartitionHealthy(0));
  EXPECT_EQ(cluster.KillPartitions({1}), 0);  // already dead

  ASSERT_TRUE(cluster.ReassignToFreshWorkers({1, 2}).ok());
  EXPECT_TRUE(cluster.PartitionHealthy(1));
  EXPECT_TRUE(cluster.PartitionHealthy(2));
  // Replacement workers are new identities.
  EXPECT_GE(*cluster.WorkerOf(1), 3);
  EXPECT_EQ(cluster.total_workers_created(), 5);
  EXPECT_EQ(cluster.epoch(), 1);
}

TEST(ClusterTest, ReassignHealthyPartitionIsNoop) {
  Cluster cluster(2, nullptr, nullptr);
  ASSERT_TRUE(cluster.ReassignToFreshWorkers({0}).ok());
  EXPECT_EQ(cluster.total_workers_created(), 2);
  EXPECT_EQ(cluster.epoch(), 0);
}

TEST(ClusterTest, ChargesNodeAcquisitionOncePerRecovery) {
  SimClock clock;
  CostModel costs;
  costs.node_acquisition_ns = 777;
  Cluster cluster(4, &clock, &costs);
  cluster.KillPartitions({0, 1});
  ASSERT_TRUE(cluster.ReassignToFreshWorkers({0, 1}).ok());
  EXPECT_EQ(clock.Of(Charge::kRecovery), 777);
}

TEST(ClusterTest, ReassignOutOfRangeFails) {
  Cluster cluster(2, nullptr, nullptr);
  EXPECT_FALSE(cluster.ReassignToFreshWorkers({7}).ok());
}

// ---------------------------------------------------- live_bytes counter --

// Recomputes what live_bytes() should report by walking every blob.
uint64_t BruteForceLiveBytes(StableStorage* storage) {
  uint64_t total = 0;
  for (const std::string& key : storage->ListWithPrefix("")) {
    total += storage->Read(key)->size();
  }
  return total;
}

TEST(StableStorageTest, LiveBytesCounterMatchesBruteForce) {
  StableStorage storage(nullptr, nullptr);
  EXPECT_EQ(storage.live_bytes(), 0u);

  // Writes.
  ASSERT_TRUE(storage.Write("a/1", std::vector<uint8_t>(10, 1)).ok());
  ASSERT_TRUE(storage.Write("a/2", std::vector<uint8_t>(20, 2)).ok());
  ASSERT_TRUE(storage.Write("b/1", std::vector<uint8_t>(5, 3)).ok());
  EXPECT_EQ(storage.live_bytes(), BruteForceLiveBytes(&storage));
  EXPECT_EQ(storage.live_bytes(), 35u);

  // Overwrite shrinks, then grows.
  ASSERT_TRUE(storage.Write("a/1", std::vector<uint8_t>(3, 1)).ok());
  EXPECT_EQ(storage.live_bytes(), BruteForceLiveBytes(&storage));
  ASSERT_TRUE(storage.Write("a/1", std::vector<uint8_t>(40, 1)).ok());
  EXPECT_EQ(storage.live_bytes(), BruteForceLiveBytes(&storage));

  // Delete (and idempotent re-delete of a missing key).
  storage.Delete("a/2");
  storage.Delete("a/2");
  storage.Delete("never-written");
  EXPECT_EQ(storage.live_bytes(), BruteForceLiveBytes(&storage));

  // Prefix delete.
  ASSERT_TRUE(storage.Write("a/3", std::vector<uint8_t>(7, 4)).ok());
  EXPECT_EQ(storage.DeleteWithPrefix("a/"), 2u);
  EXPECT_EQ(storage.live_bytes(), BruteForceLiveBytes(&storage));
  EXPECT_EQ(storage.live_bytes(), 5u);  // only b/1 remains

  storage.Delete("b/1");
  EXPECT_EQ(storage.live_bytes(), 0u);
}

TEST(StableStorageTest, LiveBytesTracksEmptyBlobs) {
  StableStorage storage(nullptr, nullptr);
  ASSERT_TRUE(storage.Write("empty", {}).ok());
  EXPECT_EQ(storage.live_bytes(), 0u);
  ASSERT_TRUE(storage.Write("empty", std::vector<uint8_t>(4, 0)).ok());
  EXPECT_EQ(storage.live_bytes(), 4u);
  ASSERT_TRUE(storage.Write("empty", {}).ok());
  EXPECT_EQ(storage.live_bytes(), 0u);
}

// ----------------------------------------------------------- MemoryManager --

// A segment over a byte vector "spilling" into a StableStorage, tracking
// how often it moved. Mirrors what ExecCache::Segment does, minus records.
class FakeSegment : public SpillableSegment {
 public:
  FakeSegment(std::string key, uint64_t size, StableStorage* storage)
      : key_(std::move(key)), payload_(size, 0xAB), storage_(storage) {}

  const std::string& spill_key() const override { return key_; }
  uint64_t resident_bytes() const override {
    return spilled_ ? 0 : payload_.size();
  }
  int num_partitions() const override { return 1; }
  bool spilled() const override { return spilled_; }

  Status Spill() override {
    FLINKLESS_RETURN_NOT_OK(storage_->Write(key_, payload_));
    payload_size_ = payload_.size();
    payload_.clear();
    payload_.shrink_to_fit();
    spilled_ = true;
    ++spill_count_;
    return Status::OK();
  }

  Status Unspill() override {
    auto blob = storage_->Read(key_);
    FLINKLESS_RETURN_NOT_OK(blob.status());
    payload_ = std::move(*blob);
    storage_->Delete(key_);
    spilled_ = false;
    ++unspill_count_;
    return Status::OK();
  }

  int spill_count() const { return spill_count_; }
  int unspill_count() const { return unspill_count_; }

 private:
  std::string key_;
  std::vector<uint8_t> payload_;
  uint64_t payload_size_ = 0;
  StableStorage* storage_;
  bool spilled_ = false;
  int spill_count_ = 0;
  int unspill_count_ = 0;
};

TEST(MemoryManagerTest, UnlimitedBudgetNeverSpills) {
  StableStorage storage(nullptr, nullptr);
  MemoryManager manager(0);
  FakeSegment a("spill/a", 1000, &storage);
  FakeSegment b("spill/b", 2000, &storage);
  manager.Register(&a);
  manager.Register(&b);
  ASSERT_TRUE(manager.EnforceBudget(nullptr, nullptr).ok());
  EXPECT_EQ(manager.stats().spills, 0u);
  EXPECT_EQ(manager.resident_bytes(), 3000u);
  EXPECT_EQ(manager.stats().peak_resident_bytes, 3000u);
  manager.Unregister(&a);
  manager.Unregister(&b);
  EXPECT_EQ(manager.num_segments(), 0u);
}

TEST(MemoryManagerTest, EvictsLeastRecentlyUsedFirst) {
  StableStorage storage(nullptr, nullptr);
  MemoryManager manager(2500);
  FakeSegment a("spill/a", 1000, &storage);
  FakeSegment b("spill/b", 1000, &storage);
  FakeSegment c("spill/c", 1000, &storage);
  manager.Register(&a);  // oldest
  manager.Register(&b);
  manager.Register(&c);  // newest
  // 3000 > 2500: exactly one eviction needed; `a` is coldest.
  ASSERT_TRUE(manager.EnforceBudget(nullptr, nullptr).ok());
  EXPECT_TRUE(a.spilled());
  EXPECT_FALSE(b.spilled());
  EXPECT_FALSE(c.spilled());
  EXPECT_EQ(manager.resident_bytes(), 2000u);
  EXPECT_EQ(manager.stats().spills, 1u);
  EXPECT_EQ(manager.stats().spilled_bytes, 1000u);
  EXPECT_EQ(storage.live_bytes(), 1000u);  // the spilled blob

  // Touching `b` makes `c` the coldest resident segment.
  bool reloaded = true;
  ASSERT_TRUE(manager.Touch(&b, nullptr, &reloaded).ok());
  EXPECT_FALSE(reloaded);
  MemoryManager::Stats before = manager.stats();
  FakeSegment d("spill/d", 1500, &storage);
  manager.Register(&d);
  ASSERT_TRUE(manager.EnforceBudget(&d, nullptr).ok());
  EXPECT_TRUE(c.spilled());
  EXPECT_FALSE(b.spilled());
  EXPECT_FALSE(d.spilled());
  EXPECT_EQ(manager.stats().spills, before.spills + 1);
  manager.Unregister(&a);
  manager.Unregister(&b);
  manager.Unregister(&c);
  manager.Unregister(&d);
}

TEST(MemoryManagerTest, TouchReloadsSpilledSegment) {
  StableStorage storage(nullptr, nullptr);
  MemoryManager manager(1);
  FakeSegment a("spill/a", 100, &storage);
  manager.Register(&a);
  ASSERT_TRUE(manager.EnforceBudget(nullptr, nullptr).ok());
  ASSERT_TRUE(a.spilled());
  EXPECT_EQ(storage.live_bytes(), 100u);

  bool reloaded = false;
  ASSERT_TRUE(manager.Touch(&a, nullptr, &reloaded).ok());
  EXPECT_TRUE(reloaded);
  EXPECT_FALSE(a.spilled());
  EXPECT_EQ(a.unspill_count(), 1);
  // The blob only exists while spilled.
  EXPECT_EQ(storage.live_bytes(), 0u);
  EXPECT_EQ(manager.stats().unspills, 1u);
  EXPECT_EQ(manager.stats().unspilled_bytes, 100u);
  manager.Unregister(&a);
}

TEST(MemoryManagerTest, KeepSegmentGrantsOneSegmentSlack) {
  StableStorage storage(nullptr, nullptr);
  MemoryManager manager(50);
  FakeSegment big("spill/big", 5000, &storage);
  manager.Register(&big);
  // The only segment is exempt: it stays resident even over budget.
  ASSERT_TRUE(manager.EnforceBudget(&big, nullptr).ok());
  EXPECT_FALSE(big.spilled());
  EXPECT_EQ(manager.resident_bytes(), 5000u);
  // Without the exemption it goes out.
  ASSERT_TRUE(manager.EnforceBudget(nullptr, nullptr).ok());
  EXPECT_TRUE(big.spilled());
  EXPECT_EQ(manager.resident_bytes(), 0u);
  manager.Unregister(&big);
}

TEST(MemoryManagerTest, TieBreaksOnSpillKey) {
  // Two segments registered... in one Register call each, so accesses are
  // unique; force a tie by constructing the manager state via equal-sized
  // evictions instead: with budget 0 everything must go, and the eviction
  // ORDER is observable through the storage write sequence.
  SimClock clock;
  CostModel costs;
  costs.checkpoint_write_per_byte_ns = 1;
  costs.checkpoint_sync_ns = 0;
  StableStorage storage(&clock, &costs);
  MemoryManager manager(10);
  FakeSegment z("spill/z", 100, &storage);
  FakeSegment a("spill/a", 100, &storage);
  manager.Register(&z);
  manager.Register(&a);
  ASSERT_TRUE(manager.EnforceBudget(nullptr, nullptr).ok());
  // Both spilled; `z` was registered first (lower access) so it went first.
  EXPECT_TRUE(z.spilled());
  EXPECT_TRUE(a.spilled());
  EXPECT_EQ(manager.stats().spills, 2u);
  manager.Unregister(&z);
  manager.Unregister(&a);
}

TEST(MemoryManagerTest, SpillChargesSimClockThroughStorage) {
  SimClock clock;
  CostModel costs;
  costs.checkpoint_write_per_byte_ns = 30;
  costs.checkpoint_read_per_byte_ns = 10;
  costs.checkpoint_sync_ns = 500;
  StableStorage storage(&clock, &costs);
  MemoryManager manager(1);
  FakeSegment a("spill/a", 200, &storage);
  manager.Register(&a);
  ASSERT_TRUE(manager.EnforceBudget(nullptr, nullptr).ok());
  EXPECT_EQ(clock.Of(Charge::kCheckpointIo), 200 * 30 + 500);
  bool reloaded = false;
  ASSERT_TRUE(manager.Touch(&a, nullptr, &reloaded).ok());
  EXPECT_EQ(clock.Of(Charge::kCheckpointIo), 200 * 30 + 500 + 200 * 10);
  manager.Unregister(&a);
}

}  // namespace
}  // namespace flinkless::runtime
