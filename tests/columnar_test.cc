// Columnar batch execution (DESIGN.md §12): batch <-> record round-trips
// over every ValueType (including empty and long strings), v2 dataset-blob
// serde corruption rejection, FlatKeyIndex parity with the map-based
// grouping it replaces, and the headline contract — columnar and record
// execution are byte-identical across thread counts and injected failures.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "algos/connected_components.h"
#include "algos/pagerank.h"
#include "common/rng.h"
#include "core/policies.h"
#include "dataflow/columnar.h"
#include "dataflow/dataset.h"
#include "dataflow/executor.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "iteration/context.h"
#include "runtime/failure.h"
#include "runtime/metrics.h"
#include "runtime/sim_clock.h"
#include "runtime/stable_storage.h"

namespace flinkless {
namespace {

using dataflow::BatchSchema;
using dataflow::ColumnarBatch;
using dataflow::DeserializePartitionedDataset;
using dataflow::ExecOptions;
using dataflow::ExecStats;
using dataflow::Executor;
using dataflow::FlatKeyIndex;
using dataflow::MakeRecord;
using dataflow::PartitionedDataset;
using dataflow::Plan;
using dataflow::Record;
using dataflow::ValueType;

// ------------------------------------------------ batch <-> record bridge --

std::vector<Record> MixedRows() {
  // Every ValueType, with the string column exercising the arena layout's
  // edge cases: empty strings, embedded NULs, and a long (64 KiB) value.
  std::vector<Record> rows;
  rows.push_back(MakeRecord(int64_t{7}, 0.5, std::string("alpha")));
  rows.push_back(MakeRecord(int64_t{-1}, -0.0, std::string()));
  rows.push_back(MakeRecord(int64_t{0}, 3.25, std::string("b\0c", 3)));
  rows.push_back(
      MakeRecord(int64_t{1} << 62, 1e300, std::string(64 * 1024, 'x')));
  rows.push_back(MakeRecord(int64_t{42}, 0.0, std::string("alpha")));
  return rows;
}

TEST(ColumnarBatchTest, RoundTripsEveryValueType) {
  std::vector<Record> rows = MixedRows();
  ColumnarBatch batch;
  ASSERT_TRUE(ColumnarBatch::FromRecords(rows, &batch));
  ASSERT_EQ(batch.num_rows(), rows.size());
  ASSERT_EQ(batch.num_columns(), 3u);
  EXPECT_EQ(batch.schema(),
            (BatchSchema{ValueType::kInt64, ValueType::kDouble,
                         ValueType::kString}));
  EXPECT_EQ(batch.ToRecords(), rows);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(batch.RowAsRecord(i), rows[i]) << "row " << i;
  }
  // Column accessors expose the flat layout directly.
  EXPECT_EQ(batch.Int64Column(0)[3], int64_t{1} << 62);
  EXPECT_EQ(batch.DoubleColumn(1)[2], 3.25);
  EXPECT_EQ(batch.StringAt(2, 1), std::string_view());
  EXPECT_EQ(batch.StringAt(2, 2), std::string_view("b\0c", 3));
  EXPECT_EQ(batch.StringAt(2, 3).size(), 64u * 1024);
}

TEST(ColumnarBatchTest, RoundTripsEmptyAndArityZero) {
  ColumnarBatch empty;
  ASSERT_TRUE(ColumnarBatch::FromRecords({}, &empty));
  EXPECT_EQ(empty.num_rows(), 0u);
  EXPECT_TRUE(empty.ToRecords().empty());

  std::vector<Record> arity_zero{Record{}, Record{}};
  ColumnarBatch batch;
  ASSERT_TRUE(ColumnarBatch::FromRecords(arity_zero, &batch));
  EXPECT_EQ(batch.num_rows(), 2u);
  EXPECT_EQ(batch.ToRecords(), arity_zero);
}

TEST(ColumnarBatchTest, RejectsHeterogeneousRecords) {
  ColumnarBatch batch;
  // Arity mismatch.
  EXPECT_FALSE(ColumnarBatch::FromRecords(
      {MakeRecord(int64_t{1}), MakeRecord(int64_t{1}, int64_t{2})}, &batch));
  // Type mismatch in one column.
  EXPECT_FALSE(ColumnarBatch::FromRecords(
      {MakeRecord(int64_t{1}, 2.0), MakeRecord(int64_t{1}, int64_t{2})},
      &batch));
  BatchSchema schema;
  EXPECT_FALSE(dataflow::InferBatchSchema(
      {MakeRecord(std::string("a")), MakeRecord(2.0)}, &schema));
}

TEST(ColumnarBatchTest, SerializeRoundTripsAndSizesMatch) {
  std::vector<Record> rows = MixedRows();
  ColumnarBatch batch;
  ASSERT_TRUE(ColumnarBatch::FromRecords(rows, &batch));
  std::vector<uint8_t> bytes;
  batch.SerializeTo(&bytes);
  EXPECT_EQ(bytes.size(), batch.SerializedBytes());

  size_t offset = 0;
  auto back = ColumnarBatch::Deserialize(bytes, &offset, batch.schema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(offset, bytes.size());
  EXPECT_TRUE(*back == batch);
  EXPECT_EQ(back->ToRecords(), rows);
}

TEST(ColumnarBatchTest, DeserializeRejectsTruncation) {
  std::vector<Record> rows = MixedRows();
  ColumnarBatch batch;
  ASSERT_TRUE(ColumnarBatch::FromRecords(rows, &batch));
  std::vector<uint8_t> bytes;
  batch.SerializeTo(&bytes);
  // Every proper prefix must fail cleanly — never crash or read past the
  // end. (A sweep, because the failure point walks through row count,
  // fixed columns, string lengths, and the arena.)
  for (size_t cut = 0; cut < bytes.size(); cut += 977) {
    std::vector<uint8_t> trunc(bytes.begin(), bytes.begin() + cut);
    size_t offset = 0;
    auto result = ColumnarBatch::Deserialize(trunc, &offset, batch.schema());
    EXPECT_FALSE(result.ok()) << "prefix of " << cut << " bytes";
  }
}

TEST(ColumnarBatchTest, HashRowKeyMatchesRecordHashKey) {
  std::vector<Record> rows = MixedRows();
  ColumnarBatch batch;
  ASSERT_TRUE(ColumnarBatch::FromRecords(rows, &batch));
  const std::vector<dataflow::KeyColumns> keys{{0}, {1}, {2}, {0, 2}, {2, 1}};
  for (const auto& key : keys) {
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(batch.HashRowKey(i, key), dataflow::HashKey(rows[i], key))
          << "row " << i;
    }
  }
}

// ------------------------------------------------------- flat key index --

TEST(FlatKeyIndexTest, ChainsMatchGroupByKeyArrivalOrder) {
  Rng rng(11);
  std::vector<Record> rows;
  for (int64_t i = 0; i < 2000; ++i) {
    rows.push_back(
        MakeRecord(static_cast<int64_t>(rng.NextBounded(64)), i));
  }
  FlatKeyIndex index;
  index.Build(rows, {0});
  ASSERT_EQ(index.num_rows(), rows.size());

  // Reference grouping: key -> row ids in arrival order.
  std::unordered_map<Record, std::vector<int32_t>, dataflow::RecordHash> ref;
  for (size_t i = 0; i < rows.size(); ++i) {
    ref[dataflow::ExtractKey(rows[i], {0})].push_back(
        static_cast<int32_t>(i));
  }
  ASSERT_EQ(index.num_groups(), ref.size());
  for (int32_t head : index.heads()) {
    std::vector<int32_t> chain;
    for (int32_t r = head; r >= 0; r = index.Next(r)) chain.push_back(r);
    EXPECT_EQ(chain, ref.at(dataflow::ExtractKey(rows[head], {0})));
  }
}

TEST(FlatKeyIndexTest, FindFirstOnStringAndCompositeKeys) {
  // Forces the generic (non-int64) hashing path.
  std::vector<Record> rows;
  rows.push_back(MakeRecord(std::string("a"), int64_t{1}, int64_t{10}));
  rows.push_back(MakeRecord(std::string("b"), int64_t{1}, int64_t{20}));
  rows.push_back(MakeRecord(std::string("a"), int64_t{1}, int64_t{30}));
  rows.push_back(MakeRecord(std::string("a"), int64_t{2}, int64_t{40}));
  FlatKeyIndex index;
  index.Build(rows, {0, 1});

  Record probe = MakeRecord(int64_t{99}, std::string("a"), int64_t{1});
  // Probe key columns differ from build key columns (join-style).
  int32_t row =
      index.FindFirst(probe, {1, 2}, dataflow::HashKey(probe, {1, 2}));
  ASSERT_EQ(row, 0);
  EXPECT_EQ(index.Next(row), 2);
  EXPECT_EQ(index.Next(2), -1);

  Record miss = MakeRecord(std::string("c"), int64_t{1});
  EXPECT_EQ(index.FindFirst(miss, {0, 1}, dataflow::HashKey(miss, {0, 1})),
            -1);
}

// ----------------------------------------------------- dataset blob serde --

PartitionedDataset HomogeneousDataset() {
  Rng rng(5);
  std::vector<Record> records;
  for (int64_t i = 0; i < 500; ++i) {
    records.push_back(MakeRecord(static_cast<int64_t>(rng.NextBounded(50)),
                                 static_cast<double>(i) * 0.25,
                                 std::string(i % 7, 's')));
  }
  return PartitionedDataset::RoundRobin(std::move(records), 4);
}

TEST(DatasetBlobTest, ColumnarBlobRoundTripsAndSizeMatches) {
  PartitionedDataset ds = HomogeneousDataset();
  std::vector<uint8_t> blob = SerializePartitionedDataset(ds);
  EXPECT_EQ(blob.size(), SerializedDatasetBytes(ds));
  auto back = DeserializePartitionedDataset(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_partitions(), ds.num_partitions());
  for (int p = 0; p < ds.num_partitions(); ++p) {
    EXPECT_EQ(back->partition(p), ds.partition(p)) << "partition " << p;
  }
}

TEST(DatasetBlobTest, HeterogeneousDatasetsFallBackToRecordBlob) {
  PartitionedDataset ds(2);
  ds.partition(0).push_back(MakeRecord(int64_t{1}, 2.0));
  ds.partition(1).push_back(MakeRecord(std::string("mixed")));
  std::vector<uint8_t> blob = SerializePartitionedDataset(ds);
  EXPECT_EQ(blob.size(), SerializedDatasetBytes(ds));
  auto back = DeserializePartitionedDataset(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->partition(0), ds.partition(0));
  EXPECT_EQ(back->partition(1), ds.partition(1));
}

TEST(DatasetBlobTest, ColumnarBlobRejectsCorruption) {
  PartitionedDataset ds = HomogeneousDataset();
  std::vector<uint8_t> blob = SerializePartitionedDataset(ds);

  {  // Bad magic.
    std::vector<uint8_t> bad = blob;
    bad[0] ^= 0xFF;
    EXPECT_FALSE(DeserializePartitionedDataset(bad).ok());
  }
  {  // Truncation inside a column payload.
    std::vector<uint8_t> bad(blob.begin(), blob.end() - 3);
    EXPECT_FALSE(DeserializePartitionedDataset(bad).ok());
  }
  {  // Trailing garbage.
    std::vector<uint8_t> bad = blob;
    bad.push_back(0xAB);
    EXPECT_FALSE(DeserializePartitionedDataset(bad).ok());
  }
  {  // Unknown column type tag (tags sit right after magic+nparts+ncols).
    std::vector<uint8_t> bad = blob;
    bad[8 + 8 + 4] = 0x7F;
    EXPECT_FALSE(DeserializePartitionedDataset(bad).ok());
  }
}

// ------------------------------------- columnar vs record byte-identity --

Plan BuildHotPathPlan() {
  // Every rewritten operator, with both int64 and string keys: map,
  // pre-combined reduce, join (string key), group-reduce, distinct, union.
  Plan plan;
  auto src = plan.Source("in");
  auto mapped = plan.Map(
      src,
      [](const Record& r) {
        return MakeRecord(r[0].AsInt64() % 23,
                          "g" + std::to_string(r[0].AsInt64() % 5),
                          r[1].AsInt64());
      },
      "tag");
  auto reduced = plan.ReduceByKey(
      mapped, {0},
      [](const Record& a, const Record& b) {
        return MakeRecord(a[0].AsInt64(), a[1].AsString(),
                          a[2].AsInt64() + b[2].AsInt64());
      },
      "sum", /*pre_combine=*/true);
  auto joined = plan.Join(
      reduced, mapped, {1}, {1},
      [](const Record& l, const Record& r) {
        return MakeRecord(l[1].AsString(), l[2].AsInt64(), r[2].AsInt64());
      },
      "by-tag");
  auto grouped = plan.GroupReduceByKey(
      joined, {0},
      [](const Record& key, const std::vector<Record>& group) {
        int64_t sum = 0;
        for (const Record& g : group) sum += g[2].AsInt64();
        return MakeRecord(key[0].AsString(),
                          static_cast<int64_t>(group.size()), sum);
      },
      "per-tag");
  auto uniq = plan.Distinct(grouped, {0}, "distinct-tags");
  auto both = plan.Union(uniq, grouped, "union");
  plan.Output(both, "out");
  return plan;
}

class ColumnarAbTest : public ::testing::TestWithParam<int> {};

TEST_P(ColumnarAbTest, HotPathPlanIsByteIdenticalToRecordPath) {
  const int threads = GetParam();
  const int parts = 8;
  Plan plan = BuildHotPathPlan();
  Rng rng(31);
  std::vector<Record> records;
  for (int64_t i = 0; i < 4000; ++i) {
    records.push_back(
        MakeRecord(static_cast<int64_t>(rng.NextBounded(300)), i));
  }
  auto in = PartitionedDataset::RoundRobin(std::move(records), parts);

  auto run = [&](bool columnar, ExecStats* stats, runtime::SimClock* clock,
                 const runtime::CostModel* costs) {
    ExecOptions options;
    options.num_partitions = parts;
    options.num_threads = threads;
    options.use_columnar = columnar;
    options.clock = clock;
    options.costs = costs;
    Executor executor(options);
    auto outs = executor.Execute(plan, {{"in", &in}}, stats);
    EXPECT_TRUE(outs.ok()) << outs.status().ToString();
    return std::move(outs->at("out"));
  };

  runtime::CostModel costs;
  runtime::SimClock batch_clock, record_clock;
  ExecStats batch_stats, record_stats;
  PartitionedDataset batch = run(true, &batch_stats, &batch_clock, &costs);
  PartitionedDataset record = run(false, &record_stats, &record_clock, &costs);

  ASSERT_EQ(batch.num_partitions(), record.num_partitions());
  for (int p = 0; p < batch.num_partitions(); ++p) {
    EXPECT_EQ(batch.partition(p), record.partition(p)) << "partition " << p;
  }
  EXPECT_EQ(batch_stats.records_processed, record_stats.records_processed);
  EXPECT_EQ(batch_stats.messages_shuffled, record_stats.messages_shuffled);
  EXPECT_EQ(batch_stats.node_output_counts, record_stats.node_output_counts);
  EXPECT_EQ(batch_clock.TotalNs(), record_clock.TotalNs());
  // The mode counters are the only allowed difference.
  EXPECT_GT(batch_stats.batch_ops, 0u);
  EXPECT_EQ(record_stats.batch_ops, 0u);
  EXPECT_GT(record_stats.row_fallback_ops, 0u);
}

struct AbAlgoRun {
  std::vector<double> pr_ranks;
  std::vector<int64_t> cc_labels;
  int pr_iterations = 0;
  int cc_supersteps = 0;
  uint64_t pr_messages = 0;
  uint64_t cc_messages = 0;
  int64_t pr_sim_ns = 0;
  int64_t cc_sim_ns = 0;
};

AbAlgoRun RunAlgosAb(int num_threads, bool columnar) {
  AbAlgoRun out;
  Rng rng(2025);
  graph::Graph directed = graph::Rmat(9, 6, &rng);  // 512 vertices

  {  // PageRank (bulk) through an injected failure + compensation.
    runtime::SimClock clock;
    runtime::CostModel costs;
    runtime::MetricsRegistry metrics;
    runtime::StableStorage storage(&clock, &costs);
    runtime::FailureSchedule failures(
        std::vector<runtime::FailureEvent>{{3, {1}}});
    iteration::JobEnv env;
    env.clock = &clock;
    env.costs = &costs;
    env.metrics = &metrics;
    env.failures = &failures;
    env.storage = &storage;
    env.job_id = "ab-pr";

    algos::PageRankOptions options;
    options.num_partitions = 4;
    options.num_threads = num_threads;
    options.columnar_batch = columnar;
    options.max_iterations = 10;
    algos::FixRanksCompensation fix(directed.num_vertices());
    core::OptimisticRecoveryPolicy policy(&fix);
    auto result = algos::RunPageRank(directed, options, env, &policy, nullptr);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    out.pr_ranks = result->ranks;
    out.pr_iterations = result->iterations;
    out.pr_sim_ns = clock.TotalNs();
    for (const auto& it : metrics.iterations()) {
      out.pr_messages += it.messages_shuffled;
    }
  }

  {  // Connected Components (delta) through an injected failure.
    graph::Graph undirected(directed.num_vertices(), /*directed=*/false);
    for (const graph::Edge& e : directed.edges()) {
      Status s = undirected.AddEdge(e.src, e.dst);
      EXPECT_TRUE(s.ok());
    }
    runtime::SimClock clock;
    runtime::CostModel costs;
    runtime::MetricsRegistry metrics;
    runtime::StableStorage storage(&clock, &costs);
    runtime::FailureSchedule failures(
        std::vector<runtime::FailureEvent>{{2, {3}}});
    iteration::JobEnv env;
    env.clock = &clock;
    env.costs = &costs;
    env.metrics = &metrics;
    env.failures = &failures;
    env.storage = &storage;
    env.job_id = "ab-cc";

    algos::ConnectedComponentsOptions options;
    options.num_partitions = 4;
    options.num_threads = num_threads;
    options.columnar_batch = columnar;
    algos::FixComponentsCompensation fix(&undirected);
    core::OptimisticRecoveryPolicy policy(&fix);
    auto result = algos::RunConnectedComponents(undirected, options, env,
                                                &policy, nullptr);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    out.cc_labels = result->labels;
    out.cc_supersteps = result->supersteps_executed;
    out.cc_sim_ns = clock.TotalNs();
    for (const auto& it : metrics.iterations()) {
      out.cc_messages += it.messages_shuffled;
    }
  }
  return out;
}

TEST_P(ColumnarAbTest, AlgorithmsWithFailuresAreByteIdenticalToRecordPath) {
  AbAlgoRun batch = RunAlgosAb(GetParam(), /*columnar=*/true);
  AbAlgoRun record = RunAlgosAb(GetParam(), /*columnar=*/false);
  EXPECT_EQ(batch.pr_ranks, record.pr_ranks);
  EXPECT_EQ(batch.cc_labels, record.cc_labels);
  EXPECT_EQ(batch.pr_iterations, record.pr_iterations);
  EXPECT_EQ(batch.cc_supersteps, record.cc_supersteps);
  EXPECT_EQ(batch.pr_messages, record.pr_messages);
  EXPECT_EQ(batch.cc_messages, record.cc_messages);
  EXPECT_EQ(batch.pr_sim_ns, record.pr_sim_ns);
  EXPECT_EQ(batch.cc_sim_ns, record.cc_sim_ns);
}

TEST_P(ColumnarAbTest, ColumnarRunMatchesSerialColumnarRun) {
  AbAlgoRun serial = RunAlgosAb(1, /*columnar=*/true);
  AbAlgoRun parallel = RunAlgosAb(GetParam(), /*columnar=*/true);
  EXPECT_EQ(serial.pr_ranks, parallel.pr_ranks);
  EXPECT_EQ(serial.cc_labels, parallel.cc_labels);
  EXPECT_EQ(serial.pr_messages, parallel.pr_messages);
  EXPECT_EQ(serial.cc_messages, parallel.cc_messages);
  EXPECT_EQ(serial.pr_sim_ns, parallel.pr_sim_ns);
  EXPECT_EQ(serial.cc_sim_ns, parallel.cc_sim_ns);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ColumnarAbTest,
                         ::testing::Values(1, 2, 8));

}  // namespace
}  // namespace flinkless
