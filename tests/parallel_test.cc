// The determinism contract of partition-parallel execution: for any
// num_threads, the executor produces byte-identical partition contents,
// identical ExecStats, and identical simulated-time charges — on plain
// plans, on full iterative jobs (Connected Components, PageRank), and on
// runs with injected failures repaired by compensation functions. Plus unit
// coverage of the ThreadPool itself.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "algos/connected_components.h"
#include "algos/datasets.h"
#include "algos/pagerank.h"
#include "algos/refreshers.h"
#include "core/policies.h"
#include "dataflow/executor.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "common/rng.h"
#include "iteration/delta_iteration.h"
#include "runtime/failure.h"
#include "runtime/metrics.h"
#include "runtime/sim_clock.h"
#include "runtime/stable_storage.h"
#include "runtime/thread_pool.h"

namespace flinkless {
namespace {

using dataflow::Bindings;
using dataflow::ExecOptions;
using dataflow::ExecStats;
using dataflow::Executor;
using dataflow::MakeRecord;
using dataflow::PartitionedDataset;
using dataflow::Plan;
using dataflow::Record;

// ----------------------------------------------------------- ThreadPool --

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  runtime::ThreadPool pool(4);
  constexpr int kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingleRanges) {
  runtime::ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](int) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsTaskExceptions) {
  runtime::ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(64,
                                [&](int i) {
                                  if (i == 13) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool survives a throwing loop and stays usable.
  std::atomic<int> sum{0};
  pool.ParallelFor(10, [&](int i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, SubmitAndWaitDrainTasks) {
  runtime::ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPoolTest, WaitRethrowsSubmittedExceptions) {
  runtime::ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

TEST(ThreadPoolTest, FreeParallelForRunsInlineWithoutPool) {
  std::vector<int> order;
  runtime::ParallelFor(nullptr, 5, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(runtime::ThreadPool::ResolveThreadCount(4), 4);
  EXPECT_EQ(runtime::ThreadPool::ResolveThreadCount(1), 1);
  EXPECT_GE(runtime::ThreadPool::ResolveThreadCount(0), 1);
  EXPECT_EQ(runtime::ThreadPool::ResolveThreadCount(-3), 1);
}

// ------------------------------------------- executor plan determinism --

/// Byte-level comparison: partition layout AND intra-partition order.
void ExpectIdenticalDatasets(const PartitionedDataset& a,
                             const PartitionedDataset& b) {
  ASSERT_EQ(a.num_partitions(), b.num_partitions());
  for (int p = 0; p < a.num_partitions(); ++p) {
    EXPECT_EQ(a.partition(p), b.partition(p)) << "partition " << p;
  }
}

Plan BuildMixedPlan() {
  // Touches every order-sensitive operator class: map, filter, shuffle-based
  // reduce (with pre-combine), join, group-reduce, distinct, union.
  Plan plan;
  auto src = plan.Source("in");
  auto mapped = plan.Map(
      src,
      [](const Record& r) {
        return MakeRecord(r[0].AsInt64() % 17, r[1].AsInt64() + 1);
      },
      "mod-keys");
  auto filtered = plan.Filter(
      mapped, [](const Record& r) { return r[1].AsInt64() % 3 != 0; },
      "drop-thirds");
  auto reduced = plan.ReduceByKey(
      filtered, {0},
      [](const Record& a, const Record& b) {
        return MakeRecord(a[0].AsInt64(), a[1].AsInt64() + b[1].AsInt64());
      },
      "sum", /*pre_combine=*/true);
  auto joined = plan.Join(
      reduced, filtered, {0}, {0},
      [](const Record& l, const Record& r) {
        return MakeRecord(l[0].AsInt64(), l[1].AsInt64(), r[1].AsInt64());
      },
      "self-join");
  auto grouped = plan.GroupReduceByKey(
      joined, {0},
      [](const Record& key, const std::vector<Record>& group) {
        return MakeRecord(key[0].AsInt64(),
                          static_cast<int64_t>(group.size()));
      },
      "group-sizes");
  auto uniq = plan.Distinct(grouped, {0, 1}, "distinct");
  auto both = plan.Union(uniq, reduced, "union");
  plan.Output(both, "out");
  return plan;
}

class ExecutorDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorDeterminismTest, MixedPlanMatchesSerialByteForByte) {
  const int threads = GetParam();
  const int parts = 8;
  Plan plan = BuildMixedPlan();
  Rng rng(99);
  std::vector<Record> records;
  for (int64_t i = 0; i < 5000; ++i) {
    records.push_back(
        MakeRecord(static_cast<int64_t>(rng.NextBounded(512)), i));
  }
  auto in = PartitionedDataset::RoundRobin(std::move(records), parts);

  auto run = [&](int num_threads, ExecStats* stats,
                 runtime::SimClock* clock, const runtime::CostModel* costs) {
    ExecOptions options;
    options.num_partitions = parts;
    options.num_threads = num_threads;
    options.clock = clock;
    options.costs = costs;
    Executor executor(options);
    auto outs = executor.Execute(plan, {{"in", &in}}, stats);
    EXPECT_TRUE(outs.ok()) << outs.status().ToString();
    return std::move(outs->at("out"));
  };

  runtime::CostModel costs;
  runtime::SimClock serial_clock;
  ExecStats serial_stats;
  PartitionedDataset serial = run(1, &serial_stats, &serial_clock, &costs);

  runtime::SimClock parallel_clock;
  ExecStats parallel_stats;
  PartitionedDataset parallel =
      run(threads, &parallel_stats, &parallel_clock, &costs);

  ExpectIdenticalDatasets(serial, parallel);
  EXPECT_EQ(serial_stats.records_processed, parallel_stats.records_processed);
  EXPECT_EQ(serial_stats.messages_shuffled, parallel_stats.messages_shuffled);
  EXPECT_EQ(serial_stats.node_output_counts,
            parallel_stats.node_output_counts);
  // Simulated time is a pure function of the data, never of the thread
  // count (critical-path charging).
  EXPECT_EQ(serial_clock.TotalNs(), parallel_clock.TotalNs());
}

TEST_P(ExecutorDeterminismTest, ShuffleIsByteIdenticalAndMoveMatchesCopy) {
  const int threads = GetParam();
  const int parts = 8;
  Rng rng(7);
  std::vector<Record> records;
  for (int64_t i = 0; i < 3000; ++i) {
    records.push_back(
        MakeRecord(static_cast<int64_t>(rng.NextBounded(100)), i));
  }
  auto in = PartitionedDataset::RoundRobin(std::move(records), parts);

  Executor serial(ExecOptions{parts, nullptr, nullptr});
  ExecOptions popt;
  popt.num_partitions = parts;
  popt.num_threads = threads;
  Executor parallel(popt);

  ExecStats s1, s2, s3;
  PartitionedDataset base = serial.Shuffle(in, {0}, &s1);
  PartitionedDataset threaded = parallel.Shuffle(in, {0}, &s2);
  PartitionedDataset moved = parallel.Shuffle(PartitionedDataset(in), {0},
                                              &s3);  // rvalue overload
  ExpectIdenticalDatasets(base, threaded);
  ExpectIdenticalDatasets(base, moved);
  EXPECT_EQ(s1.messages_shuffled, s2.messages_shuffled);
  EXPECT_EQ(s1.messages_shuffled, s3.messages_shuffled);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ExecutorDeterminismTest,
                         ::testing::Values(1, 2, 8));

// -------------------------------- end-to-end algorithm determinism --

struct AlgoRun {
  std::vector<int64_t> cc_labels;
  std::vector<double> pr_ranks;
  int cc_supersteps = 0;
  int pr_iterations = 0;
  uint64_t cc_messages = 0;
  uint64_t pr_messages = 0;
  int64_t cc_sim_ns = 0;
  int64_t pr_sim_ns = 0;
  uint64_t cc_spills = 0;
  uint64_t pr_spills = 0;
  uint64_t cc_unspills = 0;
  uint64_t pr_unspills = 0;
  uint64_t cc_peak_resident = 0;
  uint64_t pr_peak_resident = 0;
};

AlgoRun RunBothAlgos(int num_threads, bool with_failures,
                     bool cache_loop_invariant = true,
                     uint64_t memory_budget_bytes = 0) {
  AlgoRun out;
  Rng rng(2025);
  graph::Graph directed = graph::Rmat(9, 6, &rng);  // 512 vertices

  // ---- PageRank (bulk iteration + FixRanks compensation) ----
  {
    runtime::SimClock clock;
    runtime::CostModel costs;
    runtime::MetricsRegistry metrics;
    runtime::StableStorage storage(&clock, &costs);
    runtime::FailureSchedule failures(
        with_failures
            ? std::vector<runtime::FailureEvent>{{3, {1}}, {7, {0, 2}}}
            : std::vector<runtime::FailureEvent>{});
    iteration::JobEnv env;
    env.clock = &clock;
    env.costs = &costs;
    env.metrics = &metrics;
    env.failures = &failures;
    env.storage = &storage;
    env.job_id = "det-pr";

    algos::PageRankOptions options;
    options.num_partitions = 4;
    options.num_threads = num_threads;
    options.max_iterations = 12;
    options.cache_loop_invariant = cache_loop_invariant;
    options.memory_budget_bytes = memory_budget_bytes;
    algos::FixRanksCompensation fix(directed.num_vertices());
    core::OptimisticRecoveryPolicy policy(&fix);
    auto result = algos::RunPageRank(directed, options, env, &policy, nullptr);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    out.pr_ranks = result->ranks;
    out.pr_iterations = result->iterations;
    out.pr_sim_ns = clock.TotalNs();
    for (const auto& it : metrics.iterations()) {
      out.pr_messages += it.messages_shuffled;
      out.pr_spills += it.spills;
      out.pr_unspills += it.unspills;
      out.pr_peak_resident =
          std::max(out.pr_peak_resident, it.peak_resident_bytes);
    }
    // Spill blobs live only while an entry is out; at job end everything
    // resident was dropped with the cache and every blob deleted with it.
    EXPECT_EQ(storage.ListWithPrefix("spill/").size(), 0u);
  }

  // ---- Connected Components (delta iteration + FixComponents) ----
  {
    graph::Graph undirected(directed.num_vertices(), /*directed=*/false);
    for (const graph::Edge& e : directed.edges()) {
      Status s = undirected.AddEdge(e.src, e.dst);
      EXPECT_TRUE(s.ok());
    }
    runtime::SimClock clock;
    runtime::CostModel costs;
    runtime::MetricsRegistry metrics;
    runtime::StableStorage storage(&clock, &costs);
    runtime::FailureSchedule failures(
        with_failures ? std::vector<runtime::FailureEvent>{{2, {3}}}
                      : std::vector<runtime::FailureEvent>{});
    iteration::JobEnv env;
    env.clock = &clock;
    env.costs = &costs;
    env.metrics = &metrics;
    env.failures = &failures;
    env.storage = &storage;
    env.job_id = "det-cc";

    algos::ConnectedComponentsOptions options;
    options.num_partitions = 4;
    options.num_threads = num_threads;
    options.cache_loop_invariant = cache_loop_invariant;
    options.memory_budget_bytes = memory_budget_bytes;
    algos::FixComponentsCompensation fix(&undirected);
    core::OptimisticRecoveryPolicy policy(&fix);
    auto result =
        algos::RunConnectedComponents(undirected, options, env, &policy,
                                      nullptr);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    out.cc_labels = result->labels;
    out.cc_supersteps = result->supersteps_executed;
    out.cc_sim_ns = clock.TotalNs();
    for (const auto& it : metrics.iterations()) {
      out.cc_messages += it.messages_shuffled;
      out.cc_spills += it.spills;
      out.cc_unspills += it.unspills;
      out.cc_peak_resident =
          std::max(out.cc_peak_resident, it.peak_resident_bytes);
    }
    EXPECT_EQ(storage.ListWithPrefix("spill/").size(), 0u);
  }
  return out;
}

class AlgoDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(AlgoDeterminismTest, FailureFreeRunsMatchSerial) {
  AlgoRun serial = RunBothAlgos(1, /*with_failures=*/false);
  AlgoRun parallel = RunBothAlgos(GetParam(), /*with_failures=*/false);
  EXPECT_EQ(serial.cc_labels, parallel.cc_labels);
  EXPECT_EQ(serial.pr_ranks, parallel.pr_ranks);
  EXPECT_EQ(serial.cc_supersteps, parallel.cc_supersteps);
  EXPECT_EQ(serial.pr_iterations, parallel.pr_iterations);
  EXPECT_EQ(serial.cc_messages, parallel.cc_messages);
  EXPECT_EQ(serial.pr_messages, parallel.pr_messages);
  EXPECT_EQ(serial.cc_sim_ns, parallel.cc_sim_ns);
  EXPECT_EQ(serial.pr_sim_ns, parallel.pr_sim_ns);
}

TEST_P(AlgoDeterminismTest, FailureAndCompensationRunsMatchSerial) {
  AlgoRun serial = RunBothAlgos(1, /*with_failures=*/true);
  AlgoRun parallel = RunBothAlgos(GetParam(), /*with_failures=*/true);
  EXPECT_EQ(serial.cc_labels, parallel.cc_labels);
  EXPECT_EQ(serial.pr_ranks, parallel.pr_ranks);
  EXPECT_EQ(serial.cc_supersteps, parallel.cc_supersteps);
  EXPECT_EQ(serial.pr_iterations, parallel.pr_iterations);
  EXPECT_EQ(serial.cc_messages, parallel.cc_messages);
  EXPECT_EQ(serial.pr_messages, parallel.pr_messages);
  EXPECT_EQ(serial.cc_sim_ns, parallel.cc_sim_ns);
  EXPECT_EQ(serial.pr_sim_ns, parallel.pr_sim_ns);
}

TEST_P(AlgoDeterminismTest, CachingIsByteInvisibleInResults) {
  // The loop-invariant cache only removes work: failure-free runs with the
  // cache on and off converge to byte-identical labels and ranks in the
  // same number of supersteps, at every thread count — while shuffling
  // strictly fewer messages and charging strictly less simulated time.
  AlgoRun cached = RunBothAlgos(GetParam(), /*with_failures=*/false,
                                /*cache_loop_invariant=*/true);
  AlgoRun plain = RunBothAlgos(GetParam(), /*with_failures=*/false,
                               /*cache_loop_invariant=*/false);
  EXPECT_EQ(cached.cc_labels, plain.cc_labels);
  EXPECT_EQ(cached.pr_ranks, plain.pr_ranks);
  EXPECT_EQ(cached.cc_supersteps, plain.cc_supersteps);
  EXPECT_EQ(cached.pr_iterations, plain.pr_iterations);
  // The drivers co-partition static inputs before the loop, so the skipped
  // shuffles move no records — caching cannot change the message counts,
  // only remove the per-superstep scatter/gather and index-build work.
  EXPECT_EQ(cached.cc_messages, plain.cc_messages);
  EXPECT_EQ(cached.pr_messages, plain.pr_messages);
  EXPECT_LT(cached.cc_sim_ns, plain.cc_sim_ns);
  EXPECT_LT(cached.pr_sim_ns, plain.pr_sim_ns);
}

TEST_P(AlgoDeterminismTest, CachingIsByteInvisibleUnderFailures) {
  // Same contract through the recovery path: failures invalidate the cache,
  // the rebuild is re-charged, and compensation still lands on the exact
  // results of the uncached run.
  AlgoRun cached = RunBothAlgos(GetParam(), /*with_failures=*/true,
                                /*cache_loop_invariant=*/true);
  AlgoRun plain = RunBothAlgos(GetParam(), /*with_failures=*/true,
                               /*cache_loop_invariant=*/false);
  EXPECT_EQ(cached.cc_labels, plain.cc_labels);
  EXPECT_EQ(cached.pr_ranks, plain.pr_ranks);
  EXPECT_EQ(cached.cc_supersteps, plain.cc_supersteps);
  EXPECT_EQ(cached.pr_iterations, plain.pr_iterations);
  EXPECT_EQ(cached.cc_messages, plain.cc_messages);
  EXPECT_EQ(cached.pr_messages, plain.pr_messages);
  EXPECT_LT(cached.cc_sim_ns, plain.cc_sim_ns);
  EXPECT_LT(cached.pr_sim_ns, plain.pr_sim_ns);
}

TEST_P(AlgoDeterminismTest, TinyBudgetSpillsStayByteInvisible) {
  // DESIGN.md §11: a memory budget far below peak residency forces spills
  // and reloads every superstep — through an injected failure that also
  // invalidates spilled entries — yet labels, ranks, and superstep counts
  // must be byte-identical to the unlimited run at every thread count.
  constexpr uint64_t kTinyBudget = 1;
  AlgoRun unlimited = RunBothAlgos(GetParam(), /*with_failures=*/true,
                                   /*cache_loop_invariant=*/true,
                                   /*memory_budget_bytes=*/0);
  AlgoRun tiny = RunBothAlgos(GetParam(), /*with_failures=*/true,
                              /*cache_loop_invariant=*/true, kTinyBudget);

  // Results are a pure function of the data, never of the budget.
  EXPECT_EQ(unlimited.cc_labels, tiny.cc_labels);
  EXPECT_EQ(unlimited.pr_ranks, tiny.pr_ranks);
  EXPECT_EQ(unlimited.cc_supersteps, tiny.cc_supersteps);
  EXPECT_EQ(unlimited.pr_iterations, tiny.pr_iterations);
  EXPECT_EQ(unlimited.cc_messages, tiny.cc_messages);
  EXPECT_EQ(unlimited.pr_messages, tiny.pr_messages);

  // The budget bites: the unlimited run never touches storage, the tiny
  // one thrashes (and pays for it in simulated I/O).
  EXPECT_EQ(unlimited.cc_spills, 0u);
  EXPECT_EQ(unlimited.pr_spills, 0u);
  EXPECT_GT(tiny.cc_spills, 0u);
  EXPECT_GT(tiny.pr_spills, 0u);
  EXPECT_GT(tiny.cc_unspills, 0u);
  EXPECT_GT(tiny.pr_unspills, 0u);
  EXPECT_GT(tiny.cc_sim_ns, unlimited.cc_sim_ns);
  EXPECT_GT(tiny.pr_sim_ns, unlimited.pr_sim_ns);
  // Peak residency is measured identically in both runs: the high-water
  // mark comes from filling the artifacts, before any eviction pass.
  EXPECT_EQ(unlimited.cc_peak_resident, tiny.cc_peak_resident);
  EXPECT_EQ(unlimited.pr_peak_resident, tiny.pr_peak_resident);
}

TEST_P(AlgoDeterminismTest, BudgetedRunsMatchSerialExactly) {
  // Per configuration (budget fixed), every observable — results, stats,
  // spill counts, and the SimClock — is identical at any thread count:
  // eviction order is logical-LRU, never wall time.
  constexpr uint64_t kTinyBudget = 1;
  AlgoRun serial = RunBothAlgos(1, /*with_failures=*/true,
                                /*cache_loop_invariant=*/true, kTinyBudget);
  AlgoRun parallel = RunBothAlgos(GetParam(), /*with_failures=*/true,
                                  /*cache_loop_invariant=*/true, kTinyBudget);
  EXPECT_EQ(serial.cc_labels, parallel.cc_labels);
  EXPECT_EQ(serial.pr_ranks, parallel.pr_ranks);
  EXPECT_EQ(serial.cc_supersteps, parallel.cc_supersteps);
  EXPECT_EQ(serial.pr_iterations, parallel.pr_iterations);
  EXPECT_EQ(serial.cc_messages, parallel.cc_messages);
  EXPECT_EQ(serial.pr_messages, parallel.pr_messages);
  EXPECT_EQ(serial.cc_spills, parallel.cc_spills);
  EXPECT_EQ(serial.pr_spills, parallel.pr_spills);
  EXPECT_EQ(serial.cc_unspills, parallel.cc_unspills);
  EXPECT_EQ(serial.pr_unspills, parallel.pr_unspills);
  EXPECT_EQ(serial.cc_peak_resident, parallel.cc_peak_resident);
  EXPECT_EQ(serial.pr_peak_resident, parallel.pr_peak_resident);
  EXPECT_EQ(serial.cc_sim_ns, parallel.cc_sim_ns);
  EXPECT_EQ(serial.pr_sim_ns, parallel.pr_sim_ns);
}

TEST_P(AlgoDeterminismTest, RecoveredResultIsCorrect) {
  // Under failures + compensation the job must still converge to the true
  // components, at any thread count.
  Rng rng(2025);
  graph::Graph directed = graph::Rmat(9, 6, &rng);
  graph::Graph undirected(directed.num_vertices(), /*directed=*/false);
  for (const graph::Edge& e : directed.edges()) {
    Status s = undirected.AddEdge(e.src, e.dst);
    ASSERT_TRUE(s.ok());
  }
  auto truth = graph::ReferenceConnectedComponents(undirected);

  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{2, {3}}});
  iteration::JobEnv env;
  env.failures = &failures;
  env.job_id = "det-cc-correct";
  algos::ConnectedComponentsOptions options;
  options.num_partitions = 4;
  options.num_threads = GetParam();
  algos::FixComponentsCompensation fix(&undirected);
  core::OptimisticRecoveryPolicy policy(&fix);
  auto result =
      algos::RunConnectedComponents(undirected, options, env, &policy,
                                    nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->labels, truth);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, AlgoDeterminismTest,
                         ::testing::Values(1, 2, 8));


// ------------------------------- confined-log recovery determinism --

/// Same two algorithms recovered by ConfinedLogReplayPolicy (DESIGN.md
/// §14) instead of compensation. `message_log` may only be off for
/// failure-free runs — the policy refuses to recover without the log.
AlgoRun RunBothAlgosConfinedLog(int num_threads, bool with_failures,
                                bool message_log = true,
                                uint64_t memory_budget_bytes = 0) {
  AlgoRun out;
  Rng rng(2025);
  graph::Graph directed = graph::Rmat(9, 6, &rng);  // 512 vertices

  // ---- PageRank (bulk: replay alone restores the exact state) ----
  {
    runtime::SimClock clock;
    runtime::CostModel costs;
    runtime::MetricsRegistry metrics;
    runtime::StableStorage storage(&clock, &costs);
    runtime::FailureSchedule failures(
        with_failures
            ? std::vector<runtime::FailureEvent>{{3, {1}}, {7, {0, 2}}}
            : std::vector<runtime::FailureEvent>{});
    iteration::JobEnv env;
    env.clock = &clock;
    env.costs = &costs;
    env.metrics = &metrics;
    env.failures = &failures;
    env.storage = &storage;
    env.job_id = "clog-pr";

    algos::PageRankOptions options;
    options.num_partitions = 4;
    options.num_threads = num_threads;
    options.max_iterations = 12;
    options.message_log = message_log;
    options.memory_budget_bytes = memory_budget_bytes;
    core::ConfinedLogReplayPolicy policy(2);
    auto result = algos::RunPageRank(directed, options, env, &policy, nullptr);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return out;
    out.pr_ranks = result->ranks;
    out.pr_iterations = result->iterations;
    out.pr_sim_ns = clock.TotalNs();
    for (const auto& it : metrics.iterations()) {
      out.pr_messages += it.messages_shuffled;
      out.pr_spills += it.spills;
      out.pr_unspills += it.unspills;
    }
    // Bulk confined-log writes no checkpoints; the only storage traffic is
    // budget-driven spill, and every blob dies with its owner.
    EXPECT_EQ(storage.ListWithPrefix("clog-pr/").size(), 0u);
    EXPECT_EQ(storage.ListWithPrefix("spill/").size(), 0u);
  }

  // ---- Connected Components (delta: snapshot + replay + refresher) ----
  {
    graph::Graph undirected(directed.num_vertices(), /*directed=*/false);
    for (const graph::Edge& e : directed.edges()) {
      Status s = undirected.AddEdge(e.src, e.dst);
      EXPECT_TRUE(s.ok());
    }
    runtime::SimClock clock;
    runtime::CostModel costs;
    runtime::MetricsRegistry metrics;
    runtime::StableStorage storage(&clock, &costs);
    runtime::FailureSchedule failures(
        with_failures ? std::vector<runtime::FailureEvent>{{2, {3}}}
                      : std::vector<runtime::FailureEvent>{});
    iteration::JobEnv env;
    env.clock = &clock;
    env.costs = &costs;
    env.metrics = &metrics;
    env.failures = &failures;
    env.storage = &storage;
    env.job_id = "clog-cc";

    algos::ConnectedComponentsOptions options;
    options.num_partitions = 4;
    options.num_threads = num_threads;
    options.message_log = message_log;
    options.memory_budget_bytes = memory_budget_bytes;
    core::ConfinedLogReplayPolicy policy(
        2, algos::MakeNeighborhoodRefresher(&undirected));
    auto result =
        algos::RunConnectedComponents(undirected, options, env, &policy,
                                      nullptr);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return out;
    out.cc_labels = result->labels;
    out.cc_supersteps = result->supersteps_executed;
    out.cc_sim_ns = clock.TotalNs();
    for (const auto& it : metrics.iterations()) {
      out.cc_messages += it.messages_shuffled;
      out.cc_spills += it.spills;
      out.cc_unspills += it.unspills;
    }
    EXPECT_EQ(storage.ListWithPrefix("spill/").size(), 0u);
  }
  return out;
}

class ConfinedLogDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(ConfinedLogDeterminismTest, FailureFreeLoggedRunEqualsUnlogged) {
  // The acceptance contract of the message log: with no failure fired, a
  // logged run is bit-equal to an unlogged one — results, superstep
  // counts, message counts, AND simulated charges (logging is free in
  // simulated time; only wall clock pays for the copies).
  AlgoRun logged = RunBothAlgosConfinedLog(GetParam(), /*with_failures=*/false,
                                           /*message_log=*/true);
  AlgoRun unlogged = RunBothAlgosConfinedLog(GetParam(),
                                             /*with_failures=*/false,
                                             /*message_log=*/false);
  EXPECT_EQ(logged.cc_labels, unlogged.cc_labels);
  EXPECT_EQ(logged.pr_ranks, unlogged.pr_ranks);
  EXPECT_EQ(logged.cc_supersteps, unlogged.cc_supersteps);
  EXPECT_EQ(logged.pr_iterations, unlogged.pr_iterations);
  EXPECT_EQ(logged.cc_messages, unlogged.cc_messages);
  EXPECT_EQ(logged.pr_messages, unlogged.pr_messages);
  EXPECT_EQ(logged.cc_sim_ns, unlogged.cc_sim_ns);
  EXPECT_EQ(logged.pr_sim_ns, unlogged.pr_sim_ns);
}

TEST_P(ConfinedLogDeterminismTest, FailureFreeRunsMatchSerial) {
  AlgoRun serial = RunBothAlgosConfinedLog(1, /*with_failures=*/false);
  AlgoRun parallel = RunBothAlgosConfinedLog(GetParam(),
                                             /*with_failures=*/false);
  EXPECT_EQ(serial.cc_labels, parallel.cc_labels);
  EXPECT_EQ(serial.pr_ranks, parallel.pr_ranks);
  EXPECT_EQ(serial.cc_supersteps, parallel.cc_supersteps);
  EXPECT_EQ(serial.pr_iterations, parallel.pr_iterations);
  EXPECT_EQ(serial.cc_messages, parallel.cc_messages);
  EXPECT_EQ(serial.pr_messages, parallel.pr_messages);
  EXPECT_EQ(serial.cc_sim_ns, parallel.cc_sim_ns);
  EXPECT_EQ(serial.pr_sim_ns, parallel.pr_sim_ns);
}

TEST_P(ConfinedLogDeterminismTest, RecoveryRunsMatchSerial) {
  // Replay is serial by construction, but the surrounding supersteps are
  // not: the whole failed run — including the recovery charges — must be a
  // pure function of the data at any thread count.
  AlgoRun serial = RunBothAlgosConfinedLog(1, /*with_failures=*/true);
  AlgoRun parallel = RunBothAlgosConfinedLog(GetParam(),
                                             /*with_failures=*/true);
  EXPECT_EQ(serial.cc_labels, parallel.cc_labels);
  EXPECT_EQ(serial.pr_ranks, parallel.pr_ranks);
  EXPECT_EQ(serial.cc_supersteps, parallel.cc_supersteps);
  EXPECT_EQ(serial.pr_iterations, parallel.pr_iterations);
  EXPECT_EQ(serial.cc_messages, parallel.cc_messages);
  EXPECT_EQ(serial.pr_messages, parallel.pr_messages);
  EXPECT_EQ(serial.cc_sim_ns, parallel.cc_sim_ns);
  EXPECT_EQ(serial.pr_sim_ns, parallel.pr_sim_ns);
}

TEST_P(ConfinedLogDeterminismTest, BulkRecoveryIsExact) {
  // For a bulk iteration, replaying the failed superstep's logged messages
  // rebuilds the exact pre-failure state: the failed run converges on the
  // same iteration with the same ranks and the same shuffle traffic as a
  // failure-free run — nothing is recomputed, only replayed.
  AlgoRun failed = RunBothAlgosConfinedLog(GetParam(), /*with_failures=*/true);
  AlgoRun clean = RunBothAlgosConfinedLog(GetParam(), /*with_failures=*/false);
  EXPECT_EQ(failed.pr_ranks, clean.pr_ranks);
  EXPECT_EQ(failed.pr_iterations, clean.pr_iterations);
  EXPECT_EQ(failed.pr_messages, clean.pr_messages);
  // Delta CC still converges to the same labels; supersteps may differ
  // because the refresher re-propagates the restored region.
  EXPECT_EQ(failed.cc_labels, clean.cc_labels);
}

TEST_P(ConfinedLogDeterminismTest, TinyBudgetReplayStaysByteIdentical) {
  // A 1-byte budget forces every log channel (and cache entry) out to
  // storage, so recovery replays from *spilled* channels — results must
  // not move.
  AlgoRun unlimited = RunBothAlgosConfinedLog(GetParam(),
                                              /*with_failures=*/true,
                                              /*message_log=*/true,
                                              /*memory_budget_bytes=*/0);
  AlgoRun tiny = RunBothAlgosConfinedLog(GetParam(), /*with_failures=*/true,
                                         /*message_log=*/true,
                                         /*memory_budget_bytes=*/1);
  EXPECT_EQ(unlimited.cc_labels, tiny.cc_labels);
  EXPECT_EQ(unlimited.pr_ranks, tiny.pr_ranks);
  EXPECT_EQ(unlimited.cc_supersteps, tiny.cc_supersteps);
  EXPECT_EQ(unlimited.pr_iterations, tiny.pr_iterations);
  EXPECT_EQ(unlimited.cc_messages, tiny.cc_messages);
  EXPECT_EQ(unlimited.pr_messages, tiny.pr_messages);
  EXPECT_EQ(unlimited.pr_spills, 0u);
  EXPECT_GT(tiny.pr_spills, 0u);
  EXPECT_GT(tiny.pr_unspills, 0u);
  EXPECT_GT(tiny.cc_spills, 0u);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ConfinedLogDeterminismTest,
                         ::testing::Values(1, 2, 8));

// ------------------------- delta-iteration solution-set determinism --

/// Everything the partition-parallel ApplyDelta path could plausibly
/// perturb: exact solution-set bytes per partition, per-partition version
/// clocks, incremental EntriesSince views, and simulated-time charges.
struct DeltaRunFingerprint {
  std::vector<std::vector<Record>> solution_parts;
  std::vector<uint64_t> versions;
  std::vector<std::vector<Record>> entries_since_mid;
  int supersteps = 0;
  int failures_recovered = 0;
  int64_t sim_total_ns = 0;
  std::vector<int64_t> sim_by_charge;
  uint64_t checkpoint_bytes = 0;
};

/// Runs Connected Components through the delta driver directly (so the
/// final SolutionSet is observable), with two failures injected. With
/// `incremental_checkpoints`, recovery replays a DeltaCheckpointPolicy
/// chain; otherwise optimistic recovery compensates the loss.
DeltaRunFingerprint RunDeltaCc(int num_threads, bool incremental_checkpoints) {
  const int parts = 4;
  Rng rng(2025);
  graph::Graph directed = graph::Rmat(9, 6, &rng);
  graph::Graph undirected(directed.num_vertices(), /*directed=*/false);
  for (const graph::Edge& e : directed.edges()) {
    Status s = undirected.AddEdge(e.src, e.dst);
    EXPECT_TRUE(s.ok());
  }

  Plan plan = algos::BuildConnectedComponentsPlan();
  PartitionedDataset edges = algos::EdgePairs(undirected, parts);
  std::vector<Record> labels = algos::InitialLabels(undirected);
  PartitionedDataset workset =
      PartitionedDataset::HashPartitioned(labels, {0}, parts);
  Bindings statics;
  statics["edges"] = &edges;

  runtime::SimClock clock;
  runtime::CostModel costs;
  runtime::MetricsRegistry metrics;
  runtime::StableStorage storage(&clock, &costs);
  runtime::FailureSchedule failures(
      std::vector<runtime::FailureEvent>{{2, {3}}, {4, {0, 1}}});
  iteration::JobEnv env;
  env.clock = &clock;
  env.costs = &costs;
  env.metrics = &metrics;
  env.failures = &failures;
  env.storage = &storage;
  env.job_id = "det-delta-cc";

  iteration::DeltaIterationConfig config;
  config.max_iterations = 40;
  config.solution_key = {0};

  ExecOptions exec;
  exec.num_partitions = parts;
  exec.num_threads = num_threads;
  exec.clock = &clock;
  exec.costs = &costs;

  algos::FixComponentsCompensation fix(&undirected);
  core::OptimisticRecoveryPolicy optimistic(&fix);
  core::DeltaCheckpointPolicy checkpoints(/*interval=*/2);
  iteration::FaultTolerancePolicy* policy =
      incremental_checkpoints
          ? static_cast<iteration::FaultTolerancePolicy*>(&checkpoints)
          : &optimistic;

  iteration::DeltaIterationDriver driver(&plan, statics, config, exec, env);
  auto result = driver.Run(labels, workset, policy);
  EXPECT_TRUE(result.ok()) << result.status().ToString();

  DeltaRunFingerprint fp;
  if (!result.ok()) return fp;
  const iteration::SolutionSet& solution = result->final_solution;
  fp.versions = solution.VersionVector();
  for (int p = 0; p < solution.num_partitions(); ++p) {
    fp.solution_parts.push_back(solution.PartitionRecords(p));
    fp.entries_since_mid.push_back(
        solution.EntriesSince(p, solution.version(p) / 2));
  }
  fp.supersteps = result->supersteps_executed;
  fp.failures_recovered = result->failures_recovered;
  fp.sim_total_ns = clock.TotalNs();
  for (int c = 0; c < runtime::kNumCharges; ++c) {
    fp.sim_by_charge.push_back(clock.Of(static_cast<runtime::Charge>(c)));
  }
  fp.checkpoint_bytes = storage.bytes_written();
  return fp;
}

class DeltaDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(DeltaDeterminismTest, OptimisticRecoveryRunMatchesSerial) {
  DeltaRunFingerprint serial = RunDeltaCc(1, /*incremental_checkpoints=*/false);
  DeltaRunFingerprint parallel =
      RunDeltaCc(GetParam(), /*incremental_checkpoints=*/false);
  EXPECT_GT(serial.failures_recovered, 0);
  EXPECT_EQ(serial.solution_parts, parallel.solution_parts);
  EXPECT_EQ(serial.versions, parallel.versions);
  EXPECT_EQ(serial.entries_since_mid, parallel.entries_since_mid);
  EXPECT_EQ(serial.supersteps, parallel.supersteps);
  EXPECT_EQ(serial.failures_recovered, parallel.failures_recovered);
  EXPECT_EQ(serial.sim_total_ns, parallel.sim_total_ns);
  EXPECT_EQ(serial.sim_by_charge, parallel.sim_by_charge);
}

TEST_P(DeltaDeterminismTest, IncrementalCheckpointRunMatchesSerial) {
  DeltaRunFingerprint serial = RunDeltaCc(1, /*incremental_checkpoints=*/true);
  DeltaRunFingerprint parallel =
      RunDeltaCc(GetParam(), /*incremental_checkpoints=*/true);
  EXPECT_GT(serial.failures_recovered, 0);
  EXPECT_GT(serial.checkpoint_bytes, 0u);
  EXPECT_EQ(serial.solution_parts, parallel.solution_parts);
  EXPECT_EQ(serial.versions, parallel.versions);
  EXPECT_EQ(serial.entries_since_mid, parallel.entries_since_mid);
  EXPECT_EQ(serial.supersteps, parallel.supersteps);
  EXPECT_EQ(serial.failures_recovered, parallel.failures_recovered);
  EXPECT_EQ(serial.sim_total_ns, parallel.sim_total_ns);
  EXPECT_EQ(serial.sim_by_charge, parallel.sim_by_charge);
  // Incremental checkpoint I/O is data-dependent only.
  EXPECT_EQ(serial.checkpoint_bytes, parallel.checkpoint_bytes);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, DeltaDeterminismTest,
                         ::testing::Values(1, 2, 8));

}  // namespace
}  // namespace flinkless
