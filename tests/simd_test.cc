// SIMD kernel layer (DESIGN.md §15): every tier of the Kernels table is
// bit-identical to the portable scalar reference on random and adversarial
// inputs (tails shorter than a vector, INT64_MIN/MAX, wrapping sums, empty
// windows); the striped index probe and cached-hash rebuild match their
// record-path equivalents; serde bytes do not depend on the active tier;
// and the executor-level contract — outputs, stats, and simulated time are
// byte-identical across simd_level × thread count × injected failures, with
// the batched UDF boundary keeping row_fallback_ops at zero on the two
// ported workloads.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "algos/connected_components.h"
#include "algos/pagerank.h"
#include "common/rng.h"
#include "core/policies.h"
#include "dataflow/columnar.h"
#include "dataflow/dataset.h"
#include "dataflow/executor.h"
#include "dataflow/simd.h"
#include "graph/generators.h"
#include "iteration/context.h"
#include "runtime/failure.h"
#include "runtime/metrics.h"
#include "runtime/sim_clock.h"
#include "runtime/stable_storage.h"

namespace flinkless {
namespace {

namespace simd = dataflow::simd;

using dataflow::ColumnarBatch;
using dataflow::ExecOptions;
using dataflow::ExecStats;
using dataflow::Executor;
using dataflow::FlatKeyIndex;
using dataflow::MakeRecord;
using dataflow::PartitionedDataset;
using dataflow::Plan;
using dataflow::Record;
using dataflow::ReduceKind;
using dataflow::ValueType;

/// Every tier runnable on this CPU (always includes kScalar).
std::vector<simd::Level> SupportedLevels() {
  std::vector<simd::Level> levels;
  for (simd::Level level :
       {simd::Level::kScalar, simd::Level::kSSE42, simd::Level::kAVX2}) {
    if (simd::Supported(level)) levels.push_back(level);
  }
  return levels;
}

/// Sizes that cover empty input, sub-vector tails for 4- and 8-lane
/// kernels, exact vector multiples, and a straddling remainder.
const std::vector<size_t> kSizes = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100};

std::vector<int64_t> AdversarialKeys(size_t n) {
  const int64_t kMin = std::numeric_limits<int64_t>::min();
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  const std::vector<int64_t> pool = {0, 1, -1, kMin, kMax, kMin + 1, kMax - 1,
                                     int64_t{1} << 62, -(int64_t{1} << 62)};
  Rng rng(2024 + n);
  std::vector<int64_t> keys(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = (i % 3 == 0) ? pool[rng.NextBounded(pool.size())]
                           : static_cast<int64_t>(rng.Next());
  }
  return keys;
}

// ------------------------------------------------------ kernel properties --

TEST(SimdKernelsTest, HashKey64MatchesRecordHashKeyOnEveryTier) {
  for (simd::Level level : SupportedLevels()) {
    const simd::Kernels& k = simd::KernelsFor(level);
    for (size_t n : kSizes) {
      std::vector<int64_t> keys = AdversarialKeys(n);
      std::vector<uint64_t> out(n + 1, 0xCDCDCDCDCDCDCDCDull);
      k.hash_key64(keys.data(), n, out.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], dataflow::HashKey(MakeRecord(keys[i]), {0}))
            << simd::LevelName(level) << " n=" << n << " i=" << i;
      }
      // The kernel must not write past n.
      EXPECT_EQ(out[n], 0xCDCDCDCDCDCDCDCDull) << simd::LevelName(level);
    }
  }
}

TEST(SimdKernelsTest, DeltaSumPrefixSumMatchScalarOnEveryTier) {
  const simd::Kernels& scalar = simd::KernelsFor(simd::Level::kScalar);
  for (simd::Level level : SupportedLevels()) {
    const simd::Kernels& k = simd::KernelsFor(level);
    for (size_t n : kSizes) {
      Rng rng(7 + n);
      // Offsets and lengths that wrap uint32 when summed naively.
      std::vector<uint32_t> values(n);
      for (auto& v : values) {
        v = (rng.NextBounded(4) == 0) ? 0xFFFF0000u
                                      : static_cast<uint32_t>(rng.Next());
      }
      std::vector<uint32_t> offsets(n + 1);
      offsets[0] = static_cast<uint32_t>(rng.Next());
      for (size_t i = 0; i < n; ++i) offsets[i + 1] = offsets[i] + values[i];

      std::vector<uint32_t> lens(n), ref_lens(n);
      k.delta_u32(offsets.data(), n, lens.data());
      scalar.delta_u32(offsets.data(), n, ref_lens.data());
      EXPECT_EQ(lens, ref_lens) << simd::LevelName(level) << " n=" << n;

      EXPECT_EQ(k.sum_u32(values.data(), n), scalar.sum_u32(values.data(), n))
          << simd::LevelName(level) << " n=" << n;

      std::vector<uint32_t> prefix(n), ref_prefix(n);
      k.prefix_sum_u32(values.data(), n, prefix.data());
      scalar.prefix_sum_u32(values.data(), n, ref_prefix.data());
      EXPECT_EQ(prefix, ref_prefix) << simd::LevelName(level) << " n=" << n;
    }
  }
}

TEST(SimdKernelsTest, Int64FoldsMatchScalarOnEveryTier) {
  const simd::Kernels& scalar = simd::KernelsFor(simd::Level::kScalar);
  for (simd::Level level : SupportedLevels()) {
    const simd::Kernels& k = simd::KernelsFor(level);
    for (size_t n : kSizes) {
      if (n == 0) continue;  // folds require n >= 1
      std::vector<int64_t> values = AdversarialKeys(n);
      EXPECT_EQ(k.min_i64(values.data(), n), scalar.min_i64(values.data(), n))
          << simd::LevelName(level) << " n=" << n;
      EXPECT_EQ(k.max_i64(values.data(), n), scalar.max_i64(values.data(), n))
          << simd::LevelName(level) << " n=" << n;
      // Sum wraps two's-complement; INT64_MIN/MAX entries exercise the wrap.
      EXPECT_EQ(k.sum_i64(values.data(), n), scalar.sum_i64(values.data(), n))
          << simd::LevelName(level) << " n=" << n;
    }
  }
}

TEST(SimdKernelsTest, AllEqualDetectsMismatchAtEveryPosition) {
  for (simd::Level level : SupportedLevels()) {
    const simd::Kernels& k = simd::KernelsFor(level);
    EXPECT_TRUE(k.all_equal_i64(nullptr, 0, 42));  // vacuous
    for (size_t n : kSizes) {
      if (n == 0) continue;
      std::vector<int64_t> values(n, -7);
      EXPECT_TRUE(k.all_equal_i64(values.data(), n, -7))
          << simd::LevelName(level) << " n=" << n;
      EXPECT_FALSE(k.all_equal_i64(values.data(), n, -8))
          << simd::LevelName(level) << " n=" << n;
      for (size_t bad = 0; bad < n; ++bad) {
        values[bad] = std::numeric_limits<int64_t>::min();
        EXPECT_FALSE(k.all_equal_i64(values.data(), n, -7))
            << simd::LevelName(level) << " n=" << n << " bad=" << bad;
        values[bad] = -7;
      }
    }
  }
}

TEST(SimdKernelsTest, FirstEmptyFindsFirstNegativeSlotInWindow) {
  for (simd::Level level : SupportedLevels()) {
    const simd::Kernels& k = simd::KernelsFor(level);
    ASSERT_GE(k.probe_width, 1) << simd::LevelName(level);
    const int w = k.probe_width;
    std::vector<int32_t> slots(w, 5);
    EXPECT_EQ(k.first_empty(slots.data()), w) << simd::LevelName(level);
    for (int pos = 0; pos < w; ++pos) {
      std::vector<int32_t> window(w, 5);
      window[pos] = -1;
      // Entries after the first empty slot must not matter.
      for (int j = pos + 1; j < w; ++j) window[j] = (j % 2 == 0) ? -1 : 9;
      EXPECT_EQ(k.first_empty(window.data()), pos)
          << simd::LevelName(level) << " pos=" << pos;
    }
  }
}

TEST(SimdKernelsTest, RequestVocabularyParsesAndApplies) {
  simd::SimdLevel parsed = simd::SimdLevel::kAuto;
  EXPECT_TRUE(simd::ParseSimdLevel("off", &parsed));
  EXPECT_EQ(parsed, simd::SimdLevel::kOff);
  EXPECT_TRUE(simd::ParseSimdLevel("scalar", &parsed));
  EXPECT_EQ(parsed, simd::SimdLevel::kOff);
  EXPECT_TRUE(simd::ParseSimdLevel("sse4.2", &parsed));
  EXPECT_EQ(parsed, simd::SimdLevel::kSse42);
  EXPECT_TRUE(simd::ParseSimdLevel("avx2", &parsed));
  EXPECT_EQ(parsed, simd::SimdLevel::kAvx2);
  EXPECT_TRUE(simd::ParseSimdLevel("max", &parsed));
  EXPECT_EQ(parsed, simd::SimdLevel::kMax);
  EXPECT_TRUE(simd::ParseSimdLevel("auto", &parsed));
  EXPECT_EQ(parsed, simd::SimdLevel::kAuto);
  EXPECT_FALSE(simd::ParseSimdLevel("avx512", &parsed));
  EXPECT_FALSE(simd::ParseSimdLevel("", &parsed));

  // kAuto leaves the active tier untouched; kOff always lands on scalar.
  const simd::Level prev = simd::ActiveLevel();
  EXPECT_EQ(simd::ApplySimdLevel(simd::SimdLevel::kAuto), prev);
  EXPECT_EQ(simd::ApplySimdLevel(simd::SimdLevel::kOff),
            simd::Level::kScalar);
  EXPECT_EQ(simd::ActiveKernels().level, simd::Level::kScalar);
  simd::SetLevel(prev);
}

// --------------------------------------------------- striped index probes --

std::vector<Record> KeyedRows(size_t n, uint64_t key_space, uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(MakeRecord(static_cast<int64_t>(rng.NextBounded(key_space)),
                              static_cast<int64_t>(i)));
  }
  return rows;
}

void ExpectStripeMatchesFindFirst(const FlatKeyIndex& index,
                                  const std::vector<Record>& probes) {
  std::vector<int64_t> keys;
  ASSERT_TRUE(dataflow::ExtractKey64(probes, {0}, &keys));
  std::vector<uint64_t> hashes(keys.size());
  simd::ActiveKernels().hash_key64(keys.data(), keys.size(), hashes.data());
  std::vector<int32_t> first(keys.size(), -2);
  index.FindFirstStripe(keys.data(), hashes.data(), keys.size(), first.data());
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(first[i], index.FindFirst(probes[i], {0},
                                        dataflow::HashKey(probes[i], {0})))
        << simd::LevelName(simd::ActiveLevel()) << " probe " << i;
  }
}

TEST(FlatKeyIndexSimdTest, FindFirstStripeMatchesFindFirstOnEveryTier) {
  std::vector<Record> rows = KeyedRows(1500, 97, 11);
  // Probes: hits, misses, and the sub-stripe tail sizes.
  std::vector<Record> probes = KeyedRows(777, 160, 12);
  const simd::Level prev = simd::ActiveLevel();
  for (simd::Level level : SupportedLevels()) {
    simd::SetLevel(level);
    FlatKeyIndex index;
    index.Build(rows, {0});
    ASSERT_TRUE(index.key64_probe_ready());
    ExpectStripeMatchesFindFirst(index, probes);
    for (size_t n : kSizes) {
      std::vector<Record> tail(probes.begin(),
                               probes.begin() + std::min(n, probes.size()));
      ExpectStripeMatchesFindFirst(index, tail);
    }
  }
  simd::SetLevel(prev);
}

TEST(FlatKeyIndexSimdTest, StripeHandlesAllDuplicateAndClusteredKeys) {
  // All-duplicate keys produce one long chain; adversarial key values
  // cluster hashes only if the mix function were broken — either way the
  // probe loop must terminate and match FindFirst.
  std::vector<Record> rows;
  for (int64_t i = 0; i < 300; ++i) {
    rows.push_back(MakeRecord(int64_t{42}, i));
  }
  std::vector<Record> probes;
  probes.push_back(MakeRecord(int64_t{42}, int64_t{0}));
  probes.push_back(MakeRecord(int64_t{43}, int64_t{0}));
  probes.push_back(MakeRecord(std::numeric_limits<int64_t>::min(), int64_t{0}));
  const simd::Level prev = simd::ActiveLevel();
  for (simd::Level level : SupportedLevels()) {
    simd::SetLevel(level);
    FlatKeyIndex index;
    index.Build(rows, {0});
    ASSERT_TRUE(index.key64_probe_ready());
    ExpectStripeMatchesFindFirst(index, probes);
  }
  simd::SetLevel(prev);
}

TEST(FlatKeyIndexSimdTest, BuildWithHashesMatchesPlainBuild) {
  std::vector<Record> rows = KeyedRows(1200, 64, 21);
  FlatKeyIndex plain;
  plain.Build(rows, {0});

  FlatKeyIndex adopted;
  adopted.BuildWithHashes(rows, {0}, std::vector<uint64_t>(plain.row_hashes()));
  EXPECT_EQ(adopted.row_hashes(), plain.row_hashes());
  ASSERT_EQ(adopted.heads(), plain.heads());
  for (int32_t head : plain.heads()) {
    for (int32_t r = head; r >= 0; r = plain.Next(r)) {
      EXPECT_EQ(adopted.Next(r), plain.Next(r));
    }
  }

  // A size mismatch must fall back to a plain (re-hashing) Build.
  FlatKeyIndex fallback;
  fallback.BuildWithHashes(rows, {0}, std::vector<uint64_t>(3, 0));
  EXPECT_EQ(fallback.row_hashes(), plain.row_hashes());
  EXPECT_EQ(fallback.heads(), plain.heads());
}

// ------------------------------------------------------ serde tier parity --

TEST(SimdSerdeTest, DatasetBytesDoNotDependOnTier) {
  Rng rng(5);
  std::vector<Record> records;
  for (int64_t i = 0; i < 800; ++i) {
    // String lengths 0..40 make arena copies straddle vector lanes.
    records.push_back(MakeRecord(static_cast<int64_t>(rng.Next()),
                                 static_cast<double>(i) * 0.125,
                                 std::string(rng.NextBounded(41), 'a' + i % 26)));
  }
  PartitionedDataset ds = PartitionedDataset::RoundRobin(std::move(records), 4);

  const simd::Level prev = simd::ActiveLevel();
  simd::SetLevel(simd::Level::kScalar);
  std::vector<uint8_t> scalar_blob = SerializePartitionedDataset(ds);
  std::vector<uint8_t> blob;
  for (simd::Level level : SupportedLevels()) {
    simd::SetLevel(level);
    blob = SerializePartitionedDataset(ds);
    EXPECT_EQ(blob, scalar_blob) << simd::LevelName(level);
    auto back = dataflow::DeserializePartitionedDataset(scalar_blob);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    for (int p = 0; p < ds.num_partitions(); ++p) {
      EXPECT_EQ(back->partition(p), ds.partition(p))
          << simd::LevelName(level) << " partition " << p;
    }
  }
  simd::SetLevel(prev);
}

// ------------------------------------------- executor-level equivalences --

Plan BuildTypedReducePlan(ReduceKind kind, bool declare) {
  Plan plan;
  auto src = plan.Source("in");
  dataflow::NodeId reduced;
  switch (kind) {
    case ReduceKind::kSumInt64:
      reduced = plan.ReduceByKey(
          src, {0},
          [](const Record& a, const Record& b) {
            return MakeRecord(a[0].AsInt64(), a[1].AsInt64() + b[1].AsInt64());
          },
          "sum64", /*pre_combine=*/true);
      break;
    case ReduceKind::kMinInt64:
      reduced = plan.ReduceByKey(
          src, {0},
          [](const Record& a, const Record& b) {
            return MakeRecord(a[0].AsInt64(),
                              std::min(a[1].AsInt64(), b[1].AsInt64()));
          },
          "min64", /*pre_combine=*/true);
      break;
    case ReduceKind::kMaxInt64:
      reduced = plan.ReduceByKey(
          src, {0},
          [](const Record& a, const Record& b) {
            return MakeRecord(a[0].AsInt64(),
                              std::max(a[1].AsInt64(), b[1].AsInt64()));
          },
          "max64", /*pre_combine=*/true);
      break;
    default:
      reduced = plan.ReduceByKey(
          src, {0},
          [](const Record& a, const Record& b) {
            return MakeRecord(a[0].AsInt64(), a[1].AsDouble() + b[1].AsDouble());
          },
          "sumf64", /*pre_combine=*/true);
      break;
  }
  if (declare) plan.DeclareReduce(reduced, kind, 1);
  plan.Output(reduced, "out");
  return plan;
}

class SimdExecTest : public ::testing::TestWithParam<int> {};

TEST_P(SimdExecTest, TypedReduceMatchesGenericReduce) {
  const int threads = GetParam();
  for (ReduceKind kind : {ReduceKind::kSumInt64, ReduceKind::kMinInt64,
                          ReduceKind::kMaxInt64, ReduceKind::kSumDouble}) {
    Rng rng(17);
    std::vector<Record> records;
    for (int64_t i = 0; i < 3000; ++i) {
      int64_t key = static_cast<int64_t>(rng.NextBounded(150));
      if (kind == ReduceKind::kSumDouble) {
        records.push_back(MakeRecord(key, static_cast<double>(i) * 0.5));
      } else {
        // Duplicated extremes exercise the <=/>= keep-first tie rule.
        int64_t v = (i % 11 == 0) ? std::numeric_limits<int64_t>::min() + i
                                  : static_cast<int64_t>(rng.Next() >> 1);
        records.push_back(MakeRecord(key, v));
      }
    }
    auto in = PartitionedDataset::RoundRobin(std::move(records), 8);

    auto run = [&](bool declare, ExecStats* stats, runtime::SimClock* clock,
                   const runtime::CostModel* costs) {
      Plan plan = BuildTypedReducePlan(kind, declare);
      ExecOptions options;
      options.num_partitions = 8;
      options.num_threads = threads;
      options.use_columnar = true;
      options.clock = clock;
      options.costs = costs;
      Executor executor(options);
      auto outs = executor.Execute(plan, {{"in", &in}}, stats);
      EXPECT_TRUE(outs.ok()) << outs.status().ToString();
      return std::move(outs->at("out"));
    };

    runtime::CostModel costs;
    runtime::SimClock typed_clock, generic_clock;
    ExecStats typed_stats, generic_stats;
    PartitionedDataset typed = run(true, &typed_stats, &typed_clock, &costs);
    PartitionedDataset generic =
        run(false, &generic_stats, &generic_clock, &costs);
    ASSERT_EQ(typed.num_partitions(), generic.num_partitions());
    for (int p = 0; p < typed.num_partitions(); ++p) {
      EXPECT_EQ(typed.partition(p), generic.partition(p))
          << "kind " << static_cast<int>(kind) << " partition " << p;
    }
    EXPECT_EQ(typed_stats.records_processed, generic_stats.records_processed);
    EXPECT_EQ(typed_stats.messages_shuffled, generic_stats.messages_shuffled);
    EXPECT_EQ(typed_clock.TotalNs(), generic_clock.TotalNs());
  }
}

TEST_P(SimdExecTest, BatchMapImplMatchesRecordImplAndCountsModes) {
  const int threads = GetParam();
  Plan plan;
  auto src = plan.Source("in");
  auto scaled = plan.Map(
      src,
      [](const Record& r) {
        return MakeRecord(r[0].AsInt64() * 3, r[1].AsDouble() + 1.0);
      },
      "scale");
  plan.BatchImpl(scaled, [](const ColumnarBatch& in, ColumnarBatch* out) {
    out->Reset({ValueType::kInt64, ValueType::kDouble});
    std::vector<int64_t>& ids = out->MutableInt64Column(0);
    std::vector<double>& vals = out->MutableDoubleColumn(1);
    ids = in.Int64Column(0);
    vals = in.DoubleColumn(1);
    for (auto& id : ids) id *= 3;
    for (auto& v : vals) v += 1.0;
    out->FinishRows(in.num_rows());
  });
  auto expanded = plan.FlatMap(
      scaled,
      [](const Record& r, std::vector<Record>* out) {
        if (r[0].AsInt64() % 2 == 0) out->push_back(r);
      },
      "evens");
  plan.BatchImpl(expanded, [](const ColumnarBatch& in, ColumnarBatch* out) {
    out->Reset({ValueType::kInt64, ValueType::kDouble});
    std::vector<int64_t>& ids = out->MutableInt64Column(0);
    std::vector<double>& vals = out->MutableDoubleColumn(1);
    for (size_t i = 0; i < in.num_rows(); ++i) {
      if (in.Int64Column(0)[i] % 2 == 0) {
        ids.push_back(in.Int64Column(0)[i]);
        vals.push_back(in.DoubleColumn(1)[i]);
      }
    }
    out->FinishRows(ids.size());
  });
  plan.Output(expanded, "out");

  Rng rng(23);
  std::vector<Record> records;
  for (int64_t i = 0; i < 2000; ++i) {
    records.push_back(MakeRecord(static_cast<int64_t>(rng.NextBounded(500)),
                                 static_cast<double>(i)));
  }
  auto in = PartitionedDataset::RoundRobin(std::move(records), 8);

  auto run = [&](bool columnar, ExecStats* stats, runtime::SimClock* clock,
                 const runtime::CostModel* costs) {
    ExecOptions options;
    options.num_partitions = 8;
    options.num_threads = threads;
    options.use_columnar = columnar;
    options.clock = clock;
    options.costs = costs;
    Executor executor(options);
    auto outs = executor.Execute(plan, {{"in", &in}}, stats);
    EXPECT_TRUE(outs.ok()) << outs.status().ToString();
    return std::move(outs->at("out"));
  };

  runtime::CostModel costs;
  runtime::SimClock batch_clock, record_clock;
  ExecStats batch_stats, record_stats;
  PartitionedDataset batch = run(true, &batch_stats, &batch_clock, &costs);
  PartitionedDataset record = run(false, &record_stats, &record_clock, &costs);
  ASSERT_EQ(batch.num_partitions(), record.num_partitions());
  for (int p = 0; p < batch.num_partitions(); ++p) {
    EXPECT_EQ(batch.partition(p), record.partition(p)) << "partition " << p;
  }
  EXPECT_EQ(batch_stats.records_processed, record_stats.records_processed);
  EXPECT_EQ(batch_clock.TotalNs(), record_clock.TotalNs());
  // Both declared UDFs ran batched — no record-path fallback.
  EXPECT_GT(batch_stats.batch_ops, 0u);
  EXPECT_EQ(batch_stats.row_fallback_ops, 0u);
  // With columnar off, the same plan runs the record impls.
  EXPECT_EQ(record_stats.batch_ops, 0u);
  EXPECT_GT(record_stats.row_fallback_ops, 0u);
}

TEST(SimdExecTest, HeterogeneousInputFallsBackToRecordImpl) {
  Plan plan;
  auto src = plan.Source("in");
  auto first = plan.Map(
      src, [](const Record& r) { return MakeRecord(r[0].AsInt64()); },
      "first-col");
  plan.BatchImpl(first, [](const ColumnarBatch& in, ColumnarBatch* out) {
    out->Reset({ValueType::kInt64});
    out->MutableInt64Column(0) = in.Int64Column(0);
    out->FinishRows(in.num_rows());
  });
  plan.Output(first, "out");

  PartitionedDataset in(2);
  in.partition(0).push_back(MakeRecord(int64_t{1}, 2.0));
  in.partition(1).push_back(MakeRecord(int64_t{3}, std::string("mixed")));

  ExecOptions options;
  options.num_partitions = 2;
  options.use_columnar = true;
  Executor executor(options);
  ExecStats stats;
  auto outs = executor.Execute(plan, {{"in", &in}}, &stats);
  ASSERT_TRUE(outs.ok()) << outs.status().ToString();
  EXPECT_EQ(outs->at("out").partition(0), std::vector<Record>{MakeRecord(int64_t{1})});
  EXPECT_EQ(outs->at("out").partition(1), std::vector<Record>{MakeRecord(int64_t{3})});
  EXPECT_EQ(stats.batch_ops, 0u);
  EXPECT_EQ(stats.row_fallback_ops, 1u);
}

TEST(SimdExecTest, BatchMapRowCountMismatchIsAnError) {
  Plan plan;
  auto src = plan.Source("in");
  auto bad = plan.Map(
      src, [](const Record& r) { return r; }, "identity");
  plan.BatchImpl(bad, [](const ColumnarBatch& in, ColumnarBatch* out) {
    // A kMap batch impl must preserve the row count; dropping rows is a
    // contract violation the executor converts into a clean error.
    out->Reset({ValueType::kInt64});
    if (in.num_rows() > 1) {
      out->MutableInt64Column(0).assign(in.num_rows() - 1, 0);
    }
    out->FinishRows(in.num_rows() > 1 ? in.num_rows() - 1 : 0);
  });
  plan.Output(bad, "out");

  std::vector<Record> records;
  for (int64_t i = 0; i < 100; ++i) records.push_back(MakeRecord(i));
  auto in = PartitionedDataset::RoundRobin(std::move(records), 2);

  ExecOptions options;
  options.num_partitions = 2;
  options.use_columnar = true;
  Executor executor(options);
  auto outs = executor.Execute(plan, {{"in", &in}}, nullptr);
  EXPECT_FALSE(outs.ok());
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, SimdExecTest, ::testing::Values(1, 2, 8));

// -------------------------------------- algorithm-level tier byte-identity --

struct SimdAlgoRun {
  std::vector<double> pr_ranks;
  std::vector<int64_t> cc_labels;
  int pr_iterations = 0;
  int cc_supersteps = 0;
  uint64_t pr_messages = 0;
  uint64_t cc_messages = 0;
  int64_t pr_sim_ns = 0;
  int64_t cc_sim_ns = 0;
  uint64_t batch_ops = 0;
  uint64_t row_fallback_ops = 0;
  uint64_t schema_cache_hits = 0;
};

SimdAlgoRun RunAlgosAtTier(int num_threads, simd::SimdLevel tier,
                           bool with_failures) {
  SimdAlgoRun out;
  Rng rng(2025);
  graph::Graph directed = graph::Rmat(9, 6, &rng);  // 512 vertices

  {  // PageRank (bulk) with the batched base-contribution UDF.
    runtime::SimClock clock;
    runtime::CostModel costs;
    runtime::MetricsRegistry metrics;
    runtime::MetricsSink sink;
    runtime::StableStorage storage(&clock, &costs);
    runtime::FailureSchedule failures(
        with_failures ? std::vector<runtime::FailureEvent>{{3, {1}}, {7, {0, 2}}}
                      : std::vector<runtime::FailureEvent>{});
    iteration::JobEnv env;
    env.clock = &clock;
    env.costs = &costs;
    env.metrics = &metrics;
    env.metrics_sink = &sink;
    env.failures = &failures;
    env.storage = &storage;
    env.job_id = "simd-pr";

    algos::PageRankOptions options;
    options.num_partitions = 4;
    options.num_threads = num_threads;
    options.columnar_batch = true;
    options.simd = tier;
    options.max_iterations = 10;
    algos::FixRanksCompensation fix(directed.num_vertices());
    core::OptimisticRecoveryPolicy policy(&fix);
    auto result = algos::RunPageRank(directed, options, env, &policy, nullptr);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    out.pr_ranks = result->ranks;
    out.pr_iterations = result->iterations;
    out.pr_sim_ns = clock.TotalNs();
    for (const auto& it : metrics.iterations()) {
      out.pr_messages += it.messages_shuffled;
    }
    runtime::MetricsSnapshot snap = sink.Collect();
    out.batch_ops += snap.CounterTotal(runtime::metric::kExecBatchOps);
    out.row_fallback_ops +=
        snap.CounterTotal(runtime::metric::kExecRowFallbackOps);
    out.schema_cache_hits +=
        snap.CounterTotal(runtime::metric::kSchemaCacheHits);
  }

  {  // Connected components (delta) with the batched label-update UDF.
    graph::Graph undirected(directed.num_vertices(), /*directed=*/false);
    for (const graph::Edge& e : directed.edges()) {
      Status s = undirected.AddEdge(e.src, e.dst);
      EXPECT_TRUE(s.ok());
    }
    runtime::SimClock clock;
    runtime::CostModel costs;
    runtime::MetricsRegistry metrics;
    runtime::MetricsSink sink;
    runtime::StableStorage storage(&clock, &costs);
    runtime::FailureSchedule failures(
        with_failures ? std::vector<runtime::FailureEvent>{{2, {3}}}
                      : std::vector<runtime::FailureEvent>{});
    iteration::JobEnv env;
    env.clock = &clock;
    env.costs = &costs;
    env.metrics = &metrics;
    env.metrics_sink = &sink;
    env.failures = &failures;
    env.storage = &storage;
    env.job_id = "simd-cc";

    algos::ConnectedComponentsOptions options;
    options.num_partitions = 4;
    options.num_threads = num_threads;
    options.columnar_batch = true;
    options.simd = tier;
    algos::FixComponentsCompensation fix(&undirected);
    core::OptimisticRecoveryPolicy policy(&fix);
    auto result = algos::RunConnectedComponents(undirected, options, env,
                                                &policy, nullptr);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    out.cc_labels = result->labels;
    out.cc_supersteps = result->supersteps_executed;
    out.cc_sim_ns = clock.TotalNs();
    for (const auto& it : metrics.iterations()) {
      out.cc_messages += it.messages_shuffled;
    }
    runtime::MetricsSnapshot snap = sink.Collect();
    out.batch_ops += snap.CounterTotal(runtime::metric::kExecBatchOps);
    out.row_fallback_ops +=
        snap.CounterTotal(runtime::metric::kExecRowFallbackOps);
    out.schema_cache_hits +=
        snap.CounterTotal(runtime::metric::kSchemaCacheHits);
  }
  return out;
}

void ExpectTierRunsIdentical(const SimdAlgoRun& a, const SimdAlgoRun& b) {
  EXPECT_EQ(a.pr_ranks, b.pr_ranks);
  EXPECT_EQ(a.cc_labels, b.cc_labels);
  EXPECT_EQ(a.pr_iterations, b.pr_iterations);
  EXPECT_EQ(a.cc_supersteps, b.cc_supersteps);
  EXPECT_EQ(a.pr_messages, b.pr_messages);
  EXPECT_EQ(a.cc_messages, b.cc_messages);
  EXPECT_EQ(a.pr_sim_ns, b.pr_sim_ns);
  EXPECT_EQ(a.cc_sim_ns, b.cc_sim_ns);
}

class SimdTierSweepTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(SimdTierSweepTest, AlgosAreByteIdenticalAcrossTiers) {
  const auto [threads, failures] = GetParam();
  SimdAlgoRun off = RunAlgosAtTier(threads, simd::SimdLevel::kOff, failures);
  SimdAlgoRun max = RunAlgosAtTier(threads, simd::SimdLevel::kMax, failures);
  ExpectTierRunsIdentical(off, max);
  // And the vectorized run still matches a serial vectorized run.
  SimdAlgoRun serial = RunAlgosAtTier(1, simd::SimdLevel::kMax, failures);
  ExpectTierRunsIdentical(serial, max);
}

TEST_P(SimdTierSweepTest, PortedWorkloadsNeverFallBackToRowPath) {
  const auto [threads, failures] = GetParam();
  // The acceptance bar for the batched UDF boundary: with columnar
  // execution on, every declared Map/FlatMap on both headline workloads
  // runs its batch impl — zero row-path fallbacks, at every tier.
  for (simd::SimdLevel tier : {simd::SimdLevel::kOff, simd::SimdLevel::kMax}) {
    SimdAlgoRun run = RunAlgosAtTier(threads, tier, failures);
    EXPECT_GT(run.batch_ops, 0u);
    EXPECT_EQ(run.row_fallback_ops, 0u);
    // Multi-superstep runs resolve batch schemas from the per-node cache.
    EXPECT_GT(run.schema_cache_hits, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndFailures, SimdTierSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 8), ::testing::Bool()));

}  // namespace
}  // namespace flinkless
