// Tests for the outbound message log (runtime/message_log.h) and the
// confined replay built on it (Executor::Replay, DESIGN.md §14): channel
// round-trips, superstep rotation, budgeted spill/unspill, and — the
// contract recovery rests on — replayed partitions byte-identical to the
// partitions a full Execute produces.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "dataflow/executor.h"
#include "runtime/memory_manager.h"
#include "runtime/message_log.h"
#include "runtime/stable_storage.h"

namespace flinkless::runtime {
namespace {

using dataflow::Bindings;
using dataflow::ExecOptions;
using dataflow::ExecStats;
using dataflow::Executor;
using dataflow::MakeRecord;
using dataflow::PartitionedDataset;
using dataflow::Plan;
using dataflow::Record;

PartitionedDataset MakeMessages(int parts, int records_per_part,
                                int64_t salt) {
  PartitionedDataset out(parts);
  for (int p = 0; p < parts; ++p) {
    for (int64_t i = 0; i < records_per_part; ++i) {
      out.partition(p).push_back(MakeRecord(salt + p, i));
    }
  }
  return out;
}

// ------------------------------------------------------- log mechanics --

TEST(MessageLogTest, AppendAndChannelRoundTrip) {
  MessageLog log({"state"});
  PartitionedDataset messages = MakeMessages(4, 3, 100);
  ASSERT_TRUE(log.Append("n0001.in", messages, nullptr).ok());

  EXPECT_TRUE(log.Has("n0001.in"));
  EXPECT_FALSE(log.Has("n0002.in"));
  EXPECT_EQ(log.num_channels(), 1u);
  EXPECT_EQ(log.appended_records(), 12u);
  EXPECT_GT(log.appended_bytes(), 0u);

  auto channel = log.Channel("n0001.in", nullptr);
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();
  ASSERT_EQ((*channel)->num_partitions(), 4);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ((*channel)->partition(p), messages.partition(p)) << p;
  }

  EXPECT_FALSE(log.Channel("missing", nullptr).ok());
}

TEST(MessageLogTest, BeginSuperstepDropsPreviousChannels) {
  MessageLog log({"state"});
  ASSERT_TRUE(log.Append("n0001.in", MakeMessages(2, 2, 0), nullptr).ok());
  ASSERT_TRUE(log.Append("n0002.l", MakeMessages(2, 2, 7), nullptr).ok());
  EXPECT_EQ(log.num_channels(), 2u);

  log.BeginSuperstep(1);
  EXPECT_EQ(log.superstep(), 1);
  EXPECT_EQ(log.num_channels(), 0u);
  EXPECT_FALSE(log.Has("n0001.in"));
  // Rotation never resets the monotonic totals.
  EXPECT_EQ(log.appended_records(), 8u);
}

TEST(MessageLogTest, BudgetSpillsAndChannelReloads) {
  StableStorage storage(nullptr, nullptr);
  MemoryManager manager(/*budget_bytes=*/1);  // everything must spill
  MessageLog log({"state"});
  log.AttachMemoryManager(&manager, &storage, "job-x");

  PartitionedDataset a = MakeMessages(2, 4, 10);
  PartitionedDataset b = MakeMessages(2, 4, 20);
  ASSERT_TRUE(log.Append("n0001.in", a, nullptr).ok());
  ASSERT_TRUE(log.Append("n0002.in", b, nullptr).ok());
  // Append registers but never evicts (it runs mid-Execute); the owner
  // enforces the budget at the superstep boundary.
  EXPECT_GT(log.resident_bytes(), 0u);
  ASSERT_TRUE(manager.EnforceBudget(nullptr, nullptr).ok());
  EXPECT_EQ(log.resident_bytes(), 0u);
  EXPECT_EQ(storage.ListWithPrefix("spill/job-x/msglog/").size(), 2u);

  // Channel() unspills on demand and hands back the original bytes.
  auto channel = log.Channel("n0001.in", nullptr);
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();
  for (int p = 0; p < 2; ++p) {
    EXPECT_EQ((*channel)->partition(p), a.partition(p)) << p;
  }
  EXPECT_EQ(manager.stats().unspills, 1u);
  EXPECT_GE(manager.stats().spills, 2u);

  // Rotation deletes the spill blobs of dropped channels.
  ASSERT_TRUE(manager.EnforceBudget(nullptr, nullptr).ok());
  log.BeginSuperstep(1);
  EXPECT_EQ(storage.ListWithPrefix("spill/job-x/msglog/").size(), 0u);
  EXPECT_EQ(manager.num_segments(), 0u);
}

// ------------------------------------------------------ confined replay --

/// A step plan shaped like the iteration drivers': a variant state source
/// joined with an invariant static input, then aggregated. Both the join
/// and the reduce sit behind shuffles, so replay serves the variant side
/// from the log and re-shuffles only the invariant side.
Plan BuildStepPlan() {
  Plan plan;
  auto state = plan.Source("state");
  auto edges = plan.Source("edges");
  auto joined = plan.Join(
      state, edges, {0}, {0},
      [](const Record& l, const Record& r) {
        return MakeRecord(r[1].AsInt64(), l[1].AsInt64() + 1);
      },
      "send");
  auto reduced = plan.ReduceByKey(
      joined, {0},
      [](const Record& x, const Record& y) {
        return MakeRecord(x[0].AsInt64(),
                          std::min(x[1].AsInt64(), y[1].AsInt64()));
      },
      "min", /*pre_combine=*/true);
  plan.Output(joined, "mid");
  plan.Output(reduced, "out");
  return plan;
}

struct StepData {
  PartitionedDataset state;
  PartitionedDataset edges;
};

StepData MakeStepData(int parts) {
  std::vector<Record> state;
  std::vector<Record> edges;
  for (int64_t v = 0; v < 64; ++v) {
    state.push_back(MakeRecord(v, v % 5));
    edges.push_back(MakeRecord(v, (v * 7 + 3) % 64));
    edges.push_back(MakeRecord(v, (v * 11 + 1) % 64));
  }
  StepData data;
  data.state = PartitionedDataset::HashPartitioned(state, {0}, parts);
  data.edges = PartitionedDataset::HashPartitioned(edges, {0}, parts);
  return data;
}

class ReplayTest : public ::testing::TestWithParam<int> {};

TEST_P(ReplayTest, ReplayedPartitionsMatchExecuteByteForByte) {
  const int parts = 4;
  Plan plan = BuildStepPlan();
  StepData data = MakeStepData(parts);
  Bindings bindings{{"state", &data.state}, {"edges", &data.edges}};

  ExecOptions options;
  options.num_partitions = parts;
  options.num_threads = GetParam();
  MessageLog log({"state"});
  options.message_log = &log;
  Executor executor(options);

  ExecStats exec_stats;
  auto executed = executor.Execute(plan, bindings, &exec_stats);
  ASSERT_TRUE(executed.ok()) << executed.status().ToString();
  EXPECT_GT(log.num_channels(), 0u);
  EXPECT_EQ(exec_stats.messages_replayed, 0u);

  // Replay sees only the static bindings, exactly like the drivers after a
  // failure destroyed the volatile state.
  Bindings statics{{"edges", &data.edges}};
  for (const std::vector<int>& lost :
       {std::vector<int>{2}, std::vector<int>{0, 3},
        std::vector<int>{0, 1, 2, 3}}) {
    ExecStats replay_stats;
    auto replayed = executor.Replay(plan, statics, lost, &log, &replay_stats);
    ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
    EXPECT_GT(replay_stats.messages_replayed, 0u);
    for (const char* output : {"mid", "out"}) {
      const PartitionedDataset& full = executed->at(output);
      const PartitionedDataset& confined = replayed->at(output);
      ASSERT_EQ(confined.num_partitions(), parts);
      for (int p : lost) {
        EXPECT_EQ(confined.partition(p), full.partition(p))
            << output << " partition " << p << " with "
            << static_cast<int>(lost.size()) << " lost";
      }
    }
  }
}

TEST_P(ReplayTest, LoggingIsByteInvisibleToExecute) {
  const int parts = 4;
  Plan plan = BuildStepPlan();
  StepData data = MakeStepData(parts);
  Bindings bindings{{"state", &data.state}, {"edges", &data.edges}};

  ExecOptions plain_options;
  plain_options.num_partitions = parts;
  plain_options.num_threads = GetParam();
  Executor plain(plain_options);
  ExecStats plain_stats;
  auto unlogged = plain.Execute(plan, bindings, &plain_stats);
  ASSERT_TRUE(unlogged.ok());

  ExecOptions logged_options = plain_options;
  MessageLog log({"state"});
  logged_options.message_log = &log;
  Executor with_log(logged_options);
  ExecStats logged_stats;
  auto logged = with_log.Execute(plan, bindings, &logged_stats);
  ASSERT_TRUE(logged.ok());

  for (const char* output : {"mid", "out"}) {
    const PartitionedDataset& a = unlogged->at(output);
    const PartitionedDataset& b = logged->at(output);
    for (int p = 0; p < parts; ++p) {
      EXPECT_EQ(a.partition(p), b.partition(p)) << output << " " << p;
    }
  }
  EXPECT_EQ(plain_stats.messages_shuffled, logged_stats.messages_shuffled);
  EXPECT_EQ(plain_stats.records_processed, logged_stats.records_processed);
}

TEST_P(ReplayTest, ReplayReadsSpilledChannels) {
  // Same byte-identity with the log under a 1-byte budget: every channel
  // spills at the superstep boundary and Replay reloads on demand.
  const int parts = 4;
  Plan plan = BuildStepPlan();
  StepData data = MakeStepData(parts);
  Bindings bindings{{"state", &data.state}, {"edges", &data.edges}};

  StableStorage storage(nullptr, nullptr);
  MemoryManager manager(/*budget_bytes=*/1);
  MessageLog log({"state"});
  log.AttachMemoryManager(&manager, &storage, "replay-job");

  ExecOptions options;
  options.num_partitions = parts;
  options.num_threads = GetParam();
  options.message_log = &log;
  Executor executor(options);
  auto executed = executor.Execute(plan, bindings, nullptr);
  ASSERT_TRUE(executed.ok());
  ASSERT_TRUE(manager.EnforceBudget(nullptr, nullptr).ok());
  EXPECT_EQ(log.resident_bytes(), 0u);

  Bindings statics{{"edges", &data.edges}};
  auto replayed = executor.Replay(plan, statics, {1, 2}, &log, nullptr);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_GT(manager.stats().unspills, 0u);
  for (const char* output : {"mid", "out"}) {
    for (int p : {1, 2}) {
      EXPECT_EQ(replayed->at(output).partition(p),
                executed->at(output).partition(p))
          << output << " " << p;
    }
  }
}

TEST(ReplayTest, MissingLogChannelIsNotFound) {
  const int parts = 4;
  Plan plan = BuildStepPlan();
  StepData data = MakeStepData(parts);
  ExecOptions options;
  options.num_partitions = parts;
  Executor executor(options);
  // Log was never filled by an Execute: replay must fail loudly, not
  // fabricate empty partitions.
  MessageLog empty_log({"state"});
  Bindings statics{{"edges", &data.edges}};
  auto replayed = executor.Replay(plan, statics, {1}, &empty_log, nullptr);
  EXPECT_FALSE(replayed.ok());
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ReplayTest, ::testing::Values(1, 2, 8));

}  // namespace
}  // namespace flinkless::runtime
