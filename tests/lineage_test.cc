// Tests for the lineage analysis (core/lineage): dependency classification
// and the recomputation-footprint computation behind experiment C4.

#include <gtest/gtest.h>

#include "algos/connected_components.h"
#include "algos/pagerank.h"
#include "core/lineage.h"
#include "core/policies.h"

namespace flinkless::core {
namespace {

using dataflow::MakeRecord;
using dataflow::NodeId;
using dataflow::Plan;
using dataflow::Record;

Record Identity(const Record& r) { return r; }

TEST(LineageTest, MapChainIsAllNarrow) {
  Plan plan;
  auto node = plan.Source("in");
  for (int i = 0; i < 5; ++i) {
    node = plan.Map(node, Identity, "m" + std::to_string(i));
  }
  plan.Output(node, "out");

  LineageAnalysis lineage(&plan);
  EXPECT_TRUE(lineage.AllNarrowUpstream(node));
  // Rebuilding one lost partition re-executes exactly the 5 map tasks of
  // that partition, regardless of the parallelism.
  EXPECT_EQ(lineage.TasksToRebuild(node, 0, 4), 5);
  EXPECT_EQ(lineage.TasksToRebuild(node, 3, 16), 5);
}

TEST(LineageTest, ReduceIsWide) {
  Plan plan;
  auto src = plan.Source("in");
  auto reduced = plan.ReduceByKey(
      src, {0}, [](const Record& a, const Record&) { return a; }, "r");
  plan.Output(reduced, "out");

  LineageAnalysis lineage(&plan);
  EXPECT_EQ(lineage.KindOf(reduced, 0), DependencyKind::kWide);
  EXPECT_FALSE(lineage.AllNarrowUpstream(reduced));
  // The reduce task itself; its inputs are durable sources.
  EXPECT_EQ(lineage.TasksToRebuild(reduced, 0, 8), 1);
}

TEST(LineageTest, WideAfterNarrowPullsInAllUpstreamPartitions) {
  Plan plan;
  auto src = plan.Source("in");
  auto mapped = plan.Map(src, Identity, "m");
  auto reduced = plan.ReduceByKey(
      mapped, {0}, [](const Record& a, const Record&) { return a; }, "r");
  auto post = plan.Map(reduced, Identity, "post");
  plan.Output(post, "out");

  LineageAnalysis lineage(&plan);
  const int parts = 8;
  // post(p) <- reduce(p) <- map(all 8 partitions): 1 + 1 + 8 tasks.
  EXPECT_EQ(lineage.TasksToRebuild(post, 0, parts), 1 + 1 + parts);
}

TEST(LineageTest, CrossIsNarrowLeftWideRight) {
  Plan plan;
  auto left = plan.Source("l");
  auto right = plan.Source("r");
  auto crossed = plan.Cross(
      left, right, [](const Record& a, const Record&) { return a; }, "x");
  plan.Output(crossed, "out");
  LineageAnalysis lineage(&plan);
  EXPECT_EQ(lineage.KindOf(crossed, 0), DependencyKind::kNarrow);
  EXPECT_EQ(lineage.KindOf(crossed, 1), DependencyKind::kWide);
}

TEST(LineageTest, UnionIsNarrowOnBothInputs) {
  Plan plan;
  auto a = plan.Source("a");
  auto b = plan.Source("b");
  auto u = plan.Union(a, b, "u");
  plan.Output(u, "out");
  LineageAnalysis lineage(&plan);
  EXPECT_EQ(lineage.KindOf(u, 0), DependencyKind::kNarrow);
  EXPECT_EQ(lineage.KindOf(u, 1), DependencyKind::kNarrow);
  EXPECT_TRUE(lineage.AllNarrowUpstream(u));
}

TEST(LineageTest, DiamondCountsSharedWorkOnce) {
  Plan plan;
  auto src = plan.Source("in");
  auto mapped = plan.Map(src, Identity, "shared");
  auto left = plan.Filter(
      mapped, [](const Record&) { return true; }, "l");
  auto right = plan.Filter(
      mapped, [](const Record&) { return false; }, "r");
  auto joined = plan.Join(
      left, right, {0}, {0},
      [](const Record& a, const Record&) { return a; }, "j");
  plan.Output(joined, "out");

  LineageAnalysis lineage(&plan);
  const int parts = 4;
  // join(p) <- l(all) + r(all) <- shared(all): shared tasks counted once.
  // Tasks: 1 (join) + 4 (l) + 4 (r) + 4 (shared) = 13.
  EXPECT_EQ(lineage.TasksToRebuild(joined, 0, parts), 13);
}

TEST(LineageTest, CcStepPlanHasWideFeedbackPath) {
  // The §2.2 observation, verified on the actual Figure 1(a) plan: the
  // candidate-label reduce makes every output partition depend on all
  // workset partitions, so lineage cannot confine recovery to the lost
  // partition.
  Plan plan = algos::BuildConnectedComponentsPlan();
  LineageAnalysis lineage(&plan);
  NodeId delta = plan.outputs().front().second;
  EXPECT_FALSE(lineage.AllNarrowUpstream(delta));
  const int parts = 8;
  // Rebuilding one delta partition touches at least one task per partition
  // upstream of the reduce.
  EXPECT_GT(lineage.TasksToRebuild(delta, 0, parts), parts);
}

TEST(LineageTest, PageRankStepPlanIsWideToo) {
  Plan plan = algos::BuildPageRankPlan(100, 0.85);
  LineageAnalysis lineage(&plan);
  NodeId next = plan.outputs().front().second;
  EXPECT_FALSE(lineage.AllNarrowUpstream(next));
}

TEST(LineageTest, IterativeRebuildScalesWithIterations) {
  // The degenerate case: with wide feedback, recovering at iteration k
  // replays k full supersteps — exactly what RestartPolicy does.
  EXPECT_EQ(LineageAnalysis::IterativeRebuildTasks(40, 1), 40);
  EXPECT_EQ(LineageAnalysis::IterativeRebuildTasks(40, 25), 1000);
}

TEST(LineageTest, ToStringNamesEdges) {
  Plan plan;
  auto src = plan.Source("in");
  auto reduced = plan.ReduceByKey(
      src, {0}, [](const Record& a, const Record&) { return a; }, "agg");
  plan.Output(reduced, "out");
  LineageAnalysis lineage(&plan);
  std::string text = lineage.ToString();
  EXPECT_NE(text.find("agg <- in: wide"), std::string::npos);
}

TEST(LineageTest, KindNames) {
  EXPECT_EQ(DependencyKindName(DependencyKind::kNarrow), "narrow");
  EXPECT_EQ(DependencyKindName(DependencyKind::kWide), "wide");
}

}  // namespace
}  // namespace flinkless::core
