#include "dataflow/exec_cache.h"

#include <cstdio>

#include "common/logging.h"
#include "runtime/stable_storage.h"

namespace flinkless::dataflow {

/// One cache entry as the MemoryManager sees it. Spilling serializes only
/// the dataset — join_index/groups reference the dataset's records by
/// pointer, so they are dropped with it and rebuilt (deterministically,
/// from entry.index_key) when the bytes come back.
struct ExecCache::Segment : public runtime::SpillableSegment {
  Segment(std::string key, runtime::StableStorage* storage, int partitions,
          uint64_t* hash_reuse_counter)
      : key_(std::move(key)),
        storage_(storage),
        partitions_(partitions),
        hash_reuse_counter_(hash_reuse_counter) {}

  const std::string& spill_key() const override { return key_; }
  uint64_t resident_bytes() const override {
    return spilled_ ? 0 : serialized_bytes_;
  }
  int num_partitions() const override { return partitions_; }
  bool spilled() const override { return spilled_; }

  /// Called by OnEntryFilled once the executor built the entry.
  void MeasureResident() {
    FLINKLESS_CHECK(entry.data != nullptr,
                    "cache segment measured before its data was set");
    serialized_bytes_ = SerializedDatasetBytes(*entry.data);
    spilled_ = false;
  }

  /// Serialized bytes whether resident or spilled (spill blobs are exactly
  /// the serialized dataset).
  uint64_t serialized_bytes() const { return serialized_bytes_; }

  Status Spill() override {
    FLINKLESS_CHECK(!spilled_ && entry.data != nullptr,
                    "spilling a segment that is not resident");
    had_join_index_ = !entry.join_index.empty();
    had_flat_index_ = !entry.flat_index.empty();
    had_groups_ = !entry.groups.empty();
    // Retain the flat index's cached row hashes in memory across the spill
    // (8 bytes/row — tiny next to the dataset) so the rebuild on unspill
    // adopts them instead of rehashing every key. Deliberately NOT written
    // to StableStorage: the spill blob stays the serialized dataset alone,
    // so SimClock I/O charges and live-bytes accounting are unchanged.
    spilled_hashes_.clear();
    if (had_flat_index_) {
      spilled_hashes_.reserve(entry.flat_index.size());
      for (const FlatKeyIndex& index : entry.flat_index) {
        spilled_hashes_.push_back(index.row_hashes());
      }
    }
    FLINKLESS_RETURN_NOT_OK(
        storage_->Write(key_, SerializePartitionedDataset(*entry.data)));
    // Consumers still holding the shared_ptr keep their dataset; the cache
    // just stops keeping it resident. The flat index borrows the dataset's
    // records, so it must go with them.
    entry.data.reset();
    entry.join_index.clear();
    entry.flat_index.clear();
    entry.groups.clear();
    spilled_ = true;
    return Status::OK();
  }

  Status Unspill() override {
    FLINKLESS_CHECK(spilled_, "unspilling a resident segment");
    FLINKLESS_ASSIGN_OR_RETURN(std::vector<uint8_t> blob,
                               storage_->Read(key_));
    FLINKLESS_ASSIGN_OR_RETURN(PartitionedDataset ds,
                               DeserializePartitionedDataset(blob));
    storage_->Delete(key_);  // the blob only exists while spilled
    auto data = std::make_shared<PartitionedDataset>(std::move(ds));
    entry.data = data;
    const int n = data->num_partitions();
    if (had_join_index_) {
      entry.join_index.assign(n, JoinIndex());
      for (int p = 0; p < n; ++p) {
        JoinIndex& index = entry.join_index[p];
        const std::vector<Record>& part = data->partition(p);
        index.reserve(part.size());
        for (const Record& r : part) {
          index[ExtractKey(r, entry.index_key)].push_back(&r);
        }
      }
    }
    if (had_flat_index_) {
      entry.flat_index.assign(n, FlatKeyIndex());
      const bool have_hashes = spilled_hashes_.size() == static_cast<size_t>(n);
      uint64_t adopted = 0;
      for (int p = 0; p < n; ++p) {
        const std::vector<Record>& part = data->partition(p);
        if (have_hashes && spilled_hashes_[p].size() == part.size()) {
          entry.flat_index[p].BuildWithHashes(part, entry.index_key,
                                              std::move(spilled_hashes_[p]));
          ++adopted;
        } else {
          entry.flat_index[p].Build(part, entry.index_key);
        }
      }
      if (hash_reuse_counter_ != nullptr) *hash_reuse_counter_ += adopted;
      spilled_hashes_.clear();
    }
    if (had_groups_) {
      entry.groups.assign(n, CachedGroups());
      for (int p = 0; p < n; ++p) {
        CachedGroups& groups = entry.groups[p];
        const std::vector<Record>& part = data->partition(p);
        groups.reserve(part.size());
        for (const Record& r : part) {
          groups[ExtractKey(r, entry.index_key)].push_back(r);
        }
      }
    }
    spilled_ = false;
    return Status::OK();
  }

  /// Deletes the spill blob if one exists.
  void DropBlob() {
    if (spilled_) storage_->Delete(key_);
  }

  Entry entry;

 private:
  std::string key_;
  runtime::StableStorage* storage_;
  int partitions_;
  /// Owner's hash-reuse counter (ExecCache::hash_reuses()); may be null.
  uint64_t* hash_reuse_counter_;
  uint64_t serialized_bytes_ = 0;
  bool spilled_ = false;
  bool had_join_index_ = false;
  bool had_flat_index_ = false;
  bool had_groups_ = false;
  /// Per-partition row hashes of the dropped flat index, kept while
  /// spilled (see Spill).
  std::vector<std::vector<uint64_t>> spilled_hashes_;
};

ExecCache::ExecCache(std::vector<std::string> volatile_bindings)
    : volatile_bindings_(std::move(volatile_bindings)) {}

ExecCache::~ExecCache() {
  Clear();
  if (storage_ != nullptr && !spill_prefix_.empty()) {
    storage_->ReleasePrefix(spill_prefix_);
  }
}

void ExecCache::AttachMemoryManager(runtime::MemoryManager* manager,
                                    runtime::StableStorage* storage,
                                    const std::string& job_id) {
  FLINKLESS_CHECK(manager != nullptr && storage != nullptr,
                  "AttachMemoryManager needs a manager and a storage");
  FLINKLESS_CHECK(entries_.empty(),
                  "attach the memory manager before the first Execute");
  if (storage_ != nullptr && !spill_prefix_.empty()) {
    storage_->ReleasePrefix(spill_prefix_);  // re-attach moves the namespace
  }
  manager_ = manager;
  storage_ = storage;
  owner_ = job_id.empty() ? "job" : job_id;
  spill_prefix_ = "spill/" + owner_ + "/";
  // Dies when another live owner already spills under this namespace —
  // concurrent jobs must never mix blobs (DESIGN.md §16).
  storage_->AcquirePrefix(spill_prefix_);
}

ExecCache::Entry* ExecCache::Find(int node_id, Role role) {
  auto it = entries_.find({node_id, static_cast<int>(role)});
  return it != entries_.end() ? &it->second->entry : nullptr;
}

Result<ExecCache::Entry*> ExecCache::FindResident(int node_id, Role role,
                                                  runtime::Tracer* tracer,
                                                  bool* reloaded) {
  if (reloaded != nullptr) *reloaded = false;
  auto it = entries_.find({node_id, static_cast<int>(role)});
  if (it == entries_.end()) return static_cast<Entry*>(nullptr);
  Segment* seg = it->second.get();
  if (manager_ != nullptr) {
    FLINKLESS_RETURN_NOT_OK(manager_->Touch(seg, tracer, reloaded));
    // An unspill may push residency back over budget; evict colder
    // entries, never the one about to be consumed.
    FLINKLESS_RETURN_NOT_OK(manager_->EnforceBudget(seg, tracer));
  }
  return &seg->entry;
}

ExecCache::Entry& ExecCache::Emplace(int node_id, Role role) {
  const std::pair<int, int> key{node_id, static_cast<int>(role)};
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Rebuild over a stale entry: its blob and registration go with it.
    Release(it->second.get());
    entries_.erase(it);
  }
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), "n%04d.r%d", node_id,
                static_cast<int>(role));
  auto seg = std::make_unique<Segment>(spill_prefix_ + suffix, storage_,
                                       num_partitions_, &hash_reuses_);
  it = entries_.emplace(key, std::move(seg)).first;
  ++builds_;
  if (metrics_ != nullptr) {
    metrics_->Count(runtime::metric::kCacheBuilds, -1);
  }
  return it->second->entry;
}

Status ExecCache::OnEntryFilled(int node_id, Role role,
                                runtime::Tracer* tracer) {
  auto it = entries_.find({node_id, static_cast<int>(role)});
  FLINKLESS_CHECK(it != entries_.end(), "OnEntryFilled without an entry");
  Segment* seg = it->second.get();
  seg->MeasureResident();
  if (manager_ == nullptr) return Status::OK();
  manager_->Register(seg, owner_);
  // The just-built segment is exempt: the executor consumes it right after
  // this call, and a lone artifact bigger than the whole budget must still
  // be usable (the documented one-segment slack).
  return manager_->EnforceBudget(seg, tracer);
}

uint64_t ExecCache::Release(Segment* segment) {
  uint64_t bytes = segment->serialized_bytes();
  if (manager_ != nullptr) manager_->Unregister(segment);
  segment->DropBlob();
  return bytes;
}

uint64_t ExecCache::Invalidate(const std::vector<int>& partitions) {
  if (partitions.empty() || entries_.empty()) return 0;
  uint64_t released = Clear();
  ++invalidations_;
  if (metrics_ != nullptr) {
    metrics_->Count(runtime::metric::kCacheInvalidations, -1);
  }
  return released;
}

uint64_t ExecCache::Clear() {
  uint64_t released = 0;
  for (auto& [key, seg] : entries_) released += Release(seg.get());
  entries_.clear();
  schemas_.clear();
  return released;
}

}  // namespace flinkless::dataflow
