#include "dataflow/value.h"

#include "common/hash.h"
#include "common/logging.h"
#include "common/strings.h"

namespace flinkless::dataflow {

std::string ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

int64_t Value::AsInt64() const {
  FLINKLESS_CHECK(is_int64(),
                  "Value::AsInt64 on " << ValueTypeName(type()) << " value");
  return std::get<int64_t>(v_);
}

double Value::AsDouble() const {
  FLINKLESS_CHECK(is_double(),
                  "Value::AsDouble on " << ValueTypeName(type()) << " value");
  return std::get<double>(v_);
}

const std::string& Value::AsString() const {
  FLINKLESS_CHECK(is_string(),
                  "Value::AsString on " << ValueTypeName(type()) << " value");
  return std::get<std::string>(v_);
}

double Value::AsNumeric() const {
  if (is_int64()) return static_cast<double>(std::get<int64_t>(v_));
  FLINKLESS_CHECK(is_double(), "Value::AsNumeric on string value");
  return std::get<double>(v_);
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kInt64:
      return Mix64(static_cast<uint64_t>(std::get<int64_t>(v_)));
    case ValueType::kDouble:
      return HashDouble(std::get<double>(v_));
    case ValueType::kString:
      return HashString(std::get<std::string>(v_));
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(v_));
    case ValueType::kDouble:
      return FormatDouble(std::get<double>(v_), 12);
    case ValueType::kString:
      return "\"" + std::get<std::string>(v_) + "\"";
  }
  return "?";
}

bool operator<(const Value& a, const Value& b) {
  if (a.v_.index() != b.v_.index()) return a.v_.index() < b.v_.index();
  return a.v_ < b.v_;
}

}  // namespace flinkless::dataflow
