// Plan: the logical dataflow DAG, mirroring the operator vocabulary of the
// paper's Figure 1 (Map, Reduce, Join, plus the usual relatives). A Plan is
// built once and executed many times — iterations re-run the same plan with
// fresh bindings for its named sources.

#ifndef FLINKLESS_DATAFLOW_PLAN_H_
#define FLINKLESS_DATAFLOW_PLAN_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "dataflow/record.h"

namespace flinkless::dataflow {

class ColumnarBatch;

/// Index of a node within its Plan. Plans are acyclic by construction:
/// operators can only reference nodes created before them.
using NodeId = int;

/// Record -> record.
using MapFn = std::function<Record(const Record&)>;

/// Batched map/flat-map body: consumes one partition's rows as a
/// ColumnarBatch and fills `out` (Reset + Mutable*Column + FinishRows).
/// Attached via Plan::BatchImpl as an *optional* second implementation next
/// to the record fn; the executor picks it whenever the partition's rows
/// are schema-homogeneous. Contract (DESIGN.md §15): it must produce
/// exactly the records the record fn would, in the same order — replay and
/// heterogeneous partitions still run the record path, and byte-identity
/// across paths is the repo invariant. For Map nodes the output must have
/// one row per input row.
using BatchMapFn = std::function<void(const ColumnarBatch&, ColumnarBatch*)>;

/// Record -> zero or more records appended to `out`.
using FlatMapFn = std::function<void(const Record&, std::vector<Record>*)>;

/// Keep the record?
using FilterFn = std::function<bool(const Record&)>;

/// Associative combiner for ReduceByKey. Both inputs share the key; the
/// result must carry the same key columns (validated by the executor).
using CombineFn = std::function<Record(const Record&, const Record&)>;

/// Full-group reducer: (key projection, all records of the group) -> record.
using GroupReduceFn =
    std::function<Record(const Record&, const std::vector<Record>&)>;

/// Joined pair -> output record.
using JoinFn = std::function<Record(const Record&, const Record&)>;

/// Per-key cogroup: (key projection, left group, right group) -> records
/// appended to `out`. Either group may be empty.
using CoGroupFn =
    std::function<void(const Record&, const std::vector<Record>&,
                       const std::vector<Record>&, std::vector<Record>*)>;

/// Operator kind of a plan node.
enum class OpKind {
  kSource,
  kMap,
  kFlatMap,
  kFilter,
  kProject,
  kReduceByKey,
  kGroupReduceByKey,
  kJoin,
  kCoGroup,
  kCross,
  kUnion,
  kDistinct,
};

/// Stable name of an operator kind ("Source", "Join", ...).
std::string OpKindName(OpKind kind);

/// Declared shape of a ReduceByKey combiner (Plan::DeclareReduce). The
/// executor uses it to run typed columnar folds: a declaration promises the
/// combiner is equivalent to the named fold over the value column, with
/// records shaped (int64 key, value) and key == {0}. kMinInt64/kMaxInt64
/// must keep the *accumulator* on ties (<= / >= comparisons), matching the
/// arrival-order record fold. kSumDouble folds sequentially in arrival
/// order on every tier (never SIMD-reassociated).
enum class ReduceKind {
  kNone,
  kSumInt64,
  kSumDouble,
  kMinInt64,
  kMaxInt64,
};

/// One operator in the DAG. Only the fields relevant to its kind are set.
struct PlanNode {
  NodeId id = -1;
  OpKind kind = OpKind::kSource;
  /// Display name, e.g. "candidate-label"; shows up in Explain() and stats.
  std::string name;
  std::vector<NodeId> inputs;

  /// kSource: the binding name resolved at execution time.
  std::string source_name;

  /// Key columns. kReduceByKey/kGroupReduceByKey/kDistinct use `left_key`;
  /// joins/cogroups use both.
  KeyColumns left_key;
  KeyColumns right_key;

  /// kProject: columns to keep, in order.
  std::vector<int> project_columns;

  /// kReduceByKey: run the combiner before the shuffle (Flink-style
  /// pre-aggregation). Exposed so experiments can quantify its effect on
  /// message counts.
  bool pre_combine = true;

  /// kMap/kFlatMap: optional batched implementation (Plan::BatchImpl). The
  /// record fn below stays required — it is the replay path and the
  /// fallback for schema-heterogeneous partitions.
  BatchMapFn batch_map_fn;

  /// kReduceByKey: declared combiner shape (Plan::DeclareReduce) and the
  /// value column it folds. kNone means undeclared — generic combine only.
  ReduceKind reduce_kind = ReduceKind::kNone;
  int reduce_value_col = -1;

  MapFn map_fn;
  FlatMapFn flat_map_fn;
  FilterFn filter_fn;
  CombineFn combine_fn;
  GroupReduceFn group_reduce_fn;
  JoinFn join_fn;
  CoGroupFn cogroup_fn;
};

/// Builder and container of the dataflow DAG.
class Plan {
 public:
  /// A named input placeholder; the executor resolves it from its bindings.
  NodeId Source(const std::string& binding_name);

  NodeId Map(NodeId input, MapFn fn, const std::string& name);
  NodeId FlatMap(NodeId input, FlatMapFn fn, const std::string& name);
  NodeId Filter(NodeId input, FilterFn fn, const std::string& name);
  NodeId Project(NodeId input, std::vector<int> columns,
                 const std::string& name);

  /// Shuffle on `key`, then fold each group with the associative `fn`.
  /// When `pre_combine` is true the fold also runs before the shuffle,
  /// reducing shuffled messages.
  NodeId ReduceByKey(NodeId input, KeyColumns key, CombineFn fn,
                     const std::string& name, bool pre_combine = true);

  /// Shuffle on `key`, then reduce each complete group at once.
  NodeId GroupReduceByKey(NodeId input, KeyColumns key, GroupReduceFn fn,
                          const std::string& name);

  /// Inner equi-join.
  NodeId Join(NodeId left, NodeId right, KeyColumns left_key,
              KeyColumns right_key, JoinFn fn, const std::string& name);

  /// Full cogroup (subsumes outer joins).
  NodeId CoGroup(NodeId left, NodeId right, KeyColumns left_key,
                 KeyColumns right_key, CoGroupFn fn, const std::string& name);

  /// Cartesian product: `fn` is applied to every (left, right) pair. The
  /// right side is broadcast to all partitions, so keep it small (it exists
  /// for scalar-broadcast patterns like PageRank's dangling mass).
  NodeId Cross(NodeId left, NodeId right, JoinFn fn, const std::string& name);

  /// Bag union (no dedup).
  NodeId Union(NodeId left, NodeId right, const std::string& name);

  /// Removes duplicate records; the output is partitioned by `key`.
  NodeId Distinct(NodeId input, KeyColumns key, const std::string& name);

  /// Attaches a batched implementation to an existing Map/FlatMap node
  /// (checked). See BatchMapFn for the equivalence contract.
  void BatchImpl(NodeId node, BatchMapFn fn);

  /// Declares the combiner of an existing ReduceByKey node as a typed fold
  /// over `value_col` (checked; kind must not be kNone). See ReduceKind for
  /// the equivalence contract.
  void DeclareReduce(NodeId node, ReduceKind kind, int value_col);

  /// Marks `node` as a named output of the plan.
  void Output(NodeId node, const std::string& output_name);

  size_t num_nodes() const { return nodes_.size(); }
  const PlanNode& node(NodeId id) const { return nodes_[id]; }
  const std::vector<PlanNode>& nodes() const { return nodes_; }
  const std::vector<std::pair<std::string, NodeId>>& outputs() const {
    return outputs_;
  }

  /// Names of all source bindings the plan expects.
  std::vector<std::string> SourceNames() const;

  /// Loop-invariant analysis for iterative execution: entry i says whether
  /// node i reads the same data on every execution of the plan. A source is
  /// invariant unless its binding name appears in `volatile_bindings` (the
  /// bindings an iteration driver rebinds every superstep — workset,
  /// solution, state); every other node is invariant iff all of its inputs
  /// are. The executor caches the outputs, shuffles, and join build indexes
  /// of invariant nodes across supersteps.
  std::vector<bool> InvariantNodes(
      const std::vector<std::string>& volatile_bindings) const;

  /// Structural sanity: inputs in range, arities right, at least one output,
  /// output names unique, UDFs present where required.
  Status Validate() const;

  /// Human-readable DAG dump — the textual equivalent of the paper's
  /// Figure 1 dataflow drawings.
  std::string Explain() const;

 private:
  NodeId Add(PlanNode node);
  Status CheckInput(NodeId input, size_t next_id) const;

  std::vector<PlanNode> nodes_;
  std::vector<std::pair<std::string, NodeId>> outputs_;
};

}  // namespace flinkless::dataflow

#endif  // FLINKLESS_DATAFLOW_PLAN_H_
