#include "dataflow/executor.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "dataflow/columnar.h"
#include "dataflow/exec_cache.h"
#include "runtime/message_log.h"

namespace flinkless::dataflow {

namespace {

/// Message-log channel id for plan node `id`'s shuffled input arriving on
/// `port` ("in" for single-input shuffles, "l"/"r" for join/cogroup sides).
/// Node ids are append-ordered per plan, so the id set is stable across
/// supersteps of one job — which is what ties Execute's appends to
/// Replay's reads.
std::string MsglogChannel(int id, const char* port) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "n%04d.%s", id, port);
  return buf;
}

// Hash-based grouping: O(1) inserts instead of the ordered std::map the
// executor used to pay O(log k) per record for. Operators that need a
// deterministic key order (group-reduce emission, cogroup's merged key
// sweep) sort the key set once afterwards.
using GroupMap =
    std::unordered_map<Record, std::vector<Record>, RecordHash>;

GroupMap GroupByKey(const std::vector<Record>& records,
                    const KeyColumns& key) {
  GroupMap groups;
  groups.reserve(records.size());
  for (const Record& r : records) {
    groups[ExtractKey(r, key)].push_back(r);
  }
  return groups;
}

/// The group keys in RecordLess order — the deterministic emission order
/// key-sorted operators contract to (identical to the old std::map sweep).
std::vector<const Record*> SortedKeys(const GroupMap& groups) {
  std::vector<const Record*> keys;
  keys.reserve(groups.size());
  for (const auto& [k, group] : groups) keys.push_back(&k);
  std::sort(keys.begin(), keys.end(),
            [](const Record* a, const Record* b) { return RecordLess(*a, *b); });
  return keys;
}

// ------------------------------------------------ batch path (§12) ------
//
// The batch implementations below replace the unordered_map/unordered_set
// structures of the record path with flat open-addressing tables keyed on
// columns in place. Grouping, fold order, and sorted-key emission are
// structurally identical to the record path, so outputs stay byte-identical
// — the only thing that changes is the per-record allocation count (zero).

/// Open-addressing key -> dense-slot resolver. Slots are handed out in
/// first-arrival order; the caller owns the per-slot payload (accumulator
/// records, emitted rows) and supplies the equality predicate against it.
class FlatSlotMap {
 public:
  explicit FlatSlotMap(size_t expected) {
    size_t cap = 16;
    while (cap < 2 * expected) cap <<= 1;
    table_.assign(cap, -1);
    mask_ = cap - 1;
    hashes_.reserve(expected);
  }

  /// Slot of the key with hash `h` and equality `eq(slot)`, inserting the
  /// next dense slot when absent (*inserted). After an insert the caller
  /// must append the matching payload so eq can see it on later probes.
  template <typename Eq>
  int32_t FindOrInsert(uint64_t h, const Eq& eq, bool* inserted) {
    if ((size_ + 1) * 2 > table_.size()) Grow();
    uint64_t b = h & mask_;
    for (;;) {
      const int32_t slot = table_[b];
      if (slot < 0) {
        table_[b] = static_cast<int32_t>(size_);
        hashes_.push_back(h);
        *inserted = true;
        return static_cast<int32_t>(size_++);
      }
      if (hashes_[slot] == h && eq(slot)) {
        *inserted = false;
        return slot;
      }
      b = (b + 1) & mask_;
    }
  }

  size_t size() const { return size_; }

 private:
  void Grow() {
    const size_t cap = table_.size() * 2;
    table_.assign(cap, -1);
    mask_ = cap - 1;
    for (size_t s = 0; s < size_; ++s) {
      uint64_t b = hashes_[s] & mask_;
      while (table_[b] >= 0) b = (b + 1) & mask_;
      table_[b] = static_cast<int32_t>(s);
    }
  }

  std::vector<int32_t> table_;
  std::vector<uint64_t> hashes_;
  uint64_t mask_ = 0;
  size_t size_ = 0;
};

/// Batch-path reduce of one partition: accumulate in first-arrival order
/// through a FlatSlotMap, then emit accumulators sorted on their key
/// columns — the same fold order and emission order as the record path's
/// try_emplace + sorted-ExtractKey sweep. `validate` enforces the
/// combiner-keeps-the-key contract (post-shuffle phase only, matching the
/// record path).
Status FlatReducePartition(const std::vector<Record>& in,
                           const KeyColumns& key, const CombineFn& combine,
                           bool validate, const std::string& node_name,
                           std::vector<Record>* out) {
  std::vector<Record> acc;
  acc.reserve(in.size());
  FlatSlotMap slots(in.size());
  // Single-int64-key fast path: hash the whole key column in one kernel
  // stripe and compare slots on the flat array (each slot remembers its
  // first-arrival key — equal to the accumulator's key under the
  // combiner-keeps-the-key contract the validate phase enforces).
  std::vector<int64_t> key64;
  std::vector<uint64_t> hashes;
  std::vector<int64_t> slot_key;
  const bool fast = ExtractKey64(in, key, &key64);
  if (fast) {
    hashes.resize(in.size());
    simd::ActiveKernels().hash_key64(key64.data(), in.size(), hashes.data());
    slot_key.reserve(in.size());
  }
  for (size_t i = 0; i < in.size(); ++i) {
    const Record& r = in[i];
    const uint64_t h = fast ? hashes[i] : HashKey(r, key);
    bool inserted = false;
    int32_t slot;
    if (fast) {
      slot = slots.FindOrInsert(
          h, [&](int32_t s) { return slot_key[s] == key64[i]; }, &inserted);
      if (inserted) slot_key.push_back(key64[i]);
    } else {
      slot = slots.FindOrInsert(
          h, [&](int32_t s) { return KeysEqual(acc[s], key, r, key); },
          &inserted);
    }
    if (inserted) {
      acc.push_back(r);
      continue;
    }
    Record folded = combine(acc[slot], r);
    if (validate && !KeysEqual(folded, key, r, key)) {
      return Status::Internal("ReduceByKey '" + node_name +
                              "': combiner changed the key (got " +
                              RecordToString(folded) + ")");
    }
    acc[slot] = std::move(folded);
  }
  std::vector<int32_t> order(acc.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int32_t>(i);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return KeyLess(acc[a], acc[b], key);
  });
  out->reserve(out->size() + order.size());
  for (int32_t s : order) out->push_back(std::move(acc[s]));
  return Status::OK();
}

/// Typed columnar reduce of one partition (DESIGN.md §15): when the
/// combiner is declared (Plan::DeclareReduce) and the partition has the
/// declared shape — records (int64 key, value), key == {0}, value column 1
/// of the declared type — the fold runs over scalar accumulators on flat
/// columns, never materializing intermediate Records. Returns false on any
/// shape mismatch; the caller falls back to FlatReducePartition. Fold and
/// emission order match the generic path exactly: arrival-order folding
/// per key (kSumDouble strictly sequential — FP association is
/// load-bearing), emission sorted by key (KeyLess on an int64 key is
/// numeric order). Never consults the SIMD level for the path choice, so
/// outputs cannot depend on it.
bool FlatReduceTypedPartition(const std::vector<Record>& in,
                              const KeyColumns& key, ReduceKind kind,
                              int value_col, std::vector<Record>* out) {
  if (key.size() != 1 || key[0] != 0 || value_col != 1) return false;
  const bool want_double = kind == ReduceKind::kSumDouble;
  for (const Record& r : in) {
    if (r.size() != 2 || !r[0].is_int64()) return false;
    if (want_double ? !r[1].is_double() : !r[1].is_int64()) return false;
  }
  if (in.empty()) return true;

  std::vector<int64_t> keys(in.size());
  for (size_t i = 0; i < in.size(); ++i) keys[i] = in[i][0].AsInt64();
  const simd::Kernels& kernels = simd::ActiveKernels();

  if (kernels.all_equal_i64(keys.data(), keys.size(), keys[0])) {
    // Single-group partition (the shape post-shuffle global aggregates
    // like PageRank's dangling mass always have): one kernel fold.
    if (want_double) {
      double sum = in[0][1].AsDouble();
      for (size_t i = 1; i < in.size(); ++i) sum += in[i][1].AsDouble();
      out->push_back(MakeRecord(keys[0], sum));
      return true;
    }
    std::vector<int64_t> vals(in.size());
    for (size_t i = 0; i < in.size(); ++i) vals[i] = in[i][1].AsInt64();
    int64_t folded = 0;
    switch (kind) {
      case ReduceKind::kSumInt64:
        folded = kernels.sum_i64(vals.data(), vals.size());
        break;
      case ReduceKind::kMinInt64:
        folded = kernels.min_i64(vals.data(), vals.size());
        break;
      case ReduceKind::kMaxInt64:
        folded = kernels.max_i64(vals.data(), vals.size());
        break;
      case ReduceKind::kSumDouble:
      case ReduceKind::kNone:
        return false;  // unreachable (want_double handled above)
    }
    out->push_back(MakeRecord(keys[0], folded));
    return true;
  }

  std::vector<uint64_t> hashes(keys.size());
  kernels.hash_key64(keys.data(), keys.size(), hashes.data());
  FlatSlotMap slots(in.size());
  std::vector<int64_t> slot_key;
  slot_key.reserve(in.size());
  std::vector<int64_t> acc_i;
  std::vector<double> acc_d;
  for (size_t i = 0; i < in.size(); ++i) {
    bool inserted = false;
    const int32_t slot = slots.FindOrInsert(
        hashes[i], [&](int32_t s) { return slot_key[s] == keys[i]; },
        &inserted);
    if (want_double) {
      const double v = in[i][1].AsDouble();
      if (inserted) {
        slot_key.push_back(keys[i]);
        acc_d.push_back(v);
      } else {
        acc_d[slot] += v;  // arrival order, same association as combine()
      }
      continue;
    }
    const int64_t v = in[i][1].AsInt64();
    if (inserted) {
      slot_key.push_back(keys[i]);
      acc_i.push_back(v);
      continue;
    }
    switch (kind) {
      case ReduceKind::kSumInt64:
        acc_i[slot] = static_cast<int64_t>(static_cast<uint64_t>(acc_i[slot]) +
                                           static_cast<uint64_t>(v));
        break;
      case ReduceKind::kMinInt64:
        if (v < acc_i[slot]) acc_i[slot] = v;  // ties keep the accumulator
        break;
      case ReduceKind::kMaxInt64:
        if (v > acc_i[slot]) acc_i[slot] = v;
        break;
      case ReduceKind::kSumDouble:
      case ReduceKind::kNone:
        break;  // unreachable
    }
  }
  std::vector<int32_t> order(slot_key.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int32_t>(i);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return slot_key[a] < slot_key[b];
  });
  out->reserve(out->size() + order.size());
  for (int32_t s : order) {
    if (want_double) {
      out->push_back(MakeRecord(slot_key[s], acc_d[s]));
    } else {
      out->push_back(MakeRecord(slot_key[s], acc_i[s]));
    }
  }
  return true;
}

/// Batched join probe (DESIGN.md §15): when the build index runs in key64
/// mode and the probe side's key extracts to a flat int64 column, hash the
/// probe keys in one kernel stripe and resolve all group heads with
/// FindFirstStripe before emitting. Emission order (probe order, chains in
/// arrival order) is identical to the per-record FindFirst loop. Returns
/// false when the shapes don't allow it; the caller runs the record probe.
bool StripedJoinProbe(const FlatKeyIndex& index,
                      const std::vector<Record>& build,
                      const std::vector<Record>& probes,
                      const KeyColumns& probe_key, const JoinFn& join_fn,
                      std::vector<Record>* out) {
  if (!index.key64_probe_ready()) return false;
  std::vector<int64_t> keys;
  if (!ExtractKey64(probes, probe_key, &keys)) return false;
  const simd::Kernels& kernels = simd::ActiveKernels();
  std::vector<uint64_t> hashes(keys.size());
  kernels.hash_key64(keys.data(), keys.size(), hashes.data());
  std::vector<int32_t> first(keys.size());
  index.FindFirstStripe(keys.data(), hashes.data(), keys.size(),
                        first.data());
  for (size_t i = 0; i < probes.size(); ++i) {
    for (int32_t row = first[i]; row >= 0; row = index.Next(row)) {
      out->push_back(join_fn(build[row], probes[i]));
    }
  }
  return true;
}

/// Resolves the batch schema of `in` for plan node `node_id`: served from
/// the ExecCache's per-node schema cache when possible (the schema of a
/// node's input is stable within a job — attaching a batch impl declares as
/// much), else one dataset-wide inference pass. The result is stored back
/// only when inferred from actual rows — a drained workset (all partitions
/// empty) must not pin the empty schema for later supersteps. False means
/// heterogeneous rows; the caller takes the record path.
bool ResolveBatchSchema(ExecCache* cache, int node_id,
                        const PartitionedDataset& in, BatchSchema* schema) {
  if (cache != nullptr) {
    const BatchSchema* cached = cache->FindSchema(node_id);
    if (cached != nullptr) {
      *schema = *cached;
      return true;
    }
  }
  bool from_rows = false;
  schema->clear();
  for (int p = 0; p < in.num_partitions(); ++p) {
    const std::vector<Record>& part = in.partition(p);
    if (part.empty()) continue;
    BatchSchema part_schema;
    if (!InferBatchSchema(part, &part_schema)) return false;
    if (!from_rows) {
      *schema = std::move(part_schema);
      from_rows = true;
    } else if (part_schema != *schema) {
      return false;
    }
  }
  if (from_rows && cache != nullptr) cache->StoreSchema(node_id, *schema);
  return true;
}

uint64_t MaxPartitionSize(const PartitionedDataset& ds) {
  uint64_t m = 0;
  for (int p = 0; p < ds.num_partitions(); ++p) {
    m = std::max(m, static_cast<uint64_t>(ds.partition(p).size()));
  }
  return m;
}

const std::vector<Record> kEmptyGroup;

/// Reusable "prefix<i>" formatter for per-partition span arg keys: one
/// buffer per operator instead of two temporary strings per partition.
class PartitionKeyBuffer {
 public:
  explicit PartitionKeyBuffer(const char* prefix)
      : buf_(prefix), prefix_len_(buf_.size()) {}

  const std::string& Key(int p) {
    buf_.resize(prefix_len_);
    char digits[16];
    int len = std::snprintf(digits, sizeof(digits), "%d", p);
    buf_.append(digits, static_cast<size_t>(len));
    return buf_;
  }

 private:
  std::string buf_;
  size_t prefix_len_;
};

}  // namespace

void ExecStats::MergeFrom(const ExecStats& other) {
  records_processed += other.records_processed;
  messages_shuffled += other.messages_shuffled;
  cache_hits += other.cache_hits;
  records_not_reshuffled += other.records_not_reshuffled;
  batch_ops += other.batch_ops;
  row_fallback_ops += other.row_fallback_ops;
  messages_replayed += other.messages_replayed;
  for (const auto& [name, count] : other.node_output_counts) {
    node_output_counts[name] += count;
  }
}

Executor::Executor(ExecOptions options) : options_(options) {
  FLINKLESS_CHECK(options_.num_partitions > 0,
                  "executor needs at least one partition");
  // Process-wide by design: index builds and serde also run outside any
  // executor (cache unspill, message-log blocks), and every tier is
  // bit-identical, so the level is a pure wall-clock knob (DESIGN.md §15).
  simd::ApplySimdLevel(options_.simd_level);
  per_partition_args_ =
      options_.trace_detail == TraceDetail::kPerPartition ||
      (options_.trace_detail == TraceDetail::kAuto &&
       options_.num_partitions <= 8);
  int threads = runtime::ThreadPool::ResolveThreadCount(options_.num_threads);
  if (threads > 1) {
    pool_ = std::make_unique<runtime::ThreadPool>(threads);
  }
}

void Executor::ForEachPartition(int count,
                                const std::function<void(int)>& fn) const {
  CountPoolWork(count);
  runtime::ParallelFor(pool_.get(), count, fn);
}

void Executor::ForEachPartition(const runtime::TraceSpan& parent,
                                const PartitionedDataset* in, int count,
                                const std::function<void(int)>& fn) const {
  CountPoolWork(count);
  if (options_.metrics != nullptr && in != nullptr) {
    // Per-partition operator input records, counted on the orchestration
    // thread so the family exists (with identical values) at any thread
    // count.
    for (int p = 0; p < count; ++p) {
      options_.metrics->Count(runtime::metric::kExecRecords, p,
                              in->partition(p).size());
    }
  }
  std::function<int64_t(int)> records_of;
  if (parent.active() && in != nullptr) {
    records_of = [in](int p) {
      return static_cast<int64_t>(in->partition(p).size());
    };
  }
  runtime::TracedParallelFor(pool_.get(), parent, count, fn, records_of);
}

void Executor::CountPoolWork(int tasks) const {
  if (options_.metrics == nullptr || tasks <= 0) return;
  options_.metrics->Count(runtime::metric::kPoolParallelSections, -1);
  options_.metrics->Count(runtime::metric::kPoolTasks, -1,
                          static_cast<uint64_t>(tasks));
}

void Executor::ObserveBatchRows(const PartitionedDataset& ds) const {
  if (options_.metrics == nullptr) return;
  for (int p = 0; p < ds.num_partitions(); ++p) {
    options_.metrics->Observe(runtime::metric::kHistBatchRows,
                              static_cast<int64_t>(ds.partition(p).size()));
  }
}

void Executor::ObserveProbeChains(const FlatKeyIndex& index) const {
  if (options_.metrics == nullptr) return;
  runtime::Histogram local;
  for (int32_t head : index.heads()) {
    int64_t chain = 0;
    for (int32_t row = head; row >= 0; row = index.Next(row)) ++chain;
    local.Observe(chain);
  }
  options_.metrics->Merge(runtime::metric::kHistProbeChain, local);
}

void Executor::ChargeCompute(
    const std::vector<uint64_t>& per_partition) const {
  if (options_.clock == nullptr || options_.costs == nullptr) return;
  uint64_t critical = 0;
  for (uint64_t records : per_partition) critical = std::max(critical, records);
  options_.clock->Add(runtime::Charge::kCompute,
                      options_.costs->cpu_per_record_ns *
                          static_cast<int64_t>(critical));
}

void Executor::ChargeCompute(const PartitionedDataset& a,
                             const PartitionedDataset* b) const {
  if (options_.clock == nullptr || options_.costs == nullptr) return;
  uint64_t critical = 0;
  for (int p = 0; p < a.num_partitions(); ++p) {
    uint64_t records = a.partition(p).size();
    if (b != nullptr && p < b->num_partitions()) {
      records += b->partition(p).size();
    }
    critical = std::max(critical, records);
  }
  options_.clock->Add(runtime::Charge::kCompute,
                      options_.costs->cpu_per_record_ns *
                          static_cast<int64_t>(critical));
}

void Executor::ChargeNetwork(uint64_t messages) const {
  if (options_.clock == nullptr || options_.costs == nullptr) return;
  options_.clock->Add(runtime::Charge::kNetwork,
                      options_.costs->network_per_record_ns *
                          static_cast<int64_t>(messages));
}

template <typename Input>
PartitionedDataset Executor::ShuffleImpl(Input&& input, const KeyColumns& key,
                                         ExecStats* stats) const {
  constexpr bool kMove = !std::is_lvalue_reference_v<Input>;
  const int n = options_.num_partitions;
  const int sources = input.num_partitions();

  // Source sizes, captured up front: compute is charged on them, scatter
  // spans report them, and the move path releases source partitions as
  // soon as they are drained.
  std::vector<uint64_t> in_sizes(sources);
  for (int p = 0; p < sources; ++p) in_sizes[p] = input.partition(p).size();

  // Blocked scatter/gather pipeline: sources are scattered in blocks and
  // each block's outboxes are drained into the output (in source order)
  // before the next block scatters, so peak outbox memory is one block
  // (~half the input) instead of the whole input. Within a target
  // partition records still arrive in global source-partition order, so
  // the result stays byte-identical to the old all-at-once two-phase
  // shuffle — and to a serial single-pass one.
  const int block = sources <= 1 ? 1 : (sources + 1) / 2;

  PartitionedDataset out(n);
  std::vector<uint64_t> moved(sources, 0);
  uint64_t outbox_peak = 0;

  runtime::TraceSpan scatter_span(options_.tracer,
                                  runtime::SpanKind::kShuffleScatter,
                                  "scatter");
  {
    // The gather span nests inside the scatter span (the phases now
    // interleave per block); it must close first.
    runtime::TraceSpan gather_span(options_.tracer,
                                   runtime::SpanKind::kShuffleGather,
                                   "gather");
    for (int base = 0; base < sources; base += block) {
      const int count = std::min(block, sources - base);
      std::vector<std::vector<std::vector<Record>>> outbox(count);

      std::function<int64_t(int)> records_of;
      if (scatter_span.active()) {
        records_of = [&](int i) {
          return static_cast<int64_t>(in_sizes[base + i]);
        };
      }
      CountPoolWork(count);
      runtime::TracedParallelFor(
          pool_.get(), scatter_span, count,
          [&](int i) {
            const int p = base + i;
            auto& boxes = outbox[i];
            boxes.resize(n);
            if (options_.use_columnar) {
              // Batch scatter (§12): resolve the whole key column to
              // target partitions in one pass, size every outbox exactly,
              // then move — no per-record push_back growth. Record order
              // within each outbox is unchanged, so the result is
              // byte-identical to the single-pass path.
              auto& src = input.partition(p);
              std::vector<int32_t> target(src.size());
              std::vector<size_t> counts(n, 0);
              // Single-int64-key shuffles (every hot channel) resolve
              // their targets from one kernel hash stripe. PartitionOf is
              // HashKey % n and the kernel computes exactly that hash for
              // this shape, so the targets are identical.
              std::vector<int64_t> key64;
              if (ExtractKey64(src, key, &key64)) {
                std::vector<uint64_t> hashes(src.size());
                simd::ActiveKernels().hash_key64(key64.data(), src.size(),
                                                 hashes.data());
                for (size_t r = 0; r < src.size(); ++r) {
                  const int t = static_cast<int>(hashes[r] %
                                                 static_cast<uint64_t>(n));
                  target[r] = t;
                  ++counts[t];
                  if (t != p) ++moved[p];
                }
              } else {
                for (size_t r = 0; r < src.size(); ++r) {
                  const int t =
                      PartitionedDataset::PartitionOf(src[r], key, n);
                  target[r] = t;
                  ++counts[t];
                  if (t != p) ++moved[p];
                }
              }
              for (int t = 0; t < n; ++t) boxes[t].reserve(counts[t]);
              if constexpr (kMove) {
                for (size_t r = 0; r < src.size(); ++r) {
                  boxes[target[r]].push_back(std::move(src[r]));
                }
                input.ReleasePartition(p);
              } else {
                for (size_t r = 0; r < src.size(); ++r) {
                  boxes[target[r]].push_back(src[r]);
                }
              }
              return;
            }
            if constexpr (kMove) {
              for (Record& r : input.partition(p)) {
                int target = PartitionedDataset::PartitionOf(r, key, n);
                if (target != p) ++moved[p];
                boxes[target].push_back(std::move(r));
              }
              input.ReleasePartition(p);
            } else {
              for (const Record& r : input.partition(p)) {
                int target = PartitionedDataset::PartitionOf(r, key, n);
                if (target != p) ++moved[p];
                boxes[target].push_back(r);
              }
            }
          },
          records_of, /*partition_offset=*/base);

      uint64_t block_records = 0;
      for (int i = 0; i < count; ++i) block_records += in_sizes[base + i];
      outbox_peak = std::max(outbox_peak, block_records);

      // Drain this block's outboxes, freeing them before the next block
      // scatters (the outbox vector's scope ends with the loop body).
      ForEachPartition(gather_span, nullptr, n, [&](int t) {
        std::vector<Record>& dst = out.partition(t);
        size_t add = 0;
        for (int i = 0; i < count; ++i) add += outbox[i][t].size();
        dst.reserve(dst.size() + add);
        for (int i = 0; i < count; ++i) {
          for (Record& r : outbox[i][t]) dst.push_back(std::move(r));
        }
      });
    }
    if (gather_span.active()) {
      gather_span.AddArg("records", static_cast<int64_t>(out.NumRecords()));
      // Peak records simultaneously buffered in outboxes — a pure function
      // of the input sizes and the (deterministic) block schedule.
      gather_span.AddArg("outbox_peak_records",
                         static_cast<int64_t>(outbox_peak));
    }
  }

  uint64_t total_moved = 0;
  for (uint64_t m : moved) total_moved += m;
  if (options_.metrics != nullptr) {
    // Per-source-partition shuffle fan-out: how many of partition p's
    // records left it for another partition. The counter makes skewed
    // senders visible; the histogram gives the distribution across all
    // shuffles of the run.
    for (int p = 0; p < sources; ++p) {
      options_.metrics->Count(runtime::metric::kShuffleFanout, p, moved[p]);
      options_.metrics->Observe(runtime::metric::kHistShuffleFanout,
                                static_cast<int64_t>(moved[p]));
    }
  }
  if (scatter_span.active()) {
    scatter_span.AddArg("messages", static_cast<int64_t>(total_moved));
    if (per_partition_args_) {
      PartitionKeyBuffer moved_key("moved_p");
      for (int p = 0; p < sources; ++p) {
        scatter_span.AddArg(moved_key.Key(p), static_cast<int64_t>(moved[p]));
      }
    }
  }
  scatter_span.Close();

  ChargeCompute(in_sizes);
  ChargeNetwork(total_moved);
  if (stats != nullptr) stats->messages_shuffled += total_moved;
  return out;
}

PartitionedDataset Executor::Shuffle(const PartitionedDataset& input,
                                     const KeyColumns& key,
                                     ExecStats* stats) const {
  return ShuffleImpl(input, key, stats);
}

PartitionedDataset Executor::Shuffle(PartitionedDataset&& input,
                                     const KeyColumns& key,
                                     ExecStats* stats) const {
  return ShuffleImpl(std::move(input), key, stats);
}

Result<std::map<std::string, PartitionedDataset>> Executor::Execute(
    const Plan& plan, const Bindings& bindings, ExecStats* stats) const {
  FLINKLESS_RETURN_NOT_OK(plan.Validate());
  const int n = options_.num_partitions;

  // Loop-invariant analysis: with a cache attached, a node whose value
  // cannot change between supersteps is served from / stored into it.
  ExecCache* cache = options_.cache;
  std::vector<bool> invariant;
  if (cache != nullptr) {
    cache->EnsurePartitionCount(n);
    invariant = plan.InvariantNodes(cache->volatile_bindings());
  }

  // Outbound message log (DESIGN.md §14): every shuffle of a loop-variant
  // channel is appended post-gather. Variance is computed against the
  // log's own volatile set so logging works with or without a cache, and
  // the logged channel set is identical either way (a static build side
  // served from the cache is invariant, hence never logged).
  runtime::MessageLog* msglog = options_.message_log;
  std::vector<bool> log_variant;
  if (msglog != nullptr) {
    std::vector<bool> log_invariant =
        plan.InvariantNodes(msglog->volatile_bindings());
    log_variant.resize(log_invariant.size());
    for (size_t i = 0; i < log_invariant.size(); ++i) {
      log_variant[i] = !log_invariant[i];
    }
  }
  // Appends a just-shuffled channel of `node` (the shuffled input is plan
  // node `input_node`, arriving on `port` ∈ {in, l, r}).
  auto log_shuffled = [&](const PlanNode& node, NodeId input_node,
                          const char* port,
                          const PartitionedDataset& shuffled) -> Status {
    if (msglog == nullptr || !log_variant[input_node]) return Status::OK();
    return msglog->Append(MsglogChannel(node.id, port), shuffled,
                          options_.tracer);
  };

  ExecStats local_stats;

  // Node results are views over a borrowed source binding, a cache entry,
  // or an executor-owned dataset — sources and cache hits cost no copies
  // (the executor used to deep-copy every source binding per Execute).
  // Reserved up front: views point into their own slots.
  struct Slot {
    PartitionedDataset owned;
    std::shared_ptr<const PartitionedDataset> keepalive;
    const PartitionedDataset* view = nullptr;
    bool is_owned = false;
  };
  std::vector<Slot> slots;
  slots.reserve(plan.num_nodes());
  auto push_owned = [&](PartitionedDataset ds) {
    Slot& s = slots.emplace_back();
    s.owned = std::move(ds);
    s.view = &s.owned;
    s.is_owned = true;
  };
  auto push_view = [&](const PartitionedDataset* ds) {
    slots.emplace_back().view = ds;
  };
  auto push_cached = [&](std::shared_ptr<const PartitionedDataset> ds) {
    Slot& s = slots.emplace_back();
    s.keepalive = std::move(ds);
    s.view = s.keepalive.get();
  };
  auto input_of = [&](int idx) -> const PartitionedDataset& {
    return *slots[idx].view;
  };

  auto count_output = [&](const PlanNode& node,
                          const PartitionedDataset& ds) {
    local_stats.node_output_counts[node.name] += ds.NumRecords();
  };

  // Per-partition failure slots for operators that can fail mid-record;
  // checked in partition order after the parallel section so the reported
  // error is the same one serial execution would hit first.
  std::vector<Status> part_status(n);
  auto reset_status = [&] {
    for (Status& s : part_status) s = Status::OK();
  };
  auto first_error = [&]() -> Status {
    for (const Status& s : part_status) {
      if (!s.ok()) return s;
    }
    return Status::OK();
  };

  for (const PlanNode& node : plan.nodes()) {
    // One span per operator; per-partition child spans are recorded by the
    // traced ForEachPartition overload below. Input/output record counts
    // land as args when the span closes at the end of this loop body.
    uint64_t span_records_in = 0;
    if (options_.tracer != nullptr) {
      for (int idx : node.inputs) {
        span_records_in += slots[idx].view->NumRecords();
      }
    }
    runtime::TraceSpan op_span(options_.tracer, runtime::SpanKind::kOperator,
                               node.name);

    // Fully loop-invariant node: its output is the same every superstep,
    // so the first execution materializes it into the cache and every
    // later one serves the cached dataset without running (or charging)
    // anything. Sources are exempt — they are already zero-copy views.
    bool from_cache = false;
    bool store_output = false;
    if (cache != nullptr && node.kind != OpKind::kSource &&
        invariant[node.id]) {
      bool reloaded = false;
      FLINKLESS_ASSIGN_OR_RETURN(
          ExecCache::Entry* e,
          cache->FindResident(node.id, ExecCache::Role::kOutput,
                              options_.tracer, &reloaded));
      if (e != nullptr) {
        cache->CountHit();
        ++local_stats.cache_hits;
        switch (node.kind) {
          case OpKind::kReduceByKey:
          case OpKind::kGroupReduceByKey:
          case OpKind::kJoin:
          case OpKind::kCoGroup:
          case OpKind::kDistinct:
            // These would have shuffled their inputs.
            for (int idx : node.inputs) {
              local_stats.records_not_reshuffled +=
                  slots[idx].view->NumRecords();
            }
            break;
          default:
            break;
        }
        push_cached(e->data);
        if (op_span.active()) {
          op_span.AddArg("cache_hit", 1);
          op_span.AddArg("reloaded", reloaded ? 1 : 0);
        }
        from_cache = true;
      } else {
        store_output = true;
      }
    }

    if (!from_cache) {
      switch (node.kind) {
        case OpKind::kSource: {
          auto it = bindings.find(node.source_name);
          if (it == bindings.end() || it->second == nullptr) {
            return Status::NotFound("no binding for source '" +
                                    node.source_name + "'");
          }
          if (it->second->num_partitions() != n) {
            return Status::InvalidArgument(
                "binding '" + node.source_name + "' has " +
                std::to_string(it->second->num_partitions()) +
                " partitions, executor expects " + std::to_string(n));
          }
          push_view(it->second);
          break;
        }

        case OpKind::kMap: {
          const PartitionedDataset& in = input_of(node.inputs[0]);
          PartitionedDataset out(n);
          // Batched UDF boundary (DESIGN.md §15): when the node carries a
          // batch impl and the input is schema-homogeneous, each partition
          // crosses the boundary once as a ColumnarBatch instead of once
          // per record. The record fn stays the semantic reference — the
          // batch impl must match it row for row.
          BatchSchema schema;
          const bool has_batch = node.batch_map_fn != nullptr;
          const bool batched =
              has_batch && options_.use_columnar &&
              ResolveBatchSchema(cache, node.id, in, &schema);
          if (has_batch) {
            batched ? ++local_stats.batch_ops : ++local_stats.row_fallback_ops;
          }
          if (batched) ObserveBatchRows(in);
          reset_status();
          ForEachPartition(op_span, &in, n, [&](int p) {
            const std::vector<Record>& rows = in.partition(p);
            if (batched) {
              if (rows.empty()) return;
              ColumnarBatch batch =
                  ColumnarBatch::FromRecordsUnchecked(rows, schema);
              ColumnarBatch result;
              node.batch_map_fn(batch, &result);
              if (result.num_rows() != rows.size()) {
                part_status[p] = Status::Internal(
                    "Map '" + node.name + "': batch impl produced " +
                    std::to_string(result.num_rows()) + " rows from " +
                    std::to_string(rows.size()));
                return;
              }
              out.partition(p) = result.ToRecords();
              return;
            }
            out.partition(p).reserve(rows.size());
            for (const Record& r : rows) {
              out.partition(p).push_back(node.map_fn(r));
            }
          });
          FLINKLESS_RETURN_NOT_OK(first_error());
          local_stats.records_processed += in.NumRecords();
          ChargeCompute(in);
          push_owned(std::move(out));
          break;
        }

        case OpKind::kFlatMap: {
          const PartitionedDataset& in = input_of(node.inputs[0]);
          PartitionedDataset out(n);
          BatchSchema schema;
          const bool has_batch = node.batch_map_fn != nullptr;
          const bool batched =
              has_batch && options_.use_columnar &&
              ResolveBatchSchema(cache, node.id, in, &schema);
          if (has_batch) {
            batched ? ++local_stats.batch_ops : ++local_stats.row_fallback_ops;
          }
          if (batched) ObserveBatchRows(in);
          ForEachPartition(op_span, &in, n, [&](int p) {
            const std::vector<Record>& rows = in.partition(p);
            if (batched) {
              if (rows.empty()) return;
              ColumnarBatch batch =
                  ColumnarBatch::FromRecordsUnchecked(rows, schema);
              ColumnarBatch result;
              node.batch_map_fn(batch, &result);
              out.partition(p) = result.ToRecords();
              return;
            }
            for (const Record& r : rows) {
              node.flat_map_fn(r, &out.partition(p));
            }
          });
          local_stats.records_processed += in.NumRecords();
          ChargeCompute(in);
          push_owned(std::move(out));
          break;
        }

        case OpKind::kFilter: {
          const PartitionedDataset& in = input_of(node.inputs[0]);
          PartitionedDataset out(n);
          ForEachPartition(op_span, &in, n, [&](int p) {
            for (const Record& r : in.partition(p)) {
              if (node.filter_fn(r)) out.partition(p).push_back(r);
            }
          });
          local_stats.records_processed += in.NumRecords();
          ChargeCompute(in);
          push_owned(std::move(out));
          break;
        }

        case OpKind::kProject: {
          const PartitionedDataset& in = input_of(node.inputs[0]);
          PartitionedDataset out(n);
          reset_status();
          ForEachPartition(op_span, &in, n, [&](int p) {
            for (const Record& r : in.partition(p)) {
              Record projected;
              projected.reserve(node.project_columns.size());
              for (int col : node.project_columns) {
                if (col < 0 || static_cast<size_t>(col) >= r.size()) {
                  part_status[p] = Status::OutOfRange(
                      "Project '" + node.name + "': column " +
                      std::to_string(col) + " out of range for record " +
                      RecordToString(r));
                  return;
                }
                projected.push_back(r[col]);
              }
              out.partition(p).push_back(std::move(projected));
            }
          });
          FLINKLESS_RETURN_NOT_OK(first_error());
          local_stats.records_processed += in.NumRecords();
          ChargeCompute(in);
          push_owned(std::move(out));
          break;
        }

        case OpKind::kReduceByKey: {
          const bool batch = options_.use_columnar;
          batch ? ++local_stats.batch_ops : ++local_stats.row_fallback_ops;
          const PartitionedDataset* in = &input_of(node.inputs[0]);
          PartitionedDataset combined;
          if (node.pre_combine) {
            // Local pre-aggregation before the shuffle: fewer messages.
            combined = PartitionedDataset(in->num_partitions());
            if (batch) ObserveBatchRows(*in);
            reset_status();
            ForEachPartition(op_span, in, in->num_partitions(), [&](int p) {
              if (batch) {
                if (node.reduce_kind != ReduceKind::kNone &&
                    FlatReduceTypedPartition(
                        in->partition(p), node.left_key, node.reduce_kind,
                        node.reduce_value_col, &combined.partition(p))) {
                  return;
                }
                part_status[p] = FlatReducePartition(
                    in->partition(p), node.left_key, node.combine_fn,
                    /*validate=*/false, node.name, &combined.partition(p));
                return;
              }
              std::unordered_map<Record, Record, RecordHash> acc;
              acc.reserve(in->partition(p).size());
              for (const Record& r : in->partition(p)) {
                Record k = ExtractKey(r, node.left_key);
                auto [it, inserted] = acc.try_emplace(std::move(k), r);
                if (!inserted) it->second = node.combine_fn(it->second, r);
              }
              std::vector<const Record*> keys;
              keys.reserve(acc.size());
              for (const auto& [k, v] : acc) keys.push_back(&k);
              std::sort(keys.begin(), keys.end(),
                        [](const Record* a, const Record* b) {
                          return RecordLess(*a, *b);
                        });
              combined.partition(p).reserve(keys.size());
              for (const Record* k : keys) {
                combined.partition(p).push_back(std::move(acc.at(*k)));
              }
            });
            FLINKLESS_RETURN_NOT_OK(first_error());
            local_stats.records_processed += in->NumRecords();
            ChargeCompute(*in);
            in = &combined;
          }
          PartitionedDataset shuffled =
              in == &combined
                  ? Shuffle(std::move(combined), node.left_key, &local_stats)
                  : Shuffle(*in, node.left_key, &local_stats);
          FLINKLESS_RETURN_NOT_OK(
              log_shuffled(node, node.inputs[0], "in", shuffled));
          if (batch) ObserveBatchRows(shuffled);
          PartitionedDataset out(n);
          reset_status();
          ForEachPartition(op_span, &shuffled, n, [&](int p) {
            if (batch) {
              if (node.reduce_kind != ReduceKind::kNone &&
                  FlatReduceTypedPartition(
                      shuffled.partition(p), node.left_key, node.reduce_kind,
                      node.reduce_value_col, &out.partition(p))) {
                return;
              }
              part_status[p] = FlatReducePartition(
                  shuffled.partition(p), node.left_key, node.combine_fn,
                  /*validate=*/true, node.name, &out.partition(p));
              return;
            }
            std::unordered_map<Record, Record, RecordHash> acc;
            acc.reserve(shuffled.partition(p).size());
            for (const Record& r : shuffled.partition(p)) {
              Record k = ExtractKey(r, node.left_key);
              auto [it, inserted] = acc.try_emplace(std::move(k), r);
              if (!inserted) {
                Record folded = node.combine_fn(it->second, r);
                if (!KeysEqual(folded, node.left_key, r, node.left_key)) {
                  part_status[p] = Status::Internal(
                      "ReduceByKey '" + node.name +
                      "': combiner changed the key (got " +
                      RecordToString(folded) + ")");
                  return;
                }
                it->second = std::move(folded);
              }
            }
            std::vector<const Record*> keys;
            keys.reserve(acc.size());
            for (const auto& [k, v] : acc) keys.push_back(&k);
            std::sort(keys.begin(), keys.end(),
                      [](const Record* a, const Record* b) {
                        return RecordLess(*a, *b);
                      });
            out.partition(p).reserve(keys.size());
            for (const Record* k : keys) {
              out.partition(p).push_back(std::move(acc.at(*k)));
            }
          });
          FLINKLESS_RETURN_NOT_OK(first_error());
          local_stats.records_processed += shuffled.NumRecords();
          ChargeCompute(shuffled);
          push_owned(std::move(out));
          break;
        }

        case OpKind::kGroupReduceByKey: {
          const bool batch = options_.use_columnar;
          batch ? ++local_stats.batch_ops : ++local_stats.row_fallback_ops;
          const PartitionedDataset& in = input_of(node.inputs[0]);
          PartitionedDataset shuffled =
              Shuffle(in, node.left_key, &local_stats);
          FLINKLESS_RETURN_NOT_OK(
              log_shuffled(node, node.inputs[0], "in", shuffled));
          if (batch) ObserveBatchRows(shuffled);
          PartitionedDataset out(n);
          ForEachPartition(op_span, &shuffled, n, [&](int p) {
            if (batch) {
              // Batch path: one flat index instead of a map of materialized
              // groups. Chains preserve arrival order, so each group's
              // records reach the UDF in the same order the GroupMap held
              // them; sorting first-arrival rows with KeyLess emits groups
              // in the same key order as SortedKeys.
              const std::vector<Record>& rows = shuffled.partition(p);
              FlatKeyIndex index;
              index.Build(rows, node.left_key);
              std::vector<int32_t> heads = index.heads();
              std::sort(heads.begin(), heads.end(),
                        [&](int32_t a, int32_t b) {
                          return KeyLess(rows[a], rows[b], node.left_key);
                        });
              out.partition(p).reserve(heads.size());
              std::vector<Record> group;
              for (int32_t head : heads) {
                group.clear();
                for (int32_t r = head; r >= 0; r = index.Next(r)) {
                  group.push_back(rows[r]);
                }
                out.partition(p).push_back(node.group_reduce_fn(
                    ExtractKey(rows[head], node.left_key), group));
              }
              return;
            }
            GroupMap groups = GroupByKey(shuffled.partition(p), node.left_key);
            std::vector<const Record*> keys = SortedKeys(groups);
            out.partition(p).reserve(keys.size());
            for (const Record* key : keys) {
              out.partition(p).push_back(
                  node.group_reduce_fn(*key, groups.at(*key)));
            }
          });
          local_stats.records_processed += shuffled.NumRecords();
          ChargeCompute(shuffled);
          push_owned(std::move(out));
          break;
        }

        case OpKind::kJoin: {
          const bool batch = options_.use_columnar;
          batch ? ++local_stats.batch_ops : ++local_stats.row_fallback_ops;
          const bool build_static = cache != nullptr && !invariant[node.id] &&
                                    invariant[node.inputs[0]];
          const bool probe_static = cache != nullptr && !invariant[node.id] &&
                                    invariant[node.inputs[1]];
          if (build_static) {
            // Loop-invariant build side: shuffle + index it once; later
            // supersteps probe the prebuilt per-partition hash index,
            // whose entries reference the cached records directly.
            bool reloaded = false;
            FLINKLESS_ASSIGN_OR_RETURN(
                ExecCache::Entry* e,
                cache->FindResident(node.id, ExecCache::Role::kBuild,
                                    options_.tracer, &reloaded));
            const bool hit = e != nullptr;
            if (!hit) {
              PartitionedDataset shuffled = Shuffle(
                  input_of(node.inputs[0]), node.left_key, &local_stats);
              ExecCache::Entry& entry =
                  cache->Emplace(node.id, ExecCache::Role::kBuild);
              auto data =
                  std::make_shared<PartitionedDataset>(std::move(shuffled));
              entry.data = data;
              entry.index_key = node.left_key;
              if (batch) {
                // Batch path: flat open-addressing index over the key
                // column — no per-record key materialization or map nodes.
                entry.flat_index.resize(n);
                ForEachPartition(n, [&](int p) {
                  entry.flat_index[p].Build(data->partition(p),
                                            node.left_key);
                });
                ObserveBatchRows(*data);
                for (int p = 0; p < n; ++p) {
                  ObserveProbeChains(entry.flat_index[p]);
                }
              } else {
                entry.join_index.resize(n);
                ForEachPartition(n, [&](int p) {
                  JoinIndex& index = entry.join_index[p];
                  const std::vector<Record>& part = data->partition(p);
                  index.reserve(part.size());
                  for (const Record& r : part) {
                    index[ExtractKey(r, node.left_key)].push_back(&r);
                  }
                });
              }
              e = cache->Find(node.id, ExecCache::Role::kBuild);
              FLINKLESS_RETURN_NOT_OK(cache->OnEntryFilled(
                  node.id, ExecCache::Role::kBuild, options_.tracer));
              if (op_span.active()) op_span.AddArg("cache_build", 1);
            } else {
              cache->CountHit();
              ++local_stats.cache_hits;
              local_stats.records_not_reshuffled += e->data->NumRecords();
              if (op_span.active()) {
                op_span.AddArg("cache_hit", 1);
                op_span.AddArg("reloaded", reloaded ? 1 : 0);
              }
            }
            PartitionedDataset right = Shuffle(input_of(node.inputs[1]),
                                               node.right_key, &local_stats);
            FLINKLESS_RETURN_NOT_OK(
                log_shuffled(node, node.inputs[1], "r", right));
            PartitionedDataset out(n);
            ForEachPartition(op_span, &right, n, [&](int p) {
              // Probe whichever index kind this entry carries (a cache can
              // outlive an executor, so the entry's mode wins over ours).
              if (!e->flat_index.empty()) {
                const FlatKeyIndex& index = e->flat_index[p];
                const std::vector<Record>& build = e->data->partition(p);
                if (StripedJoinProbe(index, build, right.partition(p),
                                     node.right_key, node.join_fn,
                                     &out.partition(p))) {
                  return;
                }
                for (const Record& r : right.partition(p)) {
                  int32_t row = index.FindFirst(
                      r, node.right_key, HashKey(r, node.right_key));
                  for (; row >= 0; row = index.Next(row)) {
                    out.partition(p).push_back(node.join_fn(build[row], r));
                  }
                }
                return;
              }
              const JoinIndex& index = e->join_index[p];
              for (const Record& r : right.partition(p)) {
                auto it = index.find(ExtractKey(r, node.right_key));
                if (it == index.end()) continue;
                for (const Record* l : it->second) {
                  out.partition(p).push_back(node.join_fn(*l, r));
                }
              }
            });
            if (hit) {
              // Only the probe side is processed this superstep; the
              // cached side costs nothing (that is the optimization).
              local_stats.records_processed += right.NumRecords();
              ChargeCompute(right);
            } else {
              local_stats.records_processed +=
                  e->data->NumRecords() + right.NumRecords();
              ChargeCompute(*e->data, &right);
            }
            push_owned(std::move(out));
            break;
          }
          if (probe_static) {
            // Loop-invariant probe side: its shuffle is cached; the hash
            // table still rebuilds from the changing build side.
            bool reloaded = false;
            FLINKLESS_ASSIGN_OR_RETURN(
                ExecCache::Entry* e,
                cache->FindResident(node.id, ExecCache::Role::kProbe,
                                    options_.tracer, &reloaded));
            const bool hit = e != nullptr;
            if (!hit) {
              PartitionedDataset shuffled = Shuffle(
                  input_of(node.inputs[1]), node.right_key, &local_stats);
              ExecCache::Entry& entry =
                  cache->Emplace(node.id, ExecCache::Role::kProbe);
              entry.data =
                  std::make_shared<PartitionedDataset>(std::move(shuffled));
              e = cache->Find(node.id, ExecCache::Role::kProbe);
              FLINKLESS_RETURN_NOT_OK(cache->OnEntryFilled(
                  node.id, ExecCache::Role::kProbe, options_.tracer));
              if (op_span.active()) op_span.AddArg("cache_build", 1);
            } else {
              cache->CountHit();
              ++local_stats.cache_hits;
              local_stats.records_not_reshuffled += e->data->NumRecords();
              if (op_span.active()) {
                op_span.AddArg("cache_hit", 1);
                op_span.AddArg("reloaded", reloaded ? 1 : 0);
              }
            }
            const PartitionedDataset& right = *e->data;
            PartitionedDataset left = Shuffle(input_of(node.inputs[0]),
                                              node.left_key, &local_stats);
            FLINKLESS_RETURN_NOT_OK(
                log_shuffled(node, node.inputs[0], "l", left));
            if (batch) ObserveBatchRows(left);
            PartitionedDataset out(n);
            ForEachPartition(op_span, &left, n, [&](int p) {
              if (batch) {
                const std::vector<Record>& rows = left.partition(p);
                FlatKeyIndex index;
                index.Build(rows, node.left_key);
                ObserveProbeChains(index);
                if (StripedJoinProbe(index, rows, right.partition(p),
                                     node.right_key, node.join_fn,
                                     &out.partition(p))) {
                  return;
                }
                for (const Record& r : right.partition(p)) {
                  int32_t row = index.FindFirst(
                      r, node.right_key, HashKey(r, node.right_key));
                  for (; row >= 0; row = index.Next(row)) {
                    out.partition(p).push_back(node.join_fn(rows[row], r));
                  }
                }
                return;
              }
              GroupMap build = GroupByKey(left.partition(p), node.left_key);
              for (const Record& r : right.partition(p)) {
                auto it = build.find(ExtractKey(r, node.right_key));
                if (it == build.end()) continue;
                for (const Record& l : it->second) {
                  out.partition(p).push_back(node.join_fn(l, r));
                }
              }
            });
            if (hit) {
              local_stats.records_processed += left.NumRecords();
              ChargeCompute(left);
            } else {
              local_stats.records_processed +=
                  left.NumRecords() + right.NumRecords();
              ChargeCompute(left, &right);
            }
            push_owned(std::move(out));
            break;
          }
          PartitionedDataset left =
              Shuffle(input_of(node.inputs[0]), node.left_key, &local_stats);
          PartitionedDataset right =
              Shuffle(input_of(node.inputs[1]), node.right_key, &local_stats);
          FLINKLESS_RETURN_NOT_OK(
              log_shuffled(node, node.inputs[0], "l", left));
          FLINKLESS_RETURN_NOT_OK(
              log_shuffled(node, node.inputs[1], "r", right));
          if (batch) ObserveBatchRows(left);
          PartitionedDataset out(n);
          ForEachPartition(op_span, &left, n, [&](int p) {
            if (batch) {
              const std::vector<Record>& rows = left.partition(p);
              FlatKeyIndex index;
              index.Build(rows, node.left_key);
              ObserveProbeChains(index);
              if (StripedJoinProbe(index, rows, right.partition(p),
                                   node.right_key, node.join_fn,
                                   &out.partition(p))) {
                return;
              }
              for (const Record& r : right.partition(p)) {
                int32_t row = index.FindFirst(
                    r, node.right_key, HashKey(r, node.right_key));
                for (; row >= 0; row = index.Next(row)) {
                  out.partition(p).push_back(node.join_fn(rows[row], r));
                }
              }
              return;
            }
            GroupMap build = GroupByKey(left.partition(p), node.left_key);
            for (const Record& r : right.partition(p)) {
              auto it = build.find(ExtractKey(r, node.right_key));
              if (it == build.end()) continue;
              for (const Record& l : it->second) {
                out.partition(p).push_back(node.join_fn(l, r));
              }
            }
          });
          local_stats.records_processed +=
              left.NumRecords() + right.NumRecords();
          ChargeCompute(left, &right);
          push_owned(std::move(out));
          break;
        }

        case OpKind::kCoGroup: {
          // Cogroup has no batch implementation: its UDF sweeps fully
          // materialized groups on both sides at once, so flattening one
          // side into an index buys nothing (DESIGN.md §12 fallback rule).
          ++local_stats.row_fallback_ops;
          const bool left_static = cache != nullptr && !invariant[node.id] &&
                                   invariant[node.inputs[0]];
          const bool right_static = cache != nullptr && !invariant[node.id] &&
                                    invariant[node.inputs[1]];
          if (left_static || right_static) {
            // One loop-invariant side: shuffle + group it once, reuse the
            // materialized groups every later superstep.
            const int static_in =
                left_static ? node.inputs[0] : node.inputs[1];
            const KeyColumns& static_key =
                left_static ? node.left_key : node.right_key;
            const ExecCache::Role role = left_static
                                             ? ExecCache::Role::kBuild
                                             : ExecCache::Role::kProbe;
            bool reloaded = false;
            FLINKLESS_ASSIGN_OR_RETURN(
                ExecCache::Entry* e,
                cache->FindResident(node.id, role, options_.tracer,
                                    &reloaded));
            const bool hit = e != nullptr;
            if (!hit) {
              PartitionedDataset shuffled =
                  Shuffle(input_of(static_in), static_key, &local_stats);
              ExecCache::Entry& entry = cache->Emplace(node.id, role);
              auto data =
                  std::make_shared<PartitionedDataset>(std::move(shuffled));
              entry.data = data;
              entry.index_key = static_key;
              entry.groups.resize(n);
              ForEachPartition(n, [&](int p) {
                entry.groups[p] = GroupByKey(data->partition(p), static_key);
              });
              e = cache->Find(node.id, role);
              FLINKLESS_RETURN_NOT_OK(
                  cache->OnEntryFilled(node.id, role, options_.tracer));
              if (op_span.active()) op_span.AddArg("cache_build", 1);
            } else {
              cache->CountHit();
              ++local_stats.cache_hits;
              local_stats.records_not_reshuffled += e->data->NumRecords();
              if (op_span.active()) {
                op_span.AddArg("cache_hit", 1);
                op_span.AddArg("reloaded", reloaded ? 1 : 0);
              }
            }
            const int vol_in = left_static ? node.inputs[1] : node.inputs[0];
            const KeyColumns& vol_key =
                left_static ? node.right_key : node.left_key;
            PartitionedDataset vol =
                Shuffle(input_of(vol_in), vol_key, &local_stats);
            FLINKLESS_RETURN_NOT_OK(log_shuffled(
                node, vol_in, left_static ? "r" : "l", vol));
            PartitionedDataset out(n);
            ForEachPartition(op_span, &vol, n, [&](int p) {
              GroupMap vgroups = GroupByKey(vol.partition(p), vol_key);
              const GroupMap& lgroups =
                  left_static ? e->groups[p] : vgroups;
              const GroupMap& rgroups =
                  left_static ? vgroups : e->groups[p];
              std::vector<const Record*> keys;
              keys.reserve(lgroups.size() + rgroups.size());
              for (const auto& [k, g] : lgroups) keys.push_back(&k);
              for (const auto& [k, g] : rgroups) {
                if (lgroups.find(k) == lgroups.end()) keys.push_back(&k);
              }
              std::sort(keys.begin(), keys.end(),
                        [](const Record* a, const Record* b) {
                          return RecordLess(*a, *b);
                        });
              for (const Record* key : keys) {
                auto lit = lgroups.find(*key);
                auto rit = rgroups.find(*key);
                node.cogroup_fn(
                    *key, lit != lgroups.end() ? lit->second : kEmptyGroup,
                    rit != rgroups.end() ? rit->second : kEmptyGroup,
                    &out.partition(p));
              }
            });
            if (hit) {
              local_stats.records_processed += vol.NumRecords();
              ChargeCompute(vol);
            } else {
              local_stats.records_processed +=
                  e->data->NumRecords() + vol.NumRecords();
              ChargeCompute(*e->data, &vol);
            }
            push_owned(std::move(out));
            break;
          }
          PartitionedDataset left =
              Shuffle(input_of(node.inputs[0]), node.left_key, &local_stats);
          PartitionedDataset right =
              Shuffle(input_of(node.inputs[1]), node.right_key, &local_stats);
          FLINKLESS_RETURN_NOT_OK(
              log_shuffled(node, node.inputs[0], "l", left));
          FLINKLESS_RETURN_NOT_OK(
              log_shuffled(node, node.inputs[1], "r", right));
          PartitionedDataset out(n);
          ForEachPartition(op_span, &left, n, [&](int p) {
            GroupMap lgroups = GroupByKey(left.partition(p), node.left_key);
            GroupMap rgroups = GroupByKey(right.partition(p), node.right_key);
            // Sweep the union of both key sets in RecordLess order, exactly
            // like the old sorted-map merge.
            std::vector<const Record*> keys;
            keys.reserve(lgroups.size() + rgroups.size());
            for (const auto& [k, g] : lgroups) keys.push_back(&k);
            for (const auto& [k, g] : rgroups) {
              if (lgroups.find(k) == lgroups.end()) keys.push_back(&k);
            }
            std::sort(keys.begin(), keys.end(),
                      [](const Record* a, const Record* b) {
                        return RecordLess(*a, *b);
                      });
            for (const Record* key : keys) {
              auto lit = lgroups.find(*key);
              auto rit = rgroups.find(*key);
              node.cogroup_fn(
                  *key, lit != lgroups.end() ? lit->second : kEmptyGroup,
                  rit != rgroups.end() ? rit->second : kEmptyGroup,
                  &out.partition(p));
            }
          });
          local_stats.records_processed +=
              left.NumRecords() + right.NumRecords();
          ChargeCompute(left, &right);
          push_owned(std::move(out));
          break;
        }

        case OpKind::kCross: {
          const PartitionedDataset& left = input_of(node.inputs[0]);
          const PartitionedDataset& right = input_of(node.inputs[1]);
          // Broadcast the right side: every record is replicated to every
          // partition but its own (counted as messages).
          std::vector<Record> right_all = right.Collect();
          uint64_t broadcast_messages =
              right.NumRecords() * static_cast<uint64_t>(n > 0 ? n - 1 : 0);
          local_stats.messages_shuffled += broadcast_messages;
          ChargeNetwork(broadcast_messages);
          PartitionedDataset out(n);
          ForEachPartition(op_span, &left, n, [&](int p) {
            out.partition(p).reserve(left.partition(p).size() *
                                     right_all.size());
            for (const Record& l : left.partition(p)) {
              for (const Record& r : right_all) {
                out.partition(p).push_back(node.join_fn(l, r));
              }
            }
          });
          local_stats.records_processed +=
              left.NumRecords() + right.NumRecords();
          // Partition p pays for its own left records against the whole
          // broadcast right side; the critical path is the largest
          // partition.
          ChargeCompute(std::vector<uint64_t>{MaxPartitionSize(left) *
                                              right_all.size()});
          push_owned(std::move(out));
          break;
        }

        case OpKind::kUnion: {
          const PartitionedDataset& a = input_of(node.inputs[0]);
          const PartitionedDataset& b = input_of(node.inputs[1]);
          PartitionedDataset out(n);
          ForEachPartition(op_span, &a, n, [&](int p) {
            out.partition(p).reserve(a.partition(p).size() +
                                     b.partition(p).size());
            out.partition(p).insert(out.partition(p).end(),
                                    a.partition(p).begin(),
                                    a.partition(p).end());
            out.partition(p).insert(out.partition(p).end(),
                                    b.partition(p).begin(),
                                    b.partition(p).end());
          });
          local_stats.records_processed += a.NumRecords() + b.NumRecords();
          ChargeCompute(a, &b);
          push_owned(std::move(out));
          break;
        }

        case OpKind::kDistinct: {
          const bool batch = options_.use_columnar;
          batch ? ++local_stats.batch_ops : ++local_stats.row_fallback_ops;
          PartitionedDataset shuffled = Shuffle(input_of(node.inputs[0]),
                                                node.left_key, &local_stats);
          FLINKLESS_RETURN_NOT_OK(
              log_shuffled(node, node.inputs[0], "in", shuffled));
          if (batch) ObserveBatchRows(shuffled);
          PartitionedDataset out(n);
          ForEachPartition(op_span, &shuffled, n, [&](int p) {
            if (batch) {
              // Batch path: flat slot map keyed on the whole record; the
              // emitted records double as the dedup table (first occurrence
              // wins in both paths, so output order is identical).
              std::vector<Record>& dst = out.partition(p);
              FlatSlotMap slots(shuffled.partition(p).size());
              for (const Record& r : shuffled.partition(p)) {
                bool inserted = false;
                slots.FindOrInsert(
                    HashRecord(r), [&](int32_t s) { return dst[s] == r; },
                    &inserted);
                if (inserted) dst.push_back(r);
              }
              return;
            }
            std::unordered_set<Record, RecordHash> seen;
            seen.reserve(shuffled.partition(p).size());
            for (const Record& r : shuffled.partition(p)) {
              if (seen.insert(r).second) out.partition(p).push_back(r);
            }
          });
          local_stats.records_processed += shuffled.NumRecords();
          ChargeCompute(shuffled);
          push_owned(std::move(out));
          break;
        }
      }

      if (store_output) {
        // First execution of an invariant node: move its output into the
        // cache and keep serving this Execute from the cached copy.
        Slot& s = slots.back();
        auto shared = std::make_shared<PartitionedDataset>(std::move(s.owned));
        cache->Emplace(node.id, ExecCache::Role::kOutput).data = shared;
        s.keepalive = shared;
        s.view = shared.get();
        s.is_owned = false;
        FLINKLESS_RETURN_NOT_OK(cache->OnEntryFilled(
            node.id, ExecCache::Role::kOutput, options_.tracer));
        if (op_span.active()) op_span.AddArg("cache_build", 1);
      }
    }

    count_output(node, *slots.back().view);
    if (op_span.active()) {
      const PartitionedDataset& produced = *slots.back().view;
      op_span.AddArg("records_in", static_cast<int64_t>(span_records_in));
      op_span.AddArg("records_out",
                     static_cast<int64_t>(produced.NumRecords()));
      if (per_partition_args_) {
        PartitionKeyBuffer out_key("out_p");
        for (int p = 0; p < produced.num_partitions(); ++p) {
          op_span.AddArg(out_key.Key(p),
                         static_cast<int64_t>(produced.partition(p).size()));
        }
      }
    }
  }

  std::map<std::string, PartitionedDataset> outputs;
  std::map<int, int> outputs_left;
  for (const auto& [name, node] : plan.outputs()) ++outputs_left[node];
  for (const auto& [name, node] : plan.outputs()) {
    Slot& s = slots[node];
    // Executor-owned results move into their last requesting output;
    // borrowed/cached views are copied (callers own their outputs).
    if (s.is_owned && --outputs_left[node] == 0) {
      outputs.emplace(name, std::move(s.owned));
    } else {
      outputs.emplace(name, *s.view);
    }
  }
  if (options_.metrics != nullptr) {
    // Job-level roll-ups of this Execute, under the canonical v2 names.
    // The per-partition families (exec.records, shuffle.fanout) are
    // recorded at the operator/shuffle sites above; cache hits are counted
    // by the ExecCache itself.
    runtime::MetricsSink* m = options_.metrics;
    m->Count(runtime::metric::kExecBatchOps, -1, local_stats.batch_ops);
    m->Count(runtime::metric::kExecRowFallbackOps, -1,
             local_stats.row_fallback_ops);
    m->Count(runtime::metric::kCacheRecordsNotReshuffled, -1,
             local_stats.records_not_reshuffled);
  }
  if (stats != nullptr) stats->MergeFrom(local_stats);
  return outputs;
}

// ------------------------------------------------ confined-log replay --
//
// Rebuilds the plan outputs for the lost partitions from the logged
// post-shuffle channels (DESIGN.md §14). Two passes:
//
//  1. Backward demand analysis. Each node is demanded at kNone, kLost
//     (only the lost partitions of its output are needed) or kAll.
//     Narrow operators pass their demand to their input unchanged — they
//     are partition-local. A shuffle operator *stops* demand on a variant
//     input (its post-shuffle content is in the log) and raises kAll on an
//     invariant input (the side must be recomputed and re-shuffled in
//     full, since any source partition can feed a lost target). Cross
//     demands its left side at the node's demand and its right side —
//     broadcast everywhere during Execute — at kAll.
//
//  2. Serial forward pass over the demanded nodes, computing only the
//     demanded partitions with the record-at-a-time operator bodies
//     (byte-identical to the batch path by the §12 contract, and
//     trivially deterministic: no threads, no budget interaction).
//
// Everything is charged to Charge::kRecovery: logged messages shipped
// into lost partitions at network rate, recomputed records on the
// critical path at cpu rate. Survivors contribute no charges — they idle
// until the replay completes, exactly the confined-recovery story.
Result<std::map<std::string, PartitionedDataset>> Executor::Replay(
    const Plan& plan, const Bindings& bindings, const std::vector<int>& lost,
    runtime::MessageLog* log, ExecStats* stats) const {
  FLINKLESS_RETURN_NOT_OK(plan.Validate());
  if (log == nullptr) {
    return Status::InvalidArgument("Replay needs a message log");
  }
  const int n = options_.num_partitions;
  std::vector<bool> is_lost(n, false);
  for (int p : lost) {
    if (p >= 0 && p < n) is_lost[p] = true;
  }

  runtime::TraceSpan span(options_.tracer, runtime::SpanKind::kMessageLogReplay,
                          "replay");

  // ---- pass 1: backward demand ----
  enum Demand { kNone = 0, kLost = 1, kAll = 2 };
  std::vector<bool> invariant = plan.InvariantNodes(log->volatile_bindings());
  const int num_nodes = static_cast<int>(plan.num_nodes());
  std::vector<Demand> demand(num_nodes, kNone);
  auto raise = [&](NodeId id, Demand d) {
    if (d > demand[id]) demand[id] = d;
  };
  for (const auto& [name, node_id] : plan.outputs()) raise(node_id, kLost);
  // Node ids are topologically ordered (operators only reference earlier
  // nodes), so one backward sweep settles every demand.
  for (int id = num_nodes - 1; id >= 0; --id) {
    if (demand[id] == kNone) continue;
    const PlanNode& node = plan.node(id);
    auto demand_shuffled = [&](NodeId input) {
      if (invariant[input]) raise(input, kAll);
      // Variant input: its post-shuffle bytes are a logged channel.
    };
    switch (node.kind) {
      case OpKind::kSource:
        break;
      case OpKind::kMap:
      case OpKind::kFlatMap:
      case OpKind::kFilter:
      case OpKind::kProject:
        raise(node.inputs[0], demand[id]);
        break;
      case OpKind::kUnion:
        raise(node.inputs[0], demand[id]);
        raise(node.inputs[1], demand[id]);
        break;
      case OpKind::kReduceByKey:
      case OpKind::kGroupReduceByKey:
      case OpKind::kDistinct:
        demand_shuffled(node.inputs[0]);
        break;
      case OpKind::kJoin:
      case OpKind::kCoGroup:
        demand_shuffled(node.inputs[0]);
        demand_shuffled(node.inputs[1]);
        break;
      case OpKind::kCross:
        raise(node.inputs[0], demand[id]);
        raise(node.inputs[1], kAll);
        break;
    }
  }
  // A demanded volatile source would need the failed superstep's *input*
  // state, which the driver has already advanced past. Every plan in
  // src/algos routes volatile data through a shuffle before any output,
  // so this only rejects plans confined-log recovery cannot serve.
  for (int id = 0; id < num_nodes; ++id) {
    const PlanNode& node = plan.node(id);
    if (node.kind == OpKind::kSource && demand[id] != kNone &&
        !invariant[id]) {
      return Status::FailedPrecondition(
          "confined-log replay: plan output depends on volatile source '" +
          node.source_name +
          "' outside any logged shuffle; the plan is not replayable");
    }
  }

  // ---- pass 2: serial forward execution of demanded partitions ----
  ExecStats local_stats;
  std::vector<uint64_t> replayed_per_part(n, 0);
  const bool charging =
      options_.clock != nullptr && options_.costs != nullptr;
  auto charge_recovery = [&](int64_t ns) {
    if (charging && ns > 0) {
      options_.clock->Add(runtime::Charge::kRecovery, ns);
    }
  };
  // Recomputation runs on the demanded partitions' workers in parallel in
  // the simulated cluster: charge the slowest one.
  auto charge_compute_critical = [&](const std::vector<uint64_t>& per_part) {
    uint64_t critical = 0;
    for (uint64_t records : per_part) critical = std::max(critical, records);
    if (charging) {
      charge_recovery(options_.costs->cpu_per_record_ns *
                      static_cast<int64_t>(critical));
    }
  };
  auto parts_of = [&](Demand d) {
    std::vector<int> parts;
    for (int p = 0; p < n; ++p) {
      if (d == kAll || (d == kLost && is_lost[p])) parts.push_back(p);
    }
    return parts;
  };

  struct RSlot {
    PartitionedDataset owned;
    const PartitionedDataset* view = nullptr;
  };
  std::vector<RSlot> slots(plan.num_nodes());
  auto input_of = [&](NodeId id) -> const PartitionedDataset& {
    FLINKLESS_CHECK(slots[id].view != nullptr,
                    "replay read an input that was never demanded");
    return *slots[id].view;
  };
  auto set_owned = [&](NodeId id, PartitionedDataset ds) {
    slots[id].owned = std::move(ds);
    slots[id].view = &slots[id].owned;
  };

  // The shuffled input of a shuffle operator: the logged channel for a
  // variant input (counted as replayed messages; shipping into lost
  // partitions is charged at network rate), or a serial re-shuffle of the
  // recomputed invariant input (the static side re-shipped to the fresh
  // workers — also a recovery charge for records landing in lost
  // partitions). The serial scatter visits sources in order, so partition
  // contents are byte-identical to ShuffleImpl's gather. Returned by
  // value: logged channels live in budget-managed segments, and fetching a
  // later channel may spill an earlier one, so the demanded partitions are
  // copied out while the segment is resident.
  auto shuffled_input = [&](const PlanNode& node, NodeId input,
                            const char* port, const KeyColumns& key)
      -> Result<PartitionedDataset> {
    const std::vector<int> parts = parts_of(demand[node.id]);
    if (!invariant[input]) {
      FLINKLESS_ASSIGN_OR_RETURN(
          const PartitionedDataset* channel,
          log->Channel(MsglogChannel(node.id, port), options_.tracer));
      if (channel->num_partitions() != n) {
        return Status::DataLoss("logged channel '" +
                                MsglogChannel(node.id, port) +
                                "' has the wrong partition count");
      }
      PartitionedDataset out(n);
      uint64_t shipped = 0;
      for (int p : parts) {
        uint64_t records = channel->partition(p).size();
        local_stats.messages_replayed += records;
        replayed_per_part[p] += records;
        if (is_lost[p]) shipped += records;
        out.partition(p) = channel->partition(p);
      }
      if (charging) {
        charge_recovery(options_.costs->network_per_record_ns *
                        static_cast<int64_t>(shipped));
      }
      return out;
    }
    const PartitionedDataset& in = input_of(input);
    PartitionedDataset out(n);
    uint64_t shipped = 0;
    for (int p = 0; p < in.num_partitions(); ++p) {
      for (const Record& r : in.partition(p)) {
        int target = PartitionedDataset::PartitionOf(r, key, n);
        if (is_lost[target]) ++shipped;
        out.partition(target).push_back(r);
      }
    }
    if (charging) {
      charge_recovery(options_.costs->network_per_record_ns *
                      static_cast<int64_t>(shipped));
    }
    return out;
  };

  for (int id = 0; id < num_nodes; ++id) {
    if (demand[id] == kNone) continue;
    const PlanNode& node = plan.node(id);
    const std::vector<int> parts = parts_of(demand[id]);

    switch (node.kind) {
      case OpKind::kSource: {
        auto it = bindings.find(node.source_name);
        if (it == bindings.end() || it->second == nullptr) {
          return Status::NotFound("replay: no binding for source '" +
                                  node.source_name + "'");
        }
        if (it->second->num_partitions() != n) {
          return Status::InvalidArgument(
              "replay binding '" + node.source_name + "' has " +
              std::to_string(it->second->num_partitions()) +
              " partitions, executor expects " + std::to_string(n));
        }
        slots[id].view = it->second;
        break;
      }

      case OpKind::kMap: {
        const PartitionedDataset& in = input_of(node.inputs[0]);
        PartitionedDataset out(n);
        std::vector<uint64_t> work(n, 0);
        for (int p : parts) {
          out.partition(p).reserve(in.partition(p).size());
          for (const Record& r : in.partition(p)) {
            out.partition(p).push_back(node.map_fn(r));
          }
          work[p] = in.partition(p).size();
          local_stats.records_processed += in.partition(p).size();
        }
        charge_compute_critical(work);
        set_owned(id, std::move(out));
        break;
      }

      case OpKind::kFlatMap: {
        const PartitionedDataset& in = input_of(node.inputs[0]);
        PartitionedDataset out(n);
        std::vector<uint64_t> work(n, 0);
        for (int p : parts) {
          for (const Record& r : in.partition(p)) {
            node.flat_map_fn(r, &out.partition(p));
          }
          work[p] = in.partition(p).size();
          local_stats.records_processed += in.partition(p).size();
        }
        charge_compute_critical(work);
        set_owned(id, std::move(out));
        break;
      }

      case OpKind::kFilter: {
        const PartitionedDataset& in = input_of(node.inputs[0]);
        PartitionedDataset out(n);
        std::vector<uint64_t> work(n, 0);
        for (int p : parts) {
          for (const Record& r : in.partition(p)) {
            if (node.filter_fn(r)) out.partition(p).push_back(r);
          }
          work[p] = in.partition(p).size();
          local_stats.records_processed += in.partition(p).size();
        }
        charge_compute_critical(work);
        set_owned(id, std::move(out));
        break;
      }

      case OpKind::kProject: {
        const PartitionedDataset& in = input_of(node.inputs[0]);
        PartitionedDataset out(n);
        std::vector<uint64_t> work(n, 0);
        for (int p : parts) {
          for (const Record& r : in.partition(p)) {
            Record projected;
            projected.reserve(node.project_columns.size());
            for (int col : node.project_columns) {
              if (col < 0 || static_cast<size_t>(col) >= r.size()) {
                return Status::OutOfRange(
                    "Project '" + node.name + "': column " +
                    std::to_string(col) + " out of range for record " +
                    RecordToString(r));
              }
              projected.push_back(r[col]);
            }
            out.partition(p).push_back(std::move(projected));
          }
          work[p] = in.partition(p).size();
          local_stats.records_processed += in.partition(p).size();
        }
        charge_compute_critical(work);
        set_owned(id, std::move(out));
        break;
      }

      case OpKind::kUnion: {
        const PartitionedDataset& a = input_of(node.inputs[0]);
        const PartitionedDataset& b = input_of(node.inputs[1]);
        PartitionedDataset out(n);
        std::vector<uint64_t> work(n, 0);
        for (int p : parts) {
          out.partition(p).reserve(a.partition(p).size() +
                                   b.partition(p).size());
          out.partition(p).insert(out.partition(p).end(),
                                  a.partition(p).begin(),
                                  a.partition(p).end());
          out.partition(p).insert(out.partition(p).end(),
                                  b.partition(p).begin(),
                                  b.partition(p).end());
          work[p] = a.partition(p).size() + b.partition(p).size();
          local_stats.records_processed += work[p];
        }
        charge_compute_critical(work);
        set_owned(id, std::move(out));
        break;
      }

      case OpKind::kReduceByKey: {
        PartitionedDataset shuffled;
        if (invariant[node.inputs[0]] && node.pre_combine) {
          // Recompute path must mirror Execute exactly: local
          // pre-aggregation, then the shuffle. (Never taken by a logged
          // channel — those are post-combine bytes already.)
          const PartitionedDataset& in = input_of(node.inputs[0]);
          PartitionedDataset combined(in.num_partitions());
          for (int p = 0; p < in.num_partitions(); ++p) {
            std::unordered_map<Record, Record, RecordHash> acc;
            acc.reserve(in.partition(p).size());
            for (const Record& r : in.partition(p)) {
              Record k = ExtractKey(r, node.left_key);
              auto [it, inserted] = acc.try_emplace(std::move(k), r);
              if (!inserted) it->second = node.combine_fn(it->second, r);
            }
            std::vector<const Record*> keys;
            keys.reserve(acc.size());
            for (const auto& [k, v] : acc) keys.push_back(&k);
            std::sort(keys.begin(), keys.end(),
                      [](const Record* a, const Record* b) {
                        return RecordLess(*a, *b);
                      });
            combined.partition(p).reserve(keys.size());
            for (const Record* k : keys) {
              combined.partition(p).push_back(std::move(acc.at(*k)));
            }
            local_stats.records_processed += in.partition(p).size();
          }
          PartitionedDataset scattered(n);
          uint64_t shipped = 0;
          for (int p = 0; p < combined.num_partitions(); ++p) {
            for (Record& r : combined.partition(p)) {
              int target =
                  PartitionedDataset::PartitionOf(r, node.left_key, n);
              if (is_lost[target]) ++shipped;
              scattered.partition(target).push_back(std::move(r));
            }
          }
          if (charging) {
            charge_recovery(options_.costs->network_per_record_ns *
                            static_cast<int64_t>(shipped));
          }
          shuffled = std::move(scattered);
        } else {
          FLINKLESS_ASSIGN_OR_RETURN(
              shuffled,
              shuffled_input(node, node.inputs[0], "in", node.left_key));
        }
        PartitionedDataset out(n);
        std::vector<uint64_t> work(n, 0);
        for (int p : parts) {
          std::unordered_map<Record, Record, RecordHash> acc;
          acc.reserve(shuffled.partition(p).size());
          for (const Record& r : shuffled.partition(p)) {
            Record k = ExtractKey(r, node.left_key);
            auto [it, inserted] = acc.try_emplace(std::move(k), r);
            if (!inserted) {
              Record folded = node.combine_fn(it->second, r);
              if (!KeysEqual(folded, node.left_key, r, node.left_key)) {
                return Status::Internal("ReduceByKey '" + node.name +
                                        "': combiner changed the key (got " +
                                        RecordToString(folded) + ")");
              }
              it->second = std::move(folded);
            }
          }
          std::vector<const Record*> keys;
          keys.reserve(acc.size());
          for (const auto& [k, v] : acc) keys.push_back(&k);
          std::sort(keys.begin(), keys.end(),
                    [](const Record* a, const Record* b) {
                      return RecordLess(*a, *b);
                    });
          out.partition(p).reserve(keys.size());
          for (const Record* k : keys) {
            out.partition(p).push_back(std::move(acc.at(*k)));
          }
          work[p] = shuffled.partition(p).size();
          local_stats.records_processed += shuffled.partition(p).size();
        }
        charge_compute_critical(work);
        set_owned(id, std::move(out));
        break;
      }

      case OpKind::kGroupReduceByKey: {
        FLINKLESS_ASSIGN_OR_RETURN(
            PartitionedDataset shuffled,
            shuffled_input(node, node.inputs[0], "in", node.left_key));
        PartitionedDataset out(n);
        std::vector<uint64_t> work(n, 0);
        for (int p : parts) {
          GroupMap groups = GroupByKey(shuffled.partition(p), node.left_key);
          std::vector<const Record*> keys = SortedKeys(groups);
          out.partition(p).reserve(keys.size());
          for (const Record* key : keys) {
            out.partition(p).push_back(
                node.group_reduce_fn(*key, groups.at(*key)));
          }
          work[p] = shuffled.partition(p).size();
          local_stats.records_processed += shuffled.partition(p).size();
        }
        charge_compute_critical(work);
        set_owned(id, std::move(out));
        break;
      }

      case OpKind::kJoin: {
        FLINKLESS_ASSIGN_OR_RETURN(
            PartitionedDataset left,
            shuffled_input(node, node.inputs[0], "l", node.left_key));
        FLINKLESS_ASSIGN_OR_RETURN(
            PartitionedDataset right,
            shuffled_input(node, node.inputs[1], "r", node.right_key));
        PartitionedDataset out(n);
        std::vector<uint64_t> work(n, 0);
        for (int p : parts) {
          GroupMap build = GroupByKey(left.partition(p), node.left_key);
          for (const Record& r : right.partition(p)) {
            auto it = build.find(ExtractKey(r, node.right_key));
            if (it == build.end()) continue;
            for (const Record& l : it->second) {
              out.partition(p).push_back(node.join_fn(l, r));
            }
          }
          work[p] = left.partition(p).size() + right.partition(p).size();
          local_stats.records_processed += work[p];
        }
        charge_compute_critical(work);
        set_owned(id, std::move(out));
        break;
      }

      case OpKind::kCoGroup: {
        FLINKLESS_ASSIGN_OR_RETURN(
            PartitionedDataset left,
            shuffled_input(node, node.inputs[0], "l", node.left_key));
        FLINKLESS_ASSIGN_OR_RETURN(
            PartitionedDataset right,
            shuffled_input(node, node.inputs[1], "r", node.right_key));
        PartitionedDataset out(n);
        std::vector<uint64_t> work(n, 0);
        for (int p : parts) {
          GroupMap lgroups = GroupByKey(left.partition(p), node.left_key);
          GroupMap rgroups = GroupByKey(right.partition(p), node.right_key);
          std::vector<const Record*> keys;
          keys.reserve(lgroups.size() + rgroups.size());
          for (const auto& [k, g] : lgroups) keys.push_back(&k);
          for (const auto& [k, g] : rgroups) {
            if (lgroups.find(k) == lgroups.end()) keys.push_back(&k);
          }
          std::sort(keys.begin(), keys.end(),
                    [](const Record* a, const Record* b) {
                      return RecordLess(*a, *b);
                    });
          for (const Record* key : keys) {
            auto lit = lgroups.find(*key);
            auto rit = rgroups.find(*key);
            node.cogroup_fn(
                *key, lit != lgroups.end() ? lit->second : kEmptyGroup,
                rit != rgroups.end() ? rit->second : kEmptyGroup,
                &out.partition(p));
          }
          work[p] = left.partition(p).size() + right.partition(p).size();
          local_stats.records_processed += work[p];
        }
        charge_compute_critical(work);
        set_owned(id, std::move(out));
        break;
      }

      case OpKind::kCross: {
        const PartitionedDataset& left = input_of(node.inputs[0]);
        const PartitionedDataset& right = input_of(node.inputs[1]);
        std::vector<Record> right_all = right.Collect();
        // Execute broadcast the right side everywhere; recovery only
        // re-ships it to the partitions being rebuilt.
        uint64_t lost_targets = 0;
        for (int p : parts) {
          if (is_lost[p]) ++lost_targets;
        }
        if (charging) {
          charge_recovery(options_.costs->network_per_record_ns *
                          static_cast<int64_t>(right_all.size() *
                                               lost_targets));
        }
        PartitionedDataset out(n);
        std::vector<uint64_t> work(n, 0);
        for (int p : parts) {
          out.partition(p).reserve(left.partition(p).size() *
                                   right_all.size());
          for (const Record& l : left.partition(p)) {
            for (const Record& r : right_all) {
              out.partition(p).push_back(node.join_fn(l, r));
            }
          }
          work[p] = left.partition(p).size() * right_all.size();
          local_stats.records_processed +=
              left.partition(p).size() + right_all.size();
        }
        charge_compute_critical(work);
        set_owned(id, std::move(out));
        break;
      }

      case OpKind::kDistinct: {
        FLINKLESS_ASSIGN_OR_RETURN(
            PartitionedDataset shuffled,
            shuffled_input(node, node.inputs[0], "in", node.left_key));
        PartitionedDataset out(n);
        std::vector<uint64_t> work(n, 0);
        for (int p : parts) {
          std::unordered_set<Record, RecordHash> seen;
          seen.reserve(shuffled.partition(p).size());
          for (const Record& r : shuffled.partition(p)) {
            if (seen.insert(r).second) out.partition(p).push_back(r);
          }
          work[p] = shuffled.partition(p).size();
          local_stats.records_processed += shuffled.partition(p).size();
        }
        charge_compute_critical(work);
        set_owned(id, std::move(out));
        break;
      }
    }
  }

  std::map<std::string, PartitionedDataset> outputs;
  for (const auto& [name, node_id] : plan.outputs()) {
    outputs.emplace(name, *slots[node_id].view);
  }

  if (options_.metrics != nullptr) {
    for (int p = 0; p < n; ++p) {
      if (replayed_per_part[p] > 0) {
        options_.metrics->Count(runtime::metric::kMsglogMessagesReplayed, p,
                                replayed_per_part[p]);
      }
    }
  }
  if (span.active()) {
    span.AddArg("partitions_lost", static_cast<int64_t>(lost.size()));
    span.AddArg("messages_replayed",
                static_cast<int64_t>(local_stats.messages_replayed));
    span.AddArg("records_recomputed",
                static_cast<int64_t>(local_stats.records_processed));
  }
  if (stats != nullptr) stats->MergeFrom(local_stats);
  return outputs;
}

}  // namespace flinkless::dataflow
