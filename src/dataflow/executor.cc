#include "dataflow/executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace flinkless::dataflow {

namespace {

// Hash-based grouping: O(1) inserts instead of the ordered std::map the
// executor used to pay O(log k) per record for. Operators that need a
// deterministic key order (group-reduce emission, cogroup's merged key
// sweep) sort the key set once afterwards.
using GroupMap =
    std::unordered_map<Record, std::vector<Record>, RecordHash>;

GroupMap GroupByKey(const std::vector<Record>& records,
                    const KeyColumns& key) {
  GroupMap groups;
  groups.reserve(records.size());
  for (const Record& r : records) {
    groups[ExtractKey(r, key)].push_back(r);
  }
  return groups;
}

/// The group keys in RecordLess order — the deterministic emission order
/// key-sorted operators contract to (identical to the old std::map sweep).
std::vector<const Record*> SortedKeys(const GroupMap& groups) {
  std::vector<const Record*> keys;
  keys.reserve(groups.size());
  for (const auto& [k, group] : groups) keys.push_back(&k);
  std::sort(keys.begin(), keys.end(),
            [](const Record* a, const Record* b) { return RecordLess(*a, *b); });
  return keys;
}

uint64_t MaxPartitionSize(const PartitionedDataset& ds) {
  uint64_t m = 0;
  for (int p = 0; p < ds.num_partitions(); ++p) {
    m = std::max(m, static_cast<uint64_t>(ds.partition(p).size()));
  }
  return m;
}

}  // namespace

void ExecStats::MergeFrom(const ExecStats& other) {
  records_processed += other.records_processed;
  messages_shuffled += other.messages_shuffled;
  for (const auto& [name, count] : other.node_output_counts) {
    node_output_counts[name] += count;
  }
}

Executor::Executor(ExecOptions options) : options_(options) {
  FLINKLESS_CHECK(options_.num_partitions > 0,
                  "executor needs at least one partition");
  int threads = runtime::ThreadPool::ResolveThreadCount(options_.num_threads);
  if (threads > 1) {
    pool_ = std::make_unique<runtime::ThreadPool>(threads);
  }
}

void Executor::ForEachPartition(int count,
                                const std::function<void(int)>& fn) const {
  runtime::ParallelFor(pool_.get(), count, fn);
}

void Executor::ForEachPartition(const runtime::TraceSpan& parent,
                                const PartitionedDataset* in, int count,
                                const std::function<void(int)>& fn) const {
  std::function<int64_t(int)> records_of;
  if (parent.active() && in != nullptr) {
    records_of = [in](int p) {
      return static_cast<int64_t>(in->partition(p).size());
    };
  }
  runtime::TracedParallelFor(pool_.get(), parent, count, fn, records_of);
}

void Executor::ChargeCompute(
    const std::vector<uint64_t>& per_partition) const {
  if (options_.clock == nullptr || options_.costs == nullptr) return;
  uint64_t critical = 0;
  for (uint64_t records : per_partition) critical = std::max(critical, records);
  options_.clock->Add(runtime::Charge::kCompute,
                      options_.costs->cpu_per_record_ns *
                          static_cast<int64_t>(critical));
}

void Executor::ChargeCompute(const PartitionedDataset& a,
                             const PartitionedDataset* b) const {
  if (options_.clock == nullptr || options_.costs == nullptr) return;
  uint64_t critical = 0;
  for (int p = 0; p < a.num_partitions(); ++p) {
    uint64_t records = a.partition(p).size();
    if (b != nullptr && p < b->num_partitions()) {
      records += b->partition(p).size();
    }
    critical = std::max(critical, records);
  }
  options_.clock->Add(runtime::Charge::kCompute,
                      options_.costs->cpu_per_record_ns *
                          static_cast<int64_t>(critical));
}

void Executor::ChargeNetwork(uint64_t messages) const {
  if (options_.clock == nullptr || options_.costs == nullptr) return;
  options_.clock->Add(runtime::Charge::kNetwork,
                      options_.costs->network_per_record_ns *
                          static_cast<int64_t>(messages));
}

template <typename Input>
PartitionedDataset Executor::ShuffleImpl(Input&& input, const KeyColumns& key,
                                         ExecStats* stats) const {
  constexpr bool kMove = !std::is_lvalue_reference_v<Input>;
  const int n = options_.num_partitions;
  const int sources = input.num_partitions();

  // Phase 1 — scatter: each source partition splits its records into an
  // N-way outbox, independently of every other source partition.
  std::vector<std::vector<std::vector<Record>>> outbox(sources);
  std::vector<uint64_t> moved(sources, 0);
  runtime::TraceSpan scatter_span(options_.tracer,
                                  runtime::SpanKind::kShuffleScatter,
                                  "scatter");
  ForEachPartition(scatter_span, &input, sources, [&](int p) {
    auto& boxes = outbox[p];
    boxes.resize(n);
    if constexpr (kMove) {
      for (Record& r : input.partition(p)) {
        int target = PartitionedDataset::PartitionOf(r, key, n);
        if (target != p) ++moved[p];
        boxes[target].push_back(std::move(r));
      }
    } else {
      for (const Record& r : input.partition(p)) {
        int target = PartitionedDataset::PartitionOf(r, key, n);
        if (target != p) ++moved[p];
        boxes[target].push_back(r);
      }
    }
  });

  uint64_t total_moved = 0;
  for (uint64_t m : moved) total_moved += m;
  if (scatter_span.active()) {
    scatter_span.AddArg("messages", static_cast<int64_t>(total_moved));
    for (int p = 0; p < sources; ++p) {
      scatter_span.AddArg("moved_p" + std::to_string(p),
                          static_cast<int64_t>(moved[p]));
    }
  }
  scatter_span.Close();

  // Phase 2 — gather: each target partition reserves its exact final size
  // and concatenates its outboxes in source order, which reproduces the
  // serial single-pass arrival order byte for byte.
  PartitionedDataset out(n);
  {
    runtime::TraceSpan gather_span(options_.tracer,
                                   runtime::SpanKind::kShuffleGather,
                                   "gather");
    ForEachPartition(gather_span, nullptr, n, [&](int t) {
      size_t total = 0;
      for (int p = 0; p < sources; ++p) total += outbox[p][t].size();
      std::vector<Record>& dst = out.partition(t);
      dst.reserve(total);
      for (int p = 0; p < sources; ++p) {
        for (Record& r : outbox[p][t]) dst.push_back(std::move(r));
      }
    });
    if (gather_span.active()) {
      gather_span.AddArg("records", static_cast<int64_t>(out.NumRecords()));
    }
  }

  ChargeCompute(input);
  ChargeNetwork(total_moved);
  if (stats != nullptr) stats->messages_shuffled += total_moved;
  return out;
}

PartitionedDataset Executor::Shuffle(const PartitionedDataset& input,
                                     const KeyColumns& key,
                                     ExecStats* stats) const {
  return ShuffleImpl(input, key, stats);
}

PartitionedDataset Executor::Shuffle(PartitionedDataset&& input,
                                     const KeyColumns& key,
                                     ExecStats* stats) const {
  return ShuffleImpl(std::move(input), key, stats);
}

Result<std::map<std::string, PartitionedDataset>> Executor::Execute(
    const Plan& plan, const Bindings& bindings, ExecStats* stats) const {
  FLINKLESS_RETURN_NOT_OK(plan.Validate());
  const int n = options_.num_partitions;

  ExecStats local_stats;
  std::vector<PartitionedDataset> results;
  results.reserve(plan.num_nodes());

  auto count_output = [&](const PlanNode& node,
                          const PartitionedDataset& ds) {
    local_stats.node_output_counts[node.name] += ds.NumRecords();
  };

  // Per-partition failure slots for operators that can fail mid-record;
  // checked in partition order after the parallel section so the reported
  // error is the same one serial execution would hit first.
  std::vector<Status> part_status(n);
  auto reset_status = [&] {
    for (Status& s : part_status) s = Status::OK();
  };
  auto first_error = [&]() -> Status {
    for (const Status& s : part_status) {
      if (!s.ok()) return s;
    }
    return Status::OK();
  };

  for (const PlanNode& node : plan.nodes()) {
    // One span per operator; per-partition child spans are recorded by the
    // traced ForEachPartition overload below. Input/output record counts
    // land as args when the span closes at the end of this loop body.
    uint64_t span_records_in = 0;
    if (options_.tracer != nullptr) {
      for (int idx : node.inputs) {
        span_records_in += results[idx].NumRecords();
      }
    }
    runtime::TraceSpan op_span(options_.tracer, runtime::SpanKind::kOperator,
                               node.name);
    switch (node.kind) {
      case OpKind::kSource: {
        auto it = bindings.find(node.source_name);
        if (it == bindings.end() || it->second == nullptr) {
          return Status::NotFound("no binding for source '" +
                                  node.source_name + "'");
        }
        if (it->second->num_partitions() != n) {
          return Status::InvalidArgument(
              "binding '" + node.source_name + "' has " +
              std::to_string(it->second->num_partitions()) +
              " partitions, executor expects " + std::to_string(n));
        }
        results.push_back(*it->second);
        break;
      }

      case OpKind::kMap: {
        const PartitionedDataset& in = results[node.inputs[0]];
        PartitionedDataset out(n);
        ForEachPartition(op_span, &in, n, [&](int p) {
          out.partition(p).reserve(in.partition(p).size());
          for (const Record& r : in.partition(p)) {
            out.partition(p).push_back(node.map_fn(r));
          }
        });
        local_stats.records_processed += in.NumRecords();
        ChargeCompute(in);
        results.push_back(std::move(out));
        break;
      }

      case OpKind::kFlatMap: {
        const PartitionedDataset& in = results[node.inputs[0]];
        PartitionedDataset out(n);
        ForEachPartition(op_span, &in, n, [&](int p) {
          for (const Record& r : in.partition(p)) {
            node.flat_map_fn(r, &out.partition(p));
          }
        });
        local_stats.records_processed += in.NumRecords();
        ChargeCompute(in);
        results.push_back(std::move(out));
        break;
      }

      case OpKind::kFilter: {
        const PartitionedDataset& in = results[node.inputs[0]];
        PartitionedDataset out(n);
        ForEachPartition(op_span, &in, n, [&](int p) {
          for (const Record& r : in.partition(p)) {
            if (node.filter_fn(r)) out.partition(p).push_back(r);
          }
        });
        local_stats.records_processed += in.NumRecords();
        ChargeCompute(in);
        results.push_back(std::move(out));
        break;
      }

      case OpKind::kProject: {
        const PartitionedDataset& in = results[node.inputs[0]];
        PartitionedDataset out(n);
        reset_status();
        ForEachPartition(op_span, &in, n, [&](int p) {
          for (const Record& r : in.partition(p)) {
            Record projected;
            projected.reserve(node.project_columns.size());
            for (int col : node.project_columns) {
              if (col < 0 || static_cast<size_t>(col) >= r.size()) {
                part_status[p] = Status::OutOfRange(
                    "Project '" + node.name + "': column " +
                    std::to_string(col) + " out of range for record " +
                    RecordToString(r));
                return;
              }
              projected.push_back(r[col]);
            }
            out.partition(p).push_back(std::move(projected));
          }
        });
        FLINKLESS_RETURN_NOT_OK(first_error());
        local_stats.records_processed += in.NumRecords();
        ChargeCompute(in);
        results.push_back(std::move(out));
        break;
      }

      case OpKind::kReduceByKey: {
        const PartitionedDataset* in = &results[node.inputs[0]];
        PartitionedDataset combined;
        if (node.pre_combine) {
          // Local pre-aggregation before the shuffle: fewer messages.
          combined = PartitionedDataset(in->num_partitions());
          ForEachPartition(op_span, in, in->num_partitions(), [&](int p) {
            std::unordered_map<Record, Record, RecordHash> acc;
            acc.reserve(in->partition(p).size());
            for (const Record& r : in->partition(p)) {
              Record k = ExtractKey(r, node.left_key);
              auto [it, inserted] = acc.try_emplace(std::move(k), r);
              if (!inserted) it->second = node.combine_fn(it->second, r);
            }
            std::vector<const Record*> keys;
            keys.reserve(acc.size());
            for (const auto& [k, v] : acc) keys.push_back(&k);
            std::sort(keys.begin(), keys.end(),
                      [](const Record* a, const Record* b) {
                        return RecordLess(*a, *b);
                      });
            combined.partition(p).reserve(keys.size());
            for (const Record* k : keys) {
              combined.partition(p).push_back(std::move(acc.at(*k)));
            }
          });
          local_stats.records_processed += in->NumRecords();
          ChargeCompute(*in);
          in = &combined;
        }
        PartitionedDataset shuffled =
            in == &combined
                ? Shuffle(std::move(combined), node.left_key, &local_stats)
                : Shuffle(*in, node.left_key, &local_stats);
        PartitionedDataset out(n);
        reset_status();
        ForEachPartition(op_span, &shuffled, n, [&](int p) {
          std::unordered_map<Record, Record, RecordHash> acc;
          acc.reserve(shuffled.partition(p).size());
          for (const Record& r : shuffled.partition(p)) {
            Record k = ExtractKey(r, node.left_key);
            auto [it, inserted] = acc.try_emplace(std::move(k), r);
            if (!inserted) {
              Record folded = node.combine_fn(it->second, r);
              if (!KeysEqual(folded, node.left_key, r, node.left_key)) {
                part_status[p] = Status::Internal(
                    "ReduceByKey '" + node.name +
                    "': combiner changed the key (got " +
                    RecordToString(folded) + ")");
                return;
              }
              it->second = std::move(folded);
            }
          }
          std::vector<const Record*> keys;
          keys.reserve(acc.size());
          for (const auto& [k, v] : acc) keys.push_back(&k);
          std::sort(keys.begin(), keys.end(),
                    [](const Record* a, const Record* b) {
                      return RecordLess(*a, *b);
                    });
          out.partition(p).reserve(keys.size());
          for (const Record* k : keys) {
            out.partition(p).push_back(std::move(acc.at(*k)));
          }
        });
        FLINKLESS_RETURN_NOT_OK(first_error());
        local_stats.records_processed += shuffled.NumRecords();
        ChargeCompute(shuffled);
        results.push_back(std::move(out));
        break;
      }

      case OpKind::kGroupReduceByKey: {
        const PartitionedDataset& in = results[node.inputs[0]];
        PartitionedDataset shuffled = Shuffle(in, node.left_key, &local_stats);
        PartitionedDataset out(n);
        ForEachPartition(op_span, &shuffled, n, [&](int p) {
          GroupMap groups = GroupByKey(shuffled.partition(p), node.left_key);
          std::vector<const Record*> keys = SortedKeys(groups);
          out.partition(p).reserve(keys.size());
          for (const Record* key : keys) {
            out.partition(p).push_back(
                node.group_reduce_fn(*key, groups.at(*key)));
          }
        });
        local_stats.records_processed += shuffled.NumRecords();
        ChargeCompute(shuffled);
        results.push_back(std::move(out));
        break;
      }

      case OpKind::kJoin: {
        PartitionedDataset left =
            Shuffle(results[node.inputs[0]], node.left_key, &local_stats);
        PartitionedDataset right =
            Shuffle(results[node.inputs[1]], node.right_key, &local_stats);
        PartitionedDataset out(n);
        ForEachPartition(op_span, &left, n, [&](int p) {
          GroupMap build = GroupByKey(left.partition(p), node.left_key);
          for (const Record& r : right.partition(p)) {
            auto it = build.find(ExtractKey(r, node.right_key));
            if (it == build.end()) continue;
            for (const Record& l : it->second) {
              out.partition(p).push_back(node.join_fn(l, r));
            }
          }
        });
        local_stats.records_processed +=
            left.NumRecords() + right.NumRecords();
        ChargeCompute(left, &right);
        results.push_back(std::move(out));
        break;
      }

      case OpKind::kCoGroup: {
        PartitionedDataset left =
            Shuffle(results[node.inputs[0]], node.left_key, &local_stats);
        PartitionedDataset right =
            Shuffle(results[node.inputs[1]], node.right_key, &local_stats);
        PartitionedDataset out(n);
        static const std::vector<Record> kEmptyGroup;
        ForEachPartition(op_span, &left, n, [&](int p) {
          GroupMap lgroups = GroupByKey(left.partition(p), node.left_key);
          GroupMap rgroups = GroupByKey(right.partition(p), node.right_key);
          // Sweep the union of both key sets in RecordLess order, exactly
          // like the old sorted-map merge.
          std::vector<const Record*> keys;
          keys.reserve(lgroups.size() + rgroups.size());
          for (const auto& [k, g] : lgroups) keys.push_back(&k);
          for (const auto& [k, g] : rgroups) {
            if (lgroups.find(k) == lgroups.end()) keys.push_back(&k);
          }
          std::sort(keys.begin(), keys.end(),
                    [](const Record* a, const Record* b) {
                      return RecordLess(*a, *b);
                    });
          for (const Record* key : keys) {
            auto lit = lgroups.find(*key);
            auto rit = rgroups.find(*key);
            node.cogroup_fn(*key,
                            lit != lgroups.end() ? lit->second : kEmptyGroup,
                            rit != rgroups.end() ? rit->second : kEmptyGroup,
                            &out.partition(p));
          }
        });
        local_stats.records_processed +=
            left.NumRecords() + right.NumRecords();
        ChargeCompute(left, &right);
        results.push_back(std::move(out));
        break;
      }

      case OpKind::kCross: {
        const PartitionedDataset& left = results[node.inputs[0]];
        const PartitionedDataset& right = results[node.inputs[1]];
        // Broadcast the right side: every record is replicated to every
        // partition but its own (counted as messages).
        std::vector<Record> right_all = right.Collect();
        uint64_t broadcast_messages =
            right.NumRecords() * static_cast<uint64_t>(n > 0 ? n - 1 : 0);
        local_stats.messages_shuffled += broadcast_messages;
        ChargeNetwork(broadcast_messages);
        PartitionedDataset out(n);
        ForEachPartition(op_span, &left, n, [&](int p) {
          out.partition(p).reserve(left.partition(p).size() *
                                   right_all.size());
          for (const Record& l : left.partition(p)) {
            for (const Record& r : right_all) {
              out.partition(p).push_back(node.join_fn(l, r));
            }
          }
        });
        local_stats.records_processed +=
            left.NumRecords() + right.NumRecords();
        // Partition p pays for its own left records against the whole
        // broadcast right side; the critical path is the largest partition.
        ChargeCompute(std::vector<uint64_t>{MaxPartitionSize(left) *
                                            right_all.size()});
        results.push_back(std::move(out));
        break;
      }

      case OpKind::kUnion: {
        const PartitionedDataset& a = results[node.inputs[0]];
        const PartitionedDataset& b = results[node.inputs[1]];
        PartitionedDataset out(n);
        ForEachPartition(op_span, &a, n, [&](int p) {
          out.partition(p).reserve(a.partition(p).size() +
                                   b.partition(p).size());
          out.partition(p).insert(out.partition(p).end(),
                                  a.partition(p).begin(),
                                  a.partition(p).end());
          out.partition(p).insert(out.partition(p).end(),
                                  b.partition(p).begin(),
                                  b.partition(p).end());
        });
        local_stats.records_processed += a.NumRecords() + b.NumRecords();
        ChargeCompute(a, &b);
        results.push_back(std::move(out));
        break;
      }

      case OpKind::kDistinct: {
        PartitionedDataset shuffled =
            Shuffle(results[node.inputs[0]], node.left_key, &local_stats);
        PartitionedDataset out(n);
        ForEachPartition(op_span, &shuffled, n, [&](int p) {
          std::unordered_set<Record, RecordHash> seen;
          seen.reserve(shuffled.partition(p).size());
          for (const Record& r : shuffled.partition(p)) {
            if (seen.insert(r).second) out.partition(p).push_back(r);
          }
        });
        local_stats.records_processed += shuffled.NumRecords();
        ChargeCompute(shuffled);
        results.push_back(std::move(out));
        break;
      }
    }
    count_output(node, results.back());
    if (op_span.active()) {
      const PartitionedDataset& produced = results.back();
      op_span.AddArg("records_in", static_cast<int64_t>(span_records_in));
      op_span.AddArg("records_out",
                     static_cast<int64_t>(produced.NumRecords()));
      for (int p = 0; p < produced.num_partitions(); ++p) {
        op_span.AddArg("out_p" + std::to_string(p),
                       static_cast<int64_t>(produced.partition(p).size()));
      }
    }
  }

  std::map<std::string, PartitionedDataset> outputs;
  for (const auto& [name, node] : plan.outputs()) {
    outputs.emplace(name, results[node]);
  }
  if (stats != nullptr) stats->MergeFrom(local_stats);
  return outputs;
}

}  // namespace flinkless::dataflow
