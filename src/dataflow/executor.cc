#include "dataflow/executor.h"

#include <map>
#include <set>
#include <vector>

#include "common/logging.h"

namespace flinkless::dataflow {

namespace {

using GroupMap = std::map<Record, std::vector<Record>, RecordOrder>;

GroupMap GroupByKey(const std::vector<Record>& records,
                    const KeyColumns& key) {
  GroupMap groups;
  for (const Record& r : records) {
    groups[ExtractKey(r, key)].push_back(r);
  }
  return groups;
}

}  // namespace

void ExecStats::MergeFrom(const ExecStats& other) {
  records_processed += other.records_processed;
  messages_shuffled += other.messages_shuffled;
  for (const auto& [name, count] : other.node_output_counts) {
    node_output_counts[name] += count;
  }
}

Executor::Executor(ExecOptions options) : options_(options) {
  FLINKLESS_CHECK(options_.num_partitions > 0,
                  "executor needs at least one partition");
}

void Executor::ChargeCompute(uint64_t records) const {
  if (options_.clock != nullptr && options_.costs != nullptr) {
    options_.clock->Add(runtime::Charge::kCompute,
                        options_.costs->cpu_per_record_ns *
                            static_cast<int64_t>(records));
  }
}

PartitionedDataset Executor::Shuffle(const PartitionedDataset& input,
                                     const KeyColumns& key,
                                     ExecStats* stats) const {
  const int n = options_.num_partitions;
  PartitionedDataset out(n);
  uint64_t moved = 0;
  for (int p = 0; p < input.num_partitions(); ++p) {
    for (const Record& r : input.partition(p)) {
      int target = PartitionedDataset::PartitionOf(r, key, n);
      if (target != p) ++moved;
      out.partition(target).push_back(r);
    }
  }
  ChargeCompute(input.NumRecords());
  if (options_.clock != nullptr && options_.costs != nullptr) {
    options_.clock->Add(runtime::Charge::kNetwork,
                        options_.costs->network_per_record_ns *
                            static_cast<int64_t>(moved));
  }
  if (stats != nullptr) stats->messages_shuffled += moved;
  return out;
}

Result<std::map<std::string, PartitionedDataset>> Executor::Execute(
    const Plan& plan, const Bindings& bindings, ExecStats* stats) const {
  FLINKLESS_RETURN_NOT_OK(plan.Validate());
  const int n = options_.num_partitions;

  ExecStats local_stats;
  std::vector<PartitionedDataset> results;
  results.reserve(plan.num_nodes());

  auto count_output = [&](const PlanNode& node,
                          const PartitionedDataset& ds) {
    local_stats.node_output_counts[node.name] += ds.NumRecords();
  };

  for (const PlanNode& node : plan.nodes()) {
    switch (node.kind) {
      case OpKind::kSource: {
        auto it = bindings.find(node.source_name);
        if (it == bindings.end() || it->second == nullptr) {
          return Status::NotFound("no binding for source '" +
                                  node.source_name + "'");
        }
        if (it->second->num_partitions() != n) {
          return Status::InvalidArgument(
              "binding '" + node.source_name + "' has " +
              std::to_string(it->second->num_partitions()) +
              " partitions, executor expects " + std::to_string(n));
        }
        results.push_back(*it->second);
        break;
      }

      case OpKind::kMap: {
        const PartitionedDataset& in = results[node.inputs[0]];
        PartitionedDataset out(n);
        for (int p = 0; p < n; ++p) {
          out.partition(p).reserve(in.partition(p).size());
          for (const Record& r : in.partition(p)) {
            out.partition(p).push_back(node.map_fn(r));
          }
        }
        local_stats.records_processed += in.NumRecords();
        ChargeCompute(in.NumRecords());
        results.push_back(std::move(out));
        break;
      }

      case OpKind::kFlatMap: {
        const PartitionedDataset& in = results[node.inputs[0]];
        PartitionedDataset out(n);
        for (int p = 0; p < n; ++p) {
          for (const Record& r : in.partition(p)) {
            node.flat_map_fn(r, &out.partition(p));
          }
        }
        local_stats.records_processed += in.NumRecords();
        ChargeCompute(in.NumRecords());
        results.push_back(std::move(out));
        break;
      }

      case OpKind::kFilter: {
        const PartitionedDataset& in = results[node.inputs[0]];
        PartitionedDataset out(n);
        for (int p = 0; p < n; ++p) {
          for (const Record& r : in.partition(p)) {
            if (node.filter_fn(r)) out.partition(p).push_back(r);
          }
        }
        local_stats.records_processed += in.NumRecords();
        ChargeCompute(in.NumRecords());
        results.push_back(std::move(out));
        break;
      }

      case OpKind::kProject: {
        const PartitionedDataset& in = results[node.inputs[0]];
        PartitionedDataset out(n);
        for (int p = 0; p < n; ++p) {
          for (const Record& r : in.partition(p)) {
            Record projected;
            projected.reserve(node.project_columns.size());
            for (int col : node.project_columns) {
              if (col < 0 || static_cast<size_t>(col) >= r.size()) {
                return Status::OutOfRange(
                    "Project '" + node.name + "': column " +
                    std::to_string(col) + " out of range for record " +
                    RecordToString(r));
              }
              projected.push_back(r[col]);
            }
            out.partition(p).push_back(std::move(projected));
          }
        }
        local_stats.records_processed += in.NumRecords();
        ChargeCompute(in.NumRecords());
        results.push_back(std::move(out));
        break;
      }

      case OpKind::kReduceByKey: {
        const PartitionedDataset* in = &results[node.inputs[0]];
        PartitionedDataset combined;
        if (node.pre_combine) {
          // Local pre-aggregation before the shuffle: fewer messages.
          combined = PartitionedDataset(in->num_partitions());
          for (int p = 0; p < in->num_partitions(); ++p) {
            std::map<Record, Record, RecordOrder> acc;
            for (const Record& r : in->partition(p)) {
              Record k = ExtractKey(r, node.left_key);
              auto [it, inserted] = acc.try_emplace(std::move(k), r);
              if (!inserted) it->second = node.combine_fn(it->second, r);
            }
            for (auto& [k, v] : acc) combined.partition(p).push_back(v);
          }
          local_stats.records_processed += in->NumRecords();
          ChargeCompute(in->NumRecords());
          in = &combined;
        }
        PartitionedDataset shuffled = Shuffle(*in, node.left_key,
                                              &local_stats);
        PartitionedDataset out(n);
        for (int p = 0; p < n; ++p) {
          std::map<Record, Record, RecordOrder> acc;
          for (const Record& r : shuffled.partition(p)) {
            Record k = ExtractKey(r, node.left_key);
            auto [it, inserted] = acc.try_emplace(std::move(k), r);
            if (!inserted) {
              Record folded = node.combine_fn(it->second, r);
              if (!KeysEqual(folded, node.left_key, r, node.left_key)) {
                return Status::Internal(
                    "ReduceByKey '" + node.name +
                    "': combiner changed the key (got " +
                    RecordToString(folded) + ")");
              }
              it->second = std::move(folded);
            }
          }
          for (auto& [k, v] : acc) out.partition(p).push_back(std::move(v));
        }
        local_stats.records_processed += shuffled.NumRecords();
        ChargeCompute(shuffled.NumRecords());
        results.push_back(std::move(out));
        break;
      }

      case OpKind::kGroupReduceByKey: {
        const PartitionedDataset& in = results[node.inputs[0]];
        PartitionedDataset shuffled = Shuffle(in, node.left_key, &local_stats);
        PartitionedDataset out(n);
        for (int p = 0; p < n; ++p) {
          GroupMap groups = GroupByKey(shuffled.partition(p), node.left_key);
          for (const auto& [key, group] : groups) {
            out.partition(p).push_back(node.group_reduce_fn(key, group));
          }
        }
        local_stats.records_processed += shuffled.NumRecords();
        ChargeCompute(shuffled.NumRecords());
        results.push_back(std::move(out));
        break;
      }

      case OpKind::kJoin: {
        PartitionedDataset left =
            Shuffle(results[node.inputs[0]], node.left_key, &local_stats);
        PartitionedDataset right =
            Shuffle(results[node.inputs[1]], node.right_key, &local_stats);
        PartitionedDataset out(n);
        for (int p = 0; p < n; ++p) {
          GroupMap build = GroupByKey(left.partition(p), node.left_key);
          for (const Record& r : right.partition(p)) {
            auto it = build.find(ExtractKey(r, node.right_key));
            if (it == build.end()) continue;
            for (const Record& l : it->second) {
              out.partition(p).push_back(node.join_fn(l, r));
            }
          }
        }
        local_stats.records_processed +=
            left.NumRecords() + right.NumRecords();
        ChargeCompute(left.NumRecords() + right.NumRecords());
        results.push_back(std::move(out));
        break;
      }

      case OpKind::kCoGroup: {
        PartitionedDataset left =
            Shuffle(results[node.inputs[0]], node.left_key, &local_stats);
        PartitionedDataset right =
            Shuffle(results[node.inputs[1]], node.right_key, &local_stats);
        PartitionedDataset out(n);
        static const std::vector<Record> kEmptyGroup;
        for (int p = 0; p < n; ++p) {
          GroupMap lgroups = GroupByKey(left.partition(p), node.left_key);
          GroupMap rgroups = GroupByKey(right.partition(p), node.right_key);
          // Merge the two sorted key sets.
          auto lit = lgroups.begin();
          auto rit = rgroups.begin();
          while (lit != lgroups.end() || rit != rgroups.end()) {
            bool take_left =
                rit == rgroups.end() ||
                (lit != lgroups.end() && RecordLess(lit->first, rit->first));
            bool take_right =
                lit == lgroups.end() ||
                (rit != rgroups.end() && RecordLess(rit->first, lit->first));
            if (take_left) {
              node.cogroup_fn(lit->first, lit->second, kEmptyGroup,
                              &out.partition(p));
              ++lit;
            } else if (take_right) {
              node.cogroup_fn(rit->first, kEmptyGroup, rit->second,
                              &out.partition(p));
              ++rit;
            } else {
              node.cogroup_fn(lit->first, lit->second, rit->second,
                              &out.partition(p));
              ++lit;
              ++rit;
            }
          }
        }
        local_stats.records_processed +=
            left.NumRecords() + right.NumRecords();
        ChargeCompute(left.NumRecords() + right.NumRecords());
        results.push_back(std::move(out));
        break;
      }

      case OpKind::kCross: {
        const PartitionedDataset& left = results[node.inputs[0]];
        const PartitionedDataset& right = results[node.inputs[1]];
        // Broadcast the right side: every record is replicated to every
        // partition but its own (counted as messages).
        std::vector<Record> right_all = right.Collect();
        uint64_t broadcast_messages =
            right.NumRecords() * static_cast<uint64_t>(n > 0 ? n - 1 : 0);
        local_stats.messages_shuffled += broadcast_messages;
        if (options_.clock != nullptr && options_.costs != nullptr) {
          options_.clock->Add(runtime::Charge::kNetwork,
                              options_.costs->network_per_record_ns *
                                  static_cast<int64_t>(broadcast_messages));
        }
        PartitionedDataset out(n);
        for (int p = 0; p < n; ++p) {
          out.partition(p).reserve(left.partition(p).size() *
                                   right_all.size());
          for (const Record& l : left.partition(p)) {
            for (const Record& r : right_all) {
              out.partition(p).push_back(node.join_fn(l, r));
            }
          }
        }
        local_stats.records_processed +=
            left.NumRecords() + right.NumRecords();
        ChargeCompute(left.NumRecords() * right_all.size());
        results.push_back(std::move(out));
        break;
      }

      case OpKind::kUnion: {
        const PartitionedDataset& a = results[node.inputs[0]];
        const PartitionedDataset& b = results[node.inputs[1]];
        PartitionedDataset out(n);
        for (int p = 0; p < n; ++p) {
          out.partition(p).reserve(a.partition(p).size() +
                                   b.partition(p).size());
          out.partition(p).insert(out.partition(p).end(),
                                  a.partition(p).begin(),
                                  a.partition(p).end());
          out.partition(p).insert(out.partition(p).end(),
                                  b.partition(p).begin(),
                                  b.partition(p).end());
        }
        local_stats.records_processed += a.NumRecords() + b.NumRecords();
        ChargeCompute(a.NumRecords() + b.NumRecords());
        results.push_back(std::move(out));
        break;
      }

      case OpKind::kDistinct: {
        PartitionedDataset shuffled =
            Shuffle(results[node.inputs[0]], node.left_key, &local_stats);
        PartitionedDataset out(n);
        for (int p = 0; p < n; ++p) {
          std::set<Record, RecordOrder> seen;
          for (const Record& r : shuffled.partition(p)) {
            if (seen.insert(r).second) out.partition(p).push_back(r);
          }
        }
        local_stats.records_processed += shuffled.NumRecords();
        ChargeCompute(shuffled.NumRecords());
        results.push_back(std::move(out));
        break;
      }
    }
    count_output(node, results.back());
  }

  std::map<std::string, PartitionedDataset> outputs;
  for (const auto& [name, node] : plan.outputs()) {
    outputs.emplace(name, results[node]);
  }
  if (stats != nullptr) stats->MergeFrom(local_stats);
  return outputs;
}

}  // namespace flinkless::dataflow
