// ExecCache: a superstep-persistent operator cache for iterative plans.
//
// Iterative dataflows join a changing working set against static data every
// superstep (PageRank's find-neighbors, CC's label-to-neighbors). Without a
// cache the executor re-shuffles the static side and rebuilds the join
// hash table from scratch each iteration — the exact waste "Spinning Fast
// Iterative Data Flows" (Ewen et al.) identifies loop-invariant caching as
// the cure for. An iteration driver owns one ExecCache per job, declares
// which source bindings it rebinds every superstep, and passes the cache to
// the executor via ExecOptions; the executor fills it with
//  * the materialized outputs of fully loop-invariant nodes (role kOutput),
//  * the shuffled build side + per-partition hash index of joins whose
//    build side is invariant (role kBuild) — index entries reference the
//    cached records instead of copying groups,
//  * the shuffled probe side of joins / the grouped side of cogroups whose
//    other side is invariant (role kProbe).
//
// Lifetime: created before superstep 1, reused across supersteps and across
// recovery. Invalidate(partitions) is called from the failure-injection
// path; since every cached artifact is hash-partitioned, losing any
// partition requires a full re-scatter from all sources, so invalidation
// drops every entry and the next superstep rebuilds (and re-charges) them.
// Entries are valid for one partition count — repartitioning invalidates
// naturally via EnsurePartitionCount.
//
// Threading: the cache is touched only from the executor's orchestration
// thread; per-partition index builds write disjoint vector slots.

#ifndef FLINKLESS_DATAFLOW_EXEC_CACHE_H_
#define FLINKLESS_DATAFLOW_EXEC_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dataflow/dataset.h"
#include "dataflow/record.h"

namespace flinkless::dataflow {

/// Per-partition hash index over a cached (shuffled) join build side:
/// key -> the group's records in arrival order, referencing the cached
/// dataset's records instead of copying them.
using JoinIndex =
    std::unordered_map<Record, std::vector<const Record*>, RecordHash>;

/// Per-partition materialized groups of a cached cogroup side (cogroup UDFs
/// take whole groups by reference, so groups are materialized once).
using CachedGroups =
    std::unordered_map<Record, std::vector<Record>, RecordHash>;

/// Superstep-persistent cache of loop-invariant execution artifacts. Owned
/// by an iteration driver, borrowed by the executor via ExecOptions.
class ExecCache {
 public:
  /// What a cached artifact is for its plan node (part of the cache key).
  enum class Role : int {
    kOutput = 0,  // materialized output of a fully invariant node
    kBuild = 1,   // shuffled build (left) side + hash index / groups
    kProbe = 2,   // shuffled probe (right) side + groups for cogroups
  };

  struct Entry {
    /// The cached dataset (node output or shuffled join side). Consumers
    /// hold the shared_ptr alive while referencing its records.
    std::shared_ptr<const PartitionedDataset> data;
    /// kBuild on kJoin: per-partition index into `data`'s records.
    std::vector<JoinIndex> join_index;
    /// kBuild/kProbe on kCoGroup: per-partition groups of `data`.
    std::vector<CachedGroups> groups;
  };

  /// `volatile_bindings` names the source bindings rebound every superstep;
  /// everything derived from only the other bindings is loop-invariant.
  explicit ExecCache(std::vector<std::string> volatile_bindings)
      : volatile_bindings_(std::move(volatile_bindings)) {}

  const std::vector<std::string>& volatile_bindings() const {
    return volatile_bindings_;
  }

  /// Entries are keyed per partition count: executing with a different
  /// count drops everything (a repartition invalidates every shuffle).
  void EnsurePartitionCount(int num_partitions) {
    if (num_partitions_ != num_partitions) {
      entries_.clear();
      num_partitions_ = num_partitions;
    }
  }

  /// The entry for (node, role), or nullptr when not cached.
  Entry* Find(int node_id, Role role) {
    auto it = entries_.find({node_id, static_cast<int>(role)});
    return it != entries_.end() ? &it->second : nullptr;
  }

  /// Creates (or resets) the entry for (node, role).
  Entry& Emplace(int node_id, Role role) {
    Entry& e = entries_[{node_id, static_cast<int>(role)}];
    e = Entry();
    ++builds_;
    return e;
  }

  /// Failure hook: `partitions` of a worker were lost. Cached artifacts are
  /// hash-partitioned, so rebuilding any one partition needs a full
  /// re-scatter from every source — drop all entries; the next superstep
  /// rebuilds them from the (static) bindings.
  void Invalidate(const std::vector<int>& partitions) {
    if (partitions.empty() || entries_.empty()) return;
    entries_.clear();
    ++invalidations_;
  }

  void Clear() { entries_.clear(); }

  void CountHit() { ++hits_; }

  size_t size() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t builds() const { return builds_; }
  uint64_t invalidations() const { return invalidations_; }

 private:
  std::vector<std::string> volatile_bindings_;
  int num_partitions_ = -1;
  /// (node id, role) -> entry.
  std::map<std::pair<int, int>, Entry> entries_;
  uint64_t hits_ = 0;
  uint64_t builds_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace flinkless::dataflow

#endif  // FLINKLESS_DATAFLOW_EXEC_CACHE_H_
