// ExecCache: a superstep-persistent operator cache for iterative plans.
//
// Iterative dataflows join a changing working set against static data every
// superstep (PageRank's find-neighbors, CC's label-to-neighbors). Without a
// cache the executor re-shuffles the static side and rebuilds the join
// hash table from scratch each iteration — the exact waste "Spinning Fast
// Iterative Data Flows" (Ewen et al.) identifies loop-invariant caching as
// the cure for. An iteration driver owns one ExecCache per job, declares
// which source bindings it rebinds every superstep, and passes the cache to
// the executor via ExecOptions; the executor fills it with
//  * the materialized outputs of fully loop-invariant nodes (role kOutput),
//  * the shuffled build side + per-partition hash index of joins whose
//    build side is invariant (role kBuild) — index entries reference the
//    cached records instead of copying groups,
//  * the shuffled probe side of joins / the grouped side of cogroups whose
//    other side is invariant (role kProbe).
//
// Memory budget (DESIGN.md §11): with a MemoryManager attached, every
// entry is a SpillableSegment keyed "spill/<job>/n<node>.r<role>". When
// residency exceeds the budget the manager spills LRU entries to
// StableStorage (serialized datasets only — join indexes and groups hold
// raw pointers into the cached records, so they are dropped and rebuilt
// from the reloaded bytes on access). Residency is measured in serialized
// bytes so budget decisions are platform-independent and deterministic.
//
// Lifetime: created before superstep 1, reused across supersteps and across
// recovery. Invalidate(partitions) is called from the failure-injection
// path; since every cached artifact is hash-partitioned, losing any
// partition requires a full re-scatter from all sources, so invalidation
// drops every entry — spilled ones included, deleting their blobs so
// recovery re-pays the rebuild instead of reloading stale state. Entries
// are valid for one partition count — repartitioning invalidates naturally
// via EnsurePartitionCount.
//
// Threading: the cache is touched only from the executor's orchestration
// thread; per-partition index builds write disjoint vector slots.

#ifndef FLINKLESS_DATAFLOW_EXEC_CACHE_H_
#define FLINKLESS_DATAFLOW_EXEC_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dataflow/columnar.h"
#include "dataflow/dataset.h"
#include "dataflow/record.h"
#include "runtime/memory_manager.h"
#include "runtime/metrics.h"

namespace flinkless::runtime {
class StableStorage;
class Tracer;
}  // namespace flinkless::runtime

namespace flinkless::dataflow {

/// Per-partition hash index over a cached (shuffled) join build side:
/// key -> the group's records in arrival order, referencing the cached
/// dataset's records instead of copying them.
using JoinIndex =
    std::unordered_map<Record, std::vector<const Record*>, RecordHash>;

/// Per-partition materialized groups of a cached cogroup side (cogroup UDFs
/// take whole groups by reference, so groups are materialized once).
using CachedGroups =
    std::unordered_map<Record, std::vector<Record>, RecordHash>;

/// Superstep-persistent cache of loop-invariant execution artifacts. Owned
/// by an iteration driver, borrowed by the executor via ExecOptions.
class ExecCache {
 public:
  /// What a cached artifact is for its plan node (part of the cache key).
  enum class Role : int {
    kOutput = 0,  // materialized output of a fully invariant node
    kBuild = 1,   // shuffled build (left) side + hash index / groups
    kProbe = 2,   // shuffled probe (right) side + groups for cogroups
  };

  struct Entry {
    /// The cached dataset (node output or shuffled join side). Consumers
    /// hold the shared_ptr alive while referencing its records — a spill
    /// only drops the cache's reference, never a dataset in use.
    std::shared_ptr<const PartitionedDataset> data;
    /// kBuild on kJoin, record path: per-partition index into `data`'s
    /// records.
    std::vector<JoinIndex> join_index;
    /// kBuild on kJoin, batch path (DESIGN.md §12): per-partition flat
    /// open-addressing index over `data`'s records — no per-record Value
    /// hashing or map nodes. Only one of join_index/flat_index is built,
    /// depending on ExecOptions::use_columnar.
    std::vector<FlatKeyIndex> flat_index;
    /// kBuild/kProbe on kCoGroup: per-partition groups of `data`.
    std::vector<CachedGroups> groups;
    /// Key columns join_index/groups are built on. The executor sets this
    /// at build time; a spilled entry rebuilds the structures from the
    /// reloaded records with it.
    KeyColumns index_key;
  };

  /// `volatile_bindings` names the source bindings rebound every superstep;
  /// everything derived from only the other bindings is loop-invariant.
  /// Defined out-of-line: member construction/destruction needs the
  /// Segment definition, which only exec_cache.cc has.
  explicit ExecCache(std::vector<std::string> volatile_bindings);

  /// Dropping the cache deletes its spill blobs and unregisters every
  /// segment from the attached manager.
  ~ExecCache();

  ExecCache(const ExecCache&) = delete;
  ExecCache& operator=(const ExecCache&) = delete;

  const std::vector<std::string>& volatile_bindings() const {
    return volatile_bindings_;
  }

  /// Puts the cache under `manager`'s budget: entries become spillable
  /// segments writing to `storage` under "spill/<job_id>/". Neither
  /// pointer is owned; both must outlive the cache. Call before the first
  /// Execute. Acquires exclusive ownership of the spill prefix on
  /// `storage` (StableStorage::AcquirePrefix) — attaching a second live
  /// cache with the same job id to the same storage dies, since two owners
  /// of one namespace would mix blobs. The prefix is released when the
  /// cache is destroyed (or re-attached elsewhere). `job_id` also tags the
  /// registered segments for the manager's per-owner breakdown.
  void AttachMemoryManager(runtime::MemoryManager* manager,
                           runtime::StableStorage* storage,
                           const std::string& job_id);

  runtime::MemoryManager* memory_manager() const { return manager_; }

  /// Mirrors hit/build/invalidation counts into the metrics v2 sink under
  /// the canonical cache.* names. Borrowed, may be null (= off). The
  /// legacy hits()/builds()/invalidations() accessors stay as shims over
  /// the same counts.
  void set_metrics(runtime::MetricsSink* metrics) { metrics_ = metrics; }

  /// Entries are keyed per partition count: executing with a different
  /// count drops everything (a repartition invalidates every shuffle).
  void EnsurePartitionCount(int num_partitions) {
    if (num_partitions_ != num_partitions) {
      Clear();
      num_partitions_ = num_partitions;
    }
  }

  /// The entry for (node, role) regardless of residency, or nullptr when
  /// not cached. A spilled entry has a null `data`; use FindResident on
  /// paths that consume the records.
  Entry* Find(int node_id, Role role);

  /// Find + budget bookkeeping: marks the entry most-recently-used and
  /// reloads it from storage when spilled (recording a "cache.unspill"
  /// span on `tracer` and setting `*reloaded`). Returns nullptr on a
  /// plain miss.
  Result<Entry*> FindResident(int node_id, Role role,
                              runtime::Tracer* tracer, bool* reloaded);

  /// Creates (or resets) the entry for (node, role). A reset entry's spill
  /// blob is deleted and its segment re-registered on fill.
  Entry& Emplace(int node_id, Role role);

  /// Budget hook: the executor calls this once the Emplace'd entry is
  /// fully built. Measures residency, registers the segment with the
  /// manager, and evicts LRU entries over budget (sparing this one —
  /// that's the "one segment of slack").
  Status OnEntryFilled(int node_id, Role role, runtime::Tracer* tracer);

  /// Failure hook: `partitions` of a worker were lost. Cached artifacts are
  /// hash-partitioned, so rebuilding any one partition needs a full
  /// re-scatter from every source — drop all entries, resident and spilled
  /// alike (spill blobs are deleted so recovery cannot reload stale
  /// state); the next superstep rebuilds them from the (static) bindings.
  /// Returns the serialized bytes released (resident + spilled), so the
  /// manager's accounting is verifiable against StableStorage::live_bytes.
  uint64_t Invalidate(const std::vector<int>& partitions);

  /// Drops everything (blobs included). Returns the bytes released.
  uint64_t Clear();

  void CountHit() {
    ++hits_;
    if (metrics_ != nullptr) metrics_->Count(runtime::metric::kCacheHits, -1);
  }

  /// Per-plan-node InferBatchSchema cache (DESIGN.md §15). The schema of a
  /// node's input is stable within a job once it has carried data —
  /// attaching a batch impl declares as much — so the dataset-wide
  /// inference pass runs once per node, not once per superstep. Only
  /// schemas inferred from non-empty datasets are stored (a drained CC
  /// workset must not pin the empty schema). Cleared with everything else
  /// on Clear/Invalidate/repartition.
  const BatchSchema* FindSchema(int node_id) {
    auto it = schemas_.find(node_id);
    if (it == schemas_.end()) return nullptr;
    ++schema_hits_;
    if (metrics_ != nullptr) {
      metrics_->Count(runtime::metric::kSchemaCacheHits, -1);
    }
    return &it->second;
  }
  void StoreSchema(int node_id, BatchSchema schema) {
    schemas_[node_id] = std::move(schema);
  }

  size_t size() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t builds() const { return builds_; }
  uint64_t invalidations() const { return invalidations_; }
  uint64_t schema_hits() const { return schema_hits_; }
  /// FlatKeyIndex rebuilds on unspill that adopted retained row hashes
  /// instead of rehashing every key (the satellite fix to the
  /// rebuild-after-spill path).
  uint64_t hash_reuses() const { return hash_reuses_; }

 private:
  /// The SpillableSegment wrapping one Entry; defined in exec_cache.cc.
  struct Segment;

  /// Unregisters the segment and deletes its spill blob; returns the
  /// serialized bytes that vanish with it.
  uint64_t Release(Segment* segment);

  std::vector<std::string> volatile_bindings_;
  int num_partitions_ = -1;
  runtime::MemoryManager* manager_ = nullptr;
  runtime::MetricsSink* metrics_ = nullptr;
  runtime::StableStorage* storage_ = nullptr;
  /// Spill key prefix: "spill/<job_id>/". Held exclusively on storage_
  /// while attached (AcquirePrefix).
  std::string spill_prefix_;
  /// Owner tag for the manager's per-owner accounting (the job id given to
  /// AttachMemoryManager).
  std::string owner_;
  /// (node id, role) -> segment. std::map: deterministic iteration order.
  std::map<std::pair<int, int>, std::unique_ptr<Segment>> entries_;
  /// Per-node cached batch schemas (FindSchema/StoreSchema).
  std::map<int, BatchSchema> schemas_;
  uint64_t hits_ = 0;
  uint64_t builds_ = 0;
  uint64_t invalidations_ = 0;
  uint64_t schema_hits_ = 0;
  uint64_t hash_reuses_ = 0;
};

}  // namespace flinkless::dataflow

#endif  // FLINKLESS_DATAFLOW_EXEC_CACHE_H_
