// PartitionedDataset: a dataset split across the cluster's partitions.
//
// This is the unit of everything the paper talks about: operators run per
// partition, shuffles move records between partitions, failures destroy
// partitions, checkpoints serialize partitions, and compensation functions
// rebuild partitions.

#ifndef FLINKLESS_DATAFLOW_DATASET_H_
#define FLINKLESS_DATAFLOW_DATASET_H_

#include <cstdint>
#include <vector>

#include "dataflow/record.h"

namespace flinkless::dataflow {

/// Records hash-distributed over a fixed number of partitions.
class PartitionedDataset {
 public:
  /// An empty dataset with `num_partitions` empty partitions.
  explicit PartitionedDataset(int num_partitions = 0)
      : partitions_(num_partitions) {}

  /// Partition index a record belongs to under hash partitioning on `key`.
  static int PartitionOf(const Record& record, const KeyColumns& key,
                         int num_partitions);

  /// Builds a dataset by hash-partitioning `records` on `key`.
  static PartitionedDataset HashPartitioned(std::vector<Record> records,
                                            const KeyColumns& key,
                                            int num_partitions);

  /// Builds a dataset by dealing records round-robin (used for unkeyed
  /// sources).
  static PartitionedDataset RoundRobin(std::vector<Record> records,
                                       int num_partitions);

  int num_partitions() const { return static_cast<int>(partitions_.size()); }

  std::vector<Record>& partition(int p) { return partitions_[p]; }
  const std::vector<Record>& partition(int p) const { return partitions_[p]; }

  /// Total records across partitions.
  uint64_t NumRecords() const;

  /// All records in partition order (cheap; order is deterministic but
  /// partition-dependent).
  std::vector<Record> Collect() const;

  /// All records sorted by RecordLess (for order-insensitive comparisons in
  /// tests).
  std::vector<Record> CollectSorted() const;

  /// Drops all records of partition `p` — what a task failure does to the
  /// state this dataset holds.
  void ClearPartition(int p) { partitions_[p].clear(); }

  /// Frees partition `p`'s storage entirely (capacity included). The
  /// streaming shuffle uses this to release consumed source partitions
  /// block by block instead of holding every outbox until the end.
  void ReleasePartition(int p) {
    std::vector<Record>().swap(partitions_[p]);
  }

  /// Serialized size of the whole dataset (checkpoint cost).
  uint64_t SerializedSizeBytes() const;

  /// True when every record is in the partition HashPartitioned(key) would
  /// put it in; used to validate co-partitioning preconditions.
  bool IsPartitionedBy(const KeyColumns& key) const;

 private:
  std::vector<std::vector<Record>> partitions_;
};

/// Frames a whole dataset into one blob — the spill format of cached
/// execution artifacts (DESIGN.md §11). Schema-homogeneous datasets use
/// the columnar v2 format ("FLKCOL1\0" magic: one schema, then whole-column
/// payloads per partition — DESIGN.md §12); heterogeneous ones fall back to
/// v1 ("FLKDST1\0" magic: per partition the same [u64 record
/// count][records...] encoding checkpoints use, record.h). Deserialization
/// reads both.
std::vector<uint8_t> SerializePartitionedDataset(const PartitionedDataset& ds);

/// Inverse of SerializePartitionedDataset; fails cleanly on a bad magic,
/// truncation, or trailing garbage.
Result<PartitionedDataset> DeserializePartitionedDataset(
    const std::vector<uint8_t>& bytes);

/// Exact byte size SerializePartitionedDataset(ds) would produce — the
/// residency measure the memory manager budgets against.
uint64_t SerializedDatasetBytes(const PartitionedDataset& ds);

}  // namespace flinkless::dataflow

#endif  // FLINKLESS_DATAFLOW_DATASET_H_
