// Executor: runs a Plan over hash-partitioned data.
//
// The execution model is the paper's: every operator runs independently on
// each of the N partitions; key-based operators (reduce/join/cogroup/
// distinct) first shuffle their input so equal keys meet in one partition.
// Records that cross partitions during a shuffle are the "messages" the
// paper's GUI plots per iteration; the executor counts them and charges
// simulated network time for them.

#ifndef FLINKLESS_DATAFLOW_EXECUTOR_H_
#define FLINKLESS_DATAFLOW_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "dataflow/dataset.h"
#include "dataflow/plan.h"
#include "runtime/cost_model.h"
#include "runtime/sim_clock.h"

namespace flinkless::dataflow {

/// Input datasets for a plan execution, keyed by source binding name. The
/// pointed-to datasets are borrowed and must outlive the Execute call.
using Bindings = std::map<std::string, const PartitionedDataset*>;

/// Work accounting for one plan execution.
struct ExecStats {
  /// Records consumed by operators (every operator input record counts).
  uint64_t records_processed = 0;

  /// Records that moved to a different partition during shuffles — the
  /// paper's per-iteration "messages".
  uint64_t messages_shuffled = 0;

  /// Output record count per operator display name (accumulated when names
  /// repeat).
  std::map<std::string, uint64_t> node_output_counts;

  /// Merges another stats block into this one.
  void MergeFrom(const ExecStats& other);
};

/// Execution configuration. The clock and cost model are optional; when
/// absent no simulated time is charged.
struct ExecOptions {
  int num_partitions = 4;
  runtime::SimClock* clock = nullptr;
  const runtime::CostModel* costs = nullptr;
};

/// Stateless plan interpreter. One Executor can run many plans; options are
/// fixed at construction.
class Executor {
 public:
  explicit Executor(ExecOptions options);

  /// Runs `plan` against `bindings`. Every source name in the plan must be
  /// bound to a dataset with exactly `num_partitions` partitions. Returns
  /// the datasets of the plan's named outputs. `stats` may be nullptr.
  Result<std::map<std::string, PartitionedDataset>> Execute(
      const Plan& plan, const Bindings& bindings, ExecStats* stats) const;

  /// Hash-repartitions `input` on `key`, counting moved records into `stats`
  /// and charging the clock. Exposed because the iteration drivers also need
  /// to co-partition state.
  PartitionedDataset Shuffle(const PartitionedDataset& input,
                             const KeyColumns& key, ExecStats* stats) const;

  int num_partitions() const { return options_.num_partitions; }

 private:
  void ChargeCompute(uint64_t records) const;

  ExecOptions options_;
};

}  // namespace flinkless::dataflow

#endif  // FLINKLESS_DATAFLOW_EXECUTOR_H_
