// Executor: runs a Plan over hash-partitioned data.
//
// The execution model is the paper's: every operator runs independently on
// each of the N partitions; key-based operators (reduce/join/cogroup/
// distinct) first shuffle their input so equal keys meet in one partition.
// Records that cross partitions during a shuffle are the "messages" the
// paper's GUI plots per iteration; the executor counts them and charges
// simulated network time for them.

#ifndef FLINKLESS_DATAFLOW_EXECUTOR_H_
#define FLINKLESS_DATAFLOW_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dataflow/dataset.h"
#include "dataflow/plan.h"
#include "dataflow/simd.h"
#include "runtime/cost_model.h"
#include "runtime/metrics.h"
#include "runtime/sim_clock.h"
#include "runtime/thread_pool.h"
#include "runtime/tracing.h"

namespace flinkless::runtime {
class MessageLog;
}  // namespace flinkless::runtime

namespace flinkless::dataflow {

class ExecCache;
class FlatKeyIndex;

/// Input datasets for a plan execution, keyed by source binding name. The
/// pointed-to datasets are borrowed and must outlive the Execute call.
using Bindings = std::map<std::string, const PartitionedDataset*>;

/// Work accounting for one plan execution.
struct ExecStats {
  /// Records consumed by operators (every operator input record counts).
  uint64_t records_processed = 0;

  /// Records that moved to a different partition during shuffles — the
  /// paper's per-iteration "messages".
  uint64_t messages_shuffled = 0;

  /// Loop-invariant cache hits (one per node/side served from the cache).
  uint64_t cache_hits = 0;

  /// Records whose shuffle was skipped because the shuffled dataset (or the
  /// whole node output) was served from the loop-invariant cache.
  uint64_t records_not_reshuffled = 0;

  /// Hot-operator instances (reduce/join/group-reduce/distinct/cogroup)
  /// that ran on the columnar batch path (DESIGN.md §12).
  uint64_t batch_ops = 0;

  /// Hot-operator instances that dropped to the record-at-a-time path —
  /// either ExecOptions::use_columnar is off, or the operator's shape has
  /// no batch implementation (cogroup's two-sided group sweep).
  uint64_t row_fallback_ops = 0;

  /// Records read back from the outbound message log during a confined
  /// replay (Executor::Replay) — the messages that did NOT have to be
  /// recomputed by re-running survivors. Zero outside recovery.
  uint64_t messages_replayed = 0;

  /// Output record count per operator display name (accumulated when names
  /// repeat).
  std::map<std::string, uint64_t> node_output_counts;

  /// Merges another stats block into this one.
  void MergeFrom(const ExecStats& other);
};

/// How much per-partition detail operator/shuffle spans carry. The
/// per-partition args ("out_p<i>", "moved_p<i>") cost one string-format and
/// one arg entry per partition per operator — negligible at demo scale,
/// real churn at hundreds of partitions.
enum class TraceDetail {
  /// Per-partition args on for <= 8 partitions, off beyond that.
  kAuto = 0,
  kPerPartition,  // always record per-partition args
  kAggregate,     // only aggregate args (counts stay exact)
};

/// Execution configuration. The clock and cost model are optional; when
/// absent no simulated time is charged.
struct ExecOptions {
  int num_partitions = 4;
  runtime::SimClock* clock = nullptr;
  const runtime::CostModel* costs = nullptr;

  /// Worker threads evaluating per-partition operator instances: 1 = serial
  /// execution on the calling thread (the default), 0 = one thread per
  /// hardware core, anything else is taken literally. Outputs, ExecStats,
  /// and simulated-time charges are identical for every value — parallelism
  /// only changes wall-clock time (see DESIGN.md "Threading model").
  int num_threads = 1;

  /// Optional trace recorder. When set, Execute/Shuffle record one span per
  /// operator, per shuffle phase, and per partition (with record/message
  /// counts as args). Null = tracing off; every call site is guarded, so
  /// the disabled path costs one branch. Tracing never changes outputs,
  /// ExecStats, or SimClock charges (DESIGN.md §8).
  runtime::Tracer* tracer = nullptr;

  /// Optional loop-invariant cache, owned by the iteration driver and
  /// shared across supersteps (see exec_cache.h and DESIGN.md §10). Null =
  /// no caching; outputs are byte-identical either way, only the work
  /// (shuffles, index builds) and its simulated charges are skipped on
  /// cache hits.
  ExecCache* cache = nullptr;

  /// Byte budget for cached loop-invariant artifacts (0 = unlimited).
  /// Enforced by the iteration drivers: when set (and a StableStorage is
  /// available), the driver attaches a MemoryManager to its ExecCache and
  /// LRU entries spill to storage once serialized residency exceeds the
  /// budget (DESIGN.md §11). Outputs are byte-identical at any budget;
  /// only the simulated I/O charges change.
  uint64_t memory_budget_bytes = 0;

  /// Columnar batch execution (DESIGN.md §12): the shuffle scatter, reduce,
  /// join, group-reduce, and distinct hot paths run over flat key columns
  /// and open-addressing indexes instead of per-record Value hashing and
  /// map nodes. Outputs, ExecStats record/message counts, and SimClock
  /// charges are byte-identical to the record path at any thread count;
  /// only wall-clock (and the batch_ops/row_fallback_ops counters) differ.
  /// Off = the legacy record-at-a-time path, kept for A/B comparison.
  bool use_columnar = true;

  /// SIMD tier request for the columnar kernels (dataflow/simd.h,
  /// DESIGN.md §15), applied process-wide at Executor construction. kAuto
  /// (the default) leaves the current dispatch alone — normally the best
  /// level the CPU supports, or whatever FLINKLESS_SIMD forced. Every tier
  /// is bit-identical; this knob (like the env var) only trades wall-clock,
  /// so outputs/stats/charges never depend on it.
  simd::SimdLevel simd_level = simd::SimdLevel::kAuto;

  /// Per-partition trace-arg verbosity (see TraceDetail).
  TraceDetail trace_detail = TraceDetail::kAuto;

  /// Optional metrics v2 sink (see runtime/metrics.h). When set, the
  /// executor records per-partition counters (operator input records,
  /// shuffle fan-out) and job-level counters/histograms (batch vs row
  /// ops, batch sizes, join probe chain lengths, parallel-section
  /// dispatches). Null = metrics off. Recording never changes outputs,
  /// ExecStats, or SimClock charges, and the recorded values are
  /// identical at any thread count (DESIGN.md §13).
  runtime::MetricsSink* metrics = nullptr;

  /// Optional outbound message log (runtime/message_log.h, DESIGN.md §14),
  /// owned by the iteration driver. When set, Execute appends every
  /// shuffled loop-*variant* channel (the log's volatile_bindings decide
  /// variance) to the log after the shuffle's gather phase, enabling
  /// confined-log recovery via Replay. Null = logging off. Appending never
  /// changes outputs, ExecStats, or SimClock charges — with an unlimited
  /// budget a logged run is bit-identical to an unlogged one.
  runtime::MessageLog* message_log = nullptr;
};

/// Stateless plan interpreter. One Executor can run many plans; options are
/// fixed at construction. An executor with num_threads > 1 owns a worker
/// pool for the lifetime of the object; Execute/Shuffle may be called from
/// one thread at a time.
class Executor {
 public:
  explicit Executor(ExecOptions options);

  /// Runs `plan` against `bindings`. Every source name in the plan must be
  /// bound to a dataset with exactly `num_partitions` partitions. Returns
  /// the datasets of the plan's named outputs. `stats` may be nullptr.
  Result<std::map<std::string, PartitionedDataset>> Execute(
      const Plan& plan, const Bindings& bindings, ExecStats* stats) const;

  /// Hash-repartitions `input` on `key`, counting moved records into `stats`
  /// and charging the clock. Exposed because the iteration drivers also need
  /// to co-partition state. Two-phase: every source partition scatters into
  /// its own N-way outbox (in parallel), then every target partition
  /// concatenates its outboxes in source order — so the result is
  /// byte-identical to a serial single-pass shuffle.
  PartitionedDataset Shuffle(const PartitionedDataset& input,
                             const KeyColumns& key, ExecStats* stats) const;

  /// Shuffle overload that moves records out of `input` instead of copying
  /// them; use when the input dataset is dead after the call.
  PartitionedDataset Shuffle(PartitionedDataset&& input, const KeyColumns& key,
                             ExecStats* stats) const;

  /// Confined-log recovery (DESIGN.md §14): recomputes the plan's outputs
  /// for the `lost` partitions from the failed superstep's logged channels
  /// (`log`, filled by the Execute that ran with ExecOptions::message_log
  /// set to it) plus the loop-invariant bindings — without re-running the
  /// survivors. Volatile bindings need not be in `bindings`; a plan whose
  /// outputs depend on a volatile source *not* through a logged shuffle is
  /// rejected with FailedPrecondition (no such plan exists in src/algos).
  /// Runs serially on the orchestration thread; every charge lands on
  /// Charge::kRecovery (replayed messages shipped to the fresh workers,
  /// recomputation critical path over the demanded partitions), so healthy
  /// partitions only wait. Returned datasets have num_partitions()
  /// partitions with only the demanded ones populated, byte-identical to
  /// the corresponding partitions of the failed Execute at any thread
  /// count. `stats` may be nullptr.
  Result<std::map<std::string, PartitionedDataset>> Replay(
      const Plan& plan, const Bindings& bindings, const std::vector<int>& lost,
      runtime::MessageLog* log, ExecStats* stats) const;

  int num_partitions() const { return options_.num_partitions; }

  /// The worker pool, or nullptr when executing serially. Borrowed by the
  /// iteration drivers so recovery-path work (compensation functions) can
  /// run partition-parallel on the same workers.
  runtime::ThreadPool* pool() const { return pool_.get(); }

 private:
  /// Runs fn(p) for every partition, on the pool when present.
  void ForEachPartition(int count, const std::function<void(int)>& fn) const;

  /// ForEachPartition plus one per-partition child span of `parent` when
  /// tracing is on. `in` (optional) supplies the "records" arg of partition
  /// p's span — evaluated before fn(p), so move-consuming fns are safe.
  void ForEachPartition(const runtime::TraceSpan& parent,
                        const PartitionedDataset* in, int count,
                        const std::function<void(int)>& fn) const;

  /// Charges compute for per-partition record counts under critical-path
  /// semantics: the simulated cluster runs its N partitions on N workers in
  /// parallel, so an operator costs as much as its slowest partition. A pure
  /// function of the data — independent of num_threads.
  void ChargeCompute(const std::vector<uint64_t>& per_partition) const;

  /// Critical-path charge where partition p processes `a.partition(p)` (and
  /// `b.partition(p)` when b is non-null).
  void ChargeCompute(const PartitionedDataset& a,
                     const PartitionedDataset* b = nullptr) const;

  void ChargeNetwork(uint64_t messages) const;

  /// Counts one parallel section of `tasks` task indices into the metrics
  /// sink. Counted at the executor level, not inside the ThreadPool: a
  /// serial executor (num_threads == 1) has no pool at all, and the
  /// exported totals must be identical at any thread count.
  void CountPoolWork(int tasks) const;

  /// Observes every partition's row count into the batch-size histogram
  /// (called on batch-path operators only).
  void ObserveBatchRows(const PartitionedDataset& ds) const;

  /// Observes each build-side group's chain length into the probe-chain
  /// histogram. Safe from worker threads (histograms merge commutatively).
  void ObserveProbeChains(const FlatKeyIndex& index) const;

  template <typename Input>
  PartitionedDataset ShuffleImpl(Input&& input, const KeyColumns& key,
                                 ExecStats* stats) const;

  ExecOptions options_;
  /// Resolved TraceDetail: record per-partition span args?
  bool per_partition_args_ = true;
  std::unique_ptr<runtime::ThreadPool> pool_;
};

}  // namespace flinkless::dataflow

#endif  // FLINKLESS_DATAFLOW_EXECUTOR_H_
