#include "dataflow/schema.h"

namespace flinkless::dataflow {

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::Validate(const Record& record) const {
  if (record.size() != fields_.size()) {
    return Status::InvalidArgument(
        "record arity " + std::to_string(record.size()) +
        " does not match schema " + ToString());
  }
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (record[i].type() != fields_[i].type) {
      return Status::InvalidArgument(
          "column '" + fields_[i].name + "' expects " +
          ValueTypeName(fields_[i].type) + " but record has " +
          ValueTypeName(record[i].type()) + " in " + RecordToString(record));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ", ";
    out += fields_[i].name + ": " + ValueTypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.fields_.size() != b.fields_.size()) return false;
  for (size_t i = 0; i < a.fields_.size(); ++i) {
    if (a.fields_[i].name != b.fields_[i].name ||
        a.fields_[i].type != b.fields_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace flinkless::dataflow
