#include "dataflow/simd.h"

#include <atomic>
#include <cstdlib>

#include "common/hash.h"

// The vector tiers use function-level target attributes instead of global
// -mavx2/-msse4.2 flags: the binary stays runnable on any x86-64 (the
// scalar tier is always safe), and only the explicitly dispatched kernels
// carry wider instructions.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FLINKLESS_SIMD_X86 1
#include <immintrin.h>
#endif

namespace flinkless::dataflow::simd {

namespace {

/// HashKey's seed for every key projection (record.cc).
constexpr uint64_t kHashSeed = 0x2545f4914f6cdd1dULL;
/// HashCombine(kHashSeed, v) = kHashSeed ^ (Mix64(v) + kHashAdd): the seed
/// is constant for single-key rows, so the combine collapses to one
/// precomputed addend.
constexpr uint64_t kHashAdd =
    0x9e3779b97f4a7c15ULL + (kHashSeed << 6) + (kHashSeed >> 2);

// ------------------------------------------------------------- scalar ----
// The reference tier: byte-for-byte the loops the columnar layer ran before
// this PR. Every vector kernel below must agree with these on all inputs
// (tests/simd_test.cc holds them to it).

void HashKey64Scalar(const int64_t* keys, size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = HashCombine(kHashSeed, Mix64(static_cast<uint64_t>(keys[i])));
  }
}

void DeltaU32Scalar(const uint32_t* offsets, size_t n, uint32_t* lens) {
  for (size_t i = 0; i < n; ++i) lens[i] = offsets[i + 1] - offsets[i];
}

uint64_t SumU32Scalar(const uint32_t* values, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) total += values[i];
  return total;
}

void PrefixSumU32Scalar(const uint32_t* values, size_t n, uint32_t* out) {
  uint32_t run = 0;
  for (size_t i = 0; i < n; ++i) {
    run += values[i];
    out[i] = run;
  }
}

int64_t MinI64Scalar(const int64_t* values, size_t n) {
  int64_t best = values[0];
  for (size_t i = 1; i < n; ++i) {
    if (values[i] < best) best = values[i];
  }
  return best;
}

int64_t MaxI64Scalar(const int64_t* values, size_t n) {
  int64_t best = values[0];
  for (size_t i = 1; i < n; ++i) {
    if (values[i] > best) best = values[i];
  }
  return best;
}

int64_t SumI64Scalar(const int64_t* values, size_t n) {
  // Unsigned accumulation: the documented wrapping (two's-complement) sum,
  // without signed-overflow UB.
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) total += static_cast<uint64_t>(values[i]);
  return static_cast<int64_t>(total);
}

bool AllEqualI64Scalar(const int64_t* values, size_t n, int64_t value) {
  for (size_t i = 0; i < n; ++i) {
    if (values[i] != value) return false;
  }
  return true;
}

int FirstEmptyScalar(const int32_t* slots) { return slots[0] < 0 ? 0 : 1; }

constexpr Kernels kScalarTable = {
    Level::kScalar,  "scalar",         HashKey64Scalar, DeltaU32Scalar,
    SumU32Scalar,    PrefixSumU32Scalar, MinI64Scalar,  MaxI64Scalar,
    SumI64Scalar,    AllEqualI64Scalar, FirstEmptyScalar,
    /*probe_width=*/1,
};

#if FLINKLESS_SIMD_X86

// ------------------------------------------------------------ SSE4.2 ----

__attribute__((target("sse4.2"))) inline __m128i Mul64Sse(__m128i x,
                                                          __m128i m) {
  // 64x64 -> low 64 multiply from 32-bit partial products:
  // lo(x)*lo(m) + ((hi(x)*lo(m) + lo(x)*hi(m)) << 32).
  __m128i lo = _mm_mul_epu32(x, m);
  __m128i cross = _mm_add_epi64(_mm_mul_epu32(_mm_srli_epi64(x, 32), m),
                                _mm_mul_epu32(x, _mm_srli_epi64(m, 32)));
  return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
}

__attribute__((target("sse4.2"))) inline __m128i Mix64Sse(__m128i x) {
  const __m128i m1 =
      _mm_set1_epi64x(static_cast<long long>(0xff51afd7ed558ccdULL));
  const __m128i m2 =
      _mm_set1_epi64x(static_cast<long long>(0xc4ceb9fe1a85ec53ULL));
  x = _mm_xor_si128(x, _mm_srli_epi64(x, 33));
  x = Mul64Sse(x, m1);
  x = _mm_xor_si128(x, _mm_srli_epi64(x, 33));
  x = Mul64Sse(x, m2);
  return _mm_xor_si128(x, _mm_srli_epi64(x, 33));
}

__attribute__((target("sse4.2"))) void HashKey64Sse(const int64_t* keys,
                                                    size_t n, uint64_t* out) {
  const __m128i seed = _mm_set1_epi64x(static_cast<long long>(kHashSeed));
  const __m128i add = _mm_set1_epi64x(static_cast<long long>(kHashAdd));
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i k =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
    __m128i h = Mix64Sse(Mix64Sse(k));  // Value::Hash then HashCombine's mix
    h = _mm_xor_si128(seed, _mm_add_epi64(h, add));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), h);
  }
  if (i < n) HashKey64Scalar(keys + i, n - i, out + i);
}

__attribute__((target("sse4.2"))) void DeltaU32Sse(const uint32_t* offsets,
                                                   size_t n, uint32_t* lens) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(offsets + i));
    __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(offsets + i + 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(lens + i),
                     _mm_sub_epi32(b, a));
  }
  for (; i < n; ++i) lens[i] = offsets[i + 1] - offsets[i];
}

__attribute__((target("sse4.2"))) uint64_t SumU32Sse(const uint32_t* values,
                                                     size_t n) {
  __m128i acc = _mm_setzero_si128();  // two u64 lanes
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i));
    acc = _mm_add_epi64(acc, _mm_cvtepu32_epi64(x));
    acc = _mm_add_epi64(acc, _mm_cvtepu32_epi64(_mm_srli_si128(x, 8)));
  }
  uint64_t lanes[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), acc);
  uint64_t total = lanes[0] + lanes[1];
  for (; i < n; ++i) total += values[i];
  return total;
}

__attribute__((target("sse4.2"))) void PrefixSumU32Sse(const uint32_t* values,
                                                       size_t n,
                                                       uint32_t* out) {
  // Classic in-register scan: two shift-adds make a 4-lane inclusive scan,
  // then the top lane carries into the next block.
  __m128i carry = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i));
    x = _mm_add_epi32(x, _mm_slli_si128(x, 4));
    x = _mm_add_epi32(x, _mm_slli_si128(x, 8));
    x = _mm_add_epi32(x, carry);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), x);
    carry = _mm_shuffle_epi32(x, _MM_SHUFFLE(3, 3, 3, 3));
  }
  uint32_t run = i > 0 ? out[i - 1] : 0;
  for (; i < n; ++i) {
    run += values[i];
    out[i] = run;
  }
}

__attribute__((target("sse4.2"))) int64_t MinI64Sse(const int64_t* values,
                                                    size_t n) {
  size_t i = 0;
  int64_t best = values[0];
  if (n >= 2) {
    __m128i acc =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(values));
    for (i = 2; i + 2 <= n; i += 2) {
      __m128i x =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i));
      acc = _mm_blendv_epi8(acc, x, _mm_cmpgt_epi64(acc, x));
    }
    int64_t lanes[2];
    _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), acc);
    best = lanes[0] < lanes[1] ? lanes[0] : lanes[1];
  }
  for (; i < n; ++i) {
    if (values[i] < best) best = values[i];
  }
  return best;
}

__attribute__((target("sse4.2"))) int64_t MaxI64Sse(const int64_t* values,
                                                    size_t n) {
  size_t i = 0;
  int64_t best = values[0];
  if (n >= 2) {
    __m128i acc =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(values));
    for (i = 2; i + 2 <= n; i += 2) {
      __m128i x =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i));
      acc = _mm_blendv_epi8(acc, x, _mm_cmpgt_epi64(x, acc));
    }
    int64_t lanes[2];
    _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), acc);
    best = lanes[0] > lanes[1] ? lanes[0] : lanes[1];
  }
  for (; i < n; ++i) {
    if (values[i] > best) best = values[i];
  }
  return best;
}

__attribute__((target("sse4.2"))) int64_t SumI64Sse(const int64_t* values,
                                                    size_t n) {
  __m128i acc = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = _mm_add_epi64(
        acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i)));
  }
  uint64_t lanes[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), acc);
  uint64_t total = lanes[0] + lanes[1];
  for (; i < n; ++i) total += static_cast<uint64_t>(values[i]);
  return static_cast<int64_t>(total);
}

__attribute__((target("sse4.2"))) bool AllEqualI64Sse(const int64_t* values,
                                                      size_t n,
                                                      int64_t value) {
  const __m128i ref = _mm_set1_epi64x(static_cast<long long>(value));
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i));
    if (_mm_movemask_epi8(_mm_cmpeq_epi64(x, ref)) != 0xffff) return false;
  }
  for (; i < n; ++i) {
    if (values[i] != value) return false;
  }
  return true;
}

__attribute__((target("sse4.2"))) int FirstEmptySse(const int32_t* slots) {
  __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(slots));
  // Sign bit per 32-bit lane: set = negative = empty bucket.
  int mask = _mm_movemask_ps(_mm_castsi128_ps(x));
  return mask != 0 ? __builtin_ctz(static_cast<unsigned>(mask)) : 4;
}

constexpr Kernels kSse42Table = {
    Level::kSSE42, "sse4.2",        HashKey64Sse, DeltaU32Sse,
    SumU32Sse,     PrefixSumU32Sse, MinI64Sse,    MaxI64Sse,
    SumI64Sse,     AllEqualI64Sse,  FirstEmptySse,
    /*probe_width=*/4,
};

// -------------------------------------------------------------- AVX2 ----

__attribute__((target("avx2"))) inline __m256i Mul64Avx2(__m256i x,
                                                         __m256i m) {
  __m256i lo = _mm256_mul_epu32(x, m);
  __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(x, 32), m),
                       _mm256_mul_epu32(x, _mm256_srli_epi64(m, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i Mix64Avx2(__m256i x) {
  const __m256i m1 =
      _mm256_set1_epi64x(static_cast<long long>(0xff51afd7ed558ccdULL));
  const __m256i m2 =
      _mm256_set1_epi64x(static_cast<long long>(0xc4ceb9fe1a85ec53ULL));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = Mul64Avx2(x, m1);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = Mul64Avx2(x, m2);
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
}

__attribute__((target("avx2"))) void HashKey64Avx2(const int64_t* keys,
                                                   size_t n, uint64_t* out) {
  const __m256i seed = _mm256_set1_epi64x(static_cast<long long>(kHashSeed));
  const __m256i add = _mm256_set1_epi64x(static_cast<long long>(kHashAdd));
  size_t i = 0;
  // Two independent vectors per iteration: the double-Mix64 chain is a long
  // serial dependency (each emulated 64-bit multiply is three vpmuludq),
  // so a single-vector loop stalls on latency; interleaving two chains
  // keeps the multiply ports busy.
  for (; i + 8 <= n; i += 8) {
    __m256i k0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    __m256i k1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i + 4));
    __m256i h0 = Mix64Avx2(Mix64Avx2(k0));
    __m256i h1 = Mix64Avx2(Mix64Avx2(k1));
    h0 = _mm256_xor_si256(seed, _mm256_add_epi64(h0, add));
    h1 = _mm256_xor_si256(seed, _mm256_add_epi64(h1, add));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4), h1);
  }
  for (; i + 4 <= n; i += 4) {
    __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    __m256i h = Mix64Avx2(Mix64Avx2(k));
    h = _mm256_xor_si256(seed, _mm256_add_epi64(h, add));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
  }
  if (i < n) HashKey64Scalar(keys + i, n - i, out + i);
}

__attribute__((target("avx2"))) void DeltaU32Avx2(const uint32_t* offsets,
                                                  size_t n, uint32_t* lens) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(offsets + i));
    __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(offsets + i + 1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lens + i),
                        _mm256_sub_epi32(b, a));
  }
  for (; i < n; ++i) lens[i] = offsets[i + 1] - offsets[i];
}

__attribute__((target("avx2"))) uint64_t SumU32Avx2(const uint32_t* values,
                                                    size_t n) {
  __m256i acc = _mm256_setzero_si256();  // four u64 lanes
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    acc = _mm256_add_epi64(acc,
                           _mm256_cvtepu32_epi64(_mm256_castsi256_si128(x)));
    acc = _mm256_add_epi64(
        acc, _mm256_cvtepu32_epi64(_mm256_extracti128_si256(x, 1)));
  }
  uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) total += values[i];
  return total;
}

__attribute__((target("avx2"))) int64_t MinI64Avx2(const int64_t* values,
                                                   size_t n) {
  size_t i = 0;
  int64_t best = values[0];
  if (n >= 4) {
    __m256i acc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values));
    for (i = 4; i + 4 <= n; i += 4) {
      __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
      acc = _mm256_blendv_epi8(acc, x, _mm256_cmpgt_epi64(acc, x));
    }
    int64_t lanes[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
    best = lanes[0];
    for (int j = 1; j < 4; ++j) {
      if (lanes[j] < best) best = lanes[j];
    }
  }
  for (; i < n; ++i) {
    if (values[i] < best) best = values[i];
  }
  return best;
}

__attribute__((target("avx2"))) int64_t MaxI64Avx2(const int64_t* values,
                                                   size_t n) {
  size_t i = 0;
  int64_t best = values[0];
  if (n >= 4) {
    __m256i acc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values));
    for (i = 4; i + 4 <= n; i += 4) {
      __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
      acc = _mm256_blendv_epi8(acc, x, _mm256_cmpgt_epi64(x, acc));
    }
    int64_t lanes[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
    best = lanes[0];
    for (int j = 1; j < 4; ++j) {
      if (lanes[j] > best) best = lanes[j];
    }
  }
  for (; i < n; ++i) {
    if (values[i] > best) best = values[i];
  }
  return best;
}

__attribute__((target("avx2"))) int64_t SumI64Avx2(const int64_t* values,
                                                   size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(acc, _mm256_loadu_si256(
                                    reinterpret_cast<const __m256i*>(
                                        values + i)));
  }
  uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) total += static_cast<uint64_t>(values[i]);
  return static_cast<int64_t>(total);
}

__attribute__((target("avx2"))) bool AllEqualI64Avx2(const int64_t* values,
                                                     size_t n,
                                                     int64_t value) {
  const __m256i ref = _mm256_set1_epi64x(static_cast<long long>(value));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi64(x, ref)) != -1) return false;
  }
  for (; i < n; ++i) {
    if (values[i] != value) return false;
  }
  return true;
}

__attribute__((target("avx2"))) int FirstEmptyAvx2(const int32_t* slots) {
  __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(slots));
  int mask = _mm256_movemask_ps(_mm256_castsi256_ps(x));
  return mask != 0 ? __builtin_ctz(static_cast<unsigned>(mask)) : 8;
}

constexpr Kernels kAvx2Table = {
    Level::kAVX2, "avx2",          HashKey64Avx2, DeltaU32Avx2,
    SumU32Avx2,   PrefixSumU32Sse, MinI64Avx2,    MaxI64Avx2,
    SumI64Avx2,   AllEqualI64Avx2, FirstEmptyAvx2,
    /*probe_width=*/8,
};

#endif  // FLINKLESS_SIMD_X86

const Kernels& TableFor(Level level) {
#if FLINKLESS_SIMD_X86
  switch (level) {
    case Level::kAVX2:
      return kAvx2Table;
    case Level::kSSE42:
      return kSse42Table;
    case Level::kScalar:
      return kScalarTable;
  }
#endif
  (void)level;
  return kScalarTable;
}

Level DetectImpl() {
#if FLINKLESS_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Level::kAVX2;
  if (__builtin_cpu_supports("sse4.2")) return Level::kSSE42;
#endif
  return Level::kScalar;
}

/// Process-wide dispatch state. The env override is read once; the active
/// table pointer is atomic so benches/tests may flip levels while worker
/// threads are parked between parallel sections.
struct DispatchState {
  Level detected;
  bool env_active = false;
  Level env_cap = Level::kScalar;
  std::atomic<const Kernels*> active;

  DispatchState() : detected(DetectImpl()) {
    if (const char* env = std::getenv("FLINKLESS_SIMD")) {
      SimdLevel req = SimdLevel::kAuto;
      if (ParseSimdLevel(env, &req) && req != SimdLevel::kAuto) {
        env_active = true;
        env_cap = req == SimdLevel::kMax
                      ? detected
                      : static_cast<Level>(static_cast<int>(req));
      }
    }
    active.store(&TableFor(Resolve(detected)), std::memory_order_relaxed);
  }

  Level Resolve(Level requested) const {
    Level level = requested < detected ? requested : detected;
    if (env_active && env_cap < level) level = env_cap;
    return level;
  }
};

DispatchState& State() {
  static DispatchState state;
  return state;
}

}  // namespace

Level Detect() { return State().detected; }

bool Supported(Level level) { return level <= State().detected; }

Level SetLevel(Level requested) {
  DispatchState& s = State();
  const Level resolved = s.Resolve(requested);
  s.active.store(&TableFor(resolved), std::memory_order_relaxed);
  return resolved;
}

Level ActiveLevel() {
  return State().active.load(std::memory_order_relaxed)->level;
}

const Kernels& ActiveKernels() {
  return *State().active.load(std::memory_order_relaxed);
}

const Kernels& KernelsFor(Level level) { return TableFor(level); }

const char* LevelName(Level level) { return TableFor(level).name; }

bool ParseSimdLevel(std::string_view text, SimdLevel* out) {
  if (text == "auto") {
    *out = SimdLevel::kAuto;
  } else if (text == "off" || text == "scalar") {
    *out = SimdLevel::kOff;
  } else if (text == "sse4" || text == "sse4.2") {
    *out = SimdLevel::kSse42;
  } else if (text == "avx2") {
    *out = SimdLevel::kAvx2;
  } else if (text == "max") {
    *out = SimdLevel::kMax;
  } else {
    return false;
  }
  return true;
}

Level ApplySimdLevel(SimdLevel request) {
  switch (request) {
    case SimdLevel::kAuto:
      return ActiveLevel();
    case SimdLevel::kMax:
      return SetLevel(Detect());
    default:
      return SetLevel(static_cast<Level>(static_cast<int>(request)));
  }
}

bool EnvOverrideActive() { return State().env_active; }

}  // namespace flinkless::dataflow::simd
