#include "dataflow/record.h"

#include <cstring>

#include "common/hash.h"
#include "common/logging.h"

namespace flinkless::dataflow {

std::string RecordToString(const Record& record) {
  std::string out = "(";
  for (size_t i = 0; i < record.size(); ++i) {
    if (i) out += ", ";
    out += record[i].ToString();
  }
  out += ")";
  return out;
}

uint64_t HashKey(const Record& record, const KeyColumns& key) {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (int col : key) {
    FLINKLESS_CHECK(col >= 0 && static_cast<size_t>(col) < record.size(),
                    "key column " << col << " out of range for record "
                                  << RecordToString(record));
    h = HashCombine(h, record[col].Hash());
  }
  return h;
}

uint64_t HashRecord(const Record& record) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const Value& v : record) h = HashCombine(h, v.Hash());
  return h;
}

bool KeysEqual(const Record& a, const KeyColumns& a_key, const Record& b,
               const KeyColumns& b_key) {
  if (a_key.size() != b_key.size()) return false;
  for (size_t i = 0; i < a_key.size(); ++i) {
    if (!(a[a_key[i]] == b[b_key[i]])) return false;
  }
  return true;
}

Record ExtractKey(const Record& record, const KeyColumns& key) {
  Record out;
  out.reserve(key.size());
  for (int col : key) {
    FLINKLESS_CHECK(col >= 0 && static_cast<size_t>(col) < record.size(),
                    "key column " << col << " out of range");
    out.push_back(record[col]);
  }
  return out;
}

bool KeyLess(const Record& a, const Record& b, const KeyColumns& key) {
  for (int col : key) {
    const Value& va = a[col];
    const Value& vb = b[col];
    if (va < vb) return true;
    if (vb < va) return false;
  }
  return false;
}

bool RecordLess(const Record& a, const Record& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < b[i]) return true;
    if (b[i] < a[i]) return false;
  }
  return a.size() < b.size();
}

namespace {

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

bool GetU32(const std::vector<uint8_t>& bytes, size_t* offset, uint32_t* v) {
  if (*offset + 4 > bytes.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(bytes[*offset + i]) << (8 * i);
  }
  *offset += 4;
  return true;
}

bool GetU64(const std::vector<uint8_t>& bytes, size_t* offset, uint64_t* v) {
  if (*offset + 8 > bytes.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(bytes[*offset + i]) << (8 * i);
  }
  *offset += 8;
  return true;
}

}  // namespace

void SerializeRecord(const Record& record, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(record.size()), out);
  for (const Value& v : record) {
    out->push_back(static_cast<uint8_t>(v.type()));
    switch (v.type()) {
      case ValueType::kInt64:
        PutU64(static_cast<uint64_t>(v.AsInt64()), out);
        break;
      case ValueType::kDouble: {
        uint64_t bits;
        double d = v.AsDouble();
        std::memcpy(&bits, &d, sizeof(bits));
        PutU64(bits, out);
        break;
      }
      case ValueType::kString: {
        const std::string& s = v.AsString();
        PutU32(static_cast<uint32_t>(s.size()), out);
        out->insert(out->end(), s.begin(), s.end());
        break;
      }
    }
  }
}

Result<Record> DeserializeRecord(const std::vector<uint8_t>& bytes,
                                 size_t* offset) {
  uint32_t count = 0;
  if (!GetU32(bytes, offset, &count)) {
    return Status::DataLoss("truncated record header");
  }
  Record record;
  record.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (*offset >= bytes.size()) {
      return Status::DataLoss("truncated field tag");
    }
    auto tag = static_cast<ValueType>(bytes[(*offset)++]);
    switch (tag) {
      case ValueType::kInt64: {
        uint64_t v = 0;
        if (!GetU64(bytes, offset, &v)) {
          return Status::DataLoss("truncated int64 field");
        }
        record.emplace_back(static_cast<int64_t>(v));
        break;
      }
      case ValueType::kDouble: {
        uint64_t bits = 0;
        if (!GetU64(bytes, offset, &bits)) {
          return Status::DataLoss("truncated double field");
        }
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        record.emplace_back(d);
        break;
      }
      case ValueType::kString: {
        uint32_t len = 0;
        if (!GetU32(bytes, offset, &len) || *offset + len > bytes.size()) {
          return Status::DataLoss("truncated string field");
        }
        record.emplace_back(std::string(
            reinterpret_cast<const char*>(bytes.data() + *offset), len));
        *offset += len;
        break;
      }
      default:
        return Status::DataLoss("unknown value tag " +
                                std::to_string(static_cast<int>(tag)));
    }
  }
  return record;
}

std::vector<uint8_t> SerializeRecords(const std::vector<Record>& records) {
  std::vector<uint8_t> out;
  PutU64(records.size(), &out);
  for (const Record& r : records) SerializeRecord(r, &out);
  return out;
}

Result<std::vector<Record>> DeserializeRecords(
    const std::vector<uint8_t>& bytes) {
  size_t offset = 0;
  uint64_t count = 0;
  if (!GetU64(bytes, &offset, &count)) {
    return Status::DataLoss("truncated records header");
  }
  std::vector<Record> records;
  records.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    FLINKLESS_ASSIGN_OR_RETURN(Record r, DeserializeRecord(bytes, &offset));
    records.push_back(std::move(r));
  }
  if (offset != bytes.size()) {
    return Status::DataLoss("trailing bytes after records");
  }
  return records;
}

uint64_t SerializedSize(const std::vector<Record>& records) {
  uint64_t size = 8;  // count header
  for (const Record& r : records) {
    size += 4;  // field count
    for (const Value& v : r) {
      size += 1;  // tag
      switch (v.type()) {
        case ValueType::kInt64:
        case ValueType::kDouble:
          size += 8;
          break;
        case ValueType::kString:
          size += 4 + v.AsString().size();
          break;
      }
    }
  }
  return size;
}

}  // namespace flinkless::dataflow
