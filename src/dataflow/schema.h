// Schema: named, typed columns of a dataset. Used for plan explanation and
// for validating records entering the engine through sources.

#ifndef FLINKLESS_DATAFLOW_SCHEMA_H_
#define FLINKLESS_DATAFLOW_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dataflow/record.h"

namespace flinkless::dataflow {

/// One column of a schema.
struct Field {
  std::string name;
  ValueType type = ValueType::kInt64;
};

/// Ordered list of fields.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  /// Builder convenience: Schema::Of({{"vertex", kInt64}, {"rank", kDouble}}).
  static Schema Of(std::initializer_list<Field> fields) {
    return Schema(std::vector<Field>(fields));
  }

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column named `name`, or -1 when absent.
  int IndexOf(const std::string& name) const;

  /// Checks arity and per-column type of `record`.
  Status Validate(const Record& record) const;

  /// "(vertex: int64, rank: double)".
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::vector<Field> fields_;
};

}  // namespace flinkless::dataflow

#endif  // FLINKLESS_DATAFLOW_SCHEMA_H_
