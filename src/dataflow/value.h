// Value: one field of a record.
//
// The engine is dynamically typed at the record level, like a database row:
// a Value is an int64, a double, or a string. Keeping the model dynamic lets
// one executor serve every dataflow program (Connected Components ships
// (vertex, label) pairs, PageRank ships (vertex, rank) pairs, WordCount ships
// (word, count) pairs) without template instantiation per program.

#ifndef FLINKLESS_DATAFLOW_VALUE_H_
#define FLINKLESS_DATAFLOW_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace flinkless::dataflow {

/// Runtime type tag of a Value.
enum class ValueType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

/// Stable name for a value type ("int64", "double", "string").
std::string ValueTypeName(ValueType type);

/// A dynamically typed field. Equality and ordering are defined across all
/// values: values of different types order by type tag, values of the same
/// type by their natural order (this makes test output deterministic; the
/// engine itself never compares across types).
class Value {
 public:
  /// Defaults to int64 0.
  Value() : v_(int64_t{0}) {}
  Value(int64_t v) : v_(v) {}                   // NOLINT(runtime/explicit)
  Value(int v) : v_(static_cast<int64_t>(v)) {}  // NOLINT(runtime/explicit)
  Value(double v) : v_(v) {}                    // NOLINT(runtime/explicit)
  Value(std::string v) : v_(std::move(v)) {}    // NOLINT(runtime/explicit)
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT(runtime/explicit)

  ValueType type() const { return static_cast<ValueType>(v_.index()); }

  bool is_int64() const { return type() == ValueType::kInt64; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }

  /// Accessors abort on type mismatch (programming error — operator key
  /// columns are statically known per dataflow).
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Numeric value as double: widens int64, passes double through, aborts on
  /// string.
  double AsNumeric() const;

  /// Order- and equality-respecting hash.
  uint64_t Hash() const;

  /// Display form ("42", "0.25", "\"abc\"").
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.v_ == b.v_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b);

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace flinkless::dataflow

#endif  // FLINKLESS_DATAFLOW_VALUE_H_
