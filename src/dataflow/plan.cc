#include "dataflow/plan.h"

#include "common/logging.h"

namespace flinkless::dataflow {

std::string OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kSource:
      return "Source";
    case OpKind::kMap:
      return "Map";
    case OpKind::kFlatMap:
      return "FlatMap";
    case OpKind::kFilter:
      return "Filter";
    case OpKind::kProject:
      return "Project";
    case OpKind::kReduceByKey:
      return "ReduceByKey";
    case OpKind::kGroupReduceByKey:
      return "GroupReduce";
    case OpKind::kJoin:
      return "Join";
    case OpKind::kCoGroup:
      return "CoGroup";
    case OpKind::kCross:
      return "Cross";
    case OpKind::kUnion:
      return "Union";
    case OpKind::kDistinct:
      return "Distinct";
  }
  return "?";
}

NodeId Plan::Add(PlanNode node) {
  node.id = static_cast<NodeId>(nodes_.size());
  for (NodeId in : node.inputs) {
    FLINKLESS_CHECK(in >= 0 && in < node.id,
                    "plan node '" << node.name << "' references input " << in
                                  << " which does not precede it");
  }
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

NodeId Plan::Source(const std::string& binding_name) {
  PlanNode n;
  n.kind = OpKind::kSource;
  n.name = binding_name;
  n.source_name = binding_name;
  return Add(std::move(n));
}

NodeId Plan::Map(NodeId input, MapFn fn, const std::string& name) {
  PlanNode n;
  n.kind = OpKind::kMap;
  n.name = name;
  n.inputs = {input};
  n.map_fn = std::move(fn);
  return Add(std::move(n));
}

NodeId Plan::FlatMap(NodeId input, FlatMapFn fn, const std::string& name) {
  PlanNode n;
  n.kind = OpKind::kFlatMap;
  n.name = name;
  n.inputs = {input};
  n.flat_map_fn = std::move(fn);
  return Add(std::move(n));
}

NodeId Plan::Filter(NodeId input, FilterFn fn, const std::string& name) {
  PlanNode n;
  n.kind = OpKind::kFilter;
  n.name = name;
  n.inputs = {input};
  n.filter_fn = std::move(fn);
  return Add(std::move(n));
}

NodeId Plan::Project(NodeId input, std::vector<int> columns,
                     const std::string& name) {
  PlanNode n;
  n.kind = OpKind::kProject;
  n.name = name;
  n.inputs = {input};
  n.project_columns = std::move(columns);
  return Add(std::move(n));
}

NodeId Plan::ReduceByKey(NodeId input, KeyColumns key, CombineFn fn,
                         const std::string& name, bool pre_combine) {
  PlanNode n;
  n.kind = OpKind::kReduceByKey;
  n.name = name;
  n.inputs = {input};
  n.left_key = std::move(key);
  n.combine_fn = std::move(fn);
  n.pre_combine = pre_combine;
  return Add(std::move(n));
}

NodeId Plan::GroupReduceByKey(NodeId input, KeyColumns key, GroupReduceFn fn,
                              const std::string& name) {
  PlanNode n;
  n.kind = OpKind::kGroupReduceByKey;
  n.name = name;
  n.inputs = {input};
  n.left_key = std::move(key);
  n.group_reduce_fn = std::move(fn);
  return Add(std::move(n));
}

NodeId Plan::Join(NodeId left, NodeId right, KeyColumns left_key,
                  KeyColumns right_key, JoinFn fn, const std::string& name) {
  PlanNode n;
  n.kind = OpKind::kJoin;
  n.name = name;
  n.inputs = {left, right};
  n.left_key = std::move(left_key);
  n.right_key = std::move(right_key);
  n.join_fn = std::move(fn);
  return Add(std::move(n));
}

NodeId Plan::CoGroup(NodeId left, NodeId right, KeyColumns left_key,
                     KeyColumns right_key, CoGroupFn fn,
                     const std::string& name) {
  PlanNode n;
  n.kind = OpKind::kCoGroup;
  n.name = name;
  n.inputs = {left, right};
  n.left_key = std::move(left_key);
  n.right_key = std::move(right_key);
  n.cogroup_fn = std::move(fn);
  return Add(std::move(n));
}

NodeId Plan::Cross(NodeId left, NodeId right, JoinFn fn,
                   const std::string& name) {
  PlanNode n;
  n.kind = OpKind::kCross;
  n.name = name;
  n.inputs = {left, right};
  n.join_fn = std::move(fn);
  return Add(std::move(n));
}

NodeId Plan::Union(NodeId left, NodeId right, const std::string& name) {
  PlanNode n;
  n.kind = OpKind::kUnion;
  n.name = name;
  n.inputs = {left, right};
  return Add(std::move(n));
}

NodeId Plan::Distinct(NodeId input, KeyColumns key, const std::string& name) {
  PlanNode n;
  n.kind = OpKind::kDistinct;
  n.name = name;
  n.inputs = {input};
  n.left_key = std::move(key);
  return Add(std::move(n));
}

void Plan::BatchImpl(NodeId node, BatchMapFn fn) {
  FLINKLESS_CHECK(node >= 0 && static_cast<size_t>(node) < nodes_.size(),
                  "BatchImpl on unknown node " << node);
  PlanNode& n = nodes_[node];
  FLINKLESS_CHECK(n.kind == OpKind::kMap || n.kind == OpKind::kFlatMap,
                  "BatchImpl on '" << n.name << "' (" << OpKindName(n.kind)
                                   << "); only Map/FlatMap take one");
  n.batch_map_fn = std::move(fn);
}

void Plan::DeclareReduce(NodeId node, ReduceKind kind, int value_col) {
  FLINKLESS_CHECK(node >= 0 && static_cast<size_t>(node) < nodes_.size(),
                  "DeclareReduce on unknown node " << node);
  PlanNode& n = nodes_[node];
  FLINKLESS_CHECK(n.kind == OpKind::kReduceByKey,
                  "DeclareReduce on '" << n.name << "' ("
                                       << OpKindName(n.kind) << ")");
  FLINKLESS_CHECK(kind != ReduceKind::kNone && value_col >= 0,
                  "DeclareReduce('" << n.name
                                    << "') needs a kind and a value column");
  n.reduce_kind = kind;
  n.reduce_value_col = value_col;
}

void Plan::Output(NodeId node, const std::string& output_name) {
  outputs_.emplace_back(output_name, node);
}

std::vector<std::string> Plan::SourceNames() const {
  std::vector<std::string> names;
  for (const auto& n : nodes_) {
    if (n.kind == OpKind::kSource) names.push_back(n.source_name);
  }
  return names;
}

std::vector<bool> Plan::InvariantNodes(
    const std::vector<std::string>& volatile_bindings) const {
  std::vector<bool> invariant(nodes_.size(), false);
  for (const auto& n : nodes_) {
    if (n.kind == OpKind::kSource) {
      bool is_volatile = false;
      for (const std::string& name : volatile_bindings) {
        if (name == n.source_name) {
          is_volatile = true;
          break;
        }
      }
      invariant[n.id] = !is_volatile;
      continue;
    }
    bool all_invariant = true;
    for (NodeId in : n.inputs) {
      if (!invariant[in]) {
        all_invariant = false;
        break;
      }
    }
    invariant[n.id] = all_invariant;
  }
  return invariant;
}

Status Plan::Validate() const {
  if (outputs_.empty()) {
    return Status::FailedPrecondition("plan declares no outputs");
  }
  for (size_t i = 0; i < outputs_.size(); ++i) {
    auto [name, node] = outputs_[i];
    if (node < 0 || static_cast<size_t>(node) >= nodes_.size()) {
      return Status::OutOfRange("output '" + name + "' references node " +
                                std::to_string(node));
    }
    for (size_t j = i + 1; j < outputs_.size(); ++j) {
      if (outputs_[j].first == name) {
        return Status::AlreadyExists("duplicate output name '" + name + "'");
      }
    }
  }
  for (const auto& n : nodes_) {
    size_t want_inputs =
        (n.kind == OpKind::kSource)                                    ? 0
        : (n.kind == OpKind::kJoin || n.kind == OpKind::kCoGroup ||
           n.kind == OpKind::kCross || n.kind == OpKind::kUnion)       ? 2
                                                                       : 1;
    if (n.inputs.size() != want_inputs) {
      return Status::FailedPrecondition(
          "node '" + n.name + "' (" + OpKindName(n.kind) + ") has " +
          std::to_string(n.inputs.size()) + " inputs, expected " +
          std::to_string(want_inputs));
    }
    switch (n.kind) {
      case OpKind::kMap:
        if (!n.map_fn) {
          return Status::FailedPrecondition("Map '" + n.name + "' has no UDF");
        }
        break;
      case OpKind::kFlatMap:
        if (!n.flat_map_fn) {
          return Status::FailedPrecondition("FlatMap '" + n.name +
                                            "' has no UDF");
        }
        break;
      case OpKind::kFilter:
        if (!n.filter_fn) {
          return Status::FailedPrecondition("Filter '" + n.name +
                                            "' has no UDF");
        }
        break;
      case OpKind::kReduceByKey:
        if (!n.combine_fn || n.left_key.empty()) {
          return Status::FailedPrecondition("ReduceByKey '" + n.name +
                                            "' needs a key and a combiner");
        }
        break;
      case OpKind::kGroupReduceByKey:
        if (!n.group_reduce_fn || n.left_key.empty()) {
          return Status::FailedPrecondition("GroupReduce '" + n.name +
                                            "' needs a key and a UDF");
        }
        break;
      case OpKind::kJoin:
        if (!n.join_fn || n.left_key.empty() ||
            n.left_key.size() != n.right_key.size()) {
          return Status::FailedPrecondition(
              "Join '" + n.name + "' needs a UDF and matching key arities");
        }
        break;
      case OpKind::kCoGroup:
        if (!n.cogroup_fn || n.left_key.empty() ||
            n.left_key.size() != n.right_key.size()) {
          return Status::FailedPrecondition(
              "CoGroup '" + n.name + "' needs a UDF and matching key arities");
        }
        break;
      case OpKind::kCross:
        if (!n.join_fn) {
          return Status::FailedPrecondition("Cross '" + n.name +
                                            "' has no UDF");
        }
        break;
      case OpKind::kDistinct:
        if (n.left_key.empty()) {
          return Status::FailedPrecondition("Distinct '" + n.name +
                                            "' needs a key");
        }
        break;
      case OpKind::kProject:
      case OpKind::kUnion:
      case OpKind::kSource:
        break;
    }
  }
  return Status::OK();
}

std::string Plan::Explain() const {
  std::string out;
  for (const auto& n : nodes_) {
    out += "  [" + std::to_string(n.id) + "] " + OpKindName(n.kind) + " '" +
           n.name + "'";
    if (!n.inputs.empty()) {
      out += " <- (";
      for (size_t i = 0; i < n.inputs.size(); ++i) {
        if (i) out += ", ";
        out += std::to_string(n.inputs[i]);
      }
      out += ")";
    }
    if (!n.left_key.empty()) {
      out += " key=[";
      for (size_t i = 0; i < n.left_key.size(); ++i) {
        if (i) out += ",";
        out += std::to_string(n.left_key[i]);
      }
      if (!n.right_key.empty()) {
        out += "]=[";
        for (size_t i = 0; i < n.right_key.size(); ++i) {
          if (i) out += ",";
          out += std::to_string(n.right_key[i]);
        }
      }
      out += "]";
    }
    out += "\n";
  }
  for (const auto& [name, node] : outputs_) {
    out += "  output '" + name + "' = [" + std::to_string(node) + "]\n";
  }
  return out;
}

}  // namespace flinkless::dataflow
