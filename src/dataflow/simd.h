// SIMD kernel layer for the columnar hot loops (DESIGN.md §15).
//
// PR 6 turned the shuffle/join/reduce hot path into branch-light loops over
// contiguous int64/uint32 arrays; this header gives those loops explicit
// vector implementations behind runtime CPU dispatch. Three tiers — AVX2,
// SSE4.2, portable scalar — share one Kernels function-pointer table, and
// every tier is bit-identical by construction:
//
//  * all kernels are pure integer math (the hash chain, offset deltas,
//    prefix sums, int64 min/max and wrapping sums), so lane width cannot
//    change a result — only wall-clock;
//  * double columns are never folded by a SIMD kernel. Floating-point sums
//    keep their sequential arrival-order association on every tier (no
//    fast-math reassociation), which is what preserves the repo's
//    byte-identity invariant across simd_level × thread count × failures.
//
// Dispatch is process-wide (one atomic table pointer): index builds and
// serde run outside any Executor (spill unspill, message-log blocks), so a
// per-executor table would leave those sites ambiguous. Since every tier
// produces identical bytes, the level is a pure wall-clock knob and a
// process-wide setting cannot break determinism. Selection order:
//
//   FLINKLESS_SIMD env (off|scalar|sse4|sse4.2|avx2|max — CI forces the
//   scalar tail paths with it)  >  ApplySimdLevel/SetLevel requests
//   (ExecOptions::simd_level, --simd)  >  CPU detection (the ceiling for
//   everything).

#ifndef FLINKLESS_DATAFLOW_SIMD_H_
#define FLINKLESS_DATAFLOW_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace flinkless::dataflow::simd {

/// A resolved kernel tier. Ordered: higher levels strictly extend the
/// instruction set of lower ones.
enum class Level : int {
  kScalar = 0,
  kSSE42 = 1,
  kAVX2 = 2,
};

/// A *requested* tier, the vocabulary of ExecOptions::simd_level, the
/// demos' --simd flag, and the FLINKLESS_SIMD env var. kAuto leaves the
/// process-wide dispatch untouched; kMax asks for the best supported level.
enum class SimdLevel : int {
  kAuto = -1,
  kOff = 0,
  kSse42 = 1,
  kAvx2 = 2,
  kMax = 3,
};

/// One tier's kernel table. All pointers are always non-null; `level` and
/// `name` identify the tier for logs/benches.
struct Kernels {
  Level level;
  const char* name;

  /// out[i] = HashCombine(0x2545f4914f6cdd1d, Mix64(uint64(keys[i]))) —
  /// bit-identical to HashKey on a single-int64-key record, the row-hash
  /// chain FlatKeyIndex/shuffle partitioning cache.
  void (*hash_key64)(const int64_t* keys, size_t n, uint64_t* out);

  /// lens[i] = offsets[i + 1] - offsets[i] for i in [0, n) — string-column
  /// serde: (rows + 1) offsets to per-row lengths.
  void (*delta_u32)(const uint32_t* offsets, size_t n, uint32_t* lens);

  /// Widened sum of n uint32 values (overflow-free up to 2^32 values).
  uint64_t (*sum_u32)(const uint32_t* values, size_t n);

  /// Inclusive prefix sum: out[i] = values[0] + ... + values[i], wrapping
  /// uint32 (callers bound the true total first via sum_u32).
  void (*prefix_sum_u32)(const uint32_t* values, size_t n, uint32_t* out);

  /// Fold of n >= 1 int64 values. Sum wraps (two's complement), so it is
  /// associative and lane order cannot change the result.
  int64_t (*min_i64)(const int64_t* values, size_t n);
  int64_t (*max_i64)(const int64_t* values, size_t n);
  int64_t (*sum_i64)(const int64_t* values, size_t n);

  /// True when values[0..n) == value (vacuously true for n == 0).
  bool (*all_equal_i64)(const int64_t* values, size_t n, int64_t value);

  /// Open-addressing probe window: index of the first negative entry in
  /// slots[0..probe_width), or probe_width when none. The caller guarantees
  /// probe_width readable entries (FlatKeyIndex tables are >= 16 buckets).
  int (*first_empty)(const int32_t* slots);

  /// Width of first_empty's window (8 for AVX2, 4 for SSE4.2, 1 scalar).
  int probe_width;
};

/// Best level this CPU supports (the ceiling for every request).
Level Detect();

/// Is `level` runnable on this CPU?
bool Supported(Level level);

/// Sets the process-wide active tier to min(requested, env override,
/// Detect()) and returns the level now active. Thread-safe; callers invoke
/// it from orchestration code (Executor construction, demo startup).
Level SetLevel(Level requested);

/// The tier kernel calls currently dispatch to.
Level ActiveLevel();
const Kernels& ActiveKernels();

/// The table of a specific tier, bypassing the global — bench/test A/B.
/// The caller must ensure Supported(level) before executing its kernels.
const Kernels& KernelsFor(Level level);

/// Stable display name ("scalar", "sse4.2", "avx2").
const char* LevelName(Level level);

/// Parses the request vocabulary: auto | off | scalar | sse4 | sse4.2 |
/// avx2 | max. False on anything else (*out untouched).
bool ParseSimdLevel(std::string_view text, SimdLevel* out);

/// Applies a request to the process-wide dispatch: kAuto is a no-op (the
/// env override / detected default stays), everything else maps onto
/// SetLevel. Returns the level now active.
Level ApplySimdLevel(SimdLevel request);

/// True when FLINKLESS_SIMD is set to a valid level (it then caps every
/// SetLevel/ApplySimdLevel request).
bool EnvOverrideActive();

}  // namespace flinkless::dataflow::simd

#endif  // FLINKLESS_DATAFLOW_SIMD_H_
