#include "dataflow/columnar.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>

#include "common/hash.h"
#include "common/logging.h"
#include "dataflow/simd.h"

namespace flinkless::dataflow {

bool InferBatchSchema(const std::vector<Record>& records,
                      BatchSchema* schema) {
  schema->clear();
  if (records.empty()) return true;
  schema->reserve(records[0].size());
  for (const Value& v : records[0]) schema->push_back(v.type());
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i].size() != schema->size()) return false;
    for (size_t c = 0; c < schema->size(); ++c) {
      if (records[i][c].type() != (*schema)[c]) return false;
    }
  }
  return true;
}

bool ExtractKey64(const std::vector<Record>& records, const KeyColumns& key,
                  std::vector<int64_t>* out) {
  if (key.size() != 1 || key[0] < 0) return false;
  const int col = key[0];
  out->clear();
  out->reserve(records.size());
  for (const Record& r : records) {
    if (static_cast<size_t>(col) >= r.size() || !r[col].is_int64()) {
      return false;
    }
    out->push_back(r[col].AsInt64());
  }
  return true;
}

ColumnarBatch::ColumnarBatch(BatchSchema schema)
    : schema_(std::move(schema)), columns_(schema_.size()) {
  for (size_t c = 0; c < schema_.size(); ++c) {
    if (schema_[c] == ValueType::kString) columns_[c].offsets.push_back(0);
  }
}

bool ColumnarBatch::FromRecords(const std::vector<Record>& records,
                                ColumnarBatch* out) {
  BatchSchema schema;
  if (!InferBatchSchema(records, &schema)) return false;
  *out = FromRecordsUnchecked(records, std::move(schema));
  return true;
}

ColumnarBatch ColumnarBatch::FromRecordsUnchecked(
    const std::vector<Record>& records, BatchSchema schema) {
  ColumnarBatch out{std::move(schema)};
  out.num_rows_ = records.size();
  const size_t ncols = out.schema_.size();
  bool has_strings = false;
  for (size_t c = 0; c < ncols; ++c) {
    Column& col = out.columns_[c];
    switch (out.schema_[c]) {
      case ValueType::kInt64:
        col.i64.reserve(records.size());
        break;
      case ValueType::kDouble:
        col.f64.reserve(records.size());
        break;
      case ValueType::kString:
        col.offsets.reserve(records.size() + 1);
        has_strings = true;
        break;
    }
  }
  if (has_strings) {
    // Size the arenas up front so the fill pass never reallocates them.
    for (size_t c = 0; c < ncols; ++c) {
      if (out.schema_[c] != ValueType::kString) continue;
      size_t total = 0;
      for (const Record& r : records) total += r[c].AsString().size();
      FLINKLESS_CHECK(total <= std::numeric_limits<uint32_t>::max(),
                      "string column overflows the 4 GiB arena");
      out.columns_[c].arena.reserve(total);
    }
  }
  // Row-major fill: each record is touched once, in order.
  for (const Record& r : records) {
    for (size_t c = 0; c < ncols; ++c) {
      Column& col = out.columns_[c];
      switch (out.schema_[c]) {
        case ValueType::kInt64:
          col.i64.push_back(r[c].AsInt64());
          break;
        case ValueType::kDouble:
          col.f64.push_back(r[c].AsDouble());
          break;
        case ValueType::kString:
          col.arena.append(r[c].AsString());
          col.offsets.push_back(static_cast<uint32_t>(col.arena.size()));
          break;
      }
    }
  }
  return out;
}

void ColumnarBatch::AppendRow(const Record& record) {
  FLINKLESS_CHECK(record.size() == schema_.size(),
                  "AppendRow arity " << record.size() << " != schema arity "
                                     << schema_.size());
  for (size_t c = 0; c < schema_.size(); ++c) {
    Column& col = columns_[c];
    switch (schema_[c]) {
      case ValueType::kInt64:
        col.i64.push_back(record[c].AsInt64());
        break;
      case ValueType::kDouble:
        col.f64.push_back(record[c].AsDouble());
        break;
      case ValueType::kString:
        col.arena.append(record[c].AsString());
        FLINKLESS_CHECK(
            col.arena.size() <= std::numeric_limits<uint32_t>::max(),
            "string column overflows the 4 GiB arena");
        col.offsets.push_back(static_cast<uint32_t>(col.arena.size()));
        break;
    }
  }
  ++num_rows_;
}

void ColumnarBatch::Reset(BatchSchema schema) {
  schema_ = std::move(schema);
  columns_.assign(schema_.size(), Column{});
  num_rows_ = 0;
  for (size_t c = 0; c < schema_.size(); ++c) {
    if (schema_[c] == ValueType::kString) columns_[c].offsets.push_back(0);
  }
}

std::vector<int64_t>& ColumnarBatch::MutableInt64Column(size_t col) {
  FLINKLESS_CHECK(col < schema_.size() && schema_[col] == ValueType::kInt64,
                  "MutableInt64Column(" << col << ") on a non-int64 column");
  return columns_[col].i64;
}

std::vector<double>& ColumnarBatch::MutableDoubleColumn(size_t col) {
  FLINKLESS_CHECK(col < schema_.size() && schema_[col] == ValueType::kDouble,
                  "MutableDoubleColumn(" << col << ") on a non-double column");
  return columns_[col].f64;
}

void ColumnarBatch::FinishRows(size_t rows) {
  for (size_t c = 0; c < schema_.size(); ++c) {
    const Column& col = columns_[c];
    switch (schema_[c]) {
      case ValueType::kInt64:
        FLINKLESS_CHECK(col.i64.size() == rows,
                        "batch UDF filled int64 column " << c << " with "
                            << col.i64.size() << " rows, expected " << rows);
        break;
      case ValueType::kDouble:
        FLINKLESS_CHECK(col.f64.size() == rows,
                        "batch UDF filled double column " << c << " with "
                            << col.f64.size() << " rows, expected " << rows);
        break;
      case ValueType::kString:
        FLINKLESS_CHECK(
            col.offsets.size() == rows + 1 &&
                col.offsets.back() == col.arena.size(),
            "batch UDF left string column " << c << " inconsistent");
        break;
    }
  }
  num_rows_ = rows;
}

Record ColumnarBatch::RowAsRecord(size_t row) const {
  FLINKLESS_CHECK(row < num_rows_, "row " << row << " out of range");
  Record r;
  r.reserve(schema_.size());
  for (size_t c = 0; c < schema_.size(); ++c) {
    const Column& col = columns_[c];
    switch (schema_[c]) {
      case ValueType::kInt64:
        r.emplace_back(col.i64[row]);
        break;
      case ValueType::kDouble:
        r.emplace_back(col.f64[row]);
        break;
      case ValueType::kString:
        r.emplace_back(std::string(
            col.arena.data() + col.offsets[row],
            col.offsets[row + 1] - col.offsets[row]));
        break;
    }
  }
  return r;
}

std::vector<Record> ColumnarBatch::ToRecords() const {
  std::vector<Record> out;
  out.reserve(num_rows_);
  for (size_t row = 0; row < num_rows_; ++row) {
    out.push_back(RowAsRecord(row));
  }
  return out;
}

const std::vector<int64_t>& ColumnarBatch::Int64Column(size_t col) const {
  FLINKLESS_CHECK(col < schema_.size() && schema_[col] == ValueType::kInt64,
                  "Int64Column(" << col << ") on a non-int64 column");
  return columns_[col].i64;
}

const std::vector<double>& ColumnarBatch::DoubleColumn(size_t col) const {
  FLINKLESS_CHECK(col < schema_.size() && schema_[col] == ValueType::kDouble,
                  "DoubleColumn(" << col << ") on a non-double column");
  return columns_[col].f64;
}

std::string_view ColumnarBatch::StringAt(size_t col, size_t row) const {
  FLINKLESS_CHECK(col < schema_.size() && schema_[col] == ValueType::kString,
                  "StringAt(" << col << ") on a non-string column");
  FLINKLESS_CHECK(row < num_rows_, "row " << row << " out of range");
  const Column& c = columns_[col];
  return std::string_view(c.arena.data() + c.offsets[row],
                          c.offsets[row + 1] - c.offsets[row]);
}

uint64_t ColumnarBatch::HashRowKey(size_t row, const KeyColumns& key) const {
  FLINKLESS_CHECK(row < num_rows_, "row " << row << " out of range");
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (int c : key) {
    FLINKLESS_CHECK(c >= 0 && static_cast<size_t>(c) < schema_.size(),
                    "key column " << c << " out of range for batch");
    switch (schema_[c]) {
      case ValueType::kInt64:
        h = HashCombine(h, Mix64(static_cast<uint64_t>(columns_[c].i64[row])));
        break;
      case ValueType::kDouble:
        h = HashCombine(h, HashDouble(columns_[c].f64[row]));
        break;
      case ValueType::kString:
        h = HashCombine(h, HashString(StringAt(c, row)));
        break;
    }
  }
  return h;
}

namespace {

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

bool GetU32(const std::vector<uint8_t>& bytes, size_t* offset, uint32_t* v) {
  if (*offset + 4 > bytes.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(bytes[*offset + i]) << (8 * i);
  }
  *offset += 4;
  return true;
}

bool GetU64(const std::vector<uint8_t>& bytes, size_t* offset, uint64_t* v) {
  if (*offset + 8 > bytes.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(bytes[*offset + i]) << (8 * i);
  }
  *offset += 8;
  return true;
}

// Whole-column copies for the fixed-width payloads. The wire format is
// little-endian, so on LE hosts a column is one memcpy; the BE fallback
// keeps the format portable.
template <typename T>
void PutFixedColumn(const std::vector<T>& col, std::vector<uint8_t>* out) {
  static_assert(sizeof(T) == 8);
  if constexpr (std::endian::native == std::endian::little) {
    const auto* p = reinterpret_cast<const uint8_t*>(col.data());
    out->insert(out->end(), p, p + col.size() * 8);
  } else {
    for (const T& v : col) {
      uint64_t bits;
      std::memcpy(&bits, &v, sizeof(bits));
      PutU64(bits, out);
    }
  }
}

template <typename T>
void GetFixedColumn(const std::vector<uint8_t>& bytes, size_t* offset,
                    size_t rows, std::vector<T>* col) {
  static_assert(sizeof(T) == 8);
  // Caller has bounds-checked `rows * 8` bytes remain.
  col->resize(rows);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(col->data(), bytes.data() + *offset, rows * 8);
    *offset += rows * 8;
  } else {
    for (size_t i = 0; i < rows; ++i) {
      uint64_t bits = 0;
      GetU64(bytes, offset, &bits);
      std::memcpy(&(*col)[i], &bits, sizeof(bits));
    }
  }
}

// Bulk little-endian copies of a u32 array (per-value fallback on BE).
void PutU32Array(const std::vector<uint32_t>& values,
                 std::vector<uint8_t>* out) {
  if constexpr (std::endian::native == std::endian::little) {
    const auto* p = reinterpret_cast<const uint8_t*>(values.data());
    out->insert(out->end(), p, p + values.size() * 4);
  } else {
    for (uint32_t v : values) PutU32(v, out);
  }
}

void GetU32Array(const std::vector<uint8_t>& bytes, size_t* offset,
                 std::vector<uint32_t>* values) {
  // Caller has bounds-checked `values->size() * 4` bytes remain.
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(values->data(), bytes.data() + *offset, values->size() * 4);
    *offset += values->size() * 4;
  } else {
    for (uint32_t& v : *values) GetU32(bytes, offset, &v);
  }
}

}  // namespace

void ColumnarBatch::SerializeTo(std::vector<uint8_t>* out) const {
  out->reserve(out->size() + SerializedBytes());
  PutU64(num_rows_, out);
  std::vector<uint32_t> lens;  // delta scratch, shared across string columns
  for (size_t c = 0; c < schema_.size(); ++c) {
    const Column& col = columns_[c];
    switch (schema_[c]) {
      case ValueType::kInt64:
        PutFixedColumn(col.i64, out);
        break;
      case ValueType::kDouble:
        PutFixedColumn(col.f64, out);
        break;
      case ValueType::kString:
        if (num_rows_ > 0) {
          lens.resize(num_rows_);
          simd::ActiveKernels().delta_u32(col.offsets.data(), num_rows_,
                                          lens.data());
          PutU32Array(lens, out);
        }
        out->insert(out->end(), col.arena.begin(), col.arena.end());
        break;
    }
  }
}

Result<ColumnarBatch> ColumnarBatch::Deserialize(
    const std::vector<uint8_t>& bytes, size_t* offset,
    const BatchSchema& schema) {
  uint64_t rows = 0;
  if (!GetU64(bytes, offset, &rows)) {
    return Status::DataLoss("columnar batch: truncated row count");
  }
  // Cheap sanity bound: a fixed-width column needs 8 bytes per row, a
  // string column at least 4, so `rows` can never exceed the remaining
  // bytes when any column exists.
  if (!schema.empty() && rows > bytes.size() - *offset) {
    return Status::DataLoss("columnar batch: implausible row count");
  }
  ColumnarBatch batch{BatchSchema(schema)};
  batch.num_rows_ = static_cast<size_t>(rows);
  for (size_t c = 0; c < schema.size(); ++c) {
    Column& col = batch.columns_[c];
    switch (schema[c]) {
      case ValueType::kInt64: {
        if (*offset + rows * 8 > bytes.size()) {
          return Status::DataLoss("columnar batch: truncated int64 column");
        }
        GetFixedColumn(bytes, offset, static_cast<size_t>(rows), &col.i64);
        break;
      }
      case ValueType::kDouble: {
        if (*offset + rows * 8 > bytes.size()) {
          return Status::DataLoss("columnar batch: truncated double column");
        }
        GetFixedColumn(bytes, offset, static_cast<size_t>(rows), &col.f64);
        break;
      }
      case ValueType::kString: {
        // One bounds check for the whole length array, then kernel-driven
        // sum (overflow test on the true u64 total — every prefix of
        // non-negative lengths is bounded by it) and prefix-sum into the
        // offsets layout.
        if (rows > (bytes.size() - *offset) / 4) {
          return Status::DataLoss("columnar batch: truncated string lengths");
        }
        std::vector<uint32_t> lens(static_cast<size_t>(rows));
        if (rows > 0) GetU32Array(bytes, offset, &lens);
        const simd::Kernels& kernels = simd::ActiveKernels();
        const uint64_t total = kernels.sum_u32(lens.data(), lens.size());
        if (total > std::numeric_limits<uint32_t>::max()) {
          return Status::DataLoss("columnar batch: string arena overflow");
        }
        col.offsets.resize(static_cast<size_t>(rows) + 1);
        col.offsets[0] = 0;
        kernels.prefix_sum_u32(lens.data(), lens.size(),
                               col.offsets.data() + 1);
        if (*offset + total > bytes.size()) {
          return Status::DataLoss("columnar batch: truncated string arena");
        }
        col.arena.assign(
            reinterpret_cast<const char*>(bytes.data() + *offset),
            static_cast<size_t>(total));
        *offset += static_cast<size_t>(total);
        break;
      }
      default:
        return Status::DataLoss("columnar batch: unknown column tag " +
                                std::to_string(static_cast<int>(schema[c])));
    }
  }
  return batch;
}

uint64_t ColumnarBatch::SerializedBytes() const {
  uint64_t size = 8;  // row count
  for (size_t c = 0; c < schema_.size(); ++c) {
    switch (schema_[c]) {
      case ValueType::kInt64:
      case ValueType::kDouble:
        size += 8 * static_cast<uint64_t>(num_rows_);
        break;
      case ValueType::kString:
        size += 4 * static_cast<uint64_t>(num_rows_) +
                columns_[c].arena.size();
        break;
    }
  }
  return size;
}

bool operator==(const ColumnarBatch& a, const ColumnarBatch& b) {
  if (a.schema_ != b.schema_ || a.num_rows_ != b.num_rows_) return false;
  for (size_t c = 0; c < a.schema_.size(); ++c) {
    const ColumnarBatch::Column& ca = a.columns_[c];
    const ColumnarBatch::Column& cb = b.columns_[c];
    switch (a.schema_[c]) {
      case ValueType::kInt64:
        if (ca.i64 != cb.i64) return false;
        break;
      case ValueType::kDouble:
        // Bit-exact (the serde round-trips bit patterns, so -0.0 and NaN
        // payloads must compare faithfully).
        if (std::memcmp(ca.f64.data(), cb.f64.data(),
                        ca.f64.size() * sizeof(double)) != 0) {
          return false;
        }
        break;
      case ValueType::kString:
        if (ca.offsets != cb.offsets || ca.arena != cb.arena) return false;
        break;
    }
  }
  return true;
}

void FlatKeyIndex::Build(const std::vector<Record>& rows,
                         const KeyColumns& key) {
  BuildWithHashes(rows, key, {});
}

void FlatKeyIndex::BuildWithHashes(const std::vector<Record>& rows,
                                   const KeyColumns& key,
                                   std::vector<uint64_t> hashes) {
  FLINKLESS_CHECK(rows.size() < static_cast<size_t>(
                                    std::numeric_limits<int32_t>::max()),
                  "partition too large for 32-bit row ids");
  rows_ = &rows;
  key_ = key;
  const size_t n = rows.size();
  hash_.resize(n);
  next_.assign(n, -1);
  tail_.resize(n);
  heads_.clear();

  // Single-column int64 fast path: keys and comparisons run off a flat
  // array instead of the Value variant.
  use_key64_ = key.size() == 1;
  if (use_key64_) {
    key64_.resize(n);
    const int col = key[0];
    for (size_t i = 0; i < n; ++i) {
      if (static_cast<size_t>(col) >= rows[i].size() ||
          !rows[i][col].is_int64()) {
        use_key64_ = false;
        break;
      }
      key64_[i] = rows[i][col].AsInt64();
    }
  }
  if (hashes.size() == n) {
    // Adopted hashes (spilled-entry rebuild): skip the hash pass entirely.
    hash_ = std::move(hashes);
  } else if (use_key64_) {
    // Kernel stripe — bit-identical to the scalar HashCombine/Mix64 chain.
    simd::ActiveKernels().hash_key64(key64_.data(), n, hash_.data());
  } else {
    for (size_t i = 0; i < n; ++i) hash_[i] = HashKey(rows[i], key);
  }

  size_t cap = 16;
  while (cap < 2 * n) cap <<= 1;
  buckets_.assign(cap, -1);
  mask_ = cap - 1;

  for (size_t i = 0; i < n; ++i) {
    const uint64_t h = hash_[i];
    uint64_t b = h & mask_;
    for (;;) {
      const int32_t head = buckets_[b];
      if (head < 0) {
        buckets_[b] = static_cast<int32_t>(i);
        heads_.push_back(static_cast<int32_t>(i));
        tail_[i] = static_cast<int32_t>(i);
        break;
      }
      const bool same =
          hash_[head] == h &&
          (use_key64_ ? key64_[head] == key64_[i]
                      : KeysEqual(rows[head], key, rows[i], key));
      if (same) {
        next_[tail_[head]] = static_cast<int32_t>(i);
        tail_[head] = static_cast<int32_t>(i);
        break;
      }
      b = (b + 1) & mask_;
    }
  }
}

int32_t FlatKeyIndex::FindFirst(const Record& probe,
                                const KeyColumns& probe_key,
                                uint64_t probe_hash) const {
  if (buckets_.empty()) return -1;
  const bool probe64 = use_key64_ && probe_key.size() == 1 &&
                       static_cast<size_t>(probe_key[0]) < probe.size() &&
                       probe[probe_key[0]].is_int64();
  const int64_t probe_val = probe64 ? probe[probe_key[0]].AsInt64() : 0;
  uint64_t b = probe_hash & mask_;
  for (;;) {
    const int32_t head = buckets_[b];
    if (head < 0) return -1;
    if (hash_[head] == probe_hash) {
      const bool match =
          probe64 ? key64_[head] == probe_val
                  : KeysEqual((*rows_)[head], key_, probe, probe_key);
      if (match) return head;
    }
    b = (b + 1) & mask_;
  }
}

void FlatKeyIndex::FindFirstStripe(const int64_t* keys,
                                   const uint64_t* hashes, size_t n,
                                   int32_t* out) const {
  FLINKLESS_CHECK(use_key64_, "FindFirstStripe on a non-key64 index");
  if (buckets_.empty()) {
    std::fill(out, out + n, -1);
    return;
  }
  const simd::Kernels& kernels = simd::ActiveKernels();
  const uint64_t w = static_cast<uint64_t>(kernels.probe_width);
  const uint64_t cap = buckets_.size();
  for (size_t i = 0; i < n; ++i) {
    const uint64_t h = hashes[i];
    const int64_t probe = keys[i];
    uint64_t b = h & mask_;
    int32_t found = -1;
    for (;;) {
      if (b + w <= cap) {
        // Scan a whole window: the kernel locates the first empty bucket,
        // and only occupied slots before it need the hash/key compare.
        const int empty = kernels.first_empty(&buckets_[b]);
        bool done = false;
        for (int j = 0; j < empty; ++j) {
          const int32_t head = buckets_[b + j];
          if (hash_[head] == h && key64_[head] == probe) {
            found = head;
            done = true;
            break;
          }
        }
        if (done || empty < kernels.probe_width) break;
        b = (b + w) & mask_;
      } else {
        // The window would run past the table end; finish this probe with
        // the per-bucket wrap loop (identical to FindFirst).
        for (;;) {
          const int32_t head = buckets_[b];
          if (head < 0) break;
          if (hash_[head] == h && key64_[head] == probe) {
            found = head;
            break;
          }
          b = (b + 1) & mask_;
        }
        break;
      }
    }
    out[i] = found;
  }
}

}  // namespace flinkless::dataflow
