// Columnar batch execution support (DESIGN.md §12).
//
// Record-at-a-time execution over boxed Value variants is what kept the
// thread-sweep curve flat: every ExtractKey allocates a Record, every
// unordered_map insert allocates a node, and every spill blob frames each
// record separately. This header is the batch-side replacement:
//
//  * ColumnarBatch — per-partition contiguous typed arrays (int64_t/double
//    columns plus an arena/offset layout for strings) with schema-driven
//    construction from and conversion back to the Record API. Used as the
//    storage representation of spill blobs (dataset serde v2) and as the
//    round-trip bridge the tests pin down; the Record view remains the
//    fallback for UDF-style operators.
//  * FlatKeyIndex — an open-addressing hash index over a partition's rows,
//    keyed on key columns in place (no ExtractKey allocation, no map
//    nodes). Groups are arrival-order chains of row ids, so probing yields
//    exactly the record order the legacy JoinIndex / GroupByKey paths
//    produced — byte-identity with the record path is structural, not
//    incidental.
//
// Determinism: every structure here is a pure function of the input rows
// (hash seeds are fixed, insertion order is partition order), so outputs
// are identical at any thread count — threads only decide which partition's
// index is built when.

#ifndef FLINKLESS_DATAFLOW_COLUMNAR_H_
#define FLINKLESS_DATAFLOW_COLUMNAR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dataflow/record.h"

namespace flinkless::dataflow {

/// Type-only schema of a columnar batch: the per-column ValueType tags.
/// (The named Schema in schema.h describes sources for humans; batches only
/// need the layout.)
using BatchSchema = std::vector<ValueType>;

/// Infers the common schema of `records`: true when every record has the
/// same arity and per-column types (vacuously true for an empty vector,
/// which yields an empty schema). On false, *schema is unspecified.
bool InferBatchSchema(const std::vector<Record>& records, BatchSchema* schema);

/// Extracts a single-int64-column key projection into a flat array: true
/// when `key` is one column and every record holds an int64 there (the
/// layout every SIMD hash/probe stripe runs on). On false, *out is
/// unspecified. An empty record vector extracts trivially (empty *out).
bool ExtractKey64(const std::vector<Record>& records, const KeyColumns& key,
                  std::vector<int64_t>* out);

/// One partition's records as contiguous typed columns. Fixed-width columns
/// are flat int64_t/double arrays; string columns are a byte arena plus a
/// (rows + 1)-entry offset array.
class ColumnarBatch {
 public:
  ColumnarBatch() = default;

  /// An empty batch with the given layout (for AppendRow filling).
  explicit ColumnarBatch(BatchSchema schema);

  /// Converts `records` into a batch. Returns false when the records do not
  /// share one schema (the caller falls back to the record path).
  static bool FromRecords(const std::vector<Record>& records,
                          ColumnarBatch* out);

  /// Converts `records` whose schema the caller has already verified (e.g.
  /// via a dataset-wide InferBatchSchema pass) — one row-major pass, no
  /// re-validation in release builds.
  static ColumnarBatch FromRecordsUnchecked(const std::vector<Record>& records,
                                            BatchSchema schema);

  /// Appends one row; the record must match the schema (checked).
  void AppendRow(const Record& record);

  // Mutable column access for batched UDFs (BatchMapFn). The contract:
  // Reset to the output layout, fill every column to the same length
  // (Mutable*Column gives the raw vectors), then FinishRows with the row
  // count — it validates that every column is consistent.
  void Reset(BatchSchema schema);
  std::vector<int64_t>& MutableInt64Column(size_t col);
  std::vector<double>& MutableDoubleColumn(size_t col);
  void FinishRows(size_t rows);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return schema_.size(); }
  const BatchSchema& schema() const { return schema_; }

  /// Materializes row `row` as a Record (the UDF fallback view).
  Record RowAsRecord(size_t row) const;

  /// Materializes every row, in order.
  std::vector<Record> ToRecords() const;

  const std::vector<int64_t>& Int64Column(size_t col) const;
  const std::vector<double>& DoubleColumn(size_t col) const;
  std::string_view StringAt(size_t col, size_t row) const;

  /// Hash of row `row` projected onto `key`; bit-identical to
  /// HashKey(RowAsRecord(row), key).
  uint64_t HashRowKey(size_t row, const KeyColumns& key) const;

  /// Appends the serialized batch ([u64 rows] then whole-column payloads;
  /// the schema travels separately — see dataset serde v2).
  void SerializeTo(std::vector<uint8_t>* out) const;

  /// Reads one batch with layout `schema` starting at *offset, advancing
  /// it. Fails cleanly on truncated or corrupt input.
  static Result<ColumnarBatch> Deserialize(const std::vector<uint8_t>& bytes,
                                           size_t* offset,
                                           const BatchSchema& schema);

  /// Exact byte size SerializeTo would append.
  uint64_t SerializedBytes() const;

  friend bool operator==(const ColumnarBatch& a, const ColumnarBatch& b);

 private:
  struct Column {
    std::vector<int64_t> i64;       // kInt64 payload
    std::vector<double> f64;        // kDouble payload
    std::vector<uint32_t> offsets;  // kString: rows + 1 offsets into arena
    std::string arena;              // kString: concatenated bytes
  };

  BatchSchema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

/// Per-partition open-addressing hash index over a vector of records, keyed
/// on `key` columns in place. Replaces the unordered_map<Record, ...>
/// JoinIndex/GroupMap structures on the batch path: power-of-two capacity,
/// linear probing, cached per-row key hashes, and arrival-order group
/// chains of row ids — zero allocation per probe, one allocation per array
/// at build.
///
/// Lifetime: the index borrows `rows`; it must not outlive or observe
/// mutation of them (same discipline as the legacy JoinIndex's record
/// pointers).
class FlatKeyIndex {
 public:
  /// Indexes `rows` on `key`. Rebuilding over an old index reuses storage.
  void Build(const std::vector<Record>& rows, const KeyColumns& key);

  /// Build, but adopting previously computed row hashes (the cached-hash
  /// retention path for spilled cache entries — DESIGN.md §15). `hashes`
  /// must be this index's own row_hashes() from an earlier Build over the
  /// same rows/key; a size mismatch falls back to a plain Build.
  void BuildWithHashes(const std::vector<Record>& rows, const KeyColumns& key,
                       std::vector<uint64_t> hashes);

  /// First row (in arrival order) whose key equals `probe`'s projection
  /// onto `probe_key`, or -1. `probe_hash` must be
  /// HashKey(probe, probe_key) — callers hoist it so cached hashes are
  /// compared before any value comparison.
  int32_t FindFirst(const Record& probe, const KeyColumns& probe_key,
                    uint64_t probe_hash) const;

  /// Batched FindFirst over a stripe of single-int64 probe keys with their
  /// hashes (hashes[i] must equal the single-key row hash of keys[i]).
  /// Requires key64_probe_ready(); out[i] matches FindFirst exactly. The
  /// probe loop scans `probe_width` buckets per step and early-exits on the
  /// first empty slot in the window (SIMD movemask).
  void FindFirstStripe(const int64_t* keys, const uint64_t* hashes, size_t n,
                       int32_t* out) const;

  /// True when the index was built on a single all-int64 key column, i.e.
  /// FindFirstStripe may be used.
  bool key64_probe_ready() const { return use_key64_; }

  /// Next row of the same group in arrival order, or -1 at the end.
  int32_t Next(int32_t row) const { return next_[row]; }

  /// One row id per distinct key, in first-arrival order — the batch-path
  /// equivalent of iterating GroupByKey's map (before key sorting).
  const std::vector<int32_t>& heads() const { return heads_; }

  /// Cached HashKey of each indexed row.
  const std::vector<uint64_t>& row_hashes() const { return hash_; }

  size_t num_rows() const { return hash_.size(); }
  size_t num_groups() const { return heads_.size(); }

 private:
  const std::vector<Record>* rows_ = nullptr;
  KeyColumns key_;
  std::vector<uint64_t> hash_;     // per row: HashKey(rows[i], key)
  std::vector<int32_t> next_;      // per row: next row of the group, or -1
  std::vector<int32_t> tail_;      // per head row: last row of the group
  std::vector<int32_t> heads_;     // group head rows, first-arrival order
  std::vector<int32_t> buckets_;   // open-addressing table of head rows
  uint64_t mask_ = 0;              // buckets_.size() - 1 (power of two)

  /// Single-column int64 fast path: the key values, flat. Empty when the
  /// key is multi-column or any row's key column is not int64.
  std::vector<int64_t> key64_;
  bool use_key64_ = false;
};

}  // namespace flinkless::dataflow

#endif  // FLINKLESS_DATAFLOW_COLUMNAR_H_
