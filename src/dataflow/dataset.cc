#include "dataflow/dataset.h"

#include <algorithm>

#include "common/logging.h"
#include "dataflow/columnar.h"

namespace flinkless::dataflow {

int PartitionedDataset::PartitionOf(const Record& record,
                                    const KeyColumns& key,
                                    int num_partitions) {
  FLINKLESS_CHECK(num_partitions > 0, "PartitionOf needs >= 1 partition");
  return static_cast<int>(HashKey(record, key) %
                          static_cast<uint64_t>(num_partitions));
}

PartitionedDataset PartitionedDataset::HashPartitioned(
    std::vector<Record> records, const KeyColumns& key, int num_partitions) {
  PartitionedDataset ds(num_partitions);
  for (auto& r : records) {
    int p = PartitionOf(r, key, num_partitions);
    ds.partitions_[p].push_back(std::move(r));
  }
  return ds;
}

PartitionedDataset PartitionedDataset::RoundRobin(std::vector<Record> records,
                                                  int num_partitions) {
  PartitionedDataset ds(num_partitions);
  for (size_t i = 0; i < records.size(); ++i) {
    ds.partitions_[i % num_partitions].push_back(std::move(records[i]));
  }
  return ds;
}

uint64_t PartitionedDataset::NumRecords() const {
  uint64_t total = 0;
  for (const auto& p : partitions_) total += p.size();
  return total;
}

std::vector<Record> PartitionedDataset::Collect() const {
  std::vector<Record> out;
  out.reserve(NumRecords());
  for (const auto& p : partitions_) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

std::vector<Record> PartitionedDataset::CollectSorted() const {
  std::vector<Record> out = Collect();
  std::sort(out.begin(), out.end(), RecordLess);
  return out;
}

uint64_t PartitionedDataset::SerializedSizeBytes() const {
  uint64_t total = 0;
  for (const auto& p : partitions_) total += SerializedSize(p);
  return total;
}

bool PartitionedDataset::IsPartitionedBy(const KeyColumns& key) const {
  for (int p = 0; p < num_partitions(); ++p) {
    for (const Record& r : partitions_[p]) {
      if (PartitionOf(r, key, num_partitions()) != p) return false;
    }
  }
  return true;
}

namespace {

/// Spill blob format v1 ("FLKDST1\0" little-endian); the leading magic
/// disambiguates dataset blobs from every other blob family in
/// StableStorage (checkpoints start with record counts or their own magic).
constexpr uint64_t kDatasetBlobMagicV1 = 0x00315453444b4c46ULL;

/// Spill blob format v2 ("FLKCOL1\0" little-endian): one schema for the
/// whole dataset, then whole-column payloads per partition (DESIGN.md §12)
/// instead of per-record framing. Chosen whenever every record shares one
/// schema; v1 remains the fallback for heterogeneous datasets and stays
/// readable forever.
constexpr uint64_t kDatasetBlobMagicV2 = 0x00314c4f434b4c46ULL;

/// True (filling *schema) when every record in every partition shares one
/// schema — the v2 eligibility test. An all-empty dataset is homogeneous
/// with an empty schema.
bool InferDatasetSchema(const PartitionedDataset& ds, BatchSchema* schema) {
  bool have = false;
  for (int p = 0; p < ds.num_partitions(); ++p) {
    const std::vector<Record>& part = ds.partition(p);
    if (part.empty()) continue;
    BatchSchema s;
    if (!InferBatchSchema(part, &s)) return false;
    if (!have) {
      *schema = std::move(s);
      have = true;
    } else if (s != *schema) {
      return false;
    }
  }
  return true;
}

/// v2 is used when the dataset is schema-homogeneous and the schema is
/// non-degenerate (zero-column records, which only arity-0 records produce,
/// stay on v1 so row counts are always bounded by payload bytes).
bool UseColumnarBlob(const PartitionedDataset& ds, BatchSchema* schema) {
  if (!InferDatasetSchema(ds, schema)) return false;
  return !schema->empty() || ds.NumRecords() == 0;
}

/// Exact serialized size of one partition as a v2 column block.
uint64_t ColumnarPartitionBytes(const std::vector<Record>& part,
                                const BatchSchema& schema) {
  uint64_t size = 8;  // row count
  for (size_t c = 0; c < schema.size(); ++c) {
    switch (schema[c]) {
      case ValueType::kInt64:
      case ValueType::kDouble:
        size += 8 * static_cast<uint64_t>(part.size());
        break;
      case ValueType::kString:
        size += 4 * static_cast<uint64_t>(part.size());
        for (const Record& r : part) size += r[c].AsString().size();
        break;
    }
  }
  return size;
}

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

bool GetU32(const std::vector<uint8_t>& bytes, size_t* offset, uint32_t* v) {
  if (*offset + 4 > bytes.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(bytes[*offset + i]) << (8 * i);
  }
  *offset += 4;
  return true;
}

bool GetU64(const std::vector<uint8_t>& bytes, size_t* offset, uint64_t* v) {
  if (*offset + 8 > bytes.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(bytes[*offset + i]) << (8 * i);
  }
  *offset += 8;
  return true;
}

}  // namespace

std::vector<uint8_t> SerializePartitionedDataset(
    const PartitionedDataset& ds) {
  std::vector<uint8_t> out;
  BatchSchema schema;
  // One format decision (a full type scan) shared by the size reservation
  // and the write loop — SerializedDatasetBytes would redo the scan.
  if (UseColumnarBlob(ds, &schema)) {
    uint64_t size = 16 + 4 + schema.size();  // magic, partitions, schema
    for (int p = 0; p < ds.num_partitions(); ++p) {
      size += ColumnarPartitionBytes(ds.partition(p), schema);
    }
    out.reserve(size);
    PutU64(kDatasetBlobMagicV2, &out);
    PutU64(static_cast<uint64_t>(ds.num_partitions()), &out);
    PutU32(static_cast<uint32_t>(schema.size()), &out);
    for (ValueType t : schema) out.push_back(static_cast<uint8_t>(t));
    for (int p = 0; p < ds.num_partitions(); ++p) {
      ColumnarBatch::FromRecordsUnchecked(ds.partition(p), schema)
          .SerializeTo(&out);
    }
    return out;
  }
  out.reserve(16 + ds.SerializedSizeBytes());
  PutU64(kDatasetBlobMagicV1, &out);
  PutU64(static_cast<uint64_t>(ds.num_partitions()), &out);
  for (int p = 0; p < ds.num_partitions(); ++p) {
    const std::vector<Record>& part = ds.partition(p);
    PutU64(part.size(), &out);
    for (const Record& r : part) SerializeRecord(r, &out);
  }
  return out;
}

namespace {

Result<PartitionedDataset> DeserializeColumnarDataset(
    const std::vector<uint8_t>& bytes, size_t offset) {
  uint64_t num_partitions = 0;
  if (!GetU64(bytes, &offset, &num_partitions) ||
      num_partitions > static_cast<uint64_t>(1) << 32) {
    return Status::DataLoss("dataset blob: bad partition count");
  }
  uint32_t num_columns = 0;
  if (!GetU32(bytes, &offset, &num_columns) || num_columns > (1u << 16)) {
    return Status::DataLoss("dataset blob: bad column count");
  }
  BatchSchema schema;
  schema.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    if (offset >= bytes.size()) {
      return Status::DataLoss("dataset blob: truncated schema");
    }
    uint8_t tag = bytes[offset++];
    if (tag > static_cast<uint8_t>(ValueType::kString)) {
      return Status::DataLoss("dataset blob: unknown column tag " +
                              std::to_string(static_cast<int>(tag)));
    }
    schema.push_back(static_cast<ValueType>(tag));
  }
  PartitionedDataset ds(static_cast<int>(num_partitions));
  for (int p = 0; p < ds.num_partitions(); ++p) {
    FLINKLESS_ASSIGN_OR_RETURN(
        ColumnarBatch batch,
        ColumnarBatch::Deserialize(bytes, &offset, schema));
    if (schema.empty() && batch.num_rows() > 0) {
      return Status::DataLoss("dataset blob: rows without columns");
    }
    ds.partition(p) = batch.ToRecords();
  }
  if (offset != bytes.size()) {
    return Status::DataLoss("dataset blob: trailing garbage");
  }
  return ds;
}

}  // namespace

Result<PartitionedDataset> DeserializePartitionedDataset(
    const std::vector<uint8_t>& bytes) {
  size_t offset = 0;
  uint64_t magic = 0;
  if (!GetU64(bytes, &offset, &magic)) {
    return Status::DataLoss("dataset blob: bad magic");
  }
  if (magic == kDatasetBlobMagicV2) {
    return DeserializeColumnarDataset(bytes, offset);
  }
  if (magic != kDatasetBlobMagicV1) {
    return Status::DataLoss("dataset blob: bad magic");
  }
  uint64_t num_partitions = 0;
  if (!GetU64(bytes, &offset, &num_partitions) ||
      num_partitions > static_cast<uint64_t>(1) << 32) {
    return Status::DataLoss("dataset blob: bad partition count");
  }
  PartitionedDataset ds(static_cast<int>(num_partitions));
  for (int p = 0; p < ds.num_partitions(); ++p) {
    uint64_t count = 0;
    if (!GetU64(bytes, &offset, &count)) {
      return Status::DataLoss("dataset blob: truncated partition header");
    }
    std::vector<Record>& part = ds.partition(p);
    part.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      FLINKLESS_ASSIGN_OR_RETURN(Record r,
                                 DeserializeRecord(bytes, &offset));
      part.push_back(std::move(r));
    }
  }
  if (offset != bytes.size()) {
    return Status::DataLoss("dataset blob: trailing garbage");
  }
  return ds;
}

uint64_t SerializedDatasetBytes(const PartitionedDataset& ds) {
  // Mirrors SerializePartitionedDataset's format choice exactly — the
  // memory manager budgets against this number and spill blobs must match
  // it byte for byte.
  BatchSchema schema;
  if (UseColumnarBlob(ds, &schema)) {
    uint64_t size = 16 + 4 + schema.size();  // magic, partitions, schema
    for (int p = 0; p < ds.num_partitions(); ++p) {
      size += ColumnarPartitionBytes(ds.partition(p), schema);
    }
    return size;
  }
  // v1: magic + partition count, then per partition the same
  // [count][records] layout SerializedSize measures.
  return 16 + ds.SerializedSizeBytes();
}

}  // namespace flinkless::dataflow
