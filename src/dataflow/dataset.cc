#include "dataflow/dataset.h"

#include <algorithm>

#include "common/logging.h"

namespace flinkless::dataflow {

int PartitionedDataset::PartitionOf(const Record& record,
                                    const KeyColumns& key,
                                    int num_partitions) {
  FLINKLESS_CHECK(num_partitions > 0, "PartitionOf needs >= 1 partition");
  return static_cast<int>(HashKey(record, key) %
                          static_cast<uint64_t>(num_partitions));
}

PartitionedDataset PartitionedDataset::HashPartitioned(
    std::vector<Record> records, const KeyColumns& key, int num_partitions) {
  PartitionedDataset ds(num_partitions);
  for (auto& r : records) {
    int p = PartitionOf(r, key, num_partitions);
    ds.partitions_[p].push_back(std::move(r));
  }
  return ds;
}

PartitionedDataset PartitionedDataset::RoundRobin(std::vector<Record> records,
                                                  int num_partitions) {
  PartitionedDataset ds(num_partitions);
  for (size_t i = 0; i < records.size(); ++i) {
    ds.partitions_[i % num_partitions].push_back(std::move(records[i]));
  }
  return ds;
}

uint64_t PartitionedDataset::NumRecords() const {
  uint64_t total = 0;
  for (const auto& p : partitions_) total += p.size();
  return total;
}

std::vector<Record> PartitionedDataset::Collect() const {
  std::vector<Record> out;
  out.reserve(NumRecords());
  for (const auto& p : partitions_) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

std::vector<Record> PartitionedDataset::CollectSorted() const {
  std::vector<Record> out = Collect();
  std::sort(out.begin(), out.end(), RecordLess);
  return out;
}

uint64_t PartitionedDataset::SerializedSizeBytes() const {
  uint64_t total = 0;
  for (const auto& p : partitions_) total += SerializedSize(p);
  return total;
}

bool PartitionedDataset::IsPartitionedBy(const KeyColumns& key) const {
  for (int p = 0; p < num_partitions(); ++p) {
    for (const Record& r : partitions_[p]) {
      if (PartitionOf(r, key, num_partitions()) != p) return false;
    }
  }
  return true;
}

namespace {

/// Spill blob format v1 ("FLKDST1\0" little-endian); the leading magic
/// disambiguates dataset blobs from every other blob family in
/// StableStorage (checkpoints start with record counts or their own magic).
constexpr uint64_t kDatasetBlobMagicV1 = 0x00315453444b4c46ULL;

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

bool GetU64(const std::vector<uint8_t>& bytes, size_t* offset, uint64_t* v) {
  if (*offset + 8 > bytes.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(bytes[*offset + i]) << (8 * i);
  }
  *offset += 8;
  return true;
}

}  // namespace

std::vector<uint8_t> SerializePartitionedDataset(
    const PartitionedDataset& ds) {
  std::vector<uint8_t> out;
  out.reserve(SerializedDatasetBytes(ds));
  PutU64(kDatasetBlobMagicV1, &out);
  PutU64(static_cast<uint64_t>(ds.num_partitions()), &out);
  for (int p = 0; p < ds.num_partitions(); ++p) {
    const std::vector<Record>& part = ds.partition(p);
    PutU64(part.size(), &out);
    for (const Record& r : part) SerializeRecord(r, &out);
  }
  return out;
}

Result<PartitionedDataset> DeserializePartitionedDataset(
    const std::vector<uint8_t>& bytes) {
  size_t offset = 0;
  uint64_t magic = 0;
  if (!GetU64(bytes, &offset, &magic) || magic != kDatasetBlobMagicV1) {
    return Status::DataLoss("dataset blob: bad magic");
  }
  uint64_t num_partitions = 0;
  if (!GetU64(bytes, &offset, &num_partitions) ||
      num_partitions > static_cast<uint64_t>(1) << 32) {
    return Status::DataLoss("dataset blob: bad partition count");
  }
  PartitionedDataset ds(static_cast<int>(num_partitions));
  for (int p = 0; p < ds.num_partitions(); ++p) {
    uint64_t count = 0;
    if (!GetU64(bytes, &offset, &count)) {
      return Status::DataLoss("dataset blob: truncated partition header");
    }
    std::vector<Record>& part = ds.partition(p);
    part.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      FLINKLESS_ASSIGN_OR_RETURN(Record r,
                                 DeserializeRecord(bytes, &offset));
      part.push_back(std::move(r));
    }
  }
  if (offset != bytes.size()) {
    return Status::DataLoss("dataset blob: trailing garbage");
  }
  return ds;
}

uint64_t SerializedDatasetBytes(const PartitionedDataset& ds) {
  // Magic + partition count, then per partition the same [count][records]
  // layout SerializedSize measures.
  return 16 + ds.SerializedSizeBytes();
}

}  // namespace flinkless::dataflow
