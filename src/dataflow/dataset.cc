#include "dataflow/dataset.h"

#include <algorithm>

#include "common/logging.h"

namespace flinkless::dataflow {

int PartitionedDataset::PartitionOf(const Record& record,
                                    const KeyColumns& key,
                                    int num_partitions) {
  FLINKLESS_CHECK(num_partitions > 0, "PartitionOf needs >= 1 partition");
  return static_cast<int>(HashKey(record, key) %
                          static_cast<uint64_t>(num_partitions));
}

PartitionedDataset PartitionedDataset::HashPartitioned(
    std::vector<Record> records, const KeyColumns& key, int num_partitions) {
  PartitionedDataset ds(num_partitions);
  for (auto& r : records) {
    int p = PartitionOf(r, key, num_partitions);
    ds.partitions_[p].push_back(std::move(r));
  }
  return ds;
}

PartitionedDataset PartitionedDataset::RoundRobin(std::vector<Record> records,
                                                  int num_partitions) {
  PartitionedDataset ds(num_partitions);
  for (size_t i = 0; i < records.size(); ++i) {
    ds.partitions_[i % num_partitions].push_back(std::move(records[i]));
  }
  return ds;
}

uint64_t PartitionedDataset::NumRecords() const {
  uint64_t total = 0;
  for (const auto& p : partitions_) total += p.size();
  return total;
}

std::vector<Record> PartitionedDataset::Collect() const {
  std::vector<Record> out;
  out.reserve(NumRecords());
  for (const auto& p : partitions_) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

std::vector<Record> PartitionedDataset::CollectSorted() const {
  std::vector<Record> out = Collect();
  std::sort(out.begin(), out.end(), RecordLess);
  return out;
}

uint64_t PartitionedDataset::SerializedSizeBytes() const {
  uint64_t total = 0;
  for (const auto& p : partitions_) total += SerializedSize(p);
  return total;
}

bool PartitionedDataset::IsPartitionedBy(const KeyColumns& key) const {
  for (int p = 0; p < num_partitions(); ++p) {
    for (const Record& r : partitions_[p]) {
      if (PartitionOf(r, key, num_partitions()) != p) return false;
    }
  }
  return true;
}

}  // namespace flinkless::dataflow
