// Record: one row flowing through the dataflow, plus key utilities and the
// byte serialization used by checkpoints.

#ifndef FLINKLESS_DATAFLOW_RECORD_H_
#define FLINKLESS_DATAFLOW_RECORD_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dataflow/value.h"

namespace flinkless::dataflow {

/// A row: an ordered list of values.
using Record = std::vector<Value>;

/// Column indexes forming an operator's key.
using KeyColumns = std::vector<int>;

/// Convenience constructor: MakeRecord(1, 2.5, "x").
template <typename... Args>
Record MakeRecord(Args&&... args) {
  Record r;
  r.reserve(sizeof...(args));
  (r.emplace_back(std::forward<Args>(args)), ...);
  return r;
}

/// "(1, 0.25, \"x\")".
std::string RecordToString(const Record& record);

/// Hash of the projection of `record` onto `key`. Columns must be in range
/// (checked).
uint64_t HashKey(const Record& record, const KeyColumns& key);

/// True when the two records agree on their respective key columns.
bool KeysEqual(const Record& a, const KeyColumns& a_key, const Record& b,
               const KeyColumns& b_key);

/// Projection of `record` onto `key`.
Record ExtractKey(const Record& record, const KeyColumns& key);

/// RecordLess over key projections without materializing them: equivalent
/// to RecordLess(ExtractKey(a, key), ExtractKey(b, key)). The batch
/// execution paths sort group representatives with this, so their emission
/// order is byte-identical to the record path's sorted ExtractKey sweep.
bool KeyLess(const Record& a, const Record& b, const KeyColumns& key);

/// Total order over records (by value sequence); used to sort collected
/// outputs deterministically in tests.
bool RecordLess(const Record& a, const Record& b);

/// Comparator adapting RecordLess for ordered containers keyed by Record.
struct RecordOrder {
  bool operator()(const Record& a, const Record& b) const {
    return RecordLess(a, b);
  }
};

/// Equality-respecting hash over a whole record, for unordered containers
/// keyed by Record (hash grouping in the executor).
uint64_t HashRecord(const Record& record);

/// Hasher adapting HashRecord for unordered containers keyed by Record.
struct RecordHash {
  size_t operator()(const Record& r) const {
    return static_cast<size_t>(HashRecord(r));
  }
};

/// Appends the serialized form of `record` to `out`. The format is
/// self-delimiting: [u32 count] then per field [u8 tag][payload].
void SerializeRecord(const Record& record, std::vector<uint8_t>* out);

/// Reads one record starting at `*offset`, advancing it. Fails cleanly on
/// truncated or corrupt input.
Result<Record> DeserializeRecord(const std::vector<uint8_t>& bytes,
                                 size_t* offset);

/// Serializes a whole vector of records ([u64 count] + records).
std::vector<uint8_t> SerializeRecords(const std::vector<Record>& records);

/// Inverse of SerializeRecords; fails on trailing garbage.
Result<std::vector<Record>> DeserializeRecords(
    const std::vector<uint8_t>& bytes);

/// Serialized size in bytes (what a checkpoint of these records costs).
uint64_t SerializedSize(const std::vector<Record>& records);

}  // namespace flinkless::dataflow

#endif  // FLINKLESS_DATAFLOW_RECORD_H_
