#include "runtime/profiler.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>
#include <unordered_map>

namespace flinkless::runtime {

namespace {

/// Milliseconds with fixed 3-decimal precision for the text reports.
std::string Ms(int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3fms",
                static_cast<double>(ns) / 1e6);
  return buf;
}

std::string Num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Per-span derived quantities, keyed by seq (job-level span seqs are
/// unique; per-partition spans share their section's seq and are handled
/// as groups instead).
struct SelfTime {
  int64_t sim_self_ns = 0;
  int64_t wall_self_ns = 0;
};

/// The span tree: children of each job-level span, in snapshot order
/// (seq, then partition — so a parallel section's spans are consecutive).
struct SpanTree {
  std::vector<const TraceEvent*> roots;
  std::unordered_map<uint64_t, std::vector<const TraceEvent*>> children;
  std::unordered_map<uint64_t, SelfTime> self;

  static SpanTree Build(const Tracer::Snapshot& snapshot) {
    SpanTree tree;
    for (const TraceEvent& e : snapshot.events) {
      if (e.kind != TraceEvent::Kind::kSpan) continue;
      if (e.parent_seq == 0) {
        tree.roots.push_back(&e);
      } else {
        tree.children[e.parent_seq].push_back(&e);
      }
      if (e.partition < 0) {
        // Seed self time with the span's own duration; children subtract
        // below. Per-partition spans never appear here — their wall time
        // overlaps the parent's and their sim time is zero by contract.
        SelfTime& st = tree.self[e.seq];
        st.sim_self_ns += e.sim_dur_ns;
        st.wall_self_ns += e.wall_dur_ns;
      }
    }
    for (const TraceEvent& e : snapshot.events) {
      if (e.kind != TraceEvent::Kind::kSpan) continue;
      if (e.partition >= 0 || e.parent_seq == 0) continue;
      auto it = tree.self.find(e.parent_seq);
      if (it == tree.self.end()) continue;
      it->second.sim_self_ns -= e.sim_dur_ns;
      it->second.wall_self_ns -= e.wall_dur_ns;
    }
    for (auto& [seq, st] : tree.self) {
      st.sim_self_ns = std::max<int64_t>(st.sim_self_ns, 0);
      st.wall_self_ns = std::max<int64_t>(st.wall_self_ns, 0);
    }
    return tree;
  }
};

/// Walks the critical path below `span`. Children in snapshot order are
/// sequential segments, except runs sharing one seq: those are one
/// parallel section, and only its longest (wall) partition is on the path.
void WalkCriticalPath(const SpanTree& tree, const TraceEvent& span, int depth,
                      std::vector<CriticalPathStep>* out) {
  auto it = tree.children.find(span.seq);
  if (it == tree.children.end()) return;
  const std::vector<const TraceEvent*>& kids = it->second;
  size_t i = 0;
  while (i < kids.size()) {
    size_t j = i + 1;
    while (j < kids.size() && kids[j]->seq == kids[i]->seq) ++j;
    if (kids[i]->partition >= 0) {
      // Parallel section [i, j): the longest partition is critical. Ties
      // resolve to the lowest partition (the group is partition-ordered).
      const TraceEvent* critical = kids[i];
      for (size_t k = i + 1; k < j; ++k) {
        if (kids[k]->wall_dur_ns > critical->wall_dur_ns) critical = kids[k];
      }
      CriticalPathStep step;
      step.category = critical->category;
      step.name = critical->name;
      step.partition = critical->partition;
      step.depth = depth;
      step.wall_self_ns = critical->wall_dur_ns;
      out->push_back(std::move(step));
    } else {
      const TraceEvent& child = *kids[i];
      CriticalPathStep step;
      step.category = child.category;
      step.name = child.name;
      step.partition = -1;
      step.depth = depth;
      auto st = tree.self.find(child.seq);
      if (st != tree.self.end()) {
        step.sim_self_ns = st->second.sim_self_ns;
        step.wall_self_ns = st->second.wall_self_ns;
      }
      out->push_back(std::move(step));
      WalkCriticalPath(tree, child, depth + 1, out);
    }
    i = j;
  }
}

}  // namespace

bool SuperstepProfile::HasCategory(const std::string& category) const {
  for (const CriticalPathStep& step : critical_path) {
    if (step.category == category) return true;
  }
  return false;
}

double OperatorProfile::WallSkew() const {
  if (wall_partition_median_ns <= 0) return 1.0;
  return static_cast<double>(wall_partition_max_ns) /
         static_cast<double>(wall_partition_median_ns);
}

ProfileReport ProfileReport::FromSnapshot(const Tracer::Snapshot& snapshot) {
  ProfileReport report;
  report.total_events = snapshot.events.size();
  report.dropped_events = snapshot.dropped;

  SpanTree tree = SpanTree::Build(snapshot);

  // Whole-run operator aggregates over every job-level span, plus per-
  // partition wall observations for the skew stats.
  std::map<std::pair<std::string, std::string>, OperatorProfile> operators;
  std::map<std::pair<std::string, std::string>, std::vector<int64_t>>
      partition_walls;
  for (const TraceEvent& e : snapshot.events) {
    if (e.kind != TraceEvent::Kind::kSpan) continue;
    const std::pair<std::string, std::string> key{e.category, e.name};
    if (e.partition >= 0) {
      partition_walls[key].push_back(e.wall_dur_ns);
      OperatorProfile& op = operators[key];
      op.category = e.category;
      op.name = e.name;
      op.partitions_observed =
          std::max(op.partitions_observed, e.partition + 1);
      continue;
    }
    OperatorProfile& op = operators[key];
    op.category = e.category;
    op.name = e.name;
    ++op.spans;
    op.sim_total_ns += e.sim_dur_ns;
    op.wall_total_ns += e.wall_dur_ns;
    auto st = tree.self.find(e.seq);
    if (st != tree.self.end()) {
      op.sim_self_ns += st->second.sim_self_ns;
      op.wall_self_ns += st->second.wall_self_ns;
    }
  }
  for (auto& [key, walls] : partition_walls) {
    std::sort(walls.begin(), walls.end());
    OperatorProfile& op = operators[key];
    op.wall_partition_max_ns = walls.back();
    op.wall_partition_median_ns = walls[walls.size() / 2];
  }
  for (auto& [key, op] : operators) {
    report.operators.push_back(std::move(op));
  }

  // Critical path of every iteration span (supersteps are root-level spans
  // in both drivers; tolerate nesting by scanning all spans).
  const char* iteration_category = SpanKindName(SpanKind::kIteration);
  for (const TraceEvent& e : snapshot.events) {
    if (e.kind != TraceEvent::Kind::kSpan || e.partition >= 0) continue;
    if (e.category != iteration_category) continue;
    SuperstepProfile profile;
    profile.iteration = e.iteration;
    profile.sim_ns = e.sim_dur_ns;
    profile.wall_ns = e.wall_dur_ns;
    WalkCriticalPath(tree, e, 0, &profile.critical_path);
    auto st = tree.self.find(e.seq);
    if (st != tree.self.end()) {
      profile.sim_self_by_category[e.category] += st->second.sim_self_ns;
    }
    for (const CriticalPathStep& step : profile.critical_path) {
      profile.sim_self_by_category[step.category] += step.sim_self_ns;
    }
    report.supersteps.push_back(std::move(profile));
  }

  return report;
}

const OperatorProfile* ProfileReport::Find(const std::string& category,
                                           const std::string& name) const {
  for (const OperatorProfile& op : operators) {
    if (op.category == category && op.name == name) return &op;
  }
  return nullptr;
}

std::vector<const OperatorProfile*> ProfileReport::Hotspots(size_t n) const {
  std::vector<const OperatorProfile*> ranked;
  ranked.reserve(operators.size());
  for (const OperatorProfile& op : operators) ranked.push_back(&op);
  std::sort(ranked.begin(), ranked.end(),
            [](const OperatorProfile* a, const OperatorProfile* b) {
              if (a->sim_self_ns != b->sim_self_ns) {
                return a->sim_self_ns > b->sim_self_ns;
              }
              if (a->category != b->category) return a->category < b->category;
              return a->name < b->name;
            });
  if (ranked.size() > n) ranked.resize(n);
  return ranked;
}

bool ProfileReport::CriticalPathHasCategory(const std::string& category) const {
  for (const SuperstepProfile& superstep : supersteps) {
    if (superstep.HasCategory(category)) return true;
  }
  return false;
}

std::string ProfileReport::RenderText(size_t top_n) const {
  std::string out;
  out += "== profile: " + std::to_string(supersteps.size()) + " supersteps, " +
         std::to_string(operators.size()) + " span families";
  if (dropped_events > 0) {
    out += " (" + std::to_string(dropped_events) + " events dropped)";
  }
  out += " ==\n";

  int64_t total_sim_self = 0;
  for (const OperatorProfile& op : operators) total_sim_self += op.sim_self_ns;

  out += "top hotspots by sim self time:\n";
  size_t rank = 1;
  for (const OperatorProfile* op : Hotspots(top_n)) {
    double share = total_sim_self > 0
                       ? 100.0 * static_cast<double>(op->sim_self_ns) /
                             static_cast<double>(total_sim_self)
                       : 0.0;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  %2zu. %-16s %-24s sim self %s (%.1f%%), %" PRIu64
                  " spans, wall self %s\n",
                  rank++, op->category.c_str(), op->name.c_str(),
                  Ms(op->sim_self_ns).c_str(), share, op->spans,
                  Ms(op->wall_self_ns).c_str());
    out += line;
  }

  out += "partition skew (max/median wall over parallel sections):\n";
  for (const OperatorProfile& op : operators) {
    if (op.partitions_observed == 0) continue;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  %-16s %-24s skew %.2f (max %s, median %s, %d "
                  "partitions)\n",
                  op.category.c_str(), op.name.c_str(), op.WallSkew(),
                  Ms(op.wall_partition_max_ns).c_str(),
                  Ms(op.wall_partition_median_ns).c_str(),
                  op.partitions_observed);
    out += line;
  }

  // The supersteps worth dumping: the most sim-expensive one, plus every
  // superstep whose critical path includes compensation work (the recovery
  // story the paper demos).
  const SuperstepProfile* most_expensive = nullptr;
  for (const SuperstepProfile& s : supersteps) {
    if (most_expensive == nullptr || s.sim_ns > most_expensive->sim_ns) {
      most_expensive = &s;
    }
  }
  const std::string compensation = SpanKindName(SpanKind::kCompensation);
  for (const SuperstepProfile& s : supersteps) {
    const bool recovery = s.HasCategory(compensation);
    if (&s != most_expensive && !recovery) continue;
    out += "critical path, superstep " + std::to_string(s.iteration) +
           (recovery ? " (recovery)" : " (most expensive)") + ": sim " +
           Ms(s.sim_ns) + ", wall " + Ms(s.wall_ns) + "\n";
    for (const CriticalPathStep& step : s.critical_path) {
      out += "  ";
      out.append(static_cast<size_t>(step.depth) * 2, ' ');
      out += step.category + " " + step.name;
      if (step.partition >= 0) {
        out += " [p" + std::to_string(step.partition) + "] wall " +
               Ms(step.wall_self_ns);
      } else {
        out += " sim self " + Ms(step.sim_self_ns);
      }
      out += "\n";
    }
  }
  return out;
}

// --------------------------------------------------------- recovery health --

std::vector<RecoveryHealth> ComputeRecoveryHealth(
    const MetricsRegistry& registry, const MetricsRegistry* baseline) {
  const std::vector<IterationStats>& iters = registry.iterations();

  // Baseline iterations by iteration number (both drivers number 1..N, but
  // a recovered run can execute more supersteps than the baseline ran).
  std::map<int, const IterationStats*> baseline_by_iteration;
  if (baseline != nullptr) {
    for (const IterationStats& it : baseline->iterations()) {
      baseline_by_iteration[it.iteration] = &it;
    }
  }

  std::vector<RecoveryHealth> reports;
  for (size_t i = 0; i < iters.size(); ++i) {
    if (!iters[i].failure_injected) continue;

    RecoveryHealth r;
    r.failure_iteration = iters[i].iteration;
    r.baseline_adjusted = baseline != nullptr;
    r.pre_failure_metric =
        i > 0 ? iters[i - 1].Gauge("convergence_metric",
                                   std::numeric_limits<double>::infinity())
              : std::numeric_limits<double>::infinity();

    // Convergence damage at the failure superstep, measured against the
    // failure-free trajectory when we have one (how far the compensation
    // fell short), else against the pre-failure metric.
    const double at_failure = iters[i].Gauge(
        "convergence_metric", std::numeric_limits<double>::infinity());
    double reference = r.pre_failure_metric;
    if (baseline != nullptr) {
      auto bit = baseline_by_iteration.find(r.failure_iteration);
      if (bit != baseline_by_iteration.end()) {
        reference = bit->second->Gauge(
            "convergence_metric", std::numeric_limits<double>::infinity());
      }
    }
    if (std::isfinite(at_failure) && std::isfinite(reference)) {
      r.convergence_gap = at_failure - reference;
    }

    // The recovery window: [failure, first iteration back at the
    // pre-failure metric], cut short by the next failure or end of run.
    size_t end = i;
    for (size_t j = i; j < iters.size(); ++j) {
      if (j > i && iters[j].failure_injected) break;
      end = j;
      const double metric = iters[j].Gauge(
          "convergence_metric", std::numeric_limits<double>::infinity());
      if (metric <= r.pre_failure_metric) {
        r.reconverged = true;
        break;
      }
    }
    r.window_end_iteration = iters[end].iteration;
    r.supersteps_to_reconverge = static_cast<int>(end - i) + 1;

    for (size_t j = i; j <= end; ++j) {
      const IterationStats* base = nullptr;
      auto bit = baseline_by_iteration.find(iters[j].iteration);
      if (bit != baseline_by_iteration.end()) base = bit->second;
      for (int c = 0; c < kNumCharges; ++c) {
        int64_t ns = iters[j].sim_time_by_charge[c];
        if (base != nullptr) ns -= base->sim_time_by_charge[c];
        r.sim_lost_by_charge[c] += ns;
        r.sim_lost_ns += ns;
      }
      int64_t messages = static_cast<int64_t>(iters[j].messages_shuffled);
      if (base != nullptr) {
        messages -= static_cast<int64_t>(base->messages_shuffled);
      }
      r.messages_recomputed += messages;
    }

    reports.push_back(r);
  }
  return reports;
}

std::string RenderRecoveryHealth(const std::vector<RecoveryHealth>& reports) {
  if (reports.empty()) return "no failures injected\n";
  std::string out;
  for (const RecoveryHealth& r : reports) {
    out += "failure @ superstep " + std::to_string(r.failure_iteration) + ": ";
    if (r.reconverged) {
      out += "reconverged in " + std::to_string(r.supersteps_to_reconverge) +
             " superstep" + (r.supersteps_to_reconverge == 1 ? "" : "s") +
             " (by superstep " + std::to_string(r.window_end_iteration) + ")";
    } else {
      out += "did not reconverge within the run (window ends at superstep " +
             std::to_string(r.window_end_iteration) + ")";
    }
    out += "\n";
    out += "  sim " + std::string(r.baseline_adjusted ? "lost" : "spent") +
           ": " + Ms(r.sim_lost_ns) + " (";
    for (int c = 0; c < kNumCharges; ++c) {
      if (c > 0) out += ", ";
      out += ChargeName(static_cast<Charge>(c)) + " " +
             Ms(r.sim_lost_by_charge[c]);
    }
    out += ")";
    if (r.baseline_adjusted) out += " [net of failure-free baseline]";
    out += "\n";
    out += "  messages recomputed: " + std::to_string(r.messages_recomputed) +
           "\n";
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  convergence gap at failure: %s (pre-failure metric %s)\n",
                  Num(r.convergence_gap).c_str(),
                  std::isfinite(r.pre_failure_metric)
                      ? Num(r.pre_failure_metric).c_str()
                      : "inf");
    out += line;
  }
  return out;
}

}  // namespace flinkless::runtime
