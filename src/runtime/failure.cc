#include "runtime/failure.h"

#include <algorithm>

#include "common/strings.h"

namespace flinkless::runtime {

std::string FailureEvent::ToString() const {
  std::string out = "iter " + std::to_string(iteration) + ": partitions [";
  for (size_t i = 0; i < partitions.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(partitions[i]);
  }
  out += "]";
  return out;
}

FailureSchedule::FailureSchedule(std::vector<FailureEvent> events)
    : events_(std::move(events)), fired_(events_.size(), false) {}

void FailureSchedule::Add(FailureEvent event) {
  events_.push_back(std::move(event));
  fired_.push_back(false);
}

std::vector<int> FailureSchedule::Fire(int iteration) {
  std::vector<int> parts;
  for (size_t i = 0; i < events_.size(); ++i) {
    if (!fired_[i] && events_[i].iteration == iteration) {
      fired_[i] = true;
      parts.insert(parts.end(), events_[i].partitions.begin(),
                   events_[i].partitions.end());
    }
  }
  std::sort(parts.begin(), parts.end());
  parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
  return parts;
}

std::vector<int> FailureSchedule::Peek(int iteration) const {
  std::vector<int> parts;
  for (size_t i = 0; i < events_.size(); ++i) {
    if (!fired_[i] && events_[i].iteration == iteration) {
      parts.insert(parts.end(), events_[i].partitions.begin(),
                   events_[i].partitions.end());
    }
  }
  std::sort(parts.begin(), parts.end());
  parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
  return parts;
}

size_t FailureSchedule::remaining() const {
  size_t n = 0;
  for (bool f : fired_) {
    if (!f) ++n;
  }
  return n;
}

void FailureSchedule::Rewind() {
  std::fill(fired_.begin(), fired_.end(), false);
}

Result<FailureSchedule> FailureSchedule::Parse(const std::string& spec) {
  FailureSchedule schedule;
  if (Trim(spec).empty()) return schedule;
  for (const std::string& event_spec : Split(spec, ';')) {
    auto trimmed = Trim(event_spec);
    if (trimmed.empty()) continue;
    auto colon = trimmed.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("failure event '" + std::string(trimmed) +
                                     "' is not of the form iter:partitions");
    }
    FailureEvent event;
    int64_t iter = 0;
    if (!ParseInt64(trimmed.substr(0, colon), &iter) || iter < 1) {
      return Status::InvalidArgument("bad iteration in failure event '" +
                                     std::string(trimmed) + "'");
    }
    event.iteration = static_cast<int>(iter);
    for (const std::string& part : Split(std::string(trimmed.substr(colon + 1)), ',')) {
      int64_t p = 0;
      if (!ParseInt64(part, &p) || p < 0) {
        return Status::InvalidArgument("bad partition '" + part +
                                       "' in failure event");
      }
      event.partitions.push_back(static_cast<int>(p));
    }
    if (event.partitions.empty()) {
      return Status::InvalidArgument("failure event '" + std::string(trimmed) +
                                     "' lists no partitions");
    }
    schedule.Add(std::move(event));
  }
  return schedule;
}

FailureSchedule RandomFailures(int max_iterations, int num_partitions,
                               double per_iteration_prob, Rng* rng) {
  FailureSchedule schedule;
  for (int it = 1; it <= max_iterations; ++it) {
    FailureEvent event;
    event.iteration = it;
    for (int p = 0; p < num_partitions; ++p) {
      if (rng->NextBernoulli(per_iteration_prob)) event.partitions.push_back(p);
    }
    if (!event.partitions.empty()) schedule.Add(std::move(event));
  }
  return schedule;
}

}  // namespace flinkless::runtime
