#include "runtime/memory_manager.h"

#include <algorithm>

#include "common/logging.h"
#include "runtime/metrics.h"

namespace flinkless::runtime {

MemoryManager::Slot* MemoryManager::FindSlot(
    const SpillableSegment* segment) {
  for (Slot& s : segments_) {
    if (s.segment == segment) return &s;
  }
  return nullptr;
}

void MemoryManager::NotePeak() {
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, resident_bytes());
}

void MemoryManager::Register(SpillableSegment* segment,
                             const std::string& owner) {
  FLINKLESS_CHECK(segment != nullptr, "cannot register a null segment");
  Slot* slot = FindSlot(segment);
  if (slot == nullptr) {
    segments_.push_back(Slot{segment, 0, owner, 0});
    slot = &segments_.back();
  }
  slot->last_access = next_access_++;
  NotePeak();
}

void MemoryManager::Unregister(SpillableSegment* segment) {
  segments_.erase(
      std::remove_if(segments_.begin(), segments_.end(),
                     [&](const Slot& s) { return s.segment == segment; }),
      segments_.end());
}

Status MemoryManager::Touch(SpillableSegment* segment, Tracer* tracer,
                            bool* reloaded) {
  Slot* slot = FindSlot(segment);
  FLINKLESS_CHECK(slot != nullptr, "touched an unregistered segment");
  slot->last_access = next_access_++;
  if (reloaded != nullptr) *reloaded = false;
  if (!segment->spilled()) return Status::OK();

  TraceSpan span(tracer, SpanKind::kCacheUnspill, segment->spill_key());
  FLINKLESS_RETURN_NOT_OK(segment->Unspill());
  uint64_t bytes = segment->resident_bytes();
  ++stats_.unspills;
  stats_.unspilled_bytes += bytes;
  slot->spilled_bytes = 0;
  ++owner_counters_[slot->owner].unspills;
  if (metrics_ != nullptr) {
    metrics_->Count(metric::kMemoryUnspills, -1);
    metrics_->Count(metric::kMemoryUnspilledBytes, -1, bytes);
  }
  NotePeak();
  if (span.active()) {
    span.AddArg("bytes", static_cast<int64_t>(bytes));
    span.AddArg("partitions", segment->num_partitions());
    span.AddArg("resident_after", static_cast<int64_t>(resident_bytes()));
  }
  if (reloaded != nullptr) *reloaded = true;
  return Status::OK();
}

Status MemoryManager::EnforceBudget(const SpillableSegment* keep,
                                    Tracer* tracer) {
  if (budget_bytes_ == 0) return Status::OK();
  while (resident_bytes() > budget_bytes_) {
    // Deterministic LRU victim: smallest logical access time, spill_key as
    // a defensive tie-break. The `keep` segment and already-spilled
    // segments are not candidates.
    Slot* victim = nullptr;
    for (Slot& s : segments_) {
      if (s.segment == keep || s.segment->spilled()) continue;
      if (victim == nullptr || s.last_access < victim->last_access ||
          (s.last_access == victim->last_access &&
           s.segment->spill_key() < victim->segment->spill_key())) {
        victim = &s;
      }
    }
    if (victim == nullptr) break;  // only `keep` left — the slack segment
    SpillableSegment* seg = victim->segment;
    uint64_t bytes = seg->resident_bytes();
    TraceSpan span(tracer, SpanKind::kCacheSpill, seg->spill_key());
    FLINKLESS_RETURN_NOT_OK(seg->Spill());
    ++stats_.spills;
    stats_.spilled_bytes += bytes;
    victim->spilled_bytes = bytes;
    ++owner_counters_[victim->owner].spills;
    if (metrics_ != nullptr) {
      metrics_->Count(metric::kMemorySpills, -1);
      metrics_->Count(metric::kMemorySpilledBytes, -1, bytes);
      metrics_->Observe(metric::kHistSpillBytes, static_cast<int64_t>(bytes));
    }
    if (span.active()) {
      span.AddArg("bytes", static_cast<int64_t>(bytes));
      span.AddArg("partitions", seg->num_partitions());
      span.AddArg("resident_after", static_cast<int64_t>(resident_bytes()));
    }
  }
  return Status::OK();
}

uint64_t MemoryManager::resident_bytes() const {
  uint64_t total = 0;
  for (const Slot& s : segments_) total += s.segment->resident_bytes();
  return total;
}

std::map<std::string, MemoryManager::OwnerStats>
MemoryManager::OwnerBreakdown() const {
  std::map<std::string, OwnerStats> out;
  for (const Slot& s : segments_) {
    OwnerStats& owner = out[s.owner];
    ++owner.segments;
    owner.resident_bytes += s.segment->resident_bytes();
    if (s.segment->spilled()) owner.spilled_bytes += s.spilled_bytes;
  }
  for (auto& [name, owner] : out) {
    auto it = owner_counters_.find(name);
    if (it != owner_counters_.end()) {
      owner.spills = it->second.spills;
      owner.unspills = it->second.unspills;
    }
  }
  return out;
}

}  // namespace flinkless::runtime
