#include "runtime/stable_storage.h"

#include "common/logging.h"

namespace flinkless::runtime {

void StableStorage::AcquirePrefix(const std::string& prefix) {
  FLINKLESS_CHECK(!prefix.empty(), "cannot acquire an empty spill prefix");
  FLINKLESS_CHECK(acquired_prefixes_.insert(prefix).second,
                  "spill prefix '" << prefix
                                   << "' is already owned by a live "
                                      "component; concurrent owners under "
                                      "one namespace would mix blobs");
}

void StableStorage::ReleasePrefix(const std::string& prefix) {
  acquired_prefixes_.erase(prefix);
}

Status StableStorage::Write(const std::string& key,
                            std::vector<uint8_t> blob) {
  if (clock_ != nullptr && costs_ != nullptr) {
    clock_->Add(Charge::kCheckpointIo,
                costs_->checkpoint_write_per_byte_ns *
                    static_cast<int64_t>(blob.size()));
    clock_->Add(Charge::kCheckpointIo, costs_->checkpoint_sync_ns);
  }
  bytes_written_ += blob.size();
  ++num_writes_;
  live_bytes_ += blob.size();
  auto [it, inserted] = blobs_.try_emplace(key);
  if (!inserted) live_bytes_ -= it->second.size();  // overwrite
  it->second = std::move(blob);
  return Status::OK();
}

Result<std::vector<uint8_t>> StableStorage::Read(
    const std::string& key) const {
  auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    return Status::NotFound("no blob for key '" + key + "'");
  }
  if (clock_ != nullptr && costs_ != nullptr) {
    clock_->Add(Charge::kCheckpointIo,
                costs_->checkpoint_read_per_byte_ns *
                    static_cast<int64_t>(it->second.size()));
  }
  bytes_read_ += it->second.size();
  return it->second;
}

void StableStorage::Delete(const std::string& key) {
  auto it = blobs_.find(key);
  if (it == blobs_.end()) return;
  live_bytes_ -= it->second.size();
  blobs_.erase(it);
}

size_t StableStorage::DeleteWithPrefix(const std::string& prefix) {
  auto it = blobs_.lower_bound(prefix);
  size_t removed = 0;
  while (it != blobs_.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
    live_bytes_ -= it->second.size();
    it = blobs_.erase(it);
    ++removed;
  }
  return removed;
}

bool StableStorage::Exists(const std::string& key) const {
  return blobs_.count(key) > 0;
}

std::vector<std::string> StableStorage::ListWithPrefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = blobs_.lower_bound(prefix);
       it != blobs_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    out.push_back(it->first);
  }
  return out;
}

}  // namespace flinkless::runtime
