#include "runtime/stable_storage.h"

namespace flinkless::runtime {

Status StableStorage::Write(const std::string& key,
                            std::vector<uint8_t> blob) {
  if (clock_ != nullptr && costs_ != nullptr) {
    clock_->Add(Charge::kCheckpointIo,
                costs_->checkpoint_write_per_byte_ns *
                    static_cast<int64_t>(blob.size()));
    clock_->Add(Charge::kCheckpointIo, costs_->checkpoint_sync_ns);
  }
  bytes_written_ += blob.size();
  ++num_writes_;
  blobs_[key] = std::move(blob);
  return Status::OK();
}

Result<std::vector<uint8_t>> StableStorage::Read(
    const std::string& key) const {
  auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    return Status::NotFound("no blob for key '" + key + "'");
  }
  if (clock_ != nullptr && costs_ != nullptr) {
    clock_->Add(Charge::kCheckpointIo,
                costs_->checkpoint_read_per_byte_ns *
                    static_cast<int64_t>(it->second.size()));
  }
  bytes_read_ += it->second.size();
  return it->second;
}

void StableStorage::Delete(const std::string& key) { blobs_.erase(key); }

size_t StableStorage::DeleteWithPrefix(const std::string& prefix) {
  auto it = blobs_.lower_bound(prefix);
  size_t removed = 0;
  while (it != blobs_.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
    it = blobs_.erase(it);
    ++removed;
  }
  return removed;
}

bool StableStorage::Exists(const std::string& key) const {
  return blobs_.count(key) > 0;
}

std::vector<std::string> StableStorage::ListWithPrefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = blobs_.lower_bound(prefix);
       it != blobs_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    out.push_back(it->first);
  }
  return out;
}

uint64_t StableStorage::live_bytes() const {
  uint64_t total = 0;
  for (const auto& [key, blob] : blobs_) total += blob.size();
  return total;
}

}  // namespace flinkless::runtime
