// Failure injection.
//
// The demo lets attendees "choose which partitions to fail and in which
// iterations". A FailureSchedule is the programmatic version of those
// clicks: a list of (iteration, partitions) events. The iteration drivers
// query the schedule at each superstep boundary and destroy the iteration
// state of the named partitions, which is exactly what a crashed task
// manager loses. RandomFailures builds a schedule stochastically for the
// larger sweeps.

#ifndef FLINKLESS_RUNTIME_FAILURE_H_
#define FLINKLESS_RUNTIME_FAILURE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace flinkless::runtime {

/// One injected failure: at the end of `iteration` (1-based), the iteration
/// state held by `partitions` is lost.
struct FailureEvent {
  int iteration = 0;
  std::vector<int> partitions;

  std::string ToString() const;
};

/// An ordered list of failure events. Each event fires exactly once.
class FailureSchedule {
 public:
  FailureSchedule() = default;
  explicit FailureSchedule(std::vector<FailureEvent> events);

  /// Adds one event. Events may target the same iteration more than once;
  /// their partition lists are combined when queried.
  void Add(FailureEvent event);

  /// Partitions failing at the given iteration that have not fired yet.
  /// Marks them fired. Returns an empty vector when nothing fails.
  std::vector<int> Fire(int iteration);

  /// Partitions scheduled at `iteration` without consuming them.
  std::vector<int> Peek(int iteration) const;

  /// True when no event is scheduled at all.
  bool empty() const { return events_.empty(); }

  /// Number of events not yet fired.
  size_t remaining() const;

  /// Resets all events to unfired (so a schedule can be reused across runs).
  void Rewind();

  const std::vector<FailureEvent>& events() const { return events_; }

  /// Parses "iter:part[,part...][;iter:parts...]", e.g. "3:0;5:1,2".
  /// Used by the demo drivers' --fail flag.
  static Result<FailureSchedule> Parse(const std::string& spec);

 private:
  std::vector<FailureEvent> events_;
  std::vector<bool> fired_;
};

/// Builds a schedule where, in each of `max_iterations` iterations, each of
/// `num_partitions` partitions fails independently with probability
/// `per_iteration_prob` (a discrete MTBF model).
FailureSchedule RandomFailures(int max_iterations, int num_partitions,
                               double per_iteration_prob, Rng* rng);

}  // namespace flinkless::runtime

#endif  // FLINKLESS_RUNTIME_FAILURE_H_
