#include "runtime/tracing.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <set>

#include "common/logging.h"
#include "runtime/thread_pool.h"

namespace flinkless::runtime {

namespace {

// Worker slots: 0 = orchestration thread, 1..kMaxWorkers = pool workers.
// Worker ids beyond the table wrap; the per-slot mutex keeps that safe.
constexpr int kWorkerSlots = 257;

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Microseconds with fixed millis precision, as Chrome's "ts"/"dur" expect.
std::string Micros(int64_t ns) {
  int64_t thousandths = ns;  // ns = thousandths of a microsecond
  std::string sign = thousandths < 0 ? "-" : "";
  if (thousandths < 0) thousandths = -thousandths;
  return sign + std::to_string(thousandths / 1000) + "." +
         [](int64_t frac) {
           std::string s = std::to_string(frac);
           return std::string(3 - s.size(), '0') + s;
         }(thousandths % 1000);
}

void WriteArgsJson(const TraceEvent& e, std::ostream& out) {
  out << "{\"partition\": " << e.partition
      << ", \"iteration\": " << e.iteration
      << ", \"sim_ts_ns\": " << e.sim_ts_ns
      << ", \"sim_dur_ns\": " << e.sim_dur_ns;
  for (const auto& [key, value] : e.args) {
    out << ", \"" << JsonEscape(key) << "\": " << value;
  }
  out << "}";
}

}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kOperator:
      return "operator";
    case SpanKind::kShuffleScatter:
      return "shuffle.scatter";
    case SpanKind::kShuffleGather:
      return "shuffle.gather";
    case SpanKind::kIteration:
      return "iteration";
    case SpanKind::kSolutionUpdate:
      return "solution.update";
    case SpanKind::kCheckpoint:
      return "checkpoint";
    case SpanKind::kCompensation:
      return "compensation";
    case SpanKind::kCacheSpill:
      return "cache.spill";
    case SpanKind::kCacheUnspill:
      return "cache.unspill";
    case SpanKind::kMessageLogAppend:
      return "msglog.append";
    case SpanKind::kMessageLogReplay:
      return "msglog.replay";
    case SpanKind::kServerPublish:
      return "server.publish";
  }
  return "?";
}

const char* InstantKindName(InstantKind kind) {
  switch (kind) {
    case InstantKind::kFailureInjected:
      return "failure.injected";
    case InstantKind::kPartitionLost:
      return "partition.lost";
    case InstantKind::kConvergenceReached:
      return "convergence.reached";
  }
  return "?";
}

int64_t TraceEvent::Arg(const std::string& key, int64_t fallback) const {
  for (const auto& [k, v] : args) {
    if (k == key) return v;
  }
  return fallback;
}

bool TraceEventBefore(const TraceEvent& a, const TraceEvent& b) {
  if (a.seq != b.seq) return a.seq < b.seq;
  return a.partition + 1 < b.partition + 1;
}

// ---------------------------------------------------------------- Tracer --

Tracer::Tracer() : Tracer(Options()) {}

Tracer::Tracer(Options options)
    : options_(options), wall_origin_ns_(SteadyNowNs()) {
  if (options_.per_worker_capacity == 0) options_.per_worker_capacity = 1;
  slots_.reserve(kWorkerSlots);
  for (int i = 0; i < kWorkerSlots; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

int64_t Tracer::NowNs() const { return SteadyNowNs() - wall_origin_ns_; }

void Tracer::PopOpenSpan(uint64_t seq) {
  FLINKLESS_CHECK(!open_spans_.empty() && open_spans_.back() == seq,
                  "trace spans must close in reverse open order");
  open_spans_.pop_back();
}

void Tracer::Instant(InstantKind kind, int partition,
                     std::vector<std::pair<std::string, int64_t>> args) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kInstant;
  e.category = InstantKindName(kind);
  e.name = e.category;
  e.wall_ts_ns = NowNs();
  e.sim_ts_ns = SimNowNs();
  e.partition = partition;
  e.worker = ThreadPool::CurrentWorkerId();
  e.iteration = iteration_;
  e.seq = NextSeq();
  e.parent_seq = current_parent();
  e.args = std::move(args);
  Record(std::move(e));
}

Tracer::Slot& Tracer::SlotForThisThread() {
  int id = ThreadPool::CurrentWorkerId();
  return *slots_[static_cast<size_t>(id) % slots_.size()];
}

void Tracer::Record(TraceEvent event) {
  Slot& slot = SlotForThisThread();
  std::lock_guard<std::mutex> lock(slot.mu);
  ++slot.recorded;
  if (slot.ring.size() < options_.per_worker_capacity) {
    slot.ring.push_back(std::move(event));
  } else {
    // Ring overwrite: keep the newest events, evict the oldest.
    slot.ring[slot.next] = std::move(event);
    slot.next = (slot.next + 1) % slot.ring.size();
  }
}

Tracer::Snapshot Tracer::Flush() const {
  Snapshot snapshot;
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    snapshot.events.insert(snapshot.events.end(), slot->ring.begin(),
                           slot->ring.end());
    snapshot.dropped += slot->recorded - slot->ring.size();
  }
  std::stable_sort(snapshot.events.begin(), snapshot.events.end(),
                   TraceEventBefore);
  return snapshot;
}

uint64_t Tracer::dropped_events() const {
  uint64_t dropped = 0;
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    dropped += slot->recorded - slot->ring.size();
  }
  return dropped;
}

// -------------------------------------------------------------- TraceSpan --

TraceSpan::TraceSpan(Tracer* tracer, SpanKind kind, std::string name,
                     int partition)
    : tracer_(tracer), kind_(kind) {
  if (tracer_ == nullptr) return;
  event_.kind = TraceEvent::Kind::kSpan;
  event_.category = SpanKindName(kind);
  event_.name = std::move(name);
  event_.partition = partition;
  event_.worker = ThreadPool::CurrentWorkerId();
  event_.iteration = tracer_->iteration();
  event_.seq = tracer_->NextSeq();
  event_.parent_seq = tracer_->current_parent();
  tracer_->PushOpenSpan(event_.seq);
  event_.sim_ts_ns = tracer_->SimNowNs();
  event_.wall_ts_ns = tracer_->NowNs();
}

void TraceSpan::AddArg(std::string key, int64_t value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(std::move(key), value);
}

void TraceSpan::Close() {
  if (tracer_ == nullptr) return;
  event_.wall_dur_ns = tracer_->NowNs() - event_.wall_ts_ns;
  event_.sim_dur_ns = tracer_->SimNowNs() - event_.sim_ts_ns;
  tracer_->PopOpenSpan(event_.seq);
  tracer_->Record(std::move(event_));
  tracer_ = nullptr;
}

void TraceSpan::Cancel() {
  if (tracer_ == nullptr) return;
  tracer_->PopOpenSpan(event_.seq);
  tracer_ = nullptr;
}

void TracedParallelFor(ThreadPool* pool, const TraceSpan& parent, int count,
                       const std::function<void(int)>& fn,
                       const std::function<int64_t(int)>& records_of,
                       int partition_offset) {
  if (!parent.active()) {
    ParallelFor(pool, count, fn);
    return;
  }
  Tracer* tracer = parent.tracer();
  // Allocated here, on the orchestration thread, so the per-partition
  // spans sort deterministically no matter which workers record them.
  const uint64_t loop_seq = tracer->NextSeq();
  const uint64_t parent_seq = parent.seq();
  const int iteration = parent.iteration();
  const int64_t sim_ts = tracer->SimNowNs();
  const char* category = SpanKindName(parent.kind());
  const std::string& name = parent.name();
  ParallelFor(pool, count, [&](int p) {
    TraceEvent e;
    e.kind = TraceEvent::Kind::kSpan;
    e.category = category;
    e.name = name;
    e.partition = partition_offset + p;
    e.worker = ThreadPool::CurrentWorkerId();
    e.iteration = iteration;
    e.seq = loop_seq;
    e.parent_seq = parent_seq;
    // Workers never touch the SimClock; charges happen on the
    // orchestration thread after the section, so the parent's timestamp
    // is the right attribution.
    e.sim_ts_ns = sim_ts;
    if (records_of) e.args.emplace_back("records", records_of(p));
    e.wall_ts_ns = tracer->NowNs();
    fn(p);
    e.wall_dur_ns = tracer->NowNs() - e.wall_ts_ns;
    tracer->Record(std::move(e));
  });
}

// -------------------------------------------------------------- exporters --

void ExportChromeTrace(const Tracer::Snapshot& snapshot, std::ostream& out) {
  out << "{\"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  // Thread-name metadata so Perfetto labels the worker tracks.
  std::set<int> workers;
  for (const TraceEvent& e : snapshot.events) workers.insert(e.worker);
  for (int w : workers) {
    sep();
    out << "{\"ph\": \"M\", \"pid\": 0, \"tid\": " << w
        << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
        << (w == 0 ? std::string("driver")
                   : "worker-" + std::to_string(w))
        << "\"}}";
  }
  for (const TraceEvent& e : snapshot.events) {
    sep();
    out << "{\"name\": \"" << JsonEscape(e.name) << "\", \"cat\": \""
        << JsonEscape(e.category) << "\", \"ph\": \""
        << (e.kind == TraceEvent::Kind::kSpan ? "X" : "i")
        << "\", \"ts\": " << Micros(e.wall_ts_ns);
    if (e.kind == TraceEvent::Kind::kSpan) {
      out << ", \"dur\": " << Micros(e.wall_dur_ns);
    } else {
      out << ", \"s\": \"g\"";
    }
    out << ", \"pid\": 0, \"tid\": " << e.worker << ", \"args\": ";
    WriteArgsJson(e, out);
    out << "}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {"
      << "\"dropped_events\": \"" << snapshot.dropped << "\"}}\n";
}

void ExportNdjson(const Tracer::Snapshot& snapshot, std::ostream& out) {
  for (const TraceEvent& e : snapshot.events) {
    out << "{\"kind\": \""
        << (e.kind == TraceEvent::Kind::kSpan ? "span" : "instant")
        << "\", \"cat\": \"" << JsonEscape(e.category) << "\", \"name\": \""
        << JsonEscape(e.name) << "\", \"seq\": " << e.seq
        << ", \"parent_seq\": " << e.parent_seq
        << ", \"partition\": " << e.partition << ", \"worker\": " << e.worker
        << ", \"iteration\": " << e.iteration
        << ", \"wall_ts_ns\": " << e.wall_ts_ns
        << ", \"wall_dur_ns\": " << e.wall_dur_ns
        << ", \"sim_ts_ns\": " << e.sim_ts_ns
        << ", \"sim_dur_ns\": " << e.sim_dur_ns << ", \"args\": {";
    bool first = true;
    for (const auto& [key, value] : e.args) {
      if (!first) out << ", ";
      first = false;
      out << "\"" << JsonEscape(key) << "\": " << value;
    }
    out << "}}\n";
  }
  out << "{\"kind\": \"meta\", \"total_events\": " << snapshot.events.size()
      << ", \"dropped_events\": " << snapshot.dropped << "}\n";
}

Status WriteTraceFile(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open trace file '" + path + "'");
  }
  Tracer::Snapshot snapshot = tracer.Flush();
  constexpr const char kNdjson[] = ".ndjson";
  const bool ndjson =
      path.size() >= sizeof(kNdjson) - 1 &&
      path.compare(path.size() - (sizeof(kNdjson) - 1), sizeof(kNdjson) - 1,
                   kNdjson) == 0;
  if (ndjson) {
    ExportNdjson(snapshot, out);
  } else {
    ExportChromeTrace(snapshot, out);
  }
  if (!out) {
    return Status::IOError("failed writing trace file '" + path + "'");
  }
  return Status::OK();
}

ScopedTraceFile::ScopedTraceFile(std::string path, const SimClock* clock,
                                 Tracer** slot)
    : path_(std::move(path)) {
  if (path_.empty() || *slot != nullptr) return;
  Tracer::Options options;
  options.clock = clock;
  tracer_ = std::make_unique<Tracer>(options);
  *slot = tracer_.get();
}

ScopedTraceFile::~ScopedTraceFile() {
  if (tracer_ == nullptr) return;
  Status status = WriteTraceFile(*tracer_, path_);
  if (!status.ok()) {
    FLOG_WARN("trace export failed: " << status.ToString());
  }
}

// ---------------------------------------------------------------- summary --

double TraceOperatorSummary::SkewRatio() const {
  uint64_t total = 0;
  uint64_t max = 0;
  for (uint64_t r : partition_records) {
    total += r;
    max = std::max(max, r);
  }
  if (partition_records.empty() || total == 0) return 1.0;
  double mean =
      static_cast<double>(total) / static_cast<double>(partition_records.size());
  return static_cast<double>(max) / mean;
}

TraceSummary TraceSummary::FromSnapshot(const Tracer::Snapshot& snapshot) {
  TraceSummary summary;
  summary.total_events = snapshot.events.size();
  summary.dropped_events = snapshot.dropped;

  std::map<std::string, TraceOperatorSummary> operators;
  std::map<std::string, uint64_t> instants;
  // seq of job-level operator spans → operator name, for attributing
  // per-partition children and nested shuffle phases.
  std::map<uint64_t, std::string> operator_of_seq;

  for (const TraceEvent& e : snapshot.events) {
    if (e.kind == TraceEvent::Kind::kInstant) {
      ++summary.instant_events;
      ++instants[e.name];
      continue;
    }
    ++summary.span_events;
    if (e.category == SpanKindName(SpanKind::kIteration)) {
      ++summary.iteration_spans;
    }
    if (e.category == SpanKindName(SpanKind::kCacheSpill)) {
      ++summary.spills;
      summary.spilled_bytes += static_cast<uint64_t>(e.Arg("bytes"));
      summary.peak_resident_bytes =
          std::max(summary.peak_resident_bytes,
                   static_cast<uint64_t>(e.Arg("resident_after")) +
                       static_cast<uint64_t>(e.Arg("bytes")));
    } else if (e.category == SpanKindName(SpanKind::kCacheUnspill)) {
      ++summary.unspills;
      summary.unspilled_bytes += static_cast<uint64_t>(e.Arg("bytes"));
      summary.peak_resident_bytes =
          std::max(summary.peak_resident_bytes,
                   static_cast<uint64_t>(e.Arg("resident_after")));
    }
    if (e.category != SpanKindName(SpanKind::kOperator)) {
      // Shuffle phases attribute their messages to the enclosing operator.
      if (e.category == SpanKindName(SpanKind::kShuffleScatter) &&
          e.partition < 0) {
        auto it = operator_of_seq.find(e.parent_seq);
        if (it != operator_of_seq.end()) {
          operators[it->second].messages +=
              static_cast<uint64_t>(e.Arg("messages"));
        }
      }
      // Job-level non-operator children count against the parent's self
      // time below (via operator_of_seq when the parent is an operator).
      if (e.partition < 0) {
        auto it = operator_of_seq.find(e.parent_seq);
        if (it != operator_of_seq.end()) {
          operators[it->second].wall_self_ns -= e.wall_dur_ns;
        }
      }
      continue;
    }
    TraceOperatorSummary& op = operators[e.name];
    op.name = e.name;
    if (e.partition < 0) {
      // Job-level operator span.
      ++op.spans;
      op.wall_total_ns += e.wall_dur_ns;
      op.wall_self_ns += e.wall_dur_ns;
      op.sim_total_ns += e.sim_dur_ns;
      op.records_in += static_cast<uint64_t>(e.Arg("records_in"));
      op.records_out += static_cast<uint64_t>(e.Arg("records_out"));
      operator_of_seq[e.seq] = e.name;
    } else {
      // Per-partition child span: accumulate the skew observation.
      if (op.partition_records.size() <= static_cast<size_t>(e.partition)) {
        op.partition_records.resize(e.partition + 1, 0);
      }
      op.partition_records[e.partition] +=
          static_cast<uint64_t>(e.Arg("records"));
      // Nested operator spans (a job-level operator inside another) would
      // be rare; per-partition spans overlap in wall time, so they do not
      // subtract from self time.
    }
  }

  for (auto& [name, op] : operators) {
    if (op.wall_self_ns < 0) op.wall_self_ns = 0;
    summary.operators.push_back(std::move(op));
  }
  for (auto& [name, count] : instants) {
    summary.instants.emplace_back(name, count);
  }
  return summary;
}

const TraceOperatorSummary* TraceSummary::Find(const std::string& name) const {
  for (const TraceOperatorSummary& op : operators) {
    if (op.name == name) return &op;
  }
  return nullptr;
}

uint64_t TraceSummary::InstantCount(const std::string& name) const {
  for (const auto& [n, count] : instants) {
    if (n == name) return count;
  }
  return 0;
}

}  // namespace flinkless::runtime
