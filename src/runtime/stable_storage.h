// StableStorage: the simulated distributed file system checkpoints go to.
//
// Rollback recovery ("pessimistic" in the paper) periodically writes the
// algorithm state here and reads it back after a failure. The store survives
// worker failures by definition — that is what makes it "stable". Every byte
// moved is charged to the SimClock so failure-free checkpoint overhead is
// measurable.

#ifndef FLINKLESS_RUNTIME_STABLE_STORAGE_H_
#define FLINKLESS_RUNTIME_STABLE_STORAGE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "runtime/cost_model.h"
#include "runtime/sim_clock.h"

namespace flinkless::runtime {

/// An in-memory key -> blob store standing in for a replicated DFS.
/// Writes and reads are charged to the attached SimClock using the attached
/// CostModel. Thread-compatible (external synchronization if shared).
class StableStorage {
 public:
  /// Neither pointer is owned; both must outlive the storage. Either may be
  /// nullptr, in which case no time is charged.
  StableStorage(SimClock* clock, const CostModel* costs)
      : clock_(clock), costs_(costs) {}

  /// Writes (or overwrites) `key`. Charges write cost per byte plus one sync.
  Status Write(const std::string& key, std::vector<uint8_t> blob);

  /// Reads `key`. Charges read cost per byte. NotFound if absent.
  Result<std::vector<uint8_t>> Read(const std::string& key) const;

  /// Removes `key` if present (metadata-only, not charged).
  void Delete(const std::string& key);

  /// Removes every key with the given prefix. Returns how many were removed.
  size_t DeleteWithPrefix(const std::string& prefix);

  bool Exists(const std::string& key) const;

  /// All keys with the given prefix, sorted.
  std::vector<std::string> ListWithPrefix(const std::string& prefix) const;

  /// Cumulative bytes ever written / read (for reports).
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t bytes_read() const { return bytes_read_; }
  /// Number of Write() calls (== number of checkpoint syncs charged).
  uint64_t num_writes() const { return num_writes_; }

  /// Bytes currently held live. O(1): a running counter maintained by
  /// Write/Delete/DeleteWithPrefix (it sits on the hot spill path).
  uint64_t live_bytes() const { return live_bytes_; }

  /// Exclusive-ownership registry for spill-key namespaces. Concurrent
  /// owners (exec caches, message logs — any component spilling under
  /// "spill/<job>/...") must acquire their exact prefix string before the
  /// first write and release it on teardown; acquiring a prefix another
  /// live owner already holds dies via FLINKLESS_CHECK — two owners
  /// sharing a namespace would silently mix blobs (the bytewax rule:
  /// per-dataflow recovery stores never mix). Matching is on the exact
  /// string, so a job's cache ("spill/j/") and its message log
  /// ("spill/j/msglog/") coexist; it is the *same* namespace twice that is
  /// the bug this catches. The job server additionally rejects duplicate
  /// live job ids with a Status before any prefix is touched.
  void AcquirePrefix(const std::string& prefix);

  /// Releases a prefix acquired by AcquirePrefix (no-op when not held).
  void ReleasePrefix(const std::string& prefix);

  bool PrefixAcquired(const std::string& prefix) const {
    return acquired_prefixes_.count(prefix) > 0;
  }

 private:
  SimClock* clock_;
  const CostModel* costs_;
  std::map<std::string, std::vector<uint8_t>> blobs_;
  uint64_t bytes_written_ = 0;
  mutable uint64_t bytes_read_ = 0;
  uint64_t num_writes_ = 0;
  uint64_t live_bytes_ = 0;
  /// Live exclusive spill-key namespaces (see AcquirePrefix).
  std::set<std::string> acquired_prefixes_;
};

}  // namespace flinkless::runtime

#endif  // FLINKLESS_RUNTIME_STABLE_STORAGE_H_
