// ThreadPool: the worker-thread runtime behind partition-parallel execution.
//
// The paper's execution model is "every operator runs independently on each
// of the N partitions"; this pool is what lets the simulated cluster exploit
// that data parallelism on real hardware. It is deliberately work-stealing-
// free: ParallelFor hands out partition indices from a single atomic
// counter, every index writes only its own pre-sized result slot, and the
// caller merges per-index results in index order — so which worker ran which
// partition never influences the output. Determinism is a property of the
// tasks, not the schedule.

#ifndef FLINKLESS_RUNTIME_THREAD_POOL_H_
#define FLINKLESS_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flinkless::runtime {

/// Fixed-size pool of worker threads. All public methods are safe to call
/// from the owning thread; ParallelFor/Run must not be nested (a task must
/// not call back into its own pool).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1). The pool never resizes.
  explicit ThreadPool(int num_threads);

  /// Joins all workers. Outstanding tasks finish first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Cumulative work accounting: parallel sections dispatched and task
  /// indices handed out (ParallelFor counts its `count`, Submit counts 1).
  /// Bumped on the owning thread, so reading from that thread needs no
  /// lock. Totals are a function of the submitted work, never the
  /// schedule. Note the executor mirrors the same counts into metrics v2
  /// at its own level, because a serial executor has no pool at all and
  /// the exported numbers must not depend on num_threads.
  struct WorkStats {
    uint64_t parallel_sections = 0;
    uint64_t tasks = 0;
  };

  const WorkStats& work_stats() const { return work_stats_; }

  /// Runs fn(i) for every i in [0, count), spread over the workers plus the
  /// calling thread, and blocks until all indices completed. Helper fan-out
  /// is capped at HardwareConcurrency() - 1 (the caller takes the last
  /// core): requesting more threads than cores never oversubscribes — it
  /// just runs at the hardware's parallelism, down to fully serial on a
  /// single-core host. Exceptions thrown by fn are captured; the first one
  /// (by completion order) is rethrown on the calling thread after every
  /// index finished, so partial results are never observed mid-flight.
  void ParallelFor(int count, const std::function<void(int)>& fn);

  /// Enqueues one task for any worker; Wait() blocks until all submitted
  /// tasks completed. Exceptions behave as in ParallelFor but are rethrown
  /// by Wait().
  void Submit(std::function<void()> task);
  void Wait();

  /// std::thread::hardware_concurrency with a floor of 1.
  static int HardwareConcurrency();

  /// Worker slot of the calling thread: 0 for any thread outside a pool
  /// (including the orchestration thread, which participates in
  /// ParallelFor), 1..N for pool workers. The tracing layer tags spans
  /// with this so pool utilization is visible in exported traces.
  static int CurrentWorkerId();

  /// Resolves an ExecOptions-style thread count: 0 means hardware
  /// concurrency, anything else is clamped to >= 1.
  static int ResolveThreadCount(int requested);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  WorkStats work_stats_;

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::vector<std::function<void()>> queue_;
  int in_flight_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

/// Runs fn(i) for i in [0, count): on `pool` when one is available, inline
/// on the calling thread otherwise. The serial path is the exact same loop a
/// pool of one worker would execute, so callers get identical results either
/// way — this is the hook the recovery path and compensation functions use.
void ParallelFor(ThreadPool* pool, int count,
                 const std::function<void(int)>& fn);

}  // namespace flinkless::runtime

#endif  // FLINKLESS_RUNTIME_THREAD_POOL_H_
