// CostModel: the simulated-time prices the engine charges for work.
//
// The demo paper's quantitative claims (checkpoint overhead in failure-free
// runs, recovery cost under failures) were measured on a physical cluster. We
// reproduce them on a single machine by charging every unit of work to a
// simulated clock with cluster-like relative prices: shuffling a record over
// the network is more expensive than touching it locally, and writing a byte
// to replicated stable storage is more expensive still. Absolute values are
// arbitrary; only the ratios shape the experiments, and the defaults follow
// commodity-cluster rules of thumb (DRAM ~ 10ns/rec << network ~ 1us/rec <<
// replicated DFS write ~ 30ns/byte + fixed sync latency).

#ifndef FLINKLESS_RUNTIME_COST_MODEL_H_
#define FLINKLESS_RUNTIME_COST_MODEL_H_

#include <cstdint>

namespace flinkless::runtime {

/// Prices, in simulated nanoseconds, for the unit operations of the engine.
struct CostModel {
  /// Applying one operator to one record on a worker (CPU + local memory).
  int64_t cpu_per_record_ns = 50;

  /// Sending one record to a different partition during a shuffle
  /// (serialization + NIC + deserialization). Records staying in the same
  /// partition are charged only cpu_per_record_ns.
  int64_t network_per_record_ns = 1000;

  /// Writing one byte of a checkpoint to stable (replicated) storage.
  int64_t checkpoint_write_per_byte_ns = 30;

  /// Reading one byte of a checkpoint back during rollback recovery.
  int64_t checkpoint_read_per_byte_ns = 10;

  /// Fixed latency of one checkpoint sync (barrier + fsync + replication
  /// acknowledgements), charged once per materialized checkpoint.
  int64_t checkpoint_sync_ns = 5'000'000;

  /// Acquiring a replacement worker after a failure (container start,
  /// task redeployment). Charged once per failure event.
  int64_t node_acquisition_ns = 20'000'000;

  /// A cost model where everything is free; useful in unit tests that only
  /// check dataflow semantics.
  static CostModel Free() {
    CostModel m;
    m.cpu_per_record_ns = 0;
    m.network_per_record_ns = 0;
    m.checkpoint_write_per_byte_ns = 0;
    m.checkpoint_read_per_byte_ns = 0;
    m.checkpoint_sync_ns = 0;
    m.node_acquisition_ns = 0;
    return m;
  }
};

}  // namespace flinkless::runtime

#endif  // FLINKLESS_RUNTIME_COST_MODEL_H_
