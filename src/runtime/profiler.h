// Trace-driven profiler: critical paths, self-time attribution, partition
// skew, and recovery health reports (DESIGN.md §13).
//
// PR 2's Tracer records raw spans; this layer answers the questions the
// paper's demo poses about them — *where does a superstep spend its time,
// how skewed are the partitions, and how expensive was each recovery*. The
// profiler consumes a Tracer::Snapshot (already merged into deterministic
// order) and rebuilds the span tree via parent_seq:
//  * Job-level children of a span ran sequentially on the orchestration
//    thread — each is a segment of the parent's critical path.
//  * Per-partition children sharing one seq (a TracedParallelFor section)
//    ran in parallel — the longest partition is the critical one.
// Simulated durations exist only on job-level spans (workers never touch
// the SimClock), so parallel sections are compared by wall duration; the
// chosen partition is therefore a real-schedule observation, not a
// deterministic quantity. Everything else the profiler derives from
// sim durations and span structure is deterministic.
//
// Recovery health is computed from the MetricsRegistry series instead (the
// per-iteration stats both drivers record), optionally against a
// failure-free baseline run of the same job — that baseline is what turns
// "time spent in the recovery window" into "time *lost* to the failure".

#ifndef FLINKLESS_RUNTIME_PROFILER_H_
#define FLINKLESS_RUNTIME_PROFILER_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runtime/metrics.h"
#include "runtime/sim_clock.h"
#include "runtime/tracing.h"

namespace flinkless::runtime {

/// One span on a superstep's critical path, in execution order.
struct CriticalPathStep {
  /// SpanKindName category ("operator", "compensation", ...).
  std::string category;
  std::string name;
  /// Partition of a parallel-section step; -1 for job-level spans.
  int partition = -1;
  /// Nesting depth below the iteration span (0 = direct child).
  int depth = 0;
  /// Simulated self time of the step (0 for per-partition steps — workers
  /// never charge the SimClock).
  int64_t sim_self_ns = 0;
  /// Wall self time (nondeterministic; the skew signal).
  int64_t wall_self_ns = 0;
};

/// Critical-path decomposition of one superstep.
struct SuperstepProfile {
  int iteration = 0;
  /// The iteration span's durations.
  int64_t sim_ns = 0;
  int64_t wall_ns = 0;
  /// Spans on the critical path, pre-order (a step precedes its chosen
  /// children).
  std::vector<CriticalPathStep> critical_path;
  /// Critical-path sim self time summed per category — e.g. how much of a
  /// recovery superstep was "compensation".
  std::map<std::string, int64_t> sim_self_by_category;

  /// True when a step of `category` is on the critical path.
  bool HasCategory(const std::string& category) const;
};

/// Whole-run aggregate for one (category, name) span family.
struct OperatorProfile {
  std::string category;
  std::string name;
  /// Job-level spans observed (= executions).
  uint64_t spans = 0;
  int64_t sim_total_ns = 0;
  /// sim_total_ns minus job-level children — simulated time attributed to
  /// the span itself.
  int64_t sim_self_ns = 0;
  int64_t wall_total_ns = 0;
  int64_t wall_self_ns = 0;
  /// Per-partition child span wall durations: the skew observations.
  int64_t wall_partition_max_ns = 0;
  int64_t wall_partition_median_ns = 0;
  /// Partitions observed in parallel sections of this family.
  int partitions_observed = 0;

  /// max/median partition wall time — 1.0 is balanced, higher is skewed;
  /// 1.0 when the family recorded no parallel sections.
  double WallSkew() const;
};

/// The profiler's output: per-superstep critical paths plus whole-run
/// operator aggregates.
struct ProfileReport {
  std::vector<SuperstepProfile> supersteps;
  /// Sorted by (category, name).
  std::vector<OperatorProfile> operators;
  uint64_t total_events = 0;
  uint64_t dropped_events = 0;

  static ProfileReport FromSnapshot(const Tracer::Snapshot& snapshot);

  const OperatorProfile* Find(const std::string& category,
                              const std::string& name) const;

  /// Indices of `operators` ordered by descending sim self time (ties by
  /// category, name), truncated to `n` — the hotspot ranking.
  std::vector<const OperatorProfile*> Hotspots(size_t n) const;

  /// True when any superstep's critical path contains `category`
  /// ("compensation" / "checkpoint" on a traced recovery run).
  bool CriticalPathHasCategory(const std::string& category) const;

  /// Human-readable report: top-N hotspots, skew table, and the critical
  /// path of the most expensive superstep plus every failure superstep.
  std::string RenderText(size_t top_n = 10) const;
};

// --------------------------------------------------------- recovery health --

/// Everything measured about one injected failure's recovery, derived from
/// the per-iteration series (and a failure-free baseline when available).
struct RecoveryHealth {
  /// Iteration the failure was injected into.
  int failure_iteration = 0;
  /// Last iteration of the recovery window: the first iteration whose
  /// convergence metric returned to the pre-failure level, or the window's
  /// forced end (next failure / end of run) when it never did.
  int window_end_iteration = 0;
  /// Supersteps executed from the failure until reconvergence (window
  /// length). This is the paper's "how many supersteps did the failure
  /// cost".
  int supersteps_to_reconverge = 0;
  bool reconverged = false;

  /// Simulated time spent in the recovery window, by charge. With a
  /// baseline, the same-numbered baseline iterations are subtracted —
  /// time *lost* to the failure; without one it is the window's gross
  /// cost (the difference is documented in the report).
  std::array<int64_t, kNumCharges> sim_lost_by_charge{};
  int64_t sim_lost_ns = 0;

  /// Messages shuffled in the window (minus baseline when available) —
  /// the recomputation traffic the failure caused.
  int64_t messages_recomputed = 0;

  /// Convergence-metric damage: metric at the failure iteration minus the
  /// reference (baseline's same iteration, else the pre-failure value).
  /// Smaller is better — an effective compensation keeps this near zero.
  double convergence_gap = 0.0;
  /// The metric the window had to return to.
  double pre_failure_metric = 0.0;

  bool baseline_adjusted = false;
};

/// One report per failure_injected iteration in `registry`. `baseline` is
/// an optional failure-free run of the same job (same graph, options, and
/// cost model); when present, window costs are reported net of it. A
/// window ends at reconvergence, the next failure, or the end of the run.
std::vector<RecoveryHealth> ComputeRecoveryHealth(
    const MetricsRegistry& registry,
    const MetricsRegistry* baseline = nullptr);

/// Human-readable table of the reports (one block per failure).
std::string RenderRecoveryHealth(const std::vector<RecoveryHealth>& reports);

}  // namespace flinkless::runtime

#endif  // FLINKLESS_RUNTIME_PROFILER_H_
