// Cluster: bookkeeping of workers and the partition -> worker assignment.
//
// The engine's data movement is simulated, but the recovery protocol needs a
// concrete notion of "the worker holding partition p died and its
// computations were re-assigned to a newly acquired node" (paper §2.2). The
// Cluster tracks worker identity, liveness, and the assignment, and charges
// the node-acquisition cost when a replacement is spun up.

#ifndef FLINKLESS_RUNTIME_CLUSTER_H_
#define FLINKLESS_RUNTIME_CLUSTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "runtime/cost_model.h"
#include "runtime/sim_clock.h"

namespace flinkless::runtime {

/// Identifies a (simulated) worker process. Monotonically increasing across
/// replacements, so a replacement worker is distinguishable from the one it
/// replaces.
using WorkerId = int64_t;

/// One worker's record.
struct WorkerInfo {
  WorkerId id = -1;
  bool alive = true;
  /// Which failure epoch created this worker (0 = initial deployment).
  int epoch = 0;
};

/// Tracks workers and the partition assignment for one job.
class Cluster {
 public:
  /// Spins up `num_partitions` workers, one partition each (the demo deploys
  /// one task per partition). Clock/costs may be nullptr (no charging).
  Cluster(int num_partitions, SimClock* clock, const CostModel* costs);

  int num_partitions() const { return static_cast<int>(assignment_.size()); }

  /// Worker currently responsible for `partition`.
  Result<WorkerId> WorkerOf(int partition) const;

  /// True when the worker holding `partition` is alive.
  bool PartitionHealthy(int partition) const;

  /// Kills the workers holding the given partitions (idempotent per worker).
  /// Returns how many live workers were killed.
  int KillPartitions(const std::vector<int>& partitions);

  /// Replaces dead workers for the given partitions with newly acquired
  /// ones, charging node acquisition once per replacement. Partitions whose
  /// worker is alive are left untouched.
  Status ReassignToFreshWorkers(const std::vector<int>& partitions);

  /// Total workers ever created (initial + replacements).
  int64_t total_workers_created() const { return next_worker_id_; }

  /// Number of failure epochs so far (ReassignToFreshWorkers calls that
  /// actually replaced something).
  int epoch() const { return epoch_; }

  const std::vector<WorkerInfo>& workers() const { return workers_; }

 private:
  WorkerId NewWorker();

  SimClock* clock_;
  const CostModel* costs_;
  std::vector<WorkerInfo> workers_;       // indexed by WorkerId
  std::vector<WorkerId> assignment_;      // partition -> worker
  WorkerId next_worker_id_ = 0;
  int epoch_ = 0;
};

}  // namespace flinkless::runtime

#endif  // FLINKLESS_RUNTIME_CLUSTER_H_
