#include "runtime/metrics.h"

#include <algorithm>
#include <bit>
#include <charconv>
#include <fstream>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "runtime/thread_pool.h"

namespace flinkless::runtime {

namespace {

// Worker slots: 0 = orchestration thread, 1..kMaxWorkers = pool workers.
// Ids beyond the table wrap; the per-slot mutex keeps that safe. Matches
// the Tracer's slot table so a worker hits the same shard in both.
constexpr int kWorkerSlots = 257;

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Shortest round-trip decimal form of a double — deterministic for equal
/// values, locale-independent (both exporters compare byte-identical
/// across runs, so iostream formatting is off the table).
std::string FormatDouble(double value) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) return "0";
  return std::string(buf, ptr);
}

/// Prometheus metric name: '.' and anything non-alphanumeric become '_'.
std::string PromName(const std::string& name) {
  std::string out = "flinkless_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

double IterationStats::Gauge(const std::string& name, double fallback) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? fallback : it->second;
}

void MetricsRegistry::RecordIteration(IterationStats stats) {
  iterations_.push_back(std::move(stats));
}

void MetricsRegistry::IncrCounter(const std::string& name, uint64_t delta) {
  counters_[name] += delta;
}

uint64_t MetricsRegistry::Counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<double> MetricsRegistry::GaugeSeries(const std::string& name,
                                                 double fallback) const {
  std::vector<double> out;
  out.reserve(iterations_.size());
  for (const auto& it : iterations_) out.push_back(it.Gauge(name, fallback));
  return out;
}

std::vector<int64_t> MetricsRegistry::ChargeSeries(Charge c) const {
  std::vector<int64_t> out;
  out.reserve(iterations_.size());
  for (const auto& it : iterations_) out.push_back(it.SimTimeOf(c));
  return out;
}

int64_t MetricsRegistry::TotalSimTimeOf(Charge c) const {
  int64_t total = 0;
  for (const auto& it : iterations_) total += it.SimTimeOf(c);
  return total;
}

uint64_t MetricsRegistry::TotalMessages() const {
  uint64_t total = 0;
  for (const auto& it : iterations_) total += it.messages_shuffled;
  return total;
}

uint64_t MetricsRegistry::TotalRecords() const {
  uint64_t total = 0;
  for (const auto& it : iterations_) total += it.records_processed;
  return total;
}

uint64_t MetricsRegistry::TotalCheckpointBytes() const {
  uint64_t total = 0;
  for (const auto& it : iterations_) total += it.bytes_checkpointed;
  return total;
}

void MetricsRegistry::Reset() {
  iterations_.clear();
  counters_.clear();
}

// --------------------------------------------------------------- Histogram --

int Histogram::BucketOf(int64_t value) {
  if (value <= 0) return 0;
  const int width = std::bit_width(static_cast<uint64_t>(value));
  return std::min(width, kNumBuckets - 1);
}

int64_t Histogram::BucketUpperBound(int bucket) {
  FLINKLESS_CHECK(bucket >= 0 && bucket < kNumBuckets,
                  "histogram bucket out of range");
  if (bucket == 0) return 0;
  if (bucket == kNumBuckets - 1) return std::numeric_limits<int64_t>::max();
  return (int64_t{1} << bucket) - 1;
}

void Histogram::Observe(int64_t value) {
  ++buckets_[BucketOf(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.count_ == 0) return;
  for (int b = 0; b < kNumBuckets; ++b) buckets_[b] += other.buckets_[b];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

// --------------------------------------------------------- MetricsSnapshot --

uint64_t MetricsSnapshot::CounterTotal(const std::string& name) const {
  auto it = counters.find(name);
  if (it == counters.end()) return 0;
  uint64_t total = 0;
  for (const auto& [partition, value] : it->second) total += value;
  return total;
}

uint64_t MetricsSnapshot::Counter(const std::string& name,
                                  int partition) const {
  auto it = counters.find(name);
  if (it == counters.end()) return 0;
  auto jt = it->second.find(partition);
  return jt == it->second.end() ? 0 : jt->second;
}

const Histogram* MetricsSnapshot::FindHistogram(const std::string& name) const {
  auto it = histograms.find(name);
  return it == histograms.end() ? nullptr : &it->second;
}

// ------------------------------------------------------------- MetricsSink --

MetricsSink::MetricsSink() {
  slots_.reserve(kWorkerSlots);
  for (int i = 0; i < kWorkerSlots; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

MetricsSink::Slot& MetricsSink::SlotForThisThread() {
  int id = ThreadPool::CurrentWorkerId();
  return *slots_[static_cast<size_t>(id) % slots_.size()];
}

void MetricsSink::Count(const std::string& name, int partition,
                        uint64_t delta) {
  Slot& slot = SlotForThisThread();
  std::lock_guard<std::mutex> lock(slot.mu);
  slot.counters[{name, partition}] += delta;
}

void MetricsSink::Observe(const std::string& name, int64_t value) {
  Slot& slot = SlotForThisThread();
  std::lock_guard<std::mutex> lock(slot.mu);
  slot.histograms[name].Observe(value);
}

void MetricsSink::Merge(const std::string& name, const Histogram& local) {
  Slot& slot = SlotForThisThread();
  std::lock_guard<std::mutex> lock(slot.mu);
  slot.histograms[name].MergeFrom(local);
}

void MetricsSink::SetGauge(const std::string& name, int partition,
                           double value) {
  gauges_[{name, partition}] = value;
}

MetricsSnapshot MetricsSink::Collect() const {
  MetricsSnapshot snapshot;
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    for (const auto& [key, value] : slot->counters) {
      snapshot.counters[key.first][key.second] += value;
    }
    for (const auto& [name, hist] : slot->histograms) {
      snapshot.histograms[name].MergeFrom(hist);
    }
  }
  for (const auto& [key, value] : gauges_) {
    snapshot.gauges[key.first][key.second] = value;
  }
  return snapshot;
}

void MetricsSink::Reset() {
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->counters.clear();
    slot->histograms.clear();
  }
  gauges_.clear();
}

// --------------------------------------------------------------- exporters --

void ExportMetricsNdjson(const MetricsRegistry& registry,
                         const MetricsSnapshot& snapshot, std::ostream& out) {
  // Per-iteration series. wall_time_ns is deliberately absent: every field
  // on these lines is deterministic, so the whole export diffs clean
  // across thread counts.
  for (const IterationStats& it : registry.iterations()) {
    out << "{\"kind\": \"iteration\", \"iteration\": " << it.iteration
        << ", \"records_processed\": " << it.records_processed
        << ", \"messages_shuffled\": " << it.messages_shuffled
        << ", \"bytes_checkpointed\": " << it.bytes_checkpointed
        << ", \"failure_injected\": " << (it.failure_injected ? "true" : "false")
        << ", \"sim_time_ns\": " << it.sim_time_ns
        << ", \"sim_time_by_charge\": {";
    for (int c = 0; c < kNumCharges; ++c) {
      if (c > 0) out << ", ";
      out << "\"" << ChargeName(static_cast<Charge>(c))
          << "\": " << it.sim_time_by_charge[c];
    }
    out << "}, \"spills\": " << it.spills << ", \"unspills\": " << it.unspills
        << ", \"spilled_bytes\": " << it.spilled_bytes
        << ", \"peak_resident_bytes\": " << it.peak_resident_bytes
        << ", \"gauges\": {";
    bool first = true;
    for (const auto& [name, value] : it.gauges) {
      if (!first) out << ", ";
      first = false;
      out << "\"" << JsonEscape(name) << "\": " << FormatDouble(value);
    }
    out << "}}\n";
  }

  // Counter families: per-partition samples, then the job total per name.
  // Registry whole-job counters fold in as partition -1 lines so both
  // generations share one export (the v1 accessors stay as shims).
  std::map<std::string, std::map<int, uint64_t>> counters = snapshot.counters;
  for (const auto& [name, value] : registry.counters()) {
    counters[name][-1] += value;
  }
  for (const auto& [name, by_partition] : counters) {
    uint64_t total = 0;
    for (const auto& [partition, value] : by_partition) {
      total += value;
      out << "{\"kind\": \"counter\", \"name\": \"" << JsonEscape(name)
          << "\", \"partition\": " << partition << ", \"value\": " << value
          << "}\n";
    }
    out << "{\"kind\": \"counter_total\", \"name\": \"" << JsonEscape(name)
        << "\", \"value\": " << total << "}\n";
  }

  for (const auto& [name, by_partition] : snapshot.gauges) {
    for (const auto& [partition, value] : by_partition) {
      out << "{\"kind\": \"gauge\", \"name\": \"" << JsonEscape(name)
          << "\", \"partition\": " << partition
          << ", \"value\": " << FormatDouble(value) << "}\n";
    }
  }

  for (const auto& [name, hist] : snapshot.histograms) {
    out << "{\"kind\": \"histogram\", \"name\": \"" << JsonEscape(name)
        << "\", \"count\": " << hist.count() << ", \"sum\": " << hist.sum()
        << ", \"min\": " << hist.min() << ", \"max\": " << hist.max()
        << ", \"buckets\": [";
    bool first = true;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      if (hist.buckets()[b] == 0) continue;
      if (!first) out << ", ";
      first = false;
      out << "{\"le\": ";
      if (b == Histogram::kNumBuckets - 1) {
        out << "\"+Inf\"";
      } else {
        out << Histogram::BucketUpperBound(b);
      }
      out << ", \"count\": " << hist.buckets()[b] << "}";
    }
    out << "]}\n";
  }

  out << "{\"kind\": \"meta\", \"iterations\": " << registry.iterations().size()
      << ", \"counter_families\": " << counters.size()
      << ", \"gauge_families\": " << snapshot.gauges.size()
      << ", \"histogram_families\": " << snapshot.histograms.size() << "}\n";
}

void ExportMetricsPrometheus(const MetricsRegistry& registry,
                             const MetricsSnapshot& snapshot,
                             std::ostream& out) {
  std::map<std::string, std::map<int, uint64_t>> counters = snapshot.counters;
  for (const auto& [name, value] : registry.counters()) {
    counters[name][-1] += value;
  }
  for (const auto& [name, by_partition] : counters) {
    const std::string prom = PromName(name);
    out << "# TYPE " << prom << " counter\n";
    uint64_t total = 0;
    for (const auto& [partition, value] : by_partition) {
      total += value;
      if (partition < 0) continue;  // folded into the unlabeled total
      out << prom << "{partition=\"" << partition << "\"} " << value << "\n";
    }
    out << prom << " " << total << "\n";
  }

  for (const auto& [name, by_partition] : snapshot.gauges) {
    const std::string prom = PromName(name);
    out << "# TYPE " << prom << " gauge\n";
    for (const auto& [partition, value] : by_partition) {
      if (partition < 0) {
        out << prom << " " << FormatDouble(value) << "\n";
      } else {
        out << prom << "{partition=\"" << partition << "\"} "
            << FormatDouble(value) << "\n";
      }
    }
  }

  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string prom = PromName(name);
    out << "# TYPE " << prom << " histogram\n";
    uint64_t cumulative = 0;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      cumulative += hist.buckets()[b];
      // Prometheus wants the full cumulative ladder, but 33 fixed buckets
      // would dwarf the data; emit a rung only where the count advanced,
      // plus the mandatory +Inf.
      if (hist.buckets()[b] == 0 && b != Histogram::kNumBuckets - 1) continue;
      out << prom << "_bucket{le=\"";
      if (b == Histogram::kNumBuckets - 1) {
        out << "+Inf";
      } else {
        out << Histogram::BucketUpperBound(b);
      }
      out << "\"} " << cumulative << "\n";
    }
    out << prom << "_sum " << hist.sum() << "\n";
    out << prom << "_count " << hist.count() << "\n";
  }

  // Registry roll-ups: the totals the bench harnesses quote.
  out << "# TYPE flinkless_sim_time_ns counter\n";
  int64_t sim_total = 0;
  for (int c = 0; c < kNumCharges; ++c) {
    const int64_t ns = registry.TotalSimTimeOf(static_cast<Charge>(c));
    sim_total += ns;
    out << "flinkless_sim_time_ns{charge=\""
        << ChargeName(static_cast<Charge>(c)) << "\"} " << ns << "\n";
  }
  out << "flinkless_sim_time_ns " << sim_total << "\n";
  out << "# TYPE flinkless_iterations_total counter\n";
  out << "flinkless_iterations_total " << registry.iterations().size() << "\n";
  out << "# TYPE flinkless_messages_total counter\n";
  out << "flinkless_messages_total " << registry.TotalMessages() << "\n";
  out << "# TYPE flinkless_records_total counter\n";
  out << "flinkless_records_total " << registry.TotalRecords() << "\n";
  out << "# TYPE flinkless_checkpoint_bytes_total counter\n";
  out << "flinkless_checkpoint_bytes_total " << registry.TotalCheckpointBytes()
      << "\n";
}

Status WriteMetricsFile(const MetricsRegistry& registry,
                        const MetricsSink& sink, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open metrics file '" + path + "'");
  }
  MetricsSnapshot snapshot = sink.Collect();
  constexpr const char kProm[] = ".prom";
  const bool prom =
      path.size() >= sizeof(kProm) - 1 &&
      path.compare(path.size() - (sizeof(kProm) - 1), sizeof(kProm) - 1,
                   kProm) == 0;
  if (prom) {
    ExportMetricsPrometheus(registry, snapshot, out);
  } else {
    ExportMetricsNdjson(registry, snapshot, out);
  }
  if (!out) {
    return Status::IOError("failed writing metrics file '" + path + "'");
  }
  return Status::OK();
}

ScopedMetricsFile::ScopedMetricsFile(std::string path,
                                     const MetricsRegistry* registry,
                                     MetricsSink** slot)
    : path_(std::move(path)), registry_(registry) {
  if (path_.empty() || *slot != nullptr) return;
  sink_ = std::make_unique<MetricsSink>();
  *slot = sink_.get();
}

ScopedMetricsFile::~ScopedMetricsFile() {
  if (sink_ == nullptr) return;
  static const MetricsRegistry kEmptyRegistry;
  const MetricsRegistry& registry =
      registry_ != nullptr ? *registry_ : kEmptyRegistry;
  Status status = WriteMetricsFile(registry, *sink_, path_);
  if (!status.ok()) {
    FLOG_WARN("metrics export failed: " << status.ToString());
  }
}

}  // namespace flinkless::runtime
