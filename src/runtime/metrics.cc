#include "runtime/metrics.h"

namespace flinkless::runtime {

double IterationStats::Gauge(const std::string& name, double fallback) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? fallback : it->second;
}

void MetricsRegistry::RecordIteration(IterationStats stats) {
  iterations_.push_back(std::move(stats));
}

void MetricsRegistry::IncrCounter(const std::string& name, uint64_t delta) {
  counters_[name] += delta;
}

uint64_t MetricsRegistry::Counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<double> MetricsRegistry::GaugeSeries(const std::string& name,
                                                 double fallback) const {
  std::vector<double> out;
  out.reserve(iterations_.size());
  for (const auto& it : iterations_) out.push_back(it.Gauge(name, fallback));
  return out;
}

std::vector<int64_t> MetricsRegistry::ChargeSeries(Charge c) const {
  std::vector<int64_t> out;
  out.reserve(iterations_.size());
  for (const auto& it : iterations_) out.push_back(it.SimTimeOf(c));
  return out;
}

int64_t MetricsRegistry::TotalSimTimeOf(Charge c) const {
  int64_t total = 0;
  for (const auto& it : iterations_) total += it.SimTimeOf(c);
  return total;
}

uint64_t MetricsRegistry::TotalMessages() const {
  uint64_t total = 0;
  for (const auto& it : iterations_) total += it.messages_shuffled;
  return total;
}

uint64_t MetricsRegistry::TotalRecords() const {
  uint64_t total = 0;
  for (const auto& it : iterations_) total += it.records_processed;
  return total;
}

uint64_t MetricsRegistry::TotalCheckpointBytes() const {
  uint64_t total = 0;
  for (const auto& it : iterations_) total += it.bytes_checkpointed;
  return total;
}

void MetricsRegistry::Reset() {
  iterations_.clear();
  counters_.clear();
}

}  // namespace flinkless::runtime
