// MemoryManager: a budgeted residency manager for spillable artifacts.
//
// Iterative jobs keep loop-invariant execution artifacts (shuffled static
// inputs, join indexes, cogroup groups — DESIGN.md §10) resident for the
// whole run. Once graphs outgrow the configured memory budget, the cold
// artifacts must move to StableStorage and come back on access — Flink's
// managed-memory design ("Spinning Fast Iterative Data Flows", Ewen et
// al.). The manager tracks resident bytes against a budget and evicts in
// deterministic LRU order; every byte spilled or reloaded is charged to the
// SimClock through the StableStorage the segments write to.
//
// Determinism (DESIGN.md §11): recency is a logical access counter bumped
// on the executor's orchestration thread, ties break on the segment's
// spill key — never wall time — so the eviction sequence (and therefore
// outputs, stats, and simulated charges) is a pure function of the plan,
// the data, and the budget, identical at any thread count.
//
// Residency is measured in *serialized* bytes (what a spill would write),
// not heap bytes: the measure must be platform- and allocator-independent
// for the budget decisions to be reproducible.

#ifndef FLINKLESS_RUNTIME_MEMORY_MANAGER_H_
#define FLINKLESS_RUNTIME_MEMORY_MANAGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/tracing.h"

namespace flinkless::runtime {

class MetricsSink;

/// One unit of budgeted memory. Implementations serialize themselves to
/// StableStorage under their `spill_key()` and rebuild on Unspill(); any
/// derived structures (hash indexes) must be reconstructed from the
/// reloaded bytes, since they reference the dropped resident records.
class SpillableSegment {
 public:
  virtual ~SpillableSegment() = default;

  /// Stable identity: the StableStorage key the segment spills to (under
  /// the reserved "spill/" prefix) and the deterministic LRU tie-break.
  virtual const std::string& spill_key() const = 0;

  /// Serialized size of the resident state; 0 while spilled.
  virtual uint64_t resident_bytes() const = 0;

  /// Partitions of the underlying artifact (trace-span payload).
  virtual int num_partitions() const = 0;

  virtual bool spilled() const = 0;

  /// Writes the resident state to stable storage (charged) and drops it.
  /// Only called while resident.
  virtual Status Spill() = 0;

  /// Reads the blob back, rebuilds the resident state (and any derived
  /// indexes), and deletes the blob. Only called while spilled.
  virtual Status Unspill() = 0;
};

/// Tracks registered segments against a byte budget (0 = unlimited) and
/// spills least-recently-used segments until residency fits. Owned by an
/// iteration driver alongside the ExecCache; all calls must come from the
/// executor's orchestration thread.
class MemoryManager {
 public:
  struct Stats {
    uint64_t spills = 0;
    uint64_t unspills = 0;
    /// Cumulative bytes written by spills / read back by unspills.
    uint64_t spilled_bytes = 0;
    uint64_t unspilled_bytes = 0;
    /// High-water mark of total resident bytes across segments.
    uint64_t peak_resident_bytes = 0;
  };

  /// Per-owner residency breakdown (owners are the job/dataflow ids passed
  /// to Register). Admission control reads this to see who occupies the
  /// shared budget; the dashboards to see which job got spilled.
  struct OwnerStats {
    uint64_t segments = 0;
    uint64_t resident_bytes = 0;
    /// Serialized bytes of this owner's segments currently sitting in
    /// StableStorage (not cumulative — drops back on unspill/unregister).
    uint64_t spilled_bytes = 0;
    /// Cumulative spills/unspills charged to this owner's segments.
    uint64_t spills = 0;
    uint64_t unspills = 0;
  };

  explicit MemoryManager(uint64_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  uint64_t budget_bytes() const { return budget_bytes_; }

  /// Mirrors every spill/unspill (count, bytes, and the spill-size
  /// histogram) into the metrics v2 sink. Borrowed, may be null (= off);
  /// set by the owning driver before the run. The legacy stats() block
  /// stays as a shim over the same events.
  void set_metrics(MetricsSink* metrics) { metrics_ = metrics; }

  /// Registers a segment as most-recently-used. The caller still owns it
  /// and must Unregister before destroying it. `owner` tags the segment
  /// for the per-owner breakdown (the registering component's job or
  /// dataflow id; empty = untagged, reported under ""). Re-registering an
  /// existing segment refreshes recency and keeps the first owner tag.
  void Register(SpillableSegment* segment, const std::string& owner = "");

  /// Drops the segment from the LRU list (its blob, if any, is the
  /// caller's to delete).
  void Unregister(SpillableSegment* segment);

  /// Marks `segment` most-recently-used, reloading it first when spilled.
  /// `*reloaded` (optional) reports whether an unspill happened; a
  /// "cache.unspill" span is recorded on `tracer` when it did.
  Status Touch(SpillableSegment* segment, Tracer* tracer, bool* reloaded);

  /// Spills LRU segments until residency fits the budget. `keep` (may be
  /// null) is exempt — the segment just produced or touched must survive
  /// the pass, which is what grants "budget + one segment" of slack when a
  /// single artifact alone exceeds the budget. Records one "cache.spill"
  /// span per eviction on `tracer`.
  Status EnforceBudget(const SpillableSegment* keep, Tracer* tracer);

  /// Total resident bytes across registered segments.
  uint64_t resident_bytes() const;

  size_t num_segments() const { return segments_.size(); }

  const Stats& stats() const { return stats_; }

  /// Per-owner breakdown of the registered segments, keyed by the owner
  /// tag given at Register (std::map: deterministic order). Residency is
  /// recomputed from the segments; spill counters accumulate per owner as
  /// events happen.
  std::map<std::string, OwnerStats> OwnerBreakdown() const;

 private:
  struct Slot {
    SpillableSegment* segment = nullptr;
    /// Logical recency: bumped per Register/Touch on the orchestration
    /// thread. Unique, so LRU order is total; spill_key breaks the (never
    /// observed) tie defensively.
    uint64_t last_access = 0;
    /// Owner tag for the per-owner breakdown (job/dataflow id).
    std::string owner;
    /// Serialized bytes this segment wrote when it was spilled; 0 while
    /// resident. Tracked here because SpillableSegment reports 0 resident
    /// bytes while spilled and has no "spilled size" accessor.
    uint64_t spilled_bytes = 0;
  };

  /// Cumulative per-owner spill/unspill counters (survive Unregister of
  /// individual segments while the owner still has any live segment; an
  /// owner with no live segments drops out of the breakdown).
  struct OwnerCounters {
    uint64_t spills = 0;
    uint64_t unspills = 0;
  };

  Slot* FindSlot(const SpillableSegment* segment);
  void NotePeak();

  uint64_t budget_bytes_;
  MetricsSink* metrics_ = nullptr;
  uint64_t next_access_ = 1;
  std::vector<Slot> segments_;
  Stats stats_;
  std::map<std::string, OwnerCounters> owner_counters_;
};

}  // namespace flinkless::runtime

#endif  // FLINKLESS_RUNTIME_MEMORY_MANAGER_H_
