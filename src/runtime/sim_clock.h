// SimClock: accumulates simulated time by charge category.
//
// The executor charges CPU/network/checkpoint/recovery costs here. Keeping
// the categories separate lets benchmarks report not only total simulated
// time but also its decomposition (e.g. "how much of the run was checkpoint
// I/O"), which is exactly the overhead the paper's optimistic recovery
// removes.

#ifndef FLINKLESS_RUNTIME_SIM_CLOCK_H_
#define FLINKLESS_RUNTIME_SIM_CLOCK_H_

#include <array>
#include <cstdint>
#include <string>

namespace flinkless::runtime {

/// What a chunk of simulated time was spent on.
enum class Charge : int {
  kCompute = 0,
  kNetwork = 1,
  kCheckpointIo = 2,
  kRecovery = 3,
};

inline constexpr int kNumCharges = 4;

/// Name of a charge category ("compute", "network", ...).
std::string ChargeName(Charge c);

/// Accumulator of simulated nanoseconds, split by category.
class SimClock {
 public:
  /// Adds `ns` simulated nanoseconds to category `c`. Negative charges are a
  /// programming error.
  void Add(Charge c, int64_t ns);

  /// Simulated nanoseconds accumulated in category `c`.
  int64_t Of(Charge c) const;

  /// Total simulated nanoseconds across all categories.
  int64_t TotalNs() const;

  /// Total simulated time in milliseconds (convenience for reports).
  double TotalMs() const { return static_cast<double>(TotalNs()) / 1e6; }

  /// Resets all categories to zero.
  void Reset();

  /// One-line human-readable decomposition.
  std::string Summary() const;

 private:
  std::array<int64_t, kNumCharges> ns_{};
};

/// Wall-clock stopwatch used alongside the simulated clock.
class WallTimer {
 public:
  WallTimer();
  /// Nanoseconds since construction or the last Restart().
  int64_t ElapsedNs() const;
  double ElapsedMs() const { return static_cast<double>(ElapsedNs()) / 1e6; }
  void Restart();

 private:
  int64_t start_ns_;
};

}  // namespace flinkless::runtime

#endif  // FLINKLESS_RUNTIME_SIM_CLOCK_H_
