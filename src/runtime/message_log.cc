#include "runtime/message_log.h"

#include <utility>

#include "common/logging.h"
#include "runtime/memory_manager.h"
#include "runtime/metrics.h"
#include "runtime/stable_storage.h"
#include "runtime/tracing.h"

namespace flinkless::runtime {

using dataflow::PartitionedDataset;

// One logged channel. Residency is the exact serialized size (the same
// measure the ExecCache segments use), so budget math is consistent across
// the two segment kinds sharing one MemoryManager.
class MessageLog::Segment final : public SpillableSegment {
 public:
  Segment(std::string spill_key, PartitionedDataset data,
          StableStorage* storage)
      : spill_key_(std::move(spill_key)),
        data_(std::move(data)),
        serialized_bytes_(dataflow::SerializedDatasetBytes(data_)),
        num_partitions_(data_.num_partitions()),
        storage_(storage) {}

  const std::string& spill_key() const override { return spill_key_; }
  uint64_t resident_bytes() const override {
    return spilled_ ? 0 : serialized_bytes_;
  }
  int num_partitions() const override { return num_partitions_; }
  bool spilled() const override { return spilled_; }

  Status Spill() override {
    FLINKLESS_CHECK(!spilled_, "msglog segment spilled twice");
    FLINKLESS_CHECK(storage_ != nullptr,
                    "msglog segment under a budget without storage");
    FLINKLESS_RETURN_NOT_OK(
        storage_->Write(spill_key_, dataflow::SerializePartitionedDataset(data_)));
    data_ = PartitionedDataset();
    spilled_ = true;
    return Status::OK();
  }

  Status Unspill() override {
    FLINKLESS_CHECK(spilled_, "msglog segment unspilled while resident");
    FLINKLESS_ASSIGN_OR_RETURN(std::vector<uint8_t> blob,
                               storage_->Read(spill_key_));
    FLINKLESS_ASSIGN_OR_RETURN(data_,
                               dataflow::DeserializePartitionedDataset(blob));
    storage_->Delete(spill_key_);
    spilled_ = false;
    return Status::OK();
  }

  uint64_t serialized_bytes() const { return serialized_bytes_; }
  const PartitionedDataset& data() const { return data_; }

  /// Deletes the spill blob if the segment is currently out. Called on
  /// rotation so a dropped channel leaves nothing behind in storage.
  void DropBlob() {
    if (spilled_ && storage_ != nullptr) storage_->Delete(spill_key_);
  }

 private:
  std::string spill_key_;
  PartitionedDataset data_;
  uint64_t serialized_bytes_ = 0;
  int num_partitions_ = 0;
  StableStorage* storage_ = nullptr;
  bool spilled_ = false;
};

MessageLog::MessageLog(std::vector<std::string> volatile_bindings)
    : volatile_bindings_(std::move(volatile_bindings)) {}

MessageLog::~MessageLog() {
  BeginSuperstep(superstep_);
  if (storage_ != nullptr) storage_->ReleasePrefix(spill_prefix_);
}

void MessageLog::AttachMemoryManager(MemoryManager* manager,
                                     StableStorage* storage,
                                     const std::string& job_id) {
  FLINKLESS_CHECK(manager != nullptr && storage != nullptr,
                  "AttachMemoryManager needs a manager and a storage");
  FLINKLESS_CHECK(channels_.empty(),
                  "attach the memory manager before the first Append");
  if (storage_ != nullptr) storage_->ReleasePrefix(spill_prefix_);
  manager_ = manager;
  storage_ = storage;
  owner_ = job_id.empty() ? "job" : job_id;
  spill_prefix_ = "spill/" + owner_ + "/msglog/";
  // Exact-string namespace claim: distinct from the job's cache prefix
  // ("spill/<job>/"), colliding only with another live log of the same job.
  storage_->AcquirePrefix(spill_prefix_);
}

std::string MessageLog::SpillKey(const std::string& channel) const {
  return spill_prefix_ + channel;
}

void MessageLog::BeginSuperstep(int iteration) {
  for (auto& [channel, segment] : channels_) {
    if (manager_ != nullptr) manager_->Unregister(segment.get());
    segment->DropBlob();
  }
  channels_.clear();
  superstep_ = iteration;
}

Status MessageLog::Append(const std::string& channel,
                          const PartitionedDataset& shuffled,
                          Tracer* tracer) {
  TraceSpan span(tracer, SpanKind::kMessageLogAppend, channel);
  auto segment =
      std::make_unique<Segment>(SpillKey(channel), shuffled, storage_);
  Segment* seg = segment.get();
  auto [it, inserted] = channels_.insert_or_assign(channel, std::move(segment));
  FLINKLESS_CHECK(inserted, "msglog channel appended twice in one superstep");
  appended_bytes_ += seg->serialized_bytes();
  appended_records_ += shuffled.NumRecords();
  if (metrics_ != nullptr) {
    metrics_->Count(metric::kMsglogBytes, -1, seg->serialized_bytes());
    for (int p = 0; p < shuffled.num_partitions(); ++p) {
      uint64_t records = shuffled.partition(p).size();
      if (records > 0) metrics_->Count(metric::kMsglogMessages, p, records);
    }
  }
  if (span.active()) {
    span.AddArg("bytes", static_cast<int64_t>(seg->serialized_bytes()));
    span.AddArg("records", static_cast<int64_t>(shuffled.NumRecords()));
  }
  if (manager_ != nullptr) manager_->Register(seg, owner_);
  // Deliberately NO EnforceBudget here: Append runs in the middle of
  // Execute, right after a shuffle's gather, while the executor may hold a
  // pointer into another budget-managed segment (a cache entry whose join
  // index it is about to probe). Evicting from this call site would pull
  // that entry out from under the operator. The log's channels still spill
  // deterministically: the drivers enforce the budget at every superstep
  // boundary, and Channel() enforces after each replay-time reload.
  return Status::OK();
}

bool MessageLog::Has(const std::string& channel) const {
  return channels_.find(channel) != channels_.end();
}

Result<const PartitionedDataset*> MessageLog::Channel(
    const std::string& channel, Tracer* tracer) {
  auto it = channels_.find(channel);
  if (it == channels_.end()) {
    return Status::NotFound("message log has no channel '" + channel +
                            "' for superstep " + std::to_string(superstep_));
  }
  Segment* seg = it->second.get();
  if (manager_ != nullptr) {
    FLINKLESS_RETURN_NOT_OK(manager_->Touch(seg, tracer, nullptr));
    // Reloading one channel may displace another; never the one the
    // replay is about to read.
    FLINKLESS_RETURN_NOT_OK(manager_->EnforceBudget(seg, tracer));
  }
  return &seg->data();
}

uint64_t MessageLog::resident_bytes() const {
  uint64_t total = 0;
  for (const auto& [channel, segment] : channels_) {
    total += segment->resident_bytes();
  }
  return total;
}

}  // namespace flinkless::runtime
