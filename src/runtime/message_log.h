// Outbound message log for confined recovery (DESIGN.md §14).
//
// When enabled (ExecOptions::message_log), the executor taps every shuffle
// whose shuffled input is loop-*variant* and appends the post-gather
// partitioned dataset — the messages each partition received this
// superstep — to the log, one channel per (plan node, input port). The log
// models the sender-side materialized shuffle segments real dataflows keep
// (Flink's blocking intermediate results, MapReduce map outputs): they
// survive a downstream task failure, so a ConfinedLogReplayPolicy can
// rebuild only the lost partitions by replaying the logged messages into
// them (Executor::Replay) while survivors keep their state and merely
// wait.
//
// Channels live in columnar serde blocks (SerializePartitionedDataset) and
// are registered with the job's MemoryManager: residency counts against
// the byte budget and cold channels spill deterministically (logical LRU)
// to StableStorage under "spill/<job>/msglog/<channel>" keys, reloading on
// replay. The log rotates at superstep boundaries — BeginSuperstep drops
// every channel of the previous superstep (and deletes its spill blobs),
// so at most one superstep's messages are ever retained.
//
// Loop-invariant channels are never logged: they are recomputable from the
// static bindings (and usually served by the ExecCache), so logging them
// would only duplicate bytes the job already holds.

#ifndef FLINKLESS_RUNTIME_MESSAGE_LOG_H_
#define FLINKLESS_RUNTIME_MESSAGE_LOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dataflow/dataset.h"

namespace flinkless::runtime {

class MemoryManager;
class MetricsSink;
class StableStorage;
class Tracer;

class MessageLog {
 public:
  /// `volatile_bindings` are the source bindings that change across
  /// supersteps (the iteration driver's state/workset/solution bindings);
  /// the executor logs exactly the shuffles that are downstream of them
  /// (Plan::InvariantNodes over this set).
  explicit MessageLog(std::vector<std::string> volatile_bindings);
  ~MessageLog();

  MessageLog(const MessageLog&) = delete;
  MessageLog& operator=(const MessageLog&) = delete;

  /// Puts the log's channels under `manager`'s byte budget, with spill
  /// blobs on `storage` under "spill/<job_id>/msglog/". Neither pointer is
  /// owned; both must outlive the log. Call before the first Append.
  void AttachMemoryManager(MemoryManager* manager, StableStorage* storage,
                           const std::string& job_id);

  /// Mirrors appended bytes/messages into the metrics v2 sink under the
  /// msglog.* names. Borrowed, may be null (= off).
  void set_metrics(MetricsSink* metrics) { metrics_ = metrics; }

  const std::vector<std::string>& volatile_bindings() const {
    return volatile_bindings_;
  }

  /// Rotation: drops every channel of the previous superstep (deleting
  /// their spill blobs) and starts logging for `iteration`. The drivers
  /// call this right before each Execute, so on failure the log holds
  /// exactly the failed superstep's messages.
  void BeginSuperstep(int iteration);

  int superstep() const { return superstep_; }

  /// Records one shuffled channel: a deep copy of the post-gather dataset
  /// (all partitions). Emits a "msglog.append" span and msglog.* metrics
  /// and registers the copy with the memory manager — but does NOT enforce
  /// the budget: Append runs mid-Execute, where eviction could spill a
  /// cache segment an operator is holding. The drivers' superstep-boundary
  /// enforcement (and Channel()'s, at replay time) spills cold channels
  /// instead. Charges nothing to the SimClock: with an unlimited budget a
  /// logged run is bit-identical to an unlogged one.
  Status Append(const std::string& channel,
                const dataflow::PartitionedDataset& shuffled, Tracer* tracer);

  bool Has(const std::string& channel) const;

  /// The logged dataset for `channel`, unspilling it first when the budget
  /// pushed it out (charged storage read, "cache.unspill" span — same path
  /// as cached artifacts). The pointer is valid only until the next call
  /// on a budget-managed log — fetching another channel may spill this
  /// one — so callers copy what they need out while it is resident.
  Result<const dataflow::PartitionedDataset*> Channel(
      const std::string& channel, Tracer* tracer);

  size_t num_channels() const { return channels_.size(); }

  /// Serialized bytes currently resident (excludes spilled channels).
  uint64_t resident_bytes() const;

  /// Total serialized bytes appended since construction (monotonic).
  uint64_t appended_bytes() const { return appended_bytes_; }

  /// Total records appended since construction (monotonic).
  uint64_t appended_records() const { return appended_records_; }

 private:
  class Segment;

  std::string SpillKey(const std::string& channel) const;

  std::vector<std::string> volatile_bindings_;
  MemoryManager* manager_ = nullptr;
  StableStorage* storage_ = nullptr;
  MetricsSink* metrics_ = nullptr;
  std::string spill_prefix_ = "spill/job/msglog/";
  /// Owner tag for the manager's per-owner accounting (the job id given
  /// to AttachMemoryManager).
  std::string owner_ = "job";
  int superstep_ = 0;
  uint64_t appended_bytes_ = 0;
  uint64_t appended_records_ = 0;
  // std::map: deterministic rotation/teardown order by channel name.
  std::map<std::string, std::unique_ptr<Segment>> channels_;
};

}  // namespace flinkless::runtime

#endif  // FLINKLESS_RUNTIME_MESSAGE_LOG_H_
