// Metrics: counters and per-iteration statistics series.
//
// The paper's GUI plots per-iteration statistics — converged-vertex counts,
// messages per iteration, the L1 norm of consecutive PageRank estimates. The
// engine records an IterationStats entry per superstep; algorithms attach
// custom gauges (e.g. "converged_vertices"), and the bench harnesses read the
// series back to regenerate the plots.

#ifndef FLINKLESS_RUNTIME_METRICS_H_
#define FLINKLESS_RUNTIME_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runtime/sim_clock.h"

namespace flinkless::runtime {

/// Everything measured about one iteration (superstep) of a job.
struct IterationStats {
  /// 1-based iteration number as the paper numbers its plots.
  int iteration = 0;

  /// Records pushed through operators during this iteration.
  uint64_t records_processed = 0;

  /// Records that crossed partitions in shuffles — the paper's "messages".
  uint64_t messages_shuffled = 0;

  /// Bytes checkpointed at the end of this iteration (0 when no checkpoint).
  uint64_t bytes_checkpointed = 0;

  /// True when a failure was injected (and recovered from) in this iteration.
  bool failure_injected = false;

  /// Simulated nanoseconds this iteration took.
  int64_t sim_time_ns = 0;

  /// sim_time_ns decomposed by Charge category (compute, network,
  /// checkpoint I/O, recovery), indexed by static_cast<int>(Charge). The
  /// drivers fill this by diffing the SimClock's per-category totals across
  /// the superstep, so the entries sum to sim_time_ns.
  std::array<int64_t, kNumCharges> sim_time_by_charge{};

  /// This iteration's simulated time in one charge category.
  int64_t SimTimeOf(Charge c) const {
    return sim_time_by_charge[static_cast<int>(c)];
  }

  /// Wall-clock nanoseconds this iteration took.
  int64_t wall_time_ns = 0;

  /// Budget evictions this iteration: cached artifacts written to stable
  /// storage / reloaded from it, and the bytes the spills wrote. Zero
  /// without a memory budget (see DESIGN.md §11).
  uint64_t spills = 0;
  uint64_t unspills = 0;
  uint64_t spilled_bytes = 0;

  /// High-water mark of cached-artifact residency at the end of this
  /// iteration (absolute, not per-iteration; monotone over the run).
  uint64_t peak_resident_bytes = 0;

  /// Algorithm-specific gauges ("converged_vertices", "l1_diff", ...).
  std::map<std::string, double> gauges;

  /// Gauge value or `fallback` when the gauge was not set.
  double Gauge(const std::string& name, double fallback = 0.0) const;
};

/// Accumulates the per-iteration series plus whole-job counters for one run.
class MetricsRegistry {
 public:
  /// Appends a finished iteration's stats.
  void RecordIteration(IterationStats stats);

  /// Increments a named whole-job counter.
  void IncrCounter(const std::string& name, uint64_t delta = 1);

  /// Counter value (0 when never incremented).
  uint64_t Counter(const std::string& name) const;

  const std::vector<IterationStats>& iterations() const { return iterations_; }

  /// The series of one gauge across iterations, with `fallback` for
  /// iterations that did not set it.
  std::vector<double> GaugeSeries(const std::string& name,
                                  double fallback = 0.0) const;

  /// The per-iteration series of simulated time in one charge category.
  std::vector<int64_t> ChargeSeries(Charge c) const;

  /// Sum of one charge category over all iterations.
  int64_t TotalSimTimeOf(Charge c) const;

  /// Sum of messages_shuffled over all iterations.
  uint64_t TotalMessages() const;

  /// Sum of records_processed over all iterations.
  uint64_t TotalRecords() const;

  /// Sum of bytes_checkpointed over all iterations.
  uint64_t TotalCheckpointBytes() const;

  void Reset();

 private:
  std::vector<IterationStats> iterations_;
  std::map<std::string, uint64_t> counters_;
};

}  // namespace flinkless::runtime

#endif  // FLINKLESS_RUNTIME_METRICS_H_
