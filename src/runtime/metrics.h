// Metrics: counters and per-iteration statistics series, plus the typed,
// labeled metrics v2 layer (DESIGN.md §13).
//
// The paper's GUI plots per-iteration statistics — converged-vertex counts,
// messages per iteration, the L1 norm of consecutive PageRank estimates. The
// engine records an IterationStats entry per superstep; algorithms attach
// custom gauges (e.g. "converged_vertices"), and the bench harnesses read the
// series back to regenerate the plots.
//
// Metrics v2 adds what the series cannot answer: *where inside the job* the
// work happened. A MetricsSink collects per-partition counters, job-level
// fixed-bucket histograms, and orchestration-set gauges, sharded per worker
// exactly like the Tracer's ring buffers so recording never contends across
// threads. Determinism contract (mirrors tracing):
//  * Counter increments and histogram observations are commutative, so the
//    merged totals are independent of which worker recorded what.
//  * Collect() merges the shards into std::map-ordered families, so an
//    export is byte-identical at any thread count.
//  * Gauges are last-write-wins and therefore orchestration-thread-only.
//  * Labels are partition indices (or -1 = job-level), never worker ids —
//    worker attribution is nondeterministic and belongs to tracing.
// Exporters: NDJSON (per-iteration series + final families) and a
// Prometheus-style text exposition. Neither format includes wall-clock
// fields.

#ifndef FLINKLESS_RUNTIME_METRICS_H_
#define FLINKLESS_RUNTIME_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/sim_clock.h"

namespace flinkless::runtime {

/// Everything measured about one iteration (superstep) of a job.
struct IterationStats {
  /// 1-based iteration number as the paper numbers its plots.
  int iteration = 0;

  /// Records pushed through operators during this iteration.
  uint64_t records_processed = 0;

  /// Records that crossed partitions in shuffles — the paper's "messages".
  uint64_t messages_shuffled = 0;

  /// Bytes checkpointed at the end of this iteration (0 when no checkpoint).
  uint64_t bytes_checkpointed = 0;

  /// True when a failure was injected (and recovered from) in this iteration.
  bool failure_injected = false;

  /// Simulated nanoseconds this iteration took.
  int64_t sim_time_ns = 0;

  /// sim_time_ns decomposed by Charge category (compute, network,
  /// checkpoint I/O, recovery), indexed by static_cast<int>(Charge). The
  /// drivers fill this by diffing the SimClock's per-category totals across
  /// the superstep, so the entries sum to sim_time_ns.
  std::array<int64_t, kNumCharges> sim_time_by_charge{};

  /// This iteration's simulated time in one charge category.
  int64_t SimTimeOf(Charge c) const {
    return sim_time_by_charge[static_cast<int>(c)];
  }

  /// Wall-clock nanoseconds this iteration took.
  int64_t wall_time_ns = 0;

  /// Budget evictions this iteration: cached artifacts written to stable
  /// storage / reloaded from it, and the bytes the spills wrote. Zero
  /// without a memory budget (see DESIGN.md §11).
  uint64_t spills = 0;
  uint64_t unspills = 0;
  uint64_t spilled_bytes = 0;

  /// High-water mark of cached-artifact residency at the end of this
  /// iteration (absolute, not per-iteration; monotone over the run).
  uint64_t peak_resident_bytes = 0;

  /// Algorithm-specific gauges ("converged_vertices", "l1_diff", ...).
  std::map<std::string, double> gauges;

  /// Gauge value or `fallback` when the gauge was not set.
  double Gauge(const std::string& name, double fallback = 0.0) const;
};

/// Accumulates the per-iteration series plus whole-job counters for one run.
class MetricsRegistry {
 public:
  /// Appends a finished iteration's stats.
  void RecordIteration(IterationStats stats);

  /// Increments a named whole-job counter.
  void IncrCounter(const std::string& name, uint64_t delta = 1);

  /// Counter value (0 when never incremented).
  uint64_t Counter(const std::string& name) const;

  const std::vector<IterationStats>& iterations() const { return iterations_; }

  /// All whole-job counters, name-ordered (for exporters).
  const std::map<std::string, uint64_t>& counters() const { return counters_; }

  /// The series of one gauge across iterations, with `fallback` for
  /// iterations that did not set it.
  std::vector<double> GaugeSeries(const std::string& name,
                                  double fallback = 0.0) const;

  /// The per-iteration series of simulated time in one charge category.
  std::vector<int64_t> ChargeSeries(Charge c) const;

  /// Sum of one charge category over all iterations.
  int64_t TotalSimTimeOf(Charge c) const;

  /// Sum of messages_shuffled over all iterations.
  uint64_t TotalMessages() const;

  /// Sum of records_processed over all iterations.
  uint64_t TotalRecords() const;

  /// Sum of bytes_checkpointed over all iterations.
  uint64_t TotalCheckpointBytes() const;

  void Reset();

 private:
  std::vector<IterationStats> iterations_;
  std::map<std::string, uint64_t> counters_;
};

// ------------------------------------------------------------ metrics v2 --

/// Canonical v2 metric names. One naming convention —
/// "<subsystem>.<what>[_<unit>]" — replaces the ad-hoc gauge/counter names
/// that accumulated per PR (satellite of DESIGN.md §13). Call sites use
/// these constants so a rename is one edit.
namespace metric {
// Executor (per-partition counters).
inline constexpr char kExecRecords[] = "exec.records";
inline constexpr char kExecBatchOps[] = "exec.batch_ops";
inline constexpr char kExecRowFallbackOps[] = "exec.row_fallback_ops";
// Shuffle: records leaving each source partition for another partition.
inline constexpr char kShuffleFanout[] = "shuffle.fanout";
// Cache (job-level counters).
inline constexpr char kCacheHits[] = "cache.hits";
inline constexpr char kCacheBuilds[] = "cache.builds";
inline constexpr char kCacheInvalidations[] = "cache.invalidations";
inline constexpr char kCacheRecordsNotReshuffled[] =
    "cache.records_not_reshuffled";
// Columnar execution (job-level counter): dataset-wide InferBatchSchema
// passes avoided by the per-node schema cache (DESIGN.md §15).
inline constexpr char kSchemaCacheHits[] = "columnar.schema_cache_hits";
// Memory manager (job-level counters).
inline constexpr char kMemorySpills[] = "memory.spills";
inline constexpr char kMemoryUnspills[] = "memory.unspills";
inline constexpr char kMemorySpilledBytes[] = "memory.spilled_bytes";
inline constexpr char kMemoryUnspilledBytes[] = "memory.unspilled_bytes";
// Thread pool (job-level counters; totals are schedule-independent).
inline constexpr char kPoolTasks[] = "pool.tasks";
inline constexpr char kPoolParallelSections[] = "pool.parallel_sections";
// Recovery (per-partition counters).
inline constexpr char kCompensationRecords[] = "compensation.records";
inline constexpr char kRecoveryPartitionsLost[] = "recovery.partitions_lost";
// Checkpointing (job-level counter): bytes written by OnJobStart's initial
// checkpoint, kept separate from per-iteration checkpoint I/O.
inline constexpr char kInitialCheckpointBytes[] = "checkpoint.initial_bytes";
// Outbound message log (DESIGN.md §14). Bytes are job-level (serialized
// channel blocks); messages are per receiving partition.
inline constexpr char kMsglogBytes[] = "msglog.bytes";
inline constexpr char kMsglogMessages[] = "msglog.messages";
inline constexpr char kMsglogMessagesReplayed[] = "msglog.messages_replayed";
// Job server (DESIGN.md §16). Lookups are counted per partition of the
// queried job's state; publishes/turns/admissions are job-level.
inline constexpr char kServerLookups[] = "server.lookups";
inline constexpr char kServerLookupsMissed[] = "server.lookups_missed";
inline constexpr char kServerLookupsDeferred[] = "server.lookups_deferred";
inline constexpr char kServerPublishes[] = "server.publishes";
inline constexpr char kServerPublishesSkipped[] = "server.publishes_skipped";
inline constexpr char kServerTurns[] = "server.turns";
inline constexpr char kServerJobsAdmitted[] = "server.jobs_admitted";
// Histograms (job-level distributions).
inline constexpr char kHistBatchRows[] = "exec.batch_rows";
inline constexpr char kHistProbeChain[] = "join.probe_chain";
inline constexpr char kHistSpillBytes[] = "memory.spill_bytes";
inline constexpr char kHistShuffleFanout[] = "shuffle.fanout_records";
inline constexpr char kHistCompensationRecords[] = "compensation.records_hist";
// SimClock latency from lookup enqueue to answer (DESIGN.md §16).
inline constexpr char kHistLookupLatency[] = "server.lookup_latency_ns";
// Gauges (orchestration-set, per-partition).
inline constexpr char kGaugeStateRecords[] = "state.records";
// Running count of failure-schedule partition ids the drivers dropped as
// out of range (job-level; nonzero means a misconfigured schedule).
inline constexpr char kGaugeRecoveryDroppedIds[] = "recovery.dropped_ids";
}  // namespace metric

/// Deterministic fixed-bucket histogram. Bucket 0 counts values <= 0;
/// bucket b in [1, kNumBuckets-2] counts values in [2^(b-1), 2^b - 1];
/// the last bucket is the overflow (values >= 2^(kNumBuckets-2)). The
/// bounds are value-independent, so merging shards is a plain bucket-wise
/// sum and the merged result is identical at any thread count.
class Histogram {
 public:
  static constexpr int kNumBuckets = 33;

  /// Bucket index of `value` under the fixed power-of-two scheme.
  static int BucketOf(int64_t value);

  /// Inclusive upper bound of `bucket` (2^bucket - 1); the overflow bucket
  /// has no finite bound and reports INT64_MAX.
  static int64_t BucketUpperBound(int bucket);

  void Observe(int64_t value);
  void MergeFrom(const Histogram& other);

  uint64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  /// Smallest / largest observed value; 0 when empty.
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  const std::array<uint64_t, kNumBuckets>& buckets() const { return buckets_; }

  friend bool operator==(const Histogram& a, const Histogram& b) = default;

 private:
  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

/// A merged, deterministically ordered view of everything a MetricsSink
/// recorded. All maps are std::map so iteration (and thus export) order is
/// the lexicographic (name, partition) order regardless of recording order.
struct MetricsSnapshot {
  /// name -> partition -> value. Partition -1 holds job-level increments.
  std::map<std::string, std::map<int, uint64_t>> counters;
  /// name -> partition -> value (orchestration-set; partition -1 = job).
  std::map<std::string, std::map<int, double>> gauges;
  /// name -> merged histogram (histograms are job-level distributions).
  std::map<std::string, Histogram> histograms;

  /// Sum of one counter over all partitions (0 when absent).
  uint64_t CounterTotal(const std::string& name) const;

  /// One partition's value of a counter (0 when absent).
  uint64_t Counter(const std::string& name, int partition) const;

  /// The merged histogram, or nullptr when never observed.
  const Histogram* FindHistogram(const std::string& name) const;
};

/// Thread-safe, worker-sharded collector for metrics v2. One sink observes
/// one job run. Mirrors the Tracer's threading contract: Count/Observe are
/// safe from any thread (each worker slot owns its shard, per-slot mutex
/// only for the slot-table wrap case); SetGauge and Collect are
/// orchestration-thread-only.
class MetricsSink {
 public:
  MetricsSink();

  MetricsSink(const MetricsSink&) = delete;
  MetricsSink& operator=(const MetricsSink&) = delete;

  /// Adds `delta` to counter `name` labeled with `partition` (-1 = job
  /// level). Safe from any thread. Call sites aggregate locally and count
  /// once per partition, not once per record.
  void Count(const std::string& name, int partition, uint64_t delta = 1);

  /// Records one observation into the job-level histogram `name`. Safe
  /// from any thread.
  void Observe(const std::string& name, int64_t value);

  /// Folds a locally accumulated histogram into `name` in one step — the
  /// bulk form of Observe for call sites that observe many values per
  /// parallel task (e.g. one join probe chain per group). Safe from any
  /// thread.
  void Merge(const std::string& name, const Histogram& local);

  /// Sets gauge `name` for `partition` (last write wins — orchestration
  /// thread only, like Tracer::NextSeq).
  void SetGauge(const std::string& name, int partition, double value);

  /// Merges all shards into deterministic (name, partition) order. Call
  /// after the job finished (not concurrently with Count/Observe).
  MetricsSnapshot Collect() const;

  void Reset();

 private:
  struct Slot {
    std::mutex mu;
    std::map<std::pair<std::string, int>, uint64_t> counters;
    std::map<std::string, Histogram> histograms;
  };

  Slot& SlotForThisThread();

  std::vector<std::unique_ptr<Slot>> slots_;
  // Orchestration-thread state (no lock; same discipline as Tracer's seq).
  std::map<std::pair<std::string, int>, double> gauges_;
};

// -------------------------------------------------- metrics v2 exporters --

/// NDJSON export: one {"kind": "iteration"} line per superstep (the
/// registry's series, wall-clock excluded), then {"kind": "counter"} lines
/// per (name, partition) plus a {"kind": "counter_total"} line per name,
/// {"kind": "gauge"} lines, {"kind": "histogram"} lines (non-empty buckets
/// only), and a {"kind": "meta"} trailer. Registry whole-job counters are
/// folded in as partition -1 counter lines. Deterministic: byte-identical
/// at any thread count.
void ExportMetricsNdjson(const MetricsRegistry& registry,
                         const MetricsSnapshot& snapshot, std::ostream& out);

/// Prometheus-style text exposition: counters as
/// `flinkless_<name>{partition="p"} v` samples plus an unlabeled total,
/// histograms as cumulative `_bucket{le="..."}` / `_sum` / `_count`
/// families, gauges as labeled samples, and registry totals
/// (`flinkless_sim_time_ns{charge="..."}`, iteration/message/record
/// totals). Metric names have '.' mapped to '_'. Deterministic.
void ExportMetricsPrometheus(const MetricsRegistry& registry,
                             const MetricsSnapshot& snapshot,
                             std::ostream& out);

/// Collects `sink` and writes `path`; format chosen by extension (".prom"
/// → Prometheus text, anything else → NDJSON).
Status WriteMetricsFile(const MetricsRegistry& registry,
                        const MetricsSink& sink, const std::string& path);

/// Owns an optional MetricsSink for one algorithm run: when `path` is
/// non-empty and `*slot` is null, installs a fresh sink into the slot and
/// writes the metrics file on destruction (so the export survives error
/// returns). `registry` is read at write time. This is how the algorithm
/// drivers implement their `metrics_path` option — the analog of
/// ScopedTraceFile.
class ScopedMetricsFile {
 public:
  ScopedMetricsFile(std::string path, const MetricsRegistry* registry,
                    MetricsSink** slot);
  ~ScopedMetricsFile();

  ScopedMetricsFile(const ScopedMetricsFile&) = delete;
  ScopedMetricsFile& operator=(const ScopedMetricsFile&) = delete;

  MetricsSink* sink() const { return sink_.get(); }

 private:
  std::string path_;
  const MetricsRegistry* registry_ = nullptr;
  std::unique_ptr<MetricsSink> sink_;
};

}  // namespace flinkless::runtime

#endif  // FLINKLESS_RUNTIME_METRICS_H_
