#include "runtime/cluster.h"

#include "common/logging.h"

namespace flinkless::runtime {

Cluster::Cluster(int num_partitions, SimClock* clock, const CostModel* costs)
    : clock_(clock), costs_(costs) {
  FLINKLESS_CHECK(num_partitions > 0, "cluster needs at least one partition");
  assignment_.reserve(num_partitions);
  for (int p = 0; p < num_partitions; ++p) {
    assignment_.push_back(NewWorker());
  }
}

WorkerId Cluster::NewWorker() {
  WorkerInfo info;
  info.id = next_worker_id_++;
  info.alive = true;
  info.epoch = epoch_;
  workers_.push_back(info);
  return info.id;
}

Result<WorkerId> Cluster::WorkerOf(int partition) const {
  if (partition < 0 || partition >= num_partitions()) {
    return Status::OutOfRange("partition " + std::to_string(partition) +
                              " out of range [0, " +
                              std::to_string(num_partitions()) + ")");
  }
  return assignment_[partition];
}

bool Cluster::PartitionHealthy(int partition) const {
  if (partition < 0 || partition >= num_partitions()) return false;
  return workers_[assignment_[partition]].alive;
}

int Cluster::KillPartitions(const std::vector<int>& partitions) {
  int killed = 0;
  for (int p : partitions) {
    if (p < 0 || p >= num_partitions()) continue;
    WorkerInfo& w = workers_[assignment_[p]];
    if (w.alive) {
      w.alive = false;
      ++killed;
    }
  }
  return killed;
}

Status Cluster::ReassignToFreshWorkers(const std::vector<int>& partitions) {
  bool replaced_any = false;
  // Replacements within one recovery happen in parallel on a real cluster,
  // so node acquisition is charged once per recovery event, not per node.
  for (int p : partitions) {
    if (p < 0 || p >= num_partitions()) {
      return Status::OutOfRange("cannot reassign partition " +
                                std::to_string(p));
    }
    if (workers_[assignment_[p]].alive) continue;
    if (!replaced_any) {
      ++epoch_;
      replaced_any = true;
    }
    assignment_[p] = NewWorker();
  }
  if (replaced_any && clock_ != nullptr && costs_ != nullptr) {
    clock_->Add(Charge::kRecovery, costs_->node_acquisition_ns);
  }
  return Status::OK();
}

}  // namespace flinkless::runtime
