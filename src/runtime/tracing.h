// Structured tracing: typed spans and instant events for every run.
//
// The paper's demo is an observability artifact — its GUI exists to show
// iteration progress, injected failures, and compensation-based recovery as
// they happen (§3.1). The Tracer records where *inside* an iteration time
// and messages go: per-operator and per-partition spans, shuffle phases,
// checkpoint/compensation work, and instant events for failures and
// convergence. Traces export as Chrome trace_event JSON (loadable in
// chrome://tracing or Perfetto) or flat NDJSON for scripting, and aggregate
// into a TraceSummary that benches and tests assert on.
//
// Contract (see DESIGN.md §8):
//  * Zero-cost when disabled: every call site guards on a plain pointer;
//    a null Tracer* costs one branch, no virtual dispatch, no allocation.
//  * Tracing never changes behaviour: the Tracer only *reads* the SimClock,
//    so outputs, ExecStats, and simulated-time charges are byte-identical
//    with tracing on or off, at any thread count.
//  * Thread-safe and deterministic: events land in per-worker ring buffers
//    (bounded memory, evictions counted); Flush() merges them by a
//    deterministic key — sequence numbers allocated on the orchestration
//    thread, then partition index — so the merged event list is identical
//    for every num_threads. Only wall-clock fields and worker ids vary.

#ifndef FLINKLESS_RUNTIME_TRACING_H_
#define FLINKLESS_RUNTIME_TRACING_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "runtime/sim_clock.h"

namespace flinkless::runtime {

class ThreadPool;

/// What a span measures. Stable category strings (SpanKindName) appear in
/// both export formats.
enum class SpanKind : int {
  kOperator = 0,       // one dataflow operator (or one partition of it)
  kShuffleScatter,     // shuffle phase 1: partition-local scatter to outboxes
  kShuffleGather,      // shuffle phase 2: concatenate outboxes per target
  kIteration,          // one superstep of an iterative job
  kSolutionUpdate,     // partition-parallel solution-set delta application
  kCheckpoint,         // checkpoint I/O performed by a policy
  kCompensation,       // recovery action after a failure (OnFailure)
  kCacheSpill,         // budget eviction: cached artifact written to storage
  kCacheUnspill,       // spilled artifact read back and rebuilt on access
  kMessageLogAppend,   // outbound message log: one shuffled channel recorded
  kMessageLogReplay,   // confined recovery: logged messages replayed into
                       // the lost partitions
  kServerPublish,      // job server: epoch published into a read view
};

/// Stable category name of a span kind ("operator", "shuffle.scatter", ...).
const char* SpanKindName(SpanKind kind);

/// A point event on the recovery timeline.
enum class InstantKind : int {
  kFailureInjected = 0,  // a FailureSchedule event fired
  kPartitionLost,        // one partition's state was destroyed (per partition)
  kConvergenceReached,   // the job's convergence criterion held
};

/// Stable name of an instant kind ("failure.injected", ...).
const char* InstantKindName(InstantKind kind);

/// One recorded event. Spans are recorded complete (at close, with
/// duration); instants have zero duration.
struct TraceEvent {
  enum class Kind : int { kSpan = 0, kInstant = 1 };

  Kind kind = Kind::kSpan;
  /// Category string: SpanKindName / InstantKindName value.
  std::string category;
  /// Display name (operator name, policy name, instant name).
  std::string name;

  /// Wall-clock start (span) or moment (instant), ns since the tracer was
  /// constructed. Nondeterministic; excluded from determinism comparisons.
  int64_t wall_ts_ns = 0;
  int64_t wall_dur_ns = 0;

  /// SimClock::TotalNs() at open / accumulated while open (0 without a
  /// clock). Deterministic.
  int64_t sim_ts_ns = 0;
  int64_t sim_dur_ns = 0;

  /// Partition the event is attributed to; -1 = job-level.
  int partition = -1;
  /// Worker slot that recorded the event (0 = orchestration thread,
  /// 1..N = pool workers). Nondeterministic across thread counts.
  int worker = 0;
  /// Superstep the event belongs to (0 = job setup).
  int iteration = 0;

  /// Deterministic ordering key, allocated on the orchestration thread.
  /// Per-partition spans of one parallel section share a seq and are
  /// distinguished by `partition`.
  uint64_t seq = 0;
  /// seq of the enclosing recorded span (0 = root).
  uint64_t parent_seq = 0;

  /// Numeric payload (record/message/byte counts), insertion-ordered.
  std::vector<std::pair<std::string, int64_t>> args;

  /// Value of an arg, or `fallback` when absent.
  int64_t Arg(const std::string& key, int64_t fallback = 0) const;
};

/// The deterministic total order Flush() merges events into:
/// (seq, partition+1), i.e. a parent span precedes its per-partition
/// children, which appear in partition order.
bool TraceEventBefore(const TraceEvent& a, const TraceEvent& b);

/// Bounded, thread-safe event recorder. One Tracer observes one job run.
///
/// Threading: NextSeq(), the span stack, and set_iteration are
/// orchestration-thread-only (the thread that drives the executor).
/// Record() may be called from any pool worker; each worker slot owns a
/// ring buffer, so recording never contends across workers.
class Tracer {
 public:
  struct Options {
    /// Ring capacity per worker slot; the oldest events are evicted (and
    /// counted) beyond this.
    size_t per_worker_capacity = 1 << 15;
    /// Optional simulated clock for sim timestamps. Read-only.
    const SimClock* clock = nullptr;
  };

  /// A merged, deterministically ordered view of everything recorded.
  struct Snapshot {
    std::vector<TraceEvent> events;
    /// Events evicted by ring-buffer overflow (they are missing above).
    uint64_t dropped = 0;
  };

  Tracer();
  explicit Tracer(Options options);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  const SimClock* clock() const { return options_.clock; }

  /// Wall ns since construction.
  int64_t NowNs() const;

  /// Simulated ns so far (0 without a clock).
  int64_t SimNowNs() const {
    return options_.clock != nullptr ? options_.clock->TotalNs() : 0;
  }

  /// Allocates the next deterministic sequence number. Orchestration
  /// thread only.
  uint64_t NextSeq() { return next_seq_++; }

  /// Tags subsequent events with the superstep being executed.
  /// Orchestration thread only.
  void set_iteration(int iteration) { iteration_ = iteration; }
  int iteration() const { return iteration_; }

  /// seq of the innermost open span (0 when none). Orchestration thread.
  uint64_t current_parent() const {
    return open_spans_.empty() ? 0 : open_spans_.back();
  }
  void PushOpenSpan(uint64_t seq) { open_spans_.push_back(seq); }
  void PopOpenSpan(uint64_t seq);

  /// Records an instant event at the current timeline position.
  /// Orchestration thread only (allocates a seq).
  void Instant(InstantKind kind, int partition = -1,
               std::vector<std::pair<std::string, int64_t>> args = {});

  /// Appends one finished event; safe from any thread.
  void Record(TraceEvent event);

  /// Merges the per-worker buffers into deterministic order. Call after
  /// the traced job finished (not concurrently with Record from workers).
  Snapshot Flush() const;

  /// Total events evicted so far across all worker slots.
  uint64_t dropped_events() const;

 private:
  struct Slot {
    std::mutex mu;
    std::vector<TraceEvent> ring;  // wraps at per_worker_capacity
    size_t next = 0;               // write cursor once the ring is full
    uint64_t recorded = 0;         // events ever recorded into this slot
  };

  Slot& SlotForThisThread();

  Options options_;
  int64_t wall_origin_ns_ = 0;

  // Orchestration-thread state.
  uint64_t next_seq_ = 1;
  int iteration_ = 0;
  std::vector<uint64_t> open_spans_;

  std::vector<std::unique_ptr<Slot>> slots_;
};

/// RAII span. Construct with a null tracer for a no-op (the disabled path
/// is a single branch). Opens on construction on the orchestration thread,
/// records itself on Close()/destruction.
class TraceSpan {
 public:
  /// Inactive span (records nothing).
  TraceSpan() = default;

  TraceSpan(Tracer* tracer, SpanKind kind, std::string name,
            int partition = -1);
  ~TraceSpan() { Close(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return tracer_ != nullptr; }
  Tracer* tracer() const { return tracer_; }
  uint64_t seq() const { return event_.seq; }
  SpanKind kind() const { return kind_; }
  const std::string& name() const { return event_.name; }
  int iteration() const { return event_.iteration; }
  int64_t sim_start_ns() const { return event_.sim_ts_ns; }

  /// Attaches a numeric arg; no-op when inactive.
  void AddArg(std::string key, int64_t value);

  /// Records the span now (idempotent; the destructor calls this).
  void Close();

  /// Discards the span without recording it (e.g. a checkpoint span that
  /// turned out to write zero bytes).
  void Cancel();

 private:
  Tracer* tracer_ = nullptr;
  SpanKind kind_ = SpanKind::kOperator;
  TraceEvent event_;
};

/// ParallelFor that records one per-partition child span of `parent` for
/// every index, tagged with the worker slot that ran it — this is what
/// makes pool utilization and partition skew visible. Degrades to a plain
/// ParallelFor when `parent` is inactive. `records_of(i)`, when provided,
/// is evaluated *before* fn(i) (fn may consume the input) and becomes the
/// "records" arg of span i. `partition_offset` shifts the recorded
/// partition index of span i to `partition_offset + i` — the streaming
/// shuffle scatters source partitions in blocks but still attributes each
/// child span to its global partition.
void TracedParallelFor(ThreadPool* pool, const TraceSpan& parent, int count,
                       const std::function<void(int)>& fn,
                       const std::function<int64_t(int)>& records_of = {},
                       int partition_offset = 0);

// ----------------------------------------------------------- exporters --

/// Chrome trace_event JSON ("traceEvents" array of "X"/"i" phases plus
/// thread-name metadata), loadable in chrome://tracing and Perfetto.
/// Timestamps are wall-clock microseconds; sim times ride along as args.
void ExportChromeTrace(const Tracer::Snapshot& snapshot, std::ostream& out);

/// Flat NDJSON: one JSON object per event line, then one {"kind":"meta"}
/// trailer with event/drop totals. For jq/Python scripting.
void ExportNdjson(const Tracer::Snapshot& snapshot, std::ostream& out);

/// Flushes `tracer` and writes `path`; format chosen by extension
/// (".ndjson" → NDJSON, anything else → Chrome JSON).
Status WriteTraceFile(const Tracer& tracer, const std::string& path);

/// Owns an optional Tracer for one algorithm run: when `path` is non-empty
/// and `*slot` is null, installs a fresh Tracer into the slot and writes
/// the trace file on destruction (so the trace survives error returns).
/// This is how the algorithm drivers implement their `trace_path` option.
class ScopedTraceFile {
 public:
  ScopedTraceFile(std::string path, const SimClock* clock, Tracer** slot);
  ~ScopedTraceFile();

  ScopedTraceFile(const ScopedTraceFile&) = delete;
  ScopedTraceFile& operator=(const ScopedTraceFile&) = delete;

  Tracer* tracer() const { return tracer_.get(); }

 private:
  std::string path_;
  std::unique_ptr<Tracer> tracer_;
};

// ------------------------------------------------------------- summary --

/// Per-operator aggregate over a snapshot.
struct TraceOperatorSummary {
  std::string name;
  /// Job-level spans of this operator (= times it executed).
  uint64_t spans = 0;
  /// Wall time of the operator spans.
  int64_t wall_total_ns = 0;
  /// wall_total_ns minus job-level child spans (shuffle phases, nested
  /// operators) — time spent in the operator itself.
  int64_t wall_self_ns = 0;
  /// Simulated time charged while the operator spans were open.
  int64_t sim_total_ns = 0;
  uint64_t records_in = 0;
  uint64_t records_out = 0;
  /// Messages shuffled by this operator's scatter phases.
  uint64_t messages = 0;
  /// Records processed per partition (from per-partition child spans).
  std::vector<uint64_t> partition_records;

  /// max/mean of partition_records — 1.0 is perfectly balanced, higher is
  /// skewed. 1.0 when no per-partition data was recorded.
  double SkewRatio() const;
};

/// Aggregation of a snapshot that benches and tests assert on.
struct TraceSummary {
  std::vector<TraceOperatorSummary> operators;  // sorted by name
  uint64_t total_events = 0;
  uint64_t span_events = 0;
  uint64_t instant_events = 0;
  uint64_t dropped_events = 0;
  /// Instant occurrences by name ("failure.injected" → 2, ...).
  std::vector<std::pair<std::string, uint64_t>> instants;
  /// Iteration spans observed (= supersteps traced).
  uint64_t iteration_spans = 0;
  /// Budget evictions observed ("cache.spill" spans) and their byte total.
  uint64_t spills = 0;
  uint64_t spilled_bytes = 0;
  /// Spilled-artifact reloads ("cache.unspill" spans) and their byte total.
  uint64_t unspills = 0;
  uint64_t unspilled_bytes = 0;
  /// Largest "resident_after" reported by a spill/unspill span — the peak
  /// residency observed at spill boundaries (0 when nothing spilled).
  uint64_t peak_resident_bytes = 0;

  static TraceSummary FromSnapshot(const Tracer::Snapshot& snapshot);

  const TraceOperatorSummary* Find(const std::string& name) const;
  uint64_t InstantCount(const std::string& name) const;
};

}  // namespace flinkless::runtime

#endif  // FLINKLESS_RUNTIME_TRACING_H_
