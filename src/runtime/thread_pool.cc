#include "runtime/thread_pool.h"

#include <atomic>

#include "common/logging.h"

namespace flinkless::runtime {

namespace {
// Worker slot of the current thread; 0 = not a pool worker.
thread_local int t_worker_id = 0;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  FLINKLESS_CHECK(num_threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] {
      t_worker_id = i + 1;
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  ++work_stats_.tasks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++in_flight_;
    queue_.push_back([this, task = std::move(task)] {
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    });
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  ++work_stats_.parallel_sections;
  work_stats_.tasks += static_cast<uint64_t>(count);
  if (count == 1 || workers_.empty()) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }

  // Shared loop state lives on the caller's stack; the caller blocks until
  // every helper finished, so the references stay valid.
  struct LoopState {
    std::atomic<int> next{0};
    std::mutex mu;
    std::condition_variable done;
    int active = 0;
    std::exception_ptr error;
  } state;

  auto drain = [&state, &fn, count] {
    int i;
    while ((i = state.next.fetch_add(1, std::memory_order_relaxed)) < count) {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mu);
        if (!state.error) state.error = std::current_exception();
      }
    }
  };

  // The calling thread participates too, so helpers = workers is enough —
  // and since the tasks are CPU-bound, fanning out beyond the physical
  // cores only buys context-switch overhead. Capping at cores-minus-caller
  // makes an oversubscribed pool (8 threads on 1 core) behave like a serial
  // run instead of a slower one; outputs are schedule-independent by
  // construction, so only wall-clock changes.
  const int helpers = std::min(
      {num_threads(), count - 1, HardwareConcurrency() - 1});
  state.active = helpers > 0 ? helpers : 0;
  if (helpers > 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (int h = 0; h < helpers; ++h) {
        queue_.push_back([&state, &drain] {
          drain();
          std::lock_guard<std::mutex> lock(state.mu);
          if (--state.active == 0) state.done.notify_all();
        });
      }
    }
    task_ready_.notify_all();
  }

  drain();
  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.done.wait(lock, [&state] { return state.active == 0; });
  }
  if (state.error) std::rethrow_exception(state.error);
}

int ThreadPool::HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ThreadPool::CurrentWorkerId() { return t_worker_id; }

int ThreadPool::ResolveThreadCount(int requested) {
  if (requested == 0) return HardwareConcurrency();
  return requested < 1 ? 1 : requested;
}

void ParallelFor(ThreadPool* pool, int count,
                 const std::function<void(int)>& fn) {
  if (pool == nullptr) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  pool->ParallelFor(count, fn);
}

}  // namespace flinkless::runtime
